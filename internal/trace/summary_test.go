package trace_test

import (
	"bytes"
	"strings"
	"testing"

	"rtvirt/internal/core"
	"rtvirt/internal/hv"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
	"rtvirt/internal/trace"
)

func ms(n int64) simtime.Duration { return simtime.Millis(n) }

func TestSummarizeHandBuiltTrace(t *testing.T) {
	rec := &trace.Recorder{}
	// PCPU0: vm-a/0 runs 0–4ms, then vm-b/0 runs 4–10ms (a migration for
	// vm-b, which previously ran on PCPU1).
	rec.Add(trace.Record{At: 0, Kind: trace.Dispatch, PCPU: 1, VM: "vm-b", VCPU: 0})
	rec.Add(trace.Record{At: 0, Kind: trace.Dispatch, PCPU: 0, VM: "vm-a", VCPU: 0})
	rec.Add(trace.Record{At: simtime.Time(ms(2)), Kind: trace.JobDone, PCPU: 1, VM: "vm-b", VCPU: 0, Task: "x"})
	rec.Add(trace.Record{At: simtime.Time(ms(2)), Kind: trace.Dispatch, PCPU: 1}) // idle
	rec.Add(trace.Record{At: simtime.Time(ms(4)), Kind: trace.Dispatch, PCPU: 0, VM: "vm-b", VCPU: 0})
	rec.Add(trace.Record{At: simtime.Time(ms(10)), Kind: trace.JobMiss, PCPU: 0, VM: "vm-b", VCPU: 0, Task: "x", Arg: int64(ms(1))})

	s := trace.Summarize(rec)
	if s.Window() != ms(10) {
		t.Fatalf("window = %v", s.Window())
	}
	a := s.VCPUs["vm-a/0"]
	if a == nil || a.Run != ms(4) || a.Migrations != 0 || a.Dispatches != 1 {
		t.Fatalf("vm-a: %+v", a)
	}
	b := s.VCPUs["vm-b/0"]
	// 2ms on PCPU1 plus 6ms on PCPU0 (closed at the final record).
	if b == nil || b.Run != ms(8) || b.Migrations != 1 || b.Dispatches != 2 {
		t.Fatalf("vm-b: %+v", b)
	}
	if b.Completions != 2 || b.Misses != 1 {
		t.Fatalf("vm-b jobs: %+v", b)
	}
	if s.PCPUs[0].Busy != ms(10) || s.PCPUs[1].Busy != ms(2) {
		t.Fatalf("pcpu busy: %+v", s.PCPUs)
	}
	if s.Migrations != 1 {
		t.Fatalf("migrations = %d", s.Migrations)
	}
	if got := s.Keys(); len(got) != 2 || got[0] != "vm-a/0" || got[1] != "vm-b/0" {
		t.Fatalf("keys = %v", got)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := trace.Summarize(&trace.Recorder{})
	if len(s.VCPUs) != 0 || len(s.PCPUs) != 0 || s.Window() != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}

// The summary must agree with the kernel's own meters on a live run with
// zero overhead costs: trace-derived run time equals VCPU.TotalRun and
// trace-derived busy time equals PCPU.BusyTime.
func TestSummarizeMatchesKernelAccounting(t *testing.T) {
	cfg := core.DefaultConfig(core.RTVirt)
	cfg.PCPUs = 2
	cfg.Costs = hv.CostModel{} // zero overhead: trace and meters align
	sys := core.NewSystem(cfg)
	rec := &trace.Recorder{}
	sys.Host.TraceTo(rec)
	g, err := sys.NewGuest("vm", 1)
	if err != nil {
		t.Fatal(err)
	}
	tk := task.New(0, "t", task.Periodic, task.Params{Slice: ms(2), Period: ms(10)})
	if err := g.Register(tk); err != nil {
		t.Fatal(err)
	}
	sys.Start()
	g.StartPeriodic(tk, 0)
	sys.Run(simtime.Seconds(1))
	sys.Host.Sync()

	s := trace.Summarize(rec)
	var traceBusy simtime.Duration
	for _, p := range s.PCPUs {
		traceBusy += p.Busy
	}
	var kernelBusy simtime.Duration
	for _, p := range sys.Host.PCPUs() {
		kernelBusy += p.BusyTime
	}
	// The trace closes the last interval at its final record, which can
	// shave at most one period's worth of run; allow 1%.
	lo, hi := kernelBusy-kernelBusy/100, kernelBusy
	if traceBusy < lo || traceBusy > hi {
		t.Fatalf("trace busy %v vs kernel busy %v", traceBusy, kernelBusy)
	}
	if st := tk.Stats(); int(st.Completed) != sumCompletions(s) {
		t.Fatalf("trace completions %d vs task stats %+v", sumCompletions(s), st)
	}
}

func sumCompletions(s trace.Summary) int {
	n := 0
	for _, v := range s.VCPUs {
		n += v.Completions
	}
	return n
}

func TestSummaryWrite(t *testing.T) {
	rec := &trace.Recorder{}
	rec.Add(trace.Record{At: 0, Kind: trace.Dispatch, PCPU: 0, VM: "vm", VCPU: 0})
	rec.Add(trace.Record{At: simtime.Time(ms(5)), Kind: trace.JobDone, PCPU: 0, VM: "vm", VCPU: 0})
	var buf bytes.Buffer
	if err := trace.Summarize(rec).Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"vm/0", "pcpu0", "host migrations: 0", "events: dispatch=1 job-done=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "dropped:") {
		t.Fatalf("summary reports drops with no cap:\n%s", out)
	}
}

func TestSummaryWriteDropped(t *testing.T) {
	rec := &trace.Recorder{Max: 1, Logf: func(string, ...any) {}}
	rec.Add(trace.Record{At: 0, Kind: trace.Dispatch, PCPU: 0, VM: "vm", VCPU: 0})
	rec.Add(trace.Record{At: simtime.Time(ms(5)), Kind: trace.JobDone, PCPU: 0, VM: "vm", VCPU: 0})
	var buf bytes.Buffer
	if err := trace.Summarize(rec).Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dropped: 1 events past the recorder cap") {
		t.Fatalf("summary missing dropped-count line:\n%s", buf.String())
	}
}

package trace

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"rtvirt/internal/guest"
	"rtvirt/internal/hv"
	"rtvirt/internal/sched/dpwrap"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

func ms(n int64) simtime.Duration { return simtime.Millis(n) }

func TestRecorderCap(t *testing.T) {
	r := Recorder{Max: 2}
	for i := 0; i < 5; i++ {
		r.Add(Record{At: simtime.Time(i), Kind: Dispatch})
	}
	if r.Len() != 2 || r.Dropped() != 3 {
		t.Fatalf("len=%d dropped=%d", r.Len(), r.Dropped())
	}
}

func TestWriteCSV(t *testing.T) {
	var r Recorder
	r.Add(Record{At: simtime.Time(ms(1)), Kind: Dispatch, PCPU: 0, VM: "vm0", VCPU: 0})
	r.Add(Record{At: simtime.Time(ms(2)), Kind: JobMiss, PCPU: 1, VM: "vm1", Task: "t", Late: simtime.Micros(5)})
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("csv rows = %d, want header + 2", len(rows))
	}
	if rows[2][1] != "job-miss" || rows[2][6] != "5.000" {
		t.Fatalf("csv content wrong: %v", rows[2])
	}
}

func TestWriteJSON(t *testing.T) {
	var r Recorder
	r.Add(Record{At: simtime.Time(ms(1)), Kind: JobDone, VM: "vm0", Task: "x"})
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got []Record
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Task != "x" {
		t.Fatalf("json round-trip wrong: %+v", got)
	}
}

// runTracedScenario drives a small RTVirt run with tracing for tests.
func runTracedScenario(t *testing.T) *Recorder {
	t.Helper()
	s := sim.New(3)
	h := hv.NewHost(s, 1, dpwrap.New(dpwrap.DefaultConfig()), hv.CostModel{})
	rec := &Recorder{}
	h.SetTracer(NewHostTracer(rec))
	g, err := guest.NewOS(h, "vm0", guest.DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	tk := task.New(0, "rta", task.Periodic, task.Params{Slice: ms(2), Period: ms(10)})
	if err := g.Register(tk); err != nil {
		t.Fatal(err)
	}
	h.Start()
	g.StartPeriodic(tk, 0)
	s.RunFor(simtime.Seconds(1))
	return rec
}

// End-to-end: trace a real RTVirt run and check dispatches and completions
// are recorded in time order.
func TestHostTracerEndToEnd(t *testing.T) {
	rec := runTracedScenario(t)

	var dispatches, done, miss int
	var prev simtime.Time
	for _, r := range rec.Records() {
		if r.At < prev {
			t.Fatal("records out of order")
		}
		prev = r.At
		switch r.Kind {
		case Dispatch:
			dispatches++
		case JobDone:
			done++
			if r.Task != "rta" || r.VM != "vm0" {
				t.Fatalf("bad completion record: %+v", r)
			}
		case JobMiss:
			miss++
		}
	}
	if done != 100 {
		t.Fatalf("completions recorded = %d, want 100", done)
	}
	if miss != 0 {
		t.Fatalf("misses recorded = %d", miss)
	}
	if dispatches < 100 {
		t.Fatalf("dispatches recorded = %d, want ≥100", dispatches)
	}
}

func TestTimeline(t *testing.T) {
	var r Recorder
	r.Add(Record{At: 0, Kind: Dispatch, PCPU: 0, VM: "vmA"})
	r.Add(Record{At: simtime.Time(ms(5)), Kind: Dispatch, PCPU: 0, VM: "vmB"})
	out := r.Timeline(1, 0, simtime.Time(ms(10)), 10)
	if !strings.Contains(out, "pcpu0") {
		t.Fatalf("timeline missing pcpu row:\n%s", out)
	}
	// First half occupied by vmA ('A'), second by vmB ('B').
	if !strings.Contains(out, "A") || !strings.Contains(out, "B") {
		t.Fatalf("timeline content wrong:\n%s", out)
	}
	if r.Timeline(1, 0, 0, 10) != "" || r.Timeline(1, 0, 1, 0) != "" {
		t.Fatal("degenerate timeline should be empty")
	}
}

package guest

import (
	"errors"
	"fmt"
	"testing"

	"rtvirt/internal/hv"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

// clSched is a cross-layer-capable test scheduler: FIFO dispatch over
// runnable VCPUs and bandwidth-sum admission control.
type clSched struct {
	h     *hv.Host
	ready []*hv.VCPU
	// resv mirrors the reservations granted via hypercall.
	resv map[*hv.VCPU]hv.Reservation
}

func (s *clSched) Name() string                      { return "cl-test" }
func (s *clSched) Attach(h *hv.Host)                 { s.h = h; s.resv = map[*hv.VCPU]hv.Reservation{} }
func (s *clSched) Start(simtime.Time)                {}
func (s *clSched) AdmitVCPU(v *hv.VCPU) error        { return nil }
func (s *clSched) RemoveVCPU(*hv.VCPU, simtime.Time) {}

func (s *clSched) UpdateVCPU(v *hv.VCPU, r hv.Reservation, _ simtime.Time) error {
	v.Res = r
	return nil
}

func (s *clSched) totalBW(except *hv.VCPU) float64 {
	var sum float64
	for v, r := range s.resv {
		if v != except {
			sum += r.Bandwidth()
		}
	}
	return sum
}

func (s *clSched) HandleHypercall(hc hv.Hypercall, now simtime.Time) error {
	switch hc.Flag {
	case hv.IncBW:
		if s.totalBW(hc.VCPU)+hc.Res.Bandwidth() > float64(s.h.NumPCPUs())+1e-9 {
			return fmt.Errorf("%w: over capacity", hv.ErrAdmission)
		}
		s.resv[hc.VCPU] = hc.Res
		hc.VCPU.Res = hc.Res
	case hv.DecBW:
		s.resv[hc.VCPU] = hc.Res
		hc.VCPU.Res = hc.Res
	case hv.IncDecBW:
		avail := float64(s.h.NumPCPUs()) - s.totalBW(hc.VCPU) + s.resv[hc.Dec].Bandwidth() - hc.DecRes.Bandwidth()
		if hc.Res.Bandwidth() > avail+1e-9 {
			return fmt.Errorf("%w: over capacity", hv.ErrAdmission)
		}
		s.resv[hc.VCPU] = hc.Res
		hc.VCPU.Res = hc.Res
		s.resv[hc.Dec] = hc.DecRes
		hc.Dec.Res = hc.DecRes
	}
	return nil
}

func (s *clSched) VCPUWake(v *hv.VCPU, now simtime.Time) {
	s.ready = append(s.ready, v)
	for _, p := range s.h.PCPUs() {
		if p.Current() == nil {
			s.h.Kick(p, now)
			return
		}
	}
}

func (s *clSched) VCPUIdle(v *hv.VCPU, now simtime.Time) {
	for i, r := range s.ready {
		if r == v {
			s.ready = append(s.ready[:i], s.ready[i+1:]...)
			return
		}
	}
}

func (s *clSched) Schedule(p *hv.PCPU, now simtime.Time) hv.Decision {
	for _, v := range s.ready {
		if v.Runnable() && (v.OnPCPU() == nil || v.OnPCPU() == p) {
			return hv.Decision{VCPU: v, RunFor: simtime.Millis(100), Work: len(s.ready)}
		}
	}
	return hv.Decision{RunFor: simtime.Infinite}
}

func setup(t *testing.T, pcpus, vcpus int, cfg Config) (*sim.Simulator, *hv.Host, *OS) {
	t.Helper()
	s := sim.New(7)
	h := hv.NewHost(s, pcpus, &clSched{}, hv.CostModel{})
	g, err := NewOS(h, "vm0", cfg, vcpus)
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	return s, h, g
}

func pp(s, p int64) task.Params {
	return task.Params{Slice: simtime.Millis(s), Period: simtime.Millis(p)}
}

func TestReadyQueueEDFOrder(t *testing.T) {
	q := newReadyQueue()
	tk := task.New(0, "t", task.Periodic, pp(1, 100))
	j1 := tk.Release(0, simtime.Millis(1))                                // deadline 100ms
	j2 := tk.Release(simtime.Time(simtime.Millis(10)), simtime.Millis(1)) // deadline 110ms
	tk2 := task.New(1, "u", task.Periodic, pp(1, 50))
	j3 := tk2.Release(simtime.Time(simtime.Millis(20)), simtime.Millis(1)) // deadline 70ms
	q.Push(j1)
	q.Push(j2)
	q.Push(j3)
	if q.Head() != j3 {
		t.Fatal("EDF head should be the earliest deadline")
	}
	q.Remove(j3)
	if q.Head() != j1 {
		t.Fatal("after removal, next earliest should lead")
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	if q.Remove(j3) {
		t.Fatal("Remove of absent job should report false")
	}
}

func TestReadyQueueFIFOTie(t *testing.T) {
	q := newReadyQueue()
	tk := task.New(0, "t", task.Periodic, pp(1, 100))
	tk2 := task.New(1, "u", task.Periodic, pp(1, 100))
	a := tk.Release(0, simtime.Millis(1))
	b := tk2.Release(0, simtime.Millis(1))
	q.Push(a)
	q.Push(b)
	if q.Head() != a {
		t.Fatal("equal deadlines must serve in insertion order")
	}
}

func TestReadyQueueDoublePushPanics(t *testing.T) {
	q := newReadyQueue()
	tk := task.New(0, "t", task.Periodic, pp(1, 100))
	j := tk.Release(0, simtime.Millis(1))
	q.Push(j)
	defer func() {
		if recover() == nil {
			t.Fatal("double push did not panic")
		}
	}()
	q.Push(j)
}

func TestRegisterDerivesReservation(t *testing.T) {
	_, _, g := setup(t, 2, 1, DefaultConfig())
	tk := task.New(0, "rta", task.Periodic, pp(5, 10))
	if err := g.Register(tk); err != nil {
		t.Fatal(err)
	}
	v := g.VM().VCPUs[0]
	// §3.3: budget = Σbw × min-period + slack = 5ms + 0.5ms on a 10ms period.
	want := hv.Reservation{Budget: simtime.Millis(5) + simtime.Micros(500), Period: simtime.Millis(10)}
	if v.Res != want {
		t.Fatalf("reservation = %v, want %v", v.Res, want)
	}
	if g.TaskVCPU(tk) != 0 || g.VCPUBandwidth(0) != 0.5 {
		t.Fatal("pinning wrong")
	}
}

func TestRegisterSecondTaskSameVCPU(t *testing.T) {
	_, _, g := setup(t, 2, 1, DefaultConfig())
	t1 := task.New(0, "a", task.Periodic, pp(5, 20)) // bw .25
	t2 := task.New(1, "b", task.Periodic, pp(5, 10)) // bw .5
	if err := g.Register(t1); err != nil {
		t.Fatal(err)
	}
	if err := g.Register(t2); err != nil {
		t.Fatal(err)
	}
	v := g.VM().VCPUs[0]
	// min period 10ms, Σbw = 0.75 → budget 7.5ms + 0.5ms slack.
	want := hv.Reservation{Budget: simtime.Micros(8000), Period: simtime.Millis(10)}
	if v.Res != want {
		t.Fatalf("reservation = %v, want %v", v.Res, want)
	}
}

func TestRegisterSpillsToSecondVCPU(t *testing.T) {
	_, _, g := setup(t, 2, 2, DefaultConfig())
	t1 := task.New(0, "a", task.Periodic, pp(7, 10)) // bw .7
	t2 := task.New(1, "b", task.Periodic, pp(6, 10)) // bw .6, doesn't fit with t1
	if err := g.Register(t1); err != nil {
		t.Fatal(err)
	}
	if err := g.Register(t2); err != nil {
		t.Fatal(err)
	}
	if g.TaskVCPU(t1) == g.TaskVCPU(t2) {
		t.Fatal("1.3 CPUs of tasks must land on different VCPUs")
	}
}

func TestRegisterRejectedByHost(t *testing.T) {
	_, _, g := setup(t, 1, 1, DefaultConfig())
	t1 := task.New(0, "a", task.Periodic, pp(9, 10))
	if err := g.Register(t1); err != nil {
		t.Fatal(err)
	}
	// A second VM-less task on the same 1-PCPU host: another guest would
	// normally contend; here we overfill via a second VCPU on same guest.
	g2cfg := DefaultConfig()
	g2cfg.MaxVCPUs = 2
	// Second task needs its own VCPU (0.9+0.6 > 1); host has only 1 CPU so
	// the hypercall must be rejected.
	t2 := task.New(1, "b", task.Periodic, pp(6, 10))
	err := g.Register(t2)
	if !errors.Is(err, ErrNoCapacity) && !errors.Is(err, ErrHostRejected) {
		t.Fatalf("err = %v, want capacity rejection", err)
	}
}

func TestHotplugOnDemand(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxVCPUs = 3
	_, _, g := setup(t, 4, 1, cfg)
	for i := 0; i < 3; i++ {
		tk := task.New(i, fmt.Sprintf("t%d", i), task.Periodic, pp(8, 10))
		if err := g.Register(tk); err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
	}
	if g.NumVCPUs() != 3 {
		t.Fatalf("NumVCPUs = %d, want 3 (hotplug)", g.NumVCPUs())
	}
}

func TestSetAttrDecrease(t *testing.T) {
	_, h, g := setup(t, 2, 1, DefaultConfig())
	tk := task.New(0, "a", task.Periodic, pp(8, 10))
	if err := g.Register(tk); err != nil {
		t.Fatal(err)
	}
	before := h.Overhead.Hypercalls
	if err := g.SetAttr(tk, pp(2, 10)); err != nil {
		t.Fatal(err)
	}
	if g.VCPUBandwidth(0) != 0.2 {
		t.Fatalf("bandwidth = %g, want 0.2", g.VCPUBandwidth(0))
	}
	want := hv.Reservation{Budget: simtime.Millis(2) + simtime.Micros(500), Period: simtime.Millis(10)}
	if g.VM().VCPUs[0].Res != want {
		t.Fatalf("reservation = %v, want %v", g.VM().VCPUs[0].Res, want)
	}
	if h.Overhead.Hypercalls != before+1 {
		t.Fatal("DEC_BW hypercall not made")
	}
}

func TestSetAttrIncreaseInPlace(t *testing.T) {
	_, _, g := setup(t, 2, 1, DefaultConfig())
	tk := task.New(0, "a", task.Periodic, pp(2, 10))
	if err := g.Register(tk); err != nil {
		t.Fatal(err)
	}
	if err := g.SetAttr(tk, pp(9, 10)); err != nil {
		t.Fatal(err)
	}
	if g.VCPUBandwidth(0) != 0.9 {
		t.Fatalf("bandwidth = %g, want 0.9", g.VCPUBandwidth(0))
	}
}

func TestSetAttrMovesToAnotherVCPU(t *testing.T) {
	_, _, g := setup(t, 3, 2, DefaultConfig())
	a := task.New(0, "a", task.Periodic, pp(6, 10))
	b := task.New(1, "b", task.Periodic, pp(3, 10))
	if err := g.Register(a); err != nil {
		t.Fatal(err)
	}
	if err := g.Register(b); err != nil {
		t.Fatal(err)
	}
	if g.TaskVCPU(a) != 0 || g.TaskVCPU(b) != 0 {
		t.Fatal("both should fit on vcpu0 initially")
	}
	// Grow b to 0.8: no longer fits beside a (0.6) → INC_DEC_BW move.
	if err := g.SetAttr(b, pp(8, 10)); err != nil {
		t.Fatal(err)
	}
	if g.TaskVCPU(b) != 1 {
		t.Fatalf("b on vcpu %d, want 1", g.TaskVCPU(b))
	}
	if g.VCPUBandwidth(0) != 0.6 || g.VCPUBandwidth(1) != 0.8 {
		t.Fatalf("bandwidths = %g,%g", g.VCPUBandwidth(0), g.VCPUBandwidth(1))
	}
}

func TestUnregisterFreesBandwidth(t *testing.T) {
	s, _, g := setup(t, 2, 1, DefaultConfig())
	tk := task.New(0, "a", task.Periodic, pp(5, 10))
	if err := g.Register(tk); err != nil {
		t.Fatal(err)
	}
	g.StartPeriodic(tk, 0)
	s.RunFor(simtime.Millis(25))
	if err := g.Unregister(tk); err != nil {
		t.Fatal(err)
	}
	if g.VCPUBandwidth(0) != 0 {
		t.Fatalf("bandwidth = %g, want 0", g.VCPUBandwidth(0))
	}
	if err := g.Unregister(tk); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("second unregister err = %v, want ErrUnknownTask", err)
	}
	s.RunFor(simtime.Millis(50))
	if got := tk.Stats().Released; got != 3 {
		t.Fatalf("releases after unregister: %d, want 3 (0,10,20ms)", got)
	}
}

func TestPeriodicReleasesAndEDFExecution(t *testing.T) {
	s, _, g := setup(t, 1, 1, DefaultConfig())
	tk := task.New(0, "a", task.Periodic, pp(2, 10))
	if err := g.Register(tk); err != nil {
		t.Fatal(err)
	}
	g.StartPeriodic(tk, 0)
	s.RunFor(simtime.Seconds(1))
	st := tk.Stats()
	if st.Released != 101 { // t=0..1000ms inclusive
		t.Fatalf("released = %d, want 101", st.Released)
	}
	if st.Completed < 100 || st.Missed != 0 {
		t.Fatalf("completed=%d missed=%d, want ≥100 and 0", st.Completed, st.Missed)
	}
}

func TestEDFPreemptionWithinVCPU(t *testing.T) {
	s, _, g := setup(t, 1, 1, DefaultConfig())
	long := task.New(0, "long", task.Periodic, pp(40, 100))
	short := task.New(1, "short", task.Periodic, pp(1, 10))
	if err := g.Register(long); err != nil {
		t.Fatal(err)
	}
	if err := g.Register(short); err != nil {
		t.Fatal(err)
	}
	g.StartPeriodic(long, 0)
	g.StartPeriodic(short, 0)
	s.RunFor(simtime.Seconds(1))
	// Under EDF both are schedulable (U = 0.5); the short task must preempt
	// the long one to meet its 10ms deadlines.
	if m := short.Stats().Missed; m != 0 {
		t.Fatalf("short task missed %d deadlines under EDF", m)
	}
	if m := long.Stats().Missed; m != 0 {
		t.Fatalf("long task missed %d deadlines under EDF", m)
	}
}

func TestDeadlineSlotPublication(t *testing.T) {
	s, _, g := setup(t, 1, 1, DefaultConfig())
	tk := task.New(0, "a", task.Periodic, pp(2, 10))
	if err := g.Register(tk); err != nil {
		t.Fatal(err)
	}
	v := g.VM().VCPUs[0]
	if v.DeadlineSlot != simtime.Never {
		t.Fatal("slot before any release should be Never")
	}
	g.StartPeriodic(tk, simtime.Time(simtime.Millis(5)))
	// Before the first release the next boundary is the release itself at
	// 5ms — a slice must not span a release, or the task's allocation can
	// land before its job arrives.
	if v.DeadlineSlot != simtime.Time(simtime.Millis(5)) {
		t.Fatalf("slot = %v, want 5ms", v.DeadlineSlot)
	}
	s.RunFor(simtime.Millis(5))
	// After the release at 5ms: pending deadline = next release = 15ms.
	if v.DeadlineSlot != simtime.Time(simtime.Millis(15)) {
		t.Fatalf("slot = %v, want 15ms", v.DeadlineSlot)
	}
	s.RunFor(simtime.Millis(3)) // job (2ms) completed by 8ms; next boundary 15ms
	if v.DeadlineSlot != simtime.Time(simtime.Millis(15)) {
		t.Fatalf("slot after completion = %v, want 15ms", v.DeadlineSlot)
	}
}

func TestSporadicFloorPublication(t *testing.T) {
	_, _, g := setup(t, 1, 1, DefaultConfig())
	sp := task.New(0, "sp", task.Sporadic, pp(2, 50))
	if err := g.Register(sp); err != nil {
		t.Fatal(err)
	}
	v := g.VM().VCPUs[0]
	if v.SporadicFloor != simtime.Millis(50) {
		t.Fatalf("floor = %v, want 50ms", v.SporadicFloor)
	}
	sp2 := task.New(1, "sp2", task.Sporadic, pp(1, 20))
	if err := g.Register(sp2); err != nil {
		t.Fatal(err)
	}
	if v.SporadicFloor != simtime.Millis(20) {
		t.Fatalf("floor = %v, want 20ms (minimum)", v.SporadicFloor)
	}
	if err := g.Unregister(sp2); err != nil {
		t.Fatal(err)
	}
	if v.SporadicFloor != simtime.Millis(50) {
		t.Fatalf("floor after unregister = %v, want 50ms", v.SporadicFloor)
	}
}

func TestSporadicReleaseRunsJob(t *testing.T) {
	s, _, g := setup(t, 1, 1, DefaultConfig())
	sp := task.New(0, "sp", task.Sporadic, pp(2, 50))
	if err := g.Register(sp); err != nil {
		t.Fatal(err)
	}
	var j *task.Job
	s.After(simtime.Millis(10), func(now simtime.Time) { j = g.ReleaseJob(sp, 0) })
	s.RunFor(simtime.Millis(20))
	if j == nil || !j.Done || j.Finish != simtime.Time(simtime.Millis(12)) {
		t.Fatalf("sporadic job state: %+v", j)
	}
}

func TestBackgroundRegisterNoAdmission(t *testing.T) {
	_, _, g := setup(t, 1, 1, DefaultConfig())
	bg := task.NewBackground(0, "bg")
	if err := g.Register(bg); err != nil {
		t.Fatal(err)
	}
	if g.VCPUBandwidth(0) != 0 {
		t.Fatal("background task consumed RT bandwidth")
	}
}

func TestReshuffleDefragments(t *testing.T) {
	cfg := DefaultConfig()
	_, _, g := setup(t, 4, 2, cfg)
	// vcpu0: 0.5; vcpu1: 0.5. New task 0.6 fits nowhere, but repacking
	// 0.5+0.5 onto vcpu0 frees vcpu1 entirely.
	a := task.New(0, "a", task.Periodic, pp(5, 10))
	b := task.New(1, "b", task.Periodic, pp(5, 10))
	if err := g.Register(a); err != nil {
		t.Fatal(err)
	}
	// Force b onto vcpu1 to create fragmentation.
	if err := g.RegisterOn(b, 1); err != nil {
		t.Fatal(err)
	}
	c := task.New(2, "c", task.Periodic, pp(6, 10))
	if err := g.Register(c); err != nil {
		t.Fatal(err)
	}
	// c (0.6) must coexist: the packing is {a,b} or {a,c} etc.; total 1.6
	// over 2 VCPUs. Verify no VCPU exceeds capacity.
	for i := 0; i < g.NumVCPUs(); i++ {
		if g.VCPUBandwidth(i) > 1.0+1e-9 {
			t.Fatalf("vcpu%d over capacity: %g", i, g.VCPUBandwidth(i))
		}
	}
	total := g.VCPUBandwidth(0) + g.VCPUBandwidth(1)
	if total < 1.6-1e-9 || total > 1.6+1e-9 {
		t.Fatalf("total bandwidth = %g, want 1.6", total)
	}
}

func TestRegisterErrors(t *testing.T) {
	_, _, g := setup(t, 2, 1, DefaultConfig())
	tk := task.New(0, "a", task.Periodic, pp(5, 10))
	if err := g.Register(tk); err != nil {
		t.Fatal(err)
	}
	if err := g.Register(tk); !errors.Is(err, ErrAlreadyRegister) {
		t.Fatalf("double register err = %v", err)
	}
	if err := g.SetAttr(task.New(9, "x", task.Periodic, pp(1, 10)), pp(1, 10)); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("SetAttr unknown err = %v", err)
	}
}

func TestAllocatedBandwidth(t *testing.T) {
	_, _, g := setup(t, 2, 1, DefaultConfig())
	tk := task.New(0, "a", task.Periodic, pp(5, 10))
	if err := g.Register(tk); err != nil {
		t.Fatal(err)
	}
	want := (5.0 + 0.5) / 10.0
	if got := g.AllocatedBandwidth(); got != want {
		t.Fatalf("AllocatedBandwidth = %g, want %g", got, want)
	}
}

func TestDemandFn(t *testing.T) {
	s, _, g := setup(t, 1, 1, DefaultConfig())
	sp := task.New(0, "sp", task.Sporadic, pp(10, 100))
	if err := g.Register(sp); err != nil {
		t.Fatal(err)
	}
	g.SetDemandFn(sp, func() simtime.Duration { return simtime.Millis(3) })
	var j *task.Job
	s.After(0, func(now simtime.Time) { j = g.ReleaseJob(sp, 0) })
	s.RunFor(simtime.Millis(5))
	if j.Demand != simtime.Millis(3) {
		t.Fatalf("demand = %v, want 3ms from demand fn", j.Demand)
	}
}

func TestSetAttrTriggersReshuffle(t *testing.T) {
	cfg := DefaultConfig()
	_, _, g := setup(t, 4, 2, cfg)
	// vcpu0: {a, b} = 0.85 with slack; vcpu1: {c} = 0.45.
	a := task.New(0, "a", task.Periodic, pp(4, 10))
	b := task.New(1, "b", task.Periodic, pp(4, 10))
	c := task.New(2, "c", task.Periodic, pp(4, 10))
	if err := g.Register(a); err != nil {
		t.Fatal(err)
	}
	if err := g.Register(b); err != nil {
		t.Fatal(err)
	}
	if err := g.RegisterOn(c, 1); err != nil {
		t.Fatal(err)
	}
	// Growing a to 0.9 fits neither VCPU as-is (0.9+0.4 anywhere > 1);
	// only the repack {a} / {b, c} admits it.
	if err := g.SetAttr(a, pp(9, 10)); err != nil {
		t.Fatalf("SetAttr with reshuffle: %v", err)
	}
	if got := a.Params(); got != pp(9, 10) {
		t.Fatalf("params not applied: %v", got)
	}
	for i := 0; i < g.NumVCPUs(); i++ {
		if bw := g.VCPUBandwidth(i); bw > 1.0+1e-9 {
			t.Fatalf("vcpu%d over capacity after reshuffle: %g", i, bw)
		}
	}
	// VCPUBandwidth sums task bandwidths: {a} = 0.9 and {b, c} = 0.8.
	total := g.VCPUBandwidth(0) + g.VCPUBandwidth(1)
	if total < 1.7-1e-9 || total > 1.7+1e-9 {
		t.Fatalf("total bandwidth = %g, want 1.70", total)
	}

	// Growing b to 0.9 as well cannot be packed at all (0.9+0.9+0.4 over
	// two VCPUs): SetAttr must fail atomically, leaving b untouched.
	if err := g.SetAttr(b, pp(9, 10)); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("impossible SetAttr err = %v", err)
	}
	if got := b.Params(); got != pp(4, 10) {
		t.Fatalf("failed SetAttr mutated params: %v", got)
	}
	total = g.VCPUBandwidth(0) + g.VCPUBandwidth(1)
	if total < 1.7-1e-9 || total > 1.7+1e-9 {
		t.Fatalf("failed SetAttr changed reservations: %g", total)
	}
}

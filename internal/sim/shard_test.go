package sim

import (
	"strings"
	"testing"

	"rtvirt/internal/clone"
	"rtvirt/internal/eventq"
	"rtvirt/internal/simtime"
)

// pinger is a test handler driving deterministic cross-shard traffic: each
// tick does local "work" (folds the clock into a hash), sends a pong to a
// random peer after the network delay, and schedules its next tick from
// the shard's own RNG. The folded hash is a digest of everything that
// matters: event times, order, and payload routing.
type pinger struct {
	sh    *Shard
	peers []*Shard // all shards, self included (skipped when drawn)
	id    int32
	ticks int
	limit int
	hash  uint64
}

const (
	evPingTick uint16 = iota
	evPingPong
)

func (p *pinger) mix(vs ...uint64) {
	for _, v := range vs {
		p.hash = (p.hash ^ v) * 1099511628211
	}
}

func (p *pinger) HandleSimEvent(now simtime.Time, ev Payload) {
	switch ev.Kind {
	case evPingTick:
		p.mix(1, uint64(now))
		if p.ticks++; p.ticks > p.limit {
			return
		}
		rng := p.sh.Sim().RNG()
		// Redraw until we hit a peer (2 shards minimum in these tests).
		to := p.peers[rng.Intn(len(p.peers))]
		for to == p.sh {
			to = p.peers[rng.Intn(len(p.peers))]
		}
		delay := p.sh.set.EdgeLookahead(p.sh.ID(), to.ID()) + simtime.Duration(rng.Int63n(int64(simtime.Micros(40))))
		// Every shard registers exactly one pinger, so the peer's handler
		// ID is 0 on every simulator.
		p.sh.PostRemote(to, now.Add(delay), Payload{
			Handler: 0, Kind: evPingPong, Arg0: int64(p.sh.ID()),
		})
		p.sh.Sim().PostAfter(simtime.Micros(10+rng.Int63n(30)), Payload{Handler: p.id, Kind: evPingTick})
	case evPingPong:
		p.mix(2, uint64(now), uint64(ev.Arg0))
	default:
		panic("pinger: unknown kind")
	}
}

func (p *pinger) ForkHandler(ctx *clone.Ctx) Handler {
	if n, ok := ctx.Lookup(p); ok {
		return n.(*pinger)
	}
	np := &pinger{id: p.id, ticks: p.ticks, limit: p.limit, hash: p.hash}
	ctx.Put(p, np)
	np.sh = clone.Get(ctx, p.sh)
	np.peers = make([]*Shard, len(p.peers))
	for i, sh := range p.peers {
		np.peers[i] = clone.Get(ctx, sh)
	}
	return np
}

type pingWorld struct {
	set     *ShardSet
	pingers []*pinger
}

func buildPingWorld(seed uint64, shards int, backend eventq.Backend) *pingWorld {
	set := NewShardSet(simtime.Micros(19))
	w := &pingWorld{set: set}
	for i := 0; i < shards; i++ {
		set.NewShardWithBackend(seed+uint64(i)*0x9e3779b97f4a7c15, backend)
	}
	for _, sh := range set.Shards() {
		p := &pinger{sh: sh, peers: set.Shards(), limit: 200, hash: 14695981039346656037}
		p.id = sh.Sim().RegisterHandler(p)
		sh.Sim().PostAt(0, Payload{Handler: p.id, Kind: evPingTick})
		w.pingers = append(w.pingers, p)
	}
	return w
}

func (w *pingWorld) digest() []uint64 {
	out := make([]uint64, 0, 2*len(w.pingers)+2)
	for i, p := range w.pingers {
		out = append(out, p.hash, w.set.Shards()[i].Sim().EventsFired())
	}
	return append(out, w.set.EventsFired(), uint64(w.set.Now()))
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestShardSetGroupInvariance is the kernel-level determinism golden: the
// same sharded world produces bit-identical state under 1, 2, 3, 4, and 8
// executor groups, on both event-queue backends.
func TestShardSetGroupInvariance(t *testing.T) {
	for _, backend := range []eventq.Backend{eventq.BackendHeap, eventq.BackendWheel} {
		ref := buildPingWorld(7, 8, backend)
		ref.set.RunUntil(simtime.Time(simtime.Millis(20)), 1)
		want := ref.digest()
		if ref.set.Windows() == 0 || ref.set.EventsFired() == 0 {
			t.Fatalf("[%v] degenerate reference run: %d windows, %d events", backend, ref.set.Windows(), ref.set.EventsFired())
		}
		for _, groups := range []int{2, 3, 4, 8} {
			w := buildPingWorld(7, 8, backend)
			w.set.RunUntil(simtime.Time(simtime.Millis(20)), groups)
			if got := w.digest(); !equalU64(got, want) {
				t.Errorf("[%v] groups=%d diverged from sequential: got %v want %v", backend, groups, got, want)
			}
			if w.set.Windows() != ref.set.Windows() {
				t.Errorf("[%v] groups=%d window count %d != sequential %d", backend, groups, w.set.Windows(), ref.set.Windows())
			}
		}
	}
}

// TestShardSetResume checks that windowed runs compose: run-to-10ms then
// run-to-20ms equals one run-to-20ms.
func TestShardSetResume(t *testing.T) {
	one := buildPingWorld(3, 4, eventq.BackendHeap)
	one.set.RunUntil(simtime.Time(simtime.Millis(20)), 2)

	two := buildPingWorld(3, 4, eventq.BackendHeap)
	two.set.RunUntil(simtime.Time(simtime.Millis(10)), 3)
	two.set.RunUntil(simtime.Time(simtime.Millis(20)), 2)

	if !equalU64(one.digest(), two.digest()) {
		t.Fatalf("split run diverged: %v vs %v", two.digest(), one.digest())
	}
}

func TestPostRemoteLookaheadViolationPanics(t *testing.T) {
	set := NewShardSet(simtime.Micros(19))
	a := set.NewShard(1)
	b := set.NewShard(2)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("PostRemote below the lookahead bound did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "lookahead") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	a.PostRemote(b, simtime.Time(simtime.Micros(18)), Payload{})
}

func TestPostRemoteSelfAndForeignPanic(t *testing.T) {
	set := NewShardSet(simtime.Micros(19))
	a := set.NewShard(1)
	other := NewShardSet(simtime.Micros(19)).NewShard(9)

	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("self-post", func() { a.PostRemote(a, simtime.Time(simtime.Micros(100)), Payload{}) })
	mustPanic("foreign-set post", func() { a.PostRemote(other, simtime.Time(simtime.Micros(100)), Payload{}) })
	mustPanic("zero lookahead", func() { NewShardSet(0) })
}

// TestShardSetFork forks a sharded world mid-run — including messages
// sitting in a shard outbox at fork time — and checks both continuations
// stay bit-identical.
func TestShardSetFork(t *testing.T) {
	w := buildPingWorld(11, 4, eventq.BackendHeap)
	w.set.RunUntil(simtime.Time(simtime.Millis(5)), 2)

	// Leave genuinely in-flight mailbox traffic for the fork to copy.
	shards := w.set.Shards()
	shards[1].PostRemote(shards[2], w.set.Now().Add(simtime.Millis(1)),
		Payload{Handler: 0, Kind: evPingPong, Arg0: 42})
	if len(shards[1].outbox) != 1 {
		t.Fatal("expected a buffered outbox message")
	}

	ctx := clone.New()
	nset, err := w.set.Fork(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(nset.Shards()[1].outbox); got != 1 {
		t.Fatalf("fork lost the in-flight mailbox message (outbox len %d)", got)
	}
	fw := &pingWorld{set: nset}
	for _, p := range w.pingers {
		fw.pingers = append(fw.pingers, clone.Get(ctx, p))
	}

	w.set.RunUntil(simtime.Time(simtime.Millis(15)), 3)
	fw.set.RunUntil(simtime.Time(simtime.Millis(15)), 1)
	if !equalU64(w.digest(), fw.digest()) {
		t.Fatalf("fork diverged: original %v fork %v", w.digest(), fw.digest())
	}
}

// TestShardIdleShard checks a shard with no events never blocks progress.
func TestShardIdleShard(t *testing.T) {
	set := NewShardSet(simtime.Micros(19))
	a := set.NewShard(1)
	_ = set.NewShard(2) // stays empty
	p := &pinger{sh: a, peers: []*Shard{a}, limit: 0, hash: 1}
	p.id = a.Sim().RegisterHandler(p)
	a.Sim().PostAt(0, Payload{Handler: p.id, Kind: evPingTick})
	set.RunUntil(simtime.Time(simtime.Millis(1)), 2)
	if set.EventsFired() != 1 {
		t.Fatalf("fired %d events, want 1", set.EventsFired())
	}
	for _, sh := range set.Shards() {
		if sh.Sim().Now() != simtime.Time(simtime.Millis(1)) {
			t.Fatalf("shard %d clock %v, want 1ms", sh.ID(), sh.Sim().Now())
		}
	}
}

package hv

import (
	"fmt"

	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
	"rtvirt/internal/trace"
)

// VM is a guest virtual machine: a named collection of VCPUs plus the
// guest OS driver that schedules processes onto them.
type VM struct {
	ID    int
	Name  string
	Guest GuestDriver
	VCPUs []*VCPU

	// WorkingSetMiB is the VM's declared working-set size. It scales the
	// cross-PCPU migration cost via CostModel.MigrationPerMiB; zero means
	// migrations cost only the fixed Migration term.
	WorkingSetMiB int

	host *Host
}

// Host returns the VMM hosting this VM.
func (vm *VM) Host() *Host { return vm.host }

// AddVCPU hot-plugs a new virtual CPU into the VM. rt marks it as
// participating in real-time scheduling; res is its initial reservation
// (may be zero for RTVirt, whose reservations arrive via hypercall); weight
// is used by proportional-share schedulers such as Credit.
func (vm *VM) AddVCPU(rt bool, res Reservation, weight int) (*VCPU, error) {
	return vm.host.addVCPU(vm, rt, res, weight)
}

// TotalRun sums the execution time of all the VM's VCPUs. Call Host.Sync
// first for an up-to-the-instant value.
func (vm *VM) TotalRun() simtime.Duration {
	var total simtime.Duration
	for _, v := range vm.VCPUs {
		total += v.TotalRun
	}
	return total
}

// String implements fmt.Stringer.
func (vm *VM) String() string { return fmt.Sprintf("vm%d(%s)", vm.ID, vm.Name) }

// VCPU is a virtual CPU: the entity the host scheduler dispatches onto
// physical CPUs.
type VCPU struct {
	ID    int // host-global
	VM    *VM
	Index int // within the VM

	// RT marks the VCPU as real-time; non-RT VCPUs receive leftover
	// bandwidth only.
	RT bool
	// Res is the VCPU's host-level reservation, set at creation or via the
	// sched_rtvirt() hypercall.
	Res Reservation
	// Weight drives proportional-share schedulers (Credit).
	Weight int
	// NoMigrate pins the VCPU to a single PCPU per scheduling horizon for
	// cache locality: DP-WRAP excludes it from the m−1 VCPUs it may split
	// across processors (§6).
	NoMigrate bool
	// DeadlineSlot is the shared-memory word holding the next earliest
	// deadline of the RTAs on this VCPU, written by the guest scheduler and
	// read by the host DP-WRAP scheduler (§3.3).
	DeadlineSlot simtime.Time
	// SporadicFloor is the second shared-memory word: the minimum period of
	// any sporadic RTA on the VCPU. The host treats the VCPU as if such a
	// task could be activated at any boundary (the worst-case rule of
	// §3.3), i.e. the next global deadline is at most SporadicFloor away.
	// Zero means the VCPU hosts no sporadic RTAs.
	SporadicFloor simtime.Duration

	// TotalRun is the accumulated job execution time on this VCPU.
	TotalRun simtime.Duration

	host   *Host
	curJob *task.Job
}

// VCPUHot is the dispatch path's per-VCPU hot state, held in a flat array
// on the Host indexed by dense VCPU ID (Host.Hot) rather than on the VCPU
// struct, so dispatch, pickEDF-style scans, and replenish walk contiguous
// memory instead of chasing per-VCPU pointers. PCPU and LastPCPU are PCPU
// IDs; -1 means none.
type VCPUHot struct {
	Runnable bool
	PCPU     int32
	LastPCPU int32
}

// Runnable reports whether the VCPU has runnable guest work.
func (v *VCPU) Runnable() bool { return v.host.hot[v.ID].Runnable }

// OnPCPU returns the PCPU the VCPU is currently dispatched on, or nil.
func (v *VCPU) OnPCPU() *PCPU {
	if i := v.host.hot[v.ID].PCPU; i >= 0 {
		return v.host.pcpus[i]
	}
	return nil
}

// CurrentJob returns the job executing on the VCPU right now, or nil.
func (v *VCPU) CurrentJob() *task.Job { return v.curJob }

// String implements fmt.Stringer.
func (v *VCPU) String() string {
	return fmt.Sprintf("%s.vcpu%d", v.VM.Name, v.Index)
}

// PCPU is one physical CPU of the host.
type PCPU struct {
	ID   int
	host *Host

	cur           *VCPU
	allocEnd      simtime.Time
	overheadUntil simtime.Time
	lastAdvance   simtime.Time
	ev            eventRef

	// BusyTime is job execution time; OverheadTime is scheduler/context
	// switch/hypercall time; IdleTime is the remainder.
	BusyTime     simtime.Duration
	OverheadTime simtime.Duration
	IdleTime     simtime.Duration
}

// Current returns the VCPU dispatched on the PCPU, or nil when idle.
func (p *PCPU) Current() *VCPU { return p.cur }

// AllocEnd reports when the current host allocation expires.
func (p *PCPU) AllocEnd() simtime.Time { return p.allocEnd }

// chargeOverhead pushes the PCPU's overhead horizon forward by cost
// starting no earlier than now, and accounts it when it elapses via
// advance. It does not touch the host-level meters; callers do that.
func (p *PCPU) chargeOverhead(now simtime.Time, cost simtime.Duration) {
	if cost <= 0 {
		return
	}
	base := simtime.Max(p.overheadUntil, now)
	p.overheadUntil = base.Add(cost)
}

// String implements fmt.Stringer.
func (p *PCPU) String() string { return fmt.Sprintf("pcpu%d", p.ID) }

// emitDispatch reports that p switched to v (nil = idle); grant is the
// host allocation length (0 when the switch is an undispatch).
func (h *Host) emitDispatch(p *PCPU, v *VCPU, now simtime.Time, grant simtime.Duration) {
	if !h.bus.Active() {
		return
	}
	ev := trace.Event{At: now, Kind: trace.Dispatch, PCPU: p.ID, Arg: int64(grant)}
	if v != nil {
		ev.VM = v.VM.Name
		ev.VCPU = v.Index
	}
	h.bus.Emit(ev)
}

// emitJobDone reports a job completion on v as JobDone (Arg = response
// time) or JobMiss (Arg = lateness).
func (h *Host) emitJobDone(v *VCPU, j *task.Job, now simtime.Time) {
	if !h.bus.Active() {
		return
	}
	kind := trace.JobDone
	arg := int64(now.Sub(j.Release))
	if j.Deadline != simtime.Never && j.Finish > j.Deadline {
		kind = trace.JobMiss
		arg = int64(j.Finish.Sub(j.Deadline))
	}
	pcpu := int(h.hot[v.ID].PCPU)
	h.bus.Emit(trace.Event{At: now, Kind: kind, PCPU: pcpu,
		VM: v.VM.Name, VCPU: v.Index, Task: j.Task.Name, Arg: arg})
}

// emitGuestSwitch reports a guest-level process switch onto v's next job.
func (h *Host) emitGuestSwitch(v *VCPU, j *task.Job, now simtime.Time) {
	if !h.bus.Active() {
		return
	}
	pcpu := int(h.hot[v.ID].PCPU)
	h.bus.Emit(trace.Event{At: now, Kind: trace.GuestSwitch, PCPU: pcpu,
		VM: v.VM.Name, VCPU: v.Index, Task: j.Task.Name})
}

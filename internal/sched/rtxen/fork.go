package rtxen

import (
	"rtvirt/internal/clone"
	"rtvirt/internal/eventq"
	"rtvirt/internal/sim"
)

// ForkHandler implements sim.Handler. The struct-of-arrays layout makes
// this almost a value copy: the srv array is plain data apart from each
// server's pending replenishment timer (remapped through ctx), and the
// runqueue is an ID slice copied verbatim — heap layout, and with it the
// modeled scan ranks, is preserved exactly.
func (s *Scheduler) ForkHandler(ctx *clone.Ctx) sim.Handler {
	if n, ok := ctx.Lookup(s); ok {
		return n.(*Scheduler)
	}
	ns := &Scheduler{
		cfg:      s.cfg,
		h:        clone.Get(ctx, s.h),
		id:       s.id,
		bgCursor: s.bgCursor,
		started:  s.started,
	}
	ctx.Put(s, ns)
	ns.srv = append([]serverState(nil), s.srv...)
	for i := range ns.srv {
		ns.srv[i].replEv = eventq.CloneHandle(ctx, s.srv[i].replEv)
	}
	ns.runq.v = append([]int32(nil), s.runq.v...)
	return ns
}

package hv

import (
	"rtvirt/internal/clone"
	"rtvirt/internal/eventq"
	"rtvirt/internal/sim"
	"rtvirt/internal/task"
)

// ForkHandler implements sim.Handler: it deep-copies the entire hypervisor
// layer — PCPUs (with their pending kernel timers), VMs, VCPUs (with their
// in-flight jobs), overhead meters and shared-memory slots — then pulls the
// host scheduler and every guest driver through ctx so the whole world
// lands in the fork exactly once.
//
// The telemetry bus is deliberately NOT cloned: sinks are observers wired
// to the run that attached them, and tracing never influences scheduling,
// so a fork starts with a fresh, disabled bus and the caller attaches its
// own sinks.
func (h *Host) ForkHandler(ctx *clone.Ctx) sim.Handler {
	if n, ok := ctx.Lookup(h); ok {
		return n.(*Host)
	}
	nh := &Host{
		Sim:       clone.Get(ctx, h.Sim),
		Costs:     h.Costs,
		Overhead:  h.Overhead,
		started:   h.started,
		startTime: h.startTime,
		nextVCPU:  h.nextVCPU,
		handlerID: h.handlerID,
		// The cost stream continues from exactly where the original stands,
		// so fork and original sample identical future costs.
		costRNG: h.costRNG.Clone(),
	}
	ctx.Put(h, nh)
	// PCPUs first, shallow: VCPU clones reach back into them (v.pcpu), so
	// they must be memoized before any VCPU is cloned.
	nh.pcpus = make([]*PCPU, len(h.pcpus))
	for i, p := range h.pcpus {
		np := &PCPU{}
		*np = *p
		np.host = nh
		np.cur = nil
		nh.pcpus[i] = np
		ctx.Put(p, np)
	}
	for i, p := range h.pcpus {
		nh.pcpus[i].cur = cloneVCPU(ctx, p.cur)
		nh.pcpus[i].ev = eventq.CloneHandle(ctx, p.ev)
	}
	nh.vms = make([]*VM, len(h.vms))
	for i, vm := range h.vms {
		nh.vms[i] = cloneVM(ctx, vm)
	}
	nh.vcpus = make([]*VCPU, len(h.vcpus))
	for i, v := range h.vcpus {
		nh.vcpus[i] = cloneVCPU(ctx, v)
	}
	// The id-arena and its struct-of-arrays mirror: hot is plain values, a
	// slice copy suffices; byID remaps through the memo (holes stay nil).
	nh.hot = append([]VCPUHot(nil), h.hot...)
	nh.byID = make([]*VCPU, len(h.byID))
	for i, v := range h.byID {
		nh.byID[i] = cloneVCPU(ctx, v)
	}
	nh.sched = h.sched.ForkHandler(ctx).(HostScheduler)
	return nh
}

// CloneVM deep-copies vm (and its VCPUs and guest driver) through ctx.
// Guest drivers normally get cloned while the host walks its VM list, but a
// driver can outlive its VM (e.g. after Shutdown removed it from the host);
// its ForkHandler uses this to pull the detached VM through the same memo.
func CloneVM(ctx *clone.Ctx, vm *VM) *VM { return cloneVM(ctx, vm) }

// cloneVM deep-copies a VM, its VCPUs, and its guest driver.
func cloneVM(ctx *clone.Ctx, vm *VM) *VM {
	if vm == nil {
		return nil
	}
	if n, ok := ctx.Lookup(vm); ok {
		return n.(*VM)
	}
	nvm := &VM{ID: vm.ID, Name: vm.Name, WorkingSetMiB: vm.WorkingSetMiB, host: clone.Get(ctx, vm.host)}
	ctx.Put(vm, nvm)
	nvm.VCPUs = make([]*VCPU, len(vm.VCPUs))
	for i, v := range vm.VCPUs {
		nvm.VCPUs[i] = cloneVCPU(ctx, v)
	}
	if vm.Guest != nil {
		nvm.Guest = vm.Guest.ForkDriver(ctx)
	}
	return nvm
}

// cloneVCPU deep-copies a VCPU. Scheduler-private and dispatch hot state
// live in flat arrays on the scheduler and Host respectively (cloned by
// their owners), so only the VCPU's own fields need remapping here.
func cloneVCPU(ctx *clone.Ctx, v *VCPU) *VCPU {
	if v == nil {
		return nil
	}
	if n, ok := ctx.Lookup(v); ok {
		return n.(*VCPU)
	}
	nv := &VCPU{}
	*nv = *v
	ctx.Put(v, nv)
	nv.VM = cloneVM(ctx, v.VM)
	nv.host = clone.Get(ctx, v.host)
	nv.curJob = task.CloneJob(ctx, v.curJob)
	return nv
}

// Command rtvirt-analyze performs offline admission analysis on a
// scenario file — the role CARTS plays in the paper's workflow. It reads
// the same JSON that cmd/rtvirt-sim runs and reports, without simulating:
//
//   - the minimal static RT-Xen interface (Θ, Π) for each VCPU, with
//     tasks packed first-fit-decreasing onto as few VCPUs as feasible;
//   - the reservation RTVirt's guest would size for the same VCPUs
//     (budget = ⌈ΣBW·minP⌉ + slack, §3.3);
//   - host-level admission: allocated bandwidth, claimed CPUs under both
//     the partitioned and gEDF analyses, and the bandwidth RTVirt saves.
//
// The exit status gates CI: 0 when the scenario's own stack admits the
// workload, 1 when it does not.
//
// Usage:
//
//	rtvirt-analyze scenario.json
//	rtvirt-analyze -quantum-us 100 -json scenario.json
//	rtvirt-analyze -period-us 5000 scenario.json   # fixed server period
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"rtvirt/internal/analyze"
	"rtvirt/internal/scenario"
	"rtvirt/internal/simtime"
)

func main() {
	var (
		quantumUS = flag.Int64("quantum-us", 1000, "server budget quantum in µs (CARTS uses 1000)")
		periodUS  = flag.Int64("period-us", 0, "fix every server period to this many µs (0 = sweep)")
		slackUS   = flag.Int64("slack-us", 500, "RTVirt per-VCPU budget slack in µs")
		pcpus     = flag.Int("pcpus", 0, "override the scenario's physical CPU count")
		jsonOut   = flag.Bool("json", false, "emit the full analysis as JSON")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rtvirt-analyze [flags] <scenario.json>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	sc, err := scenario.Parse(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	if *pcpus > 0 {
		sc.PCPUs = *pcpus
	}

	h, err := analyze.Analyze(sc, analyze.Options{
		Quantum: simtime.Micros(*quantumUS),
		Period:  simtime.Micros(*periodUS),
		Slack:   simtime.Micros(*slackUS),
	})
	if err != nil {
		log.Fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(h); err != nil {
			log.Fatal(err)
		}
		os.Exit(exitCode(sc, h))
	}
	print(h)
	os.Exit(exitCode(sc, h))
}

// exitCode gates CI on the admission verdict of the scenario's own stack:
// 0 when that stack admits the workload, 1 when it does not.
func exitCode(sc scenario.Scenario, h analyze.HostAnalysis) int {
	switch sc.Stack {
	case "rt-xen", "rtxen", "two-level-edf", "edf":
		if !h.RTXenAdmitted {
			return 1
		}
	default: // rtvirt (and credit, which shares the fluid accounting)
		if !h.RTVirtAdmitted {
			return 1
		}
	}
	return 0
}

func print(h analyze.HostAnalysis) {
	for _, vm := range h.VMs {
		fmt.Printf("VM %-14s tasks=%.3f CPUs", vm.Name, vm.TaskBW)
		if vm.Background > 0 {
			fmt.Printf(" (+%d background)", vm.Background)
		}
		fmt.Println()
		if len(vm.RTXen) > vm.DeclaredVCPUs {
			fmt.Printf("  note: needs %d VCPUs, scenario declares %d\n",
				len(vm.RTXen), vm.DeclaredVCPUs)
		}
		for i := range vm.RTXen {
			x, r := vm.RTXen[i], vm.RTVirt[i]
			fmt.Printf("  vcpu%d  tasks %v\n", i, x.Tasks)
			fmt.Printf("         rt-xen interface %v = %.3f CPUs\n", x.Interface, x.Bandwidth())
			fmt.Printf("         rtvirt reserve   %v = %.3f CPUs\n", r.Interface, r.Bandwidth())
		}
	}
	fmt.Println()
	fmt.Printf("host: %d physical CPUs, %.3f CPUs of real-time demand\n", h.PCPUs, h.TaskBW)
	fmt.Printf("  rt-xen  allocated %.3f CPUs, claimed %d (partitioned)",
		h.RTXenAllocated, h.RTXenClaimedFFD)
	if h.RTXenClaimedGEDF > 0 {
		fmt.Printf(" / %d (gEDF)", h.RTXenClaimedGEDF)
	}
	fmt.Printf(" — %s\n", verdict(h.RTXenAdmitted))
	fmt.Printf("  rtvirt  allocated %.3f CPUs — %s\n", h.RTVirtAllocated, verdict(h.RTVirtAdmitted))
	fmt.Printf("  rtvirt bandwidth saving vs static interfaces: %.1f%%\n", h.SavingPct)
}

func verdict(ok bool) string {
	if ok {
		return "ADMITTED"
	}
	return "REJECTED"
}

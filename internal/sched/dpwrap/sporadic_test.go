package dpwrap

import (
	"fmt"
	"testing"
	"testing/quick"

	"rtvirt/internal/guest"
	"rtvirt/internal/hv"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

// Property: sporadic RTAs with random minimum inter-arrival constraints
// meet their deadlines under contention from periodic VMs, as long as
// total utilization stays under capacity — the worst-case-floor mechanism
// of §3.3.
func TestQuickSporadicTimeliness(t *testing.T) {
	if testing.Short() {
		t.Skip("long property test")
	}
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		s := sim.New(seed)
		sched := New(DefaultConfig())
		h := hv.NewHost(s, 2, sched, hv.CostModel{})
		gc := guest.DefaultConfig()
		gc.Slack = simtime.Micros(200)

		// Periodic contender ~60% of one CPU.
		gP, err := guest.NewOS(h, "periodic", gc, 1)
		if err != nil {
			return false
		}
		per := task.New(0, "per", task.Periodic,
			task.Params{Slice: simtime.Millis(6), Period: simtime.Millis(10)})
		if err := gP.Register(per); err != nil {
			return false
		}

		// 1–3 sporadic RTAs, each in its own VM.
		n := 1 + rng.Intn(3)
		var sps []*task.Task
		var guests []*guest.OS
		for i := 0; i < n; i++ {
			period := simtime.Millis(10 + rng.Int63n(60))
			bw := 0.05 + rng.Float64()*0.25
			slice := simtime.Duration(bw * float64(period))
			g, err := guest.NewOS(h, fmt.Sprintf("sp%d", i), gc, 1)
			if err != nil {
				return false
			}
			tk := task.New(10+i, fmt.Sprintf("sp%d", i), task.Sporadic,
				task.Params{Slice: slice, Period: period})
			if err := g.Register(tk); err != nil {
				// Over capacity for this draw; skip the task.
				continue
			}
			sps = append(sps, tk)
			guests = append(guests, g)
		}
		h.Start()
		gP.StartPeriodic(per, 0)

		// Drive each sporadic task with random triggers ≥ its min
		// inter-arrival apart.
		for i, tk := range sps {
			g := guests[i]
			tk := tk
			var fire func(now simtime.Time)
			fire = func(now simtime.Time) {
				if tk.EarliestNextRelease() <= now {
					g.ReleaseJob(tk, 0)
				}
				gap := tk.Params().Period + simtime.Duration(rng.Int63n(int64(simtime.Millis(50))))
				s.After(gap, fire)
			}
			s.After(simtime.Duration(rng.Int63n(int64(simtime.Millis(20)))), fire)
		}
		s.RunFor(simtime.Seconds(5))
		for _, tk := range sps {
			st := tk.Stats()
			if st.Released == 0 {
				return false
			}
			if st.Missed != 0 {
				t.Logf("seed %d: %s %v missed %d/%d", seed, tk.Name, tk.Params(),
					st.Missed, st.Released)
				return false
			}
		}
		return per.Stats().Missed == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestMaxSliceCapsIdleBoundaries: with no published deadlines, boundary
// events still run at the MaxSlice cadence so background VMs keep being
// rebalanced.
func TestMaxSliceCapsIdleBoundaries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxSlice = simtime.Millis(20)
	s := sim.New(3)
	sched := New(cfg)
	h := hv.NewHost(s, 1, sched, hv.CostModel{})
	h.Start()
	s.RunFor(simtime.Seconds(1))
	// ≈ 50 boundaries in 1s at a 20ms cap.
	if sched.Boundaries < 45 || sched.Boundaries > 55 {
		t.Fatalf("boundaries = %d, want ≈50", sched.Boundaries)
	}
}

// TestSlotUpdateShortensSlice: starting a periodic task mid-slice triggers
// the SlotUpdated replan so its first deadline is honoured.
func TestSlotUpdateShortensSlice(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxSlice = simtime.Millis(100)
	s := sim.New(3)
	sched := New(cfg)
	h := hv.NewHost(s, 1, sched, hv.CostModel{})
	gc := guest.DefaultConfig()
	gc.Slack = simtime.Micros(100)
	g, err := guest.NewOS(h, "vm", gc, 1)
	if err != nil {
		t.Fatal(err)
	}
	tk := task.New(0, "late-starter", task.Periodic,
		task.Params{Slice: simtime.Millis(4), Period: simtime.Millis(10)})
	if err := g.Register(tk); err != nil {
		t.Fatal(err)
	}
	h.Start()
	// Start 30ms in, mid-way through the idle 100ms slice.
	g.StartPeriodic(tk, simtime.Time(simtime.Millis(30)))
	s.RunFor(simtime.Seconds(1))
	if st := tk.Stats(); st.Missed != 0 {
		t.Fatalf("late-started task missed %d/%d; SlotUpdated replan broken",
			st.Missed, st.Released)
	}
}

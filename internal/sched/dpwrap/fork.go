package dpwrap

import (
	"rtvirt/internal/clone"
	"rtvirt/internal/eventq"
	"rtvirt/internal/hv"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
)

// ForkHandler implements sim.Handler: deep-copy the slice plan (per-PCPU
// wrap entries with consumed quota), the ID-indexed carry remainders and
// idle-tax state, and the pending boundary/tax timers. With the hot state
// in flat value slices, most of the fork is plain slice copies — only the
// VCPU pointers inside entries and the admission-order list need remapping
// through ctx.
func (s *Scheduler) ForkHandler(ctx *clone.Ctx) sim.Handler {
	if n, ok := ctx.Lookup(s); ok {
		return n.(*Scheduler)
	}
	ns := &Scheduler{
		cfg:           s.cfg,
		h:             clone.Get(ctx, s.h),
		id:            s.id,
		sliceStart:    s.sliceStart,
		sliceEnd:      s.sliceEnd,
		started:       s.started,
		replanPending: s.replanPending,
		rescuePending: s.rescuePending,
		Boundaries:    s.Boundaries,
		SlicesTotal:   s.SlicesTotal,
	}
	ctx.Put(s, ns)
	ns.boundaryEv = eventq.CloneHandle(ctx, s.boundaryEv)
	ns.taxEv = eventq.CloneHandle(ctx, s.taxEv)
	ns.vcpus = make([]*hv.VCPU, len(s.vcpus))
	for i, v := range s.vcpus {
		ns.vcpus[i] = clone.Get(ctx, v)
	}
	ns.carry = append([]int64(nil), s.carry...)
	ns.taxFactor = append([]float64(nil), s.taxFactor...)
	ns.windowUse = append([]simtime.Duration(nil), s.windowUse...)
	ns.pcpu = make([]*pcpuState, len(s.pcpu))
	for i, ps := range s.pcpu {
		nps := &pcpuState{
			entries:   append([]entry(nil), ps.entries...),
			idx:       append([]int32(nil), ps.idx...),
			firstLive: ps.firstLive,
			lastEntry: ps.lastEntry,
			lastAt:    ps.lastAt,
			bgCursor:  ps.bgCursor,
		}
		for j := range nps.entries {
			nps.entries[j].v = clone.Get(ctx, nps.entries[j].v)
		}
		ns.pcpu[i] = nps
	}
	return ns
}

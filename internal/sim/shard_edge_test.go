package sim

import (
	"strings"
	"testing"

	"rtvirt/internal/clone"
	"rtvirt/internal/eventq"
	"rtvirt/internal/simtime"
)

// pingEdgeLookahead is the deterministic heterogeneous lookahead the
// per-edge tests declare for the ordered pair (from, to): the 19µs floor
// plus a pair-dependent spread.
func pingEdgeLookahead(from, to int) simtime.Duration {
	return simtime.Micros(19) + simtime.Micros(int64((from*31+to*17)%11)*7)
}

// buildPingWorldEdges is buildPingWorld with the full heterogeneous edge
// matrix declared, switching the set to explicit topology. The pinger
// derives its post delay from EdgeLookahead, so the same handler drives
// both topologies.
func buildPingWorldEdges(seed uint64, shards int, backend eventq.Backend) *pingWorld {
	w := buildPingWorld(seed, shards, backend)
	for from := 0; from < shards; from++ {
		for to := 0; to < shards; to++ {
			if from != to {
				w.set.SetEdgeLookahead(from, to, pingEdgeLookahead(from, to))
			}
		}
	}
	return w
}

func mustPanicContaining(t *testing.T, name, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Errorf("%s did not panic", name)
			return
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Errorf("%s panicked with %v, want message containing %q", name, r, want)
		}
	}()
	fn()
}

func TestSetEdgeLookaheadValidation(t *testing.T) {
	set := NewShardSet(simtime.Micros(19))
	set.NewShard(1)
	set.NewShard(2)

	mustPanicContaining(t, "zero lookahead", "positive", func() {
		set.SetEdgeLookahead(0, 1, 0)
	})
	mustPanicContaining(t, "negative lookahead", "positive", func() {
		set.SetEdgeLookahead(0, 1, -simtime.Micros(5))
	})
	mustPanicContaining(t, "unknown source shard", "unknown shard", func() {
		set.SetEdgeLookahead(7, 1, simtime.Micros(20))
	})
	mustPanicContaining(t, "negative source shard", "unknown shard", func() {
		set.SetEdgeLookahead(-1, 1, simtime.Micros(20))
	})
	mustPanicContaining(t, "unknown target shard", "unknown shard", func() {
		set.SetEdgeLookahead(0, 2, simtime.Micros(20))
	})
	mustPanicContaining(t, "self-edge", "self-edge", func() {
		set.SetEdgeLookahead(1, 1, simtime.Micros(20))
	})

	// None of the rejected calls may have flipped the set to explicit
	// topology: the default edge still reports the global lookahead.
	if got := set.EdgeLookahead(0, 1); got != simtime.Micros(19) {
		t.Fatalf("EdgeLookahead(0,1) = %v after rejected declarations, want the 19µs global", got)
	}

	set.SetEdgeLookahead(0, 1, simtime.Micros(40))
	if got := set.EdgeLookahead(0, 1); got != simtime.Micros(40) {
		t.Fatalf("EdgeLookahead(0,1) = %v, want 40µs", got)
	}
	// Redeclaring overwrites.
	set.SetEdgeLookahead(0, 1, simtime.Micros(25))
	if got := set.EdgeLookahead(0, 1); got != simtime.Micros(25) {
		t.Fatalf("EdgeLookahead(0,1) = %v after redeclaration, want 25µs", got)
	}
	// Explicit topology: the undeclared reverse direction is a non-edge.
	if got := set.EdgeLookahead(1, 0); got != 0 {
		t.Fatalf("EdgeLookahead(1,0) = %v for an undeclared edge in explicit topology, want 0", got)
	}
}

func TestPostRemotePerEdgeValidation(t *testing.T) {
	set := NewShardSet(simtime.Micros(19))
	a := set.NewShard(1)
	b := set.NewShard(2)
	c := set.NewShard(3)
	set.SetEdgeLookahead(0, 1, simtime.Micros(100))
	set.SetEdgeLookahead(1, 0, simtime.Micros(30))

	mustPanicContaining(t, "undeclared edge", "undeclared edge", func() {
		a.PostRemote(c, simtime.Time(simtime.Millis(1)), Payload{})
	})
	// Legal under the 19µs global, illegal under the edge's own 100µs.
	mustPanicContaining(t, "edge lookahead violation", "lookahead", func() {
		a.PostRemote(b, simtime.Time(simtime.Micros(50)), Payload{})
	})
	// At exactly the edge bound it is legal, per edge: 100µs out of a is
	// fine, while the reverse edge only needs 30µs.
	a.PostRemote(b, simtime.Time(simtime.Micros(100)), Payload{})
	b.PostRemote(a, simtime.Time(simtime.Micros(30)), Payload{})
	if got := len(a.outbox) + len(b.outbox); got != 2 {
		t.Fatalf("legal per-edge posts buffered %d messages, want 2", got)
	}
}

// chainNode is the 3-shard chain fixture's handler: A ticks locally and
// streams messages down the A→B (fast) edge, B relays down the B→C
// (slow) edge, C consumes. Each node folds what it sees into a hash, so
// the digest pins times, order, and routing across topology modes.
type chainNode struct {
	sh    *Shard
	next  *Shard // nil at the tail
	id    int32
	relay simtime.Duration
	ticks int
	hash  uint64
	recvd int
	// windowsAtLast records the coordinator's window counter when this
	// node fires its final tick — the direct observation that a shard
	// with no inbound walk runs to the horizon in the very first window
	// under declared topology.
	windowsAtLast uint64
}

const (
	evChainTick uint16 = iota
	evChainMsg
)

func (n *chainNode) HandleSimEvent(now simtime.Time, ev Payload) {
	switch ev.Kind {
	case evChainTick:
		n.hash = (n.hash ^ uint64(now)) * 1099511628211
		n.sh.PostRemote(n.next, now.Add(n.relay), Payload{Handler: 0, Kind: evChainMsg, Arg0: int64(now)})
		if n.ticks--; n.ticks > 0 {
			n.sh.Sim().PostAfter(simtime.Micros(10), Payload{Handler: n.id, Kind: evChainTick})
		} else {
			n.windowsAtLast = n.sh.set.Windows()
		}
	case evChainMsg:
		n.recvd++
		n.hash = (n.hash ^ 0x9e3779b9 ^ uint64(now) ^ uint64(ev.Arg0)) * 1099511628211
		if n.next != nil {
			n.sh.PostRemote(n.next, now.Add(n.relay), Payload{Handler: 0, Kind: evChainMsg, Arg0: ev.Arg0})
		}
	default:
		panic("chainNode: unknown kind")
	}
}

func (n *chainNode) ForkHandler(ctx *clone.Ctx) Handler { panic("chainNode: not forkable") }

type chainWorld struct {
	set   *ShardSet
	nodes [3]*chainNode
}

// buildChainWorld wires A→B→C. With declare, the two edges are the whole
// topology: A has no inbound walk at all (bound ∞), C has no outbound.
func buildChainWorld(declare bool) *chainWorld {
	fast, slow := simtime.Micros(20), simtime.Micros(500)
	set := NewShardSet(fast) // global floor = the fastest edge
	w := &chainWorld{set: set}
	for i := 0; i < 3; i++ {
		set.NewShard(uint64(i) + 1)
	}
	sh := set.Shards()
	w.nodes[0] = &chainNode{sh: sh[0], next: sh[1], relay: fast, ticks: 200, hash: 1}
	w.nodes[1] = &chainNode{sh: sh[1], next: sh[2], relay: slow, hash: 1}
	w.nodes[2] = &chainNode{sh: sh[2], hash: 1}
	for _, n := range w.nodes {
		n.id = n.sh.Sim().RegisterHandler(n)
	}
	if declare {
		set.SetEdgeLookahead(0, 1, fast)
		set.SetEdgeLookahead(1, 2, slow)
	}
	sh[0].Sim().PostAt(0, Payload{Handler: w.nodes[0].id, Kind: evChainTick})
	return w
}

func (w *chainWorld) digest() []uint64 {
	out := make([]uint64, 0, 8)
	for _, n := range w.nodes {
		out = append(out, n.hash, uint64(n.recvd))
	}
	return append(out, w.set.EventsFired(), uint64(w.set.Now()))
}

// TestShardChainPerEdgeWindows is the tentpole's kernel-level fixture:
// declared topology must collapse the chain's window count by an order of
// magnitude while producing bit-identical results, and the head shard —
// which nothing can reach — must finish its entire event stream inside
// window 1 instead of crawling at the global lookahead.
func TestShardChainPerEdgeWindows(t *testing.T) {
	end := simtime.Time(simtime.Millis(5))

	global := buildChainWorld(false)
	global.set.RunUntil(end, 1)
	declared := buildChainWorld(true)
	declared.set.RunUntil(end, 1)

	if !equalU64(global.digest(), declared.digest()) {
		t.Fatalf("topology modes diverged: global %v declared %v", global.digest(), declared.digest())
	}
	if got := declared.nodes[2].recvd; got != 200 {
		t.Fatalf("tail received %d messages, want 200", got)
	}
	wg, wd := global.set.Windows(), declared.set.Windows()
	if wd*10 > wg {
		t.Errorf("declared topology ran %d windows vs %d global — want at least a 10× collapse", wd, wg)
	}
	if got := declared.nodes[0].windowsAtLast; got != 1 {
		t.Errorf("no-inbound head finished in window %d under declared topology, want 1", got)
	}
	if got := global.nodes[0].windowsAtLast; got < 50 {
		t.Errorf("head finished in window %d under the global lookahead — fixture too easy (want ≥ 50)", got)
	}

	// Grouping invariance holds in explicit topology too.
	for _, groups := range []int{2, 3} {
		wrld := buildChainWorld(true)
		wrld.set.RunUntil(end, groups)
		if !equalU64(wrld.digest(), declared.digest()) {
			t.Errorf("groups=%d diverged under declared topology", groups)
		}
		if wrld.set.Windows() != wd {
			t.Errorf("groups=%d window count %d != sequential %d", groups, wrld.set.Windows(), wd)
		}
	}
}

// TestShardSetGroupInvarianceHeterogeneousEdges re-pins the determinism
// golden with a full matrix of unequal per-edge lookaheads, on both
// event-queue backends.
func TestShardSetGroupInvarianceHeterogeneousEdges(t *testing.T) {
	for _, backend := range []eventq.Backend{eventq.BackendHeap, eventq.BackendWheel} {
		ref := buildPingWorldEdges(7, 8, backend)
		ref.set.RunUntil(simtime.Time(simtime.Millis(20)), 1)
		want := ref.digest()
		if ref.set.Windows() == 0 || ref.set.EventsFired() == 0 {
			t.Fatalf("[%v] degenerate reference run: %d windows, %d events", backend, ref.set.Windows(), ref.set.EventsFired())
		}
		for _, groups := range []int{2, 3, 4, 8} {
			w := buildPingWorldEdges(7, 8, backend)
			w.set.RunUntil(simtime.Time(simtime.Millis(20)), groups)
			if got := w.digest(); !equalU64(got, want) {
				t.Errorf("[%v] groups=%d diverged from sequential: got %v want %v", backend, groups, got, want)
			}
			if w.set.Windows() != ref.set.Windows() {
				t.Errorf("[%v] groups=%d window count %d != sequential %d", backend, groups, w.set.Windows(), ref.set.Windows())
			}
		}
	}
}

// TestShardSetForkPerEdge forks a heterogeneous-edge world mid-run — with
// a message in an outbox — and checks the edge matrix and all traffic
// survive into the twin.
func TestShardSetForkPerEdge(t *testing.T) {
	w := buildPingWorldEdges(11, 4, eventq.BackendHeap)
	w.set.RunUntil(simtime.Time(simtime.Millis(5)), 2)

	shards := w.set.Shards()
	shards[1].PostRemote(shards[2], w.set.Now().Add(simtime.Millis(1)),
		Payload{Handler: 0, Kind: evPingPong, Arg0: 42})

	ctx := clone.New()
	nset, err := w.set.Fork(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for from := 0; from < 4; from++ {
		for to := 0; to < 4; to++ {
			if from == to {
				continue
			}
			if got, want := nset.EdgeLookahead(from, to), pingEdgeLookahead(from, to); got != want {
				t.Fatalf("fork edge %d->%d lookahead %v, want %v", from, to, got, want)
			}
		}
	}
	fw := &pingWorld{set: nset}
	for _, p := range w.pingers {
		fw.pingers = append(fw.pingers, clone.Get(ctx, p))
	}
	w.set.RunUntil(simtime.Time(simtime.Millis(15)), 3)
	fw.set.RunUntil(simtime.Time(simtime.Millis(15)), 1)
	if !equalU64(w.digest(), fw.digest()) {
		t.Fatalf("per-edge fork diverged: original %v fork %v", w.digest(), fw.digest())
	}
}

package workload

import (
	"fmt"
	"sort"

	"rtvirt/internal/guest"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
	"rtvirt/internal/trace"
)

// This file models the cycle-stealing scheduler attack of Zhou et al.
// ("Scheduler Vulnerabilities and Attacks in Cloud Computing"): a tenant
// that learns the host scheduler's tick period and sleeps across each
// tick so sampled accounting never observes it running, then burns CPU
// between ticks for free. The StolenBWMeter quantifies the theft from
// the trace bus: CPU time actually obtained versus CPU time the
// scheduler charged, per scheduler, so exact-accounting schedulers
// (Credit's settle-on-switch, RT-Xen, DP-WRAP) can be compared against
// a deliberately-naive tick-sampled double under the same attacker.

// EvaderConfig tunes the TickEvader.
type EvaderConfig struct {
	// TickPeriod, when positive, is the declared tick period — the
	// attacker read the scheduler docs. Zero makes it learn the period
	// from latency spikes, as the real attack does.
	TickPeriod simtime.Duration
	// Guard is the maximum sleep margin kept on each side of a predicted
	// tick (clamped to period/8 once the period is known).
	Guard simtime.Duration
	// ProbeDemand is the CPU demand of each learning probe.
	ProbeDemand simtime.Duration
	// ProbeGap is the spacing between learning probes.
	ProbeGap simtime.Duration
	// ProbeSpikes is how many tick-cost spikes to collect before
	// estimating the period.
	ProbeSpikes int
	// SpikeMin/SpikeMax bracket the per-job excess latency classified as
	// a tick-processing spike: long enough to exclude dispatch jitter,
	// short enough to exclude preemption by another VCPU.
	SpikeMin simtime.Duration
	SpikeMax simtime.Duration
}

// DefaultEvaderConfig matches the default Credit host (10ms tick, ~20µs
// tick cost, ≥500µs ratelimit so preemptions are well above SpikeMax).
func DefaultEvaderConfig() EvaderConfig {
	return EvaderConfig{
		Guard:       simtime.Micros(500),
		ProbeDemand: simtime.Micros(200),
		ProbeGap:    simtime.Millis(1),
		ProbeSpikes: 5,
		SpikeMin:    simtime.Micros(10),
		SpikeMax:    simtime.Micros(150),
	}
}

// Evader phases.
const (
	evaderProbing = iota
	evaderAttacking
)

// TickEvader is the attacking workload: a background task (no reservation
// to keep — theft is measured against the fair/capped share) that probes
// with short jobs to locate tick-cost latency spikes, estimates the tick
// period from their spacing, then releases bursts sized to fit exactly
// between consecutive ticks with a guard margin on both sides. Under
// tick-sampled accounting the attacker is never observed running; under
// exact accounting the same behaviour is charged in full and the attack
// yields nothing — which is precisely the comparison the meter reports.
type TickEvader struct {
	Task  *task.Task
	Guest *guest.OS
	Cfg   EvaderConfig

	// Probes/Bursts count released jobs per phase; Resyncs counts falls
	// back to probing after a disturbed burst; BurstWork totals the CPU
	// time obtained by clean bursts.
	Probes    int
	Bursts    int
	Resyncs   int
	BurstWork simtime.Duration

	phase    int
	period   simtime.Duration
	nextTick simtime.Time
	spikes   []simtime.Time

	sim *sim.Simulator
	id  int32
}

// NewTickEvader registers the attacker's background task on g.
func NewTickEvader(g *guest.OS, id int, name string, cfg EvaderConfig) (*TickEvader, error) {
	t := task.NewBackground(id, name)
	if err := g.Register(t); err != nil {
		return nil, err
	}
	return NewTickEvaderFor(g, t, cfg)
}

// NewTickEvaderFor wires an evader onto an already-registered background
// task.
func NewTickEvaderFor(g *guest.OS, t *task.Task, cfg EvaderConfig) (*TickEvader, error) {
	if cfg.ProbeDemand <= 0 || cfg.ProbeGap <= 0 || cfg.ProbeSpikes < 2 ||
		cfg.SpikeMin <= 0 || cfg.SpikeMax <= cfg.SpikeMin || cfg.Guard <= 0 {
		return nil, fmt.Errorf("workload: invalid evader config %+v", cfg)
	}
	e := &TickEvader{Task: t, Guest: g, Cfg: cfg, sim: g.VM().Host().Sim}
	e.id = e.sim.RegisterHandler(e)
	t.OnJobDone = e.jobDone
	return e, nil
}

// Period reports the attacker's current tick-period estimate (0 while
// still learning).
func (e *TickEvader) Period() simtime.Duration { return e.period }

// Start begins the attack at the given instant.
func (e *TickEvader) Start(at simtime.Time) {
	if e.Cfg.TickPeriod > 0 {
		// Declared period: skip learning. The host scheduler posts its
		// first tick one period after its own start (time 0 in every
		// experiment), so ticks land on multiples of the period.
		e.period = e.Cfg.TickPeriod
		e.phase = evaderAttacking
		e.nextTick = simtime.Time(0).Add(e.period)
		for !e.nextTick.After(at) {
			e.nextTick = e.nextTick.Add(e.period)
		}
		e.sim.PostAt(e.nextTick.Add(e.guard()), sim.Payload{Handler: e.id, Kind: evEvaderBurst})
		return
	}
	e.sim.PostAt(at, sim.Payload{Handler: e.id, Kind: evEvaderProbe})
}

// guard is the sleep margin around a predicted tick.
func (e *TickEvader) guard() simtime.Duration {
	g := e.Cfg.Guard
	if e.period > 0 && g > e.period/8 {
		g = e.period / 8
	}
	return g
}

// HandleSimEvent implements sim.Handler.
func (e *TickEvader) HandleSimEvent(now simtime.Time, ev sim.Payload) {
	switch ev.Kind {
	case evEvaderProbe:
		if e.phase != evaderProbing {
			return // a stale probe timer after the attack started
		}
		e.Probes++
		e.Guest.ReleaseJob(e.Task, e.Cfg.ProbeDemand)
		e.sim.PostAt(now.Add(e.Cfg.ProbeGap), sim.Payload{Handler: e.id, Kind: evEvaderProbe})
	case evEvaderBurst:
		if e.phase != evaderAttacking {
			return
		}
		e.Bursts++
		e.Guest.ReleaseJob(e.Task, e.period-2*e.guard())
	default:
		panic(fmt.Sprintf("workload: unknown evader event kind %d", ev.Kind))
	}
}

// jobDone classifies each completion: during probing it collects tick
// spikes and estimates the period; during the attack it verifies the
// burst ran undisturbed and schedules the next one (or resyncs).
func (e *TickEvader) jobDone(j *task.Job) {
	excess := j.Finish.Sub(j.Release) - j.Demand
	if e.phase == evaderProbing {
		if excess >= e.Cfg.SpikeMin && excess <= e.Cfg.SpikeMax {
			e.spikes = append(e.spikes, j.Finish)
			e.learn()
		}
		return
	}
	if excess > e.guard() {
		// Delayed past the guard margin the window was sized for: the burst
		// overlapped a tick, or contention preempted it long enough that it
		// did. Either way the prediction is worthless now — fall back to
		// probing. (Delays up to one guard keep the burst inside its
		// inter-tick window, so they are tolerated.)
		e.Resyncs++
		e.phase = evaderProbing
		e.period = 0
		e.spikes = nil
		e.sim.PostAt(j.Finish, sim.Payload{Handler: e.id, Kind: evEvaderProbe})
		return
	}
	e.BurstWork += j.Demand
	for !e.nextTick.Add(e.guard()).After(j.Finish) {
		e.nextTick = e.nextTick.Add(e.period)
	}
	e.sim.PostAt(e.nextTick.Add(e.guard()), sim.Payload{Handler: e.id, Kind: evEvaderBurst})
}

// learn estimates the tick period once enough spikes are in. Probes cover
// only a fraction of the timeline, so consecutive spikes may be several
// periods apart: the smallest gap is the base candidate, every gap is
// folded by its nearest multiple of the base, and the median of the folds
// is the estimate.
func (e *TickEvader) learn() {
	if len(e.spikes) < e.Cfg.ProbeSpikes {
		return
	}
	gaps := make([]simtime.Duration, 0, len(e.spikes)-1)
	base := simtime.Infinite
	for i := 1; i < len(e.spikes); i++ {
		g := e.spikes[i].Sub(e.spikes[i-1])
		gaps = append(gaps, g)
		if g < base {
			base = g
		}
	}
	if base < 4*e.Cfg.ProbeGap {
		// Implausibly small: two spikes from one tick's turbulence. Drop
		// the oldest spike and keep probing.
		e.spikes = e.spikes[1:]
		return
	}
	folded := make([]simtime.Duration, 0, len(gaps))
	for _, g := range gaps {
		k := (int64(g) + int64(base)/2) / int64(base)
		if k < 1 {
			k = 1
		}
		folded = append(folded, simtime.Duration(int64(g)/k))
	}
	sort.Slice(folded, func(i, j int) bool { return folded[i] < folded[j] })
	e.period = folded[len(folded)/2]
	e.phase = evaderAttacking
	anchor := e.spikes[len(e.spikes)-1]
	e.nextTick = anchor.Add(e.period)
	e.sim.PostAt(e.nextTick.Add(e.guard()), sim.Payload{Handler: e.id, Kind: evEvaderBurst})
}

// StolenBWMeter measures, per VM, the CPU time actually obtained on the
// host's PCPUs (integrated from Dispatch events) so it can be compared
// with the CPU time the scheduler *charged*. Stolen bandwidth is the
// difference, normalized by wall time: zero under exact accounting, the
// attack's yield under a tick-sampled double. Attach it to the host bus
// before Start; it only observes (trace sinks must never actuate).
type StolenBWMeter struct {
	occ      []string
	since    []simtime.Time
	obtained map[string]simtime.Duration
	end      simtime.Time
	closed   bool
}

// NewStolenBWMeter builds a meter for a host with pcpus physical CPUs.
func NewStolenBWMeter(pcpus int) *StolenBWMeter {
	return &StolenBWMeter{
		occ:      make([]string, pcpus),
		since:    make([]simtime.Time, pcpus),
		obtained: map[string]simtime.Duration{},
	}
}

// Consume implements trace.Sink: every Dispatch closes the PCPU's current
// occupancy interval and opens the next (VM empty = idle).
func (m *StolenBWMeter) Consume(ev trace.Event) {
	if ev.Kind != trace.Dispatch || ev.PCPU < 0 || ev.PCPU >= len(m.occ) {
		return
	}
	m.settle(ev.PCPU, ev.At)
	m.occ[ev.PCPU] = ev.VM
	m.since[ev.PCPU] = ev.At
}

// settle credits the open interval on PCPU p up to at.
func (m *StolenBWMeter) settle(p int, at simtime.Time) {
	if m.occ[p] != "" {
		m.obtained[m.occ[p]] += at.Sub(m.since[p])
	}
	m.since[p] = at
}

// Close settles all open intervals at the end instant; call it once after
// the run, before reading bandwidths.
func (m *StolenBWMeter) Close(end simtime.Time) {
	for p := range m.occ {
		m.settle(p, end)
	}
	m.end = end
	m.closed = true
}

// Obtained reports the total CPU time vm actually received.
func (m *StolenBWMeter) Obtained(vm string) simtime.Duration { return m.obtained[vm] }

// ObtainedBW reports vm's obtained CPU bandwidth (CPUs) over the closed
// span. The meter is attached before Start, so the span starts at 0.
func (m *StolenBWMeter) ObtainedBW(vm string) float64 {
	if !m.closed || m.end == 0 {
		return 0
	}
	return float64(m.obtained[vm]) / float64(m.end)
}

// StolenBW reports vm's stolen bandwidth: obtained minus charged,
// normalized by the span. Exact schedulers charge what they grant, so the
// value sits at ~0; a positive value is unaccounted CPU time.
func (m *StolenBWMeter) StolenBW(vm string, charged simtime.Duration) float64 {
	if !m.closed || m.end == 0 {
		return 0
	}
	return float64(m.obtained[vm]-charged) / float64(m.end)
}

package experiments

import (
	"fmt"
	"reflect"
	"testing"

	"rtvirt/internal/clone"
	"rtvirt/internal/core"
	"rtvirt/internal/guest"
	"rtvirt/internal/hv"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
	"rtvirt/internal/trace"
	"rtvirt/internal/workload"
)

// These tests pin the fork determinism contract (DESIGN.md state model): a
// system forked at t=W and run to t=T must be bit-identical — same
// Fig3/Table6-style result rows AND the same trace event stream — as a
// fresh system run straight to t=T. Across all four stacks and three seeds.

// tailRecorder keeps the trace events after the fork point so the cold
// run's stream (recorded from t=0) and the forked run's stream (recorded
// from t=W) compare over the same window.
type tailRecorder struct {
	from   simtime.Time
	events []trace.Event
}

// Consume implements trace.Sink.
func (r *tailRecorder) Consume(ev trace.Event) {
	if ev.At > r.from {
		r.events = append(r.events, ev)
	}
}

// goldenWorld is a mixed workload — a memcached VM, a 30 fps transcoding
// VM and a CPU hog — that exercises sporadic arrivals, periodic releases
// and background load on every stack.
type goldenWorld struct {
	sys   *core.System
	mc    *workload.Memcached
	tasks []*task.Task
}

func buildGoldenWorld(stack core.Stack, seed uint64) goldenWorld {
	cfg := core.DefaultConfig(stack)
	cfg.PCPUs = 2
	cfg.Seed = seed
	sys := core.NewSystem(cfg)

	var gm, gv *guest.OS
	switch stack {
	case core.Credit:
		gm = mustGuest(sys.NewWeightedGuest("mc", 1, 727))
		gv = mustGuest(sys.NewWeightedGuest("video", 1, 512))
	case core.RTXen, core.TwoLevelEDF:
		gm = mustGuest(sys.NewServerGuest("mc",
			[]hv.Reservation{{Budget: simtime.Micros(66), Period: simtime.Micros(283)}}, 727))
		gv = mustGuest(sys.NewServerGuest("video",
			[]hv.Reservation{{Budget: simtime.Millis(6), Period: simtime.Millis(10)}}, 512))
	default: // RTVirt: cross-layer guests
		zero := simtime.Duration(0)
		gm = mustGuest(sys.NewGuestOpts("mc", core.GuestOpts{VCPUs: 1, Slack: &zero}))
		gv = mustGuest(sys.NewGuest("video", 1))
	}
	gb := mustGuest(sys.NewWeightedGuest("bg", 1, 256))

	mc, err := workload.NewMemcached(gm, 0, workload.DefaultMemcachedConfig())
	must(err)
	vs, err := workload.NewVideoStream(gv, 1, 30)
	must(err)
	hog, err := workload.NewCPUHog(gb, 2, "hog")
	must(err)

	sys.Start()
	mc.Start(0)
	vs.App.Start(0)
	hog.Start(0)
	return goldenWorld{
		sys:   sys,
		mc:    mc,
		tasks: []*task.Task{mc.Task, vs.App.Task, hog.Task},
	}
}

// goldenRows collects the Table-6-style outcome of a world: per-task job
// statistics, the memcached latency distribution, the host's bandwidth
// allocation and its overhead accounting. Every field must match exactly
// between the cold and forked runs.
type goldenRows struct {
	Stats    []task.Stats
	Requests int
	Mean     simtime.Duration
	P999     simtime.Duration
	Max      simtime.Duration
	Alloc    float64
	Overhead core.OverheadReport
}

func collectGoldenRows(w goldenWorld) goldenRows {
	rows := goldenRows{
		Requests: w.mc.Latency.Count(),
		Mean:     w.mc.Latency.Mean(),
		P999:     w.mc.Latency.Percentile(99.9),
		Max:      w.mc.Latency.Max(),
		Alloc:    w.sys.AllocatedBandwidth(),
		Overhead: w.sys.Overhead(),
	}
	for _, t := range w.tasks {
		rows.Stats = append(rows.Stats, t.Stats())
	}
	return rows
}

func TestForkDeterminismGolden(t *testing.T) {
	const (
		warm  = simtime.Second
		total = 2500 * simtime.Millisecond
	)
	stacks := []core.Stack{core.RTVirt, core.RTXen, core.TwoLevelEDF, core.Credit}
	seeds := []uint64{1, 2, 3}
	for _, stack := range stacks {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%v/seed%d", stack, seed), func(t *testing.T) {
				// Cold control: one world, straight to t=total.
				cold := buildGoldenWorld(stack, seed)
				coldTail := &tailRecorder{from: simtime.Time(warm)}
				cold.sys.Host.TraceTo(coldTail)
				cold.sys.Run(total)
				want := collectGoldenRows(cold)

				// Warm world: run to t=warm, fork, run the fork out. The
				// trace bus is observer state and is not cloned; attach the
				// recorder to the fork's own bus.
				base := buildGoldenWorld(stack, seed)
				base.sys.Run(warm)
				fsys, ctx, err := base.sys.Fork()
				if err != nil {
					t.Fatalf("fork at t=%v: %v", warm, err)
				}
				fw := goldenWorld{sys: fsys, mc: clone.Get(ctx, base.mc)}
				for _, tk := range base.tasks {
					fw.tasks = append(fw.tasks, clone.Get(ctx, tk))
				}
				forkTail := &tailRecorder{from: simtime.Time(warm)}
				fsys.Host.TraceTo(forkTail)
				fsys.Run(total - warm)
				got := collectGoldenRows(fw)

				if !reflect.DeepEqual(got, want) {
					t.Errorf("forked rows diverge from cold run:\n fork: %+v\n cold: %+v", got, want)
				}
				if len(forkTail.events) != len(coldTail.events) {
					t.Fatalf("trace tail length: fork %d events, cold %d events",
						len(forkTail.events), len(coldTail.events))
				}
				for i := range forkTail.events {
					if forkTail.events[i] != coldTail.events[i] {
						t.Fatalf("trace tails diverge at event %d:\n fork: %+v\n cold: %+v",
							i, forkTail.events[i], coldTail.events[i])
					}
				}
				if len(forkTail.events) == 0 {
					t.Fatal("trace tail empty — the comparison window saw no events")
				}

				// The base world must be untouched by its fork's future: it
				// still sits at t=warm with its pre-fork statistics.
				if now := base.sys.Now(); now != simtime.Time(warm) {
					t.Errorf("base world advanced to %v by running its fork", now)
				}
			})
		}
	}
}

// TestLoadStepsForkMatchesCold pins that the warm-start Figure-5 sweep is
// bit-identical to the cold control that replays the prefix per arm.
func TestLoadStepsForkMatchesCold(t *testing.T) {
	cfg := LoadStepConfig{
		Seed:     2,
		Warmup:   2 * simtime.Second,
		Duration: 3 * simtime.Second,
		Steps:    []int{0, 3},
	}
	forked := Figure5LoadSteps(cfg)
	cfg.Cold = true
	cold := Figure5LoadSteps(cfg)
	if !reflect.DeepEqual(forked, cold) {
		t.Fatalf("forked sweep diverges from cold sweep:\n fork: %+v\n cold: %+v", forked, cold)
	}
	if len(forked) != 2*len(Arms()) {
		t.Fatalf("expected %d rows, got %d", 2*len(Arms()), len(forked))
	}
	for _, r := range forked {
		if r.Requests == 0 {
			t.Fatalf("row %+v recorded no requests", r)
		}
	}
}

func TestBisectNoDivergence(t *testing.T) {
	build := func() *core.System { return buildGoldenWorld(core.RTVirt, 1).sys }
	res, err := Bisect(build, build, simtime.Second, simtime.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged {
		t.Fatalf("identical builders reported divergent: %+v", res)
	}
	if res.Probes != 1 {
		t.Fatalf("expected a single whole-horizon probe, got %d", res.Probes)
	}
}

func TestBisectFindsDivergence(t *testing.T) {
	const horizon = simtime.Second
	buildA := func() *core.System { return buildGoldenWorld(core.RTXen, 1).sys }
	buildB := func() *core.System { return buildGoldenWorld(core.TwoLevelEDF, 1).sys }
	res, err := Bisect(buildA, buildB, horizon, 100*simtime.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Diverged {
		t.Fatal("deferrable-server and polling-server stacks never diverged")
	}
	if res.At > simtime.Time(horizon) {
		t.Fatalf("divergence reported beyond the horizon: %v", res.At)
	}
	if res.A == res.B {
		t.Fatalf("divergent result names identical events: %+v", res)
	}
	if res.Render() == "" {
		t.Fatal("empty render")
	}
}

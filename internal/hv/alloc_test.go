package hv

import (
	"testing"

	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
	"rtvirt/internal/trace"
)

// The kernel's emission helpers run on every dispatch, completion and
// guest switch, so with no sinks attached they must do no work and no
// allocation. CI runs this test explicitly as the zero-alloc guard.
func TestTracerDisabledZeroAlloc(t *testing.T) {
	_, h, _ := testHost(t, 1, CostModel{})
	g := newFifoGuest(h)
	vm := h.NewVM("vm0", g)
	v, err := vm.AddVCPU(true, Reservation{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.Tracing() {
		t.Fatal("host traces with no sinks attached")
	}
	p := h.PCPUs()[0]
	tk := task.New(0, "t", task.Periodic, task.Params{Slice: simtime.Millis(1), Period: simtime.Millis(10)})
	j := tk.Release(0, simtime.Millis(1))
	now := simtime.Time(simtime.Millis(2))

	if n := testing.AllocsPerRun(1000, func() {
		h.emitDispatch(p, v, now, simtime.Millis(1))
		h.emitJobDone(v, j, now)
		h.emitGuestSwitch(v, j, now)
	}); n != 0 {
		t.Fatalf("disabled emission helpers allocate %.1f allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		h.Emit(trace.Event{At: now, Kind: trace.Migrate, PCPU: 0, VM: vm.Name, VCPU: v.Index})
	}); n != 0 {
		t.Fatalf("disabled Emit allocates %.1f allocs/op, want 0", n)
	}
	j.Abandon(now)
}

// Command rtvirt-sim runs a user-described scenario on the simulated host
// and reports per-task timeliness plus scheduler overhead.
//
// The scenario is a JSON file (see internal/scenario for the schema and
// examples/scenarios/ for samples):
//
//	{
//	  "stack": "rtvirt",            // rtvirt | rt-xen | two-level-edf | credit
//	  "pcpus": 4,
//	  "seconds": 30,
//	  "seed": 1,
//	  "costs": {"context_switch_us": 2, "migration_us": 3,    // platform cost model
//	            "hypercall_us": 10,                           // (omitted fields keep §4.5 defaults)
//	            "network_delay_us": 19},                      // client→server latency, must be > 0
//	  "vms": [
//	    {
//	      "name": "rt-vm",
//	      "vcpus": 1,
//	      "max_vcpus": 4,                                       // CPU hotplug bound
//	      "servers": [{"budget_us": 600, "period_us": 1000}],   // rt-xen / caps
//	      "weight": 256,                                        // credit only
//	      "slack_us": 500,                                      // per-VCPU budget slack
//	      "guest_sched": "pedf",                                // pedf (default) | gedf
//	      "priority_slack": false,                              // §6 priority-scaled slack
//	      "tasks": [
//	        {"name": "ctl", "kind": "periodic", "slice_us": 2000,
//	         "period_us": 10000, "phase_ms": 0, "priority": 0},
//	        {"name": "srv", "kind": "sporadic", "slice_us": 500,
//	         "period_us": 5000, "rate_hz": 50},
//	        {"name": "batch", "kind": "background"}
//	      ]
//	    }
//	  ]
//	}
//
// Usage:
//
//	rtvirt-sim scenario.json
//	rtvirt-sim -trace-csv schedule.csv scenario.json
//	rtvirt-sim -trace events.jsonl scenario.json  # stream telemetry; replay with rtvirt-analyze -replay
//	rtvirt-sim -parallel 4 a.json b.json c.json   # independent runs, output in arg order
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"rtvirt/internal/runner"
	"rtvirt/internal/scenario"
	"rtvirt/internal/simtime"
	"rtvirt/internal/trace"
)

func main() {
	var (
		traceOut  = flag.String("trace", "", "stream every telemetry event to this JSONL file (re-ingest with rtvirt-analyze -replay)")
		traceCSV  = flag.String("trace-csv", "", "write the schedule trace to this CSV file")
		traceJSON = flag.String("trace-json", "", "write the schedule trace to this JSON file")
		traceSVG  = flag.String("trace-svg", "", "render the schedule as an SVG Gantt chart to this file")
		svgWindow = flag.Int64("svg-ms", 100, "SVG window length in simulated milliseconds")
		summary   = flag.Bool("summary", false, "print a per-VCPU/per-PCPU schedule digest")
		parallel  = flag.Int("parallel", 0, "workers when running multiple scenarios (0 = GOMAXPROCS, 1 = sequential)")
	)
	flag.Parse()
	runner.SetDefault(*parallel)
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: rtvirt-sim [flags] <scenario.json> [more scenarios...]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	tracing := *traceCSV != "" || *traceJSON != "" || *traceSVG != "" || *summary
	if flag.NArg() > 1 {
		if tracing || *traceOut != "" {
			log.Fatal("trace/summary flags require a single scenario")
		}
		// Each scenario is an independent simulation: fan out over the
		// runner and print results in argument order.
		type outcome struct {
			res *scenario.Result
			err error
		}
		results := runner.Map(0, flag.Args(), func(path string) outcome {
			res, err := runScenario(path, scenario.Options{})
			return outcome{res, err}
		})
		for i, o := range results {
			if i > 0 {
				fmt.Println()
			}
			fmt.Printf("==== %s ====\n", flag.Arg(i))
			if o.err != nil {
				log.Fatal(o.err)
			}
			report(o.res)
		}
		return
	}

	opts := scenario.Options{Trace: tracing}
	var jsonl *trace.JSONL
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		jsonl = trace.NewJSONL(f)
		opts.Sinks = append(opts.Sinks, jsonl)
	}
	res, err := runScenario(flag.Arg(0), opts)
	if err != nil {
		log.Fatal(err)
	}
	report(res)
	if jsonl != nil {
		if err := jsonl.Flush(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntelemetry (%d events) written to %s\n", res.Events.Total(), *traceOut)
	}
	if tracing || jsonl != nil {
		fmt.Printf("events: %s\n", res.Events)
	}

	if res.Trace != nil {
		if *summary {
			fmt.Println()
			if err := trace.Summarize(res.Trace).Write(os.Stdout); err != nil {
				log.Fatal(err)
			}
		}
		if *traceCSV != "" {
			if err := writeTrace(*traceCSV, res, true); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("schedule trace (%d records) written to %s\n", res.Trace.Len(), *traceCSV)
		}
		if *traceJSON != "" {
			if err := writeTrace(*traceJSON, res, false); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("schedule trace (%d records) written to %s\n", res.Trace.Len(), *traceJSON)
		}
		if *traceSVG != "" {
			sf, err := os.Create(*traceSVG)
			if err != nil {
				log.Fatal(err)
			}
			to := rtvirtTime(*svgWindow)
			if err := res.Trace.WriteSVG(sf, res.PCPUs, 0, to); err != nil {
				sf.Close()
				log.Fatal(err)
			}
			sf.Close()
			fmt.Printf("schedule Gantt (first %dms) written to %s\n", *svgWindow, *traceSVG)
		}
		if res.Trace.Dropped() > 0 {
			fmt.Printf("note: %d trace records dropped (cap)\n", res.Trace.Dropped())
		}
	}
}

// runScenario parses and executes one scenario file.
func runScenario(path string, opts scenario.Options) (*scenario.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	sc, err := scenario.Parse(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	return scenario.Run(sc, opts)
}

// report prints the per-task timeliness summary for one run.
func report(res *scenario.Result) {
	fmt.Printf("ran %ds on %d PCPUs under %v\n", res.Seconds, res.PCPUs, res.Stack)
	fmt.Printf("reserved bandwidth: %.2f CPUs\n\n", res.AllocatedBW)
	for _, tr := range res.Tasks {
		s := tr.Stats
		if tr.Kind == "background" {
			fmt.Printf("%-14s %-12s background, consumed %v CPU time\n", tr.VM, tr.Name, s.TotalWork)
			continue
		}
		fmt.Printf("%-14s %-12s released=%5d completed=%5d missed=%4d (%.3f%%) mean-resp=%v",
			tr.VM, tr.Name, s.Released, s.Completed, s.Missed, 100*tr.MissRatio, s.MeanResp())
		if tr.Latency != nil && tr.Latency.Count() > 0 {
			fmt.Printf(" p99.9=%v", tr.Latency.Percentile(99.9))
		}
		fmt.Println()
	}
	ov := res.Overhead
	fmt.Printf("\nscheduler overhead: %.3f%% (schedule %v, context switches %v, %d migrations, %d hypercalls)\n",
		ov.Percent, ov.ScheduleTime, ov.CtxSwitchTime, ov.Migrations, ov.Hypercalls)
}

func writeTrace(path string, res *scenario.Result, csv bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if csv {
		return res.Trace.WriteCSV(f)
	}
	return res.Trace.WriteJSON(f)
}

// rtvirtTime converts milliseconds to a simulated instant.
func rtvirtTime(ms int64) simtime.Time { return simtime.Time(simtime.Millis(ms)) }

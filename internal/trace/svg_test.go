package trace

import (
	"bytes"
	"strings"
	"testing"

	"rtvirt/internal/simtime"
)

func TestWriteSVG(t *testing.T) {
	var r Recorder
	r.Add(Record{At: 0, Kind: Dispatch, PCPU: 0, VM: "vmA"})
	r.Add(Record{At: simtime.Time(ms(5)), Kind: Dispatch, PCPU: 0, VM: "vmB"})
	r.Add(Record{At: simtime.Time(ms(6)), Kind: JobMiss, PCPU: 0, Task: "late", Late: simtime.Micros(50)})
	r.Add(Record{At: simtime.Time(ms(8)), Kind: Dispatch, PCPU: 1, VM: "vmA"})
	var buf bytes.Buffer
	if err := r.WriteSVG(&buf, 2, 0, simtime.Time(ms(10))); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	for _, want := range []string{"<svg", "pcpu0", "pcpu1", "vmA", "vmB", "miss: late", "</svg>"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("svg missing %q", want)
		}
	}
	// Invalid windows are rejected.
	if err := r.WriteSVG(&buf, 2, 10, 10); err == nil {
		t.Fatal("degenerate window accepted")
	}
	if err := r.WriteSVG(&buf, 0, 0, 10); err == nil {
		t.Fatal("zero pcpus accepted")
	}
}

// End-to-end: an actual run's trace renders valid SVG with boxes.
func TestWriteSVGEndToEnd(t *testing.T) {
	rec := runTracedScenario(t)
	var buf bytes.Buffer
	if err := rec.WriteSVG(&buf, 1, 0, simtime.Time(simtime.Millis(100))); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "<rect") < 10 {
		t.Fatalf("svg has too few boxes:\n%.300s", buf.String())
	}
}

// Adaptive feedback-driven CPU allocation, in the style of the KVM
// adaptive-allocation work (arXiv 2310.14741): a controller observes one
// task's tail latency through the trace bus and retunes the task's
// reservation through the existing sched_setattr → INC/DEC_BW hypercall
// path. It is the production-shape consumer of the cross-layer interface:
// reservations follow observed load instead of being declared once.
package guest

import (
	"fmt"

	"rtvirt/internal/clone"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
	"rtvirt/internal/trace"
)

// Typed kernel-event kinds for the AdaptiveController's own handler (the
// guest OS panics on kinds it does not know, so the controller never
// shares the OS's handler ID).
const (
	// evAdaptiveWindow closes one observation window and retunes.
	evAdaptiveWindow uint16 = iota
)

// AdaptiveConfig tunes an AdaptiveController.
type AdaptiveConfig struct {
	// Target is the per-window worst response time the controller steers
	// toward. Required.
	Target simtime.Duration
	// Window is the observation window (default 100ms).
	Window simtime.Duration
	// MinSlice/MaxSlice bound the retuned slice (defaults: 100µs and the
	// task's period).
	MinSlice simtime.Duration
	MaxSlice simtime.Duration
	// Step is the multiplicative adjustment per decision (default 0.25:
	// grow by 25%, shrink by 25%).
	Step float64
	// LowFraction is the hysteresis floor: the controller only considers
	// shrinking when the window max stays under LowFraction·Target
	// (default 0.5). Between the floor and the target it holds.
	LowFraction float64
	// DecreaseAfter is how many consecutive low windows trigger a shrink
	// (default 3) — the other half of the hysteresis.
	DecreaseAfter int
	// Backoff is the number of windows skipped after an admission
	// rejection (default 2, doubling per consecutive rejection, capped at
	// 16) so a full host is not hammered with hopeless INC_BW calls.
	Backoff int
}

// withDefaults fills the zero fields.
func (c AdaptiveConfig) withDefaults() AdaptiveConfig {
	if c.Window <= 0 {
		c.Window = simtime.Millis(100)
	}
	if c.MinSlice <= 0 {
		c.MinSlice = simtime.Micros(100)
	}
	if c.Step <= 0 {
		c.Step = 0.25
	}
	if c.LowFraction <= 0 {
		c.LowFraction = 0.5
	}
	if c.DecreaseAfter <= 0 {
		c.DecreaseAfter = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 2
	}
	return c
}

// AdaptiveController watches one task's completions on the host trace bus
// and retunes the task's reservation with hysteresis: grow when the
// window's worst response time breaches the target, shrink only after
// several consecutive quiet windows, and back off exponentially while the
// host rejects growth. It is a trace.Sink that only records — all
// actuation happens in its own kernel event, never on the emit hot path.
type AdaptiveController struct {
	cfg AdaptiveConfig
	g   *OS
	t   *task.Task
	id  int32

	// Counters for tests and experiment tables.
	Incs    int
	Decs    int
	Rejects int
	Windows int
	Skipped int

	// OnWindow, when set, observes each closed window (now, window max
	// response, sample count, current slice). Experiment-owned; like the
	// guest's demand functions it is NOT carried across a fork.
	OnWindow func(now simtime.Time, winMax simtime.Duration, samples int, slice simtime.Duration)

	winMax    simtime.Duration
	winCount  int
	lowStreak int
	skip      int
	backoff   int
	attached  bool
	stopped   bool
}

// NewAdaptiveController builds a controller for registered task t on g.
// Call Start to attach it to the trace bus and begin the window clock.
func NewAdaptiveController(g *OS, t *task.Task, cfg AdaptiveConfig) (*AdaptiveController, error) {
	if _, ok := g.tasks[t]; !ok {
		return nil, ErrUnknownTask
	}
	if cfg.Target <= 0 {
		return nil, fmt.Errorf("guest: adaptive controller needs a positive latency target, got %v", cfg.Target)
	}
	c := &AdaptiveController{cfg: cfg.withDefaults(), g: g, t: t}
	c.backoff = c.cfg.Backoff
	c.id = g.sim.RegisterHandler(c)
	return c, nil
}

// Task returns the controlled task.
func (c *AdaptiveController) Task() *task.Task { return c.t }

// Config returns the effective configuration (defaults filled).
func (c *AdaptiveController) Config() AdaptiveConfig { return c.cfg }

// Start attaches the controller to the host trace bus and arms the first
// window close one Window after at.
func (c *AdaptiveController) Start(at simtime.Time) {
	if c.attached || c.stopped {
		return
	}
	c.attached = true
	c.g.host.TraceTo(c)
	c.g.sim.PostAt(at.Add(c.cfg.Window), sim.Payload{Handler: c.id, Kind: evAdaptiveWindow})
}

// Stop halts observation and retuning. The sink stays on the bus but
// ignores everything; the window clock stops re-arming.
func (c *AdaptiveController) Stop() { c.stopped = true }

// Consume implements trace.Sink: it records the controlled task's
// response times and nothing else. Sinks run synchronously on the emit
// path, so this must never actuate.
func (c *AdaptiveController) Consume(ev trace.Event) {
	if c.stopped || ev.Task != c.t.Name || ev.VM != c.g.vm.Name {
		return
	}
	var resp simtime.Duration
	switch ev.Kind {
	case trace.JobDone:
		resp = ev.ArgDuration()
	case trace.JobMiss:
		// Arg is lateness past the deadline; response = period + lateness.
		resp = c.t.Params().Period + ev.ArgDuration()
	default:
		return
	}
	c.winCount++
	if resp > c.winMax {
		c.winMax = resp
	}
}

// HandleSimEvent implements sim.Handler.
func (c *AdaptiveController) HandleSimEvent(now simtime.Time, ev sim.Payload) {
	switch ev.Kind {
	case evAdaptiveWindow:
		if c.stopped {
			return
		}
		c.window(now)
		c.g.sim.PostAt(now.Add(c.cfg.Window), sim.Payload{Handler: c.id, Kind: evAdaptiveWindow})
	default:
		panic(fmt.Sprintf("guest: unknown adaptive event kind %d", ev.Kind))
	}
}

// window closes one observation window and decides.
func (c *AdaptiveController) window(now simtime.Time) {
	c.Windows++
	max, n := c.winMax, c.winCount
	c.winMax, c.winCount = 0, 0
	p := c.t.Params()
	if c.OnWindow != nil {
		c.OnWindow(now, max, n, p.Slice)
	}
	if c.skip > 0 {
		c.skip--
		c.Skipped++
		return
	}
	if n == 0 {
		return // idle window: no evidence either way
	}
	switch {
	case max > c.cfg.Target:
		c.lowStreak = 0
		hi := p.Period
		if c.cfg.MaxSlice > 0 && c.cfg.MaxSlice < hi {
			hi = c.cfg.MaxSlice
		}
		next := simtime.Duration(float64(p.Slice) * (1 + c.cfg.Step))
		if next > hi {
			next = hi
		}
		if next <= p.Slice {
			return // already at the ceiling
		}
		if err := c.g.SetAttr(c.t, task.Params{Slice: next, Period: p.Period}); err != nil {
			// Host or guest admission said no: back off exponentially so
			// a full host is not polled every window.
			c.Rejects++
			c.skip = c.backoff
			if c.backoff < 16 {
				c.backoff *= 2
			}
			return
		}
		c.Incs++
		c.backoff = c.cfg.Backoff
	case float64(max) < c.cfg.LowFraction*float64(c.cfg.Target):
		c.lowStreak++
		if c.lowStreak < c.cfg.DecreaseAfter {
			return
		}
		c.lowStreak = 0
		next := simtime.Duration(float64(p.Slice) * (1 - c.cfg.Step))
		if next < c.cfg.MinSlice {
			next = c.cfg.MinSlice
		}
		if next >= p.Slice {
			return // already at the floor
		}
		// Shrinks release bandwidth; the guest accepts them by §3.2.
		if err := c.g.SetAttr(c.t, task.Params{Slice: next, Period: p.Period}); err == nil {
			c.Decs++
		}
	default:
		c.lowStreak = 0
	}
}

// ForkHandler implements sim.Handler: the clone re-attaches itself to the
// forked host's (fresh) trace bus, so the fork keeps controlling without
// inheriting the source's sink list. OnWindow is experiment-owned and not
// carried, like the guest's demand functions.
func (c *AdaptiveController) ForkHandler(ctx *clone.Ctx) sim.Handler {
	if n, ok := ctx.Lookup(c); ok {
		return n.(*AdaptiveController)
	}
	nc := &AdaptiveController{
		cfg:       c.cfg,
		id:        c.id,
		Incs:      c.Incs,
		Decs:      c.Decs,
		Rejects:   c.Rejects,
		Windows:   c.Windows,
		Skipped:   c.Skipped,
		winMax:    c.winMax,
		winCount:  c.winCount,
		lowStreak: c.lowStreak,
		skip:      c.skip,
		backoff:   c.backoff,
		attached:  c.attached,
		stopped:   c.stopped,
	}
	ctx.Put(c, nc)
	nc.g = clone.Get(ctx, c.g)
	nc.t = task.Clone(ctx, c.t)
	if nc.attached && !nc.stopped {
		nc.g.host.TraceTo(nc)
	}
	return nc
}

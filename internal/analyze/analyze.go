// Package analyze performs offline compositional schedulability analysis
// on a scenario file — the role CARTS plays in the paper's workflow (§2.1,
// §4.2). Given the VMs and tasks of a scenario, it derives:
//
//   - per-VM VCPU plans for the static RT-Xen stack: tasks are packed
//     first-fit-decreasing onto VCPUs and each VCPU gets its minimal
//     periodic-resource interface (Θ, Π) from the Shin & Lee analysis;
//   - per-VM VCPU plans for RTVirt: the same packing, but each VCPU is
//     sized by the §3.3 guest formula (budget = ⌈ΣBW·minP⌉ + slack over
//     the smallest task period), which is what internal/guest reserves at
//     run time;
//   - host-level admission: allocated bandwidth, claimed CPUs under both
//     the partitioned (FFD) and gEDF (BCL) stand-ins for DMPR, and the
//     bandwidth saving RTVirt realizes over the static interfaces.
//
// The same JSON file drives both this analyzer and cmd/rtvirt-sim, so a
// scenario can be admission-checked before it is simulated.
package analyze

import (
	"fmt"
	"math"
	"sort"

	"rtvirt/internal/csa"
	"rtvirt/internal/scenario"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

// Options tunes the analysis.
type Options struct {
	// Quantum rounds RT-Xen server budgets up, as CARTS does for a real
	// hypervisor tick. Zero means the 1ms default used throughout §4.
	Quantum simtime.Duration
	// Period fixes the server period for every interface. Zero sweeps the
	// millisecond grid up to the smallest task period and keeps the
	// lowest-bandwidth result (csa.BestInterfaceQ).
	Period simtime.Duration
	// Slack is the per-VCPU budget slack RTVirt's guest adds to absorb
	// scheduling overhead. Zero means the 500µs default of §3.3.
	Slack simtime.Duration
	// MaxProcs caps the gEDF claimed-CPU search. Zero means 128.
	MaxProcs int
}

func (o Options) withDefaults() Options {
	if o.Quantum == 0 {
		o.Quantum = simtime.Millis(1)
	}
	if o.Slack == 0 {
		o.Slack = simtime.Micros(500)
	}
	if o.MaxProcs == 0 {
		o.MaxProcs = 128
	}
	return o
}

// VCPUPlan is one VCPU's worth of tasks plus the resource it needs.
type VCPUPlan struct {
	// Interface is the periodic resource reserved for this VCPU.
	Interface csa.Interface
	// Tasks names the tasks packed onto this VCPU.
	Tasks []string
	// TaskBW is the summed utilization of those tasks.
	TaskBW float64
}

// Bandwidth reports the reserved fraction of a physical CPU.
func (p VCPUPlan) Bandwidth() float64 { return p.Interface.Bandwidth() }

// VMAnalysis is the per-VM result.
type VMAnalysis struct {
	// Name is the VM's scenario name.
	Name string
	// TaskBW is the summed utilization of the VM's real-time tasks.
	TaskBW float64
	// Background counts best-effort tasks, which need no reservation.
	Background int
	// RTXen holds one plan per VCPU under static interfaces.
	RTXen []VCPUPlan
	// RTXenBW sums the static interface bandwidths.
	RTXenBW float64
	// RTVirt holds one plan per VCPU under the §3.3 guest sizing.
	RTVirt []VCPUPlan
	// RTVirtBW sums the RTVirt reservation bandwidths.
	RTVirtBW float64
	// DeclaredVCPUs echoes the scenario's vcpus field so callers can spot
	// plans that need more virtual CPUs than the scenario declared.
	DeclaredVCPUs int
}

// HostAnalysis is the whole-scenario result.
type HostAnalysis struct {
	// PCPUs is the physical CPU count being admitted against.
	PCPUs int
	// VMs holds the per-VM plans.
	VMs []VMAnalysis
	// TaskBW is the total real-time utilization across all VMs.
	TaskBW float64
	// RTXenAllocated sums every static interface's bandwidth (the
	// "Allocated" series of Figure 3).
	RTXenAllocated float64
	// RTXenClaimedFFD is the CPUs a partitioned packing of the interfaces
	// sets aside (the "Claimed" series of Figure 3).
	RTXenClaimedFFD int
	// RTXenClaimedGEDF is the BCL gEDF claimed-CPU estimate, or 0 when the
	// test finds no bound within Options.MaxProcs.
	RTXenClaimedGEDF int
	// RTXenAdmitted reports whether the claimed CPUs fit the host.
	RTXenAdmitted bool
	// RTVirtAllocated sums the RTVirt reservation bandwidths.
	RTVirtAllocated float64
	// RTVirtAdmitted reports whether RTVirt's fluid allocation fits.
	RTVirtAdmitted bool
	// SavingPct is the bandwidth RTVirt returns to the host relative to
	// the static interfaces, in percent.
	SavingPct float64
}

// Analyze derives the admission plan for a scenario. The scenario must
// already pass Validate; tasks with kind "background" are excluded from
// reservations and merely counted.
func Analyze(sc scenario.Scenario, opt Options) (HostAnalysis, error) {
	opt = opt.withDefaults()
	if err := sc.Validate(); err != nil {
		return HostAnalysis{}, err
	}
	host := HostAnalysis{PCPUs: sc.PCPUs}
	if host.PCPUs <= 0 {
		host.PCPUs = 4 // scenario.Run's default
	}
	var allIfaces []csa.Interface
	for _, vm := range sc.VMs {
		va, err := analyzeVM(vm, opt)
		if err != nil {
			return HostAnalysis{}, err
		}
		host.VMs = append(host.VMs, va)
		host.TaskBW += va.TaskBW
		host.RTXenAllocated += va.RTXenBW
		host.RTVirtAllocated += va.RTVirtBW
		for _, p := range va.RTXen {
			allIfaces = append(allIfaces, p.Interface)
		}
	}
	host.RTXenClaimedFFD = csa.PartitionedProcs(allIfaces)
	if n, ok := csa.MinProcsGEDF(allIfaces, opt.MaxProcs); ok {
		host.RTXenClaimedGEDF = n
	}
	host.RTXenAdmitted = host.RTXenClaimedFFD <= host.PCPUs
	host.RTVirtAdmitted = host.RTVirtAllocated <= float64(host.PCPUs)+1e-9
	if host.RTXenAllocated > 0 {
		host.SavingPct = 100 * (host.RTXenAllocated - host.RTVirtAllocated) / host.RTXenAllocated
	}
	return host, nil
}

// rtTask is a reservable task drawn from the scenario.
type rtTask struct {
	name   string
	params task.Params
	bw     float64
	prio   int
}

func analyzeVM(vm scenario.VM, opt Options) (VMAnalysis, error) {
	va := VMAnalysis{Name: vm.Name, DeclaredVCPUs: vm.VCPUs}
	if va.DeclaredVCPUs <= 0 {
		va.DeclaredVCPUs = 1
	}
	// Per-VM slack override and §6 priority-proportional slack, mirroring
	// what the guest will size at run time.
	slack := opt.Slack
	if vm.SlackUS != nil {
		slack = simtime.Micros(*vm.SlackUS)
	}
	var rts []rtTask
	for i, ts := range vm.Tasks {
		if ts.Kind == "background" {
			va.Background++
			continue
		}
		p := task.Params{
			Slice:  simtime.Micros(ts.SliceUS),
			Period: simtime.Micros(ts.PeriodUS),
		}
		name := ts.Name
		if name == "" {
			name = fmt.Sprintf("task%d", i)
		}
		rts = append(rts, rtTask{name: name, params: p, bw: p.Bandwidth(), prio: ts.Priority})
		va.TaskBW += p.Bandwidth()
	}
	if len(rts) == 0 {
		return va, nil
	}

	// Pack first-fit-decreasing by utilization, the same order the guest's
	// repack plan and the FFD claimed-CPU bound use. A task joins the
	// first VCPU that can still be served by a feasible interface.
	sort.SliceStable(rts, func(i, j int) bool { return rts[i].bw > rts[j].bw })
	var bins [][]rtTask
	for _, rt := range rts {
		placed := false
		for b := range bins {
			if _, ok := interfaceFor(append(paramsOf(bins[b]), rt.params), opt); ok {
				bins[b] = append(bins[b], rt)
				placed = true
				break
			}
		}
		if !placed {
			if _, ok := interfaceFor([]task.Params{rt.params}, opt); !ok {
				return va, fmt.Errorf("analyze: VM %q task %q (%.3f CPUs) has no feasible interface",
					vm.Name, rt.name, rt.bw)
			}
			bins = append(bins, []rtTask{rt})
		}
	}

	for _, bin := range bins {
		ps := paramsOf(bin)
		iface, _ := interfaceFor(ps, opt) // feasible by construction
		names := make([]string, len(bin))
		var bw float64
		prio := 0
		for i, rt := range bin {
			names[i] = rt.name
			bw += rt.bw
			if rt.prio > prio {
				prio = rt.prio
			}
		}
		va.RTXen = append(va.RTXen, VCPUPlan{Interface: iface, Tasks: names, TaskBW: bw})
		va.RTXenBW += iface.Bandwidth()

		// §6 priority-proportional slack, per VCPU like the guest.
		binSlack := slack
		if vm.PrioritySlack && prio > 0 {
			binSlack = simtime.Duration(int64(slack) * int64(1+prio))
		}
		res := rtvirtReservation(ps, binSlack)
		va.RTVirt = append(va.RTVirt, VCPUPlan{Interface: res, Tasks: names, TaskBW: bw})
		va.RTVirtBW += res.Bandwidth()
	}
	return va, nil
}

func paramsOf(bin []rtTask) []task.Params {
	out := make([]task.Params, len(bin))
	for i, rt := range bin {
		out[i] = rt.params
	}
	return out
}

// interfaceFor computes the minimal feasible interface for one VCPU's
// tasks, honouring the fixed-period option.
func interfaceFor(ts []task.Params, opt Options) (csa.Interface, bool) {
	if opt.Period > 0 {
		theta, ok := csa.MinBudgetQ(ts, opt.Period, opt.Quantum)
		if !ok {
			return csa.Interface{}, false
		}
		return csa.Interface{Period: opt.Period, Budget: theta}, true
	}
	return csa.BestInterfaceQ(ts, csa.DefaultCandidates(ts), opt.Quantum)
}

// rtvirtReservation mirrors internal/guest's §3.3 sizing: budget is the
// summed bandwidth over the smallest task period, rounded up, plus slack;
// capped at the period (a full CPU).
func rtvirtReservation(ts []task.Params, slack simtime.Duration) csa.Interface {
	minP := simtime.Infinite
	var sum float64
	for _, p := range ts {
		sum += p.Bandwidth()
		if p.Period < minP {
			minP = p.Period
		}
	}
	budget := simtime.Duration(math.Ceil(sum*float64(minP))) + slack
	if budget > minP {
		budget = minP
	}
	return csa.Interface{Period: minP, Budget: budget}
}

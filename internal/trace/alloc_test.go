package trace

import (
	"testing"

	"rtvirt/internal/simtime"
)

// The disabled path is the default for every experiment sweep, so it must
// be free: emitting on a Bus with no sinks performs zero allocations.
// CI runs this test explicitly as the zero-alloc guard.
func TestTracerDisabledZeroAlloc(t *testing.T) {
	var bus Bus
	if bus.Active() {
		t.Fatal("zero-value Bus reports active")
	}
	ev := Event{At: simtime.Time(simtime.Millis(1)), Kind: Dispatch, PCPU: 0, VM: "vm0", Arg: 42}
	if n := testing.AllocsPerRun(1000, func() { bus.Emit(ev) }); n != 0 {
		t.Fatalf("disabled Emit allocates %.1f allocs/op, want 0", n)
	}

	// The enabled path with a counting sink stays allocation-free too, so
	// sweeps can afford per-arm event counts.
	var c Counts
	bus.Attach(&c)
	if n := testing.AllocsPerRun(1000, func() { bus.Emit(ev) }); n != 0 {
		t.Fatalf("counting Emit allocates %.1f allocs/op, want 0", n)
	}
	if c.Total() == 0 {
		t.Fatal("counting sink saw no events")
	}
	bus.Reset()
	if bus.Active() {
		t.Fatal("Reset did not disable the bus")
	}
}

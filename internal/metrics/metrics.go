// Package metrics collects the observables the RTVirt evaluation reports:
// request latencies with exact tail percentiles, deadline-miss ratios, and
// time-integrated CPU-bandwidth allocations.
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"rtvirt/internal/simtime"
)

// StreamingPercentiles are the quantiles a streaming-mode LatencyRecorder
// tracks (the tails the evaluation reports: Table 4 and Figure 5).
var StreamingPercentiles = [4]float64{90, 95, 99, 99.9}

// LatencyRecorder stores every sample so percentiles are exact, matching
// how the paper measures NIC-to-NIC latency distributions.
//
// For runs too long to retain every sample, EnableStreaming switches the
// recorder to O(1) memory: percentiles come from P² estimators at the
// StreamingPercentiles, mean/max/count stay exact, and the sample-set
// operations (CDF, Merge, arbitrary percentiles) become unavailable.
type LatencyRecorder struct {
	samples []simtime.Duration
	sorted  bool
	sum     simtime.Duration

	// Streaming-mode state; est is non-nil iff streaming is enabled.
	est   []*P2Quantile
	count int
	max   simtime.Duration
}

// EnableStreaming switches the recorder to constant-memory P² estimation.
// It must be called before the first sample; it panics otherwise.
func (l *LatencyRecorder) EnableStreaming() {
	if l.est != nil {
		return
	}
	if len(l.samples) > 0 {
		panic("metrics: EnableStreaming after samples were recorded")
	}
	l.est = make([]*P2Quantile, len(StreamingPercentiles))
	for i, p := range StreamingPercentiles {
		l.est[i] = NewP2Quantile(p / 100)
	}
}

// Streaming reports whether the recorder is in streaming mode.
func (l *LatencyRecorder) Streaming() bool { return l.est != nil }

// Add records one latency sample.
func (l *LatencyRecorder) Add(d simtime.Duration) {
	l.sum += d
	if l.est != nil {
		l.count++
		if d > l.max {
			l.max = d
		}
		for _, e := range l.est {
			e.Add(d)
		}
		return
	}
	// Keep the sorted flag when samples arrive in non-decreasing order, so
	// a later Merge of time-ordered recorders can skip the re-sort.
	if len(l.samples) == 0 {
		l.sorted = true
	} else if l.sorted && d < l.samples[len(l.samples)-1] {
		l.sorted = false
	}
	l.samples = append(l.samples, d)
}

// Reserve preallocates capacity for n further samples, for workloads whose
// request count is known up front. A no-op in streaming mode.
func (l *LatencyRecorder) Reserve(n int) {
	if l.est != nil || n <= 0 || cap(l.samples)-len(l.samples) >= n {
		return
	}
	grown := make([]simtime.Duration, len(l.samples), len(l.samples)+n)
	copy(grown, l.samples)
	l.samples = grown
}

// Merge appends all samples from other. When both recorders are already
// sorted and every sample in other is at or above l's current maximum (the
// common shard-by-time case), the merged recorder stays sorted and the
// next percentile query skips the re-sort. Streaming recorders cannot be
// merged (P² states do not compose); Merge panics on either side.
func (l *LatencyRecorder) Merge(other *LatencyRecorder) {
	if l.est != nil || other.est != nil {
		panic("metrics: Merge on streaming LatencyRecorder")
	}
	if len(other.samples) == 0 {
		return
	}
	tailMergeable := l.isSorted() && other.isSorted() &&
		(len(l.samples) == 0 || l.samples[len(l.samples)-1] <= other.samples[0])
	l.samples = append(l.samples, other.samples...)
	l.sum += other.sum
	l.sorted = tailMergeable
}

// isSorted reports whether the sample slice is known-sorted (trivially so
// when it holds at most one sample).
func (l *LatencyRecorder) isSorted() bool { return l.sorted || len(l.samples) <= 1 }

// Count reports the number of samples.
func (l *LatencyRecorder) Count() int {
	if l.est != nil {
		return l.count
	}
	return len(l.samples)
}

// Mean reports the mean latency, or 0 with no samples.
func (l *LatencyRecorder) Mean() simtime.Duration {
	n := l.Count()
	if n == 0 {
		return 0
	}
	return l.sum / simtime.Duration(n)
}

// Max reports the largest sample, or 0 with no samples.
func (l *LatencyRecorder) Max() simtime.Duration {
	if l.est != nil {
		return l.max
	}
	l.sort()
	if len(l.samples) == 0 {
		return 0
	}
	return l.samples[len(l.samples)-1]
}

// Percentile reports the p-th percentile (0 < p ≤ 100) using the
// nearest-rank method, so the result is always an observed sample. In
// streaming mode only the StreamingPercentiles are available (estimated,
// not exact); any other p panics.
func (l *LatencyRecorder) Percentile(p float64) simtime.Duration {
	if p <= 0 || p > 100 {
		panic(fmt.Sprintf("metrics: percentile %g out of (0,100]", p))
	}
	if l.est != nil {
		for i, sp := range StreamingPercentiles {
			if p == sp {
				return l.est[i].Value()
			}
		}
		panic(fmt.Sprintf("metrics: percentile %g not tracked in streaming mode (have %v)", p, StreamingPercentiles))
	}
	if len(l.samples) == 0 {
		return 0
	}
	l.sort()
	rank := int(p/100*float64(len(l.samples))+0.9999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(l.samples) {
		rank = len(l.samples) - 1
	}
	return l.samples[rank]
}

// CDF returns (latency, cumulative fraction) pairs at every distinct
// sample value, suitable for plotting Figure 5 style curves. Unavailable
// in streaming mode (the samples are gone).
func (l *LatencyRecorder) CDF() []CDFPoint {
	if l.est != nil {
		panic("metrics: CDF requires exact samples; recorder is in streaming mode")
	}
	l.sort()
	n := len(l.samples)
	if n == 0 {
		return nil
	}
	var pts []CDFPoint
	for i := 0; i < n; {
		j := i
		for j < n && l.samples[j] == l.samples[i] {
			j++
		}
		pts = append(pts, CDFPoint{Latency: l.samples[i], Fraction: float64(j) / float64(n)})
		i = j
	}
	return pts
}

// TailSummary formats the standard tail table row used by Table 4.
func (l *LatencyRecorder) TailSummary() string {
	return fmt.Sprintf("p90=%v p95=%v p99=%v p99.9=%v",
		l.Percentile(90), l.Percentile(95), l.Percentile(99), l.Percentile(99.9))
}

func (l *LatencyRecorder) sort() {
	if l.sorted {
		return
	}
	sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
	l.sorted = true
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Latency  simtime.Duration
	Fraction float64
}

// BandwidthMeter integrates CPU allocation over time: Observe(t, cpus)
// records that from the previous observation until t, cpus CPUs-worth of
// bandwidth was allocated. Average() reports mean CPUs over the window.
type BandwidthMeter struct {
	last     simtime.Time
	started  bool
	integral float64 // CPU·ns
	span     simtime.Duration
}

// Start begins the measurement window at t.
func (b *BandwidthMeter) Start(t simtime.Time) {
	b.last = t
	b.started = true
}

// Observe accrues the interval [last, t) at an allocation of cpus CPUs.
func (b *BandwidthMeter) Observe(t simtime.Time, cpus float64) {
	if !b.started {
		b.Start(t)
		return
	}
	if t < b.last {
		panic("metrics: BandwidthMeter time went backwards")
	}
	dt := t.Sub(b.last)
	b.integral += cpus * float64(dt)
	b.span += dt
	b.last = t
}

// Average reports the time-weighted mean CPU allocation.
func (b *BandwidthMeter) Average() float64 {
	if b.span == 0 {
		return 0
	}
	return b.integral / float64(b.span)
}

// Span reports the total observed window.
func (b *BandwidthMeter) Span() simtime.Duration { return b.span }

// MissSummary aggregates deadline outcomes across a set of tasks.
type MissSummary struct {
	Tasks    int
	Released int
	Judged   int
	Missed   int
	// WorstTask / WorstRatio identify the task with the highest miss ratio.
	WorstTask  string
	WorstRatio float64
	// TasksWithMisses counts tasks that missed at least one deadline.
	TasksWithMisses int
}

// Ratio reports the overall miss ratio.
func (m MissSummary) Ratio() float64 {
	if m.Judged == 0 {
		return 0
	}
	return float64(m.Missed) / float64(m.Judged)
}

// String implements fmt.Stringer.
func (m MissSummary) String() string {
	return fmt.Sprintf("tasks=%d released=%d judged=%d missed=%d (%.3f%%) worst=%q %.3f%%",
		m.Tasks, m.Released, m.Judged, m.Missed, 100*m.Ratio(), m.WorstTask, 100*m.WorstRatio)
}

// Table is a minimal fixed-width text table builder for experiment output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Example admission demonstrates the offline-analysis → simulate → verify
// workflow that the paper's evaluation uses: CARTS-style analysis decides
// what to reserve, the simulator shows the reservation actually holds, and
// the comparison exposes how much bandwidth each stack really needs.
//
// It builds a scenario in code (the same schema examples/scenarios/*.json
// use), admission-checks it with rtvirt.AnalyzeScenario, then runs it and
// checks the analyzer's predictions against the measured outcome.
package main

import (
	"fmt"
	"log"

	"rtvirt"
)

func main() {
	sc := rtvirt.Scenario{
		Stack:   "rtvirt",
		PCPUs:   4,
		Seconds: 10,
		Seed:    42,
		VMs: []rtvirt.ScenarioVM{
			{
				Name: "plc-vm", VCPUs: 1,
				Tasks: []rtvirt.ScenarioTask{
					{Name: "control-loop", Kind: "periodic", SliceUS: 1500, PeriodUS: 10000},
					{Name: "safety-check", Kind: "periodic", SliceUS: 4000, PeriodUS: 40000},
				},
			},
			{
				Name: "media-vm", VCPUs: 2,
				Tasks: []rtvirt.ScenarioTask{
					{Name: "vlc-24fps", Kind: "periodic", SliceUS: 19000, PeriodUS: 41000},
					{Name: "vlc-30fps", Kind: "periodic", SliceUS: 18000, PeriodUS: 33000},
				},
			},
			{
				Name: "batch-vm", VCPUs: 1,
				Tasks: []rtvirt.ScenarioTask{
					{Name: "reindex", Kind: "background"},
				},
			},
		},
	}

	// Step 1: offline analysis, before anything runs.
	plan, err := rtvirt.AnalyzeScenario(sc, rtvirt.AnalyzeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== offline admission analysis ==")
	for _, vm := range plan.VMs {
		if len(vm.RTXen) == 0 {
			fmt.Printf("%-10s best-effort only (%d background tasks)\n", vm.Name, vm.Background)
			continue
		}
		fmt.Printf("%-10s demand %.3f CPUs on %d VCPUs\n", vm.Name, vm.TaskBW, len(vm.RTXen))
		for i := range vm.RTXen {
			fmt.Printf("  vcpu%d: static interface %v (%.3f CPUs)  |  rtvirt reserve %v (%.3f CPUs)\n",
				i, vm.RTXen[i].Interface, vm.RTXen[i].Bandwidth(),
				vm.RTVirt[i].Interface, vm.RTVirt[i].Bandwidth())
		}
	}
	fmt.Printf("\nhost (%d PCPUs): static stack claims %d CPUs, allocates %.3f;"+
		" rtvirt allocates %.3f (saving %.1f%%)\n",
		plan.PCPUs, plan.RTXenClaimedFFD, plan.RTXenAllocated,
		plan.RTVirtAllocated, plan.SavingPct)
	if !plan.RTVirtAdmitted {
		log.Fatal("scenario rejected by admission control")
	}

	// Step 2: simulate the very same scenario.
	res, err := rtvirt.RunScenario(sc, rtvirt.ScenarioOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== simulated outcome ==")
	var missed int
	for _, tr := range res.Tasks {
		if tr.Kind == "background" {
			fmt.Printf("%-10s %-14s best-effort, consumed %v\n", tr.VM, tr.Name, tr.Stats.TotalWork)
			continue
		}
		missed += tr.Stats.Missed
		fmt.Printf("%-10s %-14s released=%4d missed=%d\n",
			tr.VM, tr.Name, tr.Stats.Released, tr.Stats.Missed)
	}

	// Step 3: verify prediction against measurement.
	fmt.Println("\n== analyzer vs. simulator ==")
	fmt.Printf("predicted reservation %.3f CPUs, simulator reserved %.3f CPUs\n",
		plan.RTVirtAllocated, res.AllocatedBW)
	fmt.Printf("deadline misses: %d (admission promised 0)\n", missed)
	if missed != 0 {
		log.Fatal("admitted scenario missed deadlines")
	}
}

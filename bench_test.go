// Benchmarks regenerating every table and figure of the RTVirt paper's
// evaluation (§4). Each benchmark runs the corresponding experiment on the
// simulated host and reports the paper's headline metric alongside the
// wall-clock cost of the simulation itself.
//
// Run them all with:
//
//	go test -bench=. -benchmem
//
// The reported custom metrics are simulated quantities (latencies in
// simulated microseconds, bandwidth in CPUs, miss ratios in percent); see
// EXPERIMENTS.md for the full paper-versus-measured record.
package rtvirt_test

import (
	"strings"
	"testing"

	"rtvirt"
)

// metricName builds a whitespace-free custom metric unit.
func metricName(parts ...string) string {
	return strings.ReplaceAll(strings.Join(parts, "-"), " ", "")
}

// BenchmarkFigure1 regenerates the motivating example: the uncoordinated
// two-level EDF baseline versus RTVirt.
func BenchmarkFigure1(b *testing.B) {
	var lastBaseline, lastRTVirt float64
	for i := 0; i < b.N; i++ {
		r := rtvirt.Figure1(uint64(i+1), 30*rtvirt.Second)
		lastBaseline = r.Baseline["RTA2"]
		lastRTVirt = r.RTVirt["RTA2"]
	}
	b.ReportMetric(100*lastBaseline, "baseline-RTA2-miss-%")
	b.ReportMetric(100*lastRTVirt, "rtvirt-RTA2-miss-%")
}

// BenchmarkTable2 regenerates the NH-Dec configuration table.
func BenchmarkTable2(b *testing.B) {
	var row rtvirt.Figure3Row
	for i := 0; i < b.N; i++ {
		cfg := rtvirt.DefaultFigure3Config()
		cfg.Seed = uint64(i + 1)
		cfg.Duration = 20 * rtvirt.Second
		row = rtvirt.Table2(cfg)
	}
	b.ReportMetric(row.RTAReq, "rta-req-cpus")
	b.ReportMetric(row.RTXenAllocated, "rtxen-alloc-cpus")
	b.ReportMetric(row.RTVirtAllocated, "rtvirt-alloc-cpus")
}

// BenchmarkFigure3 regenerates the periodic bandwidth comparison across
// all six Table-1 groups.
func BenchmarkFigure3(b *testing.B) {
	var rows []rtvirt.Figure3Row
	for i := 0; i < b.N; i++ {
		cfg := rtvirt.DefaultFigure3Config()
		cfg.Seed = uint64(i + 1)
		cfg.Duration = 20 * rtvirt.Second
		rows = rtvirt.Figure3(cfg)
	}
	var claimed, virt float64
	var misses int
	for _, r := range rows {
		claimed += r.RTXenClaimed
		virt += r.RTVirtAllocated
		misses += r.RTVirtMisses.Missed + r.RTXenMisses.Missed
	}
	b.ReportMetric(100*(1-virt/claimed), "rtvirt-bandwidth-saving-%")
	b.ReportMetric(float64(misses), "total-deadline-misses")
}

// BenchmarkSporadic regenerates the §4.2 sporadic-RTA experiment.
func BenchmarkSporadic(b *testing.B) {
	var rows []rtvirt.Figure3Row
	for i := 0; i < b.N; i++ {
		cfg := rtvirt.DefaultFigure3Config()
		cfg.Seed = uint64(i + 1)
		cfg.Sporadic = true
		cfg.Requests = 40
		cfg.Duration = 25 * rtvirt.Second
		rows = rtvirt.Figure3(cfg)
	}
	var misses, judged int
	for _, r := range rows {
		misses += r.RTVirtMisses.Missed + r.RTXenMisses.Missed
		judged += r.RTVirtMisses.Judged + r.RTXenMisses.Judged
	}
	b.ReportMetric(float64(misses), "total-deadline-misses")
	b.ReportMetric(float64(judged), "requests-judged")
}

// BenchmarkFigure4 regenerates the dynamic video-streaming experiment.
func BenchmarkFigure4(b *testing.B) {
	var r rtvirt.Figure4Result
	for i := 0; i < b.N; i++ {
		cfg := rtvirt.DefaultFigure4Config()
		cfg.Seed = uint64(i + 1)
		cfg.Duration = 2 * rtvirt.Minute
		r = rtvirt.Figure4(cfg)
	}
	b.ReportMetric(100*r.Misses.Ratio(), "miss-%")
	b.ReportMetric(r.WorstMissPct, "worst-task-miss-%")
	b.ReportMetric(r.AvgAllocated, "avg-alloc-cpus")
}

// BenchmarkTable4 regenerates the dedicated-CPU memcached latency table.
func BenchmarkTable4(b *testing.B) {
	var rows []rtvirt.Table4Row
	for i := 0; i < b.N; i++ {
		rows = rtvirt.Table4(uint64(i+1), 60*rtvirt.Second)
	}
	for _, r := range rows {
		b.ReportMetric(r.P999.Micros(), metricName(string(r.Scheduler), "p99.9-µs"))
	}
}

// BenchmarkFigure5a regenerates the non-RTA contention experiment.
func BenchmarkFigure5a(b *testing.B) {
	var rows []rtvirt.Figure5Row
	for i := 0; i < b.N; i++ {
		cfg := rtvirt.DefaultFigure5Config()
		cfg.Seed = uint64(i + 1)
		cfg.Duration = 60 * rtvirt.Second
		rows = rtvirt.Figure5a(cfg)
	}
	for _, r := range rows {
		b.ReportMetric(r.P999.Micros(), metricName(string(r.Arm), "p99.9-µs"))
	}
}

// BenchmarkFigure5b regenerates the periodic contention experiment.
func BenchmarkFigure5b(b *testing.B) {
	var rows []rtvirt.Figure5Row
	for i := 0; i < b.N; i++ {
		cfg := rtvirt.DefaultFigure5Config()
		cfg.Seed = uint64(i + 1)
		cfg.Duration = 30 * rtvirt.Second
		rows = rtvirt.Figure5b(cfg)
	}
	for _, r := range rows {
		b.ReportMetric(r.P999.Micros(), metricName(string(r.Arm), "p99.9-µs"))
		b.ReportMetric(100*r.VideoMisses.Ratio(), metricName(string(r.Arm), "video-miss-%"))
	}
}

// BenchmarkTable6MultiRTA regenerates the Multi-RTA VMs overhead scenario.
func BenchmarkTable6MultiRTA(b *testing.B) {
	var rows []rtvirt.Table6Row
	for i := 0; i < b.N; i++ {
		cfg := rtvirt.DefaultTable6Config()
		cfg.Seed = uint64(i + 1)
		cfg.Duration = 10 * rtvirt.Second
		rows = rtvirt.Table6(rtvirt.MultiRTAVMs, cfg)
	}
	for _, r := range rows {
		b.ReportMetric(r.OverheadPct, r.Framework+"-overhead-%")
		b.ReportMetric(float64(r.RTAsAdmitted), r.Framework+"-rtas")
	}
}

// BenchmarkTable6SingleRTA regenerates the Single-RTA VMs overhead
// scenario.
func BenchmarkTable6SingleRTA(b *testing.B) {
	var rows []rtvirt.Table6Row
	for i := 0; i < b.N; i++ {
		cfg := rtvirt.DefaultTable6Config()
		cfg.Seed = uint64(i + 1)
		cfg.Duration = 10 * rtvirt.Second
		rows = rtvirt.Table6(rtvirt.SingleRTAVMs, cfg)
	}
	for _, r := range rows {
		b.ReportMetric(r.OverheadPct, r.Framework+"-overhead-%")
		b.ReportMetric(float64(r.RTAsAdmitted), r.Framework+"-rtas")
	}
}

// BenchmarkAblations runs the design-choice sweeps DESIGN.md calls out:
// minimum global slice, budget slack, server flavour, work conservation,
// and the §6 idle tax.
func BenchmarkAblationMinSlice(b *testing.B) {
	var rows []rtvirt.AblationRow
	for i := 0; i < b.N; i++ {
		rows = rtvirt.AblationMinSlice(uint64(i+1), 5*rtvirt.Second)
	}
	for _, r := range rows {
		b.ReportMetric(r.MissPct, metricName(r.Label, "miss-%"))
	}
}

func BenchmarkAblationSlack(b *testing.B) {
	var rows []rtvirt.AblationRow
	for i := 0; i < b.N; i++ {
		rows = rtvirt.AblationSlack(uint64(i+1), 10*rtvirt.Second)
	}
	for _, r := range rows {
		b.ReportMetric(r.Extra, metricName(r.Label, "alloc-cpus"))
	}
}

func BenchmarkAblationServerFlavour(b *testing.B) {
	var rows []rtvirt.AblationRow
	for i := 0; i < b.N; i++ {
		rows = rtvirt.AblationServerFlavour(uint64(i+1), 20*rtvirt.Second)
	}
	for _, r := range rows {
		b.ReportMetric(r.MissPct, metricName(r.Label, "RTA2-miss-%"))
	}
}

func BenchmarkAblationWorkConserving(b *testing.B) {
	var rows []rtvirt.AblationRow
	for i := 0; i < b.N; i++ {
		rows = rtvirt.AblationWorkConserving(uint64(i+1), 20*rtvirt.Second)
	}
	for _, r := range rows {
		b.ReportMetric(r.P999.Micros(), metricName(r.Label, "p99.9-µs"))
	}
}

func BenchmarkAblationIdleTax(b *testing.B) {
	var rows []rtvirt.AblationRow
	for i := 0; i < b.N; i++ {
		rows = rtvirt.AblationIdleTax(uint64(i+1), 4*rtvirt.Second)
	}
	for _, r := range rows {
		b.ReportMetric(r.Extra, metricName(r.Label, "admitted"))
	}
}

// BenchmarkAblationGuestScheduler compares the pEDF guest process
// scheduler against the §6 gEDF alternative: both keep the test set
// schedulable; the metric rows expose the guest-level switch rates, where
// gEDF trades cross-VCPU job migration for fewer same-VCPU preemptions.
func BenchmarkAblationGuestScheduler(b *testing.B) {
	var rows []rtvirt.AblationRow
	for i := 0; i < b.N; i++ {
		rows = rtvirt.AblationGuestScheduler(uint64(i+1), 4*rtvirt.Second)
	}
	for _, r := range rows {
		b.ReportMetric(r.MissPct, metricName(r.Label, "miss-%"))
		b.ReportMetric(r.Extra, metricName(r.Label, "guest-switches-per-s"))
	}
}

package quick

import (
	"fmt"
	"math/rand"

	"rtvirt/internal/scenario"
)

// periodsMS is the pool of task/server periods (milliseconds). Mutually
// non-harmonic values (7, 13, 33) are deliberately included: harmonic task
// sets hide phasing bugs that co-prime periods expose.
var periodsMS = []int64{5, 7, 10, 13, 20, 33, 50}

// genBounds are the generator's envelope. The utilization cap stays well
// under every stack's schedulable region (gEDF and pEDF are both safe at
// 0.65·m for bounded per-task utilization), so any deadline miss of a
// confirmed-admitted task under RTVirt is a genuine violation, not an
// overload artifact.
const (
	maxPCPUs      = 4
	maxVMs        = 3
	maxTasksPerVM = 3
	utilCap       = 0.65 // of total host capacity
	taskUtilCap   = 0.25 // per task
)

// Generate draws one random-but-valid scenario from rng. The result always
// passes scenario.Validate; host- and guest-level admission may still
// reject pieces of it at build time, which the runner records as a skip.
// Stack and Seed are left zero — the runner overrides both.
func Generate(rng *rand.Rand) scenario.Scenario {
	pcpus := 1 + rng.Intn(maxPCPUs)
	budget := utilCap * float64(pcpus)
	used := 0.0

	sc := scenario.Scenario{PCPUs: pcpus}
	if rng.Intn(2) == 0 {
		sc.Costs = genCosts(rng)
	}
	nVMs := 1 + rng.Intn(maxVMs)
	for v := 0; v < nVMs; v++ {
		vm := scenario.VM{Name: fmt.Sprintf("vm%d", v)}
		serverStyle := rng.Intn(2) == 0
		if serverStyle {
			nSrv := 1 + rng.Intn(2)
			for s := 0; s < nSrv; s++ {
				u := 0.10 + 0.30*rng.Float64()
				if used+u > budget {
					break
				}
				used += u
				p := periodsMS[rng.Intn(len(periodsMS))] * 1000
				vm.Servers = append(vm.Servers, scenario.ServerSpec{
					BudgetUS: int64(u * float64(p)),
					PeriodUS: p,
				})
			}
			if len(vm.Servers) == 0 {
				// Out of budget before the first server: degrade to a
				// minimal vcpus-style VM instead of an invalid empty one.
				serverStyle = false
			}
		}
		if !serverStyle {
			vm.VCPUs = 1 + rng.Intn(2)
		}

		nTasks := 1 + rng.Intn(maxTasksPerVM)
		for t := 0; t < nTasks; t++ {
			u := 0.02 + (taskUtilCap-0.02)*rng.Float64()
			if !serverStyle {
				if used+u > budget {
					break
				}
				used += u
			}
			p := periodsMS[rng.Intn(len(periodsMS))] * 1000
			slice := int64(u * float64(p))
			if slice < 100 {
				slice = 100
			}
			ts := scenario.TaskSpec{
				Name:     fmt.Sprintf("t%d", t),
				SliceUS:  slice,
				PeriodUS: p,
			}
			if rng.Float64() < 0.2 {
				// Sporadic arrivals, mean inter-arrival comfortably above
				// the period so the Normal model's bursts stay bounded.
				ts.Kind = "sporadic"
				ts.RateHz = (0.3 + 0.4*rng.Float64()) * 1e6 / float64(p)
				if rng.Float64() < 0.35 {
					// Open-loop production traffic, rate-matched to the
					// closed-form stream it replaces.
					ts.Arrivals = genArrivals(rng, ts.RateHz)
				}
			} else if rng.Intn(2) == 0 {
				ts.PhaseMS = int64(rng.Intn(10))
			}
			if rng.Float64() < 0.2 {
				// Adaptive controller: the slice may grow to maxGrow×, so
				// the extra headroom is charged against the envelope up
				// front — a controller-driven INC_BW can then never push
				// the host past utilCap even if every request is admitted.
				const maxGrow = 2.0
				extra := (maxGrow - 1) * u
				if serverStyle || used+extra <= budget {
					if !serverStyle {
						used += extra
					}
					ts.Adaptive = &scenario.AdaptiveSpec{
						TargetUS:   p / 2,
						WindowMS:   int64(20 + rng.Intn(80)),
						MaxSliceUS: int64(maxGrow * float64(slice)),
					}
				}
			}
			vm.Tasks = append(vm.Tasks, ts)
		}
		if rng.Float64() < 0.25 {
			vm.Tasks = append(vm.Tasks, scenario.TaskSpec{Name: "bg", Kind: "background"})
		}
		if rng.Float64() < 0.15 {
			// Tick-evasion attacker (a background-class task): exercises the
			// probe/learn/attack state machine and its fork path under every
			// stack. Half declare the default Credit tick, half learn it.
			ev := scenario.TaskSpec{Name: "evader", Kind: "evader"}
			if rng.Intn(2) == 0 {
				ev.Evader = &scenario.EvaderSpec{TickUS: 10000}
			}
			vm.Tasks = append(vm.Tasks, ev)
		}
		if rng.Intn(4) == 0 {
			// Declared working set scales cross-PCPU migration cost through
			// the model's migration_per_mib term.
			vm.WorkingSetMiB = rng.Intn(513)
		}
		sc.VMs = append(sc.VMs, vm)
	}
	return sc
}

// fp boxes a float64 for the pointer-valued spec fields.
func fp(v float64) *float64 { return &v }

// genArrivals draws one open-loop arrival block whose long-run rate tracks
// rateHz, so the utilization budgeting done for the closed-form stream
// stays representative.
func genArrivals(rng *rand.Rand, rateHz float64) *scenario.ArrivalSpec {
	switch rng.Intn(4) {
	case 0:
		return &scenario.ArrivalSpec{Poisson: &scenario.PoissonSpec{RateHz: rateHz}}
	case 1:
		// Mean of the sine curve over whole days is (base+peak)/2 = rateHz.
		return &scenario.ArrivalSpec{Diurnal: &scenario.DiurnalSpec{
			BaseHz: 0.5 * rateHz,
			PeakHz: 1.5 * rateHz,
			DayMS:  int64(1000 + rng.Intn(1000)),
			Phase:  rng.Float64(),
		}}
	case 2:
		// Two-state burst process; equal mean sojourns give a stationary
		// rate of (0.5+1.5)/2 = rateHz.
		s := int64(50 + rng.Intn(150))
		return &scenario.ArrivalSpec{MMPP: &scenario.MMPPSpec{
			RatesHz:   []float64{0.5 * rateHz, 1.5 * rateHz},
			SojournMS: []int64{s, s},
		}}
	default:
		return &scenario.ArrivalSpec{Flash: &scenario.FlashCrowdSpec{
			BaseHz: rateHz,
			Surges: []scenario.SurgeSpec{{
				AtMS:    int64(rng.Intn(2000)),
				PeakHz:  2 * rateHz,
				RampMS:  int64(100 + rng.Intn(200)),
				DecayMS: int64(100 + rng.Intn(200)),
			}},
		}}
	}
}

// genCostSpec draws one cost term centred on scaleUS microseconds, in a
// random distribution form. Tails are capped at hiCapUS so generated
// worlds stay near the default cost magnitudes: the oracles assume total
// charged overhead stays far below the per-VCPU budget slack.
func genCostSpec(rng *rand.Rand, scaleUS, hiCapUS float64) *scenario.CostSpec {
	switch rng.Intn(5) {
	case 0:
		return &scenario.CostSpec{Const: fp(scaleUS * (0.5 + rng.Float64()))}
	case 1:
		return &scenario.CostSpec{Uniform: &scenario.UniformSpec{
			LoUS: 0.5 * scaleUS, HiUS: 1.5 * scaleUS}}
	case 2:
		return &scenario.CostSpec{Normal: &scenario.NormalSpec{
			MeanUS: scaleUS, StddevUS: 0.25 * scaleUS, MinUS: 0.1 * scaleUS}}
	case 3:
		return &scenario.CostSpec{LogNormal: &scenario.LogNormalSpec{
			MeanUS: scaleUS, Sigma: 0.3 + 0.3*rng.Float64()}}
	default:
		hi := 10 * scaleUS
		if hi > hiCapUS {
			hi = hiCapUS
		}
		return &scenario.CostSpec{Pareto: &scenario.ParetoSpec{
			LoUS: 0.5 * scaleUS, HiUS: hi, Alpha: 1.8 + rng.Float64()}}
	}
}

// genCosts draws a random per-cause costs block (or nil). Magnitudes track
// the §4 defaults — the point is exercising the distribution-valued charge
// paths and their determinism contracts, not overloading the host.
func genCosts(rng *rand.Rand) *scenario.CostsSpec {
	c := &scenario.CostsSpec{}
	any := false
	if rng.Intn(2) == 0 {
		c.Hypercall = genCostSpec(rng, 10, 50)
		any = true
	}
	if rng.Intn(2) == 0 {
		c.CtxSwitchWarm = genCostSpec(rng, 1, 10)
		c.CtxSwitchCold = genCostSpec(rng, 2, 50)
		any = true
	}
	if rng.Intn(2) == 0 {
		c.Migration = genCostSpec(rng, 3, 50)
		any = true
	}
	if rng.Intn(3) == 0 {
		c.MigrationPerMiB = &scenario.CostSpec{Const: fp(0.05 * rng.Float64())}
		any = true
	}
	if rng.Intn(2) == 0 {
		c.ScheduleBase = genCostSpec(rng, 1, 10)
		any = true
	}
	if rng.Intn(3) == 0 {
		c.GuestSwitch = genCostSpec(rng, 1, 10)
		any = true
	}
	if !any {
		return nil
	}
	return c
}

// NeverMiss lists the "vm/task" keys §3.2's guarantee covers in sc:
// periodic tasks of admission-controlled (vcpus-style) VMs. Server-style
// VMs carry whatever reservations the generator drew — their supply can be
// legitimately mis-phased against a task's period — and sporadic tasks may
// burst past their declared rate, so neither is watched.
func NeverMiss(sc scenario.Scenario) []string {
	var keys []string
	for _, vm := range sc.VMs {
		if len(vm.Servers) > 0 {
			continue
		}
		for _, ts := range vm.Tasks {
			if ts.Adaptive != nil {
				// A controller may shrink the reservation below the task's
				// demand mid-run; misses during that probe are by design.
				continue
			}
			if ts.Kind == "" || ts.Kind == "periodic" {
				keys = append(keys, vm.Name+"/"+ts.Name)
			}
		}
	}
	return keys
}

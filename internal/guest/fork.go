package guest

import (
	"rtvirt/internal/clone"
	"rtvirt/internal/eventq"
	"rtvirt/internal/hv"
	"rtvirt/internal/sim"
	"rtvirt/internal/task"
)

// ForkDriver implements hv.GuestDriver. The host calls it while walking its
// VM list; the simulator calls ForkHandler for the same OS later and gets
// the memoized clone back.
func (g *OS) ForkDriver(ctx *clone.Ctx) hv.GuestDriver { return g.cloneOS(ctx) }

// ForkHandler implements sim.Handler.
func (g *OS) ForkHandler(ctx *clone.Ctx) sim.Handler { return g.cloneOS(ctx) }

// cloneOS deep-copies the guest: per-VCPU ready queues (heap layout and tie
// break sequence preserved verbatim), task states with their pending release
// timers, and the admission bookkeeping. Demand functions are NOT carried —
// they are workload-owned closures, and the workload's own ForkHandler
// re-installs them on the cloned task set; until it does, releases fall back
// to the declared slice.
func (g *OS) cloneOS(ctx *clone.Ctx) *OS {
	if n, ok := ctx.Lookup(g); ok {
		return n.(*OS)
	}
	ng := &OS{
		cfg:       g.cfg,
		host:      clone.Get(ctx, g.host),
		sim:       clone.Get(ctx, g.sim),
		handlerID: g.handlerID,
		nextOwner: g.nextOwner,
		tasks:     make(map[*task.Task]*taskState, len(g.tasks)),
		byOwner:   make(map[int32]*taskState, len(g.byOwner)),
	}
	ctx.Put(g, ng)
	// After ctx.Put so the VM's Guest.ForkDriver recursion memo-hits us.
	ng.vm = hv.CloneVM(ctx, g.vm)
	ng.vcpus = make([]*vcpuState, len(g.vcpus))
	for i, vs := range g.vcpus {
		ng.vcpus[i] = cloneVCPUState(ctx, vs)
	}
	ng.order = make([]*taskState, len(g.order))
	for i, ts := range g.order {
		nts := cloneTaskState(ctx, ts)
		ng.order[i] = nts
		ng.tasks[nts.t] = nts
		ng.byOwner[nts.owner] = nts
	}
	return ng
}

// cloneVCPUState keeps the per-VCPU task list in its original order: bwSum
// adds float64 bandwidths in slice order, so a reordering would perturb
// admission arithmetic in the fork.
func cloneVCPUState(ctx *clone.Ctx, vs *vcpuState) *vcpuState {
	if vs == nil {
		return nil
	}
	if n, ok := ctx.Lookup(vs); ok {
		return n.(*vcpuState)
	}
	nvs := &vcpuState{v: clone.Get(ctx, vs.v)}
	ctx.Put(vs, nvs)
	nvs.ready = vs.ready.clone(ctx)
	nvs.tasks = make([]*taskState, len(vs.tasks))
	for i, ts := range vs.tasks {
		nvs.tasks[i] = cloneTaskState(ctx, ts)
	}
	return nvs
}

func cloneTaskState(ctx *clone.Ctx, ts *taskState) *taskState {
	if n, ok := ctx.Lookup(ts); ok {
		return n.(*taskState)
	}
	nts := &taskState{
		t:           task.Clone(ctx, ts.t),
		owner:       ts.owner,
		nextRelease: ts.nextRelease,
	}
	ctx.Put(ts, nts)
	nts.os = clone.Get(ctx, ts.os)
	nts.vs = cloneVCPUState(ctx, ts.vs)
	nts.releaseEv = eventq.CloneHandle(ctx, ts.releaseEv)
	return nts
}

// clone deep-copies the ready queue, remapping jobs through ctx. Items are
// copied slot for slot — same heap layout, same tie-break sequence numbers —
// so pop order in the fork is bit-identical.
func (q *readyQueue) clone(ctx *clone.Ctx) *readyQueue {
	nq := &readyQueue{
		items: make([]*readyItem, len(q.items)),
		index: make(map[*task.Job]*readyItem, len(q.index)),
		seq:   q.seq,
	}
	for i, it := range q.items {
		nit := &readyItem{job: task.CloneJob(ctx, it.job), seq: it.seq, idx: it.idx}
		nq.items[i] = nit
		nq.index[nit.job] = nit
	}
	return nq
}

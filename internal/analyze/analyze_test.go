package analyze

import (
	"strings"
	"testing"
	"testing/quick"

	"rtvirt/internal/csa"
	"rtvirt/internal/scenario"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
)

func vm(name string, vcpus int, tasks ...scenario.TaskSpec) scenario.VM {
	return scenario.VM{Name: name, VCPUs: vcpus, Tasks: tasks}
}

func periodic(name string, sliceUS, periodUS int64) scenario.TaskSpec {
	return scenario.TaskSpec{Name: name, Kind: "periodic", SliceUS: sliceUS, PeriodUS: periodUS}
}

func TestAnalyzeSingleVM(t *testing.T) {
	sc := scenario.Scenario{
		Stack: "rtvirt", PCPUs: 2,
		VMs: []scenario.VM{vm("v", 1, periodic("ctl", 2000, 10000))},
	}
	h, err := Analyze(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.VMs) != 1 || len(h.VMs[0].RTXen) != 1 {
		t.Fatalf("plans: %+v", h.VMs)
	}
	va := h.VMs[0]
	if va.TaskBW < 0.199 || va.TaskBW > 0.201 {
		t.Fatalf("task bw = %v", va.TaskBW)
	}
	// The static interface must over-allocate the fluid demand, and RTVirt
	// must sit between the two.
	if va.RTXenBW <= va.TaskBW {
		t.Fatalf("interface bw %.3f not above task bw %.3f", va.RTXenBW, va.TaskBW)
	}
	if va.RTVirtBW <= va.TaskBW || va.RTVirtBW >= va.RTXenBW {
		t.Fatalf("rtvirt bw %.3f outside (%.3f, %.3f)", va.RTVirtBW, va.TaskBW, va.RTXenBW)
	}
	if !h.RTXenAdmitted || !h.RTVirtAdmitted {
		t.Fatalf("admission: %+v", h)
	}
	if h.SavingPct <= 0 {
		t.Fatalf("saving = %.2f%%", h.SavingPct)
	}
}

func TestAnalyzeRTVirtMatchesGuestSizing(t *testing.T) {
	// The analyzer's RTVirt reservation must equal the §3.3 formula:
	// ⌈ΣBW·minP⌉ + 500µs over minP. For (2ms, 10ms): ⌈0.2·10ms⌉ + 500µs
	// = 2.5ms over 10ms = 0.25 CPUs.
	sc := scenario.Scenario{
		Stack: "rtvirt", PCPUs: 1,
		VMs: []scenario.VM{vm("v", 1, periodic("ctl", 2000, 10000))},
	}
	h, err := Analyze(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := h.VMs[0].RTVirt[0].Interface
	if res.Period != simtime.Millis(10) || res.Budget != simtime.Micros(2500) {
		t.Fatalf("reservation = %v", res)
	}
}

func TestAnalyzeMultiVCPUPacking(t *testing.T) {
	// Three tasks of ~0.55 CPUs each cannot share a VCPU; the packer must
	// open three bins even though the scenario declares one VCPU.
	sc := scenario.Scenario{
		Stack: "rtvirt", PCPUs: 4,
		VMs: []scenario.VM{vm("big", 1,
			periodic("a", 5500, 10000),
			periodic("b", 5500, 10000),
			periodic("c", 5500, 10000),
		)},
	}
	h, err := Analyze(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	va := h.VMs[0]
	if len(va.RTXen) != 3 || len(va.RTVirt) != 3 {
		t.Fatalf("want 3 VCPUs, got rtxen=%d rtvirt=%d", len(va.RTXen), len(va.RTVirt))
	}
	if va.DeclaredVCPUs != 1 {
		t.Fatalf("declared = %d", va.DeclaredVCPUs)
	}
	// Every task appears on exactly one VCPU.
	seen := map[string]int{}
	for _, p := range va.RTXen {
		for _, n := range p.Tasks {
			seen[n]++
		}
	}
	for _, n := range []string{"a", "b", "c"} {
		if seen[n] != 1 {
			t.Fatalf("task %s placed %d times", n, seen[n])
		}
	}
}

func TestAnalyzeFullCPUTask(t *testing.T) {
	// A task demanding a full CPU is still schedulable — the interface
	// degenerates to Θ = Π (a dedicated CPU) and RTVirt's reservation is
	// capped at the period, so both stacks allocate exactly 1.0 CPUs.
	sc := scenario.Scenario{
		Stack: "rtvirt", PCPUs: 4,
		VMs: []scenario.VM{vm("v", 1, periodic("hog", 10000, 10000))},
	}
	h, err := Analyze(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	va := h.VMs[0]
	if len(va.RTXen) != 1 || va.RTXen[0].Interface.Budget != va.RTXen[0].Interface.Period {
		t.Fatalf("want dedicated-CPU interface, got %+v", va.RTXen)
	}
	if va.RTVirtBW < 0.999 || va.RTVirtBW > 1.001 {
		t.Fatalf("rtvirt bw = %v", va.RTVirtBW)
	}
}

func TestAnalyzeBackgroundOnly(t *testing.T) {
	sc := scenario.Scenario{
		Stack: "credit", PCPUs: 2,
		VMs: []scenario.VM{vm("batch", 1,
			scenario.TaskSpec{Name: "bg", Kind: "background"})},
	}
	h, err := Analyze(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	va := h.VMs[0]
	if va.Background != 1 || len(va.RTXen) != 0 || va.TaskBW != 0 {
		t.Fatalf("background VM: %+v", va)
	}
	if !h.RTXenAdmitted || !h.RTVirtAdmitted || h.RTXenClaimedFFD != 0 {
		t.Fatalf("host: %+v", h)
	}
}

func TestAnalyzeQuantumRounding(t *testing.T) {
	sc := scenario.Scenario{
		Stack: "rtvirt", PCPUs: 2,
		VMs: []scenario.VM{vm("v", 1, periodic("ctl", 1234, 10000))},
	}
	coarse, err := Analyze(sc, Options{Quantum: simtime.Millis(1)})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Analyze(sc, Options{Quantum: simtime.Micros(10)})
	if err != nil {
		t.Fatal(err)
	}
	cb := coarse.VMs[0].RTXen[0].Interface
	fb := fine.VMs[0].RTXen[0].Interface
	if cb.Budget%simtime.Millis(1) != 0 {
		t.Fatalf("coarse budget %v not on 1ms grid", cb.Budget)
	}
	if fine.VMs[0].RTXenBW > coarse.VMs[0].RTXenBW {
		t.Fatalf("finer quantum allocated more: %v > %v", fb, cb)
	}
}

func TestAnalyzeFixedPeriod(t *testing.T) {
	sc := scenario.Scenario{
		Stack: "rtvirt", PCPUs: 2,
		VMs: []scenario.VM{vm("v", 1, periodic("ctl", 2000, 10000))},
	}
	h, err := Analyze(sc, Options{Period: simtime.Millis(4)})
	if err != nil {
		t.Fatal(err)
	}
	if got := h.VMs[0].RTXen[0].Interface.Period; got != simtime.Millis(4) {
		t.Fatalf("period = %v", got)
	}
}

func TestAnalyzeDefaultPCPUs(t *testing.T) {
	sc := scenario.Scenario{
		Stack: "rtvirt",
		VMs:   []scenario.VM{vm("v", 1, periodic("ctl", 1000, 10000))},
	}
	h, err := Analyze(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if h.PCPUs != 4 {
		t.Fatalf("default pcpus = %d", h.PCPUs)
	}
}

func TestAnalyzeRejectsInvalidScenario(t *testing.T) {
	if _, err := Analyze(scenario.Scenario{Stack: "rtvirt"}, Options{}); err == nil {
		t.Fatal("no-VM scenario accepted")
	}
	sc := scenario.Scenario{
		Stack: "bogus",
		VMs:   []scenario.VM{vm("v", 1, periodic("ctl", 1000, 10000))},
	}
	if _, err := Analyze(sc, Options{}); err == nil {
		t.Fatal("bad stack accepted")
	}
}

// Property: for random feasible scenarios, every per-VCPU static interface
// is individually schedulable, interface bandwidth dominates the fluid
// task bandwidth, and the analyzer's RTVirt total never exceeds RT-Xen's.
func TestQuickAnalyzeInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		sc := scenario.Scenario{Stack: "rtvirt", PCPUs: 8}
		nVM := 1 + rng.Intn(3)
		for v := 0; v < nVM; v++ {
			var specs []scenario.TaskSpec
			n := 1 + rng.Intn(4)
			for i := 0; i < n; i++ {
				period := 4000 + rng.Int63n(26000) // 4–30ms
				bw := 0.05 + rng.Float64()*0.35
				specs = append(specs, scenario.TaskSpec{
					Name: "t", Kind: "periodic",
					SliceUS: int64(bw * float64(period)), PeriodUS: period,
				})
			}
			sc.VMs = append(sc.VMs, vm("v", 1, specs...))
		}
		h, err := Analyze(sc, Options{})
		if err != nil {
			// Random draws can be infeasible (e.g. tiny slices); that is
			// a rejection, not an invariant violation.
			return strings.Contains(err.Error(), "no feasible interface")
		}
		for _, va := range h.VMs {
			for _, p := range va.RTXen {
				if p.Interface.Bandwidth() < p.TaskBW-1e-9 {
					t.Logf("seed %d: interface %v below task bw %.4f", seed, p.Interface, p.TaskBW)
					return false
				}
				if p.Interface.Budget > p.Interface.Period {
					t.Logf("seed %d: infeasible interface %v", seed, p.Interface)
					return false
				}
			}
			for _, p := range va.RTVirt {
				if p.Interface.Bandwidth() < p.TaskBW-1e-9 {
					t.Logf("seed %d: rtvirt reservation %v below task bw %.4f",
						seed, p.Interface, p.TaskBW)
					return false
				}
			}
		}
		// Both stacks must cover the fluid demand. (RTVirt ≤ RT-Xen is NOT
		// asserted here: with short task periods the fixed 500µs slack can
		// exceed the static interface's abstraction overhead.)
		if h.RTVirtAllocated < h.TaskBW-1e-9 || h.RTXenAllocated < h.TaskBW-1e-9 {
			t.Logf("seed %d: allocations %.4f/%.4f below demand %.4f",
				seed, h.RTVirtAllocated, h.RTXenAllocated, h.TaskBW)
			return false
		}
		if h.RTXenClaimedFFD < int(h.RTXenAllocated) {
			t.Logf("seed %d: claimed %d below allocated %.2f",
				seed, h.RTXenClaimedFFD, h.RTXenAllocated)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The analyzer's static interfaces must be honoured by the live RT-Xen
// simulation: deploying the analyzed plan for a simple scenario meets
// every deadline.
func TestAnalyzePlanHoldsInSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed")
	}
	sc := scenario.Scenario{
		Stack: "rt-xen", PCPUs: 2, Seconds: 2, Seed: 1,
		VMs: []scenario.VM{
			vm("v1", 1, periodic("a", 2000, 10000), periodic("b", 3000, 20000)),
			vm("v2", 1, periodic("c", 4000, 15000)),
		},
	}
	h, err := Analyze(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Feed the analyzed interfaces back as explicit servers.
	for i := range sc.VMs {
		sc.VMs[i].Servers = nil
		for _, p := range h.VMs[i].RTXen {
			sc.VMs[i].Servers = append(sc.VMs[i].Servers, scenario.ServerSpec{
				BudgetUS: int64(p.Interface.Budget / simtime.Micros(1)),
				PeriodUS: int64(p.Interface.Period / simtime.Micros(1)),
			})
		}
	}
	res, err := scenario.Run(sc, scenario.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Tasks {
		if tr.Stats.Missed != 0 {
			t.Errorf("task %s/%s missed %d deadlines under the analyzed plan",
				tr.VM, tr.Name, tr.Stats.Missed)
		}
	}
}

func TestVCPUPlanBandwidth(t *testing.T) {
	p := VCPUPlan{Interface: csa.Interface{Period: simtime.Millis(10), Budget: simtime.Millis(4)}}
	if got := p.Bandwidth(); got < 0.399 || got > 0.401 {
		t.Fatalf("bandwidth = %v", got)
	}
}

func TestAnalyzeHonoursVMSlackAndPriority(t *testing.T) {
	zero := int64(0)
	sc := scenario.Scenario{
		Stack: "rtvirt", PCPUs: 2, Seconds: 1,
		VMs: []scenario.VM{
			{
				Name: "lean", SlackUS: &zero,
				Tasks: []scenario.TaskSpec{
					{Name: "d", Kind: "periodic", SliceUS: 1000, PeriodUS: 10000},
				},
			},
			{
				Name: "vip", PrioritySlack: true,
				Tasks: []scenario.TaskSpec{
					{Name: "t", Kind: "periodic", SliceUS: 2000, PeriodUS: 10000, Priority: 3},
				},
			},
		},
	}
	h, err := Analyze(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// lean: exactly the fluid bandwidth, no slack.
	if got := h.VMs[0].RTVirt[0].Interface; got.Budget != simtime.Millis(1) {
		t.Fatalf("lean reservation = %v, want 1ms/10ms", got)
	}
	// vip: 2ms + (1+3)·500µs = 4ms over 10ms.
	if got := h.VMs[1].RTVirt[0].Interface; got.Budget != simtime.Millis(4) {
		t.Fatalf("vip reservation = %v, want 4ms/10ms", got)
	}

	// The simulator must reserve exactly what the analyzer predicted.
	res, err := scenario.Run(sc, scenario.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if diff := res.AllocatedBW - h.RTVirtAllocated; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("simulator reserved %.4f, analyzer predicted %.4f",
			res.AllocatedBW, h.RTVirtAllocated)
	}
}

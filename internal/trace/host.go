package trace

import (
	"rtvirt/internal/hv"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

// HostTracer adapts a Recorder to the hv.Tracer interface:
//
//	rec := &trace.Recorder{Max: 100000}
//	host.SetTracer(trace.NewHostTracer(rec))
type HostTracer struct {
	R *Recorder
}

// NewHostTracer wraps rec as an hv.Tracer.
func NewHostTracer(rec *Recorder) *HostTracer { return &HostTracer{R: rec} }

var _ hv.Tracer = (*HostTracer)(nil)

// TraceDispatch implements hv.Tracer.
func (t *HostTracer) TraceDispatch(p *hv.PCPU, v *hv.VCPU, now simtime.Time) {
	rec := Record{At: now, Kind: Dispatch, PCPU: p.ID}
	if v != nil {
		rec.VM = v.VM.Name
		rec.VCPU = v.Index
	}
	t.R.Add(rec)
}

// TraceJobDone implements hv.Tracer.
func (t *HostTracer) TraceJobDone(v *hv.VCPU, j *task.Job, now simtime.Time) {
	kind := JobDone
	var late simtime.Duration
	if j.Deadline != simtime.Never && j.Finish > j.Deadline {
		kind = JobMiss
		late = j.Finish.Sub(j.Deadline)
	}
	t.R.Add(Record{
		At:   now,
		Kind: kind,
		PCPU: pcpuOf(v),
		VM:   v.VM.Name,
		VCPU: v.Index,
		Task: j.Task.Name,
		Late: late,
	})
}

func pcpuOf(v *hv.VCPU) int {
	if p := v.OnPCPU(); p != nil {
		return p.ID
	}
	return -1
}

// Package workload models the applications the RTVirt evaluation runs:
// rt-app style synthetic periodic/sporadic loads (§4.2), VLC video
// transcoding threads (§4.3, Table 3), and a memcached server driven by a
// Mutilate-style client (§4.4).
package workload

import (
	"fmt"

	"rtvirt/internal/dist"
	"rtvirt/internal/guest"
	"rtvirt/internal/metrics"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

// Typed kernel-event kinds. Each workload instance is its own sim.Handler,
// so kinds only need to be unique within one workload type.
const (
	// evClientFire sends the next sporadic trigger.
	evClientFire uint16 = iota
	// evClientRelease delivers a trigger after the network delay.
	evClientRelease
	// evMemcachedArrive delivers the next memcached request.
	evMemcachedArrive
	// evHogStart releases the CPU hog's effectively infinite job.
	evHogStart
	// evIOArrive delivers the next two-phase request.
	evIOArrive
	// evIOPhase2 re-releases a request after its device wait; Arg0 is the
	// request's original arrival time.
	evIOPhase2
	// evOpenLoopFire sends the next open-loop request and schedules the
	// following one from the arrival process.
	evOpenLoopFire
	// evOpenLoopRelease delivers an open-loop request after the network
	// delay; Arg0 is the sampled CPU demand in ns (0 = declared slice).
	evOpenLoopRelease
	// evEvaderProbe releases one of the tick evader's short learning jobs.
	evEvaderProbe
	// evEvaderBurst releases the evader's between-ticks work burst.
	evEvaderBurst
)

// DefaultNetworkDelay is the modelled client→server network latency: the
// paper's measured 99.9th-percentile inter-host delay (19µs, §4.2). Beyond
// workload fidelity it is the natural conservative-PDES lookahead for
// sharded cluster runs — no cross-host interaction can land sooner — so
// sim.NewShardSet callers default their window width to it.
func DefaultNetworkDelay() simtime.Duration { return simtime.Micros(19) }

// RTApp is the rt-app periodic load generator: it takes a time slice and
// period as input and simulates a periodic load that runs for a specified
// duration.
type RTApp struct {
	Task  *task.Task
	Guest *guest.OS
}

// NewRTApp registers a periodic rt-app task on g.
func NewRTApp(g *guest.OS, id int, name string, p task.Params) (*RTApp, error) {
	t := task.New(id, name, task.Periodic, p)
	if err := g.Register(t); err != nil {
		return nil, err
	}
	return &RTApp{Task: t, Guest: g}, nil
}

// Start begins periodic releases at the given instant.
func (a *RTApp) Start(at simtime.Time) { a.Guest.StartPeriodic(a.Task, at) }

// Stop unregisters the task.
func (a *RTApp) Stop() error { return a.Guest.Unregister(a.Task) }

// SporadicClient triggers a sporadic RTA over the (modelled) network, like
// the TCP clients of §4.2: requests arrive with random inter-arrival times
// and each triggers one job with deadline one period after arrival.
type SporadicClient struct {
	Task  *task.Task
	Guest *guest.OS

	// InterArrival is the gap distribution (the paper uses
	// Uniform(100ms, 1s)).
	InterArrival dist.Duration
	// NetworkDelay is added between the client send and the job release.
	// The paper measured a 99.9th-percentile network delay of 19µs and
	// excludes it from the NIC-to-NIC metric; it is modelled for fidelity.
	NetworkDelay simtime.Duration
	// Requests is the number of triggers to send (100 per RTA in §4.2).
	Requests int

	// Latency records response times (job release → completion).
	Latency metrics.LatencyRecorder

	sent int
	sim  *sim.Simulator
	rng  *sim.RNG
	id   int32
}

// NewSporadicClient registers a sporadic task on g and prepares a client
// driving it.
func NewSporadicClient(g *guest.OS, id int, name string, p task.Params, inter dist.Duration, requests int) (*SporadicClient, error) {
	t := task.New(id, name, task.Sporadic, p)
	if err := g.Register(t); err != nil {
		return nil, err
	}
	return NewSporadicClientFor(g, t, inter, requests), nil
}

// NewSporadicClientFor wires a client onto an already-registered sporadic
// task.
func NewSporadicClientFor(g *guest.OS, t *task.Task, inter dist.Duration, requests int) *SporadicClient {
	c := &SporadicClient{
		Task:         t,
		Guest:        g,
		InterArrival: inter,
		NetworkDelay: DefaultNetworkDelay(),
		Requests:     requests,
		sim:          g.VM().Host().Sim,
	}
	c.id = c.sim.RegisterHandler(c)
	t.OnJobDone = func(j *task.Job) {
		c.Latency.Add(j.Finish.Sub(j.Release))
	}
	return c
}

// Start schedules the request stream beginning at the given instant.
func (c *SporadicClient) Start(at simtime.Time) {
	c.rng = c.sim.RNG().Split()
	c.sim.PostAt(at, sim.Payload{Handler: c.id, Kind: evClientFire})
}

// HandleSimEvent implements sim.Handler.
func (c *SporadicClient) HandleSimEvent(now simtime.Time, ev sim.Payload) {
	switch ev.Kind {
	case evClientFire:
		c.fire(now)
	case evClientRelease:
		// Sporadic model: honour the minimum inter-arrival constraint.
		if c.Task.EarliestNextRelease() <= now {
			c.Guest.ReleaseJob(c.Task, 0)
		}
	default:
		panic(fmt.Sprintf("workload: unknown client event kind %d", ev.Kind))
	}
}

func (c *SporadicClient) fire(now simtime.Time) {
	if c.sent >= c.Requests {
		return
	}
	c.sent++
	c.sim.PostAt(now.Add(c.NetworkDelay), sim.Payload{Handler: c.id, Kind: evClientRelease})
	if c.sent < c.Requests {
		c.sim.PostAt(now.Add(c.InterArrival.Sample(c.rng)),
			sim.Payload{Handler: c.id, Kind: evClientFire})
	}
}

// Sent reports the number of requests issued so far.
func (c *SporadicClient) Sent() int { return c.sent }

// VideoProfile is one row of Table 3: the timeliness characteristics of a
// VLC transcoding thread at a given frame rate.
type VideoProfile struct {
	FPS       int
	Bandwidth float64 // CPU bandwidth need
	Params    task.Params
}

// VideoProfiles reproduces Table 3 of the paper.
var VideoProfiles = []VideoProfile{
	{FPS: 24, Bandwidth: 0.445, Params: task.Params{Slice: simtime.Millis(19), Period: simtime.Millis(41)}},
	{FPS: 30, Bandwidth: 0.541, Params: task.Params{Slice: simtime.Millis(18), Period: simtime.Millis(33)}},
	{FPS: 48, Bandwidth: 0.845, Params: task.Params{Slice: simtime.Millis(17), Period: simtime.Millis(20)}},
	{FPS: 60, Bandwidth: 0.936, Params: task.Params{Slice: simtime.Millis(15), Period: simtime.Millis(16)}},
}

// ProfileFor returns the Table-3 profile for the frame rate.
func ProfileFor(fps int) (VideoProfile, bool) {
	for _, p := range VideoProfiles {
		if p.FPS == fps {
			return p, true
		}
	}
	return VideoProfile{}, false
}

// VideoStream is a transcoding thread serving one streaming request: a
// periodic RTA whose parameters follow the requested frame rate.
type VideoStream struct {
	Profile VideoProfile
	App     *RTApp
}

// NewVideoStream registers a transcoding RTA for the given frame rate.
func NewVideoStream(g *guest.OS, id, fps int) (*VideoStream, error) {
	prof, ok := ProfileFor(fps)
	if !ok {
		return nil, fmt.Errorf("workload: no Table-3 profile for %d fps", fps)
	}
	app, err := NewRTApp(g, id, fmt.Sprintf("vlc-%dfps-%d", fps, id), prof.Params)
	if err != nil {
		return nil, err
	}
	return &VideoStream{Profile: prof, App: app}, nil
}

// MemcachedConfig describes the memcached VM and its Mutilate driver.
type MemcachedConfig struct {
	// SLO is the latency target and the RTA period (500µs in §4.4).
	SLO simtime.Duration
	// Slice is the declared per-request CPU reservation (the framework-
	// specific p99.9 service time from Table 4).
	Slice simtime.Duration
	// Rate is the average request rate (100 QPS in §4.4).
	Rate float64
	// Service is the per-request CPU demand distribution; nil uses the
	// default calibrated to Table 4's dedicated-CPU measurements.
	Service dist.Duration
	// Requests bounds the stream (0 = unlimited until Stop).
	Requests int
}

// DefaultMemcachedConfig mirrors §4.4.
func DefaultMemcachedConfig() MemcachedConfig {
	return MemcachedConfig{
		SLO:   simtime.Micros(500),
		Slice: simtime.Micros(58),
		Rate:  100,
	}
}

// DefaultServiceDist is the per-request CPU demand used when
// MemcachedConfig.Service is nil: a tight distribution whose p50≈45µs and
// p99.9≈56µs reproduce the dedicated-CPU RTVirt row of Table 4 once
// dispatch latency is added.
func DefaultServiceDist() dist.Duration {
	return dist.Normal{
		MeanD:  simtime.Micros(45),
		Stddev: simtime.Micros(3),
		Min:    simtime.Micros(35),
	}
}

// Memcached is a sharded in-memory cache server VM under a Mutilate-style
// load: GET requests arrive with normally distributed inter-arrival times
// and each consumes a small random slice of CPU. Latency is measured
// NIC-to-NIC: from request arrival at the host to response completion.
type Memcached struct {
	Task  *task.Task
	Guest *guest.OS
	Cfg   MemcachedConfig

	// Latency is the NIC-to-NIC latency distribution (Figure 5, Table 4).
	Latency metrics.LatencyRecorder

	inter   dist.Duration
	service dist.Duration
	sim     *sim.Simulator
	rng     *sim.RNG
	sent    int
	stopped bool
	id      int32
}

// NewMemcached registers the memcached RTA on g with the given config.
func NewMemcached(g *guest.OS, id int, cfg MemcachedConfig) (*Memcached, error) {
	if cfg.SLO <= 0 || cfg.Rate <= 0 {
		return nil, fmt.Errorf("workload: invalid memcached config %+v", cfg)
	}
	t := task.New(id, fmt.Sprintf("memcached-%d", id), task.Sporadic,
		task.Params{Slice: cfg.Slice, Period: cfg.SLO})
	if err := g.Register(t); err != nil {
		return nil, err
	}
	mean := simtime.Duration(1e9 / cfg.Rate)
	m := &Memcached{
		Task:  t,
		Guest: g,
		Cfg:   cfg,
		// §4.4: inter-arrival times follow a normal distribution with an
		// average rate of 100 queries per second.
		inter:   dist.Normal{MeanD: mean, Stddev: mean / 4, Min: simtime.Micros(100)},
		service: cfg.Service,
		sim:     g.VM().Host().Sim,
	}
	if m.service == nil {
		m.service = DefaultServiceDist()
	}
	m.id = m.sim.RegisterHandler(m)
	t.OnJobDone = func(j *task.Job) {
		m.Latency.Add(j.Finish.Sub(j.Release))
	}
	return m, nil
}

// Start begins the request stream at the given instant.
func (m *Memcached) Start(at simtime.Time) {
	m.rng = m.sim.RNG().Split()
	m.sim.PostAt(at, sim.Payload{Handler: m.id, Kind: evMemcachedArrive})
}

// Stop ends the request stream after in-flight work completes.
func (m *Memcached) Stop() { m.stopped = true }

// HandleSimEvent implements sim.Handler.
func (m *Memcached) HandleSimEvent(now simtime.Time, ev sim.Payload) {
	switch ev.Kind {
	case evMemcachedArrive:
		m.arrive(now)
	default:
		panic(fmt.Sprintf("workload: unknown memcached event kind %d", ev.Kind))
	}
}

func (m *Memcached) arrive(now simtime.Time) {
	if m.stopped || (m.Cfg.Requests > 0 && m.sent >= m.Cfg.Requests) {
		return
	}
	m.sent++
	m.Guest.ReleaseJob(m.Task, m.service.Sample(m.rng))
	m.sim.PostAt(now.Add(m.inter.Sample(m.rng)), sim.Payload{Handler: m.id, Kind: evMemcachedArrive})
}

// Sent reports the number of requests issued so far.
func (m *Memcached) Sent() int { return m.sent }

// CPUHog is a best-effort CPU-bound process (the non-RTA contenders of
// §4.4's first experiment).
type CPUHog struct {
	Task  *task.Task
	Guest *guest.OS

	id int32
}

// NewCPUHog registers a background CPU-bound task on g.
func NewCPUHog(g *guest.OS, id int, name string) (*CPUHog, error) {
	t := task.NewBackground(id, name)
	if err := g.Register(t); err != nil {
		return nil, err
	}
	h := &CPUHog{Task: t, Guest: g}
	h.id = g.VM().Host().Sim.RegisterHandler(h)
	return h, nil
}

// Start releases one effectively infinite job at the given instant.
func (h *CPUHog) Start(at simtime.Time) {
	h.Guest.VM().Host().Sim.PostAt(at, sim.Payload{Handler: h.id, Kind: evHogStart})
}

// HandleSimEvent implements sim.Handler.
func (h *CPUHog) HandleSimEvent(now simtime.Time, ev sim.Payload) {
	switch ev.Kind {
	case evHogStart:
		h.Guest.ReleaseJob(h.Task, simtime.Duration(1<<60))
	default:
		panic(fmt.Sprintf("workload: unknown hog event kind %d", ev.Kind))
	}
}

// MissSummary aggregates deadline statistics over a set of tasks.
func MissSummary(tasks []*task.Task) metrics.MissSummary {
	var out metrics.MissSummary
	for _, t := range tasks {
		st := t.Stats()
		out.Tasks++
		out.Released += st.Released
		out.Judged += st.Judged()
		out.Missed += st.Missed
		if st.Missed > 0 {
			out.TasksWithMisses++
		}
		if r := st.MissRatio(); r > out.WorstRatio {
			out.WorstRatio = r
			out.WorstTask = t.Name
		}
	}
	return out
}

package cluster

import (
	"fmt"
	"strings"
	"testing"

	"rtvirt/internal/check"
	"rtvirt/internal/dist"
	"rtvirt/internal/eventq"
	"rtvirt/internal/hv"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

// pinDefaultBackend swaps the process-wide queue backend for one test.
func pinDefaultBackend(t *testing.T, b eventq.Backend) {
	t.Helper()
	old := sim.DefaultBackend
	sim.DefaultBackend = b
	t.Cleanup(func() { sim.DefaultBackend = old })
}

// buildSharded assembles the golden-test world: 4 hosts, 8 VMs mixing
// periodic, sporadic (client-driven), and background load, a remote
// client per VM on a neighboring host, two live migrations, and one
// migration plan that fires after its VM already left.
func buildSharded(t *testing.T) *Sharded {
	t.Helper()
	return buildShardedWith(t, func(cfg *ShardedConfig) {
		cfg.MigrationDowntime = simtime.Millis(10)
		cfg.MigrationPerBW = simtime.Millis(5)
	}, simtime.Time(0).Add(simtime.Millis(40)))
}

// buildShardedWith is buildSharded with a config hook and a movable
// instant for the first migration, so the fork test can park a blackout
// across its fork point.
func buildShardedWith(t *testing.T, mutate func(*ShardedConfig), firstMigAt simtime.Time) *Sharded {
	t.Helper()
	cfg := DefaultShardedConfig()
	mutate(&cfg)
	c := NewSharded(cfg)
	for h := 0; h < cfg.Hosts; h++ {
		for v := 0; v < 2; v++ {
			spec := VMSpec{
				Name:  fmt.Sprintf("vm%d-%d", h, v),
				VCPUs: 2,
				Tasks: []TaskSpec{
					{Name: "rt", Kind: task.Periodic,
						Params: task.Params{Slice: simtime.Micros(300), Period: simtime.Millis(4)},
						Phase:  simtime.Micros(int64(100 * (h + v)))},
					{Name: "srv", Kind: task.Sporadic,
						Params: task.Params{Slice: simtime.Micros(200), Period: simtime.Millis(1)}},
					{Name: "bg", Kind: task.Background},
				},
			}
			d, err := c.Deploy(h, spec)
			if err != nil {
				t.Fatalf("deploy %s: %v", spec.Name, err)
			}
			// Heterogeneous link delays: every client edge gets its own
			// latency, so the per-edge window bounds differ per host pair.
			_, err = c.AddRemoteClient((h+1)%cfg.Hosts, d, 1,
				cfg.Lookahead+simtime.Micros(int64(3*v+150*h)),
				dist.Uniform{Lo: simtime.Micros(400), Hi: simtime.Millis(2)},
				dist.Uniform{Lo: simtime.Micros(60), Hi: simtime.Micros(180)}, 0)
			if err != nil {
				t.Fatalf("client for %s: %v", spec.Name, err)
			}
		}
	}
	mustPlan := func(at simtime.Time, name string, to int) {
		t.Helper()
		d, ok := c.Lookup(name)
		if !ok {
			t.Fatalf("no VM %q", name)
		}
		if err := c.PlanMigration(at, d, to); err != nil {
			t.Fatalf("plan %s -> host%d: %v", name, to, err)
		}
	}
	mustPlan(firstMigAt, "vm0-0", 2)
	mustPlan(simtime.Time(0).Add(simtime.Millis(90)), "vm1-1", 3)
	// Fires at 120ms on host 0, long after vm0-0 moved to host 2: the
	// source agent must count it as skipped, deterministically.
	mustPlan(simtime.Time(0).Add(simtime.Millis(120)), "vm0-0", 1)
	return c
}

type shardedRun struct {
	digest string
	disp   []uint64
	c      *Sharded
}

func runSharded(t *testing.T, groups int, span simtime.Duration) shardedRun {
	t.Helper()
	c := buildSharded(t)
	digs := make([]*check.DispatchDigest, len(c.Hosts))
	for i, h := range c.Hosts {
		digs[i] = check.NewDispatchDigest()
		h.Sys.Host.TraceTo(digs[i])
	}
	c.Start()
	c.Run(span, groups)
	c.Finish()
	sums := make([]uint64, len(digs))
	for i, d := range digs {
		sums[i] = d.Sum()
	}
	return shardedRun{digest: c.DigestString(), disp: sums, c: c}
}

// TestShardedGroupInvariance is the determinism golden: the same cluster
// advanced with 1, 2, 4, and 8 executor groups — under both queue
// backends — must produce byte-identical digests and identical per-host
// dispatch streams. The heap and wheel backends must also agree with
// each other.
func TestShardedGroupInvariance(t *testing.T) {
	span := simtime.Millis(300)
	var crossBackend []string
	for _, be := range []eventq.Backend{eventq.BackendHeap, eventq.BackendWheel} {
		t.Run(be.String(), func(t *testing.T) {
			pinDefaultBackend(t, be)
			base := runSharded(t, 1, span)
			// The golden world must actually exercise the machinery.
			var delivered, forwarded, skipped uint64
			for _, h := range base.c.Hosts {
				delivered += h.Agent().Delivered
				forwarded += h.Agent().Forwarded
				skipped += h.Agent().SkippedMigrations
			}
			if delivered == 0 || forwarded == 0 {
				t.Fatalf("degenerate world: delivered=%d forwarded=%d", delivered, forwarded)
			}
			if skipped != 1 {
				t.Fatalf("want exactly 1 skipped migration plan, got %d", skipped)
			}
			if d, _ := base.c.Lookup("vm0-0"); d.Migrations != 1 || d.HostIndex() != 2 {
				t.Fatalf("vm0-0 should have completed one migration to host2: migs=%d host=%d",
					d.Migrations, d.HostIndex())
			}
			for _, g := range []int{2, 4, 8} {
				got := runSharded(t, g, span)
				if got.digest != base.digest {
					t.Errorf("groups=%d digest differs from sequential:\n--- groups=1 ---\n%s--- groups=%d ---\n%s",
						g, base.digest, g, got.digest)
				}
				for i := range got.disp {
					if got.disp[i] != base.disp[i] {
						t.Errorf("groups=%d host%d dispatch digest %016x != sequential %016x",
							g, i, got.disp[i], base.disp[i])
					}
				}
			}
			crossBackend = append(crossBackend, base.digest)
		})
	}
	if len(crossBackend) == 2 && crossBackend[0] != crossBackend[1] {
		t.Errorf("heap and wheel backends disagree:\n--- heap ---\n%s--- wheel ---\n%s",
			crossBackend[0], crossBackend[1])
	}
}

// TestShardedGroupInvarianceNoisyCosts re-runs the group-invariance
// golden under the distribution-valued calibrated cost model. Each shard
// derives its own cost stream from its own simulator seed (never from the
// shared main stream), so enabling noise must preserve digest identity
// across executor group counts — and the noisy world must actually differ
// from the constant-cost world, or the test is vacuous.
func TestShardedGroupInvarianceNoisyCosts(t *testing.T) {
	span := simtime.Millis(200)
	run := func(groups int, noisy bool) string {
		c := buildShardedWith(t, func(cfg *ShardedConfig) {
			cfg.MigrationDowntime = simtime.Millis(10)
			cfg.MigrationPerBW = simtime.Millis(5)
			if noisy {
				cfg.System.Costs = hv.CalibratedCosts()
			}
		}, simtime.Time(0).Add(simtime.Millis(40)))
		c.Start()
		c.Run(span, groups)
		c.Finish()
		return c.DigestString()
	}
	base := run(1, true)
	for _, g := range []int{2, 4, 8} {
		if got := run(g, true); got != base {
			t.Errorf("groups=%d digest differs under calibrated costs:\n--- groups=1 ---\n%s--- groups=%d ---\n%s",
				g, base, g, got)
		}
	}
	if run(1, false) == base {
		t.Error("calibrated-cost digest matches constant-cost digest — noise not applied")
	}
}

// stripWindowCount removes the window counter from a cluster digest's
// header line, leaving everything observable about the simulation itself.
// Per-edge and global windowing legitimately differ only in how many
// synchronization rounds they took.
func stripWindowCount(t *testing.T, digest string) string {
	t.Helper()
	head, rest, ok := strings.Cut(digest, "\n")
	if !ok {
		t.Fatalf("malformed digest %q", digest)
	}
	fields := strings.Fields(head)
	if len(fields) != 3 || !strings.HasPrefix(fields[1], "windows=") {
		t.Fatalf("malformed digest header %q", head)
	}
	return fields[0] + " " + fields[2] + "\n" + rest
}

// TestShardedPerEdgeVsGlobalWindows runs the same heterogeneous world
// once windowed on declared per-edge lookaheads (the default) and once on
// the single global minimum (Cfg.GlobalWindows), and checks the two are
// identical in every observable except the window count — which the
// declared topology must cut substantially.
func TestShardedPerEdgeVsGlobalWindows(t *testing.T) {
	span := simtime.Millis(300)
	run := func(global bool) *Sharded {
		c := buildShardedWith(t, func(cfg *ShardedConfig) {
			cfg.MigrationDowntime = simtime.Millis(10)
			cfg.MigrationPerBW = simtime.Millis(5)
			cfg.GlobalWindows = global
		}, simtime.Time(0).Add(simtime.Millis(40)))
		c.Start()
		c.Run(span, 2)
		c.Finish()
		return c
	}
	perEdge, global := run(false), run(true)
	pd, gd := perEdge.DigestString(), global.DigestString()
	if stripWindowCount(t, pd) != stripWindowCount(t, gd) {
		t.Errorf("windowing modes diverged beyond the window count:\n--- per-edge ---\n%s--- global ---\n%s", pd, gd)
	}
	pw, gw := perEdge.Set.Windows(), global.Set.Windows()
	// The fixture's ring has one 19µs edge, so the bound still crawls
	// there; 1.5× is what this topology honestly yields (the big ratios
	// need genuinely slow links — see BENCH_7).
	if pw*3 > gw*2 {
		t.Errorf("per-edge windows %d vs global %d — want at least a 1.5× reduction", pw, gw)
	}
	t.Logf("windows: per-edge %d, global %d (%.1fx)", pw, gw, float64(gw)/float64(pw))
}

// TestShardedMigrationForwarding pins the traffic protocol around a live
// migration: the source forwards late requests to the VM's new host, the
// target drops requests that arrive mid-blackout, and the blackout total
// matches the configured stop-and-copy model.
func TestShardedMigrationForwarding(t *testing.T) {
	cfg := DefaultShardedConfig()
	cfg.Hosts = 2
	cfg.MigrationDowntime = simtime.Millis(20)
	cfg.MigrationPerBW = simtime.Millis(10)
	c := NewSharded(cfg)
	spec := VMSpec{Name: "srv", VCPUs: 1, Tasks: []TaskSpec{
		{Name: "req", Kind: task.Sporadic,
			Params: task.Params{Slice: simtime.Micros(100), Period: simtime.Micros(500)}},
	}}
	d, err := c.Deploy(0, spec)
	if err != nil {
		t.Fatal(err)
	}
	// A steady client on host 1 hammers the VM; the VM then migrates to
	// host 1, so every post-migration request takes the forwarding hop
	// host0 -> host1.
	if _, err := c.AddRemoteClient(1, d, 0, cfg.Lookahead,
		dist.Constant{D: simtime.Micros(200)}, nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.PlanMigration(simtime.Time(0).Add(simtime.Millis(50)), d, 1); err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Run(simtime.Millis(200), 2)
	c.Finish()

	wantDowntime := cfg.MigrationDowntime +
		simtime.Duration(float64(cfg.MigrationPerBW)*spec.Bandwidth())
	if d.Migrations != 1 || d.Migrating() || d.Guest() == nil {
		t.Fatalf("migration did not complete: migs=%d migrating=%v dark=%v",
			d.Migrations, d.Migrating(), d.Guest() == nil)
	}
	if d.HostIndex() != 1 {
		t.Fatalf("VM on host%d, want host1", d.HostIndex())
	}
	if d.BlackoutTotal != wantDowntime {
		t.Fatalf("blackout %v, want %v", d.BlackoutTotal, wantDowntime)
	}
	src, dst := c.Hosts[0].Agent(), c.Hosts[1].Agent()
	if src.Forwarded == 0 {
		t.Error("source host forwarded nothing after the VM left")
	}
	if dst.Dropped == 0 {
		t.Error("target host dropped nothing during the blackout")
	}
	if src.Delivered == 0 || dst.Delivered == 0 {
		t.Errorf("both hosts should have delivered requests: src=%d dst=%d",
			src.Delivered, dst.Delivered)
	}
	// The 200µs stream against a 500µs minimum inter-arrival must throttle.
	if src.Throttled+dst.Throttled == 0 {
		t.Error("sporadic minimum inter-arrival never throttled a request")
	}
	// Nothing vanished: every request the client sent was delivered,
	// throttled, or dropped exactly once (forwards re-deliver elsewhere,
	// and up to one forwarded request may still be in flight at the end).
	cl := c.clients[0]
	accounted := src.Delivered + dst.Delivered + src.Throttled + dst.Throttled +
		src.Dropped + dst.Dropped
	if accounted > uint64(cl.Sent()) || uint64(cl.Sent())-accounted > 1 {
		t.Errorf("request conservation: sent=%d accounted=%d", cl.Sent(), accounted)
	}
}

// TestShardedLinkDelay pins the per-pair link-delay model: forwarded
// requests pay LinkDelay(src, dst) instead of the global lookahead floor,
// the run stays deterministic across executor groups, and a LinkDelay
// returning less than the lookahead panics loudly (at Start, where
// declareTopology first prices the migration edges).
func TestShardedLinkDelay(t *testing.T) {
	build := func(link func(int, int) simtime.Duration) (*Sharded, *ShardedDeployment) {
		t.Helper()
		cfg := DefaultShardedConfig()
		cfg.Hosts = 2
		cfg.MigrationDowntime = simtime.Millis(20)
		cfg.MigrationPerBW = simtime.Millis(10)
		cfg.LinkDelay = link
		c := NewSharded(cfg)
		d, err := c.Deploy(0, VMSpec{Name: "srv", VCPUs: 1, Tasks: []TaskSpec{
			{Name: "req", Kind: task.Sporadic,
				Params: task.Params{Slice: simtime.Micros(100), Period: simtime.Micros(500)}},
		}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.AddRemoteClient(1, d, 0, simtime.Micros(400),
			dist.Constant{D: simtime.Micros(200)}, nil, 0); err != nil {
			t.Fatal(err)
		}
		if err := c.PlanMigration(simtime.Time(0).Add(simtime.Millis(50)), d, 1); err != nil {
			t.Fatal(err)
		}
		return c, d
	}

	slow := func(src, dst int) simtime.Duration { return simtime.Micros(350) }
	run := func(groups int) (*Sharded, *ShardedDeployment) {
		c, d := build(slow)
		c.Start()
		c.Run(simtime.Millis(200), groups)
		c.Finish()
		return c, d
	}
	c1, d1 := run(1)
	c2, _ := run(2)
	if c1.DigestString() != c2.DigestString() {
		t.Errorf("link-delay world diverged across groups:\n--- groups=1 ---\n%s--- groups=2 ---\n%s",
			c1.DigestString(), c2.DigestString())
	}
	if d1.Migrations != 1 {
		t.Fatalf("migration did not complete: %d", d1.Migrations)
	}
	if fwd := c1.Hosts[0].Agent().Forwarded; fwd == 0 {
		t.Error("no request took the forwarding hop despite the steady client")
	}

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("LinkDelay below the lookahead did not panic")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "below lookahead") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	c, _ := build(func(int, int) simtime.Duration { return simtime.Micros(1) })
	c.Start()
}

// TestShardedConfigValidation covers the config rejections.
func TestShardedConfigValidation(t *testing.T) {
	good := DefaultShardedConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := good
	bad.MigrationDowntime = good.Lookahead / 2
	if err := bad.Validate(); err == nil {
		t.Error("downtime below lookahead accepted")
	}
	bad = good
	bad.Hosts = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero hosts accepted")
	}
	bad = good
	bad.System.Seed = 7
	if err := bad.Validate(); err == nil {
		t.Error("non-zero template seed accepted")
	}
	bad = good
	bad.System.PCPUs = good.PCPUs + 1
	if err := bad.Validate(); err == nil {
		t.Error("conflicting template PCPUs accepted")
	}
}

// TestShardedClientValidation covers remote-client admission rules.
func TestShardedClientValidation(t *testing.T) {
	c := NewSharded(DefaultShardedConfig())
	d, err := c.Deploy(0, VMSpec{Name: "v", Tasks: []TaskSpec{
		{Name: "s", Kind: task.Sporadic,
			Params: task.Params{Slice: simtime.Micros(100), Period: simtime.Millis(1)}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	inter := dist.Constant{D: simtime.Millis(1)}
	if _, err := c.AddRemoteClient(1, d, 0, c.Cfg.Lookahead-1, inter, nil, 0); err == nil {
		t.Error("delay below lookahead accepted")
	}
	if _, err := c.AddRemoteClient(0, d, 0, c.Cfg.Lookahead, inter, nil, 0); err == nil {
		t.Error("co-located client accepted")
	}
	if _, err := c.AddRemoteClient(1, d, 5, c.Cfg.Lookahead, inter, nil, 0); err == nil {
		t.Error("task index out of range accepted")
	}
	if _, err := c.AddRemoteClient(1, d, 0, c.Cfg.Lookahead, nil, nil, 0); err == nil {
		t.Error("nil inter-arrival accepted")
	}
}

package hv

import (
	"fmt"

	"rtvirt/internal/eventq"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/trace"
)

// eventRef aliases the event handle type so vcpu.go stays import-light.
type eventRef = eventq.Handle

// DebugVM, when non-empty, logs job execution for the named VM.
var DebugVM string

// advance applies elapsed time on PCPU p up to now: overhead first, then
// job execution on the dispatched VCPU. Completion is detected here; the
// follow-up (picking the next job) happens in refresh/dispatch.
func (h *Host) advance(p *PCPU, now simtime.Time) {
	if now < p.lastAdvance {
		panic(fmt.Sprintf("hv: advance backwards on %v (%v < %v)", p, now, p.lastAdvance))
	}
	if now == p.lastAdvance {
		return
	}
	start := p.lastAdvance
	p.lastAdvance = now

	// Overhead window [start, min(overheadUntil, now)).
	if p.overheadUntil > start {
		ovEnd := simtime.Min(p.overheadUntil, now)
		p.OverheadTime += ovEnd.Sub(start)
		start = ovEnd
	}
	if start >= now {
		return
	}
	run := now.Sub(start)
	v := p.cur
	if v == nil {
		p.IdleTime += run
		return
	}
	j := v.curJob
	if j == nil {
		// Dispatched but between jobs (e.g. completion processed, pick
		// pending). Counts as idle-in-guest.
		p.IdleTime += run
		return
	}
	if run > j.Remaining {
		panic(fmt.Sprintf("hv: %v overran job by %v (events must be exact)", v, run-j.Remaining))
	}
	v.TotalRun += run
	p.BusyTime += run
	if DebugVM != "" && v.VM.Name == DebugVM {
		fmt.Printf("[hv] %v..%v %v ran job seq=%d rem %v -> %v\n", start, now, v, j.Seq, j.Remaining, j.Remaining-run)
	}
	if j.Consume(run) {
		j.Complete(now)
		v.curJob = nil
		h.emitJobDone(v, j, now)
		v.VM.Guest.JobCompleted(v, j, now)
	}
}

// setEvent replaces the PCPU's pending kernel event. Nearly every kernel
// event lands here with a previous event still standing (the allocation
// end or projected job completion moved), so the common case is an
// in-place reschedule of the same pooled record rather than a
// cancel/tombstone/insert round trip. The event is a typed payload —
// (host handler, evPCPUTimer, PCPU ID) — so it is plain data: the path
// allocates nothing and the pending timer survives a fork.
func (h *Host) setEvent(p *PCPU, at simtime.Time) {
	if at == simtime.Never {
		h.Sim.Cancel(p.ev)
		p.ev = eventRef{}
		return
	}
	if p.ev.Active() {
		p.ev = h.Sim.Reschedule(p.ev, at)
		return
	}
	p.ev = h.Sim.PostAt(at, sim.Payload{Handler: h.handlerID, Kind: evPCPUTimer, Owner: int32(p.ID)})
}

// refresh re-evaluates PCPU p at now: it advances accounting, then either
// re-dispatches (allocation expired), continues the current VCPU with its
// next job (job completed mid-allocation), or just re-arms the event.
func (h *Host) refresh(p *PCPU, now simtime.Time) {
	h.advance(p, now)
	if now >= p.allocEnd {
		h.dispatch(p, now)
		return
	}
	if p.cur != nil && p.cur.curJob == nil {
		// Job finished inside the allocation: let the guest pick the next
		// one without involving the host scheduler.
		h.continueVCPU(p, now)
		return
	}
	h.armEvent(p, now)
}

// continueVCPU asks the guest for the dispatched VCPU's next job within the
// current host allocation. If the guest has nothing, the VCPU blocks and
// the host scheduler decides what to run instead.
func (h *Host) continueVCPU(p *PCPU, now simtime.Time) {
	v := p.cur
	j := v.VM.Guest.PickJob(v, now)
	if j == nil {
		hs := &h.hot[v.ID]
		hs.Runnable = false
		hs.PCPU = -1
		v.curJob = nil
		p.cur = nil
		h.emitDispatch(p, nil, now, 0)
		h.sched.VCPUIdle(v, now)
		h.dispatch(p, now)
		return
	}
	if j != v.curJob {
		cost := h.Costs.GuestSwitch.Sample(h.costRNG)
		h.Overhead.GuestSwitches++
		h.Overhead.GuestSwitchTime += cost
		p.chargeOverhead(now, cost)
		h.emitGuestSwitch(v, j, now)
	}
	v.curJob = j
	h.armEvent(p, now)
}

// armEvent schedules the next kernel event for p: the earlier of the host
// allocation end and the running job's projected completion.
func (h *Host) armEvent(p *PCPU, now simtime.Time) {
	at := p.allocEnd
	if p.cur != nil && p.cur.curJob != nil {
		execStart := simtime.Max(now, p.overheadUntil)
		done := execStart.Add(p.cur.curJob.Remaining)
		at = simtime.Min(at, done)
	}
	h.setEvent(p, at)
}

// dispatch runs the host scheduler on PCPU p until it produces a runnable
// decision, charging schedule/context-switch/migration costs.
func (h *Host) dispatch(p *PCPU, now simtime.Time) {
	for iter := 0; ; iter++ {
		if iter > len(h.vcpus)+4 {
			panic(fmt.Sprintf("hv: scheduler %q livelocked dispatching %v", h.sched.Name(), p))
		}
		dec := h.sched.Schedule(p, now)
		cost := h.ScheduleCost(dec.Work)
		h.Overhead.ScheduleCalls++
		h.Overhead.ScheduleTime += cost
		p.chargeOverhead(now, cost)
		if dec.VCPU != nil && dec.RunFor <= 0 {
			panic(fmt.Sprintf("hv: scheduler %q returned non-positive RunFor", h.sched.Name()))
		}
		if dec.VCPU != nil && !h.hot[dec.VCPU.ID].Runnable {
			panic(fmt.Sprintf("hv: scheduler %q picked blocked %v", h.sched.Name(), dec.VCPU))
		}

		old := p.cur
		if dec.VCPU != old {
			if old != nil {
				// A preemption proper: the outgoing VCPU still had work.
				// Capture the job before it is detached below.
				if h.bus.Active() && old.curJob != nil {
					h.bus.Emit(trace.Event{At: now, Kind: trace.Preempt, PCPU: p.ID,
						VM: old.VM.Name, VCPU: old.Index,
						Task: old.curJob.Task.Name, Arg: int64(old.curJob.Remaining)})
				}
				h.hot[old.ID].PCPU = -1
				old.curJob = nil // the unfinished job stays queued in the guest
				// If the preempted VCPU's queue is empty (its job finished
				// right at this instant), it must block now — otherwise a
				// stale runnable flag would make the guest skip the wake on
				// the next job release.
				if h.hot[old.ID].Runnable && old.VM.Guest.PickJob(old, now) == nil {
					h.hot[old.ID].Runnable = false
					h.sched.VCPUIdle(old, now)
				}
			}
			// Warm vs cold keys off the incoming VCPU's LastPCPU, read
			// before the dispatch below overwrites it.
			swCost := h.ctxSwitchCost(p, dec.VCPU)
			h.Overhead.CtxSwitches++
			h.Overhead.CtxSwitchTime += swCost
			p.chargeOverhead(now, swCost)
			if nv := dec.VCPU; nv != nil {
				hs := &h.hot[nv.ID]
				if hs.PCPU >= 0 {
					panic(fmt.Sprintf("hv: %v dispatched on two PCPUs", nv))
				}
				if hs.LastPCPU >= 0 && hs.LastPCPU != int32(p.ID) {
					migCost := h.migrationCost(nv)
					h.Overhead.Migrations++
					h.Overhead.MigrationTime += migCost
					p.chargeOverhead(now, migCost)
					// Emitted where the counter increments; Arg is the
					// source PCPU, Event.PCPU the destination.
					if h.bus.Active() {
						h.bus.Emit(trace.Event{At: now, Kind: trace.Migrate, PCPU: p.ID,
							VM: nv.VM.Name, VCPU: nv.Index, Arg: int64(hs.LastPCPU)})
					}
				}
				hs.PCPU = int32(p.ID)
				hs.LastPCPU = int32(p.ID)
			}
			p.cur = dec.VCPU
			h.emitDispatch(p, dec.VCPU, now, dec.RunFor)
		}
		p.allocEnd = now.Add(dec.RunFor)

		if p.cur == nil {
			h.setEvent(p, p.allocEnd)
			return
		}
		j := p.cur.VM.Guest.PickJob(p.cur, now)
		if j == nil {
			v := p.cur
			hs := &h.hot[v.ID]
			hs.Runnable = false
			hs.PCPU = -1
			v.curJob = nil
			p.cur = nil
			h.emitDispatch(p, nil, now, 0)
			h.sched.VCPUIdle(v, now)
			continue
		}
		p.cur.curJob = j
		h.armEvent(p, now)
		return
	}
}

// Kick forces PCPU p to re-run its scheduler now. Host schedulers call it
// when a higher-priority VCPU appears. The standing kernel event is left
// pending: no simulator event can fire while dispatch runs, and every exit
// path of dispatch ends in setEvent, which reschedules it in place.
func (h *Host) Kick(p *PCPU, now simtime.Time) {
	h.advance(p, now)
	h.dispatch(p, now)
}

// VCPUWake marks v runnable (the guest released a job on an idle VCPU) and
// notifies the host scheduler, which may preempt a PCPU in response.
func (h *Host) VCPUWake(v *VCPU, now simtime.Time) {
	if h.hot[v.ID].Runnable {
		return
	}
	h.hot[v.ID].Runnable = true
	h.sched.VCPUWake(v, now)
}

// VCPURecheck re-evaluates which job a dispatched VCPU should run; the
// guest calls it when a newly released job preempts the current one under
// guest-level EDF. For undispatched VCPUs it is a no-op (the guest queue
// is consulted at next dispatch).
func (h *Host) VCPURecheck(v *VCPU, now simtime.Time) {
	pi := h.hot[v.ID].PCPU
	if pi < 0 {
		return
	}
	p := h.pcpus[pi]
	// As in Kick, the standing kernel event stays pending: every path below
	// ends in setEvent (via refresh, armEvent, or dispatch), which moves it
	// in place.
	h.advance(p, now)
	if p.cur != v { // completed & switched during advance
		h.refresh(p, now)
		return
	}
	j := v.VM.Guest.PickJob(v, now)
	if j == nil {
		hs := &h.hot[v.ID]
		hs.Runnable = false
		hs.PCPU = -1
		v.curJob = nil
		p.cur = nil
		h.emitDispatch(p, nil, now, 0)
		h.sched.VCPUIdle(v, now)
		h.dispatch(p, now)
		return
	}
	if j != v.curJob {
		cost := h.Costs.GuestSwitch.Sample(h.costRNG)
		h.Overhead.GuestSwitches++
		h.Overhead.GuestSwitchTime += cost
		p.chargeOverhead(now, cost)
		h.emitGuestSwitch(v, j, now)
		v.curJob = j
	}
	h.armEvent(p, now)
}

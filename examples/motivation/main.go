// Command motivation reproduces the paper's Figure 1: the same four
// real-time applications across three VMs on one CPU, first under
// uncoordinated two-level EDF scheduling — where RTA2 misses its deadlines
// persistently even though the CPU has exactly enough bandwidth — and then
// under RTVirt's cross-layer scheduling, where every deadline is met.
package main

import (
	"fmt"
	"log"

	"rtvirt"
)

func main() {
	fmt.Println("Reproducing the motivating example of §2 (Figure 1):")
	fmt.Println("  VM1 hosts RTA1 (1ms,15ms) and RTA2 (4ms,15ms, out of phase);")
	fmt.Println("  VM2 runs (5ms,10ms); VM3 runs (5ms,30ms); one physical CPU.")
	fmt.Println()

	result := rtvirt.Figure1(1, 30*rtvirt.Second)
	fmt.Println(result.Render())

	// Re-create the figure's timeline: 60ms of the RTVirt schedule, one
	// character per 0.5ms (digits name the VM occupying the CPU).
	fmt.Println("RTVirt schedule, first 60ms (1=VM1 2=VM2 3=VM3, '.'=idle):")
	fmt.Print(renderTimeline())

	fmt.Println()
	fmt.Println("Both levels run EDF in the baseline, yet RTA2 misses: the VMM")
	fmt.Println("does not know when RTA2 needs the CPU, and the guest cannot")
	fmt.Println("influence when its VM is scheduled. RTVirt's cross-layer channel")
	fmt.Println("(the sched_rtvirt() hypercall plus shared-memory deadlines) gives")
	fmt.Println("the DP-WRAP host scheduler exactly the information it needs.")
}

// renderTimeline runs the RTVirt arm once more with tracing enabled and
// renders a Gantt row like Figure 1a.
func renderTimeline() string {
	cfg := rtvirt.DefaultConfig(rtvirt.StackRTVirt)
	cfg.PCPUs = 1
	cfg.Costs = rtvirt.CostModel{}
	cfg.Slack = 100 * rtvirt.Microsecond
	sys := rtvirt.NewSystem(cfg)
	rec := &rtvirt.TraceRecorder{Max: 1 << 16}
	rtvirt.AttachTracer(sys, rec)

	specs := []struct {
		vm    string
		tasks []rtvirt.Params
		phase []rtvirt.Time
	}{
		{"1", []rtvirt.Params{
			{Slice: 1 * rtvirt.Millisecond, Period: 15 * rtvirt.Millisecond},
			{Slice: 4 * rtvirt.Millisecond, Period: 15 * rtvirt.Millisecond},
		}, []rtvirt.Time{0, rtvirt.Time(2 * rtvirt.Millisecond)}},
		{"2", []rtvirt.Params{{Slice: 4500 * rtvirt.Microsecond, Period: 10 * rtvirt.Millisecond}},
			[]rtvirt.Time{0}},
		{"3", []rtvirt.Params{{Slice: 5 * rtvirt.Millisecond, Period: 30 * rtvirt.Millisecond}},
			[]rtvirt.Time{0}},
	}
	id := 0
	type started struct {
		g  *rtvirt.Guest
		t  *rtvirt.Task
		at rtvirt.Time
	}
	var all []started
	for _, sp := range specs {
		g, err := sys.NewGuest(sp.vm, 1)
		if err != nil {
			log.Fatal(err)
		}
		for i, p := range sp.tasks {
			t := rtvirt.NewTask(id, fmt.Sprintf("t%d", id), rtvirt.Periodic, p)
			id++
			if err := g.Register(t); err != nil {
				log.Fatal(err)
			}
			all = append(all, started{g, t, sp.phase[i]})
		}
	}
	sys.Start()
	for _, st := range all {
		st.g.StartPeriodic(st.t, st.at)
	}
	sys.Run(60 * rtvirt.Millisecond)
	return rec.Timeline(1, 0, rtvirt.Time(60*rtvirt.Millisecond), 120)
}

package core

import (
	"rtvirt/internal/clone"
	"rtvirt/internal/guest"
	"rtvirt/internal/hv"
)

// Fork deep-copies the entire system — simulator clock and RNG streams,
// pending event queue, hypervisor, host scheduler, guests and workload
// handlers — into an independent replica that will replay the exact same
// future as the original (same events, same random draws, same dispatch
// decisions). The returned clone context maps every original object to its
// replica; use clone.Get to remap references the caller holds (tasks,
// guests, workload drivers).
//
// Fork fails if any pending event still carries a closure instead of a
// typed payload: closures capture the original world and cannot be remapped.
func (sys *System) Fork() (*System, *clone.Ctx, error) {
	ctx := clone.New()
	if _, err := sys.Sim.Fork(ctx); err != nil {
		return nil, nil, err
	}
	return sys.ForkWith(ctx), ctx, nil
}

// ForkWith assembles the forked System wrapper inside an existing clone
// pass. The simulator must already have been forked into ctx (Fork does
// this; the cluster layer does it once for all hosts on the shared clock).
func (sys *System) ForkWith(ctx *clone.Ctx) *System {
	if n, ok := ctx.Lookup(sys); ok {
		return n.(*System)
	}
	nsys := &System{
		Cfg:  sys.Cfg,
		Sim:  clone.Get(ctx, sys.Sim),
		Host: sys.Host.ForkHandler(ctx).(*hv.Host),
	}
	if sys.Cfg.SharedSim != nil {
		nsys.Cfg.SharedSim = nsys.Sim
	}
	ctx.Put(sys, nsys)
	nsys.guests = make([]*guest.OS, len(sys.guests))
	for i, g := range sys.guests {
		// ForkDriver is memo-aware: live guests were already cloned during
		// the host walk; guests that were shut down are cloned here.
		nsys.guests[i] = g.ForkDriver(ctx).(*guest.OS)
	}
	return nsys
}

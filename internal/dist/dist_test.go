package dist

import (
	"math"
	"testing"

	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
)

func sampleMean(d Duration, n int, seed uint64) float64 {
	r := sim.NewRNG(seed)
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(d.Sample(r))
	}
	return sum / float64(n)
}

func TestConstant(t *testing.T) {
	c := Constant{D: simtime.Millis(7)}
	r := sim.NewRNG(1)
	for i := 0; i < 10; i++ {
		if c.Sample(r) != simtime.Millis(7) {
			t.Fatal("constant distribution varied")
		}
	}
	if c.Mean() != simtime.Millis(7) {
		t.Fatal("constant mean wrong")
	}
}

func TestUniformBoundsAndMean(t *testing.T) {
	u := Uniform{Lo: simtime.Millis(100), Hi: simtime.Seconds(1)}
	r := sim.NewRNG(2)
	for i := 0; i < 10000; i++ {
		v := u.Sample(r)
		if v < u.Lo || v > u.Hi {
			t.Fatalf("uniform sample %v outside [%v,%v]", v, u.Lo, u.Hi)
		}
	}
	got := sampleMean(u, 100000, 3)
	want := float64(u.Mean())
	if math.Abs(got-want)/want > 0.01 {
		t.Fatalf("uniform mean %g, want ~%g", got, want)
	}
}

func TestUniformDegenerate(t *testing.T) {
	u := Uniform{Lo: simtime.Millis(5), Hi: simtime.Millis(5)}
	if u.Sample(sim.NewRNG(1)) != simtime.Millis(5) {
		t.Fatal("degenerate uniform wrong")
	}
}

func TestNormalClampsAtMin(t *testing.T) {
	n := Normal{MeanD: simtime.Micros(10), Stddev: simtime.Micros(50), Min: simtime.Micros(1)}
	r := sim.NewRNG(4)
	for i := 0; i < 10000; i++ {
		if v := n.Sample(r); v < n.Min {
			t.Fatalf("normal sample %v below min %v", v, n.Min)
		}
	}
}

func TestNormalMean(t *testing.T) {
	n := Normal{MeanD: simtime.Millis(10), Stddev: simtime.Millis(1)}
	got := sampleMean(n, 100000, 5)
	want := float64(n.Mean())
	if math.Abs(got-want)/want > 0.01 {
		t.Fatalf("normal mean %g, want ~%g", got, want)
	}
}

func TestExponentialMean(t *testing.T) {
	e := Exponential{MeanD: simtime.Millis(10)}
	got := sampleMean(e, 200000, 6)
	want := float64(e.Mean())
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("exp mean %g, want ~%g", got, want)
	}
}

func TestLogNormalMean(t *testing.T) {
	l := LogNormalFromMoments(simtime.Micros(50), 0.5)
	got := sampleMean(l, 400000, 7)
	want := float64(simtime.Micros(50))
	if math.Abs(got-want)/want > 0.03 {
		t.Fatalf("lognormal mean %g, want ~%g", got, want)
	}
	if math.Abs(float64(l.Mean())-want)/want > 0.001 {
		t.Fatalf("lognormal analytic mean %v, want ~50µs", l.Mean())
	}
}

func TestBoundedParetoBounds(t *testing.T) {
	p := BoundedPareto{Lo: simtime.Micros(10), Hi: simtime.Millis(10), Alpha: 1.5}
	r := sim.NewRNG(8)
	for i := 0; i < 10000; i++ {
		v := p.Sample(r)
		if v < p.Lo || v > p.Hi {
			t.Fatalf("pareto sample %v outside [%v,%v]", v, p.Lo, p.Hi)
		}
	}
	got := sampleMean(p, 400000, 9)
	want := float64(p.Mean())
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("pareto mean %g, want ~%g", got, want)
	}
}

func TestMixture(t *testing.T) {
	m := Mixture{
		Parts:   []Duration{Constant{D: simtime.Micros(10)}, Constant{D: simtime.Micros(90)}},
		Weights: []float64{0.75, 0.25},
	}
	got := sampleMean(m, 200000, 10)
	want := float64(m.Mean()) // 0.75*10 + 0.25*90 = 30µs
	if math.Abs(float64(simtime.Micros(30))-want) > 1 {
		t.Fatalf("mixture analytic mean %v, want 30µs", m.Mean())
	}
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("mixture mean %g, want ~%g", got, want)
	}
}

func TestSamplesNeverNonPositive(t *testing.T) {
	dists := []Duration{
		Constant{D: 0},
		Uniform{Lo: 0, Hi: 0},
		Normal{MeanD: 0, Stddev: simtime.Millis(1)},
		Exponential{MeanD: 1},
		LogNormal{Mu: -50, Sigma: 1},
		BoundedPareto{Lo: 0, Hi: 0, Alpha: 2},
		Mixture{},
	}
	r := sim.NewRNG(11)
	for _, d := range dists {
		for i := 0; i < 1000; i++ {
			if v := d.Sample(r); v < 1 {
				t.Fatalf("%v produced non-positive sample %v", d, v)
			}
		}
	}
}

func TestStrings(t *testing.T) {
	dists := []Duration{
		Constant{D: simtime.Millis(1)},
		Uniform{Lo: 1, Hi: 2},
		Normal{MeanD: 1, Stddev: 1},
		Exponential{MeanD: 1},
		LogNormal{Mu: 1, Sigma: 1},
		BoundedPareto{Lo: 1, Hi: 2, Alpha: 1.1},
		Mixture{},
	}
	for _, d := range dists {
		if d.String() == "" {
			t.Fatalf("%T has empty String()", d)
		}
	}
}

// Package core assembles the RTVirt system — the paper's primary
// contribution — and, for comparison, the baseline stacks the evaluation
// measures against.
//
// An RTVirt system is the composition of:
//   - the VMM kernel (internal/hv) with its paravirtual cross-layer
//     channel (sched_rtvirt() hypercall + shared-memory deadline slots),
//   - the DP-WRAP host scheduler (internal/sched/dpwrap) consuming the
//     published deadlines,
//   - cross-layer guest OSes (internal/guest) that derive VCPU
//     reservations from their RTAs and publish next-earliest deadlines.
//
// The baselines swap the host scheduler and disable the cross-layer
// channel: RT-Xen (gEDF + deferrable server, configured offline via
// internal/csa), plain two-level EDF (polling servers, Figure 1), and
// Xen's Credit scheduler.
package core

import (
	"fmt"

	"rtvirt/internal/guest"
	"rtvirt/internal/hv"
	"rtvirt/internal/sched/credit"
	"rtvirt/internal/sched/dpwrap"
	"rtvirt/internal/sched/rtxen"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

// Stack selects the scheduling architecture of a System.
type Stack int

// Stacks.
const (
	// RTVirt is the paper's system: cross-layer pEDF guests over DP-WRAP.
	RTVirt Stack = iota
	// RTXen is the primary baseline: pEDF guests over gEDF + deferrable
	// servers, configured offline.
	RTXen
	// TwoLevelEDF is the motivating baseline of Figure 1: pEDF guests over
	// an EDF VMM with polling servers and no coordination.
	TwoLevelEDF
	// Credit is Xen's default proportional-share scheduler.
	Credit
)

// String implements fmt.Stringer.
func (s Stack) String() string {
	switch s {
	case RTVirt:
		return "rtvirt"
	case RTXen:
		return "rt-xen"
	case TwoLevelEDF:
		return "two-level-edf"
	case Credit:
		return "credit"
	default:
		return fmt.Sprintf("Stack(%d)", int(s))
	}
}

// Config describes a System.
type Config struct {
	Stack Stack
	// PCPUs is the number of physical CPUs (the paper's testbed exposes
	// 15 to DomUs after pinning Dom0).
	PCPUs int
	// Seed fixes the simulation's random stream.
	Seed uint64
	// Costs is the platform cost model; zero-value CostModel removes all
	// overheads (useful in unit tests), DefaultCosts mirrors §4.
	Costs hv.CostModel
	// Slack is the per-VCPU budget slack (500µs in §4.1). Only meaningful
	// for the RTVirt stack.
	Slack simtime.Duration
	// DPWrap tunes the RTVirt host scheduler (min/max global slice).
	DPWrap dpwrap.Config
	// RTXen tunes the RT-Xen host scheduler.
	RTXen rtxen.Config
	// Credit tunes the Credit host scheduler.
	Credit credit.Config
	// SharedSim, when non-nil, runs this system on an existing simulator
	// clock — several hosts in one simulation (multi-host clusters, §6).
	SharedSim *sim.Simulator
}

// DefaultConfig mirrors the evaluation platform of §4.1.
func DefaultConfig(stack Stack) Config {
	return Config{
		Stack:  stack,
		PCPUs:  15,
		Seed:   1,
		Costs:  hv.DefaultCosts(),
		Slack:  simtime.Micros(500),
		DPWrap: dpwrap.DefaultConfig(),
		RTXen:  rtxen.DefaultConfig(),
		Credit: credit.DefaultConfig(),
	}
}

// System is a complete simulated virtualization host.
type System struct {
	Cfg  Config
	Sim  *sim.Simulator
	Host *hv.Host

	guests []*guest.OS
}

// NewSystem builds a host with the configured stack.
func NewSystem(cfg Config) *System {
	if cfg.PCPUs <= 0 {
		cfg.PCPUs = 1
	}
	s := cfg.SharedSim
	if s == nil {
		s = sim.New(cfg.Seed)
	}
	var sched hv.HostScheduler
	switch cfg.Stack {
	case RTVirt:
		sched = dpwrap.New(cfg.DPWrap)
	case RTXen:
		sched = rtxen.New(cfg.RTXen)
	case TwoLevelEDF:
		c := cfg.RTXen
		c.Deferrable = false
		sched = rtxen.New(c)
	case Credit:
		sched = credit.New(cfg.Credit)
	default:
		panic(fmt.Sprintf("core: unknown stack %v", cfg.Stack))
	}
	h := hv.NewHost(s, cfg.PCPUs, sched, cfg.Costs)
	return &System{Cfg: cfg, Sim: s, Host: h}
}

// GuestOpts tunes a guest created with NewGuestOpts.
type GuestOpts struct {
	VCPUs    int
	MaxVCPUs int               // hotplug bound (0 = no hotplug)
	Slack    *simtime.Duration // nil = the system default
	// GEDF switches the guest's process scheduler from partitioned EDF to
	// global EDF across its VCPUs (the §6 alternative).
	GEDF bool
	// PrioritySlack scales each VCPU's slack by (1 + highest task
	// priority) — §6's priority-proportional provisioning.
	PrioritySlack bool
}

// NewGuest creates a VM whose guest configuration matches the stack:
// cross-layer for RTVirt, static otherwise.
func (sys *System) NewGuest(name string, vcpus int) (*guest.OS, error) {
	return sys.NewGuestOpts(name, GuestOpts{VCPUs: vcpus})
}

// NewGuestOpts creates a VM with explicit guest options.
func (sys *System) NewGuestOpts(name string, opts GuestOpts) (*guest.OS, error) {
	gc := guest.Config{
		VCPUCapacity:  1.0,
		MaxVCPUs:      opts.MaxVCPUs,
		GEDF:          opts.GEDF,
		PrioritySlack: opts.PrioritySlack,
	}
	if sys.Cfg.Stack == RTVirt {
		gc.CrossLayer = true
		gc.Slack = sys.Cfg.Slack
		gc.Reshuffle = true
	}
	if opts.Slack != nil {
		gc.Slack = *opts.Slack
	}
	g, err := guest.NewOS(sys.Host, name, gc, opts.VCPUs)
	if err != nil {
		return nil, err
	}
	sys.guests = append(sys.guests, g)
	return g, nil
}

// NewServerGuest creates a VM with explicit per-VCPU server reservations —
// the offline-configured interface of RT-Xen and the two-level baseline.
func (sys *System) NewServerGuest(name string, servers []hv.Reservation, weight int) (*guest.OS, error) {
	gc := guest.Config{VCPUCapacity: 1.0}
	if sys.Cfg.Stack == RTVirt {
		gc.CrossLayer = true
		gc.Slack = sys.Cfg.Slack
		gc.Reshuffle = true
	}
	g, err := guest.NewOS(sys.Host, name, gc, 0)
	if err != nil {
		return nil, err
	}
	for _, r := range servers {
		if _, err := g.AddVCPU(r, weight); err != nil {
			sys.Host.RemoveVM(g.VM()) // don't leak a partially built VM
			return nil, fmt.Errorf("core: vcpu for %s: %w", name, err)
		}
	}
	sys.guests = append(sys.guests, g)
	return g, nil
}

// NewWeightedGuest creates a VM for the Credit stack with the given weight
// on each of its VCPUs.
func (sys *System) NewWeightedGuest(name string, vcpus, weight int) (*guest.OS, error) {
	gc := guest.Config{VCPUCapacity: 1e9} // Credit does no RT admission
	g, err := guest.NewOS(sys.Host, name, gc, 0)
	if err != nil {
		return nil, err
	}
	for i := 0; i < vcpus; i++ {
		if _, err := g.AddVCPU(hv.Reservation{Period: simtime.Millis(10)}, weight); err != nil {
			sys.Host.RemoveVM(g.VM()) // don't leak a partially built VM
			return nil, err
		}
	}
	sys.guests = append(sys.guests, g)
	return g, nil
}

// Guests returns the created guests in creation order.
func (sys *System) Guests() []*guest.OS { return sys.guests }

// Start installs the scheduler and dispatches the PCPUs.
func (sys *System) Start() { sys.Host.Start() }

// Run advances the simulation by d.
func (sys *System) Run(d simtime.Duration) { sys.Sim.RunFor(d) }

// Now reports the current simulated time.
func (sys *System) Now() simtime.Time { return sys.Sim.Now() }

// AllTasks returns every task registered across the system's guests.
func (sys *System) AllTasks() []*task.Task {
	var out []*task.Task
	for _, g := range sys.guests {
		out = append(out, g.Tasks()...)
	}
	return out
}

// AllocatedBandwidth sums the host-level reservations across guests, in
// CPUs — the "Allocated" metric of Figure 3.
func (sys *System) AllocatedBandwidth() float64 {
	var sum float64
	for _, g := range sys.guests {
		sum += g.AllocatedBandwidth()
	}
	return sum
}

// OverheadReport summarises the scheduler overhead (Table 6).
type OverheadReport struct {
	ScheduleTime  simtime.Duration
	CtxSwitchTime simtime.Duration
	Migrations    uint64
	Hypercalls    uint64
	Percent       float64
}

// Overhead reports the host's accumulated scheduling overhead.
func (sys *System) Overhead() OverheadReport {
	o := sys.Host.Overhead
	return OverheadReport{
		ScheduleTime:  o.ScheduleTime,
		CtxSwitchTime: o.CtxSwitchTime,
		Migrations:    o.Migrations,
		Hypercalls:    o.Hypercalls,
		Percent:       sys.Host.OverheadPercent(),
	}
}

// Package eventq provides the cancellable pending-event queue that drives
// the discrete-event simulator.
//
// Events fire in non-decreasing time order; events scheduled for the same
// instant fire in FIFO order of insertion so that simulation runs are fully
// deterministic.
//
// The queue is an intrusive 4-ary min-heap specialized to *Event: each
// record carries its own heap index, so there is no container/heap
// indirection and no interface boxing on the hot path, and a pending event
// can be moved in place (Reschedule) with a single sift instead of a
// cancel plus a fresh insert. The 4-ary layout halves the tree depth of a
// binary heap; the extra child comparisons per level are cheap linear
// scans over adjacent pointers.
//
// Event records are pooled on a per-queue free list and reused across
// Schedule calls, so the steady-state hot path (schedule → fire →
// reschedule) allocates nothing. Cancellation is lazy: Cancel marks the
// event as a tombstone and leaves it in the heap; tombstones are discarded
// when they surface at the root or when a compaction pass rebuilds the
// heap. The root is kept live at all times (tombstones are popped the
// moment they surface), which makes PeekTime a plain field read. Because
// records are recycled, callers hold a generation-checked Handle rather
// than a raw pointer — a Handle to an event that has fired, been
// cancelled, or been reused is simply inert.
package eventq

import (
	"fmt"

	"rtvirt/internal/clone"
	"rtvirt/internal/simtime"
)

const (
	statePending   byte = iota // queued, will fire
	stateTombstone             // cancelled, still occupying a heap slot
	stateFree                  // recycled onto the free list
)

// arity is the heap fan-out. Children of node i are arity*i+1 ...
// arity*i+arity; the parent of node i is (i-1)/arity.
const arity = 4

// Payload is the closure-free form of a scheduled event: plain data naming
// a registered handler plus a (Kind, Owner) pair and two scalar arguments.
// Because a Payload captures no pointers, a queue whose pending events all
// carry payloads can be deep-copied (CloneInto) — the copy re-binds each
// event to the forked handler of the same ID instead of to stale closures.
//
// Field meaning is owned by the handler: Kind selects one of its event
// types, Owner names the entity the event belongs to (a PCPU, VCPU, task,
// or deployment ID), and Arg0/Arg1 carry event-specific scalars (times,
// target IDs).
type Payload struct {
	Handler int32
	Kind    uint16
	Owner   int32
	Arg0    int64
	Arg1    int64
}

// Event is the pooled internal record for one scheduled callback. Callers
// never hold an *Event directly; they hold a Handle.
type Event struct {
	at  simtime.Time
	seq uint64 // insertion order tiebreak
	gen uint64 // bumped on every recycle; validates Handles
	fn  func(now simtime.Time)
	p   Payload // typed form; used when fn is nil
	// idx is the record's position inside its current container: the heap
	// slot (heap backend), or the run/overflow-heap index or packed
	// level·64+slot (wheel backend). -1 when not queued.
	idx   int32
	state byte
	// where names the wheel container holding the record (whRun/whSlot/
	// whOver); always whNone under the heap backend.
	where byte
	// next/prev link the record into its wheel slot's doubly-linked chain.
	next, prev *Event
}

// Handle identifies one scheduled event. The zero Handle is valid and
// inert: Active reports false and Cancel is a no-op. A Handle goes inert
// the moment its event fires, is cancelled, or is rescheduled (Reschedule
// returns the replacement) — even if the underlying record is later reused
// for an unrelated event, the generation check keeps the old Handle from
// touching it.
type Handle struct {
	e   *Event
	gen uint64
}

// Active reports whether the event is still queued and will fire.
func (h Handle) Active() bool {
	return h.e != nil && h.e.gen == h.gen && h.e.state == statePending
}

// At reports the instant the event is scheduled for, or simtime.Never if
// the Handle is no longer active.
func (h Handle) At() simtime.Time {
	if !h.Active() {
		return simtime.Never
	}
	return h.e.at
}

// Queue is a time-ordered queue of events. The zero value is ready to use.
// A Queue (like the simulator it drives) is single-threaded; concurrent
// simulation runs each own their own Queue.
//
// Invariant: when the heap is non-empty its root is a live (pending)
// event. Every mutation that could surface a tombstone at the root pops it
// immediately, so PeekTime and Fire never have to search.
type Queue struct {
	// Dispatch receives every fired payload event. The queue's owner (the
	// simulator) sets it once at construction; it is deliberately not part
	// of CloneInto so a forked queue is re-bound to its own owner.
	Dispatch func(now simtime.Time, p Payload)

	h    []*Event
	free []*Event // recycled records, bounded by peak live events
	seq  uint64
	live int // pending (non-tombstone) events

	// backend selects the data structure behind the queue; the zero value
	// is the heap, so existing zero-value Queues are unchanged.
	backend Backend
	// w holds the timing-wheel state; allocated lazily by SetBackend so a
	// heap-backed Queue stays small.
	w *wheel
}

// Len reports the number of live events in the queue.
func (q *Queue) Len() int { return q.live }

// SetBackend selects the queue's data structure. It must be called before
// any event is scheduled; re-filing a populated queue is never needed (the
// owner picks a backend at construction), so a non-empty queue panics.
func (q *Queue) SetBackend(b Backend) {
	if q.live != 0 || len(q.h) != 0 {
		panic("eventq: SetBackend on a non-empty queue")
	}
	q.backend = b
	if b == BackendWheel && q.w == nil {
		q.w = &wheel{}
	}
}

// Backend reports which data structure backs the queue.
func (q *Queue) Backend() Backend { return q.backend }

// less orders events by (time, insertion sequence).
func less(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Schedule enqueues fn to run at instant at and returns a Handle that can
// be used to cancel it.
func (q *Queue) Schedule(at simtime.Time, fn func(now simtime.Time)) Handle {
	if fn == nil {
		panic("eventq: Schedule with nil callback")
	}
	e := q.insert(at)
	e.fn = fn
	return Handle{e: e, gen: e.gen}
}

// SchedulePayload enqueues a typed event. It is ordered exactly as a
// Schedule call at the same instant would be (same seq counter), so
// converting a closure event to a payload event at the same call site
// preserves same-instant FIFO order bit for bit.
func (q *Queue) SchedulePayload(at simtime.Time, p Payload) Handle {
	e := q.insert(at)
	e.p = p
	return Handle{e: e, gen: e.gen}
}

// insert allocates (or recycles) a pending record at instant at and places
// it in the heap. The caller fills in the callback or payload.
func (q *Queue) insert(at simtime.Time) *Event {
	var e *Event
	if n := len(q.free); n > 0 {
		e = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
	} else {
		e = &Event{}
	}
	e.at, e.seq, e.state = at, q.seq, statePending
	q.seq++
	q.live++
	if q.backend == BackendWheel {
		q.wheelPlace(e)
		return e
	}
	q.h = append(q.h, e)
	q.siftUp(len(q.h) - 1)
	// Tombstones accumulate without any Cancel running when fires shrink
	// the live population; checking here too keeps the heap length bounded
	// by max(64, 2×live) no matter how operations interleave.
	q.maybeCompact()
	return e
}

// Cancel removes the event from the queue if it has not fired yet. It is
// idempotent and inert on zero, fired, cancelled, and recycled Handles —
// in particular, cancelling after the event fired cannot corrupt Len.
func (q *Queue) Cancel(h Handle) {
	if !h.Active() {
		return
	}
	e := h.e
	if q.backend == BackendWheel {
		// The wheel's containers all support cheap eager removal (an O(1)
		// chain unlink in the common slot case), so there are no tombstones:
		// the record is detached and recycled on the spot.
		q.wheelDetach(e)
		q.live--
		q.recycle(e)
		return
	}
	e.state = stateTombstone
	e.fn = nil
	q.live--
	if e.idx == 0 {
		// Keep the root live so PeekTime stays a field read.
		q.fixRoot()
		return
	}
	q.maybeCompact()
}

// Reschedule moves a still-pending event to instant at, keeping its
// callback, and returns the replacement Handle (the one passed in goes
// inert). It is semantically identical to Cancel followed by Schedule with
// the same callback — in particular the event is assigned a fresh
// insertion sequence number, so among events scheduled for the same
// instant it fires after those already queued, exactly as a fresh insert
// would. Unlike the cancel/insert round trip it leaves no tombstone and
// performs a single in-place sift (decrease- or increase-key).
//
// Rescheduling an inactive Handle panics: the callback of a fired or
// cancelled event is gone, so there is nothing to move — callers that can
// race a firing check Active first.
func (q *Queue) Reschedule(h Handle, at simtime.Time) Handle {
	if !h.Active() {
		panic("eventq: Reschedule of inactive handle")
	}
	e := h.e
	e.gen++ // invalidate the old handle, as cancel+schedule would
	e.at = at
	e.seq = q.seq
	q.seq++
	if q.backend == BackendWheel {
		// Detach + re-file: both ends are O(1) for the slot-resident standing
		// timers that dominate the kernel's reschedule traffic.
		q.wheelDetach(e)
		q.wheelPlace(e)
		return Handle{e: e, gen: e.gen}
	}
	i := int(e.idx)
	q.siftUp(i)
	if int(e.idx) == i {
		q.siftDown(i)
	}
	// An increase-key at the root pulls a child up; it may be a tombstone.
	q.fixRoot()
	return Handle{e: e, gen: e.gen}
}

// PeekTime reports the firing time of the earliest live event, or
// simtime.Never when the queue is empty. O(1) on the heap backend (the
// root is always live); on the wheel it may advance the cursor, but that
// work is the same batch transfer the next Fire would have paid.
func (q *Queue) PeekTime() simtime.Time {
	if q.backend == BackendWheel {
		if !q.wheelFront() {
			return simtime.Never
		}
		return q.w.run[len(q.w.run)-1].at
	}
	if len(q.h) == 0 {
		return simtime.Never
	}
	return q.h[0].at
}

// Fire pops the earliest live event and invokes its callback with now set
// to the event's scheduled time. It reports false when the queue is empty.
// The event record is recycled before the callback runs, so a callback
// that immediately reschedules reuses it without allocating. Tombstone
// skipping is folded into the pop: the root is live by invariant, so Fire
// is a single heap descent (plus one per tombstone that the descent
// surfaces, which is the work that removes it).
func (q *Queue) Fire() bool {
	if q.backend == BackendWheel {
		return q.wheelFire()
	}
	if len(q.h) == 0 {
		return false
	}
	e := q.removeRoot()
	q.fixRoot()
	q.live--
	at, fn, p := e.at, e.fn, e.p
	q.recycle(e)
	if fn != nil {
		fn(at)
	} else {
		q.Dispatch(at, p)
	}
	return true
}

// removeRoot detaches the heap root and restores heap shape (one descent).
func (q *Queue) removeRoot() *Event {
	e := q.h[0]
	n := len(q.h) - 1
	last := q.h[n]
	q.h[n] = nil
	q.h = q.h[:n]
	if n > 0 {
		q.h[0] = last
		last.idx = 0
		q.siftDown(0)
	}
	e.idx = -1
	return e
}

// fixRoot discards tombstones sitting at the root, restoring the live-root
// invariant.
func (q *Queue) fixRoot() {
	for len(q.h) > 0 && q.h[0].state == stateTombstone {
		q.recycle(q.removeRoot())
	}
}

// siftUp moves the event at index i toward the root until its parent is
// not larger. Displaced ancestors shift down one level each; the moving
// event is written once at its final slot.
func (q *Queue) siftUp(i int) {
	e := q.h[i]
	for i > 0 {
		p := (i - 1) / arity
		pe := q.h[p]
		if !less(e, pe) {
			break
		}
		q.h[i] = pe
		pe.idx = int32(i)
		i = p
	}
	q.h[i] = e
	e.idx = int32(i)
}

// siftDown moves the event at index i toward the leaves until no child is
// smaller.
func (q *Queue) siftDown(i int) {
	e := q.h[i]
	n := len(q.h)
	for {
		c := arity*i + 1
		if c >= n {
			break
		}
		end := c + arity
		if end > n {
			end = n
		}
		m := c
		mc := q.h[c]
		for j := c + 1; j < end; j++ {
			if less(q.h[j], mc) {
				m, mc = j, q.h[j]
			}
		}
		if !less(mc, e) {
			break
		}
		q.h[i] = mc
		mc.idx = int32(i)
		i = m
	}
	q.h[i] = e
	e.idx = int32(i)
}

// maybeCompact rebuilds the heap from live events when tombstones dominate
// it, bounding memory for workloads that cancel far-future events faster
// than the clock reaches them. Both Cancel and Schedule run the check, so
// the bound holds under any interleaving of the two.
func (q *Queue) maybeCompact() {
	if len(q.h) < 64 || q.live*2 >= len(q.h) {
		return
	}
	kept := q.h[:0]
	for _, e := range q.h {
		if e.state == statePending {
			kept = append(kept, e)
		} else {
			q.recycle(e)
		}
	}
	for i := len(kept); i < len(q.h); i++ {
		q.h[i] = nil
	}
	q.h = kept
	n := len(kept)
	for i, e := range kept {
		e.idx = int32(i)
	}
	if n > 1 {
		for i := (n - 2) / arity; i >= 0; i-- {
			q.siftDown(i)
		}
	}
}

// recycle returns a record to the free list, invalidating outstanding
// Handles to it.
func (q *Queue) recycle(e *Event) {
	e.gen++
	e.fn = nil
	e.p = Payload{}
	e.state = stateFree
	e.idx = -1
	e.where = whNone
	e.next, e.prev = nil, nil
	q.free = append(q.free, e)
}

// CloneInto deep-copies the queue's pending events into dst, which must be
// empty (its Dispatch hook, set by dst's owner, is left untouched). Every
// pending event keeps its (at, seq) pair and generation exactly, and the
// seq counter is carried over, so the copy fires the same events in the
// same order and numbers future insertions identically — the forked run is
// bit-identical to the original. Tombstones and the free list are not
// copied; they are unobservable.
//
// Each old record's clone is memoized in ctx so callers can remap the
// Handles they hold (CloneHandle). CloneInto fails if any pending event
// still carries a closure: a closure captures pointers into the old world,
// so copying it would make the fork mutate its parent.
func (q *Queue) CloneInto(dst *Queue, ctx *clone.Ctx) error {
	if q.backend == BackendWheel {
		return q.cloneWheelInto(dst, ctx)
	}
	closures := 0
	dst.h = make([]*Event, 0, q.live)
	for _, e := range q.h {
		if e.state != statePending {
			continue
		}
		if e.fn != nil {
			closures++
			continue
		}
		ne := &Event{at: e.at, seq: e.seq, gen: e.gen, p: e.p, state: statePending}
		ctx.Put(e, ne)
		dst.h = append(dst.h, ne)
	}
	if closures > 0 {
		return fmt.Errorf("eventq: %d pending closure event(s); only typed payload events can be forked", closures)
	}
	dst.seq = q.seq
	dst.live = len(dst.h)
	n := len(dst.h)
	for i, e := range dst.h {
		e.idx = int32(i)
	}
	// Heapify; pop order is total on (at, seq), so layout differences from
	// the source heap are unobservable.
	if n > 1 {
		for i := (n - 2) / arity; i >= 0; i-- {
			dst.siftDown(i)
		}
	}
	return nil
}

// CloneHandle maps a Handle into a queue previously copied with CloneInto
// using the same ctx. Inactive handles (zero, fired, cancelled) map to the
// inert zero Handle; active ones map to the clone of their event and stay
// active.
func CloneHandle(ctx *clone.Ctx, h Handle) Handle {
	if !h.Active() {
		return Handle{}
	}
	n, ok := ctx.Lookup(h.e)
	if !ok {
		panic("eventq: CloneHandle for an event from a different queue")
	}
	return Handle{e: n.(*Event), gen: h.gen}
}

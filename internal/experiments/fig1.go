package experiments

import (
	"fmt"
	"strings"

	"rtvirt/internal/core"
	"rtvirt/internal/hv"
	"rtvirt/internal/metrics"
	"rtvirt/internal/runner"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

// Figure1Result contrasts the motivating example (§2, Figure 1) under the
// uncoordinated two-level EDF baseline and under RTVirt.
type Figure1Result struct {
	// MissRatio maps "<stack>/<rta>" to the task's deadline-miss ratio.
	Baseline map[string]float64
	RTVirt   map[string]float64
}

// Figure1 runs the motivating scenario: VM1 hosts RTA1 (1,15) and RTA2
// (4,15, out of phase); VM2 runs (5,10) and VM3 (5,30). Under two-level
// EDF without coordination RTA2 misses persistently; under RTVirt every
// deadline is met.
//
// Deviation from the paper: RTVirt runs VM2's task at (4.5,10) instead of
// (5,10) so the paper's own 500µs-style budget slack fits — at exactly
// 100% utilization no implementation (including the Xen prototype, which
// always configures slack) can add its overhead margin.
func Figure1(seed uint64, duration simtime.Duration) Figure1Result {
	// The two arms are independent simulations; run them on the runner.
	ratios := runner.Map(0, []bool{true, false}, func(baseline bool) map[string]float64 {
		return fig1Arm(seed, duration, baseline)
	})
	return Figure1Result{Baseline: ratios[0], RTVirt: ratios[1]}
}

// fig1Arm runs the motivating scenario under one stack: plain two-level
// EDF with the paper's polling-server params (baseline), or cross-layer
// DP-WRAP (RTVirt).
func fig1Arm(seed uint64, duration simtime.Duration, baseline bool) map[string]float64 {
	var cfg core.Config
	if baseline {
		cfg = core.DefaultConfig(core.TwoLevelEDF)
	} else {
		cfg = core.DefaultConfig(core.RTVirt)
		cfg.Slack = simtime.Micros(100)
	}
	cfg.PCPUs = 1
	cfg.Seed = seed
	cfg.Costs = hv.CostModel{}
	sys := core.NewSystem(cfg)
	tasks := fig1Workload(sys, baseline)
	sys.Start()
	fig1Start(sys, tasks)
	sys.Run(duration)
	out := map[string]float64{}
	for name, tk := range tasks {
		out[name] = tk.Stats().MissRatio()
	}
	return out
}

type fig1Tasks map[string]*task.Task

func fig1Workload(sys *core.System, baseline bool) fig1Tasks {
	out := fig1Tasks{}
	rta1 := task.New(0, "RTA1", task.Periodic, pp(1, 15))
	rta2 := task.New(1, "RTA2", task.Periodic, pp(4, 15))
	rta3 := task.New(2, "VM2-RTA", task.Periodic, pp(5, 10))
	rta4 := task.New(3, "VM3-RTA", task.Periodic, pp(5, 30))
	if baseline {
		g1 := mustGuest(sys.NewServerGuest("vm1", []hv.Reservation{{Budget: ms(5), Period: ms(15)}}, 256))
		g2 := mustGuest(sys.NewServerGuest("vm2", []hv.Reservation{{Budget: ms(5), Period: ms(10)}}, 256))
		g3 := mustGuest(sys.NewServerGuest("vm3", []hv.Reservation{{Budget: ms(5), Period: ms(30)}}, 256))
		must(g1.RegisterOn(rta1, 0))
		must(g1.RegisterOn(rta2, 0))
		must(g2.RegisterOn(rta3, 0))
		must(g3.RegisterOn(rta4, 0))
	} else {
		// Leave room for the slack (see the Figure1 doc comment).
		rta3.SetParams(task.Params{Slice: simtime.Micros(4500), Period: ms(10)})
		g1 := mustGuest(sys.NewGuest("vm1", 1))
		g2 := mustGuest(sys.NewGuest("vm2", 1))
		g3 := mustGuest(sys.NewGuest("vm3", 1))
		must(g1.Register(rta1))
		must(g1.Register(rta2))
		must(g2.Register(rta3))
		must(g3.Register(rta4))
	}
	out["RTA1"], out["RTA2"], out["VM2-RTA"], out["VM3-RTA"] = rta1, rta2, rta3, rta4
	return out
}

func fig1Start(sys *core.System, tasks fig1Tasks) {
	for name, tk := range tasks {
		g := guestOf(sys, tk)
		phase := simtime.Time(0)
		if name == "RTA2" {
			phase = simtime.Time(ms(2)) // the adversarial alignment of Fig. 1b
		}
		g.StartPeriodic(tk, phase)
	}
}

// Render formats the result as a table.
func (r Figure1Result) Render() string {
	t := metrics.NewTable("RTA", "two-level EDF miss %", "RTVirt miss %")
	for _, name := range []string{"RTA1", "RTA2", "VM2-RTA", "VM3-RTA"} {
		t.AddRow(name, fmt.Sprintf("%.1f", 100*r.Baseline[name]), fmt.Sprintf("%.1f", 100*r.RTVirt[name]))
	}
	var b strings.Builder
	b.WriteString("Figure 1 — motivating example, uncoordinated two-level EDF vs RTVirt\n")
	b.WriteString(t.String())
	return b.String()
}

// Package task models the real-time applications (RTAs) and background
// applications (BGAs) that run inside guest VMs.
//
// The model follows §3.1 of the RTVirt paper: once activated, a task needs
// a slice of CPU time s within a period p; its deadline is the end of the
// period. Periodic tasks release a job every p; sporadic tasks release a
// job on an external trigger, at least p apart. Background tasks have no
// deadline and soak up leftover bandwidth.
package task

import (
	"fmt"

	"rtvirt/internal/simtime"
)

// Kind classifies a task's activation model.
type Kind int

// Task kinds.
const (
	Periodic Kind = iota
	Sporadic
	Background
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Periodic:
		return "periodic"
	case Sporadic:
		return "sporadic"
	case Background:
		return "background"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Params is the timeliness requirement a task declares when it registers:
// Slice units of CPU time every Period, deadline at the end of the period.
type Params struct {
	Slice  simtime.Duration
	Period simtime.Duration
}

// Valid reports whether the parameters describe a schedulable requirement.
func (p Params) Valid() bool {
	return p.Slice > 0 && p.Period > 0 && p.Slice <= p.Period
}

// Bandwidth reports the fraction of one CPU the task needs (s/p).
func (p Params) Bandwidth() float64 {
	if p.Period == 0 {
		return 0
	}
	return float64(p.Slice) / float64(p.Period)
}

// String implements fmt.Stringer.
func (p Params) String() string { return fmt.Sprintf("(s=%v, p=%v)", p.Slice, p.Period) }

// Stats accumulates per-task timeliness outcomes.
type Stats struct {
	Released    int // jobs released
	Completed   int // jobs that ran to completion
	Abandoned   int // jobs discarded before completion
	Missed      int // late completions plus abandoned deadline jobs
	TotalResp   simtime.Duration
	MaxResp     simtime.Duration
	TotalWork   simtime.Duration // CPU time actually consumed
	MaxLateness simtime.Duration
}

// Judged is the number of jobs with a final verdict (completed or
// abandoned); jobs still in flight count in neither direction.
func (s Stats) Judged() int { return s.Completed + s.Abandoned }

// MissRatio reports the fraction of judged jobs that missed their deadline.
func (s Stats) MissRatio() float64 {
	if s.Judged() == 0 {
		return 0
	}
	return float64(s.Missed) / float64(s.Judged())
}

// MeanResp reports the mean response time over completed jobs.
func (s Stats) MeanResp() simtime.Duration {
	if s.Completed == 0 {
		return 0
	}
	return s.TotalResp / simtime.Duration(s.Completed)
}

// Task is a single application thread with a timeliness requirement.
// A Task is not safe for concurrent use; the simulator is single-threaded.
type Task struct {
	ID   int
	Name string
	Kind Kind

	params Params

	// VCPU is the guest VCPU index the task is pinned to (pEDF), or -1
	// when unassigned. Maintained by the guest scheduler.
	VCPU int

	// Priority expresses relative importance (0 = normal). §6: scheduling
	// slack can be assigned in proportion to priorities so that more
	// important RTAs are less likely to miss.
	Priority int

	// OnJobDone, if set, is invoked whenever a job completes or is
	// abandoned; workloads use it to record latencies.
	OnJobDone func(j *Job)

	stats Stats

	nextRelease simtime.Time // earliest permitted next activation (sporadic)
	seq         int
}

// New creates a task. Name is for diagnostics only.
func New(id int, name string, kind Kind, p Params) *Task {
	if !p.Valid() && kind != Background {
		panic(fmt.Sprintf("task: invalid params %v for %s task %q", p, kind, name))
	}
	return &Task{ID: id, Name: name, Kind: kind, params: p, VCPU: -1}
}

// NewBackground creates a best-effort task with no deadline.
func NewBackground(id int, name string) *Task {
	return &Task{ID: id, Name: name, Kind: Background, VCPU: -1}
}

// Params reports the task's current timeliness requirement.
func (t *Task) Params() Params { return t.params }

// SetParams updates the requirement; it affects jobs released afterwards.
func (t *Task) SetParams(p Params) {
	if !p.Valid() && t.Kind != Background {
		panic(fmt.Sprintf("task: invalid params %v for task %q", p, t.Name))
	}
	t.params = p
}

// Stats reports the accumulated timeliness outcomes.
func (t *Task) Stats() Stats { return t.stats }

// Release creates a job activated at now. demand is the job's actual CPU
// need; pass t.Params().Slice for the declared worst case. For background
// tasks the deadline is Never.
func (t *Task) Release(now simtime.Time, demand simtime.Duration) *Job {
	if demand <= 0 {
		panic(fmt.Sprintf("task: job with non-positive demand %v", demand))
	}
	deadline := simtime.Never
	if t.Kind != Background {
		deadline = now.Add(t.params.Period)
	}
	t.stats.Released++
	j := &Job{
		Task:      t,
		Seq:       t.seq,
		Release:   now,
		Deadline:  deadline,
		Demand:    demand,
		Remaining: demand,
	}
	t.seq++
	if t.Kind == Sporadic {
		t.nextRelease = now.Add(t.params.Period)
	}
	return j
}

// EarliestNextRelease reports the earliest instant a sporadic task may be
// activated again (its minimum inter-arrival constraint). For periodic and
// background tasks it returns 0 (no constraint tracked here).
func (t *Task) EarliestNextRelease() simtime.Time { return t.nextRelease }

// Job is one activation of a task.
type Job struct {
	Task      *Task
	Seq       int
	Release   simtime.Time
	Deadline  simtime.Time
	Demand    simtime.Duration
	Remaining simtime.Duration

	// Finish is the completion instant, valid once Done.
	Finish simtime.Time
	Done   bool
	// Abandoned marks a job discarded before completion (e.g. at
	// simulation end or task unregister).
	Abandoned bool
}

// Missed reports whether the job has definitively missed its deadline as of
// instant now.
func (j *Job) Missed(now simtime.Time) bool {
	if j.Deadline == simtime.Never {
		return false
	}
	if j.Done {
		return j.Finish > j.Deadline
	}
	return now > j.Deadline
}

// Consume charges d of execution to the job and reports whether it
// completed. d must not exceed Remaining.
func (j *Job) Consume(d simtime.Duration) bool {
	if d < 0 || d > j.Remaining {
		panic(fmt.Sprintf("task: Consume(%v) with remaining %v", d, j.Remaining))
	}
	j.Remaining -= d
	j.Task.stats.TotalWork += d
	return j.Remaining == 0
}

// Complete marks the job finished at now and updates task stats.
func (j *Job) Complete(now simtime.Time) {
	if j.Done {
		panic("task: double Complete")
	}
	if j.Remaining != 0 {
		panic(fmt.Sprintf("task: Complete with %v work remaining", j.Remaining))
	}
	j.Done = true
	j.Finish = now
	st := &j.Task.stats
	st.Completed++
	resp := now.Sub(j.Release)
	st.TotalResp += resp
	if resp > st.MaxResp {
		st.MaxResp = resp
	}
	if j.Deadline != simtime.Never && now > j.Deadline {
		st.Missed++
		if late := now.Sub(j.Deadline); late > st.MaxLateness {
			st.MaxLateness = late
		}
	}
	if j.Task.OnJobDone != nil {
		j.Task.OnJobDone(j)
	}
}

// Abandon marks an unfinished job as discarded at now. It counts as a miss
// if its deadline had passed or could never be met.
func (j *Job) Abandon(now simtime.Time) {
	if j.Done {
		return
	}
	j.Done = true
	j.Abandoned = true
	j.Finish = now
	st := &j.Task.stats
	st.Abandoned++
	if j.Deadline != simtime.Never {
		st.Missed++
	}
	if j.Task.OnJobDone != nil {
		j.Task.OnJobDone(j)
	}
}

package scenario

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"rtvirt/internal/hv"
)

// FuzzScenarioJSON holds the scenario codec to two properties under
// arbitrary input: Parse never panics, and any scenario that parses AND
// validates survives a marshal/re-parse round trip unchanged (so repro
// files written by the quickcheck shrinker replay exactly). Run it with
//
//	go test ./internal/scenario -fuzz FuzzScenarioJSON
//
// Seed corpus: f.Add calls below plus testdata/fuzz/FuzzScenarioJSON.
func FuzzScenarioJSON(f *testing.F) {
	f.Add([]byte(`{"stack":"rtvirt","pcpus":2,"seconds":1,"vms":[
		{"name":"a","vcpus":1,"tasks":[{"name":"t","slice_us":500,"period_us":5000}]}]}`))
	f.Add([]byte(`{"stack":"rt-xen","vms":[{"name":"b",
		"servers":[{"budget_us":4000,"period_us":10000}],
		"tasks":[{"name":"s","kind":"sporadic","slice_us":100,"period_us":7000,"rate_hz":20}]}]}`))
	f.Add([]byte(`{"costs":{"hypercall_us":1.5},"vms":[{"name":"c","tasks":[{"name":"bg","kind":"background"}]}]}`))
	f.Add([]byte(`{"vms":[{"name":"d","tasks":[{"name":"w","kind":"sporadic","slice_us":200,"period_us":5000,
		"arrivals":{"diurnal":{"base_hz":50,"peak_hz":150,"day_ms":2000,"phase":0.25}},
		"adaptive":{"target_us":2500,"window_ms":50,"max_slice_us":600}}]}]}`))
	f.Add([]byte(`{"vms":[{"name":"e","tasks":[{"name":"m","kind":"sporadic","slice_us":100,"period_us":7000,
		"arrivals":{"mmpp":{"rates_hz":[40,160],"sojourn_ms":[100,100]}}}]}]}`))
	f.Add([]byte(`{"vms":[{"name":"f","tasks":[{"name":"fc","kind":"sporadic","slice_us":100,"period_us":10000,
		"arrivals":{"flash":{"base_hz":80,"surges":[{"at_ms":500,"peak_hz":240,"ramp_ms":100,"decay_ms":200}]}}}]}]}`))
	f.Add([]byte(`{"stack":"credit","vms":[{"name":"g","weight":512,
		"tasks":[{"name":"ev","kind":"evader","evader":{"tick_us":10000,"guard_us":300}}]}]}`))
	f.Add([]byte(`{"vms":[{"name":"h","tasks":[{"name":"ev","kind":"evader"}]}]}`))
	f.Add([]byte(`{"vms":[]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Parse(bytes.NewReader(data))
		if err != nil {
			return
		}
		if sc.Validate() != nil {
			return
		}
		out, err := json.Marshal(sc)
		if err != nil {
			t.Fatalf("valid scenario does not marshal: %v", err)
		}
		back, err := Parse(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("re-parse of marshaled scenario failed: %v\n%s", err, out)
		}
		if !reflect.DeepEqual(sc, back) {
			t.Fatalf("round trip changed the scenario:\nin:  %+v\nout: %+v", sc, back)
		}
	})
}

// FuzzCostsBlock stresses the costs override block in isolation:
// validation must reject every block that would corrupt the cost model
// (negative, NaN, Inf, malformed distribution objects), and any block that
// passes validation must apply to terms with non-negative means without
// panicking.
func FuzzCostsBlock(f *testing.F) {
	f.Add(`{"context_switch_us":2,"migration_us":3,"hypercall_us":10}`)
	f.Add(`{"hypercall_us":0}`)
	f.Add(`{"migration_us":1e-3}`)
	f.Add(`{"context_switch_us":-1}`)
	f.Add(`{}`)
	f.Add(`{"migration":3,"tick":{"const":20}}`)
	f.Add(`{"hypercall":{"lognormal":{"mean_us":10,"sigma":0.45}}}`)
	f.Add(`{"ctx_switch_cold":{"pareto":{"lo_us":2,"hi_us":50,"alpha":2.2}}}`)
	f.Add(`{"schedule_base":{"uniform":{"lo_us":0.5,"hi_us":1.5}},"guest_switch":{"normal":{"mean_us":1,"stddev_us":0.3,"min_us":0.1}}}`)
	f.Add(`{"migration_per_mib":0.12}`)
	f.Add(`{"hypercall":{"const":1,"normal":{"mean_us":2}}}`)
	f.Add(`{"tick":{}}`)
	f.Add(`{"context_switch":1,"ctx_switch_warm":2}`)
	f.Add(`{"hypercall_us":10,"hypercall_inc_bw":{"const":5}}`)
	f.Add(`{"migration":{"pareto":{"lo_us":0,"hi_us":5,"alpha":1.5}}}`)
	f.Fuzz(func(t *testing.T, block string) {
		raw := []byte(`{"vms":[{"name":"a"}],"costs":` + block + `}`)
		sc, err := Parse(bytes.NewReader(raw))
		if err != nil {
			return
		}
		if sc.Validate() != nil {
			return
		}
		cm := hv.DefaultCosts()
		if sc.Costs != nil {
			sc.Costs.apply(&cm)
		}
		for _, c := range []hv.Cost{
			cm.CtxSwitchWarm, cm.CtxSwitchCold, cm.Migration, cm.MigrationPerMiB,
			cm.HypercallIncBW, cm.HypercallDecBW, cm.HypercallIncDecBW,
			cm.ScheduleBase, cm.SchedulePerEntity, cm.GuestSwitch, cm.Tick,
		} {
			if c.Mean() < 0 {
				t.Fatalf("validated costs block %q applied to a negative-mean term %v: %+v", block, c, cm)
			}
		}
	})
}

package check

import (
	"rtvirt/internal/simtime"
	"rtvirt/internal/trace"
)

// BudgetOracle asserts budget non-negativity. All three budgeted
// schedulers (RT-Xen deferrable/polling servers, DP-WRAP slice quotas,
// Credit caps) report the overdraw — time charged beyond the remaining
// budget — in the Arg of their Deplete events. The kernel's allocations
// never exceed the granted run, so a correct scheduler always reports
// zero; any positive overdraw is an accounting bug.
type BudgetOracle struct {
	recorder
}

// NewBudgetOracle creates the budget non-negativity oracle.
func NewBudgetOracle() *BudgetOracle {
	return &BudgetOracle{recorder{name: "budget"}}
}

// Consume implements trace.Sink.
func (o *BudgetOracle) Consume(ev trace.Event) {
	if ev.Kind == trace.Deplete && ev.Arg > 0 {
		o.flag(ev.At, "%s/vcpu%d overdrew its budget by %v on pcpu%d",
			ev.VM, ev.VCPU, simtime.Duration(ev.Arg), ev.PCPU)
	}
}

// Finish implements Oracle.
func (o *BudgetOracle) Finish(simtime.Time) {}

package hv

import (
	"testing"

	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
	"rtvirt/internal/trace"
)

// countSink counts dispatch and completion events off the bus.
type countSink struct {
	dispatches int
	done       int
}

func (c *countSink) Consume(ev trace.Event) {
	switch ev.Kind {
	case trace.Dispatch:
		c.dispatches++
	case trace.JobDone:
		c.done++
	}
}

func TestSchedulerAccessor(t *testing.T) {
	_, h, sched := testHost(t, 1, CostModel{})
	if h.Scheduler() != sched {
		t.Fatal("Scheduler() did not return the attached scheduler")
	}
}

func TestTracerReceivesEvents(t *testing.T) {
	s, h, _ := testHost(t, 1, CostModel{})
	tr := &countSink{}
	h.TraceTo(tr)
	g := newFifoGuest(h)
	vm := h.NewVM("vm0", g)
	v, _ := vm.AddVCPU(true, Reservation{}, 0)
	h.Start()
	tk := task.New(0, "t", task.Periodic, task.Params{Slice: simtime.Millis(1), Period: simtime.Millis(10)})
	s.After(simtime.Millis(1), func(now simtime.Time) {
		g.submit(v, tk.Release(now, simtime.Millis(1)), now)
	})
	s.RunFor(simtime.Millis(20))
	if tr.dispatches == 0 || tr.done != 1 {
		t.Fatalf("tracer saw dispatches=%d done=%d", tr.dispatches, tr.done)
	}
	// Detaching all sinks must stop the stream.
	h.Bus().Reset()
	before := tr.done
	s.After(0, func(now simtime.Time) {
		g.submit(v, tk.Release(now, simtime.Millis(1)), now)
	})
	s.RunFor(simtime.Millis(20))
	if tr.done != before {
		t.Fatalf("sink still active after Bus().Reset()")
	}
}

func TestVMTotalRun(t *testing.T) {
	s, h, _ := testHost(t, 2, CostModel{})
	g := newFifoGuest(h)
	vm := h.NewVM("vm0", g)
	v0, _ := vm.AddVCPU(true, Reservation{}, 0)
	v1, _ := vm.AddVCPU(true, Reservation{}, 0)
	h.Start()
	t0 := task.New(0, "a", task.Periodic, task.Params{Slice: simtime.Millis(3), Period: simtime.Millis(100)})
	t1 := task.New(1, "b", task.Periodic, task.Params{Slice: simtime.Millis(5), Period: simtime.Millis(100)})
	s.After(0, func(now simtime.Time) {
		g.submit(v0, t0.Release(now, simtime.Millis(3)), now)
		g.submit(v1, t1.Release(now, simtime.Millis(5)), now)
	})
	s.RunFor(simtime.Millis(50))
	h.Sync()
	if got := vm.TotalRun(); got != simtime.Millis(8) {
		t.Fatalf("TotalRun = %v, want 8ms", got)
	}
}

func TestAllocEndDuringDispatch(t *testing.T) {
	s, h, _ := testHost(t, 1, CostModel{}) // fifo quantum is 10ms
	g := newFifoGuest(h)
	vm := h.NewVM("vm0", g)
	v, _ := vm.AddVCPU(true, Reservation{}, 0)
	h.Start()
	tk := task.New(0, "t", task.Periodic, task.Params{Slice: simtime.Millis(8), Period: simtime.Millis(100)})
	s.After(0, func(now simtime.Time) {
		g.submit(v, tk.Release(now, simtime.Millis(8)), now)
	})
	var allocEnd simtime.Time
	s.At(simtime.Time(simtime.Millis(4)), func(now simtime.Time) {
		allocEnd = h.PCPUs()[0].AllocEnd()
	})
	s.RunFor(simtime.Millis(50))
	// Dispatched at t=0 with the fifo scheduler's 10ms quantum.
	if allocEnd != simtime.Time(simtime.Millis(10)) {
		t.Fatalf("AllocEnd = %v, want 10ms", allocEnd)
	}
}

func TestRemoveVMWhileRunning(t *testing.T) {
	s, h, _ := testHost(t, 1, CostModel{})
	g := newFifoGuest(h)
	vm1 := h.NewVM("doomed", g)
	v1, _ := vm1.AddVCPU(true, Reservation{}, 0)
	vm2 := h.NewVM("survivor", g)
	v2, _ := vm2.AddVCPU(true, Reservation{}, 0)
	h.Start()

	t1 := task.New(0, "doomed-t", task.Periodic, task.Params{Slice: simtime.Millis(20), Period: simtime.Millis(100)})
	t2 := task.New(1, "survivor-t", task.Periodic, task.Params{Slice: simtime.Millis(2), Period: simtime.Millis(100)})
	s.After(0, func(now simtime.Time) {
		g.submit(v1, t1.Release(now, simtime.Millis(20)), now)
		g.submit(v2, t2.Release(now, simtime.Millis(2)), now)
	})
	// vm1 occupies the single PCPU; tear it down mid-job.
	s.At(simtime.Time(simtime.Millis(5)), func(now simtime.Time) {
		g.queues[v1] = nil // guest forgets the doomed queue first
		h.RemoveVM(vm1)
	})
	s.RunFor(simtime.Millis(100))

	if len(h.VMs()) != 1 || h.VMs()[0] != vm2 {
		t.Fatalf("VMs after removal: %v", h.VMs())
	}
	if len(h.VCPUs()) != 1 || h.VCPUs()[0] != v2 {
		t.Fatalf("VCPUs after removal: %v", h.VCPUs())
	}
	st1 := t1.Stats()
	if st1.Abandoned != 1 || st1.Completed != 0 {
		t.Fatalf("doomed task stats: %+v", st1)
	}
	// The survivor must have been re-dispatched onto the freed PCPU.
	if st2 := t2.Stats(); st2.Completed != 1 {
		t.Fatalf("survivor stats: %+v", st2)
	}
	// The doomed VCPU ran 5ms before teardown; accounting must retain it.
	h.Sync()
	if v1.TotalRun != simtime.Millis(5) {
		t.Fatalf("doomed TotalRun = %v, want 5ms", v1.TotalRun)
	}
}

func TestRemoveVMIdle(t *testing.T) {
	s, h, _ := testHost(t, 1, CostModel{})
	g := newFifoGuest(h)
	vm := h.NewVM("idle", g)
	_, _ = vm.AddVCPU(true, Reservation{}, 0)
	h.Start()
	s.RunFor(simtime.Millis(1))
	h.RemoveVM(vm)
	if len(h.VMs()) != 0 || len(h.VCPUs()) != 0 {
		t.Fatalf("host not empty: vms=%d vcpus=%d", len(h.VMs()), len(h.VCPUs()))
	}
	// The host keeps running fine afterwards.
	s.RunFor(simtime.Millis(10))
}

// prioGuest picks the lowest-priority-number job first, so a new urgent
// job plus VCPURecheck forces an in-place guest preemption.
type prioGuest struct {
	h      *Host
	queues map[*VCPU][]*task.Job
	prio   map[*task.Job]int
	done   []*task.Job
}

func newPrioGuest(h *Host) *prioGuest {
	return &prioGuest{h: h, queues: map[*VCPU][]*task.Job{}, prio: map[*task.Job]int{}}
}

func (g *prioGuest) PickJob(v *VCPU, now simtime.Time) *task.Job {
	q := g.queues[v]
	if len(q) == 0 {
		return nil
	}
	best := q[0]
	for _, j := range q[1:] {
		if g.prio[j] < g.prio[best] {
			best = j
		}
	}
	return best
}

func (g *prioGuest) JobCompleted(v *VCPU, j *task.Job, now simtime.Time) {
	q := g.queues[v]
	for i, x := range q {
		if x == j {
			g.queues[v] = append(q[:i], q[i+1:]...)
			break
		}
	}
	g.done = append(g.done, j)
}

func (g *prioGuest) submit(v *VCPU, j *task.Job, prio int, now simtime.Time) {
	g.queues[v] = append(g.queues[v], j)
	g.prio[j] = prio
	g.h.VCPUWake(v, now)
}

func TestVCPURecheckPreemptsGuestJob(t *testing.T) {
	costs := CostModel{GuestSwitch: ConstCost(simtime.Micros(3))}
	s, h, _ := testHost(t, 1, costs)
	g := newPrioGuest(h)
	vm := h.NewVM("vm0", g)
	v, _ := vm.AddVCPU(true, Reservation{}, 0)
	h.Start()

	slow := task.New(0, "slow", task.Periodic, task.Params{Slice: simtime.Millis(10), Period: simtime.Millis(100)})
	urgent := task.New(1, "urgent", task.Periodic, task.Params{Slice: simtime.Millis(1), Period: simtime.Millis(100)})
	s.After(0, func(now simtime.Time) {
		g.submit(v, slow.Release(now, simtime.Millis(10)), 5, now)
	})
	s.At(simtime.Time(simtime.Millis(2)), func(now simtime.Time) {
		g.submit(v, urgent.Release(now, simtime.Millis(1)), 1, now)
		h.VCPURecheck(v, now)
	})
	s.RunFor(simtime.Millis(50))

	if len(g.done) != 2 {
		t.Fatalf("completed %d jobs, want 2", len(g.done))
	}
	// The urgent job must finish first despite arriving second.
	if g.done[0].Task != urgent {
		t.Fatalf("first completion = %v", g.done[0].Task)
	}
	if h.Overhead.GuestSwitches == 0 {
		t.Fatal("guest preemption not charged as a guest switch")
	}
	// Urgent arrived at 2ms, 1ms of work plus the 3µs switch: done ≈3ms;
	// slow resumes and finishes around 11ms + switches.
	if f := g.done[0].Finish; f < simtime.Time(simtime.Millis(3)) || f > simtime.Time(simtime.Millis(3)+simtime.Micros(10)) {
		t.Fatalf("urgent finish = %v", f)
	}
}

func TestVCPURecheckIdlesEmptiedQueue(t *testing.T) {
	s, h, _ := testHost(t, 1, CostModel{})
	g := newPrioGuest(h)
	vm := h.NewVM("vm0", g)
	v, _ := vm.AddVCPU(true, Reservation{}, 0)
	vm2 := h.NewVM("vm1", g)
	w, _ := vm2.AddVCPU(true, Reservation{}, 0)
	h.Start()

	tk := task.New(0, "t", task.Periodic, task.Params{Slice: simtime.Millis(10), Period: simtime.Millis(100)})
	other := task.New(1, "o", task.Periodic, task.Params{Slice: simtime.Millis(1), Period: simtime.Millis(100)})
	var job *task.Job
	s.After(0, func(now simtime.Time) {
		job = tk.Release(now, simtime.Millis(10))
		g.submit(v, job, 1, now)
		g.submit(w, other.Release(now, simtime.Millis(1)), 1, now)
	})
	// The guest drops its only job (e.g. the task was killed) and pokes
	// the kernel: the VCPU must idle and the other VM take the PCPU.
	s.At(simtime.Time(simtime.Millis(2)), func(now simtime.Time) {
		g.queues[v] = nil
		job.Abandon(now)
		h.VCPURecheck(v, now)
	})
	s.RunFor(simtime.Millis(50))

	if st := other.Stats(); st.Completed != 1 {
		t.Fatalf("other VM never ran: %+v", st)
	}
	if st := tk.Stats(); st.Abandoned != 1 || st.Completed != 0 {
		t.Fatalf("dropped job stats: %+v", st)
	}
}

func TestVCPURecheckUndispatchedNoop(t *testing.T) {
	s, h, _ := testHost(t, 1, CostModel{})
	g := newPrioGuest(h)
	vm := h.NewVM("vm0", g)
	v, _ := vm.AddVCPU(true, Reservation{}, 0)
	h.Start()
	s.After(simtime.Millis(1), func(now simtime.Time) {
		h.VCPURecheck(v, now) // not dispatched anywhere: must not panic
	})
	s.RunFor(simtime.Millis(10))
}

// Package experiments contains one driver per table and figure of the
// RTVirt paper's evaluation (§4). Each driver builds the scenario on the
// simulated host, runs it, and returns a structured result that the bench
// harness and cmd/rtvirt-bench render.
package experiments

import (
	"fmt"

	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
	"rtvirt/internal/workload"
)

func ms(n int64) simtime.Duration { return simtime.Millis(n) }

func pp(s, p int64) task.Params {
	return task.Params{Slice: ms(s), Period: ms(p)}
}

// RTAGroup is one row of Table 1 (or Table 5): a named set of RTAs.
type RTAGroup struct {
	Name     string
	Category string
	RTAs     []task.Params
}

// Bandwidth sums the group's task bandwidths in CPUs.
func (g RTAGroup) Bandwidth() float64 {
	var sum float64
	for _, p := range g.RTAs {
		sum += p.Bandwidth()
	}
	return sum
}

// Table1Groups reproduces Table 1: the periodic RTA groups of §4.2.
func Table1Groups() []RTAGroup {
	return []RTAGroup{
		{Name: "H-Equiv", Category: "Harmonic", RTAs: []task.Params{pp(13, 20), pp(25, 40), pp(49, 80), pp(19, 100)}},
		{Name: "H-Dec", Category: "Harmonic", RTAs: []task.Params{pp(7, 10), pp(13, 20), pp(18, 40), pp(13, 100)}},
		{Name: "H-Inc", Category: "Harmonic", RTAs: []task.Params{pp(5, 10), pp(13, 20), pp(31, 40), pp(10, 100)}},
		{Name: "NH-Equiv", Category: "Non-harmonic", RTAs: []task.Params{pp(13, 20), pp(26, 40), pp(39, 60), pp(13, 100)}},
		{Name: "NH-Dec", Category: "Non-harmonic", RTAs: []task.Params{pp(23, 30), pp(13, 20), pp(5, 10), pp(10, 100)}},
		{Name: "NH-Inc", Category: "Non-harmonic", RTAs: []task.Params{pp(11, 21), pp(26, 43), pp(40, 60), pp(13, 100)}},
	}
}

// Table5Groups reproduces Table 5: the RTA groups of the scalability
// experiments (§4.5).
func Table5Groups() []RTAGroup {
	mk := func(i int, s, p int64) RTAGroup {
		return RTAGroup{Name: groupName(i), RTAs: []task.Params{pp(s, p)}}
	}
	return []RTAGroup{
		mk(1, 6, 75), mk(2, 7, 92), mk(3, 46, 188), mk(4, 12, 102), mk(5, 19, 139),
		mk(6, 13, 124), mk(7, 36, 260), mk(8, 21, 159), mk(9, 9, 103), mk(10, 62, 208),
	}
}

func groupName(i int) string { return fmt.Sprintf("Group %d", i) }

// Table3Profiles re-exports the video streaming profiles (Table 3).
func Table3Profiles() []workload.VideoProfile { return workload.VideoProfiles }

package experiments

import (
	"fmt"
	"strings"

	"rtvirt/internal/clone"
	"rtvirt/internal/core"
	"rtvirt/internal/metrics"
	"rtvirt/internal/runner"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
	"rtvirt/internal/trace"
	"rtvirt/internal/workload"
)

// This file exploits core.System.Fork for the experiment layer: warm-start
// sweeps that simulate a shared prefix once and fork it per arm
// (runner.MapForked), and a divergence bisector that binary-searches
// simulated time for the first dispatch where two systems part ways.

// LoadStepConfig tunes the Figure-5 warm-start load sweep.
type LoadStepConfig struct {
	Seed uint64
	// Warmup is the shared prefix: the memcached VM runs alone until then.
	Warmup simtime.Duration
	// Duration is the total simulated time (warmup + contended tail).
	Duration simtime.Duration
	// Steps are the CPU-hog counts injected at Warmup, one arm each.
	Steps []int
	// Cold rebuilds every arm from scratch and replays the warmup prefix
	// instead of forking — the control MapForked is measured against.
	// Results are bit-identical either way; only the wall clock differs.
	Cold bool
}

// DefaultLoadStepConfig steps the Figure-5a contention from idle to the
// paper's 19 hogs, with a warmup long enough that forking pays.
func DefaultLoadStepConfig() LoadStepConfig {
	return LoadStepConfig{
		Seed:     1,
		Warmup:   40 * simtime.Second,
		Duration: 60 * simtime.Second,
		Steps:    []int{0, 6, 12, 19},
	}
}

// LoadStepRow is one (arm, hog count) point of the load sweep.
type LoadStepRow struct {
	Arm      Arm
	Hogs     int
	P999     simtime.Duration
	Mean     simtime.Duration
	Requests int
}

// Figure5LoadSteps sweeps memcached tail latency against an increasing
// number of CPU-bound VMs injected mid-run, under each of the four §4.4
// arms. Per arm the uncontended prefix is simulated once and every load
// step forks the warmed world (cfg.Cold replays it instead); the paper's
// Figure-5a point is the 19-hog step.
func Figure5LoadSteps(cfg LoadStepConfig) []LoadStepRow {
	var out []LoadStepRow
	for _, arm := range Arms() {
		out = append(out, loadStepArm(arm, cfg)...)
	}
	return out
}

func loadStepArm(arm Arm, cfg LoadStepConfig) []LoadStepRow {
	if cfg.Cold {
		return runner.Map(0, cfg.Steps, func(k int) LoadStepRow {
			sys := newMemcachedSystem(arm, 2, cfg.Seed)
			mc := addMemcachedVM(sys, arm, 0, 727)
			sys.Start()
			mc.Start(0)
			sys.Run(cfg.Warmup)
			return loadStepTail(sys, mc, arm, k, cfg)
		})
	}
	base := newMemcachedSystem(arm, 2, cfg.Seed)
	mc := addMemcachedVM(base, arm, 0, 727)
	base.Start()
	mc.Start(0)
	base.Run(cfg.Warmup)
	type world struct {
		sys *core.System
		mc  *workload.Memcached
	}
	return runner.MapForked(0, cfg.Steps,
		func(int, int) world {
			nsys, ctx, err := base.Fork()
			must(err)
			return world{sys: nsys, mc: clone.Get(ctx, mc)}
		},
		func(_ int, k int, w world) LoadStepRow {
			return loadStepTail(w.sys, w.mc, arm, k, cfg)
		})
}

// loadStepTail injects k CPU-bound VMs at the current time and runs out the
// remainder of the experiment. The same call runs on a forked world and on
// a cold rebuild that replayed the prefix; both take the identical path
// from here, which is what makes the two sweeps bit-comparable.
func loadStepTail(sys *core.System, mc *workload.Memcached, arm Arm, hogs int, cfg LoadStepConfig) LoadStepRow {
	now := sys.Now()
	for i := 0; i < hogs; i++ {
		g := mustGuest(sys.NewWeightedGuest(fmt.Sprintf("bg%d", i), 1, 256))
		hg, err := workload.NewCPUHog(g, 2000+i, fmt.Sprintf("hog%d", i))
		must(err)
		hg.Start(now)
	}
	sys.Run(cfg.Duration - simtime.Duration(now))
	return LoadStepRow{
		Arm:      arm,
		Hogs:     hogs,
		P999:     mc.Latency.Percentile(99.9),
		Mean:     mc.Latency.Mean(),
		Requests: mc.Latency.Count(),
	}
}

// RenderLoadSteps formats the load sweep.
func RenderLoadSteps(rows []LoadStepRow, slo simtime.Duration) string {
	t := metrics.NewTable("Arm", "hogs", "p99.9", "mean", "requests")
	for _, r := range rows {
		t.AddRow(string(r.Arm), fmt.Sprintf("%d", r.Hogs), r.P999.String(),
			r.Mean.String(), r.Requests)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 load steps — memcached tail vs hogs injected at warmup (SLO %v)\n", slo)
	b.WriteString(t.String())
	return b.String()
}

// AblationNewcomerForked replays §6's admission decision as a forked
// counterfactual: one world with an over-claiming idle VM is warmed up
// once, then forked per arm — one fork is left alone, the other admits a
// newcomer under the idle tax — so the two outcomes share their history
// bit-for-bit instead of replaying it per arm as AblationIdleTax does.
// Extra = newcomer admitted (1) or absent/rejected (0).
func AblationNewcomerForked(seed uint64, duration simtime.Duration) []AblationRow {
	cfg := core.DefaultConfig(core.RTVirt)
	cfg.PCPUs = 1
	cfg.Seed = seed
	cfg.Slack = 0
	cfg.DPWrap.IdleTax = true
	cfg.DPWrap.TaxWindow = simtime.Millis(50)
	base := core.NewSystem(cfg)
	gIdle := mustGuest(base.NewGuest("overclaimer", 1))
	idler := task.New(0, "idler", task.Periodic, pp(7, 10)) // claims 70%, uses ~0
	must(gIdle.Register(idler))
	base.Start()
	base.Run(duration / 2)

	return runner.MapForked(0, []bool{false, true},
		func(int, bool) *core.System {
			nsys, _, err := base.Fork()
			must(err)
			return nsys
		},
		func(_ int, newcomer bool, sys *core.System) AblationRow {
			row := AblationRow{Label: "warm world, no newcomer"}
			if newcomer {
				row.Label = "forked world, newcomer admitted"
				gNew := mustGuest(sys.NewGuest("newcomer", 1))
				busy := task.New(1, "busy", task.Periodic, pp(6, 10))
				if err := gNew.Register(busy); err == nil {
					row.Extra = 1
					gNew.StartPeriodic(busy, sys.Now())
					sys.Run(duration / 2)
					row.MissPct = 100 * busy.Stats().MissRatio()
				} else {
					sys.Run(duration / 2)
				}
			} else {
				sys.Run(duration / 2)
			}
			row.OverheadPct = sys.Overhead().Percent
			return row
		})
}

// BisectResult reports where two systems' dispatch streams first part ways.
type BisectResult struct {
	// Diverged is false when the streams agree over the whole horizon.
	Diverged bool
	// At is the simulated time of the first divergent dispatch.
	At simtime.Time
	// A and B are the first differing dispatch events (zero Events when one
	// stream simply ran out).
	A, B trace.Event
	// Probes counts the forked probe runs the binary search needed.
	Probes int
}

// Render formats the verdict.
func (r BisectResult) Render() string {
	if !r.Diverged {
		return fmt.Sprintf("no divergence within the horizon (%d probes)", r.Probes)
	}
	return fmt.Sprintf("first divergent dispatch at %v (%d probes)\n  A: pcpu%d <- %s/vcpu%d\n  B: pcpu%d <- %s/vcpu%d",
		r.At, r.Probes, r.A.PCPU, vmOrIdle(r.A), r.A.VCPU, r.B.PCPU, vmOrIdle(r.B), r.B.VCPU)
}

func vmOrIdle(ev trace.Event) string {
	if ev.VM == "" {
		return "idle"
	}
	return ev.VM
}

// dispatchDigest hashes the dispatch stream seen on a trace bus (FNV-1a
// over the fields two schedulers can agree on: when, which PCPU, which
// virtual CPU — not the granted run length, which is scheduler-specific).
type dispatchDigest struct {
	hash uint64
	n    int
}

func newDispatchDigest() *dispatchDigest { return &dispatchDigest{hash: 14695981039346656037} }

func (d *dispatchDigest) mix(b byte) { d.hash = (d.hash ^ uint64(b)) * 1099511628211 }

func (d *dispatchDigest) mix64(v uint64) {
	for i := 0; i < 8; i++ {
		d.mix(byte(v >> (8 * i)))
	}
}

// Consume implements trace.Sink.
func (d *dispatchDigest) Consume(ev trace.Event) {
	if ev.Kind != trace.Dispatch {
		return
	}
	d.n++
	d.mix64(uint64(ev.At))
	d.mix64(uint64(int64(ev.PCPU)))
	d.mix64(uint64(int64(ev.VCPU)))
	for i := 0; i < len(ev.VM); i++ {
		d.mix(ev.VM[i])
	}
	d.mix(0xff)
}

func (d *dispatchDigest) equal(o *dispatchDigest) bool {
	return d.hash == o.hash && d.n == o.n
}

// dispatchLog records the dispatch stream verbatim (final narrow window of
// the bisection).
type dispatchLog struct {
	events []trace.Event
}

// Consume implements trace.Sink.
func (l *dispatchLog) Consume(ev trace.Event) {
	if ev.Kind == trace.Dispatch {
		l.events = append(l.events, ev)
	}
}

// Bisect finds the first divergent dispatch between two systems — two
// scheduler stacks over the same workload, or one stack under two configs —
// by binary-searching simulated time. Both builders must be deterministic;
// the two worlds are advanced in lockstep from a pair of frontier forks, so
// no prefix is ever re-simulated: probing [lo, mid] forks the frontiers,
// runs the forks with digest sinks on their trace buses, and either adopts
// them as the new frontiers (streams still agree) or discards them. The
// final window, at most `resolution` wide, is replayed once with recording
// sinks to name the exact pair of events.
func Bisect(buildA, buildB func() *core.System, horizon, resolution simtime.Duration) (BisectResult, error) {
	if resolution <= 0 {
		resolution = simtime.Millisecond
	}
	fa, fb := buildA(), buildB()
	res := BisectResult{}

	// probe forks both frontiers and runs them `span` ahead, reporting the
	// dispatch digests and the forks themselves.
	probe := func(span simtime.Duration) (*core.System, *core.System, *dispatchDigest, *dispatchDigest, error) {
		na, _, err := fa.Fork()
		if err != nil {
			return nil, nil, nil, nil, err
		}
		nb, _, err := fb.Fork()
		if err != nil {
			return nil, nil, nil, nil, err
		}
		da, db := newDispatchDigest(), newDispatchDigest()
		na.Host.TraceTo(da)
		nb.Host.TraceTo(db)
		na.Run(span)
		nb.Run(span)
		res.Probes++
		return na, nb, da, db, nil
	}

	lo, hi := simtime.Duration(0), horizon
	// First probe the whole horizon: no divergence means no bisection.
	if _, _, da, db, err := probe(horizon); err != nil {
		return res, err
	} else if da.equal(db) {
		return res, nil
	}
	res.Diverged = true

	for hi-lo > resolution {
		mid := lo + (hi-lo)/2
		na, nb, da, db, err := probe(mid - lo)
		if err != nil {
			return res, err
		}
		if da.equal(db) {
			// Streams still agree at mid: the probes become the frontiers.
			fa, fb, lo = na, nb, mid
		} else {
			hi = mid
		}
	}

	// Replay the final window with full recording to name the divergence.
	na, _, err := fa.Fork()
	if err != nil {
		return res, err
	}
	nb, _, err := fb.Fork()
	if err != nil {
		return res, err
	}
	la, lb := &dispatchLog{}, &dispatchLog{}
	na.Host.TraceTo(la)
	nb.Host.TraceTo(lb)
	na.Run(hi - lo)
	nb.Run(hi - lo)
	res.Probes++
	for i := 0; ; i++ {
		switch {
		case i >= len(la.events) && i >= len(lb.events):
			// Divergence past the recorded window can only mean digests
			// collided earlier; report the window end.
			res.At = simtime.Time(hi)
			return res, nil
		case i >= len(la.events):
			res.B = lb.events[i]
			res.At = res.B.At
			return res, nil
		case i >= len(lb.events):
			res.A = la.events[i]
			res.At = res.A.At
			return res, nil
		case la.events[i] != lb.events[i]:
			res.A, res.B = la.events[i], lb.events[i]
			res.At = res.A.At
			if res.B.At < res.At {
				res.At = res.B.At
			}
			return res, nil
		}
	}
}

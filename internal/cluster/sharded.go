package cluster

import (
	"errors"
	"fmt"
	"strings"

	"rtvirt/internal/core"
	"rtvirt/internal/dist"
	"rtvirt/internal/guest"
	"rtvirt/internal/metrics"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
	"rtvirt/internal/workload"
)

// This file is the sharded (conservative-PDES) counterpart of Cluster: a
// Sharded cluster gives every host its own sim.Simulator — its own clock,
// event queue, and RNG stream — and advances all of them concurrently in
// sim.ShardSet lookahead windows. All cross-host interaction (client→
// server request traffic, live-migration handoff, post-migration request
// forwarding) travels through the shard mailbox with at least the
// lookahead of delay, which is what makes the windows safe.
//
// Ownership discipline (what makes the parallel run race-free AND
// grouping-invariant): during a window a host's handlers may touch only
// state owned by that host. A deployment is owned by the host it resides
// on; ownership transfers through the migration protocol, whose two sides
// run at least one lookahead apart and are therefore separated by a
// barrier. Agents decide residency from their own local maps — never by
// peeking at another host's state mid-window. The only cross-host reads
// are immutable topology (shard pointers, agent handler IDs) fixed before
// Start.

// ShardedConfig describes a sharded cluster run.
type ShardedConfig struct {
	// Hosts is the number of hosts (= shards); PCPUs their size.
	Hosts int
	PCPUs int
	// Seed fixes the whole run. Host i's simulator is seeded with
	// splitmix64(Seed, i), so hosts share no stream structure.
	Seed uint64
	// System is the per-host configuration template, with the same
	// contract as Config.System: topology knobs (PCPUs, Seed, SharedSim)
	// stay blank — the cluster owns them.
	System core.Config
	// Lookahead is the conservative-window width: the minimum cross-host
	// latency. Zero selects workload.DefaultNetworkDelay() (19µs, the
	// paper's measured p99.9 network delay). Every remote client's delay
	// and the migration downtime must be ≥ Lookahead.
	Lookahead simtime.Duration
	// MigrationDowntime / MigrationPerBW form the stop-and-copy blackout
	// model, as in Config.
	MigrationDowntime simtime.Duration
	MigrationPerBW    simtime.Duration
	// LinkDelay optionally models per-pair network latency: forwarded
	// requests chase a migrated VM at LinkDelay(src, dst) instead of the
	// global Lookahead floor, and the declared migration-pair edges widen
	// to match, so per-edge windows stretch to the topology's real link
	// latencies. Nil charges every forwarded hop exactly Lookahead. The
	// function must be pure (same inputs, same answer — Fork shares it)
	// and must never return less than Lookahead; the first undershooting
	// hop panics.
	LinkDelay func(src, dst int) simtime.Duration
	// GlobalWindows disables per-edge topology declaration: the shard set
	// windows on the single global Lookahead for every pair, as before
	// per-edge synchronization existed. Results are identical either way
	// (modulo the window count); the knob exists for A/B comparison and
	// as an escape hatch.
	GlobalWindows bool
}

// DefaultShardedConfig returns a 4-host × 4-CPU RTVirt sharded cluster
// with the sequential cluster's 50ms+20ms/CPU migration model and the
// 19µs network-delay lookahead.
func DefaultShardedConfig() ShardedConfig {
	sys := core.DefaultConfig(core.RTVirt)
	sys.PCPUs = 0
	sys.Seed = 0
	return ShardedConfig{
		Hosts:             4,
		PCPUs:             4,
		Seed:              1,
		System:            sys,
		Lookahead:         workload.DefaultNetworkDelay(),
		MigrationDowntime: simtime.Millis(50),
		MigrationPerBW:    simtime.Millis(20),
	}
}

// Validate reports whether the configuration is coherent.
func (cfg ShardedConfig) Validate() error {
	if cfg.Hosts <= 0 {
		return errors.New("cluster: sharded config needs at least one host")
	}
	if cfg.Lookahead <= 0 {
		return errors.New("cluster: sharded config needs a positive lookahead")
	}
	if cfg.MigrationDowntime < cfg.Lookahead {
		return fmt.Errorf("cluster: migration downtime %v below lookahead %v — the handoff would outrun the conservative window",
			cfg.MigrationDowntime, cfg.Lookahead)
	}
	if cfg.System.SharedSim != nil {
		return errors.New("cluster: sharded Config.System.SharedSim must be nil; every host gets its own simulator")
	}
	if cfg.System.PCPUs != 0 && cfg.System.PCPUs != cfg.PCPUs {
		return fmt.Errorf("cluster: sharded Config.System.PCPUs (%d) conflicts with Config.PCPUs (%d); leave the template's zero",
			cfg.System.PCPUs, cfg.PCPUs)
	}
	if cfg.System.Seed != 0 {
		return errors.New("cluster: sharded Config.System.Seed must be zero; per-host seeds derive from Config.Seed")
	}
	return nil
}

// splitSeed derives host k's simulator seed from the run seed (splitmix64
// finalizer — well-mixed, never zero).
func splitSeed(seed, k uint64) uint64 {
	z := seed + (k+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// Typed kernel-event kinds dispatched to each host's agent.
const (
	// evAgentReq delivers one remote request: Owner is the deployment ID,
	// Arg0 the sampled CPU demand in ns (0 = declared slice), Arg1 the
	// task index within the deployment.
	evAgentReq uint16 = iota
	// evAgentMigOut starts a live migration on the source host: Owner the
	// deployment, Arg0 the target host index.
	evAgentMigOut
	// evAgentMigIn completes it on the target: Owner the deployment, Arg0
	// the downtime charged.
	evAgentMigIn
)

// RemoteClient event kinds.
const (
	// evRemoteFire sends the next request toward the deployment's home
	// host and schedules the following fire.
	evRemoteFire uint16 = iota + 16
)

// AgentStats counts one host agent's traffic outcomes. All fields are
// written only by the owning host, so they are exact and deterministic.
type AgentStats struct {
	// Delivered requests released into the resident guest.
	Delivered uint64
	// Forwarded requests that arrived after the VM migrated away and were
	// re-sent to its new host (one extra network hop each).
	Forwarded uint64
	// Dropped requests that arrived during a blackout or found no
	// forwarding address — connection-refused, made visible.
	Dropped uint64
	// Throttled sporadic releases suppressed by the minimum inter-arrival
	// constraint.
	Throttled uint64
	// SkippedMigrations counts planned migrations that fired after the VM
	// had already left (or toward its current host) and were ignored.
	SkippedMigrations uint64
	// FailedDeploys counts migrations whose target admission failed; the
	// VM stays dark.
	FailedDeploys uint64
}

// hostAgent is the per-host protocol endpoint: it receives mailbox events
// addressed to its host and acts strictly on host-local state.
type hostAgent struct {
	c    *Sharded
	host int
	id   int32

	// resident marks deployments currently served by this host.
	resident map[int32]struct{}
	// fwd maps a departed deployment to the host it migrated to, so late
	// requests chase it with one extra hop per move.
	fwd map[int32]int32

	Stats AgentStats
}

// ShardHost is one member of a sharded cluster.
type ShardHost struct {
	Name  string
	Shard *sim.Shard
	Sys   *core.System

	agent *hostAgent
}

// Agent exposes the host's traffic statistics.
func (h *ShardHost) Agent() AgentStats { return h.agent.Stats }

// ShardedDeployment is a VM placed on a sharded cluster. Between runs all
// fields are stable to read; during a window only the resident host
// touches them.
type ShardedDeployment struct {
	Spec VMSpec

	id      int32
	hostIdx int
	guest   *guest.OS
	tasks   []*task.Task
	// lat[i] records task i's response times (release → completion),
	// surviving migrations with the deployment.
	lat []metrics.LatencyRecorder
	// ctrl[i] is task i's adaptive controller on the resident host (nil
	// for tasks without an Adaptive spec, and nil as a whole during a
	// blackout — controllers are torn down with the guest and rebuilt
	// fresh on the target).
	ctrl []*guest.AdaptiveController

	Migrations    int
	BlackoutTotal simtime.Duration
	migrating     bool
}

// HostIndex reports the host the deployment resides on (the migration
// target from the moment the stop-and-copy begins).
func (d *ShardedDeployment) HostIndex() int { return d.hostIdx }

// Migrating reports whether a stop-and-copy blackout is in flight.
func (d *ShardedDeployment) Migrating() bool { return d.migrating }

// Guest exposes the current guest OS (nil during a blackout).
func (d *ShardedDeployment) Guest() *guest.OS { return d.guest }

// Tasks returns the deployment's tasks.
func (d *ShardedDeployment) Tasks() []*task.Task { return d.tasks }

// Latency returns task i's response-time recorder.
func (d *ShardedDeployment) Latency(i int) *metrics.LatencyRecorder { return &d.lat[i] }

// RemoteClient drives a deployment's task from another host, like the
// paper's TCP clients: inter-arrival times and per-request demand are
// sampled client-side from the client host's RNG, and each request
// crosses the network (≥ lookahead) through the shard mailbox to the
// deployment's build-time home host.
type RemoteClient struct {
	Host    int // client host index
	TaskIdx int
	// Delay is the client→server network latency (≥ the cluster
	// lookahead).
	Delay simtime.Duration
	// Inter is the inter-arrival distribution; Service the per-request
	// CPU demand (nil = the task's declared slice).
	Inter   dist.Duration
	Service dist.Duration
	// Proc, when set before Start, replaces Inter with a time-varying
	// open-loop arrival process (diurnal/MMPP/flash-crowd production
	// traffic). Inter stays required as the declared fallback.
	Proc workload.ArrivalProcess
	// Requests bounds the stream (0 = unbounded).
	Requests int

	c        *Sharded
	dep      *ShardedDeployment
	homeHost int32
	id       int32
	sent     int
	rng      *sim.RNG
}

// Sent reports the number of requests issued so far.
func (cl *RemoteClient) Sent() int { return cl.sent }

// Sharded is a cluster of per-host logical processes under conservative
// windowed synchronization. Build it with NewSharded, place VMs with
// Deploy, attach traffic with AddRemoteClient, optionally PlanMigration,
// then Start and Run.
type Sharded struct {
	Cfg   ShardedConfig
	Set   *sim.ShardSet
	Hosts []*ShardHost

	deps       []*ShardedDeployment
	byName     map[string]*ShardedDeployment
	clients    []*RemoteClient
	plans      []migPlan
	nextTaskID int
	started    bool
}

// migPlan records one planned migration's endpoints for topology
// declaration: src is the VM's host when the plan was laid (where the
// stop-and-copy event sits), dst the target.
type migPlan struct {
	src, dst int
}

// NewSharded builds the hosts, one simulator each. It panics on an
// incoherent configuration, mirroring New.
func NewSharded(cfg ShardedConfig) *Sharded {
	if cfg.Lookahead == 0 {
		cfg.Lookahead = workload.DefaultNetworkDelay()
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Sharded{Cfg: cfg, Set: sim.NewShardSet(cfg.Lookahead),
		byName: map[string]*ShardedDeployment{}}
	for i := 0; i < cfg.Hosts; i++ {
		sh := c.Set.NewShard(splitSeed(cfg.Seed, uint64(i)))
		sysCfg := cfg.System
		sysCfg.PCPUs = cfg.PCPUs
		sysCfg.Seed = 0 // unused: the shard's simulator already exists
		sysCfg.SharedSim = sh.Sim()
		h := &ShardHost{
			Name:  fmt.Sprintf("host%d", i),
			Shard: sh,
			Sys:   core.NewSystem(sysCfg),
			agent: &hostAgent{c: c, host: i,
				resident: map[int32]struct{}{}, fwd: map[int32]int32{}},
		}
		h.agent.id = sh.Sim().RegisterHandler(h.agent)
		c.Hosts = append(c.Hosts, h)
	}
	return c
}

// Deployments returns the placed VMs in placement order.
func (c *Sharded) Deployments() []*ShardedDeployment { return c.deps }

// Lookup returns a deployment by VM name.
func (c *Sharded) Lookup(name string) (*ShardedDeployment, bool) {
	d, ok := c.byName[name]
	return d, ok
}

// Deploy admits a VM onto an explicit host (placement policy is the
// caller's business in a sharded run — it is decided before Start, when
// global state is still cheap to read).
func (c *Sharded) Deploy(host int, spec VMSpec) (*ShardedDeployment, error) {
	if c.started {
		return nil, errors.New("cluster: Deploy after Start")
	}
	if host < 0 || host >= len(c.Hosts) {
		return nil, fmt.Errorf("cluster: host %d out of range", host)
	}
	if _, dup := c.byName[spec.Name]; dup {
		return nil, fmt.Errorf("cluster: VM %q already placed", spec.Name)
	}
	d := &ShardedDeployment{Spec: spec, id: int32(len(c.deps)), hostIdx: host}
	for _, ts := range spec.Tasks {
		var t *task.Task
		if ts.Kind == task.Background {
			t = task.NewBackground(c.nextTaskID, ts.Name)
		} else {
			t = task.New(c.nextTaskID, ts.Name, ts.Kind, ts.Params)
		}
		c.nextTaskID++
		d.tasks = append(d.tasks, t)
	}
	d.lat = make([]metrics.LatencyRecorder, len(d.tasks))
	if err := c.deployGuest(d, host); err != nil {
		return nil, err
	}
	c.Hosts[host].agent.resident[d.id] = struct{}{}
	c.deps = append(c.deps, d)
	c.byName[spec.Name] = d
	return d, nil
}

// deployGuest creates the guest on the host and registers the
// deployment's tasks, wiring each task's completion callback to the
// deployment-owned latency recorder. Reused task objects keep their
// deadline statistics across migrations, exactly like Cluster.deploy.
func (c *Sharded) deployGuest(d *ShardedDeployment, host int) error {
	vcpus := d.Spec.VCPUs
	if vcpus <= 0 {
		vcpus = 1
	}
	g, err := c.Hosts[host].Sys.NewGuest(d.Spec.Name, vcpus)
	if err != nil {
		return err
	}
	for i, t := range d.tasks {
		if err := g.Register(t); err != nil {
			for _, prev := range d.tasks[:i] {
				_ = g.Unregister(prev)
			}
			c.Hosts[host].Sys.Host.RemoveVM(g.VM())
			return fmt.Errorf("cluster: admitting %q on host%d: %w", t.Name, host, err)
		}
	}
	d.guest = g
	d.hostIdx = host
	d.wireStats()
	d.ctrl = nil
	for i, ts := range d.Spec.Tasks {
		if ts.Adaptive == nil {
			continue
		}
		ct, err := guest.NewAdaptiveController(g, d.tasks[i], *ts.Adaptive)
		if err != nil {
			for _, t := range d.tasks {
				_ = g.Unregister(t)
			}
			c.Hosts[host].Sys.Host.RemoveVM(g.VM())
			d.guest = nil
			return fmt.Errorf("cluster: controller for %q on host%d: %w", ts.Name, host, err)
		}
		if d.ctrl == nil {
			d.ctrl = make([]*guest.AdaptiveController, len(d.tasks))
		}
		d.ctrl[i] = ct
	}
	return nil
}

// Controller returns task i's adaptive controller on the resident host
// (nil without an Adaptive spec or during a blackout).
func (d *ShardedDeployment) Controller(i int) *guest.AdaptiveController {
	if d.ctrl == nil {
		return nil
	}
	return d.ctrl[i]
}

// wireStats points every task's OnJobDone at the deployment's recorders.
// Called after each deploy and after each fork (task.Clone and guest
// teardown both drop the callbacks).
func (d *ShardedDeployment) wireStats() {
	for i := range d.tasks {
		rec := &d.lat[i]
		d.tasks[i].OnJobDone = func(j *task.Job) {
			rec.Add(j.Finish.Sub(j.Release))
		}
	}
}

// startTasks begins the deployment's periodic releases (phase-shifted
// from now) and releases one effectively infinite job per background
// task.
func (c *Sharded) startTasks(d *ShardedDeployment, now simtime.Time) {
	for i, ts := range d.Spec.Tasks {
		switch ts.Kind {
		case task.Periodic:
			d.guest.StartPeriodic(d.tasks[i], now.Add(ts.Phase))
		case task.Background:
			d.guest.ReleaseJob(d.tasks[i], simtime.Duration(1<<60))
		}
	}
	for _, ct := range d.ctrl {
		if ct != nil {
			ct.Start(now)
		}
	}
}

// AddRemoteClient attaches a request stream for d.tasks[taskIdx], driven
// from clientHost. The client's network delay must be ≥ the lookahead and
// the client must sit on a different host than the VM's home.
func (c *Sharded) AddRemoteClient(clientHost int, d *ShardedDeployment, taskIdx int,
	delay simtime.Duration, inter dist.Duration, service dist.Duration, requests int) (*RemoteClient, error) {
	if c.started {
		return nil, errors.New("cluster: AddRemoteClient after Start")
	}
	if clientHost < 0 || clientHost >= len(c.Hosts) {
		return nil, fmt.Errorf("cluster: client host %d out of range", clientHost)
	}
	if taskIdx < 0 || taskIdx >= len(d.tasks) {
		return nil, fmt.Errorf("cluster: task index %d out of range for VM %q", taskIdx, d.Spec.Name)
	}
	if delay < c.Cfg.Lookahead {
		return nil, fmt.Errorf("cluster: client delay %v below lookahead %v", delay, c.Cfg.Lookahead)
	}
	if clientHost == d.hostIdx {
		return nil, fmt.Errorf("cluster: client for %q must run on a different host than the VM (it is a *remote* client)", d.Spec.Name)
	}
	if inter == nil {
		return nil, errors.New("cluster: remote client needs an inter-arrival distribution")
	}
	cl := &RemoteClient{
		Host: clientHost, TaskIdx: taskIdx, Delay: delay,
		Inter: inter, Service: service, Requests: requests,
		c: c, dep: d, homeHost: int32(d.hostIdx),
	}
	cl.id = c.Hosts[clientHost].Shard.Sim().RegisterHandler(cl)
	c.clients = append(c.clients, cl)
	return cl, nil
}

// PlanMigration schedules a live migration of d to host `to` at the
// absolute instant at. Plans are laid before Start; a plan that fires
// after the VM already moved elsewhere is counted and skipped.
func (c *Sharded) PlanMigration(at simtime.Time, d *ShardedDeployment, to int) error {
	if c.started {
		return errors.New("cluster: PlanMigration after Start")
	}
	if to < 0 || to >= len(c.Hosts) {
		return fmt.Errorf("cluster: migration target %d out of range", to)
	}
	if to == d.hostIdx {
		return fmt.Errorf("cluster: VM %q already on host%d", d.Spec.Name, to)
	}
	src := c.Hosts[d.hostIdx]
	src.Shard.Sim().PostAt(at, sim.Payload{Handler: src.agent.id,
		Kind: evAgentMigOut, Owner: d.id, Arg0: int64(to)})
	c.plans = append(c.plans, migPlan{src: d.hostIdx, dst: to})
	return nil
}

// hopDelay is the network latency a forwarded request pays on the
// (from, to) link: Cfg.LinkDelay when configured, the global Lookahead
// floor otherwise. A LinkDelay below the lookahead would let a forward
// outrun the conservative window, so it panics loudly.
func (c *Sharded) hopDelay(from, to int) simtime.Duration {
	if c.Cfg.LinkDelay == nil {
		return c.Cfg.Lookahead
	}
	d := c.Cfg.LinkDelay(from, to)
	if d < c.Cfg.Lookahead {
		panic(fmt.Sprintf("cluster: LinkDelay(%d, %d) = %v below lookahead %v",
			from, to, d, c.Cfg.Lookahead))
	}
	return d
}

// declareTopology hands the shard set the actual communication graph so
// it can window per edge instead of on the global minimum. Every
// cross-shard message the sharded cluster can emit travels one of three
// edges, all known before Start: a client's (client host → home host) hop
// at its own network delay, a planned migration's (source → target) hop
// at the blackout downtime (≥ MigrationDowntime), or a forwarded request
// on that same (source → target) pair at hopDelay — forwards only chase
// fired plans, and a plan only fires on the host that laid it. Parallel
// declarations keep the minimum delay per pair.
func (c *Sharded) declareTopology() {
	c.Set.UseDeclaredTopology()
	min := make(map[[2]int]simtime.Duration)
	narrow := func(from, to int, l simtime.Duration) {
		k := [2]int{from, to}
		if cur, ok := min[k]; !ok || l < cur {
			min[k] = l
		}
	}
	for _, cl := range c.clients {
		narrow(cl.Host, int(cl.homeHost), cl.Delay)
	}
	for _, p := range c.plans {
		l := c.hopDelay(p.src, p.dst)
		if c.Cfg.MigrationDowntime < l {
			l = c.Cfg.MigrationDowntime
		}
		narrow(p.src, p.dst, l)
	}
	for k, l := range min {
		c.Set.SetEdgeLookahead(k[0], k[1], l)
	}
}

// Start dispatches every host and releases the initial workload: periodic
// phases, background jobs, and the remote request streams.
func (c *Sharded) Start() {
	if c.started {
		panic("cluster: Start called twice")
	}
	c.started = true
	if !c.Cfg.GlobalWindows {
		c.declareTopology()
	}
	for _, h := range c.Hosts {
		h.Sys.Start()
	}
	for _, d := range c.deps {
		c.startTasks(d, 0)
	}
	for _, cl := range c.clients {
		s := c.Hosts[cl.Host].Shard.Sim()
		cl.rng = s.RNG().Split()
		s.PostAt(0, sim.Payload{Handler: cl.id, Kind: evRemoteFire})
	}
}

// Run advances the whole cluster by d using up to groups concurrent
// executors. Any group count produces bit-identical results; groups > 1
// only changes the wall clock.
func (c *Sharded) Run(d simtime.Duration, groups int) {
	c.Set.RunFor(d, groups)
}

// Finish settles every host's accounting (idle-time attribution etc.)
// after the last Run.
func (c *Sharded) Finish() {
	for _, h := range c.Hosts {
		h.Sys.Host.Sync()
	}
}

// HandleSimEvent implements sim.Handler for the host agent.
func (a *hostAgent) HandleSimEvent(now simtime.Time, ev sim.Payload) {
	switch ev.Kind {
	case evAgentReq:
		a.request(now, ev)
	case evAgentMigOut:
		a.migrateOut(now, ev)
	case evAgentMigIn:
		a.migrateIn(now, ev)
	default:
		panic(fmt.Sprintf("cluster: unknown agent event kind %d", ev.Kind))
	}
}

// request delivers (or forwards, or drops) one remote request.
func (a *hostAgent) request(now simtime.Time, ev sim.Payload) {
	d := a.c.deps[ev.Owner]
	if _, here := a.resident[d.id]; here {
		t := d.tasks[ev.Arg1]
		if t.Kind == task.Sporadic && t.EarliestNextRelease() > now {
			a.Stats.Throttled++
			return
		}
		d.guest.ReleaseJob(t, simtime.Duration(ev.Arg0))
		a.Stats.Delivered++
		return
	}
	if tgt, ok := a.fwd[d.id]; ok {
		// The VM moved: chase it with one more network hop at the pair's
		// link delay. The payload is re-addressed verbatim, so demand and
		// task index survive.
		a.Stats.Forwarded++
		th := a.c.Hosts[tgt]
		a.c.Hosts[a.host].Shard.PostRemote(th.Shard, now.Add(a.c.hopDelay(a.host, int(tgt))),
			sim.Payload{Handler: th.agent.id, Kind: evAgentReq,
				Owner: ev.Owner, Arg0: ev.Arg0, Arg1: ev.Arg1})
		return
	}
	// Blackout (stop-and-copy in flight) or a VM that never lived here:
	// connection refused.
	a.Stats.Dropped++
}

// migrateOut is the stop-and-copy instant on the source host.
func (a *hostAgent) migrateOut(now simtime.Time, ev sim.Payload) {
	d := a.c.deps[ev.Owner]
	target := int(ev.Arg0)
	if _, here := a.resident[d.id]; !here || target == a.host {
		a.Stats.SkippedMigrations++
		return
	}
	bw := d.Spec.Bandwidth()
	downtime := a.c.Cfg.MigrationDowntime +
		simtime.Duration(float64(a.c.Cfg.MigrationPerBW)*bw)
	// Tear down on the source: queued jobs are abandoned (visible as
	// misses), reservations released.
	if err := d.guest.Shutdown(); err != nil {
		panic(fmt.Sprintf("cluster: migrating %q out of host%d: %v", d.Spec.Name, a.host, err))
	}
	// Controllers die with the source guest: their stale window timers
	// no-op once stopped, and the target deploy builds fresh ones.
	for _, ct := range d.ctrl {
		if ct != nil {
			ct.Stop()
		}
	}
	d.ctrl = nil
	d.guest = nil
	d.migrating = true
	d.hostIdx = target
	delete(a.resident, d.id)
	a.fwd[d.id] = int32(target)
	th := a.c.Hosts[target]
	a.c.Hosts[a.host].Shard.PostRemote(th.Shard, now.Add(downtime),
		sim.Payload{Handler: th.agent.id, Kind: evAgentMigIn,
			Owner: d.id, Arg0: int64(downtime)})
}

// migrateIn ends the blackout on the target host.
func (a *hostAgent) migrateIn(now simtime.Time, ev sim.Payload) {
	d := a.c.deps[ev.Owner]
	downtime := simtime.Duration(ev.Arg0)
	d.migrating = false
	d.Migrations++
	d.BlackoutTotal += downtime
	if err := a.c.deployGuest(d, a.host); err != nil {
		// Admission failed on the target (it filled up since planning):
		// the VM stays dark. Deterministic and visible, like a pending
		// failover.
		a.Stats.FailedDeploys++
		return
	}
	a.resident[d.id] = struct{}{}
	delete(a.fwd, d.id)
	a.c.startTasks(d, now)
}

// HandleSimEvent implements sim.Handler for the remote client.
func (cl *RemoteClient) HandleSimEvent(now simtime.Time, ev sim.Payload) {
	if ev.Kind != evRemoteFire {
		panic(fmt.Sprintf("cluster: unknown client event kind %d", ev.Kind))
	}
	if cl.Requests > 0 && cl.sent >= cl.Requests {
		return
	}
	cl.sent++
	var demand int64
	if cl.Service != nil {
		demand = int64(cl.Service.Sample(cl.rng))
	}
	home := cl.c.Hosts[cl.homeHost]
	mine := cl.c.Hosts[cl.Host].Shard
	mine.PostRemote(home.Shard, now.Add(cl.Delay), sim.Payload{
		Handler: home.agent.id, Kind: evAgentReq,
		Owner: cl.dep.id, Arg0: demand, Arg1: int64(cl.TaskIdx)})
	if cl.Requests <= 0 || cl.sent < cl.Requests {
		var gap simtime.Duration
		if cl.Proc != nil {
			gap = cl.Proc.Next(now, cl.rng)
		} else {
			gap = cl.Inter.Sample(cl.rng)
		}
		mine.Sim().PostAfter(gap, sim.Payload{Handler: cl.id, Kind: evRemoteFire})
	}
}

// DigestString renders the cluster's observable end state — per-host
// event counts and traffic stats, per-VM placement, migration and
// blackout totals, per-task deadline statistics and latency counts, and
// per-client send counts — as a deterministic string. Two runs of the
// same configuration must produce byte-identical digests regardless of
// executor group count or event-queue backend; the golden tests and the
// quickcheck PDES oracle pin exactly that.
func (c *Sharded) DigestString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "events=%d windows=%d now=%d\n", c.Set.EventsFired(), c.Set.Windows(), c.Set.Now())
	for i, h := range c.Hosts {
		st := h.agent.Stats
		fmt.Fprintf(&b, "host%d events=%d clock=%d alloc=%.6f delivered=%d forwarded=%d dropped=%d throttled=%d skipmig=%d faildeploy=%d\n",
			i, h.Shard.Sim().EventsFired(), int64(h.Shard.Sim().Now()), h.Sys.AllocatedBandwidth(),
			st.Delivered, st.Forwarded, st.Dropped, st.Throttled, st.SkippedMigrations, st.FailedDeploys)
	}
	for _, d := range c.deps {
		fmt.Fprintf(&b, "vm %s host=%d migs=%d blackout=%d migrating=%v dark=%v\n",
			d.Spec.Name, d.hostIdx, d.Migrations, int64(d.BlackoutTotal), d.migrating, d.guest == nil)
		for i, t := range d.tasks {
			st := t.Stats()
			lat := &d.lat[i]
			fmt.Fprintf(&b, "  task %s released=%d judged=%d missed=%d done=%d maxlat=%d\n",
				t.Name, st.Released, st.Judged(), st.Missed, lat.Count(), int64(lat.Max()))
			// Controller lines appear only for adaptive tasks, so digests
			// of controller-free clusters stay byte-identical to the old
			// goldens.
			if ct := d.Controller(i); ct != nil {
				p := t.Params()
				fmt.Fprintf(&b, "  ctrl %s incs=%d decs=%d rejects=%d windows=%d skipped=%d slice=%d\n",
					t.Name, ct.Incs, ct.Decs, ct.Rejects, ct.Windows, ct.Skipped, int64(p.Slice))
			}
		}
	}
	for i, cl := range c.clients {
		fmt.Fprintf(&b, "client%d host=%d vm=%s sent=%d\n", i, cl.Host, cl.dep.Spec.Name, cl.sent)
	}
	return b.String()
}

package metrics

import (
	"math/rand"
	"testing"

	"rtvirt/internal/simtime"
)

func TestMergePreservesSortednessTailCase(t *testing.T) {
	var a, b LatencyRecorder
	for i := 0; i < 100; i++ {
		a.Add(simtime.Duration(i))
	}
	for i := 100; i < 200; i++ {
		b.Add(simtime.Duration(i))
	}
	if !a.isSorted() || !b.isSorted() {
		t.Fatal("monotone Add streams should keep recorders sorted")
	}
	a.Merge(&b)
	if !a.sorted {
		t.Fatal("tail-mergeable Merge dropped the sorted flag")
	}
	// The fast path must still produce correct answers.
	if got := a.Percentile(50); got != 99 {
		t.Fatalf("p50 after merge = %v, want 99", got)
	}
	if a.Count() != 200 || a.Max() != 199 {
		t.Fatalf("count/max after merge = %d/%v", a.Count(), a.Max())
	}
}

func TestMergeOverlappingFallsBackToResort(t *testing.T) {
	var a, b LatencyRecorder
	a.Add(10)
	a.Add(20)
	b.Add(5) // below a's max: not tail-mergeable
	b.Add(30)
	a.Merge(&b)
	if a.sorted {
		t.Fatal("overlapping Merge must clear the sorted flag")
	}
	if got := a.Percentile(100); got != 30 {
		t.Fatalf("p100 = %v, want 30", got)
	}
	if got := a.Percentile(25); got != 5 {
		t.Fatalf("p25 = %v, want 5", got)
	}
}

func TestMergeEmptyOther(t *testing.T) {
	var a, b LatencyRecorder
	a.Add(1)
	a.Add(2)
	a.Merge(&b)
	if a.Count() != 2 || !a.isSorted() {
		t.Fatalf("merge of empty recorder disturbed state: count=%d sorted=%v", a.Count(), a.isSorted())
	}
}

func TestMergeIntoEmpty(t *testing.T) {
	var a, b LatencyRecorder
	b.Add(3)
	b.Add(1) // unsorted source
	a.Merge(&b)
	if a.sorted {
		t.Fatal("merge of unsorted source must not claim sortedness")
	}
	if got := a.Percentile(100); got != 3 {
		t.Fatalf("p100 = %v, want 3", got)
	}
}

func TestReserve(t *testing.T) {
	var l LatencyRecorder
	l.Add(1)
	l.Reserve(1000)
	if cap(l.samples)-len(l.samples) < 1000 {
		t.Fatalf("Reserve left headroom %d, want >= 1000", cap(l.samples)-len(l.samples))
	}
	base := &l.samples[0]
	for i := 0; i < 1000; i++ {
		l.Add(simtime.Duration(i))
	}
	if &l.samples[0] != base {
		t.Fatal("Adds within reserved capacity reallocated the backing array")
	}
	l.Reserve(0)
	l.Reserve(-5)
	var s LatencyRecorder
	s.EnableStreaming()
	s.Reserve(100) // no-op, must not panic
}

func TestStreamingMatchesExactOnSmoothDistribution(t *testing.T) {
	var exact, stream LatencyRecorder
	stream.EnableStreaming()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200_000; i++ {
		// Log-normal-ish latency shape: a body with a heavy-ish tail.
		d := simtime.Duration(1000 + rng.ExpFloat64()*10_000)
		exact.Add(d)
		stream.Add(d)
	}
	if !stream.Streaming() {
		t.Fatal("Streaming() false after EnableStreaming")
	}
	if stream.Count() != exact.Count() {
		t.Fatalf("count %d != %d", stream.Count(), exact.Count())
	}
	if stream.Mean() != exact.Mean() {
		t.Fatalf("mean %v != %v (mean is exact in streaming mode)", stream.Mean(), exact.Mean())
	}
	if stream.Max() != exact.Max() {
		t.Fatalf("max %v != %v (max is exact in streaming mode)", stream.Max(), exact.Max())
	}
	for _, p := range StreamingPercentiles {
		e, s := float64(exact.Percentile(p)), float64(stream.Percentile(p))
		if rel := (s - e) / e; rel < -0.05 || rel > 0.05 {
			t.Fatalf("p%g: streaming %v vs exact %v (%.1f%% off)", p, simtime.Duration(s), simtime.Duration(e), 100*rel)
		}
	}
}

func TestStreamingUnsupportedOps(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	var s LatencyRecorder
	s.EnableStreaming()
	s.Add(1)
	var other LatencyRecorder
	expectPanic("Merge into streaming", func() { s.Merge(&other) })
	expectPanic("Merge from streaming", func() { other.Merge(&s) })
	expectPanic("CDF", func() { s.CDF() })
	expectPanic("untracked percentile", func() { s.Percentile(50) })

	var late LatencyRecorder
	late.Add(1)
	expectPanic("EnableStreaming after Add", func() { late.EnableStreaming() })
}

func TestStreamingTailSummary(t *testing.T) {
	var s LatencyRecorder
	s.EnableStreaming()
	for i := 1; i <= 1000; i++ {
		s.Add(simtime.Duration(i))
	}
	// TailSummary touches exactly the tracked percentiles; it must work.
	if s.TailSummary() == "" {
		t.Fatal("empty TailSummary")
	}
	s.EnableStreaming() // idempotent
}

func BenchmarkAddExact(b *testing.B) {
	var l LatencyRecorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Add(simtime.Duration(i % 4096))
	}
}

func BenchmarkAddStreaming(b *testing.B) {
	var l LatencyRecorder
	l.EnableStreaming()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Add(simtime.Duration(i % 4096))
	}
}

package trace

import (
	"fmt"
	"io"
	"sort"

	"rtvirt/internal/simtime"
)

// svgPalette cycles across VMs.
var svgPalette = []string{
	"#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2",
	"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
}

// WriteSVG renders the trace as a Gantt chart (one lane per PCPU, one box
// per dispatch interval, coloured by VM; deadline misses drawn as red
// ticks) — a vector version of the paper's Figure 1 timelines.
func (r *Recorder) WriteSVG(w io.Writer, pcpus int, from, to simtime.Time) error {
	if to <= from || pcpus <= 0 {
		return fmt.Errorf("trace: invalid SVG window [%v, %v) × %d pcpus", from, to, pcpus)
	}
	const (
		width      = 1000.0
		laneHeight = 34.0
		laneGap    = 10.0
		marginL    = 64.0
		marginT    = 24.0
		legendH    = 26.0
	)
	span := float64(to.Sub(from))
	x := func(t simtime.Time) float64 {
		return marginL + width*float64(t.Sub(from))/span
	}
	height := marginT + float64(pcpus)*(laneHeight+laneGap) + legendH + 20

	// Collect per-PCPU dispatch segments and the VM → colour mapping.
	type segment struct {
		vm       string
		from, to simtime.Time
	}
	lanes := make([][]segment, pcpus)
	cur := make([]*segment, pcpus)
	vmNames := map[string]bool{}
	closeSeg := func(p int, at simtime.Time) {
		if cur[p] != nil {
			s := *cur[p]
			s.to = at
			if s.to > s.from && s.vm != "" {
				lanes[p] = append(lanes[p], s)
			}
			cur[p] = nil
		}
	}
	var misses []Record
	for _, rec := range r.events {
		if rec.At > to {
			break
		}
		switch rec.Kind {
		case Dispatch:
			if rec.PCPU < 0 || rec.PCPU >= pcpus {
				continue
			}
			at := rec.At
			if at < from {
				at = from
			}
			closeSeg(rec.PCPU, at)
			cur[rec.PCPU] = &segment{vm: rec.VM, from: at}
			if rec.VM != "" {
				vmNames[rec.VM] = true
			}
		case JobMiss:
			if rec.At >= from {
				misses = append(misses, rec)
			}
		}
	}
	for p := 0; p < pcpus; p++ {
		closeSeg(p, to)
	}
	names := make([]string, 0, len(vmNames))
	for n := range vmNames {
		names = append(names, n)
	}
	sort.Strings(names)
	color := map[string]string{}
	for i, n := range names {
		color[n] = svgPalette[i%len(svgPalette)]
	}

	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" font-family="sans-serif" font-size="12">`+"\n",
		marginL+width+20, height)
	fmt.Fprintf(w, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")

	for p := 0; p < pcpus; p++ {
		y := marginT + float64(p)*(laneHeight+laneGap)
		fmt.Fprintf(w, `<text x="6" y="%.1f">pcpu%d</text>`+"\n", y+laneHeight*0.65, p)
		fmt.Fprintf(w, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#f4f4f4" stroke="#ccc"/>`+"\n",
			marginL, y, width, laneHeight)
		for _, s := range lanes[p] {
			fmt.Fprintf(w, `<rect x="%.2f" y="%.1f" width="%.2f" height="%.1f" fill="%s"><title>%s %v–%v</title></rect>`+"\n",
				x(s.from), y+2, x(s.to)-x(s.from), laneHeight-4, color[s.vm], s.vm, s.from, s.to)
		}
	}
	// Misses: red ticks above the lane of the task's PCPU (or lane 0).
	for _, m := range misses {
		p := m.PCPU
		if p < 0 || p >= pcpus {
			p = 0
		}
		y := marginT + float64(p)*(laneHeight+laneGap)
		fmt.Fprintf(w, `<line x1="%.2f" y1="%.1f" x2="%.2f" y2="%.1f" stroke="red" stroke-width="2"><title>miss: %s (+%v)</title></line>`+"\n",
			x(m.At), y-6, x(m.At), y+2, m.Task, m.ArgDuration())
	}
	// Time axis.
	axisY := marginT + float64(pcpus)*(laneHeight+laneGap)
	for i := 0; i <= 10; i++ {
		t := from.Add(simtime.ScaleDuration(to.Sub(from), int64(i), 10))
		fmt.Fprintf(w, `<text x="%.1f" y="%.1f" text-anchor="middle" fill="#555">%v</text>`+"\n",
			x(t), axisY+14, t)
	}
	// Legend.
	lx := marginL
	ly := axisY + legendH
	for _, n := range names {
		fmt.Fprintf(w, `<rect x="%.1f" y="%.1f" width="12" height="12" fill="%s"/>`+"\n", lx, ly, color[n])
		fmt.Fprintf(w, `<text x="%.1f" y="%.1f">%s</text>`+"\n", lx+16, ly+11, n)
		lx += 20 + 8*float64(len(n)) + 16
	}
	fmt.Fprintln(w, `</svg>`)
	return nil
}

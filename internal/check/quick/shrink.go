package quick

import (
	"rtvirt/internal/check"
	"rtvirt/internal/core"
	"rtvirt/internal/scenario"
)

// Shrink greedily minimizes a violating scenario by delta-debugging: it
// repeatedly tries structural reductions — drop a VM, drop a task, drop a
// server reservation, halve the run length, remove a PCPU — and adopts any
// candidate that still violates an invariant, restarting the scan from the
// reduced world until a fixpoint or the run budget. Returns the minimized
// scenario, its violations, the number of accepted reductions, and the
// simulations spent.
//
// "Still fails" means any violation at all, not the original one: chasing
// a specific oracle across reductions is fragile (shrinking often morphs a
// bandwidth breach into the budget breach underneath it), and any minimal
// violating world is a good reproducer.
func Shrink(sc scenario.Scenario, stack core.Stack, forkCheck bool, maxRuns int) (scenario.Scenario, []check.Violation, int, int) {
	runs := 0
	probe := func(c scenario.Scenario) []check.Violation {
		runs++
		vs, err := runOne(c, stack, forkCheck)
		if err != nil {
			// Build rejections count as "does not fail".
			return nil
		}
		return vs
	}
	min, vs, steps := shrinkWith(sc, probe, func() bool { return runs >= maxRuns })
	return min, vs, steps, runs
}

// shrinkWith is the probe-agnostic shrinking loop: probe returns the
// candidate's violations (empty = candidate passes), exhausted stops the
// walk early. Separated from Shrink so the mechanics are testable with a
// synthetic predicate.
func shrinkWith(sc scenario.Scenario, probe func(scenario.Scenario) []check.Violation, exhausted func() bool) (scenario.Scenario, []check.Violation, int) {
	cur := sc
	curVs := probe(cur)
	if len(curVs) == 0 {
		// The caller observed a violation but the repro does not fail in
		// isolation — report it unshrunk rather than lose it.
		return cur, curVs, 0
	}
	steps := 0
	for !exhausted() {
		cand, vs, ok := firstFailing(cur, probe, exhausted)
		if !ok {
			break
		}
		cur, curVs = cand, vs
		steps++
	}
	return cur, curVs, steps
}

// firstFailing returns the first one-step reduction that still fails.
func firstFailing(sc scenario.Scenario, probe func(scenario.Scenario) []check.Violation, exhausted func() bool) (scenario.Scenario, []check.Violation, bool) {
	for _, cand := range reductions(sc) {
		if exhausted() {
			return scenario.Scenario{}, nil, false
		}
		if vs := probe(cand); len(vs) > 0 {
			return cand, vs, true
		}
	}
	return scenario.Scenario{}, nil, false
}

// reductions enumerates one-step-smaller variants of sc, structurally
// boldest first (whole VMs before single tasks) so the greedy walk takes
// big steps early.
func reductions(sc scenario.Scenario) []scenario.Scenario {
	var out []scenario.Scenario
	if len(sc.VMs) > 1 {
		for i := range sc.VMs {
			c := cloneScenario(sc)
			c.VMs = append(c.VMs[:i], c.VMs[i+1:]...)
			out = append(out, c)
		}
	}
	for i, vm := range sc.VMs {
		for j := range vm.Tasks {
			c := cloneScenario(sc)
			c.VMs[i].Tasks = append(c.VMs[i].Tasks[:j], c.VMs[i].Tasks[j+1:]...)
			out = append(out, c)
		}
		for j, ts := range vm.Tasks {
			// Strip the open-loop arrival block (falling back to the
			// closed-form sporadic client) and the adaptive controller
			// before dropping the task entirely.
			if ts.Arrivals != nil {
				c := cloneScenario(sc)
				c.VMs[i].Tasks[j].Arrivals = nil
				out = append(out, c)
			}
			if ts.Adaptive != nil {
				c := cloneScenario(sc)
				c.VMs[i].Tasks[j].Adaptive = nil
				out = append(out, c)
			}
			if ts.Evader != nil {
				c := cloneScenario(sc)
				c.VMs[i].Tasks[j].Evader = nil
				out = append(out, c)
			}
		}
		if len(vm.Servers) > 1 {
			for j := range vm.Servers {
				c := cloneScenario(sc)
				c.VMs[i].Servers = append(c.VMs[i].Servers[:j], c.VMs[i].Servers[j+1:]...)
				out = append(out, c)
			}
		}
	}
	if sc.PCPUs > 1 {
		c := cloneScenario(sc)
		c.PCPUs--
		out = append(out, c)
	}
	if sc.Seconds > 1 {
		c := cloneScenario(sc)
		c.Seconds /= 2
		out = append(out, c)
	}
	out = append(out, costReductions(sc)...)
	return out
}

// costReductions minimizes the platform-cost overrides: drop the whole
// block, drop one term, collapse a distribution-valued term to a constant
// (removing the repro's dependence on the cost RNG stream), or zero a VM's
// declared working set.
func costReductions(sc scenario.Scenario) []scenario.Scenario {
	var out []scenario.Scenario
	if sc.Costs != nil {
		c := cloneScenario(sc)
		c.Costs = nil
		out = append(out, c)
		for i, f := range costFields(sc.Costs) {
			if *f == nil {
				continue
			}
			c := cloneScenario(sc)
			*costFields(c.Costs)[i] = nil
			out = append(out, c)
		}
		for i, f := range costFields(sc.Costs) {
			if *f == nil || (*f).Const != nil {
				continue
			}
			c := cloneScenario(sc)
			*costFields(c.Costs)[i] = &scenario.CostSpec{Const: fp(constifyUS(*f))}
			out = append(out, c)
		}
	}
	for i, vm := range sc.VMs {
		if vm.WorkingSetMiB > 0 {
			c := cloneScenario(sc)
			c.VMs[i].WorkingSetMiB = 0
			out = append(out, c)
		}
	}
	return out
}

// costFields enumerates the addressable CostSpec slots of a costs block.
func costFields(c *scenario.CostsSpec) []**scenario.CostSpec {
	return []**scenario.CostSpec{
		&c.ContextSwitch, &c.CtxSwitchWarm, &c.CtxSwitchCold,
		&c.Hypercall, &c.HypercallIncBW, &c.HypercallDecBW, &c.HypercallIncDecBW,
		&c.Migration, &c.MigrationPerMiB,
		&c.ScheduleBase, &c.SchedulePerEntity, &c.GuestSwitch, &c.Tick,
	}
}

// constifyUS picks a representative constant (µs) for a distribution-form
// spec. Any valid stand-in works for shrinking; exactness is not required.
func constifyUS(s *scenario.CostSpec) float64 {
	switch {
	case s.Uniform != nil:
		return (s.Uniform.LoUS + s.Uniform.HiUS) / 2
	case s.Normal != nil:
		return s.Normal.MeanUS
	case s.LogNormal != nil:
		return s.LogNormal.MeanUS
	case s.Pareto != nil:
		return (s.Pareto.LoUS + s.Pareto.HiUS) / 2
	default:
		return 0
	}
}

// cloneScenario deep-copies the slices and cost block reductions mutate.
func cloneScenario(sc scenario.Scenario) scenario.Scenario {
	c := sc
	c.VMs = make([]scenario.VM, len(sc.VMs))
	for i, vm := range sc.VMs {
		cv := vm
		cv.Servers = append([]scenario.ServerSpec(nil), vm.Servers...)
		cv.Tasks = make([]scenario.TaskSpec, len(vm.Tasks))
		for j, ts := range vm.Tasks {
			cv.Tasks[j] = cloneTaskSpec(ts)
		}
		c.VMs[i] = cv
	}
	if sc.Costs != nil {
		cc := *sc.Costs
		c.Costs = &cc
	}
	return c
}

// cloneTaskSpec deep-copies a TaskSpec's pointer-valued blocks so a
// reduction nulling one candidate's block never aliases another's.
func cloneTaskSpec(ts scenario.TaskSpec) scenario.TaskSpec {
	c := ts
	if ts.Arrivals != nil {
		a := *ts.Arrivals
		if ts.Arrivals.Poisson != nil {
			p := *ts.Arrivals.Poisson
			a.Poisson = &p
		}
		if ts.Arrivals.Diurnal != nil {
			d := *ts.Arrivals.Diurnal
			a.Diurnal = &d
		}
		if ts.Arrivals.MMPP != nil {
			m := *ts.Arrivals.MMPP
			m.RatesHz = append([]float64(nil), m.RatesHz...)
			m.SojournMS = append([]int64(nil), m.SojournMS...)
			a.MMPP = &m
		}
		if ts.Arrivals.Flash != nil {
			f := *ts.Arrivals.Flash
			f.Surges = append([]scenario.SurgeSpec(nil), f.Surges...)
			a.Flash = &f
		}
		c.Arrivals = &a
	}
	if ts.Adaptive != nil {
		ad := *ts.Adaptive
		c.Adaptive = &ad
	}
	if ts.Evader != nil {
		ev := *ts.Evader
		c.Evader = &ev
	}
	return c
}

// Package credit implements Xen's default Credit scheduler, used as a
// baseline in §4.4 of the RTVirt paper.
//
// Credit is a proportional-share scheduler: every accounting period each
// VCPU receives credits in proportion to its weight; credits burn while
// the VCPU runs. VCPUs with positive credits are UNDER, others are OVER;
// UNDER VCPUs are served round-robin ahead of OVER ones. A VCPU waking
// from idle is temporarily BOOSTed above everything — this is why Credit
// shows a low *average* latency for memcached in the paper while its tail
// collapses once the VM exhausts credits behind CPU-bound neighbours.
//
// The paper's memcached experiments tune two knobs that are faithfully
// modelled: the global timeslice (set to 1ms) and the ratelimit (500µs),
// plus the periodic scheduler tick whose processing cost perturbs
// latencies even on a dedicated CPU (Table 4).
package credit

import (
	"fmt"

	"rtvirt/internal/hv"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/trace"
)

// Typed kernel-event kinds dispatched to the scheduler's HandleSimEvent.
const (
	// evAccount is the periodic credit refill; host-wide, Owner unused.
	evAccount uint16 = iota
	// evTick is the periodic deboost/burn tick; host-wide, Owner unused.
	evTick
	// evRatelimitKick retries a boost preemption once the occupant's
	// minimum run has elapsed. Owner is the waker's host-global VCPU ID,
	// Arg0 the target PCPU ID.
	evRatelimitKick
)

// Priority bands, highest first.
const (
	prioBoost = iota
	prioUnder
	prioOver
)

// Config tunes the scheduler.
type Config struct {
	// Timeslice is the maximum uninterrupted run per dispatch (Xen
	// default 30ms; 1ms in the paper's memcached experiment).
	Timeslice simtime.Duration
	// Ratelimit is the minimum run before preemption (Xen default 1ms;
	// 500µs in the paper's memcached experiment).
	Ratelimit simtime.Duration
	// AccountPeriod is the credit refill interval (Xen: 30ms).
	AccountPeriod simtime.Duration
	// TickEvery is the scheduler tick used for burn accounting and
	// deboosting (Xen: 10ms).
	TickEvery simtime.Duration
	// TickCost overrides the CPU time consumed by each tick on each busy
	// PCPU — the overhead that stretches Credit's dedicated-CPU tail in
	// Table 4.
	//
	// Deprecated: the tick cost now lives in the shared platform cost model
	// (hv.CostModel.Tick), next to every other per-cause overhead. A
	// positive TickCost still wins over the model for old configs and
	// scenario JSON; leave it zero to use the model's term.
	TickCost simtime.Duration
	// SampledAccounting switches credit burn from exact settle-on-switch
	// to tick sampling: whoever occupies a PCPU when the tick fires is
	// debited one full TickEvery, and runs between ticks are never
	// charged. This is the pre-fix Xen behaviour Zhou et al. exploit
	// ("Scheduler Vulnerabilities and Attacks in Cloud Computing"): a VCPU
	// that sleeps across every tick obtains CPU for free. It exists as the
	// deliberately-naive double for workload.StolenBWMeter's negative
	// tests and the attacks experiment — never enable it elsewhere.
	SampledAccounting bool
}

// DefaultConfig returns stock Xen Credit parameters. The tick cost is no
// longer set here: it defaults through hv.DefaultCosts().Tick (20µs), so
// all platform overheads live in one place.
func DefaultConfig() Config {
	return Config{
		Timeslice:     simtime.Millis(30),
		Ratelimit:     simtime.Millis(1),
		AccountPeriod: simtime.Millis(30),
		TickEvery:     simtime.Millis(10),
	}
}

// vcpuState is the per-VCPU credit accounting. All accounts live in the
// Scheduler's flat st array indexed by dense VCPU ID, so the round-robin
// scan in Schedule walks two contiguous arrays (the ID ring and st)
// instead of dereferencing a per-VCPU interface pointer.
type vcpuState struct {
	credits   simtime.Duration // signed: negative = OVER
	boost     bool
	active    bool // slot holds an admitted VCPU
	runningOn int32
	lastAt    simtime.Time
	// cap, when positive, is the VCPU's maximum CPU share (Xen's sched
	// credit "cap" parameter): once the period's capped credits are burnt
	// the VCPU is parked until the next accounting refill, even if the
	// host is otherwise idle.
	cap float64
	// charged is the cumulative CPU time this scheduler has debited the
	// VCPU for (exact: every settled run; sampled: one TickEvery per tick
	// it was caught occupying a PCPU). workload.StolenBWMeter compares it
	// against the CPU time actually obtained.
	charged simtime.Duration
}

// Scheduler is the Credit scheduler.
type Scheduler struct {
	cfg Config
	h   *hv.Host
	id  int32

	// vcpus is the round-robin ring as VCPU IDs in admission order; st is
	// the struct-of-arrays credit state indexed by VCPU ID. The host's
	// id-arena (Host.ByID) resolves IDs back to VCPUs for cold fields.
	vcpus  []int32
	st     []vcpuState
	cursor int

	started bool
}

// New creates a Credit scheduler.
func New(cfg Config) *Scheduler {
	d := DefaultConfig()
	if cfg.Timeslice <= 0 {
		cfg.Timeslice = d.Timeslice
	}
	if cfg.Ratelimit <= 0 {
		cfg.Ratelimit = d.Ratelimit
	}
	if cfg.AccountPeriod <= 0 {
		cfg.AccountPeriod = d.AccountPeriod
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = d.TickEvery
	}
	return &Scheduler{cfg: cfg}
}

// Name implements hv.HostScheduler.
func (s *Scheduler) Name() string { return "xen-credit" }

// Attach implements hv.HostScheduler.
func (s *Scheduler) Attach(h *hv.Host) {
	s.h = h
	s.id = h.Sim.RegisterHandler(s)
}

// Start implements hv.HostScheduler.
func (s *Scheduler) Start(now simtime.Time) {
	s.started = true
	s.h.Sim.PostAt(now.Add(s.cfg.AccountPeriod), sim.Payload{Handler: s.id, Kind: evAccount})
	s.h.Sim.PostAt(now.Add(s.cfg.TickEvery), sim.Payload{Handler: s.id, Kind: evTick})
}

// HandleSimEvent implements sim.Handler.
func (s *Scheduler) HandleSimEvent(now simtime.Time, ev sim.Payload) {
	switch ev.Kind {
	case evAccount:
		s.account(now)
	case evTick:
		s.tick(now)
	case evRatelimitKick:
		// The waker may have been torn down since the kick was armed; an
		// inactive slot means the retry is moot.
		if int(ev.Owner) < len(s.st) && s.st[ev.Owner].active {
			if hs := s.h.Hot()[ev.Owner]; hs.Runnable && hs.PCPU < 0 {
				s.h.Kick(s.h.PCPUs()[ev.Arg0], now)
			}
		}
	default:
		panic(fmt.Sprintf("credit: unknown event kind %d", ev.Kind))
	}
}

// managed reports whether v has an active credit account.
func (s *Scheduler) managed(v *hv.VCPU) bool {
	return v.ID < len(s.st) && s.st[v.ID].active
}

// state returns v's account; the caller has established it is active.
func (s *Scheduler) state(v *hv.VCPU) *vcpuState { return &s.st[v.ID] }

// AdmitVCPU implements hv.HostScheduler: Credit admits everything. A VCPU
// created with a non-zero reservation is interpreted as capped at the
// reservation's bandwidth (Xen's "cap" parameter).
func (s *Scheduler) AdmitVCPU(v *hv.VCPU) error {
	if v.Weight <= 0 {
		return fmt.Errorf("credit: %w: non-positive weight %d", hv.ErrAdmission, v.Weight)
	}
	st := vcpuState{runningOn: -1, active: true}
	if v.RT && v.Res.Budget > 0 {
		st.cap = v.Res.Bandwidth()
		st.credits = simtime.Duration(st.cap * float64(s.cfg.AccountPeriod))
	}
	for len(s.st) <= v.ID {
		s.st = append(s.st, vcpuState{})
	}
	s.st[v.ID] = st
	s.vcpus = append(s.vcpus, int32(v.ID))
	return nil
}

// CapOf reports v's credit cap as a CPU fraction (0 = uncapped). A capped
// VCPU's per-period refill is exactly cap × AccountPeriod. Read-only;
// used by the invariant oracles in internal/check.
func (s *Scheduler) CapOf(v *hv.VCPU) float64 {
	if s.managed(v) {
		return s.st[v.ID].cap
	}
	return 0
}

// ChargedOf reports the cumulative CPU time this scheduler has debited v
// for. Under exact accounting it equals the CPU time v obtained (modulo
// the currently-open run, settled on the next switch or Sync); under
// SampledAccounting it is whatever the ticks happened to observe.
func (s *Scheduler) ChargedOf(v *hv.VCPU) simtime.Duration {
	if s.managed(v) {
		return s.st[v.ID].charged
	}
	return 0
}

// RemoveVCPU implements hv.HostScheduler.
func (s *Scheduler) RemoveVCPU(v *hv.VCPU, now simtime.Time) {
	for i, x := range s.vcpus {
		if x == int32(v.ID) {
			s.vcpus = append(s.vcpus[:i], s.vcpus[i+1:]...)
			break
		}
	}
	if v.ID < len(s.st) {
		s.st[v.ID] = vcpuState{}
	}
}

// UpdateVCPU implements hv.HostScheduler: reservations are meaningless to
// Credit; the call is accepted so generic plumbing works.
func (s *Scheduler) UpdateVCPU(v *hv.VCPU, res hv.Reservation, now simtime.Time) error {
	v.Res = res
	return nil
}

// account refills credits proportionally to weight (Xen's csched_acct).
func (s *Scheduler) account(now simtime.Time) {
	var totalWeight int64
	for _, id := range s.vcpus {
		totalWeight += int64(s.h.ByID(int(id)).Weight)
	}
	if totalWeight > 0 {
		pool := simtime.Duration(int64(s.cfg.AccountPeriod) * int64(s.h.NumPCPUs()))
		for _, id := range s.vcpus {
			v := s.h.ByID(int(id))
			st := &s.st[id]
			s.settle(v, now)
			share := simtime.ScaleDuration(pool, int64(v.Weight), totalWeight)
			if st.cap > 0 {
				// Capped VCPU: credits are the cap's share, full stop.
				share = simtime.Duration(st.cap * float64(s.cfg.AccountPeriod))
			}
			st.credits += share
			// Cap accumulation at one period's share so an idle VCPU
			// cannot hoard unbounded credits (Xen caps similarly).
			if st.credits > share {
				st.credits = share
			}
			if s.h.Tracing() {
				s.h.Emit(trace.Event{At: now, Kind: trace.Replenish, PCPU: -1,
					VM: v.VM.Name, VCPU: v.Index, Arg: int64(share)})
			}
		}
		// Capped VCPUs that were parked may run again.
		for _, p := range s.h.PCPUs() {
			if p.Current() == nil {
				s.h.Kick(p, now)
			}
		}
	}
	s.h.Sim.PostAt(now.Add(s.cfg.AccountPeriod), sim.Payload{Handler: s.id, Kind: evAccount})
}

// tick deboosts running VCPUs and charges the tick cost on busy PCPUs. The
// cost comes from the shared platform model (hv.CostModel.Tick), sampled
// per busy PCPU from the host's cost stream; a positive legacy
// Config.TickCost overrides the model.
func (s *Scheduler) tick(now simtime.Time) {
	tickCost := s.h.Costs.Tick
	if s.cfg.TickCost > 0 {
		tickCost = hv.ConstCost(s.cfg.TickCost)
	}
	for _, p := range s.h.PCPUs() {
		if cur := p.Current(); cur != nil {
			if s.managed(cur) {
				st := &s.st[cur.ID]
				if st.boost {
					st.boost = false
				}
				if s.cfg.SampledAccounting {
					// Tick sampling: the occupant is presumed to have run
					// the whole interval since the last tick. Deplete's
					// overdraw Arg stays zero — sampling overdraws the cap
					// by construction, and flagging the naive double is the
					// stolen-bandwidth meter's job, not BudgetOracle's.
					had := st.credits > 0
					st.credits -= s.cfg.TickEvery
					st.charged += s.cfg.TickEvery
					if had && st.credits <= 0 && s.h.Tracing() {
						s.h.Emit(trace.Event{At: now, Kind: trace.Deplete,
							PCPU: p.ID, VM: cur.VM.Name, VCPU: cur.Index})
					}
				}
			}
			if c := s.h.DrawCost(tickCost); c > 0 {
				s.h.Overhead.ScheduleCalls++
				s.h.ChargeScheduleWork(p, c)
			}
		}
	}
	s.h.Sim.PostAt(now.Add(s.cfg.TickEvery), sim.Payload{Handler: s.id, Kind: evTick})
}

// settle burns credits for a running VCPU up to now. Under sampled
// accounting nothing burns here — the tick is the only debit point — but
// lastAt still advances (the ratelimit measures runs from it).
func (s *Scheduler) settle(v *hv.VCPU, now simtime.Time) {
	st := s.state(v)
	if st.runningOn < 0 {
		return
	}
	if s.cfg.SampledAccounting {
		st.lastAt = now
		return
	}
	had := st.credits > 0
	elapsed := now.Sub(st.lastAt)
	st.credits -= elapsed
	st.charged += elapsed
	st.lastAt = now
	// The UNDER→OVER transition is Credit's budget-exhaustion moment. For
	// a capped VCPU, Arg carries the overdraw past the cap boundary:
	// Schedule parks it at exactly zero credits, so anything non-zero is
	// an accounting bug (check.BudgetOracle). Uncapped VCPUs run into
	// negative credit legitimately (the OVER band) and report no overdraw.
	if had && st.credits <= 0 && s.h.Tracing() {
		var over int64
		if st.cap > 0 && st.credits < 0 {
			over = int64(-st.credits)
		}
		s.h.Emit(trace.Event{At: now, Kind: trace.Deplete, PCPU: int(st.runningOn),
			VM: v.VM.Name, VCPU: v.Index, Arg: over})
	}
}

// prio computes the VCPU's current priority band; parked (capped-out)
// VCPUs are reported below every band.
const prioParked = prioOver + 1

func prio(st *vcpuState) int {
	switch {
	case st.cap > 0 && st.credits <= 0:
		return prioParked
	case st.boost:
		return prioBoost
	case st.credits > 0:
		return prioUnder
	default:
		return prioOver
	}
}

// VCPUWake implements hv.HostScheduler: BOOST the waker and preempt the
// weakest PCPU if the boost outranks it, honouring the ratelimit.
func (s *Scheduler) VCPUWake(v *hv.VCPU, now simtime.Time) {
	if !s.started {
		return
	}
	st := s.state(v)
	// Xen boosts a waking VCPU unless it is already over its fair share.
	if st.credits >= 0 {
		st.boost = true
	}
	if prio(st) == prioParked {
		return // capped out until the next accounting refill
	}
	// Find the weakest-priority PCPU occupant.
	var target *hv.PCPU
	worst := -1
	for _, p := range s.h.PCPUs() {
		cur := p.Current()
		if cur == nil {
			target = p
			worst = 1 << 30
			break
		}
		pr := prioParked + 1 // foreign occupant ranks lowest
		if s.managed(cur) {
			pr = prio(&s.st[cur.ID])
		}
		if pr > worst {
			worst = pr
			target = p
		}
	}
	if target == nil {
		return
	}
	if cur := target.Current(); cur != nil {
		ok := s.managed(cur)
		if ok && prio(&s.st[cur.ID]) <= prio(st) {
			return // nothing weaker than the waker is running
		}
		// Ratelimit: let the current occupant finish its minimum run.
		if ok {
			if ran := now.Sub(s.st[cur.ID].lastAt); ran < s.cfg.Ratelimit {
				delay := s.cfg.Ratelimit - ran
				s.h.Sim.PostAfter(delay, sim.Payload{Handler: s.id, Kind: evRatelimitKick,
					Owner: int32(v.ID), Arg0: int64(target.ID)})
				return
			}
		}
	}
	s.h.Kick(target, now)
}

// VCPUIdle implements hv.HostScheduler.
func (s *Scheduler) VCPUIdle(v *hv.VCPU, now simtime.Time) {
	if s.managed(v) {
		s.settle(v, now)
		s.st[v.ID].runningOn = -1
	}
}

// Schedule implements hv.HostScheduler: round-robin within the highest
// non-empty priority band.
func (s *Scheduler) Schedule(p *hv.PCPU, now simtime.Time) hv.Decision {
	if cur := p.Current(); cur != nil {
		if s.managed(cur) {
			s.settle(cur, now)
			s.st[cur.ID].runningOn = -1
		}
	}
	n := len(s.vcpus)
	work := 0
	best := int32(-1)
	bestPrio := prioOver + 1
	bestPos := 0
	hot := s.h.Hot()
	pid := int32(p.ID)
	for i := 0; i < n; i++ {
		id := s.vcpus[(s.cursor+i)%n]
		work++
		if hs := hot[id]; !hs.Runnable || (hs.PCPU >= 0 && hs.PCPU != pid) {
			continue
		}
		if pr := prio(&s.st[id]); pr < bestPrio && pr != prioParked {
			bestPrio = pr
			best = id
			bestPos = i
			if pr == prioBoost {
				break
			}
		}
	}
	if best < 0 {
		return hv.Decision{VCPU: nil, RunFor: simtime.Infinite, Work: work}
	}
	s.cursor = (s.cursor + bestPos + 1) % n
	st := &s.st[best]
	st.runningOn = pid
	st.lastAt = now
	run := s.cfg.Timeslice
	if !s.cfg.SampledAccounting && st.cap > 0 && st.credits < run {
		// Exact accounting parks exactly at the cap boundary. Under
		// sampled accounting credits only move at ticks, so clamping to
		// them would grant ever-shrinking slices without ever parking;
		// the full timeslice runs and the tick does the (mis)accounting.
		run = st.credits
		if run <= 0 {
			run = 1
		}
	}
	return hv.Decision{VCPU: s.h.ByID(int(best)), RunFor: run, Work: work}
}

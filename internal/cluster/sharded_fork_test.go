package cluster

import (
	"testing"

	"rtvirt/internal/check"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
)

// TestShardedForkMidMigration forks the cluster while a migration
// blackout and an injected mailbox message are both in flight, then runs
// the original (3 executor groups) and the fork (1 group) forward and
// requires bit-identical digests and per-host dispatch streams. The
// blackout (40ms downtime starting at 30ms) straddles the 50ms fork
// point: at fork time vm0-0's guest is torn down on host 0 and the
// completion event sits in host 2's queue.
func TestShardedForkMidMigration(t *testing.T) {
	c := buildShardedWith(t, func(cfg *ShardedConfig) {
		cfg.MigrationDowntime = simtime.Millis(40)
		cfg.MigrationPerBW = 0
	}, simtime.Time(0).Add(simtime.Millis(30)))
	c.Start()
	c.Run(simtime.Millis(50), 2)

	d, _ := c.Lookup("vm0-0")
	if !d.Migrating() || d.Guest() != nil {
		t.Fatalf("fork point is not mid-blackout: migrating=%v dark=%v",
			d.Migrating(), d.Guest() == nil)
	}
	// Leave a hand-posted request in host 0's outbox so the fork must
	// deep-copy an undrained mailbox, not just quiescent queues.
	tgt := c.Hosts[1]
	victim, _ := c.Lookup("vm1-0")
	c.Hosts[0].Shard.PostRemote(tgt.Shard,
		c.Hosts[0].Shard.Sim().Now().Add(c.Cfg.Lookahead),
		sim.Payload{Handler: tgt.agent.id, Kind: evAgentReq,
			Owner: victim.id, Arg0: 0, Arg1: 0})

	fc, _, err := c.Fork()
	if err != nil {
		t.Fatal(err)
	}

	// The fork must be materially independent.
	fd, ok := fc.Lookup("vm0-0")
	if !ok || fd == d {
		t.Fatal("fork shares the deployment object with the original")
	}
	if !fd.Migrating() || fd.Migrations != d.Migrations {
		t.Fatalf("fork lost migration state: migrating=%v migs=%d", fd.Migrating(), fd.Migrations)
	}
	for i, cl := range fc.clients {
		if cl.dep == nil {
			t.Fatalf("fork client %d has no deployment (fix-up missed)", i)
		}
		if byName, _ := fc.Lookup(cl.dep.Spec.Name); byName != cl.dep {
			t.Fatalf("fork client %d points at a deployment outside the fork", i)
		}
	}

	// Fresh digests on both sides — the fork starts with a disabled trace
	// bus, so attach after forking, then run the continuations with
	// different group counts.
	origDigs := make([]*check.DispatchDigest, len(c.Hosts))
	forkDigs := make([]*check.DispatchDigest, len(c.Hosts))
	for i := range c.Hosts {
		origDigs[i] = check.NewDispatchDigest()
		forkDigs[i] = check.NewDispatchDigest()
		c.Hosts[i].Sys.Host.TraceTo(origDigs[i])
		fc.Hosts[i].Sys.Host.TraceTo(forkDigs[i])
	}
	c.Run(simtime.Millis(150), 3)
	c.Finish()
	fc.Run(simtime.Millis(150), 1)
	fc.Finish()

	if got, want := fc.DigestString(), c.DigestString(); got != want {
		t.Errorf("fork diverged from original:\n--- original ---\n%s--- fork ---\n%s", want, got)
	}
	for i := range origDigs {
		if !origDigs[i].Equal(forkDigs[i]) {
			t.Errorf("host%d dispatch streams diverged: orig %d events (%016x), fork %d (%016x)",
				i, origDigs[i].Events(), origDigs[i].Sum(), forkDigs[i].Events(), forkDigs[i].Sum())
		}
	}
	// Both continuations must complete the straddled migration.
	if d.Migrations != 1 || fd.Migrations != 1 || d.Migrating() || fd.Migrating() {
		t.Errorf("straddled migration did not complete on both sides: orig migs=%d/%v fork migs=%d/%v",
			d.Migrations, d.Migrating(), fd.Migrations, fd.Migrating())
	}
}

package experiments

import (
	"fmt"
	"strings"
	"sync"

	"rtvirt/internal/core"
	"rtvirt/internal/csa"
	"rtvirt/internal/hv"
	"rtvirt/internal/metrics"
	"rtvirt/internal/runner"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
	"rtvirt/internal/workload"
)

// Arm names one memcached configuration of §4.4.
type Arm string

// The four arms of Figures 5a/5b.
const (
	ArmCredit Arm = "Credit"
	ArmRTXenA Arm = "RT-Xen A" // server (66µs, 283µs)
	ArmRTXenB Arm = "RT-Xen B" // server (33µs, 177µs)
	ArmRTVirt Arm = "RTVirt"   // reservation (58µs, 500µs)
)

// Arms lists the four configurations in the paper's presentation order.
func Arms() []Arm { return []Arm{ArmCredit, ArmRTXenA, ArmRTXenB, ArmRTVirt} }

func stackOf(arm Arm) core.Stack {
	switch arm {
	case ArmCredit:
		return core.Credit
	case ArmRTXenA, ArmRTXenB:
		return core.RTXen
	default:
		return core.RTVirt
	}
}

// mcServer returns the memcached VM's server interface for RT-Xen arms.
func mcServer(arm Arm) hv.Reservation {
	if arm == ArmRTXenA {
		return hv.Reservation{Budget: simtime.Micros(66), Period: simtime.Micros(283)}
	}
	return hv.Reservation{Budget: simtime.Micros(33), Period: simtime.Micros(177)}
}

// costsFor models each framework's measured scheduler path lengths: the
// per-decision and per-switch CPU costs that make Table 4's dedicated-CPU
// latencies differ across schedulers. Values are calibrated to reproduce
// the shape of Table 4 (Credit ≫ RT-Xen ≥ RTVirt); see EXPERIMENTS.md.
func costsFor(arm Arm) hv.CostModel {
	c := hv.DefaultCosts()
	switch arm {
	case ArmCredit:
		c.ScheduleBase = hv.ConstCost(simtime.Micros(30))
		c.SetContextSwitch(hv.ConstCost(simtime.Micros(30)))
	case ArmRTXenA, ArmRTXenB:
		c.ScheduleBase = hv.ConstCost(simtime.Micros(3))
		c.SetContextSwitch(hv.ConstCost(simtime.Micros(4)))
	default: // RTVirt: event-driven minimal path (DefaultCosts)
	}
	return c
}

// newMemcachedSystem builds a host for one arm with the §4.4 scheduler
// parameters (Credit: timeslice 1ms, ratelimit 500µs).
func newMemcachedSystem(arm Arm, pcpus int, seed uint64) *core.System {
	cfg := core.DefaultConfig(stackOf(arm))
	cfg.PCPUs = pcpus
	cfg.Seed = seed
	cfg.Costs = costsFor(arm)
	cfg.Credit.Timeslice = simtime.Millis(1)
	cfg.Credit.Ratelimit = simtime.Micros(500)
	return core.NewSystem(cfg)
}

// addMemcachedVM creates the memcached VM appropriate for the arm and
// attaches the Mutilate workload.
func addMemcachedVM(sys *core.System, arm Arm, id int, mcWeight int) *workload.Memcached {
	cfg := workload.DefaultMemcachedConfig()
	switch arm {
	case ArmCredit:
		gg := mustGuest(sys.NewWeightedGuest(fmt.Sprintf("mc%d", id), 1, mcWeight))
		mc, err := workload.NewMemcached(gg, 1000+id, cfg)
		must(err)
		return mc
	case ArmRTXenA, ArmRTXenB:
		gg := mustGuest(sys.NewServerGuest(fmt.Sprintf("mc%d", id), []hv.Reservation{mcServer(arm)}, 256))
		mc, err := workload.NewMemcached(gg, 1000+id, cfg)
		must(err)
		return mc
	default: // RTVirt: reservation derived from the registered slice, no slack
		zero := simtime.Duration(0)
		gg := mustGuest(sys.NewGuestOpts(fmt.Sprintf("mc%d", id), core.GuestOpts{VCPUs: 1, Slack: &zero}))
		mc, err := workload.NewMemcached(gg, 1000+id, cfg)
		must(err)
		return mc
	}
}

// Table4Row is one scheduler's dedicated-CPU tail latencies.
type Table4Row struct {
	Scheduler           Arm
	P90, P95, P99, P999 simtime.Duration
	Requests            int
}

// Table4 reproduces Table 4: the memcached VM alone on a dedicated CPU
// under each scheduler, measuring request tail latency. These are the
// measurements §4.4 uses to derive each framework's VM configuration.
func Table4(seed uint64, duration simtime.Duration) []Table4Row {
	return runner.Map(0, []Arm{ArmCredit, ArmRTXenA, ArmRTVirt}, func(arm Arm) Table4Row {
		sys := newMemcachedSystem(arm, 1, seed)
		var mc *workload.Memcached
		cfg := workload.DefaultMemcachedConfig()
		switch arm {
		case ArmCredit:
			g := mustGuest(sys.NewWeightedGuest("mc", 1, 256))
			m, err := workload.NewMemcached(g, 0, cfg)
			must(err)
			mc = m
		case ArmRTXenA:
			// Dedicated CPU: an unconstrained full server.
			g := mustGuest(sys.NewServerGuest("mc",
				[]hv.Reservation{{Budget: simtime.Micros(450), Period: simtime.Micros(500)}}, 256))
			m, err := workload.NewMemcached(g, 0, cfg)
			must(err)
			mc = m
		default:
			zero := simtime.Duration(0)
			g := mustGuest(sys.NewGuestOpts("mc", core.GuestOpts{VCPUs: 1, Slack: &zero}))
			// On the dedicated CPU the reservation can cover the whole SLO.
			c := cfg
			c.Slice = simtime.Micros(450)
			m, err := workload.NewMemcached(g, 0, c)
			must(err)
			mc = m
		}
		sys.Start()
		mc.Start(0)
		sys.Run(duration)
		name := arm
		if arm == ArmRTXenA {
			name = "RT-Xen"
		}
		return Table4Row{
			Scheduler: name,
			P90:       mc.Latency.Percentile(90),
			P95:       mc.Latency.Percentile(95),
			P99:       mc.Latency.Percentile(99),
			P999:      mc.Latency.Percentile(99.9),
			Requests:  mc.Latency.Count(),
		}
	})
}

// RenderTable4 formats the dedicated-CPU latency table.
func RenderTable4(rows []Table4Row) string {
	t := metrics.NewTable("Scheduler", "90th", "95th", "99th", "99.9th", "requests")
	for _, r := range rows {
		t.AddRow(string(r.Scheduler), r.P90.String(), r.P95.String(), r.P99.String(), r.P999.String(), r.Requests)
	}
	var b strings.Builder
	b.WriteString("Table 4 — memcached tail latency on a dedicated CPU\n")
	b.WriteString(t.String())
	return b.String()
}

// Figure5Row is one arm's outcome in a contention experiment.
type Figure5Row struct {
	Arm         Arm
	P999        simtime.Duration
	Mean        simtime.Duration
	SLOMet      bool
	Requests    int
	CDF         []metrics.CDFPoint
	AllocatedBW float64 // CPUs reserved for the memcached VM(s)
	// ClaimedCPUs is the whole-host claim of the offline analysis for the
	// RT-Xen arms in Figure 5b ("CSA requires both RT-Xen groups to have a
	// claimed bandwidth of 15 CPUs").
	ClaimedCPUs int
	// VideoMisses summarises the co-located periodic VMs (Figure 5b only).
	VideoMisses metrics.MissSummary
}

// Figure5Config tunes the contention experiments.
type Figure5Config struct {
	Seed     uint64
	Duration simtime.Duration
	SLO      simtime.Duration
}

// DefaultFigure5Config mirrors §4.4 (SLO 500µs).
func DefaultFigure5Config() Figure5Config {
	return Figure5Config{Seed: 1, Duration: 100 * simtime.Second, SLO: simtime.Micros(500)}
}

// Figure5a runs the non-RTA contention experiment: one memcached VM and 19
// CPU-bound VMs sharing two PCPUs, under each of the four arms (each an
// independent simulation, fanned out over runner.Default() workers).
func Figure5a(cfg Figure5Config) []Figure5Row {
	return runner.Map(0, Arms(), func(arm Arm) Figure5Row {
		sys := newMemcachedSystem(arm, 2, cfg.Seed)
		// Credit weights: the memcached VM gets 26% of the two CPUs
		// (130µs/500µs per §4.4); the remainder is spread over the hogs.
		mcWeight := 727
		mc := addMemcachedVM(sys, arm, 0, mcWeight)
		var hogs []*workload.CPUHog
		for i := 0; i < 19; i++ {
			var hg *workload.CPUHog
			var err error
			if arm == ArmCredit {
				g := mustGuest(sys.NewWeightedGuest(fmt.Sprintf("bg%d", i), 1, 256))
				hg, err = workload.NewCPUHog(g, 2000+i, fmt.Sprintf("hog%d", i))
			} else {
				g := mustGuest(sys.NewWeightedGuest(fmt.Sprintf("bg%d", i), 1, 256))
				hg, err = workload.NewCPUHog(g, 2000+i, fmt.Sprintf("hog%d", i))
			}
			must(err)
			hogs = append(hogs, hg)
		}
		sys.Start()
		mc.Start(0)
		for _, hg := range hogs {
			hg.Start(0)
		}
		sys.Run(cfg.Duration)
		row := Figure5Row{
			Arm:      arm,
			P999:     mc.Latency.Percentile(99.9),
			Mean:     mc.Latency.Mean(),
			Requests: mc.Latency.Count(),
			CDF:      mc.Latency.CDF(),
		}
		row.SLOMet = row.P999 <= cfg.SLO
		row.AllocatedBW = mcAllocated(arm)
		return row
	})
}

// mcAllocated reports the bandwidth reserved for one memcached VM.
func mcAllocated(arm Arm) float64 {
	switch arm {
	case ArmCredit:
		return 0.26 // weight share per §4.4
	case ArmRTXenA:
		return 66.0 / 283.0
	case ArmRTXenB:
		return 33.0 / 177.0
	default:
		return 58.0 / 500.0
	}
}

// Figure5b runs the periodic contention experiment: five memcached VMs and
// ten video-streaming VMs (3×24, 3×30, 2×48, 2×60 fps) on 15 PCPUs.
func Figure5b(cfg Figure5Config) []Figure5Row {
	fpsMix := []int{24, 24, 24, 30, 30, 30, 48, 48, 60, 60}
	return runner.Map(0, Arms(), func(arm Arm) Figure5Row {
		sys := newMemcachedSystem(arm, 15, cfg.Seed)
		var mcs []*workload.Memcached
		for i := 0; i < 5; i++ {
			mcs = append(mcs, addMemcachedVM(sys, arm, i, 727))
		}
		var videos []*workload.VideoStream
		for i, fps := range fpsMix {
			prof, _ := workload.ProfileFor(fps)
			name := fmt.Sprintf("video%d-%dfps", i, fps)
			var vs *workload.VideoStream
			var err error
			switch arm {
			case ArmCredit:
				// §4.4 reports Credit "allocating" 8.16 CPUs to these VMs:
				// the weight-derived shares are enforced as Xen caps at
				// 105% of each VM's bandwidth need.
				weight := int(1000 * prof.Bandwidth)
				cap := hv.Reservation{
					Budget: simtime.Duration(1.05 * prof.Bandwidth * float64(simtime.Millis(10))),
					Period: simtime.Millis(10),
				}
				if cap.Budget > cap.Period {
					cap.Budget = cap.Period
				}
				g := mustGuest(sys.NewServerGuest(name, []hv.Reservation{cap}, weight))
				vs, err = workload.NewVideoStream(g, 3000+i, fps)
			case ArmRTXenA, ArmRTXenB:
				iface := videoInterface(fps)
				g := mustGuest(sys.NewServerGuest(name, []hv.Reservation{iface}, 256))
				vs, err = workload.NewVideoStream(g, 3000+i, fps)
			default:
				g := mustGuest(sys.NewGuest(name, 1))
				vs, err = workload.NewVideoStream(g, 3000+i, fps)
			}
			must(err)
			videos = append(videos, vs)
		}
		sys.Start()
		for _, mc := range mcs {
			mc.Start(0)
		}
		for _, vs := range videos {
			vs.App.Start(0)
		}
		sys.Run(cfg.Duration)

		var agg metrics.LatencyRecorder
		for _, mc := range mcs {
			agg.Merge(&mc.Latency)
		}
		row := Figure5Row{
			Arm:      arm,
			P999:     agg.Percentile(99.9),
			Mean:     agg.Mean(),
			Requests: agg.Count(),
			CDF:      agg.CDF(),
		}
		row.SLOMet = row.P999 <= cfg.SLO
		row.AllocatedBW = 5 * mcAllocated(arm)
		row.VideoMisses = videoMissSummary(videos)
		if arm == ArmRTXenA || arm == ArmRTXenB {
			var cfgs []csa.VMConfig
			for i := 0; i < 5; i++ {
				s := mcServer(arm)
				cfgs = append(cfgs, csa.VMConfig{VCPUs: []csa.Interface{{Period: s.Period, Budget: s.Budget}}})
			}
			for _, fps := range fpsMix {
				r := videoInterface(fps)
				cfgs = append(cfgs, csa.VMConfig{VCPUs: []csa.Interface{{Period: r.Period, Budget: r.Budget}}})
			}
			if claimed, ok := csa.GEDFClaimedCPUs(cfgs, 64); ok {
				row.ClaimedCPUs = claimed
			}
		}
		return row
	})
}

// videoIfaceCache memoises the per-fps CSA interfaces. The mutex makes the
// memoiser safe to call from concurrent runner workers (the cached value is
// a pure function of fps, so which worker fills it is immaterial).
var (
	videoIfaceMu    sync.Mutex
	videoIfaceCache = map[int]hv.Reservation{}
)

// videoInterface is the CSA interface used for a video VM under RT-Xen,
// computed at 500µs budget resolution over millisecond candidate periods.
func videoInterface(fps int) hv.Reservation {
	videoIfaceMu.Lock()
	defer videoIfaceMu.Unlock()
	if r, ok := videoIfaceCache[fps]; ok {
		return r
	}
	prof, ok := workload.ProfileFor(fps)
	if !ok {
		panic(fmt.Sprintf("experiments: no profile for %d fps", fps))
	}
	tasks := []task.Params{prof.Params}
	iface, ok := csa.BestInterfaceQ(tasks, csa.DefaultCandidates(tasks), simtime.Micros(500))
	if !ok {
		panic(fmt.Sprintf("experiments: no CSA interface for %d fps", fps))
	}
	r := hv.Reservation{Budget: iface.Budget, Period: iface.Period}
	videoIfaceCache[fps] = r
	return r
}

// videoMissSummary aggregates deadline outcomes over the streaming VMs.
func videoMissSummary(videos []*workload.VideoStream) metrics.MissSummary {
	var tasks []*task.Task
	for _, vs := range videos {
		tasks = append(tasks, vs.App.Task)
	}
	return workload.MissSummary(tasks)
}

// RenderFigure5 formats one contention experiment's rows.
func RenderFigure5(label string, rows []Figure5Row, slo simtime.Duration) string {
	t := metrics.NewTable("Arm", "p99.9", "mean", "SLO met", "mc BW (CPUs)", "claimed", "requests", "video miss %")
	for _, r := range rows {
		claimed := "-"
		if r.ClaimedCPUs > 0 {
			claimed = fmt.Sprintf("%d", r.ClaimedCPUs)
		}
		t.AddRow(string(r.Arm), r.P999.String(), r.Mean.String(),
			fmt.Sprintf("%v", r.SLOMet), fmt.Sprintf("%.3f", r.AllocatedBW),
			claimed, r.Requests, fmt.Sprintf("%.2f", 100*r.VideoMisses.Ratio()))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — memcached tail latency under contention (SLO %v)\n", label, slo)
	b.WriteString(t.String())
	return b.String()
}

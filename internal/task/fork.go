package task

import "rtvirt/internal/clone"

// Clone deep-copies a task for a forked simulation, memoized in ctx so the
// guest OS, the hypervisor (via the current job), and workloads all land on
// the same copy. OnJobDone is deliberately NOT carried over: it is a
// closure owned by whichever workload drives the task, and that workload's
// ForkHandler re-installs a callback bound to its own cloned recorder.
// Tasks driven outside a registered workload lose their callback on fork.
func Clone(ctx *clone.Ctx, t *Task) *Task {
	if t == nil {
		return nil
	}
	if n, ok := ctx.Lookup(t); ok {
		return n.(*Task)
	}
	nt := &Task{}
	*nt = *t
	nt.OnJobDone = nil
	ctx.Put(t, nt)
	return nt
}

// CloneJob deep-copies a job (and, transitively, its task) for a forked
// simulation, memoized in ctx.
func CloneJob(ctx *clone.Ctx, j *Job) *Job {
	if j == nil {
		return nil
	}
	if n, ok := ctx.Lookup(j); ok {
		return n.(*Job)
	}
	nj := &Job{}
	*nj = *j
	ctx.Put(j, nj)
	nj.Task = Clone(ctx, j.Task)
	return nj
}

package runner

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestBarrierPoolRounds(t *testing.T) {
	const workers = 3
	const rounds = 2000
	var counts [workers]atomic.Int64
	bp := NewBarrierPool(workers, func(w int) {
		counts[w].Add(1)
	})
	defer bp.Close()

	local := 0
	for r := 0; r < rounds; r++ {
		bp.Round(func() { local++ })
	}
	if local != rounds {
		t.Fatalf("local share ran %d times, want %d", local, rounds)
	}
	for w := range counts {
		if got := counts[w].Load(); got != rounds {
			t.Fatalf("worker %d ran %d rounds, want %d", w, got, rounds)
		}
	}
}

// TestBarrierPoolSharedState checks the happens-before edges the window
// loop relies on: plain writes by the coordinator before Round are seen
// by workers, and plain writes by workers are seen after Round returns.
func TestBarrierPoolSharedState(t *testing.T) {
	const workers = 4
	in := make([]int, workers)
	out := make([]int, workers)
	bp := NewBarrierPool(workers, func(w int) {
		out[w] = in[w] * 2
	})
	defer bp.Close()

	for r := 1; r <= 500; r++ {
		for w := range in {
			in[w] = r + w
		}
		bp.Round(nil)
		for w := range out {
			if out[w] != 2*(r+w) {
				t.Fatalf("round %d worker %d: out=%d want %d", r, w, out[w], 2*(r+w))
			}
		}
	}
}

func TestBarrierPoolPanicLowestWorker(t *testing.T) {
	bp := NewBarrierPool(3, func(w int) {
		if w >= 1 {
			panic("boom")
		}
	})
	defer bp.Close()

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic was not re-raised")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "barrier worker 1 panicked") {
			t.Fatalf("unexpected panic value %v, want lowest worker (1) reported", r)
		}
	}()
	bp.Round(nil)
}

// A panic in the coordinator's local share must still join the workers
// before propagating, so the pool stays reusable.
func TestBarrierPoolLocalPanicJoins(t *testing.T) {
	var ran atomic.Int64
	bp := NewBarrierPool(2, func(w int) { ran.Add(1) })
	defer bp.Close()

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("local panic swallowed")
			}
		}()
		bp.Round(func() { panic("local") })
	}()
	if got := ran.Load(); got != 2 {
		t.Fatalf("workers ran %d shares before local panic propagated, want 2", got)
	}
	// The pool must still work after the panic round.
	bp.Round(nil)
	if got := ran.Load(); got != 4 {
		t.Fatalf("workers ran %d shares after reuse, want 4", got)
	}
}

func TestBarrierPoolSizeFloor(t *testing.T) {
	bp := NewBarrierPool(0, func(w int) {})
	defer bp.Close()
	if bp.Size() != 1 {
		t.Fatalf("Size()=%d, want 1 for n<1", bp.Size())
	}
	bp.Round(nil)
}

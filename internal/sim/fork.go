package sim

import (
	"fmt"

	"rtvirt/internal/clone"
	"rtvirt/internal/eventq"
	"rtvirt/internal/simtime"
)

// Payload is the typed, closure-free event form (see eventq.Payload). Every
// layer that wants its pending timers to survive a Fork schedules payloads
// via PostAt/PostAfter instead of closures via At/After.
type Payload = eventq.Payload

// Handler receives typed events and participates in forking. Each stateful
// layer (the hypervisor, each host scheduler, each guest OS, workloads, the
// cluster manager) registers itself once and routes its timers through its
// handler ID.
type Handler interface {
	// HandleSimEvent is invoked when a payload event scheduled with this
	// handler's ID fires.
	HandleSimEvent(now simtime.Time, ev Payload)
	// ForkHandler returns this handler's deep copy for a forked simulation.
	// Implementations must be memo-aware: consult ctx first and return the
	// existing clone if another layer already forked this handler (e.g. the
	// host forks its scheduler and guest drivers while cloning VMs), and
	// Put the clone into ctx before filling reference fields so cycles
	// terminate. ForkHandler must not mutate the original.
	ForkHandler(ctx *clone.Ctx) Handler
}

// RegisterHandler adds h to the simulator's dispatch table and returns its
// stable ID, to be stored in Payload.Handler. Registration order defines
// the ID and is preserved across Fork, so payloads pending at fork time
// reach the forked handler of the same layer.
func (s *Simulator) RegisterHandler(h Handler) int32 {
	if h == nil {
		panic("sim: RegisterHandler with nil handler")
	}
	s.handlers = append(s.handlers, h)
	return int32(len(s.handlers) - 1)
}

// dispatch routes a fired payload event to its handler.
func (s *Simulator) dispatch(now simtime.Time, p Payload) {
	if p.Handler < 0 || int(p.Handler) >= len(s.handlers) {
		panic(fmt.Sprintf("sim: payload event for unregistered handler %d", p.Handler))
	}
	s.handlers[p.Handler].HandleSimEvent(now, p)
}

// Fork deep-copies the simulator: clock, event counter, RNG stream, the
// pending-event queue (bit-exact (at, seq) pairs and seq counter, so the
// fork fires the same events in the same order), and every registered
// handler. The copy and the original then evolve independently; running
// the fork is bit-identical to running the original from the same instant.
//
// Fork fails if any pending event carries a closure — closures capture the
// old world, so layers that want forkability must schedule typed payloads.
// Objects outside the handler graph that hold simulator references (tasks,
// metrics recorders) are cloned transitively through ctx by the handlers
// that own them.
func (s *Simulator) Fork(ctx *clone.Ctx) (*Simulator, error) {
	if s.inStep {
		panic("sim: Fork from inside an event callback")
	}
	ns := &Simulator{now: s.now, fired: s.fired, rng: s.rng.Clone(), seed: s.seed}
	ctx.Put(s, ns)
	ctx.Put(s.rng, ns.rng)
	ns.q.Dispatch = ns.dispatch
	if err := s.q.CloneInto(&ns.q, ctx); err != nil {
		return nil, err
	}
	// Handlers clone in registration order; earlier layers (the host) pull
	// later ones (schedulers, guest drivers) through ctx as they reach
	// them, so by the time the loop arrives most entries are memo hits.
	ns.handlers = make([]Handler, len(s.handlers))
	for i, h := range s.handlers {
		ns.handlers[i] = h.ForkHandler(ctx)
	}
	return ns, nil
}

package rtvirt_test

import (
	"fmt"
	"strings"
	"testing"

	"rtvirt"
)

// TestPublicAPIQuickstart exercises the README's quick-start path through
// the public facade.
func TestPublicAPIQuickstart(t *testing.T) {
	cfg := rtvirt.DefaultConfig(rtvirt.StackRTVirt)
	cfg.PCPUs = 1
	sys := rtvirt.NewSystem(cfg)
	vm, err := sys.NewGuest("vm0", 1)
	if err != nil {
		t.Fatal(err)
	}
	app, err := rtvirt.NewRTApp(vm, 0, "sensor",
		rtvirt.Params{Slice: 2 * rtvirt.Millisecond, Period: 10 * rtvirt.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	app.Start(0)
	sys.Run(10 * rtvirt.Second)
	st := app.Task.Stats()
	if st.Missed != 0 || st.Completed < 990 {
		t.Fatalf("quickstart stats: %+v", st)
	}
}

// TestPublicAPIAnalysis exercises the CSA helpers through the facade.
func TestPublicAPIAnalysis(t *testing.T) {
	tasks := []rtvirt.Params{{Slice: 23 * rtvirt.Millisecond, Period: 30 * rtvirt.Millisecond}}
	iface, ok := rtvirt.BestInterface(tasks, rtvirt.InterfaceCandidates(tasks), rtvirt.Millisecond)
	if !ok {
		t.Fatal("no interface")
	}
	if iface.Bandwidth() < 23.0/30.0 {
		t.Fatalf("interface below task bandwidth: %v", iface)
	}
}

// TestPublicAPIMemcached exercises the workload facade.
func TestPublicAPIMemcached(t *testing.T) {
	cfg := rtvirt.DefaultConfig(rtvirt.StackRTVirt)
	cfg.PCPUs = 1
	sys := rtvirt.NewSystem(cfg)
	zero := rtvirt.Duration(0)
	vm, err := sys.NewGuestOpts("mc", rtvirt.GuestOpts{VCPUs: 1, Slack: &zero})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := rtvirt.NewMemcached(vm, 0, rtvirt.DefaultMemcachedConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	mc.Start(0)
	sys.Run(20 * rtvirt.Second)
	if mc.Latency.Count() < 1500 {
		t.Fatalf("served %d requests", mc.Latency.Count())
	}
	if p := mc.Latency.Percentile(99.9); p > 500*rtvirt.Microsecond {
		t.Fatalf("p99.9 = %v on an idle host", p)
	}
}

// ExampleNewSystem demonstrates the minimal RTVirt program.
func ExampleNewSystem() {
	cfg := rtvirt.DefaultConfig(rtvirt.StackRTVirt)
	cfg.PCPUs = 1
	sys := rtvirt.NewSystem(cfg)
	vm, _ := sys.NewGuest("vm0", 1)
	app, _ := rtvirt.NewRTApp(vm, 0, "sensor",
		rtvirt.Params{Slice: 2 * rtvirt.Millisecond, Period: 10 * rtvirt.Millisecond})
	sys.Start()
	app.Start(0)
	sys.Run(rtvirt.Second)
	st := app.Task.Stats()
	fmt.Printf("completed %d jobs, missed %d deadlines\n", st.Completed, st.Missed)
	// Output: completed 100 jobs, missed 0 deadlines
}

// TestPublicAPIIOApp exercises the I/O workload through the facade.
func TestPublicAPIIOApp(t *testing.T) {
	cfg := rtvirt.DefaultConfig(rtvirt.StackRTVirt)
	cfg.PCPUs = 1
	sys := rtvirt.NewSystem(cfg)
	zero := rtvirt.Duration(0)
	vm, err := sys.NewGuestOpts("io", rtvirt.GuestOpts{VCPUs: 1, Slack: &zero})
	if err != nil {
		t.Fatal(err)
	}
	app, err := rtvirt.NewIOApp(vm, 0, rtvirt.DefaultIOAppConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	app.Start(0)
	sys.Run(10 * rtvirt.Second)
	if app.Latency.Count() < 1000 || app.SLOViolations != 0 {
		t.Fatalf("io app: served=%d violations=%d", app.Latency.Count(), app.SLOViolations)
	}
}

// TestPublicAPICluster exercises the multi-host facade.
func TestPublicAPICluster(t *testing.T) {
	c := rtvirt.NewCluster(rtvirt.ClusterDefaults())
	d, err := c.Place(rtvirt.VMSpec{
		Name:  "vm",
		VCPUs: 1,
		Tasks: []rtvirt.ClusterTaskSpec{{
			Name:   "t",
			Kind:   rtvirt.Periodic,
			Params: rtvirt.Params{Slice: 2 * rtvirt.Millisecond, Period: 10 * rtvirt.Millisecond},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Run(2 * rtvirt.Second)
	if _, err := c.Migrate("vm", nil); err != nil {
		t.Fatal(err)
	}
	c.Run(2 * rtvirt.Second)
	if d.Migrations != 1 {
		t.Fatalf("migrations = %d", d.Migrations)
	}
	if st := d.Tasks()[0].Stats(); st.Completed < 300 {
		t.Fatalf("completed = %d", st.Completed)
	}
}

// TestPublicAPITraceAndQuantile exercises the tracer and the streaming
// quantile through the facade.
func TestPublicAPITraceAndQuantile(t *testing.T) {
	cfg := rtvirt.DefaultConfig(rtvirt.StackRTVirt)
	cfg.PCPUs = 1
	sys := rtvirt.NewSystem(cfg)
	rec := &rtvirt.TraceRecorder{Max: 10000}
	rtvirt.AttachTracer(sys, rec)
	vm, _ := sys.NewGuest("vm", 1)
	app, _ := rtvirt.NewRTApp(vm, 0, "t",
		rtvirt.Params{Slice: rtvirt.Millisecond, Period: 10 * rtvirt.Millisecond})
	q := rtvirt.NewP2Quantile(0.99)
	app.Task.OnJobDone = func(j *rtvirt.Job) { q.Add(j.Finish.Sub(j.Release)) }
	sys.Start()
	app.Start(0)
	sys.Run(5 * rtvirt.Second)
	if rec.Len() == 0 {
		t.Fatal("no trace records")
	}
	if v := q.Value(); v < 900*rtvirt.Microsecond || v > 1100*rtvirt.Microsecond {
		t.Fatalf("p99 response = %v, want ≈1ms", v)
	}
	sum := rtvirt.SummarizeTrace(rec)
	v := sum.VCPUs["vm/0"]
	if v == nil || v.Run == 0 || v.Completions == 0 {
		t.Fatalf("trace summary: %+v", sum.VCPUs)
	}
	if v.Migrations != 0 {
		t.Fatalf("single-PCPU run migrated %d times", v.Migrations)
	}
}

// TestPublicAPIScenario drives the declarative scenario path end to end:
// parse JSON, admission-check it offline, then simulate and confirm the
// analyzer's verdict holds.
func TestPublicAPIScenario(t *testing.T) {
	const doc = `{
	  "stack": "rtvirt", "pcpus": 2, "seconds": 2, "seed": 7,
	  "vms": [{
	    "name": "ctl-vm", "vcpus": 1,
	    "tasks": [
	      {"name": "ctl", "kind": "periodic", "slice_us": 2000, "period_us": 10000},
	      {"name": "log", "kind": "background"}
	    ]
	  }]
	}`
	sc, err := rtvirt.ParseScenario(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}

	plan, err := rtvirt.AnalyzeScenario(sc, rtvirt.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.RTVirtAdmitted || !plan.RTXenAdmitted {
		t.Fatalf("admission: %+v", plan)
	}
	if len(plan.VMs) != 1 || len(plan.VMs[0].RTVirt) != 1 || plan.VMs[0].Background != 1 {
		t.Fatalf("plan: %+v", plan.VMs)
	}

	res, err := rtvirt.RunScenario(sc, rtvirt.ScenarioOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Tasks {
		if tr.Name == "ctl" && tr.Stats.Missed != 0 {
			t.Fatalf("admitted task missed %d deadlines", tr.Stats.Missed)
		}
	}
	// The simulator reserves what the analyzer predicted.
	if got, want := res.AllocatedBW, plan.RTVirtAllocated; got < want-0.01 || got > want+0.01 {
		t.Fatalf("reserved %.3f CPUs, analyzer predicted %.3f", got, want)
	}
}

// TestPublicAPIScenarioRejectsBadJSON covers the error path.
func TestPublicAPIScenarioRejectsBadJSON(t *testing.T) {
	if _, err := rtvirt.ParseScenario(strings.NewReader(`{"unknown_field": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

// TestPublicAPIWorkloadZoo exercises every workload constructor and helper
// the facade re-exports, on one mixed host.
func TestPublicAPIWorkloadZoo(t *testing.T) {
	cfg := rtvirt.DefaultConfig(rtvirt.StackRTVirt)
	cfg.PCPUs = 4
	cfg.Costs = rtvirt.DefaultCosts()
	sys := rtvirt.NewSystem(cfg)

	vidVM, err := sys.NewGuest("video", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rtvirt.VideoProfiles()) == 0 {
		t.Fatal("no Table-3 profiles")
	}
	vid, err := rtvirt.NewVideoStream(vidVM, 0, 30)
	if err != nil {
		t.Fatal(err)
	}

	srvVM, err := sys.NewGuest("server", 1)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := rtvirt.NewSporadicClient(srvVM, 1, "rpc",
		rtvirt.Params{Slice: 200 * rtvirt.Microsecond, Period: 5 * rtvirt.Millisecond},
		rtvirt.UniformDist(10*rtvirt.Millisecond, 30*rtvirt.Millisecond), 50)
	if err != nil {
		t.Fatal(err)
	}
	burst := rtvirt.NewTask(2, "burst", rtvirt.Sporadic,
		rtvirt.Params{Slice: 100 * rtvirt.Microsecond, Period: 10 * rtvirt.Millisecond})
	if err := srvVM.Register(burst); err != nil {
		t.Fatal(err)
	}
	bc := rtvirt.AttachSporadicClient(srvVM, burst,
		rtvirt.NormalDist(20*rtvirt.Millisecond, 2*rtvirt.Millisecond, 15*rtvirt.Millisecond), 30)

	bgVM, err := sys.NewGuest("batch", 1)
	if err != nil {
		t.Fatal(err)
	}
	hog, err := rtvirt.NewCPUHog(bgVM, 3, "hog")
	if err != nil {
		t.Fatal(err)
	}
	if bg := rtvirt.NewBackgroundTask(4, "bg"); bg.Kind != rtvirt.Background {
		t.Fatalf("background task kind = %v", bg.Kind)
	}

	sys.Start()
	vid.App.Start(0)
	sp.Start(0)
	bc.Start(0)
	hog.Start(0)
	sys.Run(2 * rtvirt.Second)

	if sp.Sent() != 50 || bc.Sent() != 30 {
		t.Fatalf("clients sent %d/%d requests", sp.Sent(), bc.Sent())
	}
	sum := rtvirt.SummarizeMisses([]*rtvirt.Task{vid.App.Task, sp.Task, burst})
	if sum.Tasks != 3 || sum.Released == 0 {
		t.Fatalf("summary: %+v", sum)
	}
	if sum.Missed != 0 {
		t.Fatalf("admitted mixed workload missed %d deadlines", sum.Missed)
	}
	if hog.Task.Stats().TotalWork == 0 {
		t.Fatal("background hog never ran")
	}
}

package credit

import (
	"fmt"
	"testing"

	"rtvirt/internal/guest"
	"rtvirt/internal/hv"
	"rtvirt/internal/metrics"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

func ms(n int64) simtime.Duration { return simtime.Millis(n) }

func newRig(t *testing.T, pcpus int, cfg Config) (*sim.Simulator, *hv.Host) {
	t.Helper()
	s := sim.New(9)
	h := hv.NewHost(s, pcpus, New(cfg), hv.CostModel{})
	return s, h
}

func newVM(t *testing.T, h *hv.Host, name string, weight int) *guest.OS {
	t.Helper()
	cfg := guest.Config{CrossLayer: false, VCPUCapacity: 1e9}
	g, err := guest.NewOS(h, name, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddVCPU(hv.Reservation{Period: ms(10)}, weight); err != nil {
		t.Fatal(err)
	}
	return g
}

func startHog(s *sim.Simulator, g *guest.OS, tk *task.Task) {
	s.After(0, func(now simtime.Time) { g.ReleaseJob(tk, simtime.Seconds(10000)) })
}

func TestProportionalShareByWeight(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TickCost = 0
	s, h := newRig(t, 1, cfg)
	gA := newVM(t, h, "heavy", 512)
	gB := newVM(t, h, "light", 256)
	hogA := task.NewBackground(0, "a")
	hogB := task.NewBackground(1, "b")
	if err := gA.Register(hogA); err != nil {
		t.Fatal(err)
	}
	if err := gB.Register(hogB); err != nil {
		t.Fatal(err)
	}
	h.Start()
	startHog(s, gA, hogA)
	startHog(s, gB, hogB)
	s.RunFor(simtime.Seconds(10))
	h.Sync()
	runA, runB := gA.VM().TotalRun(), gB.VM().TotalRun()
	ratio := float64(runA) / float64(runB)
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("share ratio = %.2f, want ≈2.0 (weights 512:256); runs %v vs %v",
			ratio, runA, runB)
	}
	total := runA + runB
	if total < simtime.Millis(9500) || total > simtime.Seconds(10) {
		t.Fatalf("work-conservation broken: total run %v of 10s", total)
	}
}

func TestBoostGivesLowWakeLatency(t *testing.T) {
	// A mostly-idle latency-sensitive VM against one CPU hog: the BOOST
	// path must deliver sub-timeslice wake latency.
	cfg := DefaultConfig()
	cfg.TickCost = 0
	s, h := newRig(t, 1, cfg)
	gL := newVM(t, h, "latency", 256)
	gH := newVM(t, h, "hog", 256)
	srv := task.New(0, "srv", task.Sporadic, task.Params{Slice: simtime.Micros(100), Period: ms(10)})
	if err := gL.RegisterOn(srv, 0); err != nil {
		t.Fatal(err)
	}
	hog := task.NewBackground(1, "hog")
	if err := gH.Register(hog); err != nil {
		t.Fatal(err)
	}
	var lat metrics.LatencyRecorder
	srv.OnJobDone = func(j *task.Job) { lat.Add(j.Finish.Sub(j.Release)) }
	h.Start()
	startHog(s, gH, hog)
	for i := int64(0); i < 100; i++ {
		at := simtime.Time(ms(13*i + 3))
		s.At(at, func(now simtime.Time) { gL.ReleaseJob(srv, 0) })
	}
	s.RunFor(simtime.Seconds(2))
	// With BOOST the request preempts the hog after at most the ratelimit.
	if p50 := lat.Percentile(50); p50 > cfg.Ratelimit+simtime.Micros(200) {
		t.Fatalf("median wake latency %v exceeds ratelimit+service", p50)
	}
}

func TestRatelimitDefersPreemption(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TickCost = 0
	cfg.Ratelimit = ms(1)
	s, h := newRig(t, 1, cfg)
	gL := newVM(t, h, "latency", 256)
	gH := newVM(t, h, "hog", 256)
	srv := task.New(0, "srv", task.Sporadic, task.Params{Slice: simtime.Micros(10), Period: ms(10)})
	if err := gL.RegisterOn(srv, 0); err != nil {
		t.Fatal(err)
	}
	hog := task.NewBackground(1, "hog")
	if err := gH.Register(hog); err != nil {
		t.Fatal(err)
	}
	var lat metrics.LatencyRecorder
	srv.OnJobDone = func(j *task.Job) { lat.Add(j.Finish.Sub(j.Release)) }
	h.Start()
	startHog(s, gH, hog)
	// Release right after the hog's dispatch so the ratelimit must delay us.
	s.At(simtime.Time(ms(30)+simtime.Micros(100)), func(now simtime.Time) { gL.ReleaseJob(srv, 0) })
	s.RunFor(simtime.Seconds(1))
	if lat.Count() != 1 {
		t.Fatalf("request not served: %d", lat.Count())
	}
	got := lat.Max()
	if got < simtime.Micros(800) {
		t.Fatalf("latency %v too small; ratelimit should defer preemption", got)
	}
	if got > ms(2) {
		t.Fatalf("latency %v too large; boost should run after ratelimit", got)
	}
}

func TestOverStateStarvesTail(t *testing.T) {
	// One latency VM against many hogs on one PCPU: when requests arrive
	// while the VM is OVER (credits spent), they wait for round-robin of
	// the hogs — the long-tail effect of Figure 5a.
	cfg := DefaultConfig()
	cfg.Timeslice = ms(1)
	cfg.Ratelimit = simtime.Micros(500)
	cfg.TickCost = 0
	s, h := newRig(t, 1, cfg)
	gL := newVM(t, h, "mc", 256)
	srv := task.New(0, "srv", task.Sporadic, task.Params{Slice: ms(2), Period: ms(100)})
	if err := gL.RegisterOn(srv, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		g := newVM(t, h, fmt.Sprintf("hog%d", i), 256)
		hog := task.NewBackground(10+i, "hog")
		if err := g.Register(hog); err != nil {
			t.Fatal(err)
		}
		startHog(s, g, hog)
	}
	var lat metrics.LatencyRecorder
	srv.OnJobDone = func(j *task.Job) { lat.Add(j.Finish.Sub(j.Release)) }
	h.Start()
	// Burst of back-to-back heavy requests to exhaust credits, then more.
	for i := int64(0); i < 200; i++ {
		s.At(simtime.Time(ms(5*i+1)), func(now simtime.Time) {
			if srv.EarliestNextRelease() <= now {
				gL.ReleaseJob(srv, 0)
			}
		})
	}
	s.RunFor(simtime.Seconds(2))
	if lat.Count() < 5 {
		t.Fatalf("too few requests served: %d", lat.Count())
	}
	if tail := lat.Max(); tail < ms(2) {
		t.Fatalf("max latency %v; expected multi-ms tail once OVER", tail)
	}
}

func TestTickCostCharged(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TickCost = simtime.Micros(20)
	s, h := newRig(t, 1, cfg)
	g := newVM(t, h, "busy", 256)
	hog := task.NewBackground(0, "hog")
	if err := g.Register(hog); err != nil {
		t.Fatal(err)
	}
	h.Start()
	startHog(s, g, hog)
	s.RunFor(simtime.Seconds(1))
	// ~100 ticks × 20µs = ~2ms of schedule time.
	if h.Overhead.ScheduleTime < simtime.Millis(1) {
		t.Fatalf("tick cost not charged: %v", h.Overhead.ScheduleTime)
	}
}

func TestAdmitRejectsZeroWeight(t *testing.T) {
	_, h := newRig(t, 1, DefaultConfig())
	cfg := guest.Config{CrossLayer: false}
	g, err := guest.NewOS(h, "vm", cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddVCPU(hv.Reservation{Period: ms(10)}, 0); err == nil {
		t.Fatal("zero weight admitted")
	}
}

func TestWorkConservingAcrossPCPUs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TickCost = 0
	s, h := newRig(t, 2, cfg)
	var guests []*guest.OS
	for i := 0; i < 2; i++ {
		g := newVM(t, h, fmt.Sprintf("vm%d", i), 256)
		hog := task.NewBackground(i, "hog")
		if err := g.Register(hog); err != nil {
			t.Fatal(err)
		}
		guests = append(guests, g)
		startHog(s, g, hog)
	}
	h.Start()
	s.RunFor(simtime.Seconds(2))
	h.Sync()
	for _, g := range guests {
		run := g.VM().TotalRun()
		if run < simtime.Millis(1900) {
			t.Fatalf("%s ran only %v of 2s; both PCPUs should be used", g.VM().Name, run)
		}
	}
}

package rtxen

import "rtvirt/internal/hv"

// runq is the global runqueue as an indexed 4-ary min-heap of VCPU IDs
// keyed by (deadline, ID): every admitted RT VCPU with budget appears here
// whether runnable or not, and each serverState carries its own heap
// index, so a replenishment moves its server with one O(log n) sift
// instead of the seed's O(n) remove + O(n) sorted re-insert. Holding IDs
// instead of *hv.VCPU keeps the traversals inside two flat arrays (the
// heap and the Scheduler's srv array): the comparisons pickEDF and rankOf
// perform never leave contiguous memory.
//
// RT-Xen as published keeps this queue as a sorted list and pays a linear
// scan per decision — that cost is what Table 6's schedule-time column
// measures. The model must keep charging it even though the heap no longer
// performs it, so the pick (pickEDF) and the rank query (rankOf) are
// pruned heap traversals that visit only the members an in-order scan
// would have examined: Decision.Work stays the 1-based rank of the chosen
// server in (deadline, ID) order, bit-identical to the seed's scan count.
//
// Methods take the srv slice (and, for pickEDF, the host's hot array) as a
// parameter rather than a back-pointer so the slice header is always the
// caller's current one.
type runq struct {
	v []int32
	// stack is the reusable traversal worklist for pickEDF/rankOf.
	stack []int32
}

const rqArity = 4

// rqLess orders servers by (deadline, ID); IDs are unique, so the order is
// total.
func (s *Scheduler) rqLess(a, b int32) bool {
	da, db := s.srv[a].deadline, s.srv[b].deadline
	if da != db {
		return da < db
	}
	return a < b
}

func rqLess(srv []serverState, a, b int32) bool {
	da, db := srv[a].deadline, srv[b].deadline
	if da != db {
		return da < db
	}
	return a < b
}

// Len reports the number of queued servers.
func (r *runq) Len() int { return len(r.v) }

// Push inserts id.
func (r *runq) Push(srv []serverState, id int32) {
	r.v = append(r.v, id)
	srv[id].heapIdx = int32(len(r.v) - 1)
	r.siftUp(srv, len(r.v)-1)
}

// Remove deletes id, which must be queued.
func (r *runq) Remove(srv []serverState, id int32) {
	i := int(srv[id].heapIdx)
	n := len(r.v) - 1
	last := r.v[n]
	r.v = r.v[:n]
	srv[id].heapIdx = -1
	if i == n {
		return
	}
	r.v[i] = last
	srv[last].heapIdx = int32(i)
	r.siftUp(srv, i)
	if int(srv[last].heapIdx) == i {
		r.siftDown(srv, i)
	}
}

// Fix restores heap order after id's deadline changed.
func (r *runq) Fix(srv []serverState, id int32) {
	i := int(srv[id].heapIdx)
	r.siftUp(srv, i)
	if int(srv[id].heapIdx) == i {
		r.siftDown(srv, i)
	}
}

func (r *runq) siftUp(srv []serverState, i int) {
	e := r.v[i]
	for i > 0 {
		p := (i - 1) / rqArity
		pe := r.v[p]
		if !rqLess(srv, e, pe) {
			break
		}
		r.v[i] = pe
		srv[pe].heapIdx = int32(i)
		i = p
	}
	r.v[i] = e
	srv[e].heapIdx = int32(i)
}

func (r *runq) siftDown(srv []serverState, i int) {
	e := r.v[i]
	n := len(r.v)
	for {
		c := rqArity*i + 1
		if c >= n {
			break
		}
		end := c + rqArity
		if end > n {
			end = n
		}
		m := c
		mc := r.v[c]
		for j := c + 1; j < end; j++ {
			if rqLess(srv, r.v[j], mc) {
				m, mc = j, r.v[j]
			}
		}
		if !rqLess(srv, mc, e) {
			break
		}
		r.v[i] = mc
		srv[mc].heapIdx = int32(i)
		i = m
	}
	r.v[i] = e
	srv[e].heapIdx = int32(i)
}

// pickEDF returns the earliest-deadline server that is runnable, has
// budget, and is not dispatched on another PCPU — the server the published
// scheduler's in-order scan would pick — or -1. The traversal descends only
// into subtrees that can still beat the best candidate found so far (heap
// order guarantees every descendant ranks after its parent), so its cost is
// O(rank) like the modeled scan, not O(n log n). Eligibility reads the
// host's flat hot array, never the VCPU structs.
func (r *runq) pickEDF(srv []serverState, hot []hv.VCPUHot, p int32) int32 {
	if len(r.v) == 0 {
		return -1
	}
	best := int32(-1)
	r.stack = append(r.stack[:0], 0)
	for len(r.stack) > 0 {
		i := r.stack[len(r.stack)-1]
		r.stack = r.stack[:len(r.stack)-1]
		id := r.v[i]
		if best >= 0 && !rqLess(srv, id, best) {
			continue // whole subtree ranks at or after best
		}
		hs := hot[id]
		if srv[id].budget > 0 && hs.Runnable && (hs.PCPU < 0 || hs.PCPU == p) {
			// Eligible: children all rank after id, so none can improve.
			best = id
			continue
		}
		for c := rqArity*int(i) + 1; c <= rqArity*int(i)+rqArity && c < len(r.v); c++ {
			r.stack = append(r.stack, int32(c))
		}
	}
	return best
}

// rankOf reports id's 1-based position in (deadline, ID) order: the number
// of queue members the sorted-list scan examines up to and including it.
// This is the honest entity count for the overhead model — the published
// algorithm touches exactly these members per decision, whatever data
// structure the simulator uses underneath.
func (r *runq) rankOf(srv []serverState, id int32) int {
	rank := 1
	r.stack = append(r.stack[:0], 0)
	for len(r.stack) > 0 {
		i := r.stack[len(r.stack)-1]
		r.stack = r.stack[:len(r.stack)-1]
		if !rqLess(srv, r.v[i], id) {
			continue
		}
		rank++
		for c := rqArity*int(i) + 1; c <= rqArity*int(i)+rqArity && c < len(r.v); c++ {
			r.stack = append(r.stack, int32(c))
		}
	}
	return rank
}

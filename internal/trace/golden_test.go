package trace_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// checkGolden compares got against testdata/<name>, rewriting the file
// when -update is set.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from %s (run with -update to refresh):\n got: %.600s\nwant: %.600s", path, got, want)
	}
}

package experiments

import (
	"fmt"
	"strings"

	"rtvirt/internal/core"
	"rtvirt/internal/csa"
	"rtvirt/internal/hv"
	"rtvirt/internal/metrics"
	"rtvirt/internal/runner"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
	"rtvirt/internal/trace"
	"rtvirt/internal/workload"
)

// Table6Scenario selects the scalability scenario of §4.5.
type Table6Scenario int

// Scenarios.
const (
	// MultiRTAVMs runs 10 RTAs per VM on 10 VMs (Table 6a).
	MultiRTAVMs Table6Scenario = iota
	// SingleRTAVMs runs 100 single-RTA VMs (Table 6b).
	SingleRTAVMs
)

// String implements fmt.Stringer.
func (s Table6Scenario) String() string {
	if s == MultiRTAVMs {
		return "Multi-RTA VMs"
	}
	return "Single-RTA VMs"
}

// Table6Row is one framework's overhead measurement in one scenario.
type Table6Row struct {
	Scenario      Table6Scenario
	Framework     string
	RTAsAdmitted  int
	RTAsRequested int
	VMs           int
	VCPUs         int
	ScheduleTime  simtime.Duration
	CtxSwitchTime simtime.Duration
	OverheadPct   float64
	Migrations    uint64
	Misses        metrics.MissSummary
	// Events tallies the arm's telemetry events by kind; the hypercall and
	// migration columns of the rendered table come from here and always
	// agree with the kernel's overhead meters (counter parity). Per-arm
	// counts merge deterministically across the parallel runner.
	Events trace.Counts
}

// Table6Config tunes the scalability experiment.
type Table6Config struct {
	Seed     uint64
	Duration simtime.Duration
	PCPUs    int
	// Parallel is the worker count for the two framework arms; <= 0 uses
	// runner.Default(). Results are identical at any setting.
	Parallel int
	// Costs overrides the platform cost model (nil = hv.DefaultCosts, the
	// paper's flat §4 constants). The fidelity ablation passes
	// hv.CalibratedCosts here.
	Costs *hv.CostModel
}

// DefaultTable6Config mirrors §4.5 (15 PCPUs; the paper's run length is
// unspecified, 30s keeps absolute times comparable in spirit).
func DefaultTable6Config() Table6Config {
	return Table6Config{Seed: 1, Duration: 30 * simtime.Second, PCPUs: 15}
}

// Table6 runs one scenario under both frameworks. The two arms are
// independent simulations and run on cfg.Parallel workers.
func Table6(scenario Table6Scenario, cfg Table6Config) []Table6Row {
	arms := []func(Table6Scenario, Table6Config) Table6Row{table6RTVirt, table6RTXen}
	return runner.Map(cfg.Parallel, arms, func(arm func(Table6Scenario, Table6Config) Table6Row) Table6Row {
		return arm(scenario, cfg)
	})
}

// table6RTVirt deploys the scenario on the RTVirt stack: tasks register
// online; guests hotplug VCPUs as needed.
func table6RTVirt(scenario Table6Scenario, cfg Table6Config) Table6Row {
	sysCfg := core.DefaultConfig(core.RTVirt)
	sysCfg.PCPUs = cfg.PCPUs
	sysCfg.Seed = cfg.Seed
	if cfg.Costs != nil {
		sysCfg.Costs = *cfg.Costs
	}
	sys := core.NewSystem(sysCfg)

	row := Table6Row{Scenario: scenario, Framework: "RTVirt"}
	// Count-only sink: O(kinds) memory, zero allocations per event, so the
	// 100-RTA runs can afford always-on event accounting.
	sys.Host.TraceTo(&row.Events)
	var tasks []*task.Task
	groups := Table5Groups()
	id := 0
	addTask := func(g guestRef, p task.Params, name string) {
		row.RTAsRequested++
		t := task.New(id, name, task.Periodic, p)
		id++
		if err := g.Register(t); err != nil {
			return
		}
		row.RTAsAdmitted++
		tasks = append(tasks, t)
	}
	if scenario == MultiRTAVMs {
		for gi, grp := range groups {
			g := mustGuest(sys.NewGuestOpts(fmt.Sprintf("vm%d", gi+1),
				core.GuestOpts{VCPUs: 1, MaxVCPUs: 6}))
			for k := 0; k < 10; k++ {
				addTask(g, grp.RTAs[0], fmt.Sprintf("g%d-rta%d", gi+1, k))
			}
		}
	} else {
		for gi, grp := range groups {
			for k := 0; k < 10; k++ {
				g := mustGuest(sys.NewGuest(fmt.Sprintf("vm%d-%d", gi+1, k), 1))
				addTask(g, grp.RTAs[0], fmt.Sprintf("g%d-rta%d", gi+1, k))
			}
		}
	}
	row.VMs = len(sys.Guests())
	for _, g := range sys.Guests() {
		row.VCPUs += g.NumVCPUs()
	}
	sys.Start()
	for _, t := range tasks {
		guestOf(sys, t).StartPeriodic(t, 0)
	}
	sys.Run(cfg.Duration)
	fillOverhead(&row, sys, tasks)
	return row
}

// guestRef narrows the guest interface used by addTask.
type guestRef = interface {
	Register(t *task.Task) error
}

// table6RTXen deploys the scenario on RT-Xen: interfaces computed offline
// via CSA; admission stops when the claimed CPUs exceed the host.
func table6RTXen(scenario Table6Scenario, cfg Table6Config) Table6Row {
	sysCfg := core.DefaultConfig(core.RTXen)
	sysCfg.PCPUs = cfg.PCPUs
	sysCfg.Seed = cfg.Seed
	if cfg.Costs != nil {
		sysCfg.Costs = *cfg.Costs
	}
	sys := core.NewSystem(sysCfg)

	row := Table6Row{Scenario: scenario, Framework: "RT-Xen"}
	sys.Host.TraceTo(&row.Events)
	groups := Table5Groups()

	// Offline analysis: per-group single-task interface at CARTS (1ms)
	// resolution.
	ifaces := make([]csa.Interface, len(groups))
	for i, grp := range groups {
		iface, ok := csa.BestInterfaceQ(grp.RTAs, csa.DefaultCandidates(grp.RTAs), ms(1))
		if !ok {
			panic("experiments: no CSA interface for Table 5 group")
		}
		ifaces[i] = iface
	}

	var tasks []*task.Task
	var servers []csa.Interface
	id := 0

	// admit reports whether the DMPR-style analysis still fits the host
	// after adding these servers: inflated CSA interfaces packed onto
	// whole processors (§4.5: the paper fit only 80 and 93 of the 100
	// RTAs before needing more than 15 PCPUs).
	admit := func(cand []csa.Interface) bool {
		all := append(append([]csa.Interface(nil), servers...), cand...)
		return csa.PartitionedProcs(all) <= cfg.PCPUs
	}

	if scenario == MultiRTAVMs {
		for gi, grp := range groups {
			// Pack this VM's 10 RTAs onto the fewest VCPUs (first fit at
			// the interface bandwidth), as the paper configures.
			perVCPU := int(1.0 / ifaces[gi].Bandwidth())
			if perVCPU < 1 {
				perVCPU = 1
			}
			nVCPUs := (10 + perVCPU - 1) / perVCPU
			var vcpuIfaces []csa.Interface
			for v := 0; v < nVCPUs; v++ {
				n := perVCPU
				if rem := 10 - v*perVCPU; rem < n {
					n = rem
				}
				var set []task.Params
				for k := 0; k < n; k++ {
					set = append(set, grp.RTAs[0])
				}
				iface, ok := csa.BestInterfaceQ(set, csa.DefaultCandidates(set), ms(1))
				if !ok {
					panic("experiments: no per-VCPU interface")
				}
				vcpuIfaces = append(vcpuIfaces, iface)
			}
			row.RTAsRequested += 10
			if !admit(vcpuIfaces) {
				continue
			}
			servers = append(servers, vcpuIfaces...)
			var rsvs []hv.Reservation
			for _, ifc := range vcpuIfaces {
				rsvs = append(rsvs, hv.Reservation{Budget: ifc.Budget, Period: ifc.Period})
			}
			g, err := sys.NewServerGuest(fmt.Sprintf("vm%d", gi+1), rsvs, 256)
			if err != nil {
				continue
			}
			vcpu := 0
			onVCPU := 0
			for k := 0; k < 10; k++ {
				t := task.New(id, fmt.Sprintf("g%d-rta%d", gi+1, k), task.Periodic, grp.RTAs[0])
				id++
				if onVCPU == perVCPU {
					vcpu++
					onVCPU = 0
				}
				if err := g.RegisterOn(t, vcpu); err != nil {
					continue
				}
				onVCPU++
				row.RTAsAdmitted++
				tasks = append(tasks, t)
			}
		}
	} else {
		for gi, grp := range groups {
			for k := 0; k < 10; k++ {
				row.RTAsRequested++
				if !admit([]csa.Interface{ifaces[gi]}) {
					continue
				}
				g, err := sys.NewServerGuest(fmt.Sprintf("vm%d-%d", gi+1, k),
					[]hv.Reservation{{Budget: ifaces[gi].Budget, Period: ifaces[gi].Period}}, 256)
				if err != nil {
					continue
				}
				t := task.New(id, fmt.Sprintf("g%d-rta%d", gi+1, k), task.Periodic, grp.RTAs[0])
				id++
				if err := g.RegisterOn(t, 0); err != nil {
					continue
				}
				servers = append(servers, ifaces[gi])
				row.RTAsAdmitted++
				tasks = append(tasks, t)
			}
		}
	}
	row.VMs = len(sys.Guests())
	for _, g := range sys.Guests() {
		row.VCPUs += g.NumVCPUs()
	}
	sys.Start()
	for _, t := range tasks {
		guestOf(sys, t).StartPeriodic(t, 0)
	}
	sys.Run(cfg.Duration)
	fillOverhead(&row, sys, tasks)
	return row
}

func fillOverhead(row *Table6Row, sys *core.System, tasks []*task.Task) {
	o := sys.Overhead()
	row.ScheduleTime = o.ScheduleTime
	row.CtxSwitchTime = o.CtxSwitchTime
	row.Migrations = o.Migrations
	row.OverheadPct = o.Percent
	row.Misses = workload.MissSummary(tasks)
}

// RenderTable6 formats the rows of one scenario.
func RenderTable6(rows []Table6Row) string {
	t := metrics.NewTable("Framework", "RTAs", "VMs", "VCPUs",
		"Schedule time", "Ctx-switch time", "Overhead %", "Miss %",
		"Hypercalls", "Migrations")
	for _, r := range rows {
		t.AddRow(r.Framework,
			fmt.Sprintf("%d/%d", r.RTAsAdmitted, r.RTAsRequested),
			r.VMs, r.VCPUs,
			r.ScheduleTime.String(), r.CtxSwitchTime.String(),
			fmt.Sprintf("%.3f", r.OverheadPct),
			fmt.Sprintf("%.4f", 100*r.Misses.Ratio()),
			r.Events.Hypercalls(), r.Events[trace.Migrate])
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 6 — %s scenario\n", rows[0].Scenario)
	b.WriteString(t.String())
	return b.String()
}

// Package report writes experiment results as machine-readable artifacts
// (CSV series and JSON documents) so the paper's figures can be re-plotted
// from a run of cmd/rtvirt-bench.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"rtvirt/internal/experiments"
	"rtvirt/internal/metrics"
	"rtvirt/internal/trace"
)

// Dir manages an output directory of artifacts.
type Dir struct {
	path string
	// Written lists the artifact files created, relative to the directory.
	Written []string
}

// NewDir creates (if needed) the output directory.
func NewDir(path string) (*Dir, error) {
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	return &Dir{path: path}, nil
}

// Path reports the directory.
func (d *Dir) Path() string { return d.path }

func (d *Dir) create(name string) (*os.File, error) {
	f, err := os.Create(filepath.Join(d.path, name))
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	d.Written = append(d.Written, name)
	return f, nil
}

// JSON writes v as an indented JSON document.
func (d *Dir) JSON(name string, v any) error {
	f, err := d.create(name)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// CSV writes a header plus rows.
func (d *Dir) CSV(name string, header []string, rows [][]string) error {
	f, err := d.create(name)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// WriteCDF writes a latency CDF as (latency_us, fraction) rows — the raw
// material of the paper's Figure 5 curves.
func WriteCDF(w io.Writer, pts []metrics.CDFPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"latency_us", "cdf"}); err != nil {
		return err
	}
	for _, p := range pts {
		if err := cw.Write([]string{
			strconv.FormatFloat(p.Latency.Micros(), 'f', 3, 64),
			strconv.FormatFloat(p.Fraction, 'f', 6, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Figure3 writes the bandwidth rows as fig3.csv and fig3.json.
func (d *Dir) Figure3(rows []experiments.Figure3Row) error {
	var csvRows [][]string
	for _, r := range rows {
		csvRows = append(csvRows, []string{
			r.Group,
			fmt.Sprintf("%.4f", r.RTAReq),
			fmt.Sprintf("%.4f", r.RTXenClaimed),
			fmt.Sprintf("%.4f", r.RTXenAllocated),
			fmt.Sprintf("%.4f", r.RTVirtAllocated),
			fmt.Sprintf("%.6f", r.RTXenMisses.Ratio()),
			fmt.Sprintf("%.6f", r.RTVirtMisses.Ratio()),
		})
	}
	if err := d.CSV("fig3.csv", []string{
		"group", "rta_req_cpus", "rtxen_claimed_cpus", "rtxen_alloc_cpus",
		"rtvirt_alloc_cpus", "rtxen_miss_ratio", "rtvirt_miss_ratio",
	}, csvRows); err != nil {
		return err
	}
	return d.JSON("fig3.json", rows)
}

// Figure4 writes the per-VM allocation series as fig4.csv plus the summary
// as fig4.json.
func (d *Dir) Figure4(r experiments.Figure4Result) error {
	var csvRows [][]string
	for vm, series := range r.PerVM {
		for _, s := range series {
			csvRows = append(csvRows, []string{
				vm,
				fmt.Sprintf("%.3f", s.At.Seconds()),
				fmt.Sprintf("%.2f", s.CPUPercent),
			})
		}
	}
	if err := d.CSV("fig4.csv", []string{"vm", "t_s", "cpu_percent"}, csvRows); err != nil {
		return err
	}
	return d.JSON("fig4.json", struct {
		RTAsRun         int
		Rejected        int
		TasksWithMisses int
		WorstMissPct    float64
		AvgAllocated    float64
		PeakAllocated   float64
	}{r.RTAsRun, r.Rejected, r.TasksWithMisses, r.WorstMissPct, r.AvgAllocated, r.PeakAllocated})
}

// Figure5 writes each arm's latency CDF as <prefix>-<arm>.csv and the row
// summary as <prefix>.json.
func (d *Dir) Figure5(prefix string, rows []experiments.Figure5Row) error {
	for _, r := range rows {
		name := fmt.Sprintf("%s-%s.csv", prefix, sanitize(string(r.Arm)))
		f, err := d.create(name)
		if err != nil {
			return err
		}
		if err := WriteCDF(f, r.CDF); err != nil {
			f.Close()
			return err
		}
		f.Close()
	}
	type summary struct {
		Arm         string
		P999us      float64
		Meanus      float64
		SLOMet      bool
		AllocatedBW float64
		ClaimedCPUs int
		VideoMiss   float64
	}
	var out []summary
	for _, r := range rows {
		out = append(out, summary{
			Arm: string(r.Arm), P999us: r.P999.Micros(), Meanus: r.Mean.Micros(),
			SLOMet: r.SLOMet, AllocatedBW: r.AllocatedBW, ClaimedCPUs: r.ClaimedCPUs,
			VideoMiss: r.VideoMisses.Ratio(),
		})
	}
	return d.JSON(prefix+".json", out)
}

// Table4 writes the dedicated-CPU latency table.
func (d *Dir) Table4(rows []experiments.Table4Row) error {
	var csvRows [][]string
	for _, r := range rows {
		csvRows = append(csvRows, []string{
			string(r.Scheduler),
			fmt.Sprintf("%.3f", r.P90.Micros()),
			fmt.Sprintf("%.3f", r.P95.Micros()),
			fmt.Sprintf("%.3f", r.P99.Micros()),
			fmt.Sprintf("%.3f", r.P999.Micros()),
		})
	}
	return d.CSV("table4.csv",
		[]string{"scheduler", "p90_us", "p95_us", "p99_us", "p999_us"}, csvRows)
}

// Table6 writes the overhead rows for one scenario.
func (d *Dir) Table6(name string, rows []experiments.Table6Row) error {
	var csvRows [][]string
	for _, r := range rows {
		csvRows = append(csvRows, []string{
			r.Framework,
			strconv.Itoa(r.RTAsAdmitted),
			strconv.Itoa(r.VMs),
			strconv.Itoa(r.VCPUs),
			fmt.Sprintf("%.3f", r.ScheduleTime.Millis()),
			fmt.Sprintf("%.3f", r.CtxSwitchTime.Millis()),
			fmt.Sprintf("%.4f", r.OverheadPct),
			fmt.Sprintf("%.6f", r.Misses.Ratio()),
			strconv.FormatUint(r.Events.Hypercalls(), 10),
			strconv.FormatUint(r.Events[trace.Migrate], 10),
		})
	}
	return d.CSV(name, []string{
		"framework", "rtas", "vms", "vcpus", "schedule_ms", "ctxswitch_ms",
		"overhead_pct", "miss_ratio", "hypercalls", "migrations",
	}, csvRows)
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// Ablations writes one CSV per sweep.
func (d *Dir) Ablations(name string, rows []experiments.AblationRow) error {
	var csvRows [][]string
	for _, r := range rows {
		csvRows = append(csvRows, []string{
			r.Label,
			fmt.Sprintf("%.6f", r.MissPct),
			fmt.Sprintf("%.3f", r.P999.Micros()),
			fmt.Sprintf("%.4f", r.OverheadPct),
			fmt.Sprintf("%.4f", r.Extra),
		})
	}
	return d.CSV(name, []string{"config", "miss_pct", "p999_us", "overhead_pct", "extra"}, csvRows)
}

// Robustness writes the cross-seed claim summary.
func (d *Dir) Robustness(rows []experiments.RobustnessResult) error {
	var csvRows [][]string
	for _, r := range rows {
		csvRows = append(csvRows, []string{
			r.Claim,
			strconv.Itoa(r.Held),
			strconv.Itoa(r.Runs),
			r.Unit,
			fmt.Sprintf("%.4f", r.Min()),
			fmt.Sprintf("%.4f", r.Median()),
			fmt.Sprintf("%.4f", r.Max()),
		})
	}
	return d.CSV("robustness.csv",
		[]string{"claim", "held", "runs", "unit", "min", "median", "max"}, csvRows)
}

// IO writes the I/O-boundary rows.
func (d *Dir) IO(rows []experiments.IORow) error {
	var csvRows [][]string
	for _, r := range rows {
		csvRows = append(csvRows, []string{
			r.Stack.String(),
			fmt.Sprintf("%.3f", r.EndToEndP999.Micros()),
			fmt.Sprintf("%.3f", r.CPUPhaseP999.Micros()),
			strconv.Itoa(r.Violations),
			strconv.Itoa(r.Requests),
		})
	}
	return d.CSV("io.csv",
		[]string{"stack", "end_to_end_p999_us", "cpu_phase_p999_us", "violations", "requests"}, csvRows)
}

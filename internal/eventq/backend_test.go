package eventq

import "testing"

func TestParseBackend(t *testing.T) {
	cases := []struct {
		name string
		want Backend
		err  bool
	}{
		{"", BackendHeap, false},
		{"heap", BackendHeap, false},
		{"wheel", BackendWheel, false},
		{"Heap", 0, true}, // names are case-sensitive, like the env var always was
		{"whee", 0, true},
		{"btree", 0, true},
	}
	for _, c := range cases {
		got, err := ParseBackend(c.name)
		if c.err {
			if err == nil {
				t.Errorf("ParseBackend(%q): want error, got %v", c.name, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseBackend(%q): unexpected error %v", c.name, err)
		} else if got != c.want {
			t.Errorf("ParseBackend(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestParseBackendErrorNamesTheValue(t *testing.T) {
	_, err := ParseBackend("btree")
	if err == nil {
		t.Fatal("want error")
	}
	if got := err.Error(); got != `eventq: unknown backend "btree" (want heap or wheel)` {
		t.Fatalf("unhelpful error message: %s", got)
	}
}

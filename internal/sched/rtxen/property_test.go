package rtxen

import (
	"fmt"
	"testing"
	"testing/quick"

	"rtvirt/internal/guest"
	"rtvirt/internal/hv"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

// Property: a deferrable server never supplies more than its budget per
// period — a greedy guest (background hog inside the server VM) is capped
// at budget/period of the CPU over any long window.
func TestQuickBudgetEnforcement(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		budget := ms(1 + rng.Int63n(5))
		period := budget + ms(1+rng.Int63n(10))
		s := sim.New(seed)
		h := hv.NewHost(s, 1, New(DefaultConfig()), hv.CostModel{})
		cfg := guest.Config{CrossLayer: false, VCPUCapacity: 1e9}
		g, err := guest.NewOS(h, "vm", cfg, 0)
		if err != nil {
			return false
		}
		if _, err := g.AddVCPU(hv.Reservation{Budget: budget, Period: period}, 256); err != nil {
			return false
		}
		hog := task.NewBackground(0, "hog")
		if err := g.Register(hog); err != nil {
			return false
		}
		h.Start()
		s.After(0, func(now simtime.Time) { g.ReleaseJob(hog, simtime.Seconds(1000)) })
		dur := simtime.Seconds(2)
		s.RunFor(dur)
		h.Sync()
		run := g.VM().TotalRun()
		// Entitled share ± one period of slop for edge effects.
		entitled := simtime.ScaleDuration(dur, int64(budget), int64(period))
		return run <= entitled+period && run >= entitled-period
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: under gEDF with total server utilization ≤ m and per-server
// utilization well below 1, fully provisioned periodic tasks meet their
// deadlines (harmonic parameters, the regime RT-Xen guarantees).
func TestQuickGEDFHarmonicSchedulability(t *testing.T) {
	if testing.Short() {
		t.Skip("long property test")
	}
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		m := 1 + rng.Intn(3)
		s := sim.New(seed)
		h := hv.NewHost(s, m, New(DefaultConfig()), hv.CostModel{})
		budgetLeft := 0.7 * float64(m)
		var tasks []*task.Task
		var guests []*guest.OS
		id := 0
		for budgetLeft > 0.15 && id < 8 {
			// Harmonic periods: 10, 20, 40, 80 ms.
			period := ms(10 << rng.Intn(3))
			bw := 0.1 + rng.Float64()*0.4
			if bw > budgetLeft {
				bw = budgetLeft
			}
			slice := simtime.Duration(bw * float64(period))
			serverBudget := slice + period/10 // +10% server headroom
			cfg := guest.Config{CrossLayer: false, VCPUCapacity: 1.0}
			g, err := guest.NewOS(h, fmt.Sprintf("vm%d", id), cfg, 0)
			if err != nil {
				return false
			}
			if _, err := g.AddVCPU(hv.Reservation{Budget: serverBudget, Period: period}, 256); err != nil {
				break
			}
			tk := task.New(id, fmt.Sprintf("t%d", id), task.Periodic,
				task.Params{Slice: slice, Period: period})
			if err := g.RegisterOn(tk, 0); err != nil {
				return false
			}
			budgetLeft -= float64(serverBudget) / float64(period)
			tasks = append(tasks, tk)
			guests = append(guests, g)
			id++
		}
		h.Start()
		for i, tk := range tasks {
			guests[i].StartPeriodic(tk, 0)
		}
		s.RunFor(simtime.Seconds(3))
		for _, tk := range tasks {
			if tk.Stats().Missed != 0 {
				t.Logf("seed %d: %s %v missed %d/%d", seed, tk.Name, tk.Params(),
					tk.Stats().Missed, tk.Stats().Released)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

package hv

import (
	"testing"

	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

// fifoSched is a minimal host scheduler for kernel tests: strict FIFO over
// runnable VCPUs, each getting a fixed quantum.
type fifoSched struct {
	h       *Host
	quantum simtime.Duration
	ready   []*VCPU
}

func (s *fifoSched) Name() string                   { return "fifo-test" }
func (s *fifoSched) Attach(h *Host)                 { s.h = h }
func (s *fifoSched) Start(simtime.Time)             {}
func (s *fifoSched) AdmitVCPU(v *VCPU) error        { return nil }
func (s *fifoSched) RemoveVCPU(*VCPU, simtime.Time) {}
func (s *fifoSched) UpdateVCPU(v *VCPU, r Reservation, _ simtime.Time) error {
	v.Res = r
	return nil
}

func (s *fifoSched) VCPUWake(v *VCPU, now simtime.Time) {
	s.ready = append(s.ready, v)
	for _, p := range s.h.PCPUs() {
		if p.Current() == nil {
			s.h.Kick(p, now)
			return
		}
	}
}

func (s *fifoSched) VCPUIdle(v *VCPU, now simtime.Time) {
	for i, r := range s.ready {
		if r == v {
			s.ready = append(s.ready[:i], s.ready[i+1:]...)
			return
		}
	}
}

func (s *fifoSched) Schedule(p *PCPU, now simtime.Time) Decision {
	// Round-robin: requeue the current VCPU, take the head.
	if p.cur != nil && p.cur.Runnable() {
		s.VCPUIdle(p.cur, now) // remove
		s.ready = append(s.ready, p.cur)
	}
	for _, v := range s.ready {
		if v.Runnable() && (v.OnPCPU() == nil || v.OnPCPU() == p) {
			return Decision{VCPU: v, RunFor: s.quantum, Work: len(s.ready)}
		}
	}
	// Nothing runnable for this PCPU: sleep until a wake kicks us.
	return Decision{VCPU: nil, RunFor: simtime.Infinite}
}

// fifoGuest runs queued jobs per VCPU in FIFO order.
type fifoGuest struct {
	h      *Host
	queues map[*VCPU][]*task.Job
	done   []*task.Job
}

func newFifoGuest(h *Host) *fifoGuest {
	return &fifoGuest{h: h, queues: map[*VCPU][]*task.Job{}}
}

func (g *fifoGuest) PickJob(v *VCPU, now simtime.Time) *task.Job {
	q := g.queues[v]
	if len(q) == 0 {
		return nil
	}
	return q[0]
}

func (g *fifoGuest) JobCompleted(v *VCPU, j *task.Job, now simtime.Time) {
	q := g.queues[v]
	if len(q) == 0 || q[0] != j {
		panic("fifoGuest: completed job is not queue head")
	}
	g.queues[v] = q[1:]
	g.done = append(g.done, j)
}

func (g *fifoGuest) submit(v *VCPU, j *task.Job, now simtime.Time) {
	g.queues[v] = append(g.queues[v], j)
	g.h.VCPUWake(v, now)
}

func testHost(t *testing.T, pcpus int, costs CostModel) (*sim.Simulator, *Host, *fifoSched) {
	t.Helper()
	s := sim.New(1)
	sched := &fifoSched{quantum: simtime.Millis(10)}
	h := NewHost(s, pcpus, sched, costs)
	return s, h, sched
}

func TestSingleJobRunsToCompletion(t *testing.T) {
	s, h, _ := testHost(t, 1, CostModel{})
	g := newFifoGuest(h)
	vm := h.NewVM("vm0", g)
	v, err := vm.AddVCPU(true, Reservation{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	tk := task.New(0, "t0", task.Periodic, task.Params{Slice: simtime.Millis(3), Period: simtime.Millis(100)})
	s.After(simtime.Millis(5), func(now simtime.Time) {
		g.submit(v, tk.Release(now, simtime.Millis(3)), now)
	})
	s.RunFor(simtime.Seconds(1))
	if len(g.done) != 1 {
		t.Fatalf("completed %d jobs, want 1", len(g.done))
	}
	j := g.done[0]
	// Released at 5ms, 3ms of work on an otherwise idle host with zero
	// costs: finishes at exactly 8ms.
	if j.Finish != simtime.Time(simtime.Millis(8)) {
		t.Fatalf("finish = %v, want 8ms", j.Finish)
	}
	if v.TotalRun != simtime.Millis(3) {
		t.Fatalf("TotalRun = %v, want 3ms", v.TotalRun)
	}
	if h.PCPUs()[0].BusyTime != simtime.Millis(3) {
		t.Fatalf("BusyTime = %v, want 3ms", h.PCPUs()[0].BusyTime)
	}
}

func TestCostsDelayExecution(t *testing.T) {
	costs := CostModel{ScheduleBase: ConstCost(simtime.Micros(5))}
	costs.SetContextSwitch(ConstCost(simtime.Micros(7)))
	s, h, _ := testHost(t, 1, costs)
	g := newFifoGuest(h)
	vm := h.NewVM("vm0", g)
	v, _ := vm.AddVCPU(true, Reservation{}, 0)
	h.Start()
	tk := task.New(0, "t0", task.Periodic, task.Params{Slice: simtime.Millis(1), Period: simtime.Millis(100)})
	s.After(simtime.Millis(5), func(now simtime.Time) {
		g.submit(v, tk.Release(now, simtime.Millis(1)), now)
	})
	s.RunFor(simtime.Seconds(1))
	if len(g.done) != 1 {
		t.Fatalf("completed %d jobs, want 1", len(g.done))
	}
	// Start dispatched once at t=0 (5µs schedule); wake at 5ms pays another
	// schedule (5µs) + context switch (7µs); execution then runs 1ms.
	want := simtime.Time(simtime.Millis(5) + simtime.Micros(12) + simtime.Millis(1))
	if g.done[0].Finish != want {
		t.Fatalf("finish = %v, want %v", g.done[0].Finish, want)
	}
	if h.Overhead.CtxSwitches == 0 || h.Overhead.ScheduleCalls < 2 {
		t.Fatalf("overhead not recorded: %+v", h.Overhead)
	}
	if h.PCPUs()[0].OverheadTime != simtime.Micros(17) {
		t.Fatalf("PCPU overhead = %v, want 17µs", h.PCPUs()[0].OverheadTime)
	}
}

func TestTwoVCPUsShareOnePCPU(t *testing.T) {
	s, h, _ := testHost(t, 1, CostModel{})
	g := newFifoGuest(h)
	vm := h.NewVM("vm0", g)
	v1, _ := vm.AddVCPU(true, Reservation{}, 0)
	v2, _ := vm.AddVCPU(true, Reservation{}, 0)
	h.Start()
	t1 := task.New(0, "t1", task.Background, task.Params{})
	t2 := task.New(1, "t2", task.Background, task.Params{})
	s.After(0, func(now simtime.Time) {
		g.submit(v1, t1.Release(now, simtime.Millis(30)), now)
		g.submit(v2, t2.Release(now, simtime.Millis(30)), now)
	})
	s.RunFor(simtime.Millis(60))
	h.Sync()
	if len(g.done) != 2 {
		t.Fatalf("completed %d jobs, want 2", len(g.done))
	}
	// Round-robin with 10ms quantum: both finish by 60ms, total busy 60ms.
	if total := v1.TotalRun + v2.TotalRun; total != simtime.Millis(60) {
		t.Fatalf("total run = %v, want 60ms", total)
	}
	if v1.TotalRun != simtime.Millis(30) || v2.TotalRun != simtime.Millis(30) {
		t.Fatalf("unfair split: v1=%v v2=%v", v1.TotalRun, v2.TotalRun)
	}
}

func TestJobsQueueFIFOWithinVCPU(t *testing.T) {
	s, h, _ := testHost(t, 1, CostModel{})
	g := newFifoGuest(h)
	vm := h.NewVM("vm0", g)
	v, _ := vm.AddVCPU(true, Reservation{}, 0)
	h.Start()
	tk := task.NewBackground(0, "bg")
	s.After(0, func(now simtime.Time) {
		g.submit(v, tk.Release(now, simtime.Millis(2)), now)
		g.submit(v, tk.Release(now, simtime.Millis(3)), now)
	})
	s.RunFor(simtime.Millis(100))
	if len(g.done) != 2 {
		t.Fatalf("completed %d jobs, want 2", len(g.done))
	}
	if g.done[0].Finish != simtime.Time(simtime.Millis(2)) ||
		g.done[1].Finish != simtime.Time(simtime.Millis(5)) {
		t.Fatalf("finishes = %v, %v; want 2ms, 5ms", g.done[0].Finish, g.done[1].Finish)
	}
}

func TestIdleVCPUBlocksAndWakes(t *testing.T) {
	s, h, _ := testHost(t, 1, CostModel{})
	g := newFifoGuest(h)
	vm := h.NewVM("vm0", g)
	v, _ := vm.AddVCPU(true, Reservation{}, 0)
	h.Start()
	tk := task.NewBackground(0, "bg")
	s.After(simtime.Millis(1), func(now simtime.Time) {
		g.submit(v, tk.Release(now, simtime.Millis(1)), now)
	})
	s.After(simtime.Millis(50), func(now simtime.Time) {
		g.submit(v, tk.Release(now, simtime.Millis(1)), now)
	})
	s.RunFor(simtime.Millis(100))
	if len(g.done) != 2 {
		t.Fatalf("completed %d jobs, want 2", len(g.done))
	}
	if g.done[1].Finish != simtime.Time(simtime.Millis(51)) {
		t.Fatalf("second finish = %v, want 51ms", g.done[1].Finish)
	}
	if v.Runnable() {
		t.Fatal("drained VCPU should be blocked")
	}
	// PCPU idle time: 0-1ms, 2-50ms, 51-100ms = 98ms.
	h.Sync()
	if idle := h.PCPUs()[0].IdleTime; idle != simtime.Millis(98) {
		t.Fatalf("IdleTime = %v, want 98ms", idle)
	}
}

func TestMultiPCPUParallelism(t *testing.T) {
	s, h, _ := testHost(t, 2, CostModel{})
	g := newFifoGuest(h)
	vm := h.NewVM("vm0", g)
	v1, _ := vm.AddVCPU(true, Reservation{}, 0)
	v2, _ := vm.AddVCPU(true, Reservation{}, 0)
	h.Start()
	tk1 := task.NewBackground(0, "a")
	tk2 := task.NewBackground(1, "b")
	s.After(0, func(now simtime.Time) {
		g.submit(v1, tk1.Release(now, simtime.Millis(20)), now)
		g.submit(v2, tk2.Release(now, simtime.Millis(20)), now)
	})
	s.RunFor(simtime.Millis(25))
	h.Sync()
	if len(g.done) != 2 {
		t.Fatalf("completed %d jobs, want 2 (should run in parallel)", len(g.done))
	}
	for _, j := range g.done {
		if j.Finish != simtime.Time(simtime.Millis(20)) {
			t.Fatalf("finish = %v, want 20ms (parallel)", j.Finish)
		}
	}
}

func TestHypercallRequiresCrossLayer(t *testing.T) {
	_, h, _ := testHost(t, 1, DefaultCosts())
	g := newFifoGuest(h)
	vm := h.NewVM("vm0", g)
	v, _ := vm.AddVCPU(true, Reservation{}, 0)
	h.Start()
	err := h.SchedRTVirt(Hypercall{Flag: IncBW, VCPU: v, Res: Reservation{Budget: simtime.Millis(1), Period: simtime.Millis(10)}})
	if err != ErrNoCrossLayer {
		t.Fatalf("err = %v, want ErrNoCrossLayer", err)
	}
	if h.Overhead.Hypercalls != 1 || h.Overhead.HypercallTime != simtime.Micros(10) {
		t.Fatalf("hypercall overhead not charged: %+v", h.Overhead)
	}
}

func TestDeadlineSlotWrite(t *testing.T) {
	_, h, _ := testHost(t, 1, CostModel{})
	g := newFifoGuest(h)
	vm := h.NewVM("vm0", g)
	v, _ := vm.AddVCPU(true, Reservation{}, 0)
	if v.DeadlineSlot != simtime.Never {
		t.Fatal("fresh slot should be Never")
	}
	h.WriteDeadlineSlot(v, simtime.Time(simtime.Millis(42)))
	if v.DeadlineSlot != simtime.Time(simtime.Millis(42)) || h.Overhead.ShmWrites != 1 {
		t.Fatal("slot write not recorded")
	}
}

func TestReservationHelpers(t *testing.T) {
	r := Reservation{Budget: simtime.Millis(5), Period: simtime.Millis(20)}
	if r.Bandwidth() != 0.25 || !r.Valid() {
		t.Fatalf("reservation helpers wrong: %v", r)
	}
	if (Reservation{Budget: simtime.Millis(30), Period: simtime.Millis(20)}).Valid() {
		t.Fatal("over-full reservation should be invalid")
	}
	if (Reservation{}).Bandwidth() != 0 {
		t.Fatal("zero reservation bandwidth should be 0")
	}
}

func TestOverheadPercent(t *testing.T) {
	o := Overhead{ScheduleTime: simtime.Millis(5), CtxSwitchTime: simtime.Millis(5)}
	if got := o.Percent(simtime.Seconds(1), 1); got != 1.0 {
		t.Fatalf("Percent = %g, want 1.0", got)
	}
	if o.Percent(0, 1) != 0 || o.Percent(simtime.Second, 0) != 0 {
		t.Fatal("degenerate Percent should be 0")
	}
}

func TestVMAndVCPUAccessors(t *testing.T) {
	_, h, _ := testHost(t, 2, CostModel{})
	g := newFifoGuest(h)
	vm := h.NewVM("web", g)
	v, _ := vm.AddVCPU(true, Reservation{Budget: 1, Period: 2}, 5)
	if vm.Host() != h || v.VM != vm || v.Index != 0 || v.Weight != 5 {
		t.Fatal("accessors wrong")
	}
	if h.NumPCPUs() != 2 || len(h.VMs()) != 1 || len(h.VCPUs()) != 1 {
		t.Fatal("host accessors wrong")
	}
	if vm.String() == "" || v.String() == "" || h.String() == "" || h.PCPUs()[0].String() == "" {
		t.Fatal("Stringers empty")
	}
}

func TestStartTwicePanics(t *testing.T) {
	_, h, _ := testHost(t, 1, CostModel{})
	h.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("double Start did not panic")
		}
	}()
	h.Start()
}

func TestHypercallFlagString(t *testing.T) {
	if IncBW.String() != "INC_BW" || DecBW.String() != "DEC_BW" ||
		IncDecBW.String() != "INC_DEC_BW" || HypercallFlag(9).String() == "" {
		t.Fatal("HypercallFlag.String wrong")
	}
}

package main

import (
	"fmt"
	"log"
	"os"

	"rtvirt/internal/check/quick"
)

// runQuickcheck drives the randomized invariant harness: n generated
// scenarios per scheduler stack, every oracle armed plus the mid-run fork
// bit-identity probe. Violations are shrunk to minimal reproducers; with
// -out they are exported both as full failure records and as bare
// scenarios that rtvirt-sim replays directly. Any failure exits nonzero
// so CI gates on it.
func runQuickcheck(seed uint64, n int, seconds int64) {
	rep := quick.Run(quick.Config{Seed: seed, N: n, Seconds: seconds})
	fmt.Println(rep.Render())
	if out != nil {
		for _, f := range rep.Failures {
			base := fmt.Sprintf("quickcheck-%d-%s", f.Case, f.Stack)
			if err := out.JSON(base+"-failure.json", f); err != nil {
				log.Fatal(err)
			}
			if err := out.JSON(base+"-repro.json", f.Scenario); err != nil {
				log.Fatal(err)
			}
		}
	}
	if len(rep.Failures) > 0 {
		os.Exit(1)
	}
}

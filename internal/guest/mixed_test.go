package guest

import (
	"errors"
	"testing"

	"rtvirt/internal/hv"
	"rtvirt/internal/sched/dpwrap"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

// rtvirtSetup builds a full RTVirt stack (DP-WRAP host) for guest-level
// integration tests that need realistic host behaviour.
func rtvirtSetup(t *testing.T, pcpus, vcpus int) (*sim.Simulator, *hv.Host, *OS) {
	t.Helper()
	s := sim.New(17)
	h := hv.NewHost(s, pcpus, dpwrap.New(dpwrap.DefaultConfig()), hv.CostModel{})
	g, err := NewOS(h, "vm0", DefaultConfig(), vcpus)
	if err != nil {
		t.Fatal(err)
	}
	return s, h, g
}

// TestBGAInsideRTVM: §3.1 — the guest scheduler addresses the timeliness
// of RTAs and schedules other background applications in the same VM. The
// BGA must neither disturb the RTA nor starve.
func TestBGAInsideRTVM(t *testing.T) {
	s, h, g := rtvirtSetup(t, 1, 1)
	rta := task.New(0, "rta", task.Periodic, pp(4, 10))
	bga := task.NewBackground(1, "bga")
	if err := g.Register(rta); err != nil {
		t.Fatal(err)
	}
	if err := g.Register(bga); err != nil {
		t.Fatal(err)
	}
	h.Start()
	g.StartPeriodic(rta, 0)
	s.After(0, func(now simtime.Time) { g.ReleaseJob(bga, simtime.Seconds(100)) })
	s.RunFor(simtime.Seconds(5))
	h.Sync()
	if st := rta.Stats(); st.Missed != 0 {
		t.Fatalf("RTA missed %d deadlines beside an in-VM BGA", st.Missed)
	}
	// The BGA gets the leftover ≈60% (whole host is otherwise idle and the
	// VM soaks leftover work-conservingly).
	if bw := bga.Stats().TotalWork; bw < simtime.Seconds(2) {
		t.Fatalf("BGA got only %v of 5s", bw)
	}
}

// TestSporadicFloorFollowsSetAttr: changing a sporadic task's period must
// update the published worst-case floor.
func TestSporadicFloorFollowsSetAttr(t *testing.T) {
	_, _, g := rtvirtSetup(t, 1, 1)
	sp := task.New(0, "sp", task.Sporadic, pp(2, 40))
	if err := g.Register(sp); err != nil {
		t.Fatal(err)
	}
	v := g.VM().VCPUs[0]
	if v.SporadicFloor != simtime.Millis(40) {
		t.Fatalf("floor = %v", v.SporadicFloor)
	}
	if err := g.SetAttr(sp, pp(2, 20)); err != nil {
		t.Fatal(err)
	}
	if v.SporadicFloor != simtime.Millis(20) {
		t.Fatalf("floor after SetAttr = %v, want 20ms", v.SporadicFloor)
	}
}

// TestUnregisterWhileRunning: unregistering the task whose job is on-CPU
// must abandon it and keep the system consistent.
func TestUnregisterWhileRunning(t *testing.T) {
	s, h, g := rtvirtSetup(t, 1, 1)
	tk := task.New(0, "t", task.Periodic, pp(8, 10))
	if err := g.Register(tk); err != nil {
		t.Fatal(err)
	}
	h.Start()
	g.StartPeriodic(tk, 0)
	s.RunFor(simtime.Millis(3)) // mid-job
	if err := g.Unregister(tk); err != nil {
		t.Fatal(err)
	}
	st := tk.Stats()
	if st.Abandoned != 1 {
		t.Fatalf("abandoned = %d, want 1", st.Abandoned)
	}
	// The host continues cleanly; a new task is admissible immediately.
	nt := task.New(1, "n", task.Periodic, pp(5, 10))
	if err := g.Register(nt); err != nil {
		t.Fatal(err)
	}
	g.StartPeriodic(nt, s.Now())
	s.RunFor(simtime.Seconds(1))
	if nt.Stats().Missed != 0 {
		t.Fatalf("successor missed %d", nt.Stats().Missed)
	}
}

// TestSetAttrOnBackgroundTaskRejected: background tasks have no valid
// params to change.
func TestSetAttrOnBackgroundTaskRejected(t *testing.T) {
	_, _, g := rtvirtSetup(t, 1, 1)
	bg := task.NewBackground(0, "bg")
	if err := g.Register(bg); err != nil {
		t.Fatal(err)
	}
	if err := g.SetAttr(bg, task.Params{}); err == nil {
		t.Fatal("SetAttr with invalid params accepted")
	}
}

// TestRegisterInvalidParams: zero params are rejected with an error, not a
// panic.
func TestRegisterInvalidParams(t *testing.T) {
	_, _, g := rtvirtSetup(t, 1, 1)
	bad := &task.Task{ID: 9, Name: "bad", Kind: task.Periodic, VCPU: -1}
	if err := g.Register(bad); err == nil {
		t.Fatal("invalid params accepted")
	}
}

// TestHotplugRespectsHostCapacity: hotplug stops when the host rejects the
// extra bandwidth.
func TestHotplugRespectsHostCapacity(t *testing.T) {
	s := sim.New(17)
	h := hv.NewHost(s, 1, dpwrap.New(dpwrap.DefaultConfig()), hv.CostModel{})
	cfg := DefaultConfig()
	cfg.MaxVCPUs = 8
	cfg.Slack = 0
	g, err := NewOS(h, "vm0", cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	admitted := 0
	for i := 0; i < 8; i++ {
		tk := task.New(i, "t", task.Periodic, pp(3, 10))
		if err := g.Register(tk); err != nil {
			if !errors.Is(err, ErrHostRejected) && !errors.Is(err, ErrNoCapacity) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		admitted++
	}
	// 0.3 each on a 1-CPU host: exactly 3 fit.
	if admitted != 3 {
		t.Fatalf("admitted %d tasks, want 3", admitted)
	}
	if g.NumVCPUs() > 2 {
		t.Fatalf("hotplugged to %d VCPUs for 0.9 CPUs of tasks", g.NumVCPUs())
	}
}

// TestPrioritySlack: §6 — a higher-priority task's VCPU gets a
// proportionally larger slack, and thus a larger reservation.
func TestPrioritySlack(t *testing.T) {
	s := sim.New(17)
	h := hv.NewHost(s, 4, dpwrap.New(dpwrap.DefaultConfig()), hv.CostModel{})
	cfg := DefaultConfig()
	cfg.PrioritySlack = true
	cfg.Slack = simtime.Micros(200)
	g, err := NewOS(h, "vm0", cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	normal := task.New(0, "normal", task.Periodic, pp(5, 10))
	important := task.New(1, "important", task.Periodic, pp(5, 10))
	important.Priority = 3
	if err := g.RegisterOn(normal, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.RegisterOn(important, 1); err != nil {
		t.Fatal(err)
	}
	v0, v1 := g.VM().VCPUs[0], g.VM().VCPUs[1]
	if v0.Res.Budget != simtime.Millis(5)+simtime.Micros(200) {
		t.Fatalf("normal budget = %v", v0.Res.Budget)
	}
	// Priority 3 → 4× slack.
	if v1.Res.Budget != simtime.Millis(5)+simtime.Micros(800) {
		t.Fatalf("important budget = %v, want 5ms+800µs", v1.Res.Budget)
	}
}

// TestGuestShutdown removes the VM and frees every host resource.
func TestGuestShutdown(t *testing.T) {
	s, h, g := rtvirtSetup(t, 1, 2)
	a := task.New(0, "a", task.Periodic, pp(4, 10))
	if err := g.Register(a); err != nil {
		t.Fatal(err)
	}
	h.Start()
	g.StartPeriodic(a, 0)
	s.RunFor(simtime.Millis(25))
	if err := g.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if len(h.VMs()) != 0 || len(h.VCPUs()) != 0 {
		t.Fatalf("host still holds %d VMs / %d VCPUs", len(h.VMs()), len(h.VCPUs()))
	}
	// A replacement VM gets the full host.
	g2, err := NewOS(h, "next", DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	b := task.New(1, "b", task.Periodic, pp(9, 10))
	if err := g2.Register(b); err != nil {
		t.Fatal(err)
	}
	g2.StartPeriodic(b, s.Now())
	s.RunFor(simtime.Seconds(1))
	if st := b.Stats(); st.Missed != 0 {
		t.Fatalf("replacement missed %d", st.Missed)
	}
}

package workload

import (
	"testing"

	"rtvirt/internal/core"
	"rtvirt/internal/simtime"
	"rtvirt/internal/trace"
)

// TestStolenBWMeterIntervals pins the meter's integration semantics on a
// synthetic dispatch stream: per-VM occupancy summed across PCPUs, idle
// gaps ignored, open intervals settled at Close.
func TestStolenBWMeterIntervals(t *testing.T) {
	m := NewStolenBWMeter(2)
	at := func(ms int64) simtime.Time { return simtime.Time(0).Add(simtime.Millis(ms)) }
	ev := func(p int, ms int64, vm string) trace.Event {
		return trace.Event{Kind: trace.Dispatch, PCPU: p, At: at(ms), VM: vm}
	}
	m.Consume(ev(0, 0, "a"))
	m.Consume(ev(0, 10, "b"))                                                // a ran 0–10 on pcpu0
	m.Consume(ev(1, 5, "a"))                                                 // a also runs 5–15 on pcpu1
	m.Consume(ev(1, 15, ""))                                                 // pcpu1 idle from 15
	m.Consume(ev(0, 30, ""))                                                 // b ran 10–30
	m.Consume(ev(2, 1, "x"))                                                 // out-of-range PCPU: ignored
	m.Consume(ev(-1, 1, "x"))                                                // negative PCPU: ignored
	m.Consume(trace.Event{Kind: trace.JobDone, PCPU: 0, At: at(2), VM: "x"}) // wrong kind
	m.Close(at(40))

	if got, want := m.Obtained("a"), simtime.Millis(20); got != want {
		t.Errorf("Obtained(a) = %v, want %v", got, want)
	}
	if got, want := m.Obtained("b"), simtime.Millis(20); got != want {
		t.Errorf("Obtained(b) = %v, want %v", got, want)
	}
	if got := m.Obtained("x"); got != 0 {
		t.Errorf("Obtained(x) = %v, want 0", got)
	}
	// 20ms over a 40ms span on a 2-PCPU host = 0.5 CPUs of bandwidth.
	if got := m.ObtainedBW("a"); got != 0.5 {
		t.Errorf("ObtainedBW(a) = %v, want 0.5", got)
	}
	// Charged 8ms of the 20 obtained: 12ms stolen over 40ms = 0.3 CPUs.
	if got := m.StolenBW("a", simtime.Millis(8)); got != 0.3 {
		t.Errorf("StolenBW(a, 8ms) = %v, want 0.3", got)
	}
}

// TestStolenBWMeterUnclosed: bandwidth reads before Close must return 0
// rather than a bogus partial figure.
func TestStolenBWMeterUnclosed(t *testing.T) {
	m := NewStolenBWMeter(1)
	m.Consume(trace.Event{Kind: trace.Dispatch, PCPU: 0, At: 0, VM: "a"})
	if m.ObtainedBW("a") != 0 || m.StolenBW("a", 0) != 0 {
		t.Fatal("bandwidth read before Close must be 0")
	}
}

// TestTickEvaderLearnsPeriod runs the learning attacker on a real Credit
// host with a competing hog and checks it recovers the 10ms tick period
// from latency spikes alone, then sustains the attack.
func TestTickEvaderLearnsPeriod(t *testing.T) {
	cfg := core.DefaultConfig(core.Credit)
	cfg.PCPUs = 1
	cfg.Seed = 5
	// The paper's latency-sensitive ratelimit, so post-tick wakeups are
	// prompt enough for the guard margin (see the attacks experiment).
	cfg.Credit.Ratelimit = simtime.Micros(500)
	cfg.Credit.SampledAccounting = true
	sys := core.NewSystem(cfg)

	victim, err := sys.NewWeightedGuest("victim", 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	attacker, err := sys.NewWeightedGuest("attacker", 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	hog, err := NewCPUHog(victim, 0, "hog")
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewTickEvader(attacker, 1, "evade", DefaultEvaderConfig())
	if err != nil {
		t.Fatal(err)
	}

	sys.Start()
	hog.Start(0)
	ev.Start(0)
	sys.Run(simtime.Seconds(3))

	if p := ev.Period(); p < simtime.Millis(9) || p > simtime.Millis(11) {
		t.Fatalf("learned period %v, want ~10ms (probes %d, spikes collected before attack)", p, ev.Probes)
	}
	if ev.Bursts < 50 {
		t.Errorf("only %d bursts after learning (resyncs %d)", ev.Bursts, ev.Resyncs)
	}
	if ev.BurstWork == 0 {
		t.Errorf("no clean burst work recorded")
	}
}

// TestTickEvaderConfigValidation: nonsensical configs must fail at
// construction.
func TestTickEvaderConfigValidation(t *testing.T) {
	sys := core.NewSystem(core.DefaultConfig(core.Credit))
	g, err := sys.NewWeightedGuest("g", 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	bad := []EvaderConfig{
		{},
		{ProbeDemand: 1, ProbeGap: 1, ProbeSpikes: 5, SpikeMin: 10, SpikeMax: 5, Guard: 1},
		{ProbeDemand: 1, ProbeGap: 1, ProbeSpikes: 1, SpikeMin: 1, SpikeMax: 5, Guard: 1},
	}
	for i, cfg := range bad {
		if _, err := NewTickEvader(g, i, "e", cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

package trace_test

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"rtvirt/internal/guest"
	"rtvirt/internal/hv"
	"rtvirt/internal/sched/dpwrap"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
	"rtvirt/internal/trace"
)

func TestRecorderCap(t *testing.T) {
	var logged int
	r := trace.Recorder{Max: 2, Logf: func(format string, args ...any) { logged++ }}
	for i := 0; i < 5; i++ {
		r.Add(trace.Record{At: simtime.Time(i), Kind: trace.Dispatch})
	}
	if r.Len() != 2 || r.Dropped() != 3 {
		t.Fatalf("len=%d dropped=%d", r.Len(), r.Dropped())
	}
	// The truncation notice fires exactly once, not per dropped event.
	if logged != 1 {
		t.Fatalf("truncation notice logged %d times, want 1", logged)
	}
}

func TestWriteCSV(t *testing.T) {
	var r trace.Recorder
	r.Add(trace.Record{At: simtime.Time(ms(1)), Kind: trace.Dispatch, PCPU: 0, VM: "vm0", VCPU: 0})
	r.Add(trace.Record{At: simtime.Time(ms(2)), Kind: trace.JobMiss, PCPU: 1, VM: "vm1", Task: "t", Arg: int64(simtime.Micros(5))})
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("csv rows = %d, want header + 2", len(rows))
	}
	if rows[2][1] != "job-miss" || rows[2][6] != "5000" {
		t.Fatalf("csv content wrong: %v", rows[2])
	}
}

func TestCSVRoundTrip(t *testing.T) {
	var r trace.Recorder
	r.Add(trace.Record{At: simtime.Time(ms(1)), Kind: trace.Dispatch, PCPU: 0, VM: "vm0", VCPU: 1, Arg: int64(ms(2))})
	r.Add(trace.Record{At: simtime.Time(ms(3)), Kind: trace.HypercallIncBW, PCPU: -1, VM: "vm1", Arg: int64(ms(4))})
	r.Add(trace.Record{At: simtime.Time(ms(5)), Kind: trace.JobMiss, PCPU: 1, VM: "vm0", Task: "t", Arg: int64(simtime.Micros(7))})
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r.Records()) {
		t.Fatalf("csv round-trip mismatch:\n got %+v\nwant %+v", got, r.Records())
	}
}

func TestWriteJSON(t *testing.T) {
	var r trace.Recorder
	r.Add(trace.Record{At: simtime.Time(ms(1)), Kind: trace.JobDone, VM: "vm0", Task: "x"})
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got []trace.Record
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Task != "x" {
		t.Fatalf("json round-trip wrong: %+v", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	var r trace.Recorder
	r.Add(trace.Record{At: simtime.Time(ms(1)), Kind: trace.Migrate, PCPU: 1, VM: "vm0", VCPU: 0, Arg: 0})
	r.Add(trace.Record{At: simtime.Time(ms(2)), Kind: trace.Admit, PCPU: -1, VM: "vm0", VCPU: 0, Arg: int64(ms(4))})
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r.Records()) {
		t.Fatalf("json round-trip mismatch:\n got %+v\nwant %+v", got, r.Records())
	}
}

// runTracedScenario drives a small RTVirt run with tracing for tests.
func runTracedScenario(t *testing.T) *trace.Recorder {
	t.Helper()
	s := sim.New(3)
	h := hv.NewHost(s, 1, dpwrap.New(dpwrap.DefaultConfig()), hv.CostModel{})
	rec := &trace.Recorder{}
	h.TraceTo(rec)
	g, err := guest.NewOS(h, "vm0", guest.DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	tk := task.New(0, "rta", task.Periodic, task.Params{Slice: ms(2), Period: ms(10)})
	if err := g.Register(tk); err != nil {
		t.Fatal(err)
	}
	h.Start()
	g.StartPeriodic(tk, 0)
	s.RunFor(simtime.Seconds(1))
	return rec
}

// End-to-end: trace a real RTVirt run and check dispatches and completions
// are recorded in time order.
func TestHostTracerEndToEnd(t *testing.T) {
	rec := runTracedScenario(t)

	var dispatches, done, miss int
	var prev simtime.Time
	for _, r := range rec.Records() {
		if r.At < prev {
			t.Fatal("records out of order")
		}
		prev = r.At
		switch r.Kind {
		case trace.Dispatch:
			dispatches++
		case trace.JobDone:
			done++
			if r.Task != "rta" || r.VM != "vm0" {
				t.Fatalf("bad completion record: %+v", r)
			}
		case trace.JobMiss:
			miss++
		}
	}
	if done != 100 {
		t.Fatalf("completions recorded = %d, want 100", done)
	}
	if miss != 0 {
		t.Fatalf("misses recorded = %d", miss)
	}
	if dispatches < 100 {
		t.Fatalf("dispatches recorded = %d, want ≥100", dispatches)
	}
	// The guest admits the task once; the verdict must be on the bus.
	if c := rec.Counts(); c[trace.Admit] == 0 {
		t.Fatalf("no admission events recorded: %v", c)
	}
}

func TestTimeline(t *testing.T) {
	var r trace.Recorder
	r.Add(trace.Record{At: 0, Kind: trace.Dispatch, PCPU: 0, VM: "vmA"})
	r.Add(trace.Record{At: simtime.Time(ms(5)), Kind: trace.Dispatch, PCPU: 0, VM: "vmB"})
	out := r.Timeline(1, 0, simtime.Time(ms(10)), 10)
	if !strings.Contains(out, "pcpu0") {
		t.Fatalf("timeline missing pcpu row:\n%s", out)
	}
	// First half occupied by vmA ('A'), second by vmB ('B').
	if !strings.Contains(out, "A") || !strings.Contains(out, "B") {
		t.Fatalf("timeline content wrong:\n%s", out)
	}
	if r.Timeline(1, 0, 0, 10) != "" || r.Timeline(1, 0, 1, 0) != "" {
		t.Fatal("degenerate timeline should be empty")
	}
}

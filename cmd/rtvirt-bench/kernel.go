package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"rtvirt"
	"rtvirt/internal/eventq"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
)

// Baseline numbers recorded on the pre-rewrite kernel (container/heap
// queue with closure-per-event scheduling, commit 210b422) on an Intel
// Xeon @ 2.10GHz — the same container class CI uses. The mix baseline ran
// the identical operation blend with Cancel+Schedule standing in for
// Reschedule, which the old API did not have. Wall time is the best of
// ten sequential fig3 runs at 100 simulated seconds, interleaved with the
// rewritten binary to cancel container noise. bench3KernelMixNs is the
// intrusive-4-ary-heap checkpoint recorded in BENCH_3.json on the same
// container class — the middle point of the 179.8 → 83 → wheel
// trajectory.
const (
	baselineKernelMixNs   = 179.8 // median of 3 × 2s runs, pre-rewrite
	bench3KernelMixNs     = 83.0  // BENCH_3.json checkpoint, intrusive 4-ary heap
	baselineScheduleFire  = 120.6 // median of 3 × 2s runs
	baselineFig3WallSecs  = 0.526
	baselineAllocsPerOp   = 0
	baselineKernelDetails = "container/heap, per-event closure, linear rtxen scan"
)

type kernelSide struct {
	KernelMixNsPerEvent float64 `json:"kernel_mix_ns_per_event"`
	KernelMixEventsSec  float64 `json:"kernel_mix_events_per_sec"`
	ScheduleFireNsPerOp float64 `json:"schedule_fire_ns_per_op"`
	Fig3WallSeconds     float64 `json:"fig3_100s_wall_seconds"`
	AllocsPerOp         int64   `json:"allocs_per_op"`
	Details             string  `json:"details"`
}

// backendSide is one event-queue backend's measurement across the three
// kernel mixes plus the end-to-end Figure 3 wall time under that backend.
type backendSide struct {
	KernelMixNsPerEvent float64 `json:"kernel_mix_ns_per_event"`
	TimerHeavyNsPerOp   float64 `json:"timer_heavy_ns_per_op"`
	ChurnHeavyNsPerOp   float64 `json:"churn_heavy_ns_per_op"`
	AllocsPerOp         int64   `json:"allocs_per_op"`
	Fig3WallSeconds     float64 `json:"fig3_100s_wall_seconds"`
	Details             string  `json:"details"`
}

type kernelReport struct {
	Bench       string      `json:"bench"`
	GoVersion   string      `json:"go_version"`
	Baseline    kernelSide  `json:"baseline"`
	Heap        backendSide `json:"heap"`
	Wheel       backendSide `json:"wheel"`
	Current     kernelSide  `json:"current"`
	Improvement struct {
		KernelMixPct    float64 `json:"kernel_mix_pct"`    // pre-rewrite baseline → wheel
		VsBench3Pct     float64 `json:"vs_bench3_pct"`     // BENCH_3 heap checkpoint → wheel
		MixVsHeapPct    float64 `json:"mix_vs_heap_pct"`   // measured heap → wheel, headline
		TimerVsHeapPct  float64 `json:"timer_vs_heap_pct"` // measured heap → wheel, timer-heavy
		ChurnVsHeapPct  float64 `json:"churn_vs_heap_pct"` // measured heap → wheel, churn-heavy
		ScheduleFirePct float64 `json:"schedule_fire_pct"` // baseline → current
		Fig3WallPct     float64 `json:"fig3_wall_pct"`     // baseline → wheel wall
	} `json:"improvement"`
}

// benchKernelMix is the same blend as internal/eventq's BenchmarkKernelMix:
// per event fired, one standing handle moves (the hv per-PCPU timer), one
// fresh event is admitted, and the head pops.
func benchKernelMix(bk eventq.Backend) func(b *testing.B) {
	return func(b *testing.B) {
		var q eventq.Queue
		q.SetBackend(bk)
		nop := func(simtime.Time) {}
		rng := rand.New(rand.NewSource(1))
		standing := make([]eventq.Handle, 256)
		for i := range standing {
			standing[i] = q.Schedule(simtime.Time(1_000_000+i), nop)
		}
		now := simtime.Time(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := i % len(standing)
			standing[k] = q.Reschedule(standing[k], now+1_000_000+simtime.Time(rng.Int63n(1_000_000)))
			q.Schedule(now+1, nop)
			q.Fire()
			now++
		}
	}
}

// benchKernelMixTimer mirrors BenchmarkKernelMixTimer: four standing
// timers move per admission+fire — the multi-PCPU Kick/VCPURecheck shape.
func benchKernelMixTimer(bk eventq.Backend) func(b *testing.B) {
	return func(b *testing.B) {
		var q eventq.Queue
		q.SetBackend(bk)
		nop := func(simtime.Time) {}
		rng := rand.New(rand.NewSource(2))
		standing := make([]eventq.Handle, 256)
		for i := range standing {
			standing[i] = q.Schedule(simtime.Time(1_000_000+i), nop)
		}
		now := simtime.Time(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < 4; j++ {
				k := (i*4 + j) % len(standing)
				standing[k] = q.Reschedule(standing[k], now+1_000_000+simtime.Time(rng.Int63n(1_000_000)))
			}
			q.Schedule(now+1, nop)
			q.Fire()
			now++
		}
	}
}

// benchKernelMixChurn mirrors BenchmarkKernelMixChurn: short-lived events
// admitted, sometimes cancelled, and popped in quick succession.
func benchKernelMixChurn(bk eventq.Backend) func(b *testing.B) {
	return func(b *testing.B) {
		var q eventq.Queue
		q.SetBackend(bk)
		nop := func(simtime.Time) {}
		rng := rand.New(rand.NewSource(3))
		var pending [64]eventq.Handle
		now := simtime.Time(4096)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := i % len(pending)
			q.Cancel(pending[k])
			pending[k] = q.Schedule(now+simtime.Time(rng.Int63n(4096)), nop)
			q.Schedule(now+1, nop)
			q.Fire()
			q.Fire()
			now++
		}
		b.StopTimer()
		for q.Fire() {
		}
	}
}

func benchScheduleFire(b *testing.B) {
	var q eventq.Queue
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Schedule(simtime.Time(rng.Int63n(1<<30)), func(simtime.Time) {})
		if q.Len() > 1024 {
			q.Fire()
		}
	}
	for q.Fire() {
	}
}

// measureBackend runs the three kernel mixes and the sequential Figure 3
// wall-time leg under one event-queue backend.
func measureBackend(bk eventq.Backend, details string) backendSide {
	mix := testing.Benchmark(benchKernelMix(bk))
	timer := testing.Benchmark(benchKernelMixTimer(bk))
	churn := testing.Benchmark(benchKernelMixChurn(bk))

	prev := sim.DefaultBackend
	sim.DefaultBackend = bk
	defer func() { sim.DefaultBackend = prev }()
	cfg := rtvirt.DefaultFigure3Config()
	cfg.Seed = 1
	cfg.Duration = 100 * rtvirt.Second
	wall := time.Duration(1<<62 - 1)
	for i := 0; i < 5; i++ {
		start := time.Now()
		rtvirt.Figure3(cfg)
		if d := time.Since(start); d < wall {
			wall = d
		}
	}
	return backendSide{
		KernelMixNsPerEvent: float64(mix.NsPerOp()),
		TimerHeavyNsPerOp:   float64(timer.NsPerOp()),
		ChurnHeavyNsPerOp:   float64(churn.NsPerOp()),
		AllocsPerOp:         mix.AllocsPerOp() + timer.AllocsPerOp() + churn.AllocsPerOp(),
		Fig3WallSeconds:     wall.Seconds(),
		Details:             details,
	}
}

// runKernel benchmarks the event-queue kernel — the hierarchical timing
// wheel against the intrusive 4-ary heap, and both against the recorded
// pre-rewrite baseline — and writes the comparison to outPath
// (BENCH_5.json). The end-to-end leg runs Figure 3 sequentially so the
// wall-clock delta reflects the kernel, not worker-pool scheduling.
func runKernel(outPath string) {
	fmt.Println("Kernel microbenchmark — hierarchical timing wheel vs intrusive 4-ary heap")

	heap := measureBackend(eventq.BackendHeap,
		"intrusive 4-ary heap, in-place reschedule, standing per-PCPU events")
	wheel := measureBackend(eventq.BackendWheel,
		"hierarchical timing wheel (4×64 slots), heap overflow, batched same-instant firing")
	sf := testing.Benchmark(benchScheduleFire)

	var r kernelReport
	r.Bench = "eventq kernel mixes (headline, timer-heavy, churn-heavy) — wheel vs heap"
	r.GoVersion = runtime.Version()
	r.Baseline = kernelSide{
		KernelMixNsPerEvent: baselineKernelMixNs,
		KernelMixEventsSec:  1e9 / baselineKernelMixNs,
		ScheduleFireNsPerOp: baselineScheduleFire,
		Fig3WallSeconds:     baselineFig3WallSecs,
		AllocsPerOp:         baselineAllocsPerOp,
		Details:             baselineKernelDetails,
	}
	r.Heap = heap
	r.Wheel = wheel
	r.Current = kernelSide{
		KernelMixNsPerEvent: wheel.KernelMixNsPerEvent,
		KernelMixEventsSec:  1e9 / wheel.KernelMixNsPerEvent,
		ScheduleFireNsPerOp: float64(sf.NsPerOp()),
		Fig3WallSeconds:     wheel.Fig3WallSeconds,
		AllocsPerOp:         wheel.AllocsPerOp,
		Details:             wheel.Details,
	}
	pct := func(before, after float64) float64 { return 100 * (1 - after/before) }
	r.Improvement.KernelMixPct = pct(baselineKernelMixNs, wheel.KernelMixNsPerEvent)
	r.Improvement.VsBench3Pct = pct(bench3KernelMixNs, wheel.KernelMixNsPerEvent)
	r.Improvement.MixVsHeapPct = pct(heap.KernelMixNsPerEvent, wheel.KernelMixNsPerEvent)
	r.Improvement.TimerVsHeapPct = pct(heap.TimerHeavyNsPerOp, wheel.TimerHeavyNsPerOp)
	r.Improvement.ChurnVsHeapPct = pct(heap.ChurnHeavyNsPerOp, wheel.ChurnHeavyNsPerOp)
	r.Improvement.ScheduleFirePct = pct(baselineScheduleFire, r.Current.ScheduleFireNsPerOp)
	r.Improvement.Fig3WallPct = pct(baselineFig3WallSecs, wheel.Fig3WallSeconds)

	for _, row := range []struct {
		name string
		h, w float64
	}{
		{"kernel mix", heap.KernelMixNsPerEvent, wheel.KernelMixNsPerEvent},
		{"timer-heavy", heap.TimerHeavyNsPerOp, wheel.TimerHeavyNsPerOp},
		{"churn-heavy", heap.ChurnHeavyNsPerOp, wheel.ChurnHeavyNsPerOp},
	} {
		fmt.Printf("  %-12s heap %7.1f ns/op   wheel %7.1f ns/op  (%+.1f%%)\n",
			row.name+":", row.h, row.w, pct(row.h, row.w))
	}
	fmt.Printf("  headline vs pre-rewrite baseline %.1f: %+.1f%%; vs BENCH_3 heap %.1f: %+.1f%%; allocs/op %d\n",
		baselineKernelMixNs, r.Improvement.KernelMixPct, bench3KernelMixNs,
		r.Improvement.VsBench3Pct, wheel.AllocsPerOp)
	fmt.Printf("  schedule/fire: %8.1f ns/op  (baseline %.1f, %+.1f%%)\n",
		r.Current.ScheduleFireNsPerOp, baselineScheduleFire, r.Improvement.ScheduleFirePct)
	fmt.Printf("  fig3 @100s:    heap %.3f s   wheel %.3f s  (baseline %.3f, %+.1f%%)\n",
		heap.Fig3WallSeconds, wheel.Fig3WallSeconds, baselineFig3WallSecs, r.Improvement.Fig3WallPct)

	buf, err := json.MarshalIndent(&r, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", outPath)
}

package experiments

import (
	"fmt"
	"strings"

	"rtvirt/internal/clone"
	"rtvirt/internal/core"
	"rtvirt/internal/guest"
	"rtvirt/internal/metrics"
	"rtvirt/internal/runner"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
	"rtvirt/internal/workload"
)

// Figure4Config tunes the dynamic video-streaming experiment (§4.3).
type Figure4Config struct {
	Seed     uint64
	Duration simtime.Duration // 10 minutes in the paper
	VMs      int              // 4
	VCPUs    int              // 4 per VM
	PCPUs    int              // 15
	// SampleEvery sets the allocation time-series resolution.
	SampleEvery simtime.Duration
}

// DefaultFigure4Config mirrors §4.3.
func DefaultFigure4Config() Figure4Config {
	return Figure4Config{
		Seed:        1,
		Duration:    10 * simtime.Minute,
		VMs:         4,
		VCPUs:       4,
		PCPUs:       15,
		SampleEvery: simtime.Seconds(10),
	}
}

// AllocationSample is one point of the Figure-4 time series.
type AllocationSample struct {
	At simtime.Time
	// CPUPercent is the VM's reserved bandwidth in percent of one CPU.
	CPUPercent float64
}

// Figure4Result is the outcome of the dynamic experiment.
type Figure4Result struct {
	// PerVM holds each VM's allocation time series (Figure 4a).
	PerVM map[string][]AllocationSample
	// RTAsRun counts the streaming RTAs that executed (54 in the paper's
	// run; RNG-dependent here).
	RTAsRun int
	// Rejected counts admission-control rejections.
	Rejected int
	// Misses summarises deadline outcomes across all RTAs.
	Misses metrics.MissSummary
	// TasksWithMisses / WorstMissPct reproduce the §4.3 claims ("out of
	// the 54 RTAs ... only five had deadline misses, worst 0.136%").
	TasksWithMisses int
	WorstMissPct    float64
	// AvgAllocated and PeakAllocated contrast the dynamic allocation with
	// a static peak-provisioned approach, in CPUs.
	AvgAllocated  float64
	PeakAllocated float64
}

// Event kinds of the Figure-4 driver (dispatched on (kind, owner)).
const (
	// evF4SegEnd unregisters a finished segment's RTA. Owner is the
	// segment id.
	evF4SegEnd uint16 = iota
	// evF4SegNext schedules the next random segment on a VCPU. Owner packs
	// the (guest index, vcpu) slot as gi<<8 | vcpu.
	evF4SegNext
	// evF4Sample takes one allocation time-series sample.
	evF4Sample
)

// fig4seg is one pending segment: the guest slot it occupies and the task
// to unregister when it ends.
type fig4seg struct {
	gi int
	t  *task.Task
}

// fig4run drives the dynamic experiment as a typed event handler, so a
// mid-run Figure-4 world is plain forkable state (no closures in flight).
type fig4run struct {
	cfg      Figure4Config
	sim      *sim.Simulator
	rng      *sim.RNG
	id       int32
	guests   []*guest.OS
	res      *Figure4Result
	all      []*task.Task
	segs     map[int32]*fig4seg
	nextSeg  int32
	nextID   int
	allocSum float64
	allocN   int
}

// newFig4 builds the §4.3 system, starts the per-VCPU segment chains and
// the allocation sampler, and returns the driver plus its system.
func newFig4(cfg Figure4Config) (*fig4run, *core.System) {
	sysCfg := core.DefaultConfig(core.RTVirt)
	sysCfg.PCPUs = cfg.PCPUs
	sysCfg.Seed = cfg.Seed
	sys := core.NewSystem(sysCfg)

	r := &fig4run{
		cfg:  cfg,
		sim:  sys.Sim,
		res:  &Figure4Result{PerVM: map[string][]AllocationSample{}},
		segs: map[int32]*fig4seg{},
	}
	for i := 0; i < cfg.VMs; i++ {
		g := mustGuest(sys.NewGuest(fmt.Sprintf("vm%d", i+1), cfg.VCPUs))
		r.guests = append(r.guests, g)
	}
	sys.Start()
	r.rng = sys.Sim.RNG().Split()
	r.id = sys.Sim.RegisterHandler(r)
	for gi := range r.guests {
		for v := 0; v < cfg.VCPUs; v++ {
			r.schedule(gi, v, 0)
		}
	}
	r.sim.PostAt(0, sim.Payload{Handler: r.id, Kind: evF4Sample})
	return r, sys
}

// schedule begins one random segment on (guest gi, vcpu): a streaming RTA
// with a random Table-3 profile, or an idle interval holding a 10% reserve.
// Durations are uniform in [10s, 6min]; the chain covers the run.
func (r *fig4run) schedule(gi, vcpu int, at simtime.Time) {
	if at >= simtime.Time(r.cfg.Duration) {
		return
	}
	segment := simtime.Duration(r.rng.Int63n(int64(6*simtime.Minute-simtime.Seconds(10)))) + simtime.Seconds(10)
	end := simtime.Min(at.Add(segment), simtime.Time(r.cfg.Duration))
	idle := r.rng.Intn(5) == 0 // a fifth of the segments are idle gaps
	var t *task.Task
	if idle {
		// Idle interval: the VCPU keeps a 10% reservation (§4.3).
		t = task.New(r.nextID, fmt.Sprintf("reserve-%d", r.nextID), task.Periodic, pp(1, 10))
	} else {
		prof := workload.VideoProfiles[r.rng.Intn(len(workload.VideoProfiles))]
		t = task.New(r.nextID, fmt.Sprintf("vlc%dfps-%d", prof.FPS, r.nextID), task.Periodic, prof.Params)
	}
	r.nextID++
	g := r.guests[gi]
	if err := g.RegisterOn(t, vcpu); err != nil {
		r.res.Rejected++
	} else {
		if !idle {
			r.res.RTAsRun++
			r.all = append(r.all, t)
			g.StartPeriodic(t, at)
		}
		segID := r.nextSeg
		r.nextSeg++
		r.segs[segID] = &fig4seg{gi: gi, t: t}
		r.sim.PostAt(end, sim.Payload{Handler: r.id, Kind: evF4SegEnd, Owner: segID})
	}
	r.sim.PostAt(end, sim.Payload{Handler: r.id, Kind: evF4SegNext, Owner: int32(gi<<8 | vcpu)})
}

// sample records one point of the allocation time series.
func (r *fig4run) sample(now simtime.Time) {
	var total float64
	for _, g := range r.guests {
		bw := g.AllocatedBandwidth()
		total += bw
		r.res.PerVM[g.VM().Name] = append(r.res.PerVM[g.VM().Name],
			AllocationSample{At: now, CPUPercent: 100 * bw})
	}
	r.allocSum += total
	r.allocN++
	if total > r.res.PeakAllocated {
		r.res.PeakAllocated = total
	}
	if now < simtime.Time(r.cfg.Duration) {
		r.sim.PostAt(now.Add(r.cfg.SampleEvery), sim.Payload{Handler: r.id, Kind: evF4Sample})
	}
}

// HandleSimEvent implements sim.Handler.
func (r *fig4run) HandleSimEvent(now simtime.Time, ev sim.Payload) {
	switch ev.Kind {
	case evF4SegEnd:
		seg := r.segs[ev.Owner]
		delete(r.segs, ev.Owner)
		must(r.guests[seg.gi].Unregister(seg.t))
	case evF4SegNext:
		r.schedule(int(ev.Owner>>8), int(ev.Owner&0xff), now)
	case evF4Sample:
		r.sample(now)
	default:
		panic(fmt.Sprintf("experiments: unknown fig4 event kind %d", ev.Kind))
	}
}

// ForkHandler implements sim.Handler: the driver's pending segments, RNG
// stream and partial results all follow the fork.
func (r *fig4run) ForkHandler(ctx *clone.Ctx) sim.Handler {
	if n, ok := ctx.Lookup(r); ok {
		return n.(*fig4run)
	}
	nr := &fig4run{
		cfg:      r.cfg,
		sim:      clone.Get(ctx, r.sim),
		rng:      r.rng.Clone(),
		id:       r.id,
		segs:     make(map[int32]*fig4seg, len(r.segs)),
		nextSeg:  r.nextSeg,
		nextID:   r.nextID,
		allocSum: r.allocSum,
		allocN:   r.allocN,
	}
	ctx.Put(r, nr)
	nr.guests = make([]*guest.OS, len(r.guests))
	for i, g := range r.guests {
		nr.guests[i] = g.ForkDriver(ctx).(*guest.OS)
	}
	nr.all = make([]*task.Task, len(r.all))
	for i, t := range r.all {
		nr.all[i] = task.Clone(ctx, t)
	}
	for id, seg := range r.segs {
		nr.segs[id] = &fig4seg{gi: seg.gi, t: task.Clone(ctx, seg.t)}
	}
	res := *r.res
	res.PerVM = make(map[string][]AllocationSample, len(r.res.PerVM))
	for name, samples := range r.res.PerVM {
		res.PerVM[name] = append([]AllocationSample(nil), samples...)
	}
	nr.res = &res
	return nr
}

// finish aggregates the driver's state into the experiment result.
func (r *fig4run) finish() Figure4Result {
	res := *r.res
	res.Misses = workload.MissSummary(r.all)
	res.TasksWithMisses = res.Misses.TasksWithMisses
	res.WorstMissPct = 100 * res.Misses.WorstRatio
	if r.allocN > 0 {
		res.AvgAllocated = r.allocSum / float64(r.allocN)
	}
	return res
}

// Figure4 runs the §4.3 experiment: VMs host video-streaming RTAs that
// arrive and leave dynamically; each RTA has random Table-3 parameters,
// random start and duration; idle gaps hold a 10% reservation. RTVirt's
// hypercall path re-negotiates VM bandwidth on every transition.
func Figure4(cfg Figure4Config) Figure4Result {
	r, sys := newFig4(cfg)
	sys.Run(cfg.Duration + simtime.Seconds(2))
	return r.finish()
}

// SurgeRow is one arm of the Figure-4 load-surge counterfactual.
type SurgeRow struct {
	// Extra is the number of streaming RTAs injected at the fork point.
	Extra    int
	Admitted int
	Rejected int
	// Misses summarises the injected RTAs' deadline outcomes in the tail.
	Misses metrics.MissSummary
	// Allocated is the total reserved bandwidth at the end, in CPUs.
	Allocated float64
}

// Figure4Surge asks a what-if question of the §4.3 dynamic system: after
// `warm` of simulated churn, what happens if k extra streaming RTAs all
// arrive at once? The warmed world is simulated once; each surge level
// forks it (runner.MapForked) and injects its arrivals into the fork, so
// the arms share the pre-surge history bit-for-bit and differ only in the
// surge itself.
func Figure4Surge(cfg Figure4Config, surges []int, warm, tail simtime.Duration) []SurgeRow {
	r, sys := newFig4(cfg)
	sys.Run(warm)
	type world struct {
		sys *core.System
		r   *fig4run
	}
	return runner.MapForked(0, surges,
		func(int, int) world {
			nsys, ctx, err := sys.Fork()
			must(err)
			return world{sys: nsys, r: clone.Get(ctx, r)}
		},
		func(_ int, k int, w world) SurgeRow {
			row := SurgeRow{Extra: k}
			now := w.sys.Now()
			var injected []*task.Task
			for i := 0; i < k; i++ {
				prof := workload.VideoProfiles[i%len(workload.VideoProfiles)]
				t := task.New(100000+i, fmt.Sprintf("surge%d", i), task.Periodic, prof.Params)
				g := w.r.guests[i%len(w.r.guests)]
				if err := g.Register(t); err != nil {
					row.Rejected++
					continue
				}
				row.Admitted++
				injected = append(injected, t)
				g.StartPeriodic(t, now)
			}
			w.sys.Run(tail)
			row.Misses = workload.MissSummary(injected)
			for _, g := range w.r.guests {
				row.Allocated += g.AllocatedBandwidth()
			}
			return row
		})
}

// RenderFigure4Surge formats the surge sweep.
func RenderFigure4Surge(rows []SurgeRow) string {
	t := metrics.NewTable("surge RTAs", "admitted", "rejected", "miss %", "alloc CPUs")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.Extra), r.Admitted, r.Rejected,
			fmt.Sprintf("%.3f", 100*r.Misses.Ratio()), fmt.Sprintf("%.2f", r.Allocated))
	}
	var b strings.Builder
	b.WriteString("Figure 4 surge — forked what-if: k RTAs arrive at once into the warmed world\n")
	b.WriteString(t.String())
	return b.String()
}

// Render formats the Figure-4 summary.
func (r Figure4Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 4 — dynamic video-streaming RTAs under RTVirt\n")
	fmt.Fprintf(&b, "RTAs run: %d (rejected by admission: %d)\n", r.RTAsRun, r.Rejected)
	fmt.Fprintf(&b, "Deadlines: %s\n", r.Misses)
	fmt.Fprintf(&b, "Tasks with ≥1 miss: %d; worst per-task miss: %.3f%%\n",
		r.TasksWithMisses, r.WorstMissPct)
	fmt.Fprintf(&b, "Average allocation: %.2f CPUs (static peak provisioning: %.2f CPUs, saving %.1f%%)\n",
		r.AvgAllocated, r.PeakAllocated, 100*(1-r.AvgAllocated/r.PeakAllocated))
	t := metrics.NewTable("t (s)", "VM1 %", "VM2 %", "VM3 %", "VM4 %")
	n := len(r.PerVM["vm1"])
	for i := 0; i < n; i += 6 { // print every minute
		row := []any{fmt.Sprintf("%.0f", r.PerVM["vm1"][i].At.Seconds())}
		for v := 1; v <= 4; v++ {
			s := r.PerVM[fmt.Sprintf("vm%d", v)]
			if i < len(s) {
				row = append(row, fmt.Sprintf("%.0f", s[i].CPUPercent))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	b.WriteString(t.String())
	return b.String()
}

package runner

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestPoolRounds(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var sum atomic.Int64
	const rounds = 1000
	for r := 0; r < rounds; r++ {
		p.Do(4, func(w int) { sum.Add(int64(w + 1)) })
	}
	if got := sum.Load(); got != rounds*(1+2+3+4) {
		t.Fatalf("sum = %d, want %d", got, rounds*10)
	}
}

func TestPoolPartialRound(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	var hit [8]atomic.Bool
	p.Do(3, func(w int) { hit[w].Store(true) })
	for w := range hit {
		if want := w < 3; hit[w].Load() != want {
			t.Errorf("worker %d ran=%v, want %v", w, hit[w].Load(), want)
		}
	}
	// Clamped above the pool size.
	p.Do(100, func(w int) { hit[w].Store(true) })
	for w := range hit {
		if !hit[w].Load() {
			t.Errorf("worker %d did not run in the clamped round", w)
		}
	}
}

func TestPoolPanicReRaised(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("worker panic was swallowed")
			}
			// Both workers 1 and 3 panic; the lowest wins so the failure
			// is deterministic regardless of scheduling.
			if msg, ok := r.(string); !ok || !strings.Contains(msg, "worker 1 panicked: boom-1") {
				t.Fatalf("unexpected panic payload: %v", r)
			}
		}()
		p.Do(4, func(w int) {
			if w == 1 {
				panic("boom-1")
			}
			if w == 3 {
				panic("boom-3")
			}
		})
	}()
	// The pool survives a panicked round.
	var n atomic.Int64
	p.Do(4, func(int) { n.Add(1) })
	if n.Load() != 4 {
		t.Fatalf("pool broken after panic: %d workers ran", n.Load())
	}
}

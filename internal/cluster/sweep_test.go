package cluster

import (
	"reflect"
	"testing"

	"rtvirt/internal/simtime"
)

// sweepDriver places two VMs, runs the cluster, and returns the per-VM
// miss counts plus which host each landed on — enough state to expose any
// cross-worker contamination.
func sweepDriver(c *Cluster) any {
	var r sweepOutcome
	for i, spec := range []VMSpec{vmSpec("a", 20, 40), vmSpec("b", 12, 40)} {
		d, err := c.Place(spec)
		if err != nil {
			panic(err)
		}
		r.Hosts[i] = d.Host.Name
	}
	c.Start()
	c.Run(2 * simtime.Second)
	for i, name := range []string{"a", "b"} {
		d, _ := c.Lookup(name)
		for _, tk := range d.Tasks() {
			r.Missed[i] += tk.Stats().Missed
		}
	}
	return r
}

type sweepOutcome struct {
	Hosts  [2]string
	Missed [2]int
}

func sweepSpecs() []SweepSpec {
	var specs []SweepSpec
	for _, p := range []Policy{FirstFit, BestFit, WorstFit} {
		cfg := DefaultConfig()
		cfg.Policy = p
		specs = append(specs, SweepSpec{Name: p.String(), Cfg: cfg, Run: sweepDriver})
	}
	return specs
}

// TestSweepParallelDeterminism runs the same specs sequentially and on
// eight workers: every cluster owns its clock, so results must match
// exactly and arrive in spec order.
func TestSweepParallelDeterminism(t *testing.T) {
	seq := Sweep(1, sweepSpecs())
	par := Sweep(8, sweepSpecs())
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("Sweep differs between 1 and 8 workers:\nseq: %#v\npar: %#v", seq, par)
	}
	for i, want := range []string{"first-fit", "best-fit", "worst-fit"} {
		if seq[i].Name != want {
			t.Fatalf("result %d = %q, want %q (input order must be preserved)", i, seq[i].Name, want)
		}
	}
}

// TestComparePolicies checks the convenience wrapper covers every policy
// in declaration order and actually varies the placement.
func TestComparePolicies(t *testing.T) {
	res := ComparePolicies(0, DefaultConfig(), sweepDriver)
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3", len(res))
	}
	names := []string{res[0].Name, res[1].Name, res[2].Name}
	if names[0] != "first-fit" || names[1] != "best-fit" || names[2] != "worst-fit" {
		t.Fatalf("policy order = %v", names)
	}
	// Worst-fit spreads where first-fit consolidates (cf. TestPlacementPolicies).
	ff := res[0].Value.(sweepOutcome)
	wf := res[2].Value.(sweepOutcome)
	if ff.Hosts[0] != ff.Hosts[1] {
		t.Errorf("first-fit split the VMs across hosts: %v", ff.Hosts)
	}
	if wf.Hosts[0] == wf.Hosts[1] {
		t.Errorf("worst-fit consolidated the VMs: %v", wf.Hosts)
	}
}

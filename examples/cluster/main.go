// Command cluster demonstrates the §6 multi-host extension: bandwidth-aware
// VM placement across RTVirt hosts and live migration with its overhead
// made visible as (bounded) deadline misses.
package main

import (
	"fmt"
	"log"

	"rtvirt"
)

func main() {
	cfg := rtvirt.ClusterDefaults()
	cfg.Hosts = 2
	cfg.PCPUs = 2
	cfg.Policy = rtvirt.BestFit // consolidate first, rebalance later
	c := rtvirt.NewCluster(cfg)

	// Place four 40%-CPU streaming VMs; best-fit packs them tightly.
	for i := 0; i < 4; i++ {
		spec := rtvirt.VMSpec{
			Name:  fmt.Sprintf("stream%d", i),
			VCPUs: 1,
			Tasks: []rtvirt.ClusterTaskSpec{{
				Name: "transcode",
				Kind: rtvirt.Periodic,
				Params: rtvirt.Params{
					Slice:  16 * rtvirt.Millisecond,
					Period: 40 * rtvirt.Millisecond,
				},
			}},
		}
		d, err := c.Place(spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("placed %-8s on %s\n", spec.Name, d.Host.Name)
	}
	c.Start()
	c.Run(5 * rtvirt.Second)

	show := func(label string) {
		fmt.Printf("\n%s:\n", label)
		for _, h := range c.Hosts {
			fmt.Printf("  %s reserves %.2f of %.0f CPUs\n",
				h.Name, h.ReservedBandwidth(), h.Capacity())
		}
	}
	show("after best-fit placement")

	// Rebalance: migrate until the spread is within 0.3 CPUs.
	moves := c.Rebalance(0.3)
	c.Run(5 * rtvirt.Second)
	show(fmt.Sprintf("after rebalancing (%d live migrations)", moves))

	fmt.Println()
	for _, d := range c.Deployments() {
		tk := d.Tasks()[0]
		st := tk.Stats()
		fmt.Printf("%-8s on %-6s frames=%4d missed=%2d (%.2f%%) migrations=%d blackout=%v\n",
			d.Spec.Name, d.Host.Name, st.Released, st.Missed, 100*st.MissRatio(),
			d.Migrations, d.BlackoutTotal)
	}
	fmt.Println("\nmigration downtime shows up as a handful of missed frames on the")
	fmt.Println("moved VMs — the overhead §6 says must be properly accounted for.")

	// Act three: a host crashes. Its VMs go dark for the recovery delay,
	// then restart on the survivor (placement permitting).
	victim := c.Hosts[0]
	affected := c.FailHost(victim)
	fmt.Printf("\n%s CRASHED — %d VMs dark for %v, recovering on the survivor\n",
		victim.Name, len(affected), cfg.RecoveryDelay)
	c.Run(5 * rtvirt.Second)
	show("after failover")
	for _, d := range c.Deployments() {
		tk := d.Tasks()[0]
		st := tk.Stats()
		state := "on " + d.Host.Name
		if d.Pending() {
			state = "PENDING (no capacity)"
		}
		fmt.Printf("%-8s %-22s frames=%4d missed=%3d failovers=%d blackout=%v\n",
			d.Spec.Name, state, st.Released, st.Missed, d.Failovers, d.BlackoutTotal)
	}
	fmt.Println("\nthe crash costs each affected VM its in-flight frame (abandoned →")
	fmt.Println("missed) plus ≈recovery-delay of frames never released while dark;")
	fmt.Println("once re-placed, admission control again guarantees every deadline.")
}

package experiments

import (
	"strings"
	"testing"

	"rtvirt/internal/simtime"
)

func TestTable4Shape(t *testing.T) {
	rows := Table4(1, 60*simtime.Second)
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[Arm]Table4Row{}
	for _, r := range rows {
		byName[r.Scheduler] = r
		if r.Requests < 5000 {
			t.Fatalf("%s served only %d requests", r.Scheduler, r.Requests)
		}
		if r.P90 > r.P95 || r.P95 > r.P99 || r.P99 > r.P999 {
			t.Fatalf("%s percentiles not monotone: %+v", r.Scheduler, r)
		}
	}
	credit, rtx, rtv := byName["Credit"], byName["RT-Xen"], byName[ArmRTVirt]
	// Table 4's shape: Credit ≫ RT-Xen ≥ RTVirt at the 99.9th percentile.
	if credit.P999 <= rtx.P999 || credit.P999 <= rtv.P999 {
		t.Fatalf("Credit p99.9 %v should dominate RT-Xen %v and RTVirt %v",
			credit.P999, rtx.P999, rtv.P999)
	}
	if rtv.P999 > rtx.P999 {
		t.Fatalf("RTVirt p99.9 %v should not exceed RT-Xen %v", rtv.P999, rtx.P999)
	}
	// Magnitudes within 2× of the paper's values (57.5µs/65.7µs/129.1µs).
	if rtv.P999 < simtime.Micros(40) || rtv.P999 > simtime.Micros(115) {
		t.Fatalf("RTVirt p99.9 = %v, paper reports 57.5µs", rtv.P999)
	}
	if credit.P999 < simtime.Micros(80) || credit.P999 > simtime.Micros(260) {
		t.Fatalf("Credit p99.9 = %v, paper reports 129.1µs", credit.P999)
	}
	if !strings.Contains(RenderTable4(rows), "99.9th") {
		t.Fatal("render broken")
	}
}

func TestFigure5aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long contention run")
	}
	cfg := DefaultFigure5Config()
	cfg.Duration = 120 * simtime.Second
	rows := Figure5a(cfg)
	byArm := map[Arm]Figure5Row{}
	for _, r := range rows {
		byArm[r.Arm] = r
		if r.Requests < 10000 {
			t.Fatalf("%s served %d requests, want ≥10k", r.Arm, r.Requests)
		}
	}
	// The paper's headline: RTVirt meets the 500µs SLO while using far less
	// bandwidth than any RT-Xen configuration that also meets it; Credit
	// cannot meet the SLO despite a low mean.
	rtv := byArm[ArmRTVirt]
	if !rtv.SLOMet {
		t.Fatalf("RTVirt missed the SLO: p99.9 = %v", rtv.P999)
	}
	if byArm[ArmCredit].SLOMet {
		t.Fatalf("Credit met the SLO (p99.9 %v); its tail should collapse", byArm[ArmCredit].P999)
	}
	if byArm[ArmCredit].Mean > simtime.Micros(220) {
		t.Fatalf("Credit mean %v; the BOOST path should keep the average low", byArm[ArmCredit].Mean)
	}
	for _, other := range []Arm{ArmRTXenA, ArmRTXenB} {
		r := byArm[other]
		if r.SLOMet && r.AllocatedBW <= rtv.AllocatedBW {
			t.Fatalf("%s met the SLO with bandwidth %.3f ≤ RTVirt %.3f — the efficiency claim breaks",
				other, r.AllocatedBW, rtv.AllocatedBW)
		}
	}
	// The 50.2% bandwidth saving vs RT-Xen A.
	saving := 1 - rtv.AllocatedBW/byArm[ArmRTXenA].AllocatedBW
	if saving < 0.45 || saving > 0.55 {
		t.Fatalf("bandwidth saving vs RT-Xen A = %.1f%%, paper reports 50.2%%", 100*saving)
	}
	t.Log(RenderFigure5("Figure 5a", rows, cfg.SLO))
}

func TestFigure5bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long contention run")
	}
	cfg := DefaultFigure5Config()
	cfg.Duration = 60 * simtime.Second
	rows := Figure5b(cfg)
	byArm := map[Arm]Figure5Row{}
	for _, r := range rows {
		byArm[r.Arm] = r
	}
	rtv := byArm[ArmRTVirt]
	if !rtv.SLOMet {
		t.Fatalf("RTVirt missed the SLO: p99.9 = %v", rtv.P999)
	}
	if rtv.VideoMisses.Ratio() > 0.01 {
		t.Fatalf("RTVirt video miss ratio %.3f%%, paper reports ≤0.8%%",
			100*rtv.VideoMisses.Ratio())
	}
	if byArm[ArmCredit].SLOMet && byArm[ArmCredit].VideoMisses.Ratio() < 0.001 {
		t.Fatal("Credit met both the SLO and the video deadlines; contention should hurt it")
	}
	// RT-Xen with overprovisioned servers should keep video deadlines.
	for _, a := range []Arm{ArmRTXenA, ArmRTXenB} {
		if byArm[a].VideoMisses.Ratio() > 0.01 {
			t.Fatalf("%s video miss ratio %.3f%%; overprovisioning should prevent misses",
				a, 100*byArm[a].VideoMisses.Ratio())
		}
	}
	t.Log(RenderFigure5("Figure 5b", rows, cfg.SLO))
}

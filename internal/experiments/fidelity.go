package experiments

import (
	"fmt"
	"strings"

	"rtvirt/internal/hv"
	"rtvirt/internal/metrics"
	"rtvirt/internal/simtime"
)

// The fidelity ablation re-runs the headline scheduler comparisons —
// Figure 3's per-group miss ratios and Table 6's overhead scaling — under
// two platform cost models: the paper's flat §4 constants
// (hv.DefaultCosts) and the distribution-valued, per-cause calibrated
// model (hv.CalibratedCosts). Following Mhatre & Chandran's observation
// that hypervisor costs are heavy-tailed and cause-dependent, and the
// RT-Xen line's observation that scheduler rankings can flip under
// realistic overhead noise, the point of the ablation is not the absolute
// numbers but which RTVirt-vs-RT-Xen comparisons survive the noise: each
// row reports the metric under both models and whether the winner is
// robust.

// FidelityConfig tunes the constant-vs-calibrated ablation.
type FidelityConfig struct {
	Seed uint64
	// Duration is the per-simulation run length (Figure 3 uses 100s in the
	// paper; the default keeps the 2×(12+2) simulation grid affordable).
	Duration simtime.Duration
	PCPUs    int
	// Requests is the sporadic request count for Figure 3's variant runs
	// (unused by the periodic groups; kept for parity with Figure3Config).
	Requests int
	// Parallel is the worker count each sub-experiment fans out on.
	Parallel int
}

// DefaultFidelityConfig mirrors the §4 setups at a practical run length.
func DefaultFidelityConfig() FidelityConfig {
	return FidelityConfig{Seed: 1, Duration: simtime.Seconds(10), PCPUs: 15, Requests: 100}
}

// FidelityRow is one scheduler comparison under both cost models. Lower is
// better for every metric (miss ratio, overhead percent), so the winner is
// whichever framework's value is smaller.
type FidelityRow struct {
	// Metric names the compared quantity, e.g. "Fig3 NH-Dec miss %".
	Metric string `json:"metric"`
	// Constant/Calibrated hold the (RTVirt, RT-Xen) pair under each model.
	ConstRTVirt float64 `json:"const_rtvirt"`
	ConstRTXen  float64 `json:"const_rtxen"`
	CalibRTVirt float64 `json:"calib_rtvirt"`
	CalibRTXen  float64 `json:"calib_rtxen"`
	// Robust reports whether the winner (or tie) is the same under both
	// models — i.e. the comparison does not hinge on the flat-constant
	// idealization.
	Robust bool `json:"robust"`
}

// winner reports which side of the comparison is smaller: -1 for a, +1 for
// b, 0 for a tie.
func winner(a, b float64) int {
	switch {
	case a < b:
		return -1
	case b < a:
		return 1
	default:
		return 0
	}
}

func makeRow(metric string, cv, cx, kv, kx float64) FidelityRow {
	return FidelityRow{
		Metric:      metric,
		ConstRTVirt: cv, ConstRTXen: cx,
		CalibRTVirt: kv, CalibRTXen: kx,
		Robust: winner(cv, cx) == winner(kv, kx),
	}
}

// FidelityResult is the full ablation: every compared metric plus the raw
// sub-experiment outputs for deeper digging (and BENCH_8.json).
type FidelityResult struct {
	Seed    uint64            `json:"seed"`
	Seconds float64           `json:"seconds"`
	PCPUs   int               `json:"pcpus"`
	Rows    []FidelityRow     `json:"rows"`
	Fig3    [2][]Figure3Row   `json:"-"`
	Table6  [2][]Table6Row    `json:"-"`
	Calib   map[string]string `json:"calibrated_model"`
}

// FidelityAblation runs Figure 3 and Table 6 (multi-RTA scenario) under
// the constant and calibrated cost models and compares the framework
// rankings. The two models share every seed and workload; only the cost
// draws differ, and those come from the dedicated per-host cost stream, so
// differences are attributable to cost noise alone.
func FidelityAblation(cfg FidelityConfig) FidelityResult {
	calib := hv.CalibratedCosts()
	res := FidelityResult{
		Seed:    cfg.Seed,
		Seconds: float64(cfg.Duration) / float64(simtime.Second),
		PCPUs:   cfg.PCPUs,
		Calib:   describeModel(&calib),
	}

	f3 := Figure3Config{Seed: cfg.Seed, Duration: cfg.Duration, PCPUs: cfg.PCPUs,
		Requests: cfg.Requests, Parallel: cfg.Parallel}
	res.Fig3[0] = Figure3(f3)
	f3.Costs = &calib
	res.Fig3[1] = Figure3(f3)
	for i, c := range res.Fig3[0] {
		k := res.Fig3[1][i]
		res.Rows = append(res.Rows, makeRow(
			fmt.Sprintf("Fig3 %s miss %%", c.Group),
			100*c.RTVirtMisses.Ratio(), 100*c.RTXenMisses.Ratio(),
			100*k.RTVirtMisses.Ratio(), 100*k.RTXenMisses.Ratio()))
	}

	t6 := Table6Config{Seed: cfg.Seed, Duration: cfg.Duration, PCPUs: cfg.PCPUs,
		Parallel: cfg.Parallel}
	res.Table6[0] = Table6(MultiRTAVMs, t6)
	t6.Costs = &calib
	res.Table6[1] = Table6(MultiRTAVMs, t6)
	cv, cx := res.Table6[0][0], res.Table6[0][1]
	kv, kx := res.Table6[1][0], res.Table6[1][1]
	res.Rows = append(res.Rows,
		makeRow("Table6 multi-RTA overhead %",
			cv.OverheadPct, cx.OverheadPct, kv.OverheadPct, kx.OverheadPct),
		makeRow("Table6 multi-RTA miss %",
			100*cv.Misses.Ratio(), 100*cx.Misses.Ratio(),
			100*kv.Misses.Ratio(), 100*kx.Misses.Ratio()),
		// Admission counts: higher is better, so negate for the shared
		// lower-is-better winner rule.
		makeRow("Table6 multi-RTA RTAs admitted (negated)",
			-float64(cv.RTAsAdmitted), -float64(cx.RTAsAdmitted),
			-float64(kv.RTAsAdmitted), -float64(kx.RTAsAdmitted)),
	)
	return res
}

// describeModel renders each calibrated term for the JSON record, so a
// benchmark file pins the exact distributions it was produced under.
func describeModel(m *hv.CostModel) map[string]string {
	return map[string]string{
		"hypercall_inc_bw":     m.HypercallIncBW.String(),
		"hypercall_dec_bw":     m.HypercallDecBW.String(),
		"hypercall_inc_dec_bw": m.HypercallIncDecBW.String(),
		"ctx_switch_warm":      m.CtxSwitchWarm.String(),
		"ctx_switch_cold":      m.CtxSwitchCold.String(),
		"migration":            m.Migration.String(),
		"migration_per_mib":    m.MigrationPerMiB.String(),
		"schedule_base":        m.ScheduleBase.String(),
		"schedule_per_entity":  m.SchedulePerEntity.String(),
		"guest_switch":         m.GuestSwitch.String(),
		"tick":                 m.Tick.String(),
	}
}

// RenderFidelity formats the ablation like the paper's tables: one row per
// compared metric, constant and calibrated values side by side, and a
// verdict column.
func RenderFidelity(res FidelityResult) string {
	t := metrics.NewTable("Metric", "const RTVirt", "const RT-Xen",
		"calib RTVirt", "calib RT-Xen", "verdict")
	robust := 0
	for _, r := range res.Rows {
		verdict := "FLIPS"
		if r.Robust {
			verdict = "robust"
			robust++
		}
		t.AddRow(r.Metric,
			fmt.Sprintf("%.3f", r.ConstRTVirt), fmt.Sprintf("%.3f", r.ConstRTXen),
			fmt.Sprintf("%.3f", r.CalibRTVirt), fmt.Sprintf("%.3f", r.CalibRTXen),
			verdict)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fidelity ablation — constant vs calibrated cost model (seed %d, %gs, %d PCPUs)\n",
		res.Seed, res.Seconds, res.PCPUs)
	b.WriteString(t.String())
	fmt.Fprintf(&b, "%d/%d scheduler comparisons robust to cost noise\n", robust, len(res.Rows))
	return b.String()
}

package trace

// Sink consumes telemetry events. Consume receives the event by value and
// must not retain pointers into it (there are none to retain); it is called
// synchronously from the simulation hot path, so cheap sinks keep the
// simulator fast. Sinks need no locking: a Bus belongs to one simulation,
// and simulations never share a Bus across goroutines.
type Sink interface {
	Consume(ev Event)
}

// Bus fans events out to attached sinks. The zero value is ready to use
// and disabled: Emit on a Bus with no sinks ranges over a nil slice, which
// is a no-op with zero allocations — no nil check, no branch on a tracer
// pointer. Embed it by value and call Emit unconditionally.
type Bus struct {
	sinks []Sink
}

// Attach adds sinks to the bus. Order is preserved: sinks see each event
// in attachment order.
func (b *Bus) Attach(sinks ...Sink) {
	b.sinks = append(b.sinks, sinks...)
}

// Reset detaches every sink, returning the bus to the disabled state.
func (b *Bus) Reset() { b.sinks = nil }

// Active reports whether any sink is attached. Emission sites that must
// build an Event (touch strings, compute an Arg) guard on this so the
// disabled path does no work at all.
func (b *Bus) Active() bool { return len(b.sinks) > 0 }

// Emit delivers ev to every attached sink, in order. With no sinks this
// is a no-op and performs zero allocations (proven by
// TestTracerDisabledZeroAlloc).
func (b *Bus) Emit(ev Event) {
	for _, s := range b.sinks {
		s.Consume(ev)
	}
}

package dpwrap

import (
	"rtvirt/internal/clone"
	"rtvirt/internal/eventq"
	"rtvirt/internal/hv"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
)

// ForkHandler implements sim.Handler: deep-copy the slice plan (per-PCPU
// wrap entries with consumed quota), the carry remainders, the idle-tax
// state, and the pending boundary/tax timers, remapping every VCPU through
// ctx. The entry pool is not carried over — it is a pure allocation cache
// and refills in the fork within a few slices.
func (s *Scheduler) ForkHandler(ctx *clone.Ctx) sim.Handler {
	if n, ok := ctx.Lookup(s); ok {
		return n.(*Scheduler)
	}
	ns := &Scheduler{
		cfg:           s.cfg,
		h:             clone.Get(ctx, s.h),
		id:            s.id,
		sliceStart:    s.sliceStart,
		sliceEnd:      s.sliceEnd,
		started:       s.started,
		replanPending: s.replanPending,
		rescuePending: s.rescuePending,
		Boundaries:    s.Boundaries,
		SlicesTotal:   s.SlicesTotal,
	}
	ctx.Put(s, ns)
	ns.boundaryEv = eventq.CloneHandle(ctx, s.boundaryEv)
	ns.taxEv = eventq.CloneHandle(ctx, s.taxEv)
	ns.vcpus = make([]*hv.VCPU, len(s.vcpus))
	for i, v := range s.vcpus {
		ns.vcpus[i] = clone.Get(ctx, v)
	}
	ns.carry = make(map[*hv.VCPU]int64, len(s.carry))
	for v, c := range s.carry {
		ns.carry[clone.Get(ctx, v)] = c
	}
	ns.taxFactor = make(map[*hv.VCPU]float64, len(s.taxFactor))
	for v, f := range s.taxFactor {
		ns.taxFactor[clone.Get(ctx, v)] = f
	}
	ns.windowUse = make(map[*hv.VCPU]simtime.Duration, len(s.windowUse))
	for v, u := range s.windowUse {
		ns.windowUse[clone.Get(ctx, v)] = u
	}
	ns.pcpu = make([]*pcpuState, len(s.pcpu))
	for i, ps := range s.pcpu {
		nps := &pcpuState{
			idx:       make(map[*hv.VCPU]int, len(ps.idx)),
			firstLive: ps.firstLive,
			lastAt:    ps.lastAt,
			bgCursor:  ps.bgCursor,
		}
		nps.entries = make([]*entry, len(ps.entries))
		for j, e := range ps.entries {
			ne := &entry{v: clone.Get(ctx, e.v), remaining: e.remaining, pcpu: e.pcpu}
			nps.entries[j] = ne
			if ps.lastEntry == e {
				nps.lastEntry = ne
			}
		}
		for v, j := range ps.idx {
			nps.idx[clone.Get(ctx, v)] = j
		}
		ns.pcpu[i] = nps
	}
	return ns
}

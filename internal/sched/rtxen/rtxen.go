// Package rtxen implements the RT-Xen 2.0 host scheduler used as the
// paper's primary baseline (§4.1): global EDF over VCPU deferrable
// servers.
//
// Each VCPU is a server with a (budget, period) interface computed offline
// by compositional scheduling analysis (see internal/csa). The server's
// budget replenishes to full at every period boundary; its EDF priority is
// its current period's end. A deferrable server retains unused budget
// while its guest idles within the period (the budget is consumed only
// while the VCPU actually runs) and loses whatever is left at the
// replenishment boundary.
//
// RT-Xen 2.0 as published is quantum-driven: budget accounting and
// scheduling decisions happen every 1ms quantum on each PCPU, plus on wake
// and replenishment events, with a global runqueue kept sorted by deadline
// (an O(n) insertion the paper's overhead analysis charges it for). Both
// behaviours are modelled here because Table 6 measures exactly their
// cost.
package rtxen

import (
	"fmt"
	"sort"

	"rtvirt/internal/eventq"
	"rtvirt/internal/hv"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/trace"
)

// evReplenish is the per-server budget replenishment timer; Owner is the
// host-global VCPU ID.
const evReplenish uint16 = iota

// Config tunes the scheduler.
type Config struct {
	// Quantum is the scheduling quantum (1ms in RT-Xen 2.0).
	Quantum simtime.Duration
	// AdmitGlobalEDF enables the gEDF utilization-bound admission test
	// (Σ utilization ≤ m). RT-Xen itself relies on offline analysis, so
	// the default host-side test is just capacity.
	AdmitGlobalEDF bool
	// Deferrable selects the server flavour. True (RT-Xen 2.0's best
	// configuration per §4.1) retains unused budget while the guest idles;
	// false forfeits it (a polling server), which is the plain
	// uncoordinated two-level EDF of the paper's Figure 1.
	Deferrable bool
	// EventDriven switches from quantum-driven budget accounting to the
	// experimental event-driven RT-Xen the paper mentions at the end of
	// §4.5: decisions last until budget exhaustion or replenishment
	// instead of expiring every quantum, cutting the number of schedule()
	// calls (the per-call cost of the sorted runqueue remains).
	EventDriven bool
}

// DefaultConfig mirrors RT-Xen 2.0 defaults (gEDF + deferrable server).
func DefaultConfig() Config {
	return Config{Quantum: simtime.Millis(1), AdmitGlobalEDF: true, Deferrable: true}
}

// EventDrivenConfig returns the experimental event-driven variant noted in
// §4.5.
func EventDrivenConfig() Config {
	c := DefaultConfig()
	c.EventDriven = true
	return c
}

// PollingConfig is the naive two-level EDF baseline of Figure 1: an EDF
// VMM over polling servers that forfeit budget when the guest idles.
func PollingConfig() Config {
	return Config{Quantum: simtime.Millis(1), AdmitGlobalEDF: true, Deferrable: false}
}

// serverState is the per-VCPU deferrable-server state. All servers live in
// the Scheduler's flat srv array indexed by dense VCPU ID (struct-of-
// arrays), so replenish and the pickEDF/rankOf traversals touch contiguous
// memory instead of chasing a per-VCPU interface pointer.
type serverState struct {
	budget   simtime.Duration // remaining budget in the current period
	deadline simtime.Time     // end of the current period = EDF priority
	replEv   eventq.Handle
	// heapIdx is the server's slot in the runqueue heap (-1 when removed).
	heapIdx int32
	// running tracks the PCPU charging this server, or -1.
	runningOn int32
	// active marks the slot as holding an admitted server; background
	// VCPUs and vacated IDs stay inactive.
	active bool
	lastAt simtime.Time
}

// Scheduler is the RT-Xen gEDF + deferrable-server host scheduler.
type Scheduler struct {
	cfg Config
	h   *hv.Host
	id  int32 // typed-event handler ID

	// srv holds every server's hot state, indexed by VCPU ID; srv[id] is
	// live iff .active. The host's id-arena (Host.ByID) resolves IDs back
	// to VCPUs for the cold fields (Res, VM identity).
	srv []serverState

	// runq is the global runqueue as an indexed heap of VCPU IDs keyed by
	// (deadline, ID); see runq.go. Decision.Work still reports the
	// sorted-list scan count the published scheduler pays (what Table 6's
	// schedule-time column measures for RT-Xen) — the heap only makes the
	// simulator's own bookkeeping cheaper.
	runq runq

	// scratch is reused wherever a stable (deadline, ID)-ordered copy of
	// the runqueue membership is needed: Start iterates it while
	// armReplenish re-keys the heap, and admission sums bandwidth in the
	// exact float order the seed's sorted list produced.
	scratch []int32

	bgCursor int
	started  bool
}

// New creates an RT-Xen scheduler.
func New(cfg Config) *Scheduler {
	if cfg.Quantum <= 0 {
		cfg.Quantum = simtime.Millis(1)
	}
	return &Scheduler{cfg: cfg}
}

// Name implements hv.HostScheduler.
func (s *Scheduler) Name() string { return "rt-xen-gedf-ds" }

// Attach implements hv.HostScheduler.
func (s *Scheduler) Attach(h *hv.Host) {
	s.h = h
	s.id = h.Sim.RegisterHandler(s)
}

// HandleSimEvent implements sim.Handler.
func (s *Scheduler) HandleSimEvent(now simtime.Time, ev sim.Payload) {
	switch ev.Kind {
	case evReplenish:
		// The server must still exist: RemoveVCPU cancels its timer.
		s.replenish(s.h.ByID(int(ev.Owner)), now)
	default:
		panic(fmt.Sprintf("rtxen: unknown event kind %d", ev.Kind))
	}
}

// Start implements hv.HostScheduler.
func (s *Scheduler) Start(now simtime.Time) {
	s.started = true
	// Snapshot into the scratch buffer (armReplenish re-keys the heap while
	// we iterate) and walk it in (deadline, ID) order so the replenishment
	// events are installed in the same sequence the seed's sorted runqueue
	// produced — same-instant event FIFO order is part of determinism.
	for _, id := range s.sortedMembers() {
		s.armReplenish(s.h.ByID(int(id)), now)
	}
}

// sortedMembers snapshots the runqueue into scratch in (deadline, ID)
// order — the iteration order of the seed's sorted-list runqueue.
func (s *Scheduler) sortedMembers() []int32 {
	s.scratch = append(s.scratch[:0], s.runq.v...)
	sort.Slice(s.scratch, func(i, j int) bool { return s.rqLess(s.scratch[i], s.scratch[j]) })
	return s.scratch
}

// isServer reports whether v has an active server slot.
func (s *Scheduler) isServer(v *hv.VCPU) bool {
	return v.ID < len(s.srv) && s.srv[v.ID].active
}

// state returns v's server slot; the caller has established it is active.
func (s *Scheduler) state(v *hv.VCPU) *serverState { return &s.srv[v.ID] }

// AdmitVCPU implements hv.HostScheduler.
func (s *Scheduler) AdmitVCPU(v *hv.VCPU) error {
	if v.RT && v.Res.Budget > 0 {
		if !v.Res.Valid() {
			return fmt.Errorf("rtxen: %w: invalid server %v", hv.ErrAdmission, v.Res)
		}
		if s.cfg.AdmitGlobalEDF {
			// Sum in (deadline, ID) order — float addition order matters for
			// boundary-exact admissions, and this is the order the seed's
			// sorted runqueue summed in.
			sum := v.Res.Bandwidth()
			for _, x := range s.sortedMembers() {
				sum += s.h.ByID(int(x)).Res.Bandwidth()
			}
			if sum > float64(s.h.NumPCPUs())+1e-9 {
				return fmt.Errorf("rtxen: %w: utilization %0.3f exceeds %d CPUs",
					hv.ErrAdmission, sum, s.h.NumPCPUs())
			}
		}
		for len(s.srv) <= v.ID {
			s.srv = append(s.srv, serverState{})
		}
		s.srv[v.ID] = serverState{budget: v.Res.Budget, runningOn: -1, heapIdx: -1, active: true}
		s.runq.Push(s.srv, int32(v.ID))
		if s.started {
			s.armReplenish(v, s.h.Sim.Now())
		}
	}
	return nil
}

// RemoveVCPU implements hv.HostScheduler.
func (s *Scheduler) RemoveVCPU(v *hv.VCPU, now simtime.Time) {
	if s.isServer(v) {
		st := s.state(v)
		if st.heapIdx >= 0 {
			s.runq.Remove(s.srv, int32(v.ID))
		}
		s.h.Sim.Cancel(st.replEv)
		s.srv[v.ID] = serverState{}
	}
}

// UpdateVCPU implements hv.HostScheduler: RT-Xen has no online interface
// changes (configuration is offline via CSA), but the kernel plumbing is
// supported for completeness.
func (s *Scheduler) UpdateVCPU(v *hv.VCPU, res hv.Reservation, now simtime.Time) error {
	if !res.Valid() {
		return fmt.Errorf("rtxen: %w: invalid server %v", hv.ErrAdmission, res)
	}
	v.Res = res
	if s.isServer(v) {
		if st := s.state(v); st.budget > res.Budget {
			st.budget = res.Budget
		}
	}
	return nil
}

// armReplenish starts the server's periodic budget replenishment.
func (s *Scheduler) armReplenish(v *hv.VCPU, now simtime.Time) {
	st := s.state(v)
	st.deadline = now.Add(v.Res.Period)
	s.runq.Fix(s.srv, int32(v.ID))
	st.replEv = s.h.Sim.PostAt(st.deadline, sim.Payload{Handler: s.id, Kind: evReplenish, Owner: int32(v.ID)})
}

func (s *Scheduler) replenish(v *hv.VCPU, now simtime.Time) {
	s.chargeIfRunning(v, now)
	st := s.state(v)
	st.budget = v.Res.Budget
	st.deadline = now.Add(v.Res.Period)
	if s.h.Tracing() {
		s.h.Emit(trace.Event{At: now, Kind: trace.Replenish, PCPU: -1,
			VM: v.VM.Name, VCPU: v.Index, Arg: int64(v.Res.Budget)})
	}
	s.runq.Fix(s.srv, int32(v.ID))
	st.replEv = s.h.Sim.PostAt(st.deadline, sim.Payload{Handler: s.id, Kind: evReplenish, Owner: int32(v.ID)})
	// A replenished server may now outrank a running one.
	s.preemptCheck(v, now)
}

// chargeIfRunning deducts consumed budget for a currently-running server.
func (s *Scheduler) chargeIfRunning(v *hv.VCPU, now simtime.Time) {
	st := s.state(v)
	if st.runningOn < 0 {
		return
	}
	elapsed := now.Sub(st.lastAt)
	if elapsed >= st.budget {
		if st.budget > 0 && s.h.Tracing() {
			// Arg carries the overdraw: time charged beyond the remaining
			// budget. The kernel's allocations never exceed the budget, so
			// anything non-zero is an accounting bug (check.BudgetOracle).
			s.h.Emit(trace.Event{At: now, Kind: trace.Deplete, PCPU: int(st.runningOn),
				VM: v.VM.Name, VCPU: v.Index, Arg: int64(elapsed - st.budget)})
		}
		st.budget = 0
	} else {
		st.budget -= elapsed
	}
	st.lastAt = now
}

// preemptCheck kicks the PCPU running the lowest-priority work if v should
// run now and is not running.
func (s *Scheduler) preemptCheck(v *hv.VCPU, now simtime.Time) {
	if !s.started {
		return
	}
	st := s.state(v)
	hot := s.h.Hot()
	hs := hot[v.ID]
	if !hs.Runnable || st.budget <= 0 || hs.PCPU >= 0 {
		return
	}
	// Find the PCPU with the latest-deadline current occupant (or idle).
	var target *hv.PCPU
	var worst simtime.Time = -1
	for _, p := range s.h.PCPUs() {
		cur := p.Current()
		if cur == nil {
			target = p
			break
		}
		if !s.isServer(cur) {
			// Background occupant always yields.
			target = p
			break
		}
		if d := s.srv[cur.ID].deadline; d > worst {
			worst = d
			target = p
		}
	}
	if target == nil {
		return
	}
	if cur := target.Current(); cur != nil {
		if s.isServer(cur) && s.srv[cur.ID].deadline <= st.deadline {
			return // no PCPU runs lower-priority work
		}
	}
	s.h.Kick(target, now)
}

// VCPUWake implements hv.HostScheduler.
func (s *Scheduler) VCPUWake(v *hv.VCPU, now simtime.Time) {
	if s.isServer(v) {
		s.preemptCheck(v, now)
		return
	}
	// Background VCPU: grab an idle PCPU if any.
	for _, p := range s.h.PCPUs() {
		if p.Current() == nil {
			s.h.Kick(p, now)
			return
		}
	}
}

// VCPUIdle implements hv.HostScheduler. A deferrable server retains its
// remaining budget; a polling server forfeits it until the next
// replenishment. The charge is settled here because the kernel
// undispatches the VCPU before the next Schedule call.
func (s *Scheduler) VCPUIdle(v *hv.VCPU, now simtime.Time) {
	if s.isServer(v) {
		s.chargeIfRunning(v, now)
		st := s.state(v)
		st.runningOn = -1
		if !s.cfg.Deferrable {
			st.budget = 0
		}
	}
}

// Schedule implements hv.HostScheduler: pick the earliest-deadline
// runnable server with budget; quantum-driven accounting.
func (s *Scheduler) Schedule(p *hv.PCPU, now simtime.Time) hv.Decision {
	// Settle the charge of whatever this PCPU was running.
	if cur := p.Current(); cur != nil {
		if s.isServer(cur) {
			s.chargeIfRunning(cur, now)
			s.state(cur).runningOn = -1
		}
	}
	if id := s.runq.pickEDF(s.srv, s.h.Hot(), int32(p.ID)); id >= 0 {
		st := &s.srv[id]
		// Work models the published sorted-queue scan: every member ranked
		// ahead of the pick would have been examined.
		work := s.runq.rankOf(s.srv, id)
		run := simtime.MinDur(st.budget, s.cfg.Quantum)
		if s.cfg.EventDriven {
			// Event-driven: run until budget exhaustion or the next
			// replenishment boundary, whichever is sooner.
			run = simtime.MinDur(st.budget, st.deadline.Sub(now))
			if run <= 0 {
				run = st.budget
			}
		}
		st.runningOn = int32(p.ID)
		st.lastAt = now
		return hv.Decision{VCPU: s.h.ByID(int(id)), RunFor: run, Work: work}
	}
	// No eligible server: the modeled scan examined the whole queue.
	work := s.runq.Len()
	// Background fill: non-RT VCPUs and zero-budget RT VCPUs.
	if bg := s.pickBackground(p, &work); bg != nil {
		run := s.cfg.Quantum
		if s.cfg.EventDriven {
			run = simtime.Millis(10) // coarse slice; wakes preempt anyway
		}
		return hv.Decision{VCPU: bg, RunFor: run, Work: work}
	}
	// Idle until the next quantum; wakes and replenishments kick earlier.
	return hv.Decision{VCPU: nil, RunFor: simtime.Infinite, Work: work}
}

// ServerState reports v's live server accounting as of now — remaining
// budget (settling any in-progress charge without mutating it) and the
// current EDF deadline. ok is false for background (non-server) VCPUs.
// Read-only; used by the invariant oracles in internal/check.
func (s *Scheduler) ServerState(v *hv.VCPU, now simtime.Time) (budget simtime.Duration, deadline simtime.Time, ok bool) {
	if !s.isServer(v) {
		return 0, 0, false
	}
	st := s.state(v)
	b := st.budget
	if st.runningOn >= 0 {
		if e := now.Sub(st.lastAt); e >= b {
			b = 0
		} else {
			b -= e
		}
	}
	return b, st.deadline, true
}

// AdmittedBandwidth sums the bandwidth of every admitted server.
func (s *Scheduler) AdmittedBandwidth() float64 {
	sum := 0.0
	for _, id := range s.runq.v {
		sum += s.h.ByID(int(id)).Res.Bandwidth()
	}
	return sum
}

// Capacity is the gEDF admission bound in CPUs (Σ utilization ≤ m).
func (s *Scheduler) Capacity() float64 { return float64(s.h.NumPCPUs()) }

func (s *Scheduler) pickBackground(p *hv.PCPU, work *int) *hv.VCPU {
	all := s.h.VCPUs()
	n := len(all)
	if n == 0 {
		return nil
	}
	hot := s.h.Hot()
	for i := 0; i < n; i++ {
		v := all[(s.bgCursor+i)%n]
		*work++
		if s.isServer(v) {
			continue
		}
		if hs := hot[v.ID]; hs.Runnable && (hs.PCPU < 0 || hs.PCPU == int32(p.ID)) {
			s.bgCursor = (s.bgCursor + i + 1) % n
			return v
		}
	}
	return nil
}

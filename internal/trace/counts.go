package trace

import (
	"fmt"
	"strings"
)

// Counts is a per-kind event counter. It is both a Sink (attach a *Counts
// to a Bus) and a plain value that merges deterministically: the parallel
// runner returns per-run Counts in input order, and Merge is commutative
// over uint64 addition, so sweep totals are identical at any worker count.
type Counts [NumKinds]uint64

// Consume implements Sink.
func (c *Counts) Consume(ev Event) {
	if int(ev.Kind) < NumKinds {
		c[ev.Kind]++
	}
}

// Merge adds other's counters into c.
func (c *Counts) Merge(other Counts) {
	for i := range c {
		c[i] += other[i]
	}
}

// Total is the number of events counted across all kinds.
func (c Counts) Total() uint64 {
	var n uint64
	for _, v := range c {
		n += v
	}
	return n
}

// Hypercalls sums the three sched_rtvirt() hypercall kinds.
func (c Counts) Hypercalls() uint64 {
	return c[HypercallIncBW] + c[HypercallDecBW] + c[HypercallIncDecBW]
}

// String renders the non-zero counters as "kind=n" pairs in kind order.
func (c Counts) String() string {
	var b strings.Builder
	for i, v := range c {
		if v == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", Kind(i), v)
	}
	if b.Len() == 0 {
		return "(no events)"
	}
	return b.String()
}

package workload

import (
	"fmt"

	"rtvirt/internal/dist"
	"rtvirt/internal/guest"
	"rtvirt/internal/metrics"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

// IOAppConfig describes a request-driven application whose requests mix
// CPU work with an I/O wait: compute → I/O → compute. RTVirt guarantees
// only the CPU phases (§1: "RTVirt cannot provide any timeliness guarantee
// for such activities"); this workload measures what that means
// end-to-end.
type IOAppConfig struct {
	// Compute1/Compute2 are the CPU demands around the I/O wait.
	Compute1, Compute2 simtime.Duration
	// IOWait is the device time between the phases.
	IOWait dist.Duration
	// SLO is the end-to-end latency target.
	SLO simtime.Duration
	// ReservePeriod sizes the RTA reservation period (0 = SLO). Under
	// contention the fluid supply only completes by the period's end, so a
	// two-phase request needs a period comfortably inside the SLO.
	ReservePeriod simtime.Duration
	// Rate is the request arrival rate per second.
	Rate float64
	// Requests bounds the stream (0 = unlimited).
	Requests int
}

// DefaultIOAppConfig models a storage-backed RPC: 30µs + 80µs of CPU
// around a ~200µs device wait, 1ms SLO, 200 QPS.
func DefaultIOAppConfig() IOAppConfig {
	return IOAppConfig{
		Compute1: simtime.Micros(30),
		Compute2: simtime.Micros(80),
		IOWait:   dist.Normal{MeanD: simtime.Micros(200), Stddev: simtime.Micros(30), Min: simtime.Micros(50)},
		SLO:      simtime.Millis(1),
		Rate:     200,
	}
}

// IOApp drives the two-phase requests against one RTA. The RTA's declared
// slice covers both CPU phases; the I/O wait happens off-CPU (the VCPU
// blocks, exactly like a real driver round-trip).
type IOApp struct {
	Task  *task.Task
	Guest *guest.OS
	Cfg   IOAppConfig

	// Latency is the end-to-end (arrival → final completion) distribution.
	Latency metrics.LatencyRecorder
	// CPULatency isolates the CPU-phase response times the scheduler is
	// accountable for.
	CPULatency metrics.LatencyRecorder
	// SLOViolations counts requests exceeding the end-to-end SLO.
	SLOViolations int

	inter   dist.Duration
	sim     *sim.Simulator
	rng     *sim.RNG
	sent    int
	stopped bool
	id      int32

	// pending maps a phase-2 job to its request arrival time.
	pending map[*task.Job]simtime.Time
	// phase1 maps a phase-1 job to its request arrival time.
	phase1 map[*task.Job]simtime.Time
}

// NewIOApp registers the application's RTA on g. The reservation covers
// the summed CPU demand per SLO period.
func NewIOApp(g *guest.OS, id int, cfg IOAppConfig) (*IOApp, error) {
	if cfg.SLO <= 0 || cfg.Rate <= 0 || cfg.Compute1 <= 0 || cfg.Compute2 <= 0 {
		return nil, fmt.Errorf("workload: invalid IO app config %+v", cfg)
	}
	period := cfg.ReservePeriod
	if period <= 0 {
		period = cfg.SLO
	}
	t := task.New(id, fmt.Sprintf("ioapp-%d", id), task.Sporadic,
		task.Params{Slice: cfg.Compute1 + cfg.Compute2, Period: period})
	if err := g.Register(t); err != nil {
		return nil, err
	}
	mean := simtime.Duration(1e9 / cfg.Rate)
	a := &IOApp{
		Task:  t,
		Guest: g,
		Cfg:   cfg,
		// The declared reservation assumes the sporadic contract: at most
		// one request per SLO period. The arrival process honours it (gaps
		// clamped at the SLO), like the paper's TCP-triggered clients.
		inter:   dist.Normal{MeanD: mean, Stddev: mean / 4, Min: cfg.SLO},
		sim:     g.VM().Host().Sim,
		pending: map[*task.Job]simtime.Time{},
		phase1:  map[*task.Job]simtime.Time{},
	}
	a.id = a.sim.RegisterHandler(a)
	t.OnJobDone = a.jobDone
	return a, nil
}

// Start begins the request stream.
func (a *IOApp) Start(at simtime.Time) {
	a.rng = a.sim.RNG().Split()
	a.sim.PostAt(at, sim.Payload{Handler: a.id, Kind: evIOArrive})
}

// HandleSimEvent implements sim.Handler.
func (a *IOApp) HandleSimEvent(now simtime.Time, ev sim.Payload) {
	switch ev.Kind {
	case evIOArrive:
		a.arrive(now)
	case evIOPhase2:
		j2 := a.Guest.ReleaseJob(a.Task, a.Cfg.Compute2)
		a.pending[j2] = simtime.Time(ev.Arg0)
	default:
		panic(fmt.Sprintf("workload: unknown IO app event kind %d", ev.Kind))
	}
}

// Stop ends the request stream.
func (a *IOApp) Stop() { a.stopped = true }

// Sent reports the number of requests issued.
func (a *IOApp) Sent() int { return a.sent }

func (a *IOApp) arrive(now simtime.Time) {
	if a.stopped || (a.Cfg.Requests > 0 && a.sent >= a.Cfg.Requests) {
		return
	}
	a.sent++
	j := a.Guest.ReleaseJob(a.Task, a.Cfg.Compute1)
	a.phase1[j] = now
	a.sim.PostAt(now.Add(a.inter.Sample(a.rng)), sim.Payload{Handler: a.id, Kind: evIOArrive})
}

func (a *IOApp) jobDone(j *task.Job) {
	if arrival, ok := a.phase1[j]; ok {
		delete(a.phase1, j)
		a.CPULatency.Add(j.Finish.Sub(j.Release))
		if j.Abandoned {
			return
		}
		// Phase 1 done: the request leaves the CPU for its device wait,
		// then re-enters the run queue for phase 2.
		wait := a.Cfg.IOWait.Sample(a.rng)
		a.sim.PostAfter(wait, sim.Payload{Handler: a.id, Kind: evIOPhase2, Arg0: int64(arrival)})
		return
	}
	if arrival, ok := a.pending[j]; ok {
		delete(a.pending, j)
		a.CPULatency.Add(j.Finish.Sub(j.Release))
		if j.Abandoned {
			return
		}
		total := j.Finish.Sub(arrival)
		a.Latency.Add(total)
		if total > a.Cfg.SLO {
			a.SLOViolations++
		}
	}
}

package cluster

import (
	"rtvirt/internal/clone"
	"rtvirt/internal/guest"
	"rtvirt/internal/metrics"
	"rtvirt/internal/sim"
	"rtvirt/internal/task"
)

// Fork deep-copies the sharded cluster — every host's simulator, the
// in-flight mailbox messages, every deployment (including mid-migration
// ones whose guest is torn down and whose completion event sits in the
// target host's queue), agents' residency/forwarding state, and the
// remote clients — into an independent replica. Both continuations replay
// bit-identically under any executor group count.
func (c *Sharded) Fork() (*Sharded, *clone.Ctx, error) {
	ctx := clone.New()
	nc := &Sharded{
		Cfg:        c.Cfg,
		plans:      append([]migPlan(nil), c.plans...),
		nextTaskID: c.nextTaskID,
		started:    c.started,
		byName:     make(map[string]*ShardedDeployment, len(c.byName)),
	}
	ctx.Put(c, nc)
	nset, err := c.Set.Fork(ctx)
	if err != nil {
		return nil, nil, err
	}
	nc.Set = nset
	nc.Hosts = make([]*ShardHost, len(c.Hosts))
	for i, h := range c.Hosts {
		nc.Hosts[i] = &ShardHost{
			Name:  h.Name,
			Shard: clone.Get(ctx, h.Shard),
			Sys:   h.Sys.ForkWith(ctx),
			agent: clone.Get(ctx, h.agent),
		}
	}
	for _, d := range c.deps {
		nd := cloneShardedDeployment(ctx, d)
		nc.deps = append(nc.deps, nd)
		nc.byName[nd.Spec.Name] = nd
	}
	// Client handlers cloned during the per-sim fork left their deployment
	// references unresolved: a client's target VM lives on another host,
	// whose simulator may not have been forked yet at that point. All sims
	// exist now, so resolve them.
	for _, cl := range c.clients {
		ncl := clone.Get(ctx, cl)
		ncl.dep = cloneShardedDeployment(ctx, cl.dep)
		nc.clients = append(nc.clients, ncl)
	}
	return nc, ctx, nil
}

// ForkHandler implements sim.Handler. Agents only reference host-local
// maps and the cluster wrapper (already memoized by Fork), so the clone
// is self-contained whichever sim forks first.
func (a *hostAgent) ForkHandler(ctx *clone.Ctx) sim.Handler {
	if n, ok := ctx.Lookup(a); ok {
		return n.(*hostAgent)
	}
	na := &hostAgent{
		c:        clone.Get(ctx, a.c),
		host:     a.host,
		id:       a.id,
		Stats:    a.Stats,
		resident: make(map[int32]struct{}, len(a.resident)),
		fwd:      make(map[int32]int32, len(a.fwd)),
	}
	ctx.Put(a, na)
	for id := range a.resident {
		na.resident[id] = struct{}{}
	}
	for id, to := range a.fwd {
		na.fwd[id] = to
	}
	return na
}

// ForkHandler implements sim.Handler. The deployment reference stays nil
// here — its guest lives on a foreign simulator that may not be forked
// yet — and is resolved by Sharded.Fork once every shard exists.
func (cl *RemoteClient) ForkHandler(ctx *clone.Ctx) sim.Handler {
	if n, ok := ctx.Lookup(cl); ok {
		return n.(*RemoteClient)
	}
	ncl := &RemoteClient{
		Host:     cl.Host,
		TaskIdx:  cl.TaskIdx,
		Delay:    cl.Delay,
		Inter:    cl.Inter,
		Service:  cl.Service,
		Requests: cl.Requests,
		c:        clone.Get(ctx, cl.c),
		homeHost: cl.homeHost,
		id:       cl.id,
		sent:     cl.sent,
	}
	if cl.Proc != nil {
		ncl.Proc = cl.Proc.Clone()
	}
	if cl.rng != nil {
		ncl.rng = cl.rng.Clone()
	}
	ctx.Put(cl, ncl)
	return ncl
}

// cloneShardedDeployment deep-copies a deployment. Memo-aware: a live
// guest was already cloned with its host's simulator; a torn-down one
// (mid-migration) is cloned here so its task statistics survive. Tasks
// lose their completion callbacks in task.Clone, so the clone re-wires
// them onto its own recorders.
func cloneShardedDeployment(ctx *clone.Ctx, d *ShardedDeployment) *ShardedDeployment {
	if n, ok := ctx.Lookup(d); ok {
		return n.(*ShardedDeployment)
	}
	nd := &ShardedDeployment{
		Spec:          d.Spec,
		id:            d.id,
		hostIdx:       d.hostIdx,
		Migrations:    d.Migrations,
		BlackoutTotal: d.BlackoutTotal,
		migrating:     d.migrating,
	}
	ctx.Put(d, nd)
	if d.guest != nil {
		nd.guest = d.guest.ForkDriver(ctx).(*guest.OS)
	}
	nd.tasks = make([]*task.Task, len(d.tasks))
	for i, t := range d.tasks {
		nd.tasks[i] = task.Clone(ctx, t)
	}
	nd.lat = make([]metrics.LatencyRecorder, len(d.lat))
	for i := range d.lat {
		nd.lat[i] = d.lat[i].Clone()
	}
	nd.wireStats()
	if d.ctrl != nil {
		nd.ctrl = make([]*guest.AdaptiveController, len(d.ctrl))
		for i, ct := range d.ctrl {
			if ct != nil {
				nd.ctrl[i] = ct.ForkHandler(ctx).(*guest.AdaptiveController)
			}
		}
	}
	return nd
}

package scenario

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"rtvirt/internal/hv"
	"rtvirt/internal/simtime"
)

// FuzzScenarioJSON holds the scenario codec to two properties under
// arbitrary input: Parse never panics, and any scenario that parses AND
// validates survives a marshal/re-parse round trip unchanged (so repro
// files written by the quickcheck shrinker replay exactly). Run it with
//
//	go test ./internal/scenario -fuzz FuzzScenarioJSON
//
// Seed corpus: f.Add calls below plus testdata/fuzz/FuzzScenarioJSON.
func FuzzScenarioJSON(f *testing.F) {
	f.Add([]byte(`{"stack":"rtvirt","pcpus":2,"seconds":1,"vms":[
		{"name":"a","vcpus":1,"tasks":[{"name":"t","slice_us":500,"period_us":5000}]}]}`))
	f.Add([]byte(`{"stack":"rt-xen","vms":[{"name":"b",
		"servers":[{"budget_us":4000,"period_us":10000}],
		"tasks":[{"name":"s","kind":"sporadic","slice_us":100,"period_us":7000,"rate_hz":20}]}]}`))
	f.Add([]byte(`{"costs":{"hypercall_us":1.5},"vms":[{"name":"c","tasks":[{"name":"bg","kind":"background"}]}]}`))
	f.Add([]byte(`{"vms":[]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Parse(bytes.NewReader(data))
		if err != nil {
			return
		}
		if sc.Validate() != nil {
			return
		}
		out, err := json.Marshal(sc)
		if err != nil {
			t.Fatalf("valid scenario does not marshal: %v", err)
		}
		back, err := Parse(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("re-parse of marshaled scenario failed: %v\n%s", err, out)
		}
		if !reflect.DeepEqual(sc, back) {
			t.Fatalf("round trip changed the scenario:\nin:  %+v\nout: %+v", sc, back)
		}
	})
}

// FuzzCostsBlock stresses the costs override block in isolation:
// validation must reject every block that would corrupt the cost model
// (negative, NaN, Inf), and any block that passes validation must apply
// to non-negative durations without panicking.
func FuzzCostsBlock(f *testing.F) {
	f.Add(`{"context_switch_us":2,"migration_us":3,"hypercall_us":10}`)
	f.Add(`{"hypercall_us":0}`)
	f.Add(`{"migration_us":1e-3}`)
	f.Add(`{"context_switch_us":-1}`)
	f.Add(`{}`)
	f.Fuzz(func(t *testing.T, block string) {
		raw := []byte(`{"vms":[{"name":"a"}],"costs":` + block + `}`)
		sc, err := Parse(bytes.NewReader(raw))
		if err != nil {
			return
		}
		if sc.Validate() != nil {
			return
		}
		cm := hv.DefaultCosts()
		if sc.Costs != nil {
			sc.Costs.apply(&cm)
		}
		for _, d := range []simtime.Duration{cm.ContextSwitch, cm.Migration, cm.Hypercall} {
			if d < 0 {
				t.Fatalf("validated costs block %q applied to a negative duration: %+v", block, cm)
			}
		}
	})
}

package metrics

import "rtvirt/internal/simtime"

// Clone returns an independent deep copy of the recorder. The copy is taken
// without sorting: reading a percentile lazily sorts the sample slice, and a
// clone must never mutate the recorder it forked from.
func (l *LatencyRecorder) Clone() LatencyRecorder {
	n := LatencyRecorder{
		sorted: l.sorted,
		sum:    l.sum,
		count:  l.count,
		max:    l.max,
	}
	if l.samples != nil {
		n.samples = append([]simtime.Duration(nil), l.samples...)
	}
	if l.est != nil {
		n.est = make([]*P2Quantile, len(l.est))
		for i, e := range l.est {
			n.est[i] = e.Clone()
		}
	}
	return n
}

// Clone returns an independent copy of the estimator (all state is inline).
func (e *P2Quantile) Clone() *P2Quantile {
	ne := *e
	return &ne
}

// Command quickstart is the smallest useful RTVirt program: one VM with
// two periodic real-time applications sharing one physical CPU with a
// best-effort neighbour VM, demonstrating registration via the
// sched_setattr-style API, cross-layer admission, and the deadline
// guarantee.
package main

import (
	"fmt"
	"log"

	"rtvirt"
)

func main() {
	// A host with 1 physical CPU running the full RTVirt stack:
	// cross-layer guests (pEDF + sched_rtvirt() hypercalls) over the
	// DP-WRAP host scheduler, with the paper's §4 cost model.
	cfg := rtvirt.DefaultConfig(rtvirt.StackRTVirt)
	cfg.PCPUs = 1
	sys := rtvirt.NewSystem(cfg)

	// One VM for the time-sensitive work...
	rtVM, err := sys.NewGuest("rt-vm", 1)
	if err != nil {
		log.Fatal(err)
	}
	// ...and one best-effort neighbour that soaks leftover bandwidth.
	bgVM, err := sys.NewGuest("batch-vm", 1)
	if err != nil {
		log.Fatal(err)
	}

	// Register two periodic RTAs: a 20%-CPU control loop and a 30%-CPU
	// encoder. Registration performs guest-level admission, picks a VCPU,
	// and negotiates the VM's reservation with the hypervisor.
	control, err := rtvirt.NewRTApp(rtVM, 0, "control-loop",
		rtvirt.Params{Slice: 2 * rtvirt.Millisecond, Period: 10 * rtvirt.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	encoder, err := rtvirt.NewRTApp(rtVM, 1, "encoder",
		rtvirt.Params{Slice: 9 * rtvirt.Millisecond, Period: 30 * rtvirt.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	hog, err := rtvirt.NewCPUHog(bgVM, 2, "batch-job")
	if err != nil {
		log.Fatal(err)
	}

	sys.Start()
	control.Start(0)
	encoder.Start(0)
	hog.Start(0)

	sys.Run(10 * rtvirt.Second)
	sys.Host.Sync()

	fmt.Printf("host: %v, reserved bandwidth: %.1f%% of one CPU\n",
		sys.Host, 100*sys.AllocatedBandwidth())
	for _, app := range []*rtvirt.RTApp{control, encoder} {
		st := app.Task.Stats()
		fmt.Printf("%-12s released=%4d completed=%4d missed=%d (%.2f%%), mean response %v\n",
			app.Task.Name, st.Released, st.Completed, st.Missed,
			100*st.MissRatio(), st.MeanResp())
	}
	fmt.Printf("%-12s soaked %.2fs of leftover CPU (work-conserving)\n",
		"batch-job", bgVM.VM().TotalRun().Seconds())
	ov := sys.Overhead()
	fmt.Printf("scheduler overhead: %.3f%% of host CPU time, %d hypercalls\n",
		ov.Percent, ov.Hypercalls)
}

package csa

import (
	"testing"
	"testing/quick"

	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

func ms(n int64) simtime.Duration { return simtime.Millis(n) }

func pp(s, p int64) task.Params {
	return task.Params{Slice: ms(s), Period: ms(p)}
}

func TestDBFBasics(t *testing.T) {
	tasks := []task.Params{pp(2, 10), pp(3, 15)}
	cases := map[simtime.Duration]simtime.Duration{
		ms(9):  0,
		ms(10): ms(2),
		ms(15): ms(5),
		ms(30): ms(12), // 3×2 + 2×3
	}
	for at, want := range cases {
		if got := DBF(tasks, at); got != want {
			t.Errorf("DBF(%v) = %v, want %v", at, got, want)
		}
	}
}

func TestSBFBasics(t *testing.T) {
	iface := Interface{Period: ms(5), Budget: ms(4)}
	// Worst case: no supply for 2(Π−Θ) = 2ms.
	if SBF(iface, ms(2)) != 0 {
		t.Fatalf("SBF(2ms) = %v, want 0", SBF(iface, ms(2)))
	}
	// Across one full period beyond the blackout, a full budget arrives.
	if got := SBF(iface, ms(2)+ms(5)); got != ms(4)+ms(3) {
		// At t = 7ms: k = ⌊(7-1)/5⌋ = 1 → Θ + max(0, 7-1-5-1) = 4 + 0... verify monotonicity instead.
		t.Logf("SBF(7ms) = %v", got)
	}
	// The paper-relevant identity: interface (4,5) supplies exactly 23ms
	// in a 30ms window — exactly the demand of the (23,30) RTA (Table 2).
	if got := SBF(iface, ms(30)); got != ms(23) {
		t.Fatalf("SBF((4,5), 30ms) = %v, want 23ms", got)
	}
	if SBF(Interface{}, ms(10)) != 0 {
		t.Fatal("zero interface should supply nothing")
	}
}

// Property: SBF is monotone in t and never exceeds the fluid supply.
func TestQuickSBFBounds(t *testing.T) {
	f := func(budRaw, perRaw uint16, t1Raw, t2Raw uint32) bool {
		period := simtime.Duration(perRaw) + 2
		budget := simtime.Duration(budRaw)%period + 1
		iface := Interface{Period: period, Budget: budget}
		t1 := simtime.Duration(t1Raw)
		t2 := t1 + simtime.Duration(t2Raw)
		s1, s2 := SBF(iface, t1), SBF(iface, t2)
		if s2 < s1 {
			return false // monotonicity
		}
		// Never exceeds fluid rate.
		return int64(s1)*int64(period) <= int64(t1)*int64(budget)+int64(period)*int64(budget)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTable2Interfaces(t *testing.T) {
	// Table 2 of the paper: CSA interfaces for the NH-Dec RTAs.
	cases := []struct {
		rta  task.Params
		want Interface
	}{
		{pp(23, 30), Interface{Period: ms(5), Budget: ms(4)}},
		{pp(13, 20), Interface{Period: ms(4), Budget: ms(3)}},
		{pp(5, 10), Interface{Period: ms(3), Budget: ms(2)}},
		{pp(10, 100), Interface{Period: ms(9), Budget: ms(1)}},
	}
	for _, c := range cases {
		got, ok := BestInterface([]task.Params{c.rta}, DefaultCandidates([]task.Params{c.rta}))
		if !ok {
			t.Fatalf("no interface for %v", c.rta)
		}
		// The minimal bandwidth must match the paper's interface bandwidth
		// (several (Π,Θ) pairs can tie; compare bandwidth, not the pair).
		if got.Bandwidth() > c.want.Bandwidth()+1e-9 {
			t.Errorf("interface for %v = %v (bw %.3f), paper achieves %v (bw %.3f)",
				c.rta, got, got.Bandwidth(), c.want, c.want.Bandwidth())
		}
		// And it must actually be schedulable and at least the task's bw.
		if !Schedulable([]task.Params{c.rta}, got) {
			t.Errorf("returned unschedulable interface %v for %v", got, c.rta)
		}
		if got.Bandwidth() < c.rta.Bandwidth()-1e-9 {
			t.Errorf("interface bandwidth below task bandwidth for %v", c.rta)
		}
	}
}

func TestSchedulableExactFit(t *testing.T) {
	// (23,30) on (4,5): supply meets demand exactly at t=30.
	if !Schedulable([]task.Params{pp(23, 30)}, Interface{Period: ms(5), Budget: ms(4)}) {
		t.Fatal("paper's (4,5) interface rejected for (23,30)")
	}
	// One nanosecond less budget must fail.
	if Schedulable([]task.Params{pp(23, 30)}, Interface{Period: ms(5), Budget: ms(4) - 1}) {
		t.Fatal("insufficient interface accepted")
	}
}

func TestMinBudgetMonotoneInPeriod(t *testing.T) {
	tasks := []task.Params{pp(5, 10)}
	prevBW := 0.0
	for _, p := range []int64{1, 2, 5, 10} {
		theta, ok := MinBudget(tasks, ms(p))
		if !ok {
			t.Fatalf("no budget at period %dms", p)
		}
		bw := float64(theta) / float64(ms(p))
		if bw < 0.5-1e-9 {
			t.Fatalf("budget below task utilization at period %dms", p)
		}
		if bw+1e-9 < prevBW {
			// CSA bandwidth need not be monotone, but must stay ≥ U; just
			// sanity-check it does not dip below the utilization bound.
			t.Logf("bandwidth %.3f at period %dms (prev %.3f)", bw, p, prevBW)
		}
		prevBW = bw
	}
}

func TestMinBudgetInfeasible(t *testing.T) {
	// Utilization > 1 can never fit a single interface.
	if _, ok := MinBudget([]task.Params{pp(8, 10), pp(5, 10)}, ms(5)); ok {
		t.Fatal("over-utilized task set got an interface")
	}
}

func TestMultiTaskComponent(t *testing.T) {
	tasks := []task.Params{pp(1, 15), pp(4, 15)}
	iface, ok := BestInterface(tasks, DefaultCandidates(tasks))
	if !ok {
		t.Fatal("no interface for the Figure-1 VM1 task set")
	}
	if iface.Bandwidth() < 1.0/3-1e-9 {
		t.Fatalf("interface bandwidth %.3f below task utilization 0.333", iface.Bandwidth())
	}
	if !Schedulable(tasks, iface) {
		t.Fatal("best interface not schedulable")
	}
}

// Property: MinBudget returns the boundary: Θ schedulable, Θ−1 not.
func TestQuickMinBudgetBoundary(t *testing.T) {
	rng := sim.NewRNG(77)
	for i := 0; i < 40; i++ {
		p := ms(5 + rng.Int63n(45))
		s := simtime.Duration(rng.Int63n(int64(p)*8/10) + int64(p)/100)
		tasks := []task.Params{{Slice: s, Period: p}}
		period := ms(1 + rng.Int63n(5))
		theta, ok := MinBudget(tasks, period)
		if !ok {
			continue
		}
		if !Schedulable(tasks, Interface{Period: period, Budget: theta}) {
			t.Fatalf("MinBudget(%v, %v) = %v not schedulable", tasks[0], period, theta)
		}
		if theta > 0 && Schedulable(tasks, Interface{Period: period, Budget: theta - 1}) {
			t.Fatalf("MinBudget(%v, %v) = %v not minimal", tasks[0], period, theta)
		}
	}
}

func TestClaimedExceedsAllocated(t *testing.T) {
	// The NH-Dec group configured per Table 2: allocated ≈ 2.33 CPUs,
	// claimed must round up to whole CPUs and exceed it (Figure 3's gap).
	vms := []VMConfig{
		{Name: "vm1", VCPUs: []Interface{{Period: ms(5), Budget: ms(4)}}},
		{Name: "vm2", VCPUs: []Interface{{Period: ms(4), Budget: ms(3)}}},
		{Name: "vm3", VCPUs: []Interface{{Period: ms(3), Budget: ms(2)}}},
		{Name: "vm4", VCPUs: []Interface{{Period: ms(9), Budget: ms(1)}}},
	}
	alloc := AllocatedCPUs(vms)
	if alloc < 2.3 || alloc > 2.4 {
		t.Fatalf("allocated = %.3f, want ≈2.33", alloc)
	}
	claimed, ok := ClaimedCPUs(vms, 15)
	if !ok {
		t.Fatal("no feasible claim")
	}
	if float64(claimed) < alloc {
		t.Fatalf("claimed %d below allocated %.2f", claimed, alloc)
	}
	if claimed > 5 {
		t.Fatalf("claimed %d unreasonably high for 2.33 CPUs of servers", claimed)
	}
}

func TestClaimedManyServersExplodes(t *testing.T) {
	// §4.4: 15 VMs (5 memcached + 10 video) make the analysis claim all 15
	// PCPUs despite allocating only ≈8 CPUs — gEDF interference pessimism.
	var vms []VMConfig
	for i := 0; i < 5; i++ {
		vms = append(vms, VMConfig{VCPUs: []Interface{{Period: simtime.Micros(283), Budget: simtime.Micros(66)}}})
	}
	video := []Interface{
		{Period: ms(16), Budget: simtime.Micros(15500)},
		{Period: ms(16), Budget: simtime.Micros(15500)},
		{Period: ms(20), Budget: simtime.Micros(17500)},
		{Period: ms(20), Budget: simtime.Micros(17500)},
		{Period: ms(33), Budget: simtime.Micros(18500)},
		{Period: ms(33), Budget: simtime.Micros(18500)},
		{Period: ms(33), Budget: simtime.Micros(18500)},
		{Period: ms(41), Budget: simtime.Micros(19500)},
		{Period: ms(41), Budget: simtime.Micros(19500)},
		{Period: ms(41), Budget: simtime.Micros(19500)},
	}
	for _, v := range video {
		vms = append(vms, VMConfig{VCPUs: []Interface{v}})
	}
	alloc := AllocatedCPUs(vms)
	claimed, ok := GEDFClaimedCPUs(vms, 64)
	if !ok {
		t.Fatal("no feasible claim within 64 CPUs")
	}
	if float64(claimed) < alloc+3 {
		t.Fatalf("claimed %d vs allocated %.2f: expected a large pessimism gap", claimed, alloc)
	}
}

package hv

import (
	"testing"

	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

// migrSched alternates a single VCPU between two PCPUs every quantum to
// exercise migration accounting.
type migrSched struct {
	h    *Host
	v    *VCPU
	next int
}

func (s *migrSched) Name() string                   { return "migr-test" }
func (s *migrSched) Attach(h *Host)                 { s.h = h }
func (s *migrSched) Start(simtime.Time)             {}
func (s *migrSched) AdmitVCPU(v *VCPU) error        { s.v = v; return nil }
func (s *migrSched) RemoveVCPU(*VCPU, simtime.Time) {}
func (s *migrSched) UpdateVCPU(v *VCPU, r Reservation, _ simtime.Time) error {
	v.Res = r
	return nil
}
func (s *migrSched) VCPUWake(v *VCPU, now simtime.Time) {
	s.h.Kick(s.h.PCPUs()[0], now)
}
func (s *migrSched) VCPUIdle(v *VCPU, now simtime.Time) {}

func (s *migrSched) Schedule(p *PCPU, now simtime.Time) Decision {
	// Bounce the VCPU: run it here for 1ms, then idle so the other PCPU
	// picks it up at its next decision point.
	if s.v != nil && s.v.Runnable() && (s.v.OnPCPU() == nil || s.v.OnPCPU() == p) && p.ID == s.next {
		s.next = 1 - s.next
		other := s.h.PCPUs()[s.next]
		// Kick the other PCPU 1ns after this allocation expires, so the
		// VCPU has been undispatched by then and can migrate.
		s.h.Sim.At(now.Add(simtime.Millis(1)+1), func(at simtime.Time) {
			s.h.Kick(other, at)
		})
		return Decision{VCPU: s.v, RunFor: simtime.Millis(1), Work: 1}
	}
	return Decision{VCPU: nil, RunFor: simtime.Infinite, Work: 1}
}

func TestMigrationAccounting(t *testing.T) {
	s, h := simAndHost(t, 2, CostModel{Migration: ConstCost(simtime.Micros(5))})
	g := newFifoGuest(h)
	vm := h.NewVM("vm0", g)
	v, err := vm.AddVCPU(true, Reservation{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	tk := task.NewBackground(0, "hog")
	s.After(0, func(now simtime.Time) {
		g.submit(v, tk.Release(now, simtime.Millis(50)), now)
	})
	s.RunFor(simtime.Millis(200))
	if h.Overhead.Migrations < 10 {
		t.Fatalf("migrations = %d, want many (the scheduler bounces the VCPU)", h.Overhead.Migrations)
	}
	wantTime := simtime.Duration(h.Overhead.Migrations) * simtime.Micros(5)
	if h.Overhead.MigrationTime != wantTime {
		t.Fatalf("MigrationTime = %v, want %v", h.Overhead.MigrationTime, wantTime)
	}
}

func simAndHost(t *testing.T, pcpus int, costs CostModel) (*sim.Simulator, *Host) {
	t.Helper()
	s := sim.New(1)
	h := NewHost(s, pcpus, &migrSched{}, costs)
	return s, h
}

func newSim() *sim.Simulator { return sim.New(1) }

func TestHypercallCostChargedToRunningVCPU(t *testing.T) {
	s := newSim()
	sched := &fifoSched{quantum: simtime.Millis(10)}
	var costs CostModel
	costs.SetHypercall(ConstCost(simtime.Micros(10)))
	h := NewHost(s, 1, sched, costs)
	g := newFifoGuest(h)
	vm := h.NewVM("vm0", g)
	v, _ := vm.AddVCPU(true, Reservation{}, 0)
	h.Start()
	tk := task.NewBackground(0, "t")
	s.After(0, func(now simtime.Time) {
		g.submit(v, tk.Release(now, simtime.Millis(5)), now)
	})
	// Hypercall at 2ms while the job runs: completion slips by 10µs.
	s.After(simtime.Millis(2), func(now simtime.Time) {
		err := h.SchedRTVirt(Hypercall{Flag: IncBW, VCPU: v,
			Res: Reservation{Budget: simtime.Millis(1), Period: simtime.Millis(10)}})
		if err != ErrNoCrossLayer {
			t.Errorf("err = %v", err)
		}
	})
	s.RunFor(simtime.Millis(50))
	if len(g.done) != 1 {
		t.Fatalf("job not done")
	}
	want := simtime.Time(simtime.Millis(5) + simtime.Micros(10))
	if g.done[0].Finish != want {
		t.Fatalf("finish = %v, want %v (hypercall delay)", g.done[0].Finish, want)
	}
}

func TestChargeScheduleWorkDelaysExecution(t *testing.T) {
	s := newSim()
	sched := &fifoSched{quantum: simtime.Millis(100)}
	h := NewHost(s, 1, sched, CostModel{})
	g := newFifoGuest(h)
	vm := h.NewVM("vm0", g)
	v, _ := vm.AddVCPU(true, Reservation{}, 0)
	h.Start()
	tk := task.NewBackground(0, "t")
	s.After(0, func(now simtime.Time) {
		g.submit(v, tk.Release(now, simtime.Millis(3)), now)
	})
	s.After(simtime.Millis(1), func(now simtime.Time) {
		h.ChargeScheduleWork(h.PCPUs()[0], simtime.Micros(200))
	})
	s.RunFor(simtime.Millis(50))
	if len(g.done) != 1 {
		t.Fatal("job not done")
	}
	want := simtime.Time(simtime.Millis(3) + simtime.Micros(200))
	if g.done[0].Finish != want {
		t.Fatalf("finish = %v, want %v", g.done[0].Finish, want)
	}
	if h.Overhead.ScheduleTime < simtime.Micros(200) {
		t.Fatalf("ScheduleTime = %v", h.Overhead.ScheduleTime)
	}
}

func TestSyncIsIdempotentAndExact(t *testing.T) {
	s := newSim()
	sched := &fifoSched{quantum: simtime.Millis(10)}
	h := NewHost(s, 1, sched, CostModel{})
	g := newFifoGuest(h)
	vm := h.NewVM("vm0", g)
	v, _ := vm.AddVCPU(true, Reservation{}, 0)
	h.Start()
	tk := task.NewBackground(0, "t")
	s.After(0, func(now simtime.Time) {
		g.submit(v, tk.Release(now, simtime.Millis(10)), now)
	})
	s.RunFor(simtime.Millis(4))
	h.Sync()
	if v.TotalRun != simtime.Millis(4) {
		t.Fatalf("TotalRun after Sync = %v, want 4ms", v.TotalRun)
	}
	h.Sync() // idempotent
	if v.TotalRun != simtime.Millis(4) {
		t.Fatalf("double Sync changed accounting: %v", v.TotalRun)
	}
	s.RunFor(simtime.Millis(20))
	if v.TotalRun != simtime.Millis(10) {
		t.Fatalf("final TotalRun = %v, want 10ms", v.TotalRun)
	}
}

// TestVCPURecheckSwitchesJobs drives the guest-preemption path directly: a
// newly queued job with an earlier deadline replaces the running one when
// the guest rechecks.
func TestVCPURecheckSwitchesJobs(t *testing.T) {
	s := newSim()
	sched := &fifoSched{quantum: simtime.Millis(100)}
	costs := CostModel{GuestSwitch: ConstCost(simtime.Micros(3))}
	h := NewHost(s, 1, sched, costs)
	g := newFifoGuest(h)
	vm := h.NewVM("vm0", g)
	v, _ := vm.AddVCPU(true, Reservation{}, 0)
	h.Start()
	tk := task.NewBackground(0, "t")
	long := tk.Release(0, simtime.Millis(20))
	s.After(0, func(now simtime.Time) { g.submit(v, long, now) })
	// At 5ms, inject an urgent job at the queue head and recheck.
	urgent := tk.Release(simtime.Time(simtime.Millis(5)), simtime.Millis(1))
	s.After(simtime.Millis(5), func(now simtime.Time) {
		g.queues[v] = append([]*task.Job{urgent}, g.queues[v]...)
		h.VCPURecheck(v, now)
	})
	s.RunFor(simtime.Millis(50))
	if !urgent.Done || urgent.Finish != simtime.Time(simtime.Millis(6)+simtime.Micros(3)) {
		t.Fatalf("urgent job finish = %v (done=%v), want 6.003ms", urgent.Finish, urgent.Done)
	}
	if !long.Done {
		t.Fatal("preempted job never resumed")
	}
	if h.Overhead.GuestSwitches == 0 {
		t.Fatal("guest switch not accounted")
	}
}

// TestHostAccessors covers the small reporting helpers.
func TestHostAccessors(t *testing.T) {
	s := newSim()
	sched := &fifoSched{quantum: simtime.Millis(10)}
	h := NewHost(s, 2, sched, CostModel{})
	g := newFifoGuest(h)
	vm := h.NewVM("vm0", g)
	v, _ := vm.AddVCPU(true, Reservation{}, 0)
	h.Start()
	if h.StartTime() != 0 {
		t.Fatalf("StartTime = %v", h.StartTime())
	}
	tk := task.NewBackground(0, "t")
	s.After(0, func(now simtime.Time) { g.submit(v, tk.Release(now, simtime.Millis(7)), now) })
	s.RunFor(simtime.Millis(20))
	h.Sync()
	if h.TotalRunTime() != simtime.Millis(7) {
		t.Fatalf("TotalRunTime = %v", h.TotalRunTime())
	}
	if h.OverheadPercent() != 0 {
		t.Fatalf("OverheadPercent = %v with zero costs", h.OverheadPercent())
	}
	h.WriteSporadicFloor(v, simtime.Millis(5))
	if v.SporadicFloor != simtime.Millis(5) {
		t.Fatal("floor write lost")
	}
	if v.CurrentJob() != nil {
		t.Fatal("CurrentJob should be nil after completion")
	}
	if Kind := (Reservation{Budget: 1, Period: 2}).String(); Kind == "" {
		t.Fatal("Reservation.String empty")
	}
}

// Package cluster implements the multi-host extension sketched in §6 of
// the RTVirt paper: "considering the availability of multiple hosts,
// RTVirt's VM admission and scheduling process can be extended to optimize
// the placement of VMs across different hosts ... Live VM migration can be
// considered to dynamically adjust VM placement at runtime, but its
// overhead must be properly accounted for."
//
// A Cluster is a set of RTVirt hosts sharing one simulated clock. VMs are
// placed by a pluggable bandwidth-aware policy, and can be live-migrated
// between hosts with a stop-and-copy downtime model (constant handoff plus
// a per-reserved-bandwidth term, after the authors' own migration-cost
// modelling [Wu & Zhao, CLOUD'11]). Deadline misses caused by the blackout
// are charged to the moved VM's tasks — the §6 caveat made measurable.
package cluster

import (
	"errors"
	"fmt"
	"sort"

	"rtvirt/internal/core"
	"rtvirt/internal/guest"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

// Policy selects the placement heuristic.
type Policy int

// Placement policies.
const (
	// FirstFit places on the first host with room.
	FirstFit Policy = iota
	// BestFit places on the feasible host with the least remaining RT
	// bandwidth (consolidation).
	BestFit
	// WorstFit places on the feasible host with the most remaining RT
	// bandwidth (load spreading).
	WorstFit
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case FirstFit:
		return "first-fit"
	case BestFit:
		return "best-fit"
	case WorstFit:
		return "worst-fit"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config describes a cluster.
type Config struct {
	// Hosts is the number of hosts; PCPUs their size.
	Hosts int
	PCPUs int
	Seed  uint64
	// Policy is the placement heuristic.
	Policy Policy
	// System is the per-host configuration template (stack, costs, slack).
	// The cluster owns the topology knobs: leave the template's PCPUs and
	// Seed zero (or equal to the cluster's values) and SharedSim nil — the
	// cluster supplies all three per host. Conflicting values are a
	// configuration error: Validate reports it, and New panics on it
	// instead of silently ignoring the template's fields.
	System core.Config
	// MigrationDowntime is the stop-and-copy blackout base cost.
	MigrationDowntime simtime.Duration
	// MigrationPerBW adds blackout proportional to the VM's reserved
	// bandwidth (dirty working set scales with activity).
	MigrationPerBW simtime.Duration
	// RecoveryDelay models failure detection plus VM restart after a
	// host crash: VMs of a failed host go dark for this long before they
	// are re-placed on the survivors.
	RecoveryDelay simtime.Duration
}

// DefaultConfig returns a 2×4-CPU RTVirt cluster with a 50ms+20ms/CPU
// stop-and-copy model.
func DefaultConfig() Config {
	sys := core.DefaultConfig(core.RTVirt)
	// The cluster owns topology: blank the template's host-level knobs so
	// the config validates (see Config.System).
	sys.PCPUs = 0
	sys.Seed = 0
	return Config{
		Hosts:             2,
		PCPUs:             4,
		Seed:              1,
		Policy:            WorstFit,
		System:            sys,
		MigrationDowntime: simtime.Millis(50),
		MigrationPerBW:    simtime.Millis(20),
		RecoveryDelay:     simtime.Millis(500),
	}
}

// TaskSpec describes one application of a VM deployment.
type TaskSpec struct {
	Name   string
	Kind   task.Kind
	Params task.Params
	// Phase delays the first periodic release after deployment.
	Phase simtime.Duration
	// Adaptive, when set, attaches a feedback controller that retunes the
	// task's slice from observed response times (sharded clusters only).
	// Controllers are host-local — they observe the resident host's trace
	// bus and actuate through the resident guest — so they preserve the
	// sharded run's executor-group invariance.
	Adaptive *guest.AdaptiveConfig
}

// VMSpec describes a deployable VM.
type VMSpec struct {
	Name  string
	VCPUs int
	Tasks []TaskSpec
}

// Bandwidth estimates the spec's RT bandwidth requirement in CPUs.
func (s VMSpec) Bandwidth() float64 {
	var sum float64
	for _, t := range s.Tasks {
		if t.Kind != task.Background {
			sum += t.Params.Bandwidth()
		}
	}
	return sum
}

// Host is one member of the cluster.
type Host struct {
	Name string
	Sys  *core.System

	cluster *Cluster
	failed  bool
}

// Failed reports whether the host has crashed (see Cluster.FailHost).
func (h *Host) Failed() bool { return h.failed }

// ReservedBandwidth reports the host's current RT reservations in CPUs.
func (h *Host) ReservedBandwidth() float64 { return h.Sys.AllocatedBandwidth() }

// Capacity reports the host's RT capacity in CPUs.
func (h *Host) Capacity() float64 { return float64(h.Sys.Host.NumPCPUs()) }

// Deployment is a placed VM.
type Deployment struct {
	Spec VMSpec
	Host *Host

	// id is the deployment's stable identity in typed kernel events.
	id    int32
	guest *guest.OS
	tasks []*task.Task
	// Migrations counts completed live migrations.
	Migrations int
	// Failovers counts restarts after a host failure.
	Failovers int
	// BlackoutTotal accumulates migration and failover downtime.
	BlackoutTotal simtime.Duration
	migrating     bool
	// pending marks a VM whose host failed and that found no capacity
	// yet; RestoreHost retries it.
	pending bool
}

// Pending reports whether the VM is waiting for capacity after a host
// failure.
func (d *Deployment) Pending() bool { return d.pending }

// Guest exposes the deployment's current guest OS.
func (d *Deployment) Guest() *guest.OS { return d.guest }

// Tasks returns the deployment's live tasks.
func (d *Deployment) Tasks() []*task.Task { return d.tasks }

// Typed kernel-event kinds dispatched to the cluster's HandleSimEvent.
// Owner is always a deployment ID.
const (
	// evDeployStart begins a pre-Start deployment's periodic releases at
	// t=0.
	evDeployStart uint16 = iota
	// evMigrateDone ends a live migration's blackout; Arg0 is the target
	// host's index, Arg1 the downtime charged to the VM.
	evMigrateDone
	// evRecover re-places a VM after a host failure; Arg0 is the downtime
	// charged on success.
	evRecover
)

// Cluster is a set of RTVirt hosts under one placement controller.
type Cluster struct {
	Cfg   Config
	Sim   *sim.Simulator
	Hosts []*Host

	handlerID   int32
	deployments map[string]*Deployment
	// byID resolves the Owner field of typed events back to the deployment.
	byID      map[int32]*Deployment
	nextDepID int32
	// inbound tracks bandwidth of in-flight migrations per target host, so
	// placement and rebalancing don't oscillate during blackouts.
	inbound    map[*Host]float64
	nextTaskID int
	started    bool
}

// Errors.
var (
	// ErrNoHostFits is returned when no host can admit a VM.
	ErrNoHostFits = errors.New("cluster: no host with sufficient bandwidth")
	// ErrUnknownVM is returned for operations on unplaced VMs.
	ErrUnknownVM = errors.New("cluster: unknown VM")
	// ErrMigrating rejects operations on a VM mid-migration.
	ErrMigrating = errors.New("cluster: VM is migrating")
)

// Validate reports whether the configuration is coherent. The per-host
// template must not fight the cluster over topology: its PCPUs and Seed
// must be zero or equal to the cluster's, and SharedSim must be nil (the
// cluster provides the one shared clock every host runs on).
func (cfg Config) Validate() error {
	if cfg.System.SharedSim != nil {
		return errors.New("cluster: Config.System.SharedSim must be nil; the cluster provides the shared clock")
	}
	if cfg.System.PCPUs != 0 && cfg.System.PCPUs != cfg.PCPUs {
		return fmt.Errorf("cluster: Config.System.PCPUs (%d) conflicts with Config.PCPUs (%d); leave the template's zero",
			cfg.System.PCPUs, cfg.PCPUs)
	}
	if cfg.System.Seed != 0 && cfg.System.Seed != cfg.Seed {
		return fmt.Errorf("cluster: Config.System.Seed (%d) conflicts with Config.Seed (%d); leave the template's zero",
			cfg.System.Seed, cfg.Seed)
	}
	return nil
}

// New builds the cluster's hosts on a single shared clock. It panics if the
// configuration fails Validate — previously a conflicting per-host template
// was silently overridden.
func New(cfg Config) *Cluster {
	if cfg.Hosts <= 0 {
		cfg.Hosts = 1
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := sim.New(cfg.Seed)
	c := &Cluster{Cfg: cfg, Sim: s,
		deployments: map[string]*Deployment{},
		byID:        map[int32]*Deployment{},
		inbound:     map[*Host]float64{}}
	c.handlerID = s.RegisterHandler(c)
	for i := 0; i < cfg.Hosts; i++ {
		sysCfg := cfg.System
		sysCfg.PCPUs = cfg.PCPUs
		sysCfg.Seed = cfg.Seed
		sysCfg.SharedSim = s
		h := &Host{Name: fmt.Sprintf("host%d", i), Sys: core.NewSystem(sysCfg), cluster: c}
		c.Hosts = append(c.Hosts, h)
	}
	return c
}

// HandleSimEvent implements sim.Handler.
func (c *Cluster) HandleSimEvent(now simtime.Time, ev sim.Payload) {
	switch ev.Kind {
	case evDeployStart:
		c.startPeriodics(c.byID[ev.Owner], now)
	case evMigrateDone:
		c.finishMigration(c.byID[ev.Owner], c.Hosts[ev.Arg0], simtime.Duration(ev.Arg1))
	case evRecover:
		c.recover(c.byID[ev.Owner], simtime.Duration(ev.Arg0))
	default:
		panic(fmt.Sprintf("cluster: unknown event kind %d", ev.Kind))
	}
}

// hostIndex reports h's position in the Hosts slice.
func (c *Cluster) hostIndex(h *Host) int {
	for i, x := range c.Hosts {
		if x == h {
			return i
		}
	}
	panic("cluster: host not in cluster")
}

// Start dispatches every host. Call after initial placements.
func (c *Cluster) Start() {
	if c.started {
		panic("cluster: Start called twice")
	}
	c.started = true
	for _, h := range c.Hosts {
		h.Sys.Start()
	}
}

// Run advances the shared clock.
func (c *Cluster) Run(d simtime.Duration) { c.Sim.RunFor(d) }

// Deployments lists placed VMs sorted by name.
func (c *Cluster) Deployments() []*Deployment {
	out := make([]*Deployment, 0, len(c.deployments))
	for _, d := range c.deployments {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.Name < out[j].Spec.Name })
	return out
}

// Lookup returns a deployment by VM name.
func (c *Cluster) Lookup(name string) (*Deployment, bool) {
	d, ok := c.deployments[name]
	return d, ok
}

// pickHost applies the placement policy.
func (c *Cluster) pickHost(bw float64, exclude *Host) (*Host, error) {
	var best *Host
	var bestFree float64
	for _, h := range c.Hosts {
		if h == exclude || h.failed {
			continue
		}
		free := h.Capacity() - h.ReservedBandwidth() - c.inbound[h]
		if free < bw {
			continue
		}
		switch c.Cfg.Policy {
		case FirstFit:
			return h, nil
		case BestFit:
			if best == nil || free < bestFree {
				best, bestFree = h, free
			}
		case WorstFit:
			if best == nil || free > bestFree {
				best, bestFree = h, free
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: need %.3f CPUs", ErrNoHostFits, bw)
	}
	return best, nil
}

// Place admits a VM onto a host chosen by the policy and starts its
// periodic tasks. Sporadic and background tasks are registered; driving
// them is the caller's business (via d.Guest()).
func (c *Cluster) Place(spec VMSpec) (*Deployment, error) {
	if _, dup := c.deployments[spec.Name]; dup {
		return nil, fmt.Errorf("cluster: VM %q already placed", spec.Name)
	}
	host, err := c.pickHost(spec.Bandwidth(), nil)
	if err != nil {
		return nil, err
	}
	d := &Deployment{Spec: spec, Host: host, id: c.nextDepID}
	c.nextDepID++
	c.byID[d.id] = d
	if err := c.deploy(d, host); err != nil {
		delete(c.byID, d.id)
		c.nextDepID--
		return nil, err
	}
	c.deployments[spec.Name] = d
	return d, nil
}

// deploy creates the guest and its tasks on the target host.
func (c *Cluster) deploy(d *Deployment, host *Host) error {
	vcpus := d.Spec.VCPUs
	if vcpus <= 0 {
		vcpus = 1
	}
	g, err := host.Sys.NewGuest(d.Spec.Name, vcpus)
	if err != nil {
		return err
	}
	// Reuse existing task objects across migrations so their deadline
	// statistics — including blackout-induced misses — persist.
	tasks := d.tasks
	if tasks == nil {
		for _, ts := range d.Spec.Tasks {
			var t *task.Task
			if ts.Kind == task.Background {
				t = task.NewBackground(c.nextTaskID, ts.Name)
			} else {
				t = task.New(c.nextTaskID, ts.Name, ts.Kind, ts.Params)
			}
			c.nextTaskID++
			tasks = append(tasks, t)
		}
	}
	for i, t := range tasks {
		if err := g.Register(t); err != nil {
			// Roll back this partial deployment.
			for _, prev := range tasks[:i] {
				_ = g.Unregister(prev)
			}
			return fmt.Errorf("cluster: admitting %q on %s: %w", t.Name, host.Name, err)
		}
	}
	d.guest = g
	d.Host = host
	d.tasks = tasks
	if c.started || c.Sim.Now() > 0 {
		c.startPeriodics(d, c.Sim.Now())
	} else {
		// Before Start: defer the release start to t=0.
		c.Sim.PostAt(0, sim.Payload{Handler: c.handlerID, Kind: evDeployStart, Owner: d.id})
	}
	return nil
}

func (c *Cluster) startPeriodics(d *Deployment, now simtime.Time) {
	for i, ts := range d.Spec.Tasks {
		if ts.Kind == task.Periodic {
			d.guest.StartPeriodic(d.tasks[i], now.Add(ts.Phase))
		}
	}
}

// Migrate live-migrates a VM to the target host (nil = pick by policy):
// the VM runs on the source until the stop-and-copy blackout, is dark for
// the downtime, and resumes on the target. In-flight jobs at the blackout
// are abandoned (they count as misses — the §6 overhead made visible).
func (c *Cluster) Migrate(name string, target *Host) (*Host, error) {
	d, ok := c.deployments[name]
	if !ok {
		return nil, ErrUnknownVM
	}
	if d.migrating || d.pending {
		return nil, ErrMigrating
	}
	bw := d.Spec.Bandwidth()
	if target == nil {
		t, err := c.pickHost(bw, d.Host)
		if err != nil {
			return nil, err
		}
		target = t
	} else if target == d.Host {
		return nil, fmt.Errorf("cluster: VM %q already on %s", name, target.Name)
	} else if target.Capacity()-target.ReservedBandwidth()-c.inbound[target] < bw {
		return nil, fmt.Errorf("%w: %s lacks %.3f CPUs", ErrNoHostFits, target.Name, bw)
	}

	// Blackout model: base + per-bandwidth term.
	downtime := c.Cfg.MigrationDowntime +
		simtime.Duration(float64(c.Cfg.MigrationPerBW)*bw)
	d.migrating = true

	// Stop-and-copy instant: tear down on the source. Shutdown abandons
	// queued jobs (visible as misses), releases the reservations and
	// removes the source VM entirely.
	if err := d.guest.Shutdown(); err != nil {
		d.migrating = false
		return nil, err
	}
	c.inbound[target] += bw

	c.Sim.PostAfter(downtime, sim.Payload{Handler: c.handlerID, Kind: evMigrateDone,
		Owner: d.id, Arg0: int64(c.hostIndex(target)), Arg1: int64(downtime)})
	return target, nil
}

// finishMigration ends the stop-and-copy blackout: the VM resumes on the
// target, or falls back to any live host that fits, or stays pending.
func (c *Cluster) finishMigration(d *Deployment, target *Host, downtime simtime.Duration) {
	bw := d.Spec.Bandwidth()
	d.migrating = false
	d.Migrations++
	d.BlackoutTotal += downtime
	c.inbound[target] -= bw
	err := fmt.Errorf("cluster: target %s failed during blackout", target.Name)
	if !target.failed {
		err = c.deploy(d, target)
	}
	if err != nil {
		// The target filled up (or crashed) during the blackout: fall
		// back to any live host that fits, the source included; if
		// none does, the VM waits for capacity like a failover.
		fallback, ferr := c.pickHost(bw, nil)
		if ferr != nil {
			d.pending = true
			return
		}
		if err2 := c.deploy(d, fallback); err2 != nil {
			d.pending = true
		}
	}
}

// Rebalance migrates VMs from the most- to the least-loaded host until the
// reserved-bandwidth spread is within tolerance CPUs, and reports how many
// migrations were initiated.
func (c *Cluster) Rebalance(tolerance float64) int {
	moves := 0
	load := func(h *Host) float64 { return h.ReservedBandwidth() + c.inbound[h] }
	for iter := 0; iter < len(c.deployments)+1; iter++ {
		var hi, lo *Host
		for _, h := range c.Hosts {
			if h.failed {
				continue
			}
			if hi == nil || load(h) > load(hi) {
				hi = h
			}
			if lo == nil || load(h) < load(lo) {
				lo = h
			}
		}
		if hi == nil || lo == nil || hi == lo {
			break
		}
		gap := load(hi) - load(lo)
		if gap <= tolerance {
			break
		}
		// Move the largest VM on hi that still shrinks the gap.
		var candidate *Deployment
		for _, d := range c.Deployments() {
			if d.Host != hi || d.migrating || d.pending {
				continue
			}
			bw := d.Spec.Bandwidth()
			if bw < gap && (candidate == nil || bw > candidate.Spec.Bandwidth()) {
				candidate = d
			}
		}
		if candidate == nil {
			break
		}
		if _, err := c.Migrate(candidate.Spec.Name, lo); err != nil {
			break
		}
		moves++
	}
	return moves
}

// FailHost crashes a host at the current instant: every VM on it goes
// dark immediately (in-flight and queued jobs are abandoned — visible as
// deadline misses), the host stops taking placements, and after
// Config.RecoveryDelay each VM restarts on a surviving host chosen by the
// placement policy. A VM that fits nowhere stays Pending and is retried
// when RestoreHost brings capacity back. The affected deployments are
// returned; failing an already-failed host is a no-op.
func (c *Cluster) FailHost(h *Host) []*Deployment {
	if h.failed {
		return nil
	}
	h.failed = true
	var affected []*Deployment
	for _, d := range c.Deployments() {
		if d.Host != h || d.migrating {
			continue
		}
		// The crash destroys the guest: abandon everything it was doing.
		// Shutdown is the orderly form of the same teardown; statistics
		// live on the task objects, which deploy() reuses on restart.
		if err := d.guest.Shutdown(); err != nil {
			panic(fmt.Sprintf("cluster: failing %s: %v", h.Name, err))
		}
		d.pending = true
		affected = append(affected, d)
		c.Sim.PostAfter(c.Cfg.RecoveryDelay, sim.Payload{Handler: c.handlerID,
			Kind: evRecover, Owner: d.id, Arg0: int64(c.Cfg.RecoveryDelay)})
	}
	return affected
}

// recover re-places one pending VM; on success it resumes its periodic
// tasks, on failure it stays pending for RestoreHost to retry.
func (c *Cluster) recover(d *Deployment, downtime simtime.Duration) {
	if !d.pending {
		return
	}
	bw := d.Spec.Bandwidth()
	target, err := c.pickHost(bw, nil)
	if err != nil {
		return // still pending
	}
	if err := c.deploy(d, target); err != nil {
		return // still pending
	}
	d.pending = false
	d.Failovers++
	d.BlackoutTotal += downtime
}

// RestoreHost brings a failed host back (empty — its VMs restarted
// elsewhere or are still pending) and immediately retries every pending
// VM against the recovered capacity.
func (c *Cluster) RestoreHost(h *Host) {
	if !h.failed {
		return
	}
	h.failed = false
	for _, d := range c.Deployments() {
		if d.pending {
			c.recover(d, 0)
		}
	}
}

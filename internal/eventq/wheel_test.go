package eventq

import (
	"testing"

	"rtvirt/internal/clone"
	"rtvirt/internal/simtime"
)

// tickNs converts a tick count to the wheel's native time unit.
func tickNs(ticks int64) simtime.Time { return simtime.Time(ticks << tickShift) }

// TestWheelCrossLevelOrder schedules events that land in every wheel level
// plus the overflow heap, in scrambled insertion order, and checks they
// fire in strict time order across level boundaries and cascades.
func TestWheelCrossLevelOrder(t *testing.T) {
	var q Queue
	q.SetBackend(BackendWheel)
	// One event per level digit boundary: level 0 (same 64-tick block),
	// level 1 (64..4095 ticks out), level 2, level 3, and past the 24-bit
	// frame into the overflow heap.
	ticks := []int64{1, 3, 63, 64, 100, 1 << 12, 1<<12 + 7, 1 << 18, 1 << 24, 1<<24 + 5, 1 << 40}
	// Scrambled insertion order.
	order := []int{7, 0, 10, 3, 5, 1, 8, 2, 9, 4, 6}
	fired := make([]simtime.Time, 0, len(ticks))
	for _, i := range order {
		at := tickNs(ticks[i])
		q.Schedule(at, func(simtime.Time) { fired = append(fired, at) })
	}
	for q.Fire() {
	}
	if len(fired) != len(ticks) {
		t.Fatalf("fired %d events, want %d", len(fired), len(ticks))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("fire order regressed at %d: %v after %v", i, fired[i], fired[i-1])
		}
	}
}

// TestWheelSameInstantFIFO checks that events at one instant fire in
// insertion order even when they arrive via different paths: direct
// schedule, reschedule from far away, and cascade from a higher level.
func TestWheelSameInstantFIFO(t *testing.T) {
	var q Queue
	q.SetBackend(BackendWheel)
	target := tickNs(1 << 13) // lands in level 2 first, cascades down
	var fired []int
	note := func(id int) func(simtime.Time) {
		return func(simtime.Time) { fired = append(fired, id) }
	}
	q.Schedule(target, note(0))
	h := q.Schedule(tickNs(1<<25), note(1)) // overflow first, then pulled in
	q.Schedule(target, note(2))
	q.Reschedule(h, target) // reschedule assigns a fresh seq: fires after 2
	q.Schedule(target, note(3))
	for q.Fire() {
	}
	want := []int{0, 2, 1, 3}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

// TestWheelSlotChainCancel cancels the middle, head, and tail of a slot's
// chain and checks the survivors still fire, exactly once, in order.
func TestWheelSlotChainCancel(t *testing.T) {
	var q Queue
	q.SetBackend(BackendWheel)
	at := tickNs(1 << 9) // all five share one level-1 slot
	var fired []int
	hs := make([]Handle, 5)
	for i := range hs {
		i := i
		hs[i] = q.Schedule(at+simtime.Time(i), func(simtime.Time) { fired = append(fired, i) })
	}
	q.Cancel(hs[0])
	q.Cancel(hs[2])
	q.Cancel(hs[4])
	if q.Len() != 2 {
		t.Fatalf("Len = %d after cancels, want 2", q.Len())
	}
	for q.Fire() {
	}
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 3 {
		t.Fatalf("fired %v, want [1 3]", fired)
	}
}

// TestWheelCloneEquivalence forks a wheel-backed queue mid-flight and
// checks the clone fires the identical (time, owner) stream as the parent,
// and that the parent is undisturbed by draining the clone first.
func TestWheelCloneEquivalence(t *testing.T) {
	var q Queue
	q.SetBackend(BackendWheel)
	type rec struct {
		at simtime.Time
		p  Payload
	}
	run := func(q *Queue) []rec {
		var got []rec
		q.Dispatch = func(now simtime.Time, p Payload) { got = append(got, rec{now, p}) }
		for q.Fire() {
		}
		return got
	}
	ticks := []int64{2, 2, 70, 70, 4097, 1 << 19, 1 << 26, 1 << 26}
	for i, tk := range ticks {
		q.SchedulePayload(tickNs(tk), Payload{Owner: int32(i)})
	}
	// Burn a couple so the clone starts mid-flight with a warm cursor.
	q.Dispatch = func(simtime.Time, Payload) {}
	q.Fire()
	q.Fire()

	var c Queue
	if err := q.CloneInto(&c, clone.New()); err != nil {
		t.Fatalf("CloneInto: %v", err)
	}
	if c.Len() != q.Len() {
		t.Fatalf("clone Len = %d, parent %d", c.Len(), q.Len())
	}
	cloneGot := run(&c)
	parentGot := run(&q)
	if len(cloneGot) != len(parentGot) {
		t.Fatalf("clone fired %d events, parent %d", len(cloneGot), len(parentGot))
	}
	for i := range parentGot {
		if cloneGot[i] != parentGot[i] {
			t.Fatalf("event %d: clone %+v, parent %+v", i, cloneGot[i], parentGot[i])
		}
	}
}

// TestWheelRescheduleAcrossContainers moves one event run→slot→overflow→run
// and checks each hop lands it in the right firing position.
func TestWheelRescheduleAcrossContainers(t *testing.T) {
	var q Queue
	q.SetBackend(BackendWheel)
	var fired []int
	note := func(id int) func(simtime.Time) {
		return func(simtime.Time) { fired = append(fired, id) }
	}
	q.Schedule(tickNs(5), note(0))
	h := q.Schedule(tickNs(0)+1, note(1)) // run container (cursor tick)
	q.Schedule(tickNs(1<<30), note(2))
	h = q.Reschedule(h, tickNs(1<<10)) // into a slot
	h = q.Reschedule(h, tickNs(1<<28)) // into overflow
	h = q.Reschedule(h, tickNs(0)+2)   // back to the cursor tick
	for q.Fire() {
	}
	want := []int{1, 0, 2}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	if h.Active() {
		t.Fatal("handle still active after firing")
	}
}

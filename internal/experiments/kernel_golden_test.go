package experiments

import (
	"fmt"
	"testing"

	"rtvirt/internal/eventq"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
)

// TestGoldenKernelRewrite pins every Figure 3 row and every Table 6 row at
// seed 1 / 10s to the exact values the simulator produced before the event
// queue was rewritten as an intrusive 4-ary heap (and before the rtxen and
// dpwrap scan removals). The rewrite is a pure data-structure change:
// event ordering, overhead charging (Decision.Work), and RNG consumption
// must all be untouched, so these numbers must match digit for digit. A
// diff here means the kernel changed simulation semantics, not just speed.
//
// The sweep runs once per event-queue backend: the timing wheel must fire
// events in the same exact (time, seq) total order as the 4-ary heap, so
// both backends reproduce the same goldens bit for bit.
func TestGoldenKernelRewrite(t *testing.T) {
	if testing.Short() {
		t.Skip("two full experiment sweeps per backend")
	}
	for _, b := range []eventq.Backend{eventq.BackendHeap, eventq.BackendWheel} {
		t.Run(b.String(), func(t *testing.T) {
			prev := sim.DefaultBackend
			sim.DefaultBackend = b
			defer func() { sim.DefaultBackend = prev }()
			goldenKernelSweep(t)
		})
	}
}

func goldenKernelSweep(t *testing.T) {
	t.Helper()

	type fig3Golden struct {
		req, xenAlloc, xenClaim, rtvAlloc          string
		xenMissed, xenJudged, rtvMissed, rtvJudged int
	}
	wantFig3 := map[string]fig3Golden{
		"H-Equiv":  {"2.077500000", "2.283333333", "3.000000000", "2.126250000", 0, 1462, 0, 1462},
		"H-Dec":    {"1.930000000", "2.192857143", "3.000000000", "2.022500000", 0, 2775, 0, 2775},
		"H-Inc":    {"2.025000000", "2.327777778", "3.000000000", "2.117500000", 0, 2775, 0, 2775},
		"NH-Equiv": {"2.080000000", "2.226190476", "3.000000000", "2.130833333", 0, 1525, 0, 1525},
		"NH-Dec":   {"2.016666667", "2.327777778", "3.000000000", "2.113333333", 0, 2900, 0, 2900},
		"NH-Inc":   {"1.925127353", "2.123809524", "3.000000000", "1.973898117", 0, 1462, 0, 1463},
	}
	rows := Figure3(Figure3Config{Seed: 1, Duration: 10 * simtime.Second, PCPUs: 15, Requests: 10})
	if len(rows) != len(wantFig3) {
		t.Fatalf("Figure3 returned %d rows, golden %d", len(rows), len(wantFig3))
	}
	f9 := func(v float64) string { return fmt.Sprintf("%.9f", v) }
	for _, r := range rows {
		w, ok := wantFig3[r.Group]
		if !ok {
			t.Errorf("Fig3 unexpected group %q", r.Group)
			continue
		}
		if got := f9(r.RTAReq); got != w.req {
			t.Errorf("Fig3 %s requested = %s, golden %s", r.Group, got, w.req)
		}
		if got := f9(r.RTXenAllocated); got != w.xenAlloc {
			t.Errorf("Fig3 %s RT-Xen allocated = %s, golden %s", r.Group, got, w.xenAlloc)
		}
		if got := f9(r.RTXenClaimed); got != w.xenClaim {
			t.Errorf("Fig3 %s RT-Xen claimed = %s, golden %s", r.Group, got, w.xenClaim)
		}
		if got := f9(r.RTVirtAllocated); got != w.rtvAlloc {
			t.Errorf("Fig3 %s RTVirt allocated = %s, golden %s", r.Group, got, w.rtvAlloc)
		}
		if int(r.RTXenMisses.Missed) != w.xenMissed || int(r.RTXenMisses.Judged) != w.xenJudged {
			t.Errorf("Fig3 %s RT-Xen misses = %d/%d, golden %d/%d",
				r.Group, r.RTXenMisses.Missed, r.RTXenMisses.Judged, w.xenMissed, w.xenJudged)
		}
		if int(r.RTVirtMisses.Missed) != w.rtvMissed || int(r.RTVirtMisses.Judged) != w.rtvJudged {
			t.Errorf("Fig3 %s RTVirt misses = %d/%d, golden %d/%d",
				r.Group, r.RTVirtMisses.Missed, r.RTVirtMisses.Judged, w.rtvMissed, w.rtvJudged)
		}
	}

	type t6Golden struct {
		admitted, requested, vms, vcpus int
		schedT, ctxT                    int64
		ovh                             string
		migrations                      int
		missed, judged                  int
	}
	wantT6 := map[string]t6Golden{
		"Multi/RTVirt":  {100, 100, 10, 20, 50116300, 27462000, "0.083164867", 13208, 12, 7923},
		"Multi/RT-Xen":  {90, 100, 9, 16, 307331400, 77852000, "0.294424267", 16720, 52, 7437},
		"Single/RTVirt": {100, 100, 100, 100, 116350000, 87778000, "0.213350000", 38299, 0, 7940},
		"Single/RT-Xen": {97, 100, 97, 97, 1414287900, 340696000, "1.452967267", 141489, 0, 7746},
	}
	t6cfg := Table6Config{Seed: 1, Duration: 10 * simtime.Second, PCPUs: 15}
	for _, sc := range []struct {
		scenario Table6Scenario
		key      string
	}{{MultiRTAVMs, "Multi"}, {SingleRTAVMs, "Single"}} {
		for _, r := range Table6(sc.scenario, t6cfg) {
			w, ok := wantT6[sc.key+"/"+r.Framework]
			if !ok {
				t.Errorf("T6 unexpected framework %q in %s", r.Framework, sc.key)
				continue
			}
			if int(r.RTAsAdmitted) != w.admitted || int(r.RTAsRequested) != w.requested {
				t.Errorf("T6 %s/%s admitted = %d/%d, golden %d/%d",
					sc.key, r.Framework, r.RTAsAdmitted, r.RTAsRequested, w.admitted, w.requested)
			}
			if r.VMs != w.vms || r.VCPUs != w.vcpus {
				t.Errorf("T6 %s/%s vms=%d vcpus=%d, golden vms=%d vcpus=%d",
					sc.key, r.Framework, r.VMs, r.VCPUs, w.vms, w.vcpus)
			}
			if int64(r.ScheduleTime) != w.schedT || int64(r.CtxSwitchTime) != w.ctxT {
				t.Errorf("T6 %s/%s schedT=%d ctxT=%d, golden schedT=%d ctxT=%d",
					sc.key, r.Framework, int64(r.ScheduleTime), int64(r.CtxSwitchTime), w.schedT, w.ctxT)
			}
			if got := f9(r.OverheadPct); got != w.ovh {
				t.Errorf("T6 %s/%s overhead = %s, golden %s", sc.key, r.Framework, got, w.ovh)
			}
			if int(r.Migrations) != w.migrations {
				t.Errorf("T6 %s/%s migrations = %d, golden %d", sc.key, r.Framework, r.Migrations, w.migrations)
			}
			if int(r.Misses.Missed) != w.missed || int(r.Misses.Judged) != w.judged {
				t.Errorf("T6 %s/%s misses = %d/%d, golden %d/%d",
					sc.key, r.Framework, r.Misses.Missed, r.Misses.Judged, w.missed, w.judged)
			}
		}
	}
}

package quick

import (
	"fmt"
	"strings"
)

// Render formats the report the way rtvirt-bench prints it: a one-line
// tally, then every failure with its minimized reproducer inline. The
// output is deterministic for a fixed Config (goldens pin it).
func (r *Report) Render() string {
	var b strings.Builder
	backends := r.Backends
	if backends <= 0 {
		backends = 1
	}
	pdesRuns := 0
	if r.PDES > 1 {
		pdesRuns = r.Cases * backends
	}
	stacks := r.Runs
	if r.Cases > 0 {
		stacks = (r.Runs - pdesRuns) / (r.Cases * backends)
	}
	fmt.Fprintf(&b, "quickcheck: %d cases x %d stacks", r.Cases, stacks)
	if backends > 1 {
		fmt.Fprintf(&b, " x %d queue backends", backends)
	}
	if r.PDES > 1 {
		fmt.Fprintf(&b, " + pdes identity x %d group counts", r.PDES)
	}
	fmt.Fprintf(&b, " (seed %d)\n", r.Seed)
	fmt.Fprintf(&b, "runs %d, skipped %d (admission-rejected builds), failures %d\n",
		r.Runs, r.Skipped, len(r.Failures))
	if len(r.Failures) == 0 {
		b.WriteString("PASS: every invariant held in every run")
		return b.String()
	}
	fmt.Fprintf(&b, "FAIL: %d violating run(s)\n", len(r.Failures))
	for i, f := range r.Failures {
		where := f.Stack
		if f.Backend != "" {
			where += "/" + f.Backend
		}
		fmt.Fprintf(&b, "[%d] case %d under %s: %d violation(s), shrunk in %d step(s) over %d run(s)\n",
			i, f.Case, where, len(f.Violations), f.ShrinkSteps, f.ShrinkRuns)
		for _, v := range f.Violations {
			fmt.Fprintf(&b, "    %v\n", v)
		}
		if f.ForkBisect != "" {
			fmt.Fprintf(&b, "    bisect: %s\n", f.ForkBisect)
		}
	}
	b.WriteString("replay a repro with: rtvirt-sim <repro>.json")
	return b.String()
}

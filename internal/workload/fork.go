package workload

import (
	"rtvirt/internal/clone"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

// The workload drivers own the two pieces of state the lower layers refuse
// to clone: the OnJobDone callbacks (task.Clone nils them) and the demand
// functions (guest clones drop them). Each ForkHandler below re-installs
// its callbacks bound to the CLONED recorder, so samples land in the fork's
// metrics and the source run is never touched.

// Fork returns the clone of a (its task and guest were already cloned by
// the layers below); useful for remapping experiment-held references.
func (a *RTApp) Fork(ctx *clone.Ctx) *RTApp {
	if n, ok := ctx.Lookup(a); ok {
		return n.(*RTApp)
	}
	na := &RTApp{Task: task.Clone(ctx, a.Task), Guest: clone.Get(ctx, a.Guest)}
	ctx.Put(a, na)
	return na
}

// ForkHandler implements sim.Handler.
func (c *SporadicClient) ForkHandler(ctx *clone.Ctx) sim.Handler {
	if n, ok := ctx.Lookup(c); ok {
		return n.(*SporadicClient)
	}
	nc := &SporadicClient{
		Task:         task.Clone(ctx, c.Task),
		Guest:        clone.Get(ctx, c.Guest),
		InterArrival: c.InterArrival,
		NetworkDelay: c.NetworkDelay,
		Requests:     c.Requests,
		Latency:      c.Latency.Clone(),
		sent:         c.sent,
		sim:          clone.Get(ctx, c.sim),
		rng:          cloneRNG(c.rng),
		id:           c.id,
	}
	ctx.Put(c, nc)
	nc.Task.OnJobDone = func(j *task.Job) {
		nc.Latency.Add(j.Finish.Sub(j.Release))
	}
	return nc
}

// ForkHandler implements sim.Handler.
func (m *Memcached) ForkHandler(ctx *clone.Ctx) sim.Handler {
	if n, ok := ctx.Lookup(m); ok {
		return n.(*Memcached)
	}
	nm := &Memcached{
		Task:    task.Clone(ctx, m.Task),
		Guest:   clone.Get(ctx, m.Guest),
		Cfg:     m.Cfg,
		Latency: m.Latency.Clone(),
		inter:   m.inter,
		service: m.service,
		sim:     clone.Get(ctx, m.sim),
		rng:     cloneRNG(m.rng),
		sent:    m.sent,
		stopped: m.stopped,
		id:      m.id,
	}
	ctx.Put(m, nm)
	nm.Task.OnJobDone = func(j *task.Job) {
		nm.Latency.Add(j.Finish.Sub(j.Release))
	}
	return nm
}

// ForkHandler implements sim.Handler.
func (h *CPUHog) ForkHandler(ctx *clone.Ctx) sim.Handler {
	if n, ok := ctx.Lookup(h); ok {
		return n.(*CPUHog)
	}
	nh := &CPUHog{
		Task:  task.Clone(ctx, h.Task),
		Guest: clone.Get(ctx, h.Guest),
		id:    h.id,
	}
	ctx.Put(h, nh)
	return nh
}

// ForkHandler implements sim.Handler.
func (a *IOApp) ForkHandler(ctx *clone.Ctx) sim.Handler {
	if n, ok := ctx.Lookup(a); ok {
		return n.(*IOApp)
	}
	na := &IOApp{
		Task:          task.Clone(ctx, a.Task),
		Guest:         clone.Get(ctx, a.Guest),
		Cfg:           a.Cfg,
		Latency:       a.Latency.Clone(),
		CPULatency:    a.CPULatency.Clone(),
		SLOViolations: a.SLOViolations,
		inter:         a.inter,
		sim:           clone.Get(ctx, a.sim),
		rng:           cloneRNG(a.rng),
		sent:          a.sent,
		stopped:       a.stopped,
		id:            a.id,
		pending:       make(map[*task.Job]simtime.Time, len(a.pending)),
		phase1:        make(map[*task.Job]simtime.Time, len(a.phase1)),
	}
	ctx.Put(a, na)
	na.Task.OnJobDone = na.jobDone
	for j, at := range a.pending {
		na.pending[task.CloneJob(ctx, j)] = at
	}
	for j, at := range a.phase1 {
		na.phase1[task.CloneJob(ctx, j)] = at
	}
	return na
}

// ForkHandler implements sim.Handler.
func (c *OpenLoopClient) ForkHandler(ctx *clone.Ctx) sim.Handler {
	if n, ok := ctx.Lookup(c); ok {
		return n.(*OpenLoopClient)
	}
	nc := &OpenLoopClient{
		Task:         task.Clone(ctx, c.Task),
		Guest:        clone.Get(ctx, c.Guest),
		Arrivals:     c.Arrivals.Clone(),
		NetworkDelay: c.NetworkDelay,
		Service:      c.Service,
		Latency:      c.Latency.Clone(),
		Offered:      c.Offered,
		Throttled:    c.Throttled,
		sim:          clone.Get(ctx, c.sim),
		rng:          cloneRNG(c.rng),
		id:           c.id,
	}
	ctx.Put(c, nc)
	nc.Task.OnJobDone = nc.jobDone
	return nc
}

// ForkHandler implements sim.Handler.
func (e *TickEvader) ForkHandler(ctx *clone.Ctx) sim.Handler {
	if n, ok := ctx.Lookup(e); ok {
		return n.(*TickEvader)
	}
	ne := &TickEvader{
		Task:      task.Clone(ctx, e.Task),
		Guest:     clone.Get(ctx, e.Guest),
		Cfg:       e.Cfg,
		Probes:    e.Probes,
		Bursts:    e.Bursts,
		Resyncs:   e.Resyncs,
		BurstWork: e.BurstWork,
		phase:     e.phase,
		period:    e.period,
		nextTick:  e.nextTick,
		spikes:    append([]simtime.Time(nil), e.spikes...),
		sim:       clone.Get(ctx, e.sim),
		id:        e.id,
	}
	ctx.Put(e, ne)
	ne.Task.OnJobDone = ne.jobDone
	return ne
}

// cloneRNG copies a workload's split RNG stream; nil before Start.
func cloneRNG(r *sim.RNG) *sim.RNG {
	if r == nil {
		return nil
	}
	return r.Clone()
}

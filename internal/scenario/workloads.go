package scenario

import (
	"fmt"
	"math"

	"rtvirt/internal/guest"
	"rtvirt/internal/simtime"
	"rtvirt/internal/workload"
)

// This file holds the workload blocks a TaskSpec can carry beyond the
// plain periodic/sporadic shapes: open-loop arrival processes (diurnal,
// MMPP, flash-crowd production traffic), the adaptive bandwidth
// controller, and the tick-evader attack. All decode strictly — the outer
// decoder's DisallowUnknownFields recurses into these plain structs — and
// marshal canonically (omitempty everywhere), so a marshal/reparse round
// trip is lossless.

// ArrivalSpec selects exactly one open-loop arrival process for a
// sporadic task. When present, the task is driven by an OpenLoopClient
// instead of the closed-form SporadicClient.
type ArrivalSpec struct {
	Poisson *PoissonSpec    `json:"poisson,omitempty"`
	Diurnal *DiurnalSpec    `json:"diurnal,omitempty"`
	MMPP    *MMPPSpec       `json:"mmpp,omitempty"`
	Flash   *FlashCrowdSpec `json:"flash,omitempty"`
}

// PoissonSpec is a homogeneous Poisson stream.
type PoissonSpec struct {
	RateHz float64 `json:"rate_hz"`
}

// DiurnalSpec is the daily sine rate curve, trough base_hz to peak_hz
// over a (simulation-compressed) day.
type DiurnalSpec struct {
	BaseHz float64 `json:"base_hz"`
	PeakHz float64 `json:"peak_hz"`
	DayMS  int64   `json:"day_ms"`
	// Phase shifts the curve as a fraction of the day in [0, 1).
	Phase float64 `json:"phase,omitempty"`
}

// MMPPSpec is a cyclic Markov-modulated Poisson process: state i emits at
// rates_hz[i] and holds for an exponential sojourn with mean sojourn_ms[i].
type MMPPSpec struct {
	RatesHz   []float64 `json:"rates_hz"`
	SojournMS []int64   `json:"sojourn_ms"`
}

// FlashCrowdSpec is a Poisson floor with linear ramp/decay surges.
type FlashCrowdSpec struct {
	BaseHz float64     `json:"base_hz"`
	Surges []SurgeSpec `json:"surges"`
}

// SurgeSpec is one flash-crowd event.
type SurgeSpec struct {
	AtMS    int64   `json:"at_ms"`
	PeakHz  float64 `json:"peak_hz"`
	RampMS  int64   `json:"ramp_ms"`
	DecayMS int64   `json:"decay_ms"`
}

// badRate reports whether a rate is unusable.
func badRate(v float64) bool { return v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) }

// validate checks the spec names exactly one well-formed process.
func (a *ArrivalSpec) validate(taskName string) error {
	forms := 0
	for _, set := range []bool{a.Poisson != nil, a.Diurnal != nil, a.MMPP != nil, a.Flash != nil} {
		if set {
			forms++
		}
	}
	if forms != 1 {
		return fmt.Errorf("scenario: task %q arrivals must name exactly one of poisson/diurnal/mmpp/flash (got %d)", taskName, forms)
	}
	switch {
	case a.Poisson != nil:
		if badRate(a.Poisson.RateHz) {
			return fmt.Errorf("scenario: task %q arrivals.poisson.rate_hz must be positive, got %v", taskName, a.Poisson.RateHz)
		}
	case a.Diurnal != nil:
		d := a.Diurnal
		if badRate(d.PeakHz) || d.BaseHz < 0 || math.IsNaN(d.BaseHz) || math.IsInf(d.BaseHz, 0) ||
			d.PeakHz < d.BaseHz || d.DayMS <= 0 || math.IsNaN(d.Phase) || d.Phase < 0 || d.Phase >= 1 {
			return fmt.Errorf("scenario: task %q arrivals.diurnal needs 0 ≤ base_hz ≤ peak_hz, day_ms > 0, phase in [0,1)", taskName)
		}
	case a.MMPP != nil:
		m := a.MMPP
		if len(m.RatesHz) == 0 || len(m.RatesHz) != len(m.SojournMS) {
			return fmt.Errorf("scenario: task %q arrivals.mmpp needs matching non-empty rates_hz/sojourn_ms (got %d/%d)",
				taskName, len(m.RatesHz), len(m.SojournMS))
		}
		for i, r := range m.RatesHz {
			if badRate(r) || m.SojournMS[i] <= 0 {
				return fmt.Errorf("scenario: task %q arrivals.mmpp state %d needs rate_hz > 0 and sojourn_ms > 0", taskName, i)
			}
		}
	case a.Flash != nil:
		f := a.Flash
		if badRate(f.BaseHz) {
			return fmt.Errorf("scenario: task %q arrivals.flash.base_hz must be positive, got %v", taskName, f.BaseHz)
		}
		for i, s := range f.Surges {
			if badRate(s.PeakHz) || s.AtMS < 0 || s.RampMS <= 0 || s.DecayMS <= 0 {
				return fmt.Errorf("scenario: task %q arrivals.flash surge %d needs peak_hz > 0, at_ms ≥ 0, ramp_ms/decay_ms > 0", taskName, i)
			}
		}
	}
	return nil
}

// Process builds the workload.ArrivalProcess the spec names. The spec
// must be valid; exported so the sharded-PDES harness can drive remote
// clients from the same block.
func (a *ArrivalSpec) Process() workload.ArrivalProcess { return a.process() }

// process builds the workload.ArrivalProcess. The spec must have passed
// validate.
func (a *ArrivalSpec) process() workload.ArrivalProcess {
	switch {
	case a.Poisson != nil:
		return workload.Poisson{RateHz: a.Poisson.RateHz}
	case a.Diurnal != nil:
		return workload.Diurnal{
			BaseHz: a.Diurnal.BaseHz,
			PeakHz: a.Diurnal.PeakHz,
			Day:    simtime.Millis(a.Diurnal.DayMS),
			Phase:  a.Diurnal.Phase,
		}
	case a.MMPP != nil:
		sojourn := make([]simtime.Duration, len(a.MMPP.SojournMS))
		for i, ms := range a.MMPP.SojournMS {
			sojourn[i] = simtime.Millis(ms)
		}
		return workload.NewMMPP(append([]float64(nil), a.MMPP.RatesHz...), sojourn)
	case a.Flash != nil:
		surges := make([]workload.Surge, len(a.Flash.Surges))
		for i, s := range a.Flash.Surges {
			surges[i] = workload.Surge{
				At:     simtime.Time(simtime.Millis(s.AtMS)),
				PeakHz: s.PeakHz,
				Ramp:   simtime.Millis(s.RampMS),
				Decay:  simtime.Millis(s.DecayMS),
			}
		}
		return workload.FlashCrowd{BaseHz: a.Flash.BaseHz, Surges: surges}
	default:
		panic("scenario: process on empty ArrivalSpec")
	}
}

// AdaptiveSpec attaches a feedback controller to a periodic or sporadic
// task: it watches the task's response times on the trace bus and retunes
// the slice through the INC/DEC_BW hypercall path.
type AdaptiveSpec struct {
	// TargetUS is the per-window worst response-time target. Required.
	TargetUS int64 `json:"target_us"`
	// WindowMS is the observation window (default 100ms).
	WindowMS int64 `json:"window_ms,omitempty"`
	// MinSliceUS/MaxSliceUS bound the retuned slice (defaults: 100µs and
	// the task's period).
	MinSliceUS int64 `json:"min_slice_us,omitempty"`
	MaxSliceUS int64 `json:"max_slice_us,omitempty"`
	// Step is the multiplicative adjustment per decision (default 0.25).
	Step float64 `json:"step,omitempty"`
	// LowFraction/DecreaseAfter are the shrink hysteresis (defaults 0.5, 3).
	LowFraction   float64 `json:"low_fraction,omitempty"`
	DecreaseAfter int     `json:"decrease_after,omitempty"`
	// Backoff is the initial rejection backoff in windows (default 2).
	Backoff int `json:"backoff,omitempty"`
}

// validate checks the controller parameters.
func (a *AdaptiveSpec) validate(taskName string) error {
	if a.TargetUS <= 0 {
		return fmt.Errorf("scenario: task %q adaptive.target_us must be positive, got %d", taskName, a.TargetUS)
	}
	if a.WindowMS < 0 || a.MinSliceUS < 0 || a.MaxSliceUS < 0 || a.DecreaseAfter < 0 || a.Backoff < 0 {
		return fmt.Errorf("scenario: task %q adaptive has a negative field", taskName)
	}
	if a.MaxSliceUS > 0 && a.MinSliceUS > a.MaxSliceUS {
		return fmt.Errorf("scenario: task %q adaptive.min_slice_us %d above max_slice_us %d", taskName, a.MinSliceUS, a.MaxSliceUS)
	}
	if math.IsNaN(a.Step) || math.IsInf(a.Step, 0) || a.Step < 0 || a.Step >= 1 {
		return fmt.Errorf("scenario: task %q adaptive.step must be in [0, 1), got %v", taskName, a.Step)
	}
	if math.IsNaN(a.LowFraction) || math.IsInf(a.LowFraction, 0) || a.LowFraction < 0 || a.LowFraction > 1 {
		return fmt.Errorf("scenario: task %q adaptive.low_fraction must be in [0, 1], got %v", taskName, a.LowFraction)
	}
	return nil
}

// EvaderSpec tunes a kind:"evader" task — the Zhou et al. tick-evasion
// attacker. The zero value learns the tick period from latency spikes
// with the default probe parameters.
type EvaderSpec struct {
	// TickUS declares the host tick period so the attacker skips
	// learning; 0 learns it from probe latency spikes.
	TickUS int64 `json:"tick_us,omitempty"`
	// GuardUS is the sleep margin kept around each predicted tick
	// (default 500µs, clamped to period/8).
	GuardUS int64 `json:"guard_us,omitempty"`
}

// validate checks the attacker parameters.
func (e *EvaderSpec) validate(taskName string) error {
	if e.TickUS < 0 || e.GuardUS < 0 {
		return fmt.Errorf("scenario: task %q evader has a negative field", taskName)
	}
	return nil
}

// evaderConfig builds the workload config from the spec (nil = defaults).
func (e *EvaderSpec) evaderConfig() workload.EvaderConfig {
	cfg := workload.DefaultEvaderConfig()
	if e == nil {
		return cfg
	}
	if e.TickUS > 0 {
		cfg.TickPeriod = simtime.Micros(e.TickUS)
	}
	if e.GuardUS > 0 {
		cfg.Guard = simtime.Micros(e.GuardUS)
	}
	return cfg
}

// Config builds the guest controller config the spec names; exported so
// the sharded-PDES harness can attach the same controller per host.
func (a *AdaptiveSpec) Config() guest.AdaptiveConfig { return a.adaptiveConfig() }

// adaptiveConfig builds the guest controller config from the spec.
func (a *AdaptiveSpec) adaptiveConfig() guest.AdaptiveConfig {
	cfg := guest.AdaptiveConfig{
		Target:        simtime.Micros(a.TargetUS),
		Window:        simtime.Millis(a.WindowMS),
		MinSlice:      simtime.Micros(a.MinSliceUS),
		MaxSlice:      simtime.Micros(a.MaxSliceUS),
		Step:          a.Step,
		LowFraction:   a.LowFraction,
		DecreaseAfter: a.DecreaseAfter,
		Backoff:       a.Backoff,
	}
	return cfg
}

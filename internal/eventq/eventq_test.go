package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"rtvirt/internal/simtime"
)

func TestFireOrder(t *testing.T) {
	var q Queue
	var got []int
	q.Schedule(30, func(simtime.Time) { got = append(got, 3) })
	q.Schedule(10, func(simtime.Time) { got = append(got, 1) })
	q.Schedule(20, func(simtime.Time) { got = append(got, 2) })
	for q.Fire() {
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order = %v, want %v", got, want)
		}
	}
}

func TestFIFOAtSameInstant(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		q.Schedule(42, func(simtime.Time) { got = append(got, i) })
	}
	for q.Fire() {
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events out of insertion order at %d: got %d", i, v)
		}
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	fired := false
	h := q.Schedule(5, func(simtime.Time) { fired = true })
	if !h.Active() {
		t.Fatal("freshly scheduled handle not active")
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
	q.Cancel(h)
	if q.Len() != 0 {
		t.Fatalf("Len after cancel = %d, want 0", q.Len())
	}
	if h.Active() {
		t.Fatal("cancelled handle still active")
	}
	q.Cancel(h)        // idempotent
	q.Cancel(Handle{}) // zero handle is inert
	for q.Fire() {
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

// Regression: cancelling a handle whose event already fired must be a
// no-op. The pre-Handle implementation decremented q.len in this case,
// driving Len negative and desynchronizing it from the heap.
func TestCancelAfterFireDoesNotCorruptLen(t *testing.T) {
	var q Queue
	h := q.Schedule(1, func(simtime.Time) {})
	q.Schedule(2, func(simtime.Time) {})
	if !q.Fire() { // fires h's event
		t.Fatal("Fire returned false")
	}
	if h.Active() {
		t.Fatal("fired handle still active")
	}
	q.Cancel(h)
	if q.Len() != 1 {
		t.Fatalf("Len after cancel-after-fire = %d, want 1", q.Len())
	}
	if !q.Fire() {
		t.Fatal("remaining event did not fire")
	}
	if q.Len() != 0 {
		t.Fatalf("Len drained = %d, want 0", q.Len())
	}
}

// Regression: a stale handle must not cancel an unrelated event that
// recycled the same record.
func TestStaleHandleCannotCancelRecycledEvent(t *testing.T) {
	var q Queue
	h1 := q.Schedule(1, func(simtime.Time) {})
	q.Fire() // record goes to the free list
	fired := false
	h2 := q.Schedule(2, func(simtime.Time) { fired = true }) // reuses the record
	q.Cancel(h1)                                             // stale — must not touch h2's event
	if !h2.Active() {
		t.Fatal("recycled event killed by stale handle")
	}
	for q.Fire() {
	}
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}

func TestCancelMiddle(t *testing.T) {
	var q Queue
	var got []int
	var hs []Handle
	for i := 0; i < 10; i++ {
		i := i
		hs = append(hs, q.Schedule(simtime.Time(i), func(simtime.Time) { got = append(got, i) }))
	}
	q.Cancel(hs[3])
	q.Cancel(hs[7])
	for q.Fire() {
	}
	if len(got) != 8 {
		t.Fatalf("fired %d events, want 8", len(got))
	}
	for _, v := range got {
		if v == 3 || v == 7 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
}

func TestPeekTime(t *testing.T) {
	var q Queue
	if q.PeekTime() != simtime.Never {
		t.Fatal("empty queue PeekTime should be Never")
	}
	q.Schedule(99, func(simtime.Time) {})
	h := q.Schedule(7, func(simtime.Time) {})
	if q.PeekTime() != 7 {
		t.Fatalf("PeekTime = %v, want 7", q.PeekTime())
	}
	// Lazy cancellation: PeekTime must skip the tombstone at the top.
	q.Cancel(h)
	if q.PeekTime() != 99 {
		t.Fatalf("PeekTime after cancelling head = %v, want 99", q.PeekTime())
	}
}

func TestHandleAt(t *testing.T) {
	var q Queue
	h := q.Schedule(1234, func(simtime.Time) {})
	if h.At() != 1234 {
		t.Fatalf("At = %v, want 1234", h.At())
	}
	q.Cancel(h)
	if h.At() != simtime.Never {
		t.Fatalf("At on inert handle = %v, want Never", h.At())
	}
}

func TestFireReceivesScheduledTime(t *testing.T) {
	var q Queue
	var at simtime.Time
	q.Schedule(777, func(now simtime.Time) { at = now })
	q.Fire()
	if at != 777 {
		t.Fatalf("callback now = %v, want 777", at)
	}
}

// Pooling must not allocate on the steady-state schedule→fire cycle, and a
// callback that reschedules immediately must be able to reuse the record
// it is firing from.
func TestRescheduleFromCallbackReusesRecord(t *testing.T) {
	var q Queue
	count := 0
	var tick func(now simtime.Time)
	tick = func(now simtime.Time) {
		count++
		if count < 100 {
			q.Schedule(now+1, tick)
		}
	}
	q.Schedule(0, tick)
	for q.Fire() {
	}
	if count != 100 {
		t.Fatalf("ticked %d times, want 100", count)
	}
	if n := len(q.free); n != 1 {
		t.Fatalf("free list holds %d records after self-rescheduling loop, want 1", n)
	}
}

func TestCompactionBoundsTombstones(t *testing.T) {
	var q Queue
	// Repeatedly cancel-and-reschedule a far-future event, the hv.setEvent
	// pattern. Without compaction the heap grows without bound because the
	// clock never reaches the tombstones.
	h := q.Schedule(1_000_000, func(simtime.Time) {})
	for i := 0; i < 10_000; i++ {
		q.Cancel(h)
		h = q.Schedule(simtime.Time(1_000_000+i), func(simtime.Time) {})
	}
	if len(q.h) > 256 {
		t.Fatalf("heap holds %d entries for 1 live event; compaction failed", len(q.h))
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
}

// Property: firing a randomly scheduled set of events yields them in sorted
// time order, and every live event fires exactly once.
func TestQuickSortedOrder(t *testing.T) {
	f := func(times []int16) bool {
		var q Queue
		var fired []simtime.Time
		for _, v := range times {
			at := simtime.Time(int64(v) + 1<<15)
			q.Schedule(at, func(now simtime.Time) { fired = append(fired, now) })
		}
		for q.Fire() {
		}
		if len(fired) != len(times) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: same-instant events fire in insertion order even when records
// are recycled between batches (stability must come from seq, not from
// record identity).
func TestQuickStableOrderWithRecycling(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var q Queue
		var got []int
		next := 0
		for batch := 0; batch < 5; batch++ {
			at := simtime.Time(batch * 100)
			for i := 0; i < 1+rng.Intn(20); i++ {
				id := next
				next++
				q.Schedule(at, func(simtime.Time) { got = append(got, id) })
			}
			for q.Fire() {
			}
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return len(got) == next
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: random interleavings of Schedule/Cancel/Fire keep Len equal to
// scheduled − cancelled − fired, and fire exactly the non-cancelled events
// in time order.
func TestQuickCancelConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var q Queue
		var fired []simtime.Time
		var hs []Handle
		scheduled, cancelled, firedCount := 0, 0, 0
		for i := 0; i < 500; i++ {
			switch r := rng.Intn(6); {
			case r <= 2 || len(hs) == 0:
				h := q.Schedule(simtime.Time(rng.Int63n(1000)), func(now simtime.Time) { fired = append(fired, now) })
				hs = append(hs, h)
				scheduled++
			case r <= 4:
				h := hs[rng.Intn(len(hs))]
				if h.Active() {
					cancelled++
				}
				q.Cancel(h)
			default:
				if q.Fire() {
					firedCount++
				}
			}
			if q.Len() != scheduled-cancelled-firedCount {
				return false
			}
		}
		want := q.Len()
		drained := 0
		for q.Fire() {
			drained++
		}
		if drained != want || q.Len() != 0 {
			return false
		}
		return len(fired) == scheduled-cancelled
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRescheduleMovesEventInPlace(t *testing.T) {
	var q Queue
	var fired []simtime.Time
	record := func(now simtime.Time) { fired = append(fired, now) }
	h := q.Schedule(100, record)
	q.Schedule(60, record)

	h2 := q.Reschedule(h, 50) // decrease-key past the other event
	if h.Active() {
		t.Fatal("old handle still active after Reschedule")
	}
	if !h2.Active() || h2.At() != 50 {
		t.Fatalf("new handle At = %v, want 50", h2.At())
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (reschedule must not grow the queue)", q.Len())
	}
	if q.PeekTime() != 50 {
		t.Fatalf("PeekTime = %v, want 50", q.PeekTime())
	}
	h3 := q.Reschedule(h2, 70) // increase-key back past it
	for q.Fire() {
	}
	if len(fired) != 2 || fired[0] != 60 || fired[1] != 70 {
		t.Fatalf("fired %v, want [60 70]", fired)
	}
	if h3.Active() {
		t.Fatal("handle still active after firing")
	}
}

// Reschedule must behave exactly like Cancel+Schedule for same-instant
// FIFO ordering: the moved event takes a fresh insertion sequence number,
// so it fires after events already queued for that instant.
func TestRescheduleFIFOSemantics(t *testing.T) {
	var q Queue
	var got []string
	a := q.Schedule(10, func(simtime.Time) { got = append(got, "a") })
	q.Schedule(10, func(simtime.Time) { got = append(got, "b") })
	q.Reschedule(a, 10) // same instant: a now ranks after b
	for q.Fire() {
	}
	if len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Fatalf("fire order %v, want [b a]", got)
	}
}

func TestRescheduleInactivePanics(t *testing.T) {
	var q Queue
	h := q.Schedule(1, func(simtime.Time) {})
	q.Fire()
	defer func() {
		if recover() == nil {
			t.Fatal("Reschedule of a fired handle did not panic")
		}
	}()
	q.Reschedule(h, 2)
}

// Rescheduling the root to a later time sifts a child up; if that child is
// a tombstone it must be discarded immediately so PeekTime (a plain field
// read) stays truthful.
func TestRescheduleRootPastTombstone(t *testing.T) {
	var q Queue
	var fired []simtime.Time
	record := func(now simtime.Time) { fired = append(fired, now) }
	a := q.Schedule(1, record)
	b := q.Schedule(2, record)
	q.Schedule(3, record)
	q.Cancel(b) // tombstone below the root
	q.Reschedule(a, 5)
	if q.PeekTime() != 3 {
		t.Fatalf("PeekTime = %v, want 3 (tombstone must not surface)", q.PeekTime())
	}
	for q.Fire() {
	}
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 5 {
		t.Fatalf("fired %v, want [3 5]", fired)
	}
}

// Fire must skip tombstones that surface during its descent without a
// separate drain pass, and cancelling the head must advance PeekTime
// immediately.
func TestFireSkipsTombstoneChain(t *testing.T) {
	var q Queue
	var fired []simtime.Time
	record := func(now simtime.Time) { fired = append(fired, now) }
	var hs []Handle
	for i := 1; i <= 8; i++ {
		hs = append(hs, q.Schedule(simtime.Time(i), record))
	}
	// Tombstone a contiguous chain 2..6 behind the live head.
	for _, h := range hs[1:6] {
		q.Cancel(h)
	}
	if q.PeekTime() != 1 {
		t.Fatalf("PeekTime = %v, want 1", q.PeekTime())
	}
	if !q.Fire() { // pops 1; the tombstone chain folds into this pop
		t.Fatal("Fire returned false")
	}
	if q.PeekTime() != 7 {
		t.Fatalf("PeekTime after fold = %v, want 7", q.PeekTime())
	}
	for q.Fire() {
	}
	want := []simtime.Time{1, 7, 8}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

// Regression: with compaction triggered only from Cancel, fires can shrink
// the live population far below half the heap without any cancel running
// the check, and a subsequent Schedule would grow the heap past the
// 2×live bound. Schedule must run the check too.
func TestScheduleTriggersCompaction(t *testing.T) {
	var q Queue
	nop := func(simtime.Time) {}
	var hs []Handle
	for i := 0; i < 400; i++ {
		hs = append(hs, q.Schedule(simtime.Time(1000+i), nop))
	}
	// Tombstone the far half (never the head, so nothing pops eagerly);
	// 2×live == len exactly, so no Cancel-side compaction runs.
	for _, h := range hs[200:] {
		q.Cancel(h)
	}
	// Fires shrink live without running any compaction check.
	for i := 0; i < 120; i++ {
		q.Fire()
	}
	q.Schedule(1_000_000, nop) // must notice the tombstone excess
	if bound := 2 * q.Len(); len(q.h) >= 64 && len(q.h) > bound {
		t.Fatalf("heap holds %d slots for %d live events (bound %d); Schedule did not compact",
			len(q.h), q.Len(), bound)
	}
}

func BenchmarkScheduleFire(b *testing.B) {
	var q Queue
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Schedule(simtime.Time(rng.Int63n(1<<30)), func(simtime.Time) {})
		if q.Len() > 1024 {
			q.Fire()
		}
	}
	for q.Fire() {
	}
}

// benchBackends runs fn once per event-queue backend as a sub-benchmark,
// so every kernel mix reports a heap-versus-wheel comparison side by side.
func benchBackends(b *testing.B, fn func(b *testing.B, bk Backend)) {
	for _, bk := range []Backend{BackendHeap, BackendWheel} {
		b.Run(bk.String(), func(b *testing.B) { fn(b, bk) })
	}
}

// runKernelMix is the headline kernel blend: per event fired, one standing
// per-PCPU timer moves (Reschedule), one fresh event is admitted
// (Schedule), and the head pops (Fire) — over a population of 256 standing
// handles. BENCH_3.json records this mix before and after the
// intrusive-heap rewrite (the pre-rewrite implementation ran the blend as
// Cancel+Schedule because it had no in-place reschedule); BENCH_5.json
// adds the wheel backend.
func runKernelMix(b *testing.B, bk Backend) {
	var q Queue
	q.SetBackend(bk)
	nop := func(simtime.Time) {}
	rng := rand.New(rand.NewSource(1))
	standing := make([]Handle, 256)
	for i := range standing {
		standing[i] = q.Schedule(simtime.Time(1_000_000+i), nop)
	}
	now := simtime.Time(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % len(standing)
		standing[k] = q.Reschedule(standing[k], now+1_000_000+simtime.Time(rng.Int63n(1_000_000)))
		q.Schedule(now+1, nop)
		q.Fire()
		now++
	}
}

func BenchmarkKernelMix(b *testing.B) { benchBackends(b, runKernelMix) }

// runKernelMixTimer is the timer-heavy variant: four standing timers move
// per fresh admission and fire, the shape of a multi-PCPU host where every
// dispatch re-arms Kick and VCPURecheck events on several PCPUs. Standing
// timers are the wheel's ideal client — a reschedule is an unlink and a
// relink into a nearby slot, no sift.
func runKernelMixTimer(b *testing.B, bk Backend) {
	var q Queue
	q.SetBackend(bk)
	nop := func(simtime.Time) {}
	rng := rand.New(rand.NewSource(2))
	standing := make([]Handle, 256)
	for i := range standing {
		standing[i] = q.Schedule(simtime.Time(1_000_000+i), nop)
	}
	now := simtime.Time(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 4; j++ {
			k := (i*4 + j) % len(standing)
			standing[k] = q.Reschedule(standing[k], now+1_000_000+simtime.Time(rng.Int63n(1_000_000)))
		}
		q.Schedule(now+1, nop)
		q.Fire()
		now++
	}
}

func BenchmarkKernelMixTimer(b *testing.B) { benchBackends(b, runKernelMixTimer) }

// runKernelMixChurn is the churn-heavy variant: short-lived events are
// admitted, sometimes cancelled, and popped in quick succession — the
// shape of a job-arrival burst where wakeups are created and consumed
// faster than any standing timer moves. This stresses the insert/remove
// paths (heap sift, wheel slot chains) rather than reschedule.
func runKernelMixChurn(b *testing.B, bk Backend) {
	var q Queue
	q.SetBackend(bk)
	nop := func(simtime.Time) {}
	rng := rand.New(rand.NewSource(3))
	var pending [64]Handle
	now := simtime.Time(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % len(pending)
		q.Cancel(pending[k]) // often a stale handle: the no-op cancel path
		pending[k] = q.Schedule(now+simtime.Time(rng.Int63n(4096)), nop)
		q.Schedule(now+1, nop)
		q.Fire()
		q.Fire()
		now++
	}
	b.StopTimer()
	for q.Fire() {
	}
}

func BenchmarkKernelMixChurn(b *testing.B) { benchBackends(b, runKernelMixChurn) }

// BenchmarkCancelReschedule measures the hv.setEvent hot pattern: cancel a
// pending wakeup and schedule a new one. The seed implementation paid a
// heap.Remove plus a fresh allocation per iteration.
func BenchmarkCancelReschedule(b *testing.B) {
	var q Queue
	for i := 0; i < 512; i++ {
		q.Schedule(simtime.Time(1<<40+i), func(simtime.Time) {})
	}
	h := q.Schedule(1<<20, func(simtime.Time) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Cancel(h)
		h = q.Schedule(simtime.Time(1<<20+i%1024), func(simtime.Time) {})
	}
}

// Package guest models the guest operating system inside a VM: the
// sched_setattr()-style system-call interface applications use to declare
// timeliness requirements, a partitioned-EDF process scheduler over the
// VM's VCPUs, guest-level admission control and task placement, VCPU
// parameter derivation, and — in cross-layer mode — the sched_rtvirt()
// hypercalls and shared-memory deadline publication of §3.2/§3.3.
package guest

import (
	"errors"
	"fmt"
	"math"

	"rtvirt/internal/eventq"
	"rtvirt/internal/hv"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
	"rtvirt/internal/trace"
)

// Config tunes a guest OS instance.
type Config struct {
	// CrossLayer enables the RTVirt paravirtual interface: reservation
	// hypercalls on task changes and deadline-slot publication.
	CrossLayer bool
	// Slack is added to each VCPU's budget to absorb scheduling overhead
	// (500µs in the paper's evaluation). Only meaningful with CrossLayer.
	Slack simtime.Duration
	// MaxVCPUs bounds CPU hotplug; 0 disables hotplug.
	MaxVCPUs int
	// VCPUCapacity is the maximum total task bandwidth admitted per VCPU
	// (default 1.0 when zero).
	VCPUCapacity float64
	// Reshuffle allows repacking tasks across VCPUs when a request does
	// not fit due to fragmentation (§3.2).
	Reshuffle bool
	// PrioritySlack scales each VCPU's budget slack by (1 + highest task
	// priority) — §6's priority-proportional slack, giving important RTAs
	// a larger overhead margin.
	PrioritySlack bool
	// GEDF switches the process scheduler from RTVirt's partitioned EDF to
	// SCHED_DEADLINE's native global EDF: one VM-wide ready queue, jobs
	// migrate freely between VCPUs. The paper rejects gEDF because the
	// VCPUs' cross-layer parameters can no longer be derived from pinned
	// tasks (§3.2); it is implemented here for exactly that ablation —
	// under gEDF each VCPU's reservation is the VM total spread evenly.
	GEDF bool
}

// DefaultConfig returns the RTVirt guest configuration from §4.1.
func DefaultConfig() Config {
	return Config{
		CrossLayer:   true,
		Slack:        simtime.Micros(500),
		VCPUCapacity: 1.0,
		Reshuffle:    true,
	}
}

// Errors returned by the system-call interface.
var (
	ErrNoCapacity      = errors.New("guest: no VCPU with sufficient bandwidth")
	ErrHostRejected    = errors.New("guest: host admission control rejected request")
	ErrUnknownTask     = errors.New("guest: task not registered")
	ErrAlreadyRegister = errors.New("guest: task already registered")
)

// Typed kernel-event kinds dispatched to the guest's HandleSimEvent.
const (
	// evPeriodicTick releases the next job of a periodic task. Owner is
	// the task's guest-local owner ID (NOT task.ID, which is only unique
	// within one task set).
	evPeriodicTick uint16 = iota
)

// OS is the guest operating system of one VM.
type OS struct {
	cfg       Config
	host      *hv.Host
	sim       *sim.Simulator
	vm        *hv.VM
	handlerID int32

	vcpus []*vcpuState
	tasks map[*task.Task]*taskState
	// order keeps registered tasks in registration order so Tasks() — and
	// everything downstream of it, such as Shutdown's unregister sequence —
	// is deterministic (map iteration is not).
	order []*taskState
	// byOwner resolves the Owner field of typed events back to the task.
	byOwner   map[int32]*taskState
	nextOwner int32
}

type vcpuState struct {
	v     *hv.VCPU
	ready *readyQueue
	tasks []*taskState
}

// bwSum recomputes the summed task bandwidth on the VCPU from the tasks'
// current parameters, avoiding incremental floating-point drift.
func (vs *vcpuState) bwSum() float64 {
	var s float64
	for _, ts := range vs.tasks {
		s += ts.t.Params().Bandwidth()
	}
	return s
}

type taskState struct {
	t     *task.Task
	vs    *vcpuState
	os    *OS
	owner int32
	// periodic release machinery
	releaseEv   eventq.Handle
	nextRelease simtime.Time
	// DemandFn, when set, draws each job's actual demand; nil means the
	// declared slice.
	demandFn func() simtime.Duration
}

// NewOS creates a VM named name on host with the given guest config, and
// nVCPUs initial virtual CPUs. RT VCPUs start with a zero reservation in
// cross-layer mode (reservations arrive via hypercall as tasks register);
// in static mode pass explicit reservations per VCPU with AddVCPU instead.
func NewOS(host *hv.Host, name string, cfg Config, nVCPUs int) (*OS, error) {
	if cfg.VCPUCapacity == 0 {
		cfg.VCPUCapacity = 1.0
	}
	g := &OS{cfg: cfg, host: host, sim: host.Sim,
		tasks: map[*task.Task]*taskState{}, byOwner: map[int32]*taskState{}}
	g.handlerID = host.Sim.RegisterHandler(g)
	g.vm = host.NewVM(name, g)
	for i := 0; i < nVCPUs; i++ {
		if _, err := g.AddVCPU(hv.Reservation{Period: simtime.Millis(10)}, 256); err != nil {
			host.RemoveVM(g.vm) // don't leak a partially built VM
			return nil, err
		}
	}
	return g, nil
}

// VM returns the underlying hypervisor VM.
func (g *OS) VM() *hv.VM { return g.vm }

// Config returns the guest configuration.
func (g *OS) Config() Config { return g.cfg }

// NumVCPUs reports the current VCPU count.
func (g *OS) NumVCPUs() int { return len(g.vcpus) }

// AddVCPU hot-plugs a VCPU with an explicit initial reservation and weight.
func (g *OS) AddVCPU(res hv.Reservation, weight int) (*hv.VCPU, error) {
	v, err := g.vm.AddVCPU(true, res, weight)
	if err != nil {
		return nil, err
	}
	g.vcpus = append(g.vcpus, &vcpuState{v: v, ready: newReadyQueue()})
	return v, nil
}

// VCPUBandwidth reports the summed task bandwidth currently admitted on
// VCPU index i.
func (g *OS) VCPUBandwidth(i int) float64 { return g.vcpus[i].bwSum() }

// AllocatedBandwidth reports the VM's total host-level reservation in CPUs.
func (g *OS) AllocatedBandwidth() float64 {
	var total float64
	for _, vs := range g.vcpus {
		total += vs.v.Res.Bandwidth()
	}
	return total
}

// Tasks returns the registered tasks in registration order.
func (g *OS) Tasks() []*task.Task {
	out := make([]*task.Task, 0, len(g.order))
	for _, ts := range g.order {
		out = append(out, ts.t)
	}
	return out
}

// track records a freshly admitted task: assigns its owner ID (the stable
// handle typed kernel events use to reach it) and indexes it.
func (g *OS) track(ts *taskState) {
	ts.owner = g.nextOwner
	g.nextOwner++
	g.tasks[ts.t] = ts
	g.byOwner[ts.owner] = ts
	g.order = append(g.order, ts)
}

func (g *OS) untrack(ts *taskState) {
	delete(g.tasks, ts.t)
	delete(g.byOwner, ts.owner)
	for i, x := range g.order {
		if x == ts {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
}

// TaskVCPU reports which VCPU index a task is pinned to, or -1.
func (g *OS) TaskVCPU(t *task.Task) int {
	ts, ok := g.tasks[t]
	if !ok || ts.vs == nil {
		return -1
	}
	return ts.vs.v.Index
}

// emitVerdict reports a guest-level admission decision onto the host's
// telemetry bus. Guest verdicts carry the task name (host-level ones do
// not), so the two layers are distinguishable in a trace; Arg is the
// requested slice.
func (g *OS) emitVerdict(t *task.Task, vs *vcpuState, slice simtime.Duration, ok bool) {
	if !g.host.Tracing() {
		return
	}
	kind := trace.Reject
	if ok {
		kind = trace.Admit
	}
	ev := trace.Event{At: g.sim.Now(), Kind: kind, PCPU: -1,
		VM: g.vm.Name, Task: t.Name, Arg: int64(slice)}
	if vs != nil {
		ev.VCPU = vs.v.Index
	}
	g.host.Emit(ev)
}

// ---- system-call interface (sched_setattr analogue) ----

// Register admits task t: guest-level admission picks a VCPU with enough
// bandwidth (first-fit, then reshuffle, then hotplug), and in cross-layer
// mode requests the VCPU's enlarged reservation from the host via
// sched_rtvirt(INC_BW) before pinning (§3.2 case 1).
func (g *OS) Register(t *task.Task) error {
	if _, dup := g.tasks[t]; dup {
		return ErrAlreadyRegister
	}
	if t.Kind == task.Background {
		// BGAs need no admission and consume no reserved bandwidth; they
		// queue behind RT jobs (deadline = Never) on the VCPU with the
		// fewest background tasks.
		ts := &taskState{t: t, os: g}
		g.track(ts)
		best := g.vcpus[0]
		bestN := 1 << 30
		for _, vs := range g.vcpus {
			n := 0
			for _, x := range vs.tasks {
				if x.t.Kind == task.Background {
					n++
				}
			}
			if n < bestN {
				best, bestN = vs, n
			}
		}
		g.pin(ts, best)
		return nil
	}
	if !t.Params().Valid() {
		return fmt.Errorf("guest: invalid params %v", t.Params())
	}
	ts := &taskState{t: t, os: g}
	vs, err := g.place(ts, t.Params().Bandwidth())
	if err != nil {
		g.emitVerdict(t, nil, t.Params().Slice, false)
		return err
	}
	g.track(ts)
	g.pin(ts, vs)
	g.emitVerdict(t, vs, t.Params().Slice, true)
	return nil
}

// RegisterOn admits task t pinned to a specific VCPU, used when an offline
// analysis (e.g. CSA for RT-Xen) has already decided placement.
func (g *OS) RegisterOn(t *task.Task, vcpu int) error {
	if _, dup := g.tasks[t]; dup {
		return ErrAlreadyRegister
	}
	vs := g.vcpus[vcpu]
	bw := t.Params().Bandwidth()
	if t.Kind != task.Background && vs.bwSum()+bw > g.cfg.VCPUCapacity+1e-9 {
		g.emitVerdict(t, vs, t.Params().Slice, false)
		return ErrNoCapacity
	}
	ts := &taskState{t: t, os: g}
	if g.cfg.CrossLayer {
		res := g.deriveRes(vs, ts)
		if err := g.host.SchedRTVirt(hv.Hypercall{Flag: hv.IncBW, VCPU: vs.v, Res: res}); err != nil {
			g.emitVerdict(t, vs, t.Params().Slice, false)
			return fmt.Errorf("%w: %v", ErrHostRejected, err)
		}
	}
	g.track(ts)
	g.pin(ts, vs)
	g.emitVerdict(t, vs, t.Params().Slice, true)
	return nil
}

// SetAttr changes a task's timeliness requirement (§3.2 cases 2 and 3):
// bandwidth increases re-run admission (possibly moving the task with an
// INC_DEC_BW hypercall); decreases always succeed and release bandwidth.
func (g *OS) SetAttr(t *task.Task, p task.Params) error {
	ts, ok := g.tasks[t]
	if !ok {
		return ErrUnknownTask
	}
	if !p.Valid() {
		return fmt.Errorf("guest: invalid params %v", p)
	}
	oldP := t.Params()
	oldBW, newBW := oldP.Bandwidth(), p.Bandwidth()
	vs := ts.vs

	fitsHere := vs.bwSum()-oldBW+newBW <= g.cfg.VCPUCapacity+1e-9
	if fitsHere {
		t.SetParams(p)
		if g.cfg.CrossLayer {
			res := g.deriveRes(vs, nil)
			flag := hv.DecBW
			if newBW > oldBW {
				flag = hv.IncBW
			}
			if err := g.host.SchedRTVirt(hv.Hypercall{Flag: flag, VCPU: vs.v, Res: res}); err != nil {
				t.SetParams(oldP)
				g.emitVerdict(t, vs, p.Slice, false)
				return fmt.Errorf("%w: %v", ErrHostRejected, err)
			}
		}
		g.publish(vs)
		g.emitVerdict(t, vs, p.Slice, true)
		return nil
	}

	// Must move to another VCPU: find one with room for the new bandwidth.
	dst := g.findFit(newBW, vs)
	if dst == nil {
		if g.cfg.Reshuffle {
			// Give up only after a repack attempt fails.
			if err := g.reshuffleFor(ts, p); err == nil {
				g.emitVerdict(t, ts.vs, p.Slice, true)
				return nil
			}
		}
		g.emitVerdict(t, vs, p.Slice, false)
		return ErrNoCapacity
	}
	t.SetParams(p)
	if g.cfg.CrossLayer {
		// INC_DEC_BW: grow dst, shrink the task's old VCPU, atomically.
		incRes := g.deriveRes(dst, ts)
		decRes := g.deriveResExcluding(vs, ts)
		hc := hv.Hypercall{Flag: hv.IncDecBW, VCPU: dst.v, Res: incRes, Dec: vs.v, DecRes: decRes}
		if err := g.host.SchedRTVirt(hc); err != nil {
			t.SetParams(oldP)
			g.emitVerdict(t, vs, p.Slice, false)
			return fmt.Errorf("%w: %v", ErrHostRejected, err)
		}
	}
	g.unpin(ts)
	g.pin(ts, dst)
	g.emitVerdict(t, dst, p.Slice, true)
	return nil
}

// Unregister removes a task (§3.2 case 4): pending jobs are abandoned and
// the freed bandwidth is returned with a DEC_BW hypercall.
func (g *OS) Unregister(t *task.Task) error {
	ts, ok := g.tasks[t]
	if !ok {
		return ErrUnknownTask
	}
	g.sim.Cancel(ts.releaseEv)
	ts.releaseEv = eventq.Handle{}
	g.untrack(ts)
	if ts.vs == nil {
		return nil
	}
	vs := ts.vs
	now := g.sim.Now()
	// Abandon this task's queued jobs.
	for _, j := range vs.ready.Jobs() {
		if j.Task == t {
			vs.ready.Remove(j)
			j.Abandon(now)
		}
	}
	g.unpin(ts)
	if g.cfg.CrossLayer {
		res := g.deriveRes(vs, nil)
		// DEC_BW cannot fail; ignore the impossible error path.
		_ = g.host.SchedRTVirt(hv.Hypercall{Flag: hv.DecBW, VCPU: vs.v, Res: res})
	}
	g.publish(vs)
	// The kernel may be running one of the abandoned jobs; force a re-pick.
	g.host.VCPURecheck(vs.v, now)
	return nil
}

// Shutdown unregisters every task (abandoning queued jobs) and removes
// the VM from the host — the teardown half of a live migration or a VM
// destroy.
func (g *OS) Shutdown() error {
	for _, t := range g.Tasks() {
		if err := g.Unregister(t); err != nil {
			return err
		}
	}
	g.host.RemoveVM(g.vm)
	// The VCPUs are gone from the host; stop reporting their (static)
	// reservations as allocated bandwidth.
	g.vcpus = nil
	return nil
}

// ---- job release ----

// SetDemandFn installs a per-job demand sampler for t (nil = declared
// slice). Used by workloads with variable actual demand (memcached).
func (g *OS) SetDemandFn(t *task.Task, fn func() simtime.Duration) {
	ts, ok := g.tasks[t]
	if !ok {
		panic("guest: SetDemandFn on unregistered task")
	}
	ts.demandFn = fn
}

// ReleaseJob activates task t now with the given demand (0 = use declared
// slice or the demand function) and returns the job.
func (g *OS) ReleaseJob(t *task.Task, demand simtime.Duration) *task.Job {
	ts, ok := g.tasks[t]
	if !ok {
		panic("guest: ReleaseJob on unregistered task")
	}
	if demand <= 0 {
		if ts.demandFn != nil {
			demand = ts.demandFn()
		} else {
			demand = t.Params().Slice
		}
	}
	now := g.sim.Now()
	j := t.Release(now, demand)
	vs := ts.vs
	if vs == nil {
		panic("guest: ReleaseJob on unpinned task")
	}
	prevHead := vs.ready.Head()
	vs.ready.Push(j)
	g.publish(vs)
	if g.cfg.GEDF {
		// Global EDF: any idle VCPU may pick the job up; running VCPUs
		// re-evaluate in case the new deadline preempts theirs.
		woke := false
		for _, other := range g.vcpus {
			if !other.v.Runnable() {
				g.host.VCPUWake(other.v, now)
				woke = true
				break
			}
		}
		if !woke {
			for _, other := range g.vcpus {
				if cur := other.v.CurrentJob(); cur != nil && j.Deadline < cur.Deadline {
					g.host.VCPURecheck(other.v, now)
					break
				}
			}
		}
		return j
	}
	if !vs.v.Runnable() {
		g.host.VCPUWake(vs.v, now)
	} else if vs.ready.Head() != prevHead {
		// The new job preempts under EDF; tell the kernel if v is running.
		g.host.VCPURecheck(vs.v, now)
	}
	return j
}

// StartPeriodic begins periodic releases of t at the given start instant;
// each release draws demand from the task's demand function or slice.
func (g *OS) StartPeriodic(t *task.Task, start simtime.Time) {
	ts, ok := g.tasks[t]
	if !ok {
		panic("guest: StartPeriodic on unregistered task")
	}
	if ts.releaseEv.Active() {
		panic("guest: StartPeriodic called twice")
	}
	ts.nextRelease = start
	ts.releaseEv = g.sim.PostAt(start,
		sim.Payload{Handler: g.handlerID, Kind: evPeriodicTick, Owner: ts.owner})
	if ts.vs != nil {
		g.publish(ts.vs)
	}
}

// HandleSimEvent implements sim.Handler.
func (g *OS) HandleSimEvent(now simtime.Time, ev sim.Payload) {
	switch ev.Kind {
	case evPeriodicTick:
		if ts, ok := g.byOwner[ev.Owner]; ok {
			g.periodicTick(ts, now)
		}
	default:
		panic(fmt.Sprintf("guest: unknown event kind %d", ev.Kind))
	}
}

func (g *OS) periodicTick(ts *taskState, now simtime.Time) {
	ts.releaseEv = eventq.Handle{}
	if g.tasks[ts.t] != ts {
		return // unregistered meanwhile
	}
	// Arm the next tick before releasing so the deadline publication that
	// happens inside ReleaseJob sees a fresh next-release time.
	ts.nextRelease = now.Add(ts.t.Params().Period)
	ts.releaseEv = g.sim.PostAt(ts.nextRelease,
		sim.Payload{Handler: g.handlerID, Kind: evPeriodicTick, Owner: ts.owner})
	g.ReleaseJob(ts.t, 0)
}

// ---- hv.GuestDriver ----

// PickJob implements hv.GuestDriver: partitioned EDF per VCPU, or — in
// gEDF mode — the globally earliest-deadline job not already executing on
// another VCPU.
func (g *OS) PickJob(v *hv.VCPU, now simtime.Time) *task.Job {
	if !g.cfg.GEDF {
		return g.vcpus[v.Index].ready.Head()
	}
	var best *task.Job
	for _, vs := range g.vcpus {
		for _, j := range vs.ready.Jobs() {
			if running := g.runningElsewhere(j, v); running {
				continue
			}
			if best == nil || j.Deadline < best.Deadline {
				best = j
			}
		}
	}
	return best
}

// runningElsewhere reports whether j is currently executing on a VCPU
// other than v (a job cannot run on two VCPUs at once).
func (g *OS) runningElsewhere(j *task.Job, v *hv.VCPU) bool {
	for _, vs := range g.vcpus {
		if vs.v != v && vs.v.CurrentJob() == j {
			return true
		}
	}
	return false
}

// JobCompleted implements hv.GuestDriver.
func (g *OS) JobCompleted(v *hv.VCPU, j *task.Job, now simtime.Time) {
	if g.cfg.GEDF {
		// The job may live on any queue under gEDF.
		for _, vs := range g.vcpus {
			if vs.ready.Remove(j) {
				g.publish(vs)
				return
			}
		}
		panic("guest: completed job was not queued")
	}
	vs := g.vcpus[v.Index]
	if !vs.ready.Remove(j) {
		panic("guest: completed job was not queued")
	}
	g.publish(vs)
}

// ---- internals ----

func (g *OS) pin(ts *taskState, vs *vcpuState) {
	ts.vs = vs
	ts.t.VCPU = vs.v.Index
	vs.tasks = append(vs.tasks, ts)
	g.publish(vs)
}

func (g *OS) unpin(ts *taskState) {
	vs := ts.vs
	for i, x := range vs.tasks {
		if x == ts {
			vs.tasks = append(vs.tasks[:i], vs.tasks[i+1:]...)
			break
		}
	}
	ts.vs = nil
	ts.t.VCPU = -1
	g.publish(vs)
}

// findFit returns the first VCPU (other than skip) with room for bw.
func (g *OS) findFit(bw float64, skip *vcpuState) *vcpuState {
	for _, vs := range g.vcpus {
		if vs == skip {
			continue
		}
		if vs.bwSum()+bw <= g.cfg.VCPUCapacity+1e-9 {
			return vs
		}
	}
	return nil
}

// place finds (or creates) a VCPU for a new task and performs the
// cross-layer admission handshake: first fit, then a defragmenting
// reshuffle, then CPU hotplug (§3.2).
func (g *OS) place(ts *taskState, bw float64) (*vcpuState, error) {
	vs := g.findFit(bw, nil)
	if vs == nil && g.cfg.Reshuffle {
		if targets, ok := g.planRepack(ts, bw); ok {
			if err := g.applyRepack(targets); err != nil {
				return nil, err
			}
			vs = g.findFit(bw, nil)
		}
	}
	if vs == nil && g.cfg.MaxVCPUs > len(g.vcpus) {
		// Hotplug a fresh VCPU (§3.2: "RTVirt uses CPU hotplug to add
		// additional VCPUs to the VM online").
		if _, err := g.AddVCPU(hv.Reservation{Period: simtime.Millis(10)}, 256); err == nil {
			vs = g.vcpus[len(g.vcpus)-1]
		}
	}
	if vs == nil {
		return nil, ErrNoCapacity
	}
	if g.cfg.CrossLayer {
		res := g.deriveRes(vs, ts)
		if err := g.host.SchedRTVirt(hv.Hypercall{Flag: hv.IncBW, VCPU: vs.v, Res: res}); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrHostRejected, err)
		}
	}
	return vs, nil
}

// deriveRes computes a VCPU's reservation per §3.3: budget is the summed
// bandwidth of its RTAs (including extra, if non-nil) scaled to the VCPU
// period — the smallest RTA period — plus the configured slack.
func (g *OS) deriveRes(vs *vcpuState, extra *taskState) hv.Reservation {
	sum := vs.bwSum()
	minP := simtime.Infinite
	prio := 0
	for _, ts := range vs.tasks {
		if ts.t.Kind == task.Background {
			// BGAs hold no reservation and their zero period must not
			// drag the VCPU period (and hence the budget) to zero.
			continue
		}
		if p := ts.t.Params().Period; p < minP {
			minP = p
		}
		if ts.t.Priority > prio {
			prio = ts.t.Priority
		}
	}
	if extra != nil && extra.vs != vs {
		sum += extra.t.Params().Bandwidth()
		if p := extra.t.Params().Period; p < minP {
			minP = p
		}
		if extra.t.Priority > prio {
			prio = extra.t.Priority
		}
	}
	return g.resFromPrio(sum, minP, prio)
}

// deriveResExcluding computes the reservation of vs without task ex.
func (g *OS) deriveResExcluding(vs *vcpuState, ex *taskState) hv.Reservation {
	var sum float64
	minP := simtime.Infinite
	for _, ts := range vs.tasks {
		if ts == ex || ts.t.Kind == task.Background {
			continue
		}
		sum += ts.t.Params().Bandwidth()
		if p := ts.t.Params().Period; p < minP {
			minP = p
		}
	}
	return g.resFrom(sum, minP)
}

func (g *OS) resFrom(sumBW float64, minP simtime.Duration) hv.Reservation {
	return g.resFromPrio(sumBW, minP, 0)
}

func (g *OS) resFromPrio(sumBW float64, minP simtime.Duration, prio int) hv.Reservation {
	if sumBW <= 0 || minP == simtime.Infinite {
		return hv.Reservation{Budget: 0, Period: simtime.Millis(10)}
	}
	slack := g.cfg.Slack
	if g.cfg.PrioritySlack && prio > 0 {
		// §6: slack in proportion to priority.
		slack = simtime.Duration(int64(slack) * int64(1+prio))
	}
	// Round the budget up so truncation never starves the tasks of the
	// final nanoseconds they need at exact utilization.
	budget := simtime.Duration(math.Ceil(sumBW*float64(minP))) + slack
	if budget > minP {
		budget = minP
	}
	return hv.Reservation{Budget: budget, Period: minP}
}

// planRepack computes a first-fit-decreasing packing of every registered
// RT task — plus, optionally, a not-yet-pinned extra task of bandwidth
// extraBW — onto the current VCPUs. It returns the target VCPU index per
// existing task and whether the packing succeeded. §3.2: "the guest can
// reshuffle the placement of RTAs if there is enough bandwidth on the VM
// but it is fragmented across VCPUs."
func (g *OS) planRepack(extra *taskState, extraBW float64) (map[*taskState]int, bool) {
	type packItem struct {
		ts *taskState
		bw float64
	}
	var items []packItem
	if extra != nil {
		items = append(items, packItem{extra, extraBW})
	}
	for _, vs := range g.vcpus {
		for _, x := range vs.tasks {
			if x == extra {
				continue // already listed with its prospective bandwidth
			}
			items = append(items, packItem{x, x.t.Params().Bandwidth()})
		}
	}
	// First-fit decreasing: sort by bandwidth, largest first.
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && items[j].bw > items[j-1].bw; j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
	fill := make([]float64, len(g.vcpus))
	target := make(map[*taskState]int)
	for _, it := range items {
		placed := false
		for vi := range g.vcpus {
			if fill[vi]+it.bw <= g.cfg.VCPUCapacity+1e-9 {
				fill[vi] += it.bw
				target[it.ts] = vi
				placed = true
				break
			}
		}
		if !placed {
			return nil, false
		}
	}
	return target, true
}

// applyRepack moves existing tasks to their planned VCPUs (queued jobs
// follow), then synchronises the host reservations — shrinking VCPUs
// first so the grow hypercalls never see transient over-capacity.
func (g *OS) applyRepack(target map[*taskState]int) error {
	for _, vs := range g.vcpus {
		for _, x := range append([]*taskState(nil), vs.tasks...) {
			if ti, ok := target[x]; ok && ti != x.vs.v.Index {
				from := x.vs
				g.unpin(x)
				g.pin(x, g.vcpus[ti])
				g.migrateJobs(x, from, g.vcpus[ti])
			}
		}
	}
	if !g.cfg.CrossLayer {
		return nil
	}
	var grows []*vcpuState
	for _, vs := range g.vcpus {
		res := g.deriveRes(vs, nil)
		if res.Bandwidth() <= vs.v.Res.Bandwidth() {
			// DEC_BW cannot be rejected.
			_ = g.host.SchedRTVirt(hv.Hypercall{Flag: hv.DecBW, VCPU: vs.v, Res: res})
		} else {
			grows = append(grows, vs)
		}
	}
	for _, vs := range grows {
		res := g.deriveRes(vs, nil)
		if err := g.host.SchedRTVirt(hv.Hypercall{Flag: hv.IncBW, VCPU: vs.v, Res: res}); err != nil {
			return fmt.Errorf("%w: %v", ErrHostRejected, err)
		}
	}
	return nil
}

// reshuffleFor handles a SetAttr that fits nowhere as-is: repack with the
// task at its new parameters, then apply the new parameters and placement.
func (g *OS) reshuffleFor(ts *taskState, p task.Params) error {
	target, ok := g.planRepack(ts, p.Bandwidth())
	if !ok {
		return ErrNoCapacity
	}
	oldP := ts.t.Params()
	ts.t.SetParams(p)
	if err := g.applyRepack(target); err != nil {
		ts.t.SetParams(oldP)
		return err
	}
	return nil
}

func (g *OS) migrateJobs(ts *taskState, from, to *vcpuState) {
	for _, j := range from.ready.Jobs() {
		if j.Task == ts.t {
			from.ready.Remove(j)
			to.ready.Push(j)
		}
	}
	now := g.sim.Now()
	if to.ready.Len() > 0 && !to.v.Runnable() {
		g.host.VCPUWake(to.v, now)
	}
	g.host.VCPURecheck(from.v, now)
	g.host.VCPURecheck(to.v, now)
	g.publish(from)
	g.publish(to)
}

// publish recomputes and writes the VCPU's shared-memory words: the next
// earliest deadline across its RTAs and the sporadic worst-case floor.
func (g *OS) publish(vs *vcpuState) {
	if !g.cfg.CrossLayer {
		return
	}
	now := g.sim.Now()
	slot := simtime.Never
	floor := simtime.Duration(0)
	add := func(d simtime.Time) {
		if d > now && d < slot {
			slot = d
		}
	}
	// Pending jobs' deadlines (overdue ones are no longer boundaries).
	for _, j := range vs.ready.Jobs() {
		add(j.Deadline)
	}
	for _, ts := range vs.tasks {
		switch ts.t.Kind {
		case task.Periodic:
			// The next release is the next scheduling boundary: for
			// back-to-back periodic tasks it coincides with the current
			// job's deadline, and after an early completion it marks the
			// point where the allocation demand resumes — a slice must not
			// span it, or the task's window can land before its job even
			// arrives.
			if ts.releaseEv.Active() {
				add(ts.nextRelease)
			}
		case task.Sporadic:
			p := ts.t.Params().Period
			if floor == 0 || p < floor {
				floor = p
			}
		}
	}
	if vs.v.DeadlineSlot != slot {
		g.host.WriteDeadlineSlot(vs.v, slot)
	}
	if vs.v.SporadicFloor != floor {
		g.host.WriteSporadicFloor(vs.v, floor)
	}
}

package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"rtvirt/internal/dist"
	"rtvirt/internal/hv"
)

// CostSpec is one platform-cost term in scenario JSON. It accepts either a
// bare number (a constant, in microseconds):
//
//	"migration": 3
//
// or an object naming exactly one distribution:
//
//	"migration": {"const": 3}
//	"ctx_switch_cold": {"pareto": {"lo_us": 2, "hi_us": 50, "alpha": 2.2}}
//	"hypercall": {"lognormal": {"mean_us": 10, "sigma": 0.45}}
//	"tick": {"normal": {"mean_us": 20, "stddev_us": 4, "min_us": 2}}
//	"schedule_base": {"uniform": {"lo_us": 0.5, "hi_us": 1.5}}
//
// Unknown keys, empty objects, and objects naming two forms are rejected
// loudly at parse/validate time.
type CostSpec struct {
	Const     *float64       `json:"const,omitempty"`
	Uniform   *UniformSpec   `json:"uniform,omitempty"`
	Normal    *NormalSpec    `json:"normal,omitempty"`
	LogNormal *LogNormalSpec `json:"lognormal,omitempty"`
	Pareto    *ParetoSpec    `json:"pareto,omitempty"`
}

// UniformSpec draws uniformly from [lo_us, hi_us] microseconds.
type UniformSpec struct {
	LoUS float64 `json:"lo_us"`
	HiUS float64 `json:"hi_us"`
}

// NormalSpec draws from a normal distribution (microsecond parameters),
// clamped below at min_us.
type NormalSpec struct {
	MeanUS   float64 `json:"mean_us"`
	StddevUS float64 `json:"stddev_us"`
	MinUS    float64 `json:"min_us"`
}

// LogNormalSpec draws from a log-normal with the given mean (µs) and
// multiplicative tail spread sigma (dimensionless).
type LogNormalSpec struct {
	MeanUS float64 `json:"mean_us"`
	Sigma  float64 `json:"sigma"`
}

// ParetoSpec draws from a bounded Pareto on [lo_us, hi_us] with shape alpha.
type ParetoSpec struct {
	LoUS  float64 `json:"lo_us"`
	HiUS  float64 `json:"hi_us"`
	Alpha float64 `json:"alpha"`
}

// UnmarshalJSON accepts the bare-number shorthand or the strict object form.
// Strictness does not ride on the outer decoder (custom unmarshalers never
// see DisallowUnknownFields), so the object path re-enforces it here.
func (c *CostSpec) UnmarshalJSON(b []byte) error {
	b = bytes.TrimSpace(b)
	if len(b) > 0 && b[0] != '{' {
		var us float64
		if err := json.Unmarshal(b, &us); err != nil {
			return fmt.Errorf("cost: want a number (µs) or a distribution object: %w", err)
		}
		*c = CostSpec{Const: &us}
		return nil
	}
	type plain CostSpec // no methods: avoids recursing into this unmarshaler
	var p plain
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return fmt.Errorf("cost: %w", err)
	}
	*c = CostSpec(p)
	return nil
}

// MarshalJSON writes the canonical form: bare number for constants, the
// object form otherwise, so a marshal/reparse round trip is lossless.
func (c CostSpec) MarshalJSON() ([]byte, error) {
	if c.Const != nil && c.Uniform == nil && c.Normal == nil &&
		c.LogNormal == nil && c.Pareto == nil {
		return json.Marshal(*c.Const)
	}
	type plain CostSpec
	return json.Marshal(plain(c))
}

// badUS reports whether a microsecond field is unusable as a cost.
func badUS(v float64) bool { return v < 0 || math.IsNaN(v) || math.IsInf(v, 0) }

// validate checks the spec names exactly one well-formed distribution.
// name is the JSON field for error messages.
func (c *CostSpec) validate(name string) error {
	forms := 0
	for _, set := range []bool{c.Const != nil, c.Uniform != nil, c.Normal != nil,
		c.LogNormal != nil, c.Pareto != nil} {
		if set {
			forms++
		}
	}
	if forms != 1 {
		return fmt.Errorf("scenario: costs.%s must name exactly one of const/uniform/normal/lognormal/pareto (got %d)", name, forms)
	}
	switch {
	case c.Const != nil:
		if badUS(*c.Const) {
			return fmt.Errorf("scenario: costs.%s.const invalid (%v)", name, *c.Const)
		}
	case c.Uniform != nil:
		u := c.Uniform
		if badUS(u.LoUS) || badUS(u.HiUS) || u.HiUS < u.LoUS {
			return fmt.Errorf("scenario: costs.%s.uniform needs 0 ≤ lo_us ≤ hi_us (got [%v, %v])", name, u.LoUS, u.HiUS)
		}
	case c.Normal != nil:
		n := c.Normal
		if badUS(n.MeanUS) || badUS(n.StddevUS) || badUS(n.MinUS) {
			return fmt.Errorf("scenario: costs.%s.normal needs finite non-negative mean_us/stddev_us/min_us (got µ=%v σ=%v min=%v)", name, n.MeanUS, n.StddevUS, n.MinUS)
		}
	case c.LogNormal != nil:
		l := c.LogNormal
		if badUS(l.MeanUS) || l.MeanUS == 0 || math.IsNaN(l.Sigma) || math.IsInf(l.Sigma, 0) || l.Sigma < 0 {
			return fmt.Errorf("scenario: costs.%s.lognormal needs mean_us > 0 and sigma ≥ 0 (got µ=%v σ=%v)", name, l.MeanUS, l.Sigma)
		}
	case c.Pareto != nil:
		p := c.Pareto
		if badUS(p.LoUS) || badUS(p.HiUS) || p.LoUS == 0 || p.HiUS < p.LoUS ||
			math.IsNaN(p.Alpha) || math.IsInf(p.Alpha, 0) || p.Alpha <= 0 {
			return fmt.Errorf("scenario: costs.%s.pareto needs 0 < lo_us ≤ hi_us and alpha > 0 (got [%v, %v] α=%v)", name, p.LoUS, p.HiUS, p.Alpha)
		}
	}
	return nil
}

// toCost builds the hv.Cost term. The spec must have passed validate.
func (c *CostSpec) toCost() hv.Cost {
	switch {
	case c.Const != nil:
		return hv.ConstCost(usToDur(*c.Const))
	case c.Uniform != nil:
		return hv.DistCost(dist.Uniform{Lo: usToDur(c.Uniform.LoUS), Hi: usToDur(c.Uniform.HiUS)})
	case c.Normal != nil:
		return hv.DistCost(dist.Normal{MeanD: usToDur(c.Normal.MeanUS),
			Stddev: usToDur(c.Normal.StddevUS), Min: usToDur(c.Normal.MinUS)})
	case c.LogNormal != nil:
		return hv.DistCost(dist.LogNormalFromMoments(usToDur(c.LogNormal.MeanUS), c.LogNormal.Sigma))
	case c.Pareto != nil:
		return hv.DistCost(dist.BoundedPareto{Lo: usToDur(c.Pareto.LoUS),
			Hi: usToDur(c.Pareto.HiUS), Alpha: c.Pareto.Alpha})
	default:
		panic("scenario: toCost on empty CostSpec")
	}
}

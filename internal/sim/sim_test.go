package sim

import (
	"math"
	"testing"
	"testing/quick"

	"rtvirt/internal/simtime"
)

func TestClockAdvances(t *testing.T) {
	s := New(1)
	var at simtime.Time
	s.After(simtime.Millis(5), func(now simtime.Time) { at = now })
	if !s.Step() {
		t.Fatal("Step returned false with a pending event")
	}
	if at != simtime.Time(simtime.Millis(5)) || s.Now() != at {
		t.Fatalf("event at %v, clock %v; want 5ms", at, s.Now())
	}
	if s.Step() {
		t.Fatal("Step returned true with empty queue")
	}
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	s := New(1)
	var fired []simtime.Time
	for _, ms := range []int64{1, 2, 3, 4, 5} {
		s.At(simtime.Time(simtime.Millis(ms)), func(now simtime.Time) { fired = append(fired, now) })
	}
	s.RunUntil(simtime.Time(simtime.Millis(3)))
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3 (inclusive boundary)", len(fired))
	}
	if s.Now() != simtime.Time(simtime.Millis(3)) {
		t.Fatalf("clock = %v, want 3ms", s.Now())
	}
	s.RunFor(simtime.Millis(10))
	if len(fired) != 5 {
		t.Fatalf("fired %d events after RunFor, want 5", len(fired))
	}
	if s.Now() != simtime.Time(simtime.Millis(13)) {
		t.Fatalf("clock = %v, want 13ms", s.Now())
	}
}

func TestSchedulingInsideCallback(t *testing.T) {
	s := New(1)
	count := 0
	var tick func(now simtime.Time)
	tick = func(now simtime.Time) {
		count++
		if count < 10 {
			s.After(simtime.Millis(1), tick)
		}
	}
	s.After(0, tick)
	s.Drain(100)
	if count != 10 {
		t.Fatalf("ticks = %d, want 10", count)
	}
	if s.Now() != simtime.Time(simtime.Millis(9)) {
		t.Fatalf("clock = %v, want 9ms", s.Now())
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	s := New(1)
	s.After(simtime.Millis(1), func(simtime.Time) {})
	s.RunFor(simtime.Millis(2))
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(0, func(simtime.Time) {})
}

func TestCancelPending(t *testing.T) {
	s := New(1)
	fired := false
	e := s.After(simtime.Millis(1), func(simtime.Time) { fired = true })
	s.Cancel(e)
	s.Drain(10)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []uint64 {
		s := New(42)
		var vals []uint64
		for i := 0; i < 32; i++ {
			d := simtime.Duration(s.RNG().Int63n(int64(simtime.Millis(10))))
			s.After(d, func(simtime.Time) { vals = append(vals, s.RNG().Uint64()) })
		}
		s.Drain(100)
		return vals
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d", i)
		}
	}
}

func TestRNGUniformBounds(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		if v := r.Int63n(13); v < 0 || v >= 13 {
			t.Fatalf("Int63n out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(9)
	n := 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %g, want ~1", variance)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(11)
	n := 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / float64(n); math.Abs(mean-1) > 0.02 {
		t.Fatalf("exp mean = %g, want ~1", mean)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

// Property: Int63n respects its bound for arbitrary positive bounds.
func TestQuickInt63n(t *testing.T) {
	r := NewRNG(99)
	f := func(n int64) bool {
		if n <= 0 {
			n = -n + 1
		}
		v := r.Int63n(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: splitting yields streams that do not trivially collide.
func TestSplitIndependence(t *testing.T) {
	a := NewRNG(5)
	b := a.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collided %d times", same)
	}
}

func TestRescheduleMovesEvent(t *testing.T) {
	s := New(1)
	var order []string
	h := s.At(100, func(simtime.Time) { order = append(order, "moved") })
	s.At(50, func(simtime.Time) { order = append(order, "fixed") })
	h = s.Reschedule(h, 10) // earlier than the fixed event
	s.RunUntil(30)
	if len(order) != 1 || order[0] != "moved" {
		t.Fatalf("after RunUntil(30): fired %v, want [moved]", order)
	}
	if h.Active() {
		t.Fatal("handle still active after its event fired")
	}
	h2 := s.At(200, func(simtime.Time) { order = append(order, "late") })
	s.Reschedule(h2, 60) // later move still lands before the horizon
	s.RunUntil(1000)
	if len(order) != 3 || order[1] != "fixed" || order[2] != "late" {
		t.Fatalf("final fire order %v, want [moved fixed late]", order)
	}
}

func TestRescheduleIntoPastPanics(t *testing.T) {
	s := New(1)
	h := s.At(100, func(simtime.Time) {})
	s.At(50, func(simtime.Time) {})
	s.RunUntil(60)
	defer func() {
		if recover() == nil {
			t.Fatal("rescheduling before now did not panic")
		}
	}()
	s.Reschedule(h, 10)
}

// RunUntil must cost exactly one queue peek per fired event: with N events
// at or before the horizon, the loop body runs N times and the bound check
// rides on the same peek. EventsFired is the observable loop count.
func TestRunUntilFiresExactlyPending(t *testing.T) {
	s := New(1)
	const before, after = 37, 5
	for i := 0; i < before; i++ {
		s.At(simtime.Time(10+i), func(simtime.Time) {})
	}
	for i := 0; i < after; i++ {
		s.At(simtime.Time(1000+i), func(simtime.Time) {})
	}
	s.RunUntil(500)
	if got := s.EventsFired(); got != before {
		t.Fatalf("EventsFired = %d, want %d", got, before)
	}
	if s.Now() != 500 {
		t.Fatalf("Now = %v, want 500", s.Now())
	}
	if s.Pending() != after {
		t.Fatalf("Pending = %d, want %d", s.Pending(), after)
	}
}

func TestDrainBudgetPanics(t *testing.T) {
	s := New(1)
	var tick func(simtime.Time)
	tick = func(simtime.Time) { s.After(1, tick) }
	s.After(0, tick)
	defer func() {
		if recover() == nil {
			t.Fatal("runaway Drain did not panic")
		}
	}()
	s.Drain(1000)
}

package workload

import (
	"math"
	"testing"

	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
)

// countArrivals drives p directly over horizon and returns the number of
// arrivals it generates.
func countArrivals(p ArrivalProcess, seed uint64, horizon simtime.Duration) int {
	rng := sim.NewRNG(seed)
	t := simtime.Time(0)
	end := simtime.Time(0).Add(horizon)
	n := 0
	for {
		t = t.Add(p.Next(t, rng))
		if t.After(end) {
			return n
		}
		n++
	}
}

// TestArrivalProcessRates checks every traffic model's empirical arrival
// count over a long horizon against its analytic expectation: a table of
// (process, expected arrivals) with a CLT-scale tolerance. 50 virtual
// seconds puts thousands of arrivals in each cell, so 10% is generous
// without being vacuous.
func TestArrivalProcessRates(t *testing.T) {
	const horizonS = 50
	horizon := simtime.Seconds(horizonS)
	day := simtime.Seconds(2)
	cases := []struct {
		name string
		mk   func() ArrivalProcess
		want float64 // expected arrivals over the horizon
	}{
		{"poisson", func() ArrivalProcess { return Poisson{RateHz: 80} }, 80 * horizonS},
		// Whole days (25 of them), so the sine averages out exactly.
		{"diurnal", func() ArrivalProcess {
			return Diurnal{BaseHz: 20, PeakHz: 180, Day: day}
		}, (20 + 180) / 2 * horizonS},
		{"diurnal phased", func() ArrivalProcess {
			return Diurnal{BaseHz: 20, PeakHz: 180, Day: day, Phase: 0.5}
		}, (20 + 180) / 2 * horizonS},
		// Stationary rate Σλᵢsᵢ/Σsᵢ = (40·100 + 160·300)/400 = 130.
		{"mmpp", func() ArrivalProcess {
			return NewMMPP([]float64{40, 160},
				[]simtime.Duration{simtime.Millis(100), simtime.Millis(300)})
		}, 130 * horizonS},
		// Base floor plus one surge triangle of PeakHz·(Ramp+Decay)/2.
		{"flash", func() ArrivalProcess {
			return FlashCrowd{BaseHz: 60, Surges: []Surge{
				{At: simtime.Time(0).Add(simtime.Seconds(10)), PeakHz: 400,
					Ramp: simtime.Seconds(2), Decay: simtime.Seconds(6)},
			}}
		}, 60*horizonS + 400*(2+6)/2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := float64(countArrivals(c.mk(), 11, horizon))
			if math.Abs(got-c.want) > 0.10*c.want {
				t.Errorf("%s: %v arrivals over %ds, want %v ±10%%",
					c.mk(), got, horizonS, c.want)
			}
			// Same seed, fresh process: the stream is a pure function of
			// the seed (the MMPP carries state, hence mk() twice).
			again := float64(countArrivals(c.mk(), 11, horizon))
			if got != again {
				t.Errorf("%s: same seed produced %v then %v arrivals", c.mk(), got, again)
			}
		})
	}
}

// TestDiurnalTroughVsPeak checks the modulation actually modulates: the
// first quarter-day around the trough must see far fewer arrivals than
// the quarter around the peak.
func TestDiurnalTroughVsPeak(t *testing.T) {
	d := Diurnal{BaseHz: 10, PeakHz: 400, Day: simtime.Seconds(40)}
	rng := sim.NewRNG(3)
	trough, peak := 0, 0
	// Trough window: [0, 5s) after t=0; peak window: [17.5s, 22.5s).
	tt := simtime.Time(0)
	for {
		tt = tt.Add(d.Next(tt, rng))
		switch sec := float64(tt.Sub(0)) / float64(simtime.Second); {
		case sec < 5:
			trough++
		case sec >= 17.5 && sec < 22.5:
			peak++
		case sec >= 40:
			if peak < 5*trough {
				t.Fatalf("diurnal barely modulates: %d arrivals near trough, %d near peak", trough, peak)
			}
			return
		}
	}
}

// TestMMPPCloneContinuation pins Clone's deep-copy contract: a clone taken
// mid-stream must continue exactly like the original under an identical
// RNG, and diverging the original must not disturb the clone's state.
func TestMMPPCloneContinuation(t *testing.T) {
	m := NewMMPP([]float64{50, 200},
		[]simtime.Duration{simtime.Millis(80), simtime.Millis(40)})
	rng := sim.NewRNG(7)
	tt := simtime.Time(0)
	for i := 0; i < 500; i++ {
		tt = tt.Add(m.Next(tt, rng))
	}
	cl := m.Clone()
	rngA, rngB := rng.Clone(), rng.Clone()
	ta, tb := tt, tt
	for i := 0; i < 500; i++ {
		ga, gb := m.Next(ta, rngA), cl.Next(tb, rngB)
		if ga != gb {
			t.Fatalf("clone diverged at arrival %d: %v vs %v", i, ga, gb)
		}
		ta, tb = ta.Add(ga), tb.Add(gb)
	}
}

// TestNewMMPPPanics: misconfigured models must fail at construction.
func TestNewMMPPPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":    func() { NewMMPP(nil, nil) },
		"mismatch": func() { NewMMPP([]float64{1, 2}, []simtime.Duration{simtime.Millis(1)}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		})
	}
}

// TestArrivalGapsFloored: degenerate configurations (huge rates) must
// still make forward progress — every gap is at least 1ns.
func TestArrivalGapsFloored(t *testing.T) {
	rng := sim.NewRNG(1)
	p := Poisson{RateHz: 1e12}
	for i := 0; i < 1000; i++ {
		if g := p.Next(0, rng); g < 1 {
			t.Fatalf("gap %v below the 1ns floor", g)
		}
	}
}

package scenario

import (
	"strings"
	"testing"

	"rtvirt/internal/core"
	"rtvirt/internal/trace"
)

const mixedJSON = `{
  "stack": "rtvirt",
  "pcpus": 2,
  "seconds": 5,
  "seed": 3,
  "vms": [
    {"name": "rt", "vcpus": 1, "tasks": [
      {"name": "ctl", "kind": "periodic", "slice_us": 2000, "period_us": 10000},
      {"name": "srv", "kind": "sporadic", "slice_us": 500, "period_us": 5000, "rate_hz": 50}
    ]},
    {"name": "batch", "vcpus": 1, "tasks": [{"name": "hog", "kind": "background"}]}
  ]
}`

func TestParseAndRun(t *testing.T) {
	sc, err := Parse(strings.NewReader(mixedJSON))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stack != core.RTVirt || res.PCPUs != 2 || res.Seconds != 5 {
		t.Fatalf("run meta wrong: %+v", res)
	}
	byName := map[string]TaskResult{}
	for _, tr := range res.Tasks {
		byName[tr.Name] = tr
	}
	ctl := byName["ctl"]
	if ctl.Stats.Released != 501 || ctl.Stats.Missed != 0 {
		t.Fatalf("ctl stats: %+v", ctl.Stats)
	}
	srv := byName["srv"]
	if srv.Latency == nil || srv.Latency.Count() < 200 {
		t.Fatalf("srv latency samples: %v", srv.Latency)
	}
	hog := byName["hog"]
	// The batch VM has one VCPU: it can soak at most one of the two CPUs.
	if hog.Stats.TotalWork < 45*1e8 {
		t.Fatalf("hog consumed %v; an idle CPU should feed it", hog.Stats.TotalWork)
	}
	if res.AllocatedBW <= 0 {
		t.Fatal("no bandwidth reserved")
	}
}

func TestRunWithTrace(t *testing.T) {
	sc, err := Parse(strings.NewReader(mixedJSON))
	if err != nil {
		t.Fatal(err)
	}
	sc.Seconds = 1
	res, err := Run(sc, Options{Trace: true, TraceMax: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Trace.Len() == 0 {
		t.Fatal("no trace recorded")
	}
	var done int
	for _, r := range res.Trace.Records() {
		if r.Kind == trace.JobDone {
			done++
		}
	}
	if done < 100 {
		t.Fatalf("trace recorded %d completions", done)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse(strings.NewReader(`{"stacc": "rtvirt"}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"no VMs", `{"stack": "rtvirt"}`},
		{"bad stack", `{"stack": "vmware", "vms": [{"name": "a"}]}`},
		{"anonymous VM", `{"vms": [{"vcpus": 1}]}`},
		{"bad kind", `{"vms": [{"name": "a", "tasks": [{"name": "t", "kind": "spooky"}]}]}`},
		{"bad params", `{"vms": [{"name": "a", "tasks": [{"name": "t", "slice_us": 10, "period_us": 5}]}]}`},
		{"zero slice", `{"vms": [{"name": "a", "tasks": [{"name": "t", "period_us": 5}]}]}`},
		{"bad guest sched", `{"vms": [{"name": "a", "guest_sched": "cfs"}]}`},
		{"negative slack", `{"vms": [{"name": "a", "slack_us": -1}]}`},
		{"hotplug below vcpus", `{"vms": [{"name": "a", "vcpus": 4, "max_vcpus": 2}]}`},
		{"negative priority", `{"vms": [{"name": "a", "tasks": [{"name": "t", "slice_us": 1, "period_us": 5, "priority": -2}]}]}`},
		{"negative cost", `{"costs": {"context_switch_us": -1}, "vms": [{"name": "a"}]}`},
		{"unknown cost field", `{"costs": {"warp_us": 1}, "vms": [{"name": "a"}]}`},
	}
	for _, c := range cases {
		sc, err := Parse(strings.NewReader(c.json))
		if err != nil {
			continue // parse-level rejection also counts
		}
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: validated", c.name)
		}
	}
}

func TestStackFor(t *testing.T) {
	for name, want := range map[string]core.Stack{
		"": core.RTVirt, "rtvirt": core.RTVirt, "rt-xen": core.RTXen,
		"rtxen": core.RTXen, "edf": core.TwoLevelEDF, "credit": core.Credit,
	} {
		got, err := StackFor(name)
		if err != nil || got != want {
			t.Errorf("StackFor(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := StackFor("esxi"); err == nil {
		t.Error("unknown stack accepted")
	}
}

func TestServerGuestsAndCreditWeights(t *testing.T) {
	js := `{
	  "stack": "credit",
	  "pcpus": 1,
	  "seconds": 2,
	  "vms": [
	    {"name": "capped", "servers": [{"budget_us": 3000, "period_us": 10000}],
	     "tasks": [{"name": "hog1", "kind": "background"}]},
	    {"name": "free", "weight": 256,
	     "tasks": [{"name": "hog2", "kind": "background"}]}
	  ]
	}`
	sc, err := Parse(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var capped, free TaskResult
	for _, tr := range res.Tasks {
		if tr.VM == "capped" {
			capped = tr
		} else {
			free = tr
		}
	}
	// The capped VM is limited to ~30%; the free one takes the rest.
	if capped.Stats.TotalWork > free.Stats.TotalWork {
		t.Fatalf("cap not enforced: capped %v vs free %v",
			capped.Stats.TotalWork, free.Stats.TotalWork)
	}
}

func TestGuestSchedAndSlackKnobs(t *testing.T) {
	const doc = `{
	  "stack": "rtvirt", "pcpus": 2, "seconds": 2, "seed": 3,
	  "vms": [
	    {
	      "name": "gedf-vm", "vcpus": 2, "guest_sched": "gedf",
	      "tasks": [
	        {"name": "a", "kind": "periodic", "slice_us": 3000, "period_us": 10000},
	        {"name": "b", "kind": "periodic", "slice_us": 3000, "period_us": 10000},
	        {"name": "c", "kind": "periodic", "slice_us": 3000, "period_us": 10000}
	      ]
	    },
	    {
	      "name": "lean-vm", "slack_us": 0,
	      "tasks": [{"name": "d", "kind": "periodic", "slice_us": 1000, "period_us": 10000}]
	    }
	  ]
	}`
	sc, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Tasks {
		if tr.Stats.Missed != 0 {
			t.Errorf("task %s/%s missed %d deadlines", tr.VM, tr.Name, tr.Stats.Missed)
		}
	}
	// 0.9 CPUs of gedf-vm tasks + 0.1 of lean-vm + gedf-vm's slack terms;
	// lean-vm itself adds none.
	if res.AllocatedBW > 1.11 {
		t.Fatalf("allocated %.3f CPUs", res.AllocatedBW)
	}

	// In isolation, slack_us=0 must reserve exactly the fluid bandwidth:
	// ⌈0.1·10ms⌉ over 10ms = 0.1 CPUs, no slack term.
	lean := Scenario{
		Stack: "rtvirt", PCPUs: 1, Seconds: 1,
		VMs: []VM{{
			Name: "lean", SlackUS: new(int64),
			Tasks: []TaskSpec{{Name: "d", Kind: "periodic", SliceUS: 1000, PeriodUS: 10000}},
		}},
	}
	lres, err := Run(lean, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lres.AllocatedBW < 0.0999 || lres.AllocatedBW > 0.1001 {
		t.Fatalf("slack_us=0 reserved %.4f CPUs, want exactly 0.1", lres.AllocatedBW)
	}
}

func TestPrioritySlackKnob(t *testing.T) {
	run := func(prio int, prioritySlack bool) float64 {
		sc := Scenario{
			Stack: "rtvirt", PCPUs: 2, Seconds: 1,
			VMs: []VM{{
				Name: "v", PrioritySlack: prioritySlack,
				Tasks: []TaskSpec{{
					Name: "t", Kind: "periodic",
					SliceUS: 2000, PeriodUS: 10000, Priority: prio,
				}},
			}},
		}
		res, err := Run(sc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.AllocatedBW
	}
	base := run(0, true)
	boosted := run(3, true)
	ignored := run(3, false)
	// Priority 3 with priority_slack buys (1+3)× the 500µs slack:
	// budget 2ms+2ms over 10ms vs 2ms+0.5ms.
	if boosted <= base {
		t.Fatalf("priority_slack had no effect: base %.3f boosted %.3f", base, boosted)
	}
	if ignored != base {
		t.Fatalf("priority affected allocation without priority_slack: %.3f vs %.3f", ignored, base)
	}
}

func TestHotplugKnob(t *testing.T) {
	// One VCPU cannot hold 1.4 CPUs of tasks; max_vcpus lets the guest
	// grow. Without it, registration must fail.
	doc := func(maxVCPUs int) Scenario {
		return Scenario{
			Stack: "rtvirt", PCPUs: 2, Seconds: 1, VMs: []VM{{
				Name: "v", VCPUs: 1, MaxVCPUs: maxVCPUs,
				Tasks: []TaskSpec{
					{Name: "a", Kind: "periodic", SliceUS: 7000, PeriodUS: 10000},
					{Name: "b", Kind: "periodic", SliceUS: 7000, PeriodUS: 10000},
				},
			}},
		}
	}
	if _, err := Run(doc(0), Options{}); err == nil {
		t.Fatal("1.4 CPUs of tasks fit a single fixed VCPU")
	}
	res, err := Run(doc(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Tasks {
		if tr.Stats.Missed != 0 {
			t.Errorf("task %s missed %d deadlines after hotplug", tr.Name, tr.Stats.Missed)
		}
	}
}

func TestCostsOverride(t *testing.T) {
	run := func(costs string) *Result {
		js := `{
  "pcpus": 1, "seconds": 2, "seed": 3,` + costs + `
  "vms": [{"name": "rt", "tasks": [
    {"name": "ctl", "kind": "periodic", "slice_us": 2000, "period_us": 10000}]}]
}`
		sc, err := Parse(strings.NewReader(js))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(sc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	def := run(``)
	costly := run(`
  "costs": {"context_switch_us": 200, "hypercall_us": 500},`)
	free := run(`
  "costs": {"context_switch_us": 0, "migration_us": 0, "hypercall_us": 0},`)

	if costly.Overhead.Percent <= def.Overhead.Percent {
		t.Fatalf("inflated costs did not raise overhead: %v <= %v",
			costly.Overhead.Percent, def.Overhead.Percent)
	}
	if free.Overhead.Percent >= def.Overhead.Percent {
		t.Fatalf("zeroed costs did not lower overhead: %v >= %v",
			free.Overhead.Percent, def.Overhead.Percent)
	}
	if costly.Overhead.CtxSwitchTime <= def.Overhead.CtxSwitchTime {
		t.Fatalf("context-switch override ignored: %v <= %v",
			costly.Overhead.CtxSwitchTime, def.Overhead.CtxSwitchTime)
	}
}

package guest

import (
	"container/heap"

	"rtvirt/internal/task"
)

// readyQueue is a per-VCPU earliest-deadline-first priority queue of
// released, unfinished jobs. Ties break by release order so runs are
// deterministic.
type readyQueue struct {
	items []*readyItem
	index map[*task.Job]*readyItem
	seq   uint64
}

type readyItem struct {
	job *task.Job
	seq uint64
	idx int
}

func newReadyQueue() *readyQueue {
	return &readyQueue{index: map[*task.Job]*readyItem{}}
}

// Len reports the number of queued jobs.
func (q *readyQueue) Len() int { return len(q.items) }

// Push enqueues a job.
func (q *readyQueue) Push(j *task.Job) {
	if _, dup := q.index[j]; dup {
		panic("guest: job enqueued twice")
	}
	it := &readyItem{job: j, seq: q.seq}
	q.seq++
	q.index[j] = it
	heap.Push((*readyHeap)(q), it)
}

// Head returns the earliest-deadline job without removing it, or nil.
func (q *readyQueue) Head() *task.Job {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0].job
}

// Remove deletes a job from the queue; it reports whether it was present.
func (q *readyQueue) Remove(j *task.Job) bool {
	it, ok := q.index[j]
	if !ok {
		return false
	}
	heap.Remove((*readyHeap)(q), it.idx)
	delete(q.index, j)
	return true
}

// Jobs returns the queued jobs in heap order (head first, rest unordered).
func (q *readyQueue) Jobs() []*task.Job {
	out := make([]*task.Job, len(q.items))
	for i, it := range q.items {
		out[i] = it.job
	}
	return out
}

// readyHeap adapts readyQueue to container/heap.
type readyHeap readyQueue

func (h *readyHeap) Len() int { return len(h.items) }

func (h *readyHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.job.Deadline != b.job.Deadline {
		return a.job.Deadline < b.job.Deadline
	}
	return a.seq < b.seq
}

func (h *readyHeap) Swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].idx = i
	h.items[j].idx = j
}

func (h *readyHeap) Push(x any) {
	it := x.(*readyItem)
	it.idx = len(h.items)
	h.items = append(h.items, it)
}

func (h *readyHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.idx = -1
	h.items = old[:n-1]
	return it
}

package hv

import (
	"testing"
	"testing/quick"

	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

// chaosSched makes random-but-legal decisions: random runnable VCPU,
// random run duration, random kicks. It exists to hammer the kernel's
// accounting invariants, not to schedule well.
type chaosSched struct {
	h   *Host
	rng *sim.RNG
	all []*VCPU
}

func (s *chaosSched) Name() string                   { return "chaos" }
func (s *chaosSched) Attach(h *Host)                 { s.h = h }
func (s *chaosSched) Start(simtime.Time)             {}
func (s *chaosSched) AdmitVCPU(v *VCPU) error        { s.all = append(s.all, v); return nil }
func (s *chaosSched) RemoveVCPU(*VCPU, simtime.Time) {}
func (s *chaosSched) UpdateVCPU(v *VCPU, r Reservation, _ simtime.Time) error {
	v.Res = r
	return nil
}

func (s *chaosSched) VCPUWake(v *VCPU, now simtime.Time) {
	// Randomly kick a PCPU (or none).
	if s.rng.Intn(2) == 0 {
		p := s.h.PCPUs()[s.rng.Intn(s.h.NumPCPUs())]
		s.h.Kick(p, now)
	}
}

func (s *chaosSched) VCPUIdle(v *VCPU, now simtime.Time) {}

func (s *chaosSched) Schedule(p *PCPU, now simtime.Time) Decision {
	// Collect candidates available to this PCPU.
	var cands []*VCPU
	for _, v := range s.all {
		if v.Runnable() && (v.OnPCPU() == nil || v.OnPCPU() == p) {
			cands = append(cands, v)
		}
	}
	// Randomly idle even when work exists (starvation is legal).
	if len(cands) == 0 || s.rng.Intn(4) == 0 {
		return Decision{VCPU: nil, RunFor: simtime.Duration(1 + s.rng.Int63n(int64(simtime.Millis(3))))}
	}
	v := cands[s.rng.Intn(len(cands))]
	run := simtime.Duration(1 + s.rng.Int63n(int64(simtime.Millis(5))))
	return Decision{VCPU: v, RunFor: run, Work: len(cands)}
}

// chaosGuest randomly queues jobs and serves them in random order.
type chaosGuest struct {
	h      *Host
	rng    *sim.RNG
	queues map[*VCPU][]*task.Job
}

func (g *chaosGuest) PickJob(v *VCPU, now simtime.Time) *task.Job {
	q := g.queues[v]
	if len(q) == 0 {
		return nil
	}
	return q[g.rng.Intn(len(q))]
}

func (g *chaosGuest) JobCompleted(v *VCPU, j *task.Job, now simtime.Time) {
	q := g.queues[v]
	for i, x := range q {
		if x == j {
			g.queues[v] = append(q[:i], q[i+1:]...)
			return
		}
	}
	panic("chaosGuest: completed job not queued")
}

// TestQuickKernelConservation: under an adversarial random scheduler the
// kernel's accounting identities must hold exactly:
//
//	per PCPU:  busy + overhead + idle == elapsed
//	global:    Σ task work consumed == Σ PCPU busy == Σ VCPU TotalRun
//	jobs:      every completed job consumed exactly its demand
func TestQuickKernelConservation(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		s := sim.New(seed)
		pcpus := 1 + rng.Intn(3)
		var costs CostModel
		costs.ScheduleBase = ConstCost(simtime.Duration(rng.Int63n(3000)))
		costs.SetContextSwitch(ConstCost(simtime.Duration(rng.Int63n(5000))))
		costs.Migration = ConstCost(simtime.Duration(rng.Int63n(5000)))
		costs.GuestSwitch = ConstCost(simtime.Duration(rng.Int63n(2000)))
		sched := &chaosSched{rng: rng.Split()}
		h := NewHost(s, pcpus, sched, costs)
		g := &chaosGuest{h: h, rng: rng.Split(), queues: map[*VCPU][]*task.Job{}}
		vm := h.NewVM("chaos", g)
		nv := 1 + rng.Intn(5)
		var vcpus []*VCPU
		for i := 0; i < nv; i++ {
			v, err := vm.AddVCPU(true, Reservation{}, 1)
			if err != nil {
				return false
			}
			vcpus = append(vcpus, v)
		}
		h.Start()

		// Random job submissions over 2 seconds.
		tk := task.NewBackground(0, "chaos")
		var allJobs []*task.Job
		n := 20 + rng.Intn(80)
		for i := 0; i < n; i++ {
			at := simtime.Time(rng.Int63n(int64(simtime.Seconds(2))))
			v := vcpus[rng.Intn(len(vcpus))]
			demand := simtime.Duration(1 + rng.Int63n(int64(simtime.Millis(20))))
			s.At(at, func(now simtime.Time) {
				j := tk.Release(now, demand)
				allJobs = append(allJobs, j)
				g.queues[v] = append(g.queues[v], j)
				h.VCPUWake(v, now)
			})
		}
		dur := simtime.Seconds(3)
		s.RunUntil(simtime.Time(dur))
		h.Sync()

		// Identity 1: per-PCPU time budget.
		for _, p := range h.PCPUs() {
			total := p.BusyTime + p.OverheadTime + p.IdleTime
			if total > simtime.Duration(int64(dur)) {
				t.Logf("seed %d: pcpu%d accounts %v > elapsed %v", seed, p.ID, total, dur)
				return false
			}
			// advance() always runs to the last event; the gap to `dur` is
			// un-advanced tail (< one pending grant). Sync closed it.
			if total != simtime.Duration(int64(dur)) {
				t.Logf("seed %d: pcpu%d accounts %v != %v", seed, p.ID, total, dur)
				return false
			}
		}
		// Identity 2: work conservation.
		var busy, vrun simtime.Duration
		for _, p := range h.PCPUs() {
			busy += p.BusyTime
		}
		for _, v := range vcpus {
			vrun += v.TotalRun
		}
		if busy != vrun || busy != tk.Stats().TotalWork {
			t.Logf("seed %d: busy %v, vcpu run %v, task work %v", seed, busy, vrun, tk.Stats().TotalWork)
			return false
		}
		// Identity 3: completed jobs consumed exactly their demand.
		for _, j := range allJobs {
			if j.Done && !j.Abandoned && j.Remaining != 0 {
				t.Logf("seed %d: done job with %v remaining", seed, j.Remaining)
				return false
			}
			if !j.Done && j.Remaining > j.Demand {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

package quick

import (
	"encoding/json"
	"math/rand"
	"os"
	"reflect"
	"testing"

	"rtvirt/internal/check"
	"rtvirt/internal/core"
	"rtvirt/internal/scenario"
)

// TestGenerateAlwaysValid is the generator's own property: every drawn
// scenario passes structural validation and respects the utilization
// envelope that makes deadline misses meaningful.
func TestGenerateAlwaysValid(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		sc := Generate(rand.New(rand.NewSource(seed)))
		if err := sc.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid scenario: %v", seed, err)
		}
		util := 0.0
		for _, vm := range sc.VMs {
			for _, s := range vm.Servers {
				util += float64(s.BudgetUS) / float64(s.PeriodUS)
			}
			if len(vm.Servers) > 0 {
				continue
			}
			for _, ts := range vm.Tasks {
				if ts.Kind == "background" {
					continue
				}
				util += float64(ts.SliceUS) / float64(ts.PeriodUS)
			}
		}
		// The per-task floor of 100µs can nudge a slice slightly past its
		// drawn utilization; allow that much headroom over the cap.
		if limit := utilCap*float64(sc.PCPUs) + 0.05; util > limit {
			t.Fatalf("seed %d: generated utilization %.3f exceeds %.3f", seed, util, limit)
		}
	}
}

// TestQuickPropertyBounded is the deterministic PR-sized property run: a
// handful of generated worlds across all four stacks must produce zero
// invariant violations. Any failure prints its minimized reproducer JSON.
func TestQuickPropertyBounded(t *testing.T) {
	rep := Run(Config{Seed: 1, N: 6, Backends: AllBackends})
	reportFailures(t, rep)
	// All four stacks plus the sharded-PDES identity probe, per backend.
	want := rep.Cases*len(AllStacks)*len(AllBackends) + rep.Cases*len(AllBackends)
	if rep.Runs != want {
		t.Fatalf("expected %d runs, got %d", want, rep.Runs)
	}
}

// TestQuickSoak is the nightly harness: 100 worlds, every stack, full
// fork-identity probing.
func TestQuickSoak(t *testing.T) {
	if os.Getenv("RTVIRT_SOAK") == "" {
		t.Skip("long soak; set RTVIRT_SOAK=1 to run (the nightly workflow does)")
	}
	reportFailures(t, Run(Config{Seed: 1, N: 100}))
}

func reportFailures(t *testing.T, rep *Report) {
	t.Helper()
	for _, f := range rep.Failures {
		repro, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			t.Fatalf("marshal failure: %v", err)
		}
		t.Errorf("case %d under %s violated invariants; minimized repro:\n%s", f.Case, f.Stack, repro)
	}
}

// TestQuickDeterministic pins that the harness itself is reproducible:
// same config, same report.
func TestQuickDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, N: 2, Stacks: []core.Stack{core.RTVirt, core.Credit}}
	a, b := Run(cfg), Run(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical quickcheck runs disagreed:\n%+v\n%+v", a, b)
	}
}

// TestShrinkConvergesToMinimal drives the shrinking loop with a synthetic
// failure predicate ("fails whenever vm1 is present") and checks it strips
// everything else: the other VMs, all tasks, the extra PCPUs, the run
// length.
func TestShrinkConvergesToMinimal(t *testing.T) {
	sc := Generate(rand.New(rand.NewSource(7)))
	sc.Seconds = 8
	sc.PCPUs = 4
	for len(sc.VMs) < 3 {
		sc.VMs = append(sc.VMs, scenario.VM{Name: "filler", VCPUs: 1})
	}
	sc.VMs[1].Name = "vm1"

	hasVM1 := func(c scenario.Scenario) []check.Violation {
		for _, vm := range c.VMs {
			if vm.Name == "vm1" {
				return []check.Violation{{Oracle: "synthetic", Detail: "vm1 present"}}
			}
		}
		return nil
	}
	min, vs, steps := shrinkWith(sc, hasVM1, func() bool { return false })
	if len(vs) == 0 || steps == 0 {
		t.Fatalf("shrinker lost the failure (steps=%d, violations=%d)", steps, len(vs))
	}
	if len(min.VMs) != 1 || min.VMs[0].Name != "vm1" {
		t.Fatalf("expected exactly vm1 to survive, got %+v", min.VMs)
	}
	if len(min.VMs[0].Tasks) != 0 {
		t.Fatalf("expected all tasks stripped, got %d", len(min.VMs[0].Tasks))
	}
	if min.PCPUs != 1 {
		t.Fatalf("expected PCPUs shrunk to 1, got %d", min.PCPUs)
	}
	if min.Seconds != 1 {
		t.Fatalf("expected Seconds shrunk to 1, got %d", min.Seconds)
	}
	if err := min.Validate(); err != nil {
		t.Fatalf("shrunk scenario no longer valid: %v", err)
	}
}

// TestShrinkReportsUnreproducible pins the fallback: a failure that does
// not reproduce in isolation comes back unshrunk with zero steps.
func TestShrinkReportsUnreproducible(t *testing.T) {
	sc := Generate(rand.New(rand.NewSource(3)))
	passes := func(scenario.Scenario) []check.Violation { return nil }
	min, vs, steps := shrinkWith(sc, passes, func() bool { return false })
	if steps != 0 || len(vs) != 0 {
		t.Fatalf("expected unshrunk pass-through, got steps=%d violations=%d", steps, len(vs))
	}
	if !reflect.DeepEqual(min, sc) {
		t.Fatal("unreproducible failure should return the original scenario")
	}
}

// TestRunOneForkProbeMatchesPlainRun guards the harness plumbing: the
// half-time fork probe must not change what the oracles see in the
// original world (the fork runs on its own bus).
func TestRunOneForkProbeMatchesPlainRun(t *testing.T) {
	sc := Generate(rand.New(rand.NewSource(11)))
	sc.Seconds = 2
	sc.Seed = 11
	for _, stack := range AllStacks {
		withFork, err1 := runOne(sc, stack, true)
		plain, err2 := runOne(sc, stack, false)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%v: fork probe changed buildability: %v vs %v", stack, err1, err2)
		}
		if !reflect.DeepEqual(withFork, plain) {
			t.Fatalf("%v: fork probe changed violations: %v vs %v", stack, withFork, plain)
		}
	}
}

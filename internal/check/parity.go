package check

import (
	"rtvirt/internal/hv"
	"rtvirt/internal/simtime"
	"rtvirt/internal/trace"
)

// ParityOracle asserts event/counter accounting parity: every hypercall
// the host charges (Overhead.Hypercalls) must emit exactly one
// HypercallIncBW/DecBW/IncDecBW event, and every migration charge
// (Overhead.Migrations) exactly one Migrate event. The counters and the
// emissions live at the same sites by construction; this oracle keeps
// them from drifting apart as the code grows. Counter baselines are taken
// at attach time, so a suite armed mid-run audits only its own window.
type ParityOracle struct {
	recorder
	host    *hv.Host
	baseHc  uint64
	baseMig uint64
	hc      uint64
	mig     uint64
}

// NewParityOracle creates the accounting-parity oracle.
func NewParityOracle(h *hv.Host) *ParityOracle {
	return &ParityOracle{
		recorder: recorder{name: "parity"},
		host:     h,
		baseHc:   h.Overhead.Hypercalls,
		baseMig:  h.Overhead.Migrations,
	}
}

// Consume implements trace.Sink.
func (o *ParityOracle) Consume(ev trace.Event) {
	switch ev.Kind {
	case trace.HypercallIncBW, trace.HypercallDecBW, trace.HypercallIncDecBW:
		o.hc++
	case trace.Migrate:
		o.mig++
	}
}

// Finish implements Oracle.
func (o *ParityOracle) Finish(now simtime.Time) {
	if got := o.host.Overhead.Hypercalls - o.baseHc; got != o.hc {
		o.flag(now, "hypercall parity broken: %d charged, %d events emitted", got, o.hc)
	}
	if got := o.host.Overhead.Migrations - o.baseMig; got != o.mig {
		o.flag(now, "migration parity broken: %d charged, %d events emitted", got, o.mig)
	}
}

// Command memcached reproduces the headline of §4.4: a latency-critical
// memcached VM sharing two CPUs with nineteen CPU-bound neighbour VMs.
// Under Xen's Credit scheduler the tail latency blows through the 500µs
// SLO; under RTVirt a reservation of just 58µs per 500µs — 11.6% of one
// CPU — holds the 99.9th percentile under the SLO.
package main

import (
	"fmt"
	"log"

	"rtvirt"
)

func run(stack rtvirt.Stack, label string) {
	cfg := rtvirt.DefaultConfig(stack)
	cfg.PCPUs = 2
	sys := rtvirt.NewSystem(cfg)

	// The memcached VM: a sporadic RTA with period = SLO = 500µs and a
	// 58µs slice (its measured 99.9th-percentile service time).
	var mcVM *rtvirt.Guest
	var err error
	if stack == rtvirt.StackRTVirt {
		zero := rtvirt.Duration(0)
		mcVM, err = sys.NewGuestOpts("memcached", rtvirt.GuestOpts{VCPUs: 1, Slack: &zero})
	} else {
		mcVM, err = sys.NewWeightedGuest("memcached", 1, 727) // ≈26% share
	}
	if err != nil {
		log.Fatal(err)
	}
	mc, err := rtvirt.NewMemcached(mcVM, 0, rtvirt.DefaultMemcachedConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Nineteen CPU-bound neighbours.
	var hogs []*rtvirt.CPUHog
	for i := 0; i < 19; i++ {
		g, err := sys.NewWeightedGuest(fmt.Sprintf("batch%02d", i), 1, 256)
		if err != nil {
			log.Fatal(err)
		}
		h, err := rtvirt.NewCPUHog(g, 100+i, "hog")
		if err != nil {
			log.Fatal(err)
		}
		hogs = append(hogs, h)
	}

	sys.Start()
	mc.Start(0)
	for _, h := range hogs {
		h.Start(0)
	}
	sys.Run(120 * rtvirt.Second)

	slo := rtvirt.Duration(500 * rtvirt.Microsecond)
	verdict := "MISSED"
	if mc.Latency.Percentile(99.9) <= slo {
		verdict = "met"
	}
	fmt.Printf("%-8s  requests=%5d  mean=%-8v p99=%-8v p99.9=%-8v  SLO %v: %s\n",
		label, mc.Latency.Count(), mc.Latency.Mean(),
		mc.Latency.Percentile(99), mc.Latency.Percentile(99.9), slo, verdict)
}

func main() {
	fmt.Println("memcached VM + 19 CPU-bound VMs on 2 PCPUs (SLO: 99.9th ≤ 500µs)")
	fmt.Println()
	run(rtvirt.StackCredit, "Credit")
	run(rtvirt.StackRTVirt, "RTVirt")
	fmt.Println()
	fmt.Println("RTVirt meets the SLO with an 11.6 percent-of-one-CPU reservation; the")
	fmt.Println("leftover bandwidth still flows to the batch VMs (work-conserving).")
}

package sim

import (
	"strings"
	"testing"

	"rtvirt/internal/eventq"
)

// TestEnvBackend covers the RTVIRT_EVENTQ selector: known names resolve,
// unknown names panic loudly instead of silently running on the heap.
func TestEnvBackend(t *testing.T) {
	for name, want := range map[string]eventq.Backend{
		"":      eventq.BackendHeap,
		"heap":  eventq.BackendHeap,
		"wheel": eventq.BackendWheel,
	} {
		t.Setenv("RTVIRT_EVENTQ", name)
		if got := EnvBackend(); got != want {
			t.Errorf("RTVIRT_EVENTQ=%q: got %v, want %v", name, got, want)
		}
	}
}

func TestEnvBackendUnknownPanics(t *testing.T) {
	t.Setenv("RTVIRT_EVENTQ", "whel")
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("EnvBackend accepted an unknown backend name")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, `"whel"`) {
			t.Fatalf("panic should name the bad value, got: %v", r)
		}
	}()
	EnvBackend()
}

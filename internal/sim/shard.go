package sim

import (
	"fmt"
	"maps"
	"slices"
	"sort"

	"rtvirt/internal/clone"
	"rtvirt/internal/eventq"
	"rtvirt/internal/runner"
	"rtvirt/internal/simtime"
)

// This file implements sharded (conservative-PDES) execution: a ShardSet
// holds one Simulator per shard (logical process — in the cluster model,
// one per host), and advances them concurrently in lookahead windows.
//
// The synchronization protocol is classic conservative null-message-free
// windowing, generalized to a per-edge lookahead matrix (distance-matrix
// synchronization). Every directed shard pair (j→i) has a lookahead
// L(j→i): a message emitted by j at local time t arrives no earlier than
// t + L(j→i), and PostRemote enforces exactly that edge's bound. Let
// D(j,i) be the min-plus shortest-walk distance from j to i over the edge
// lookaheads — with the diagonal D(i,i) the shortest cycle through i, NOT
// zero, since a walk must use at least one edge. Each barrier round,
// shard i may fire its events strictly below its window bound
//
//	B_i = min over all shards j of  t_j + D(j,i)
//
// where t_j is shard j's earliest pending event time at the barrier.
// Walk distances (not single edges) are what make this safe: an idle
// upstream j can be woken by a message from some k and then relay into i
// earlier than its own t_j suggests — the chain k→j→i is a walk, and its
// arrival is ≥ t_k + D(k,i). The diagonal matters for the same reason:
// i's own output can boomerang back along a cycle, so i may only run
// t_i + D(i,i) ahead of itself. Safety follows by induction on rounds:
// any message ultimately originates from an event that was in some
// shard's queue at the barrier, every hop adds at least its edge's
// lookahead, and B is monotone across barriers (mail lowers t_j only to
// ≥ t_k + D(k,j), and D obeys the triangle inequality, so no min term
// ever drops below a previously-published bound). Progress: the
// globally-earliest shard m always has t_m < B_m (every term is
// ≥ t_m + D > t_m), so every round fires at least one event. Shards that
// nothing reaches — no inbound walk at all — have B = ∞ and run straight
// to the horizon; shards whose upstreams sit far in the future run
// correspondingly far ahead instead of stalling at a global minimum.
//
// Two topology modes share the loop. By default the graph is complete
// with the uniform global lookahead L — then D(j,i) = L off-diagonal and
// D(i,i) = 2L, so B_i reduces to T + L for every shard except the
// earliest, whose bound is min(second + L, T + 2L) (T = global min,
// second = min over the rest): the PR-7 protocol, plus a frontier shard
// that runs up to a window ahead. Declaring any edge via SetEdgeLookahead
// switches the set to explicit topology: only declared edges may carry
// messages (PostRemote panics otherwise), undeclared pairs impose no
// window constraint, and the coordinator prunes its per-round work to
// candidate shards — the previous round's active set, shards that just
// received mail, and the shards reachable from the actives — since no
// other shard's bound or next-time can have changed.
//
// Coordinator costs are kept off the O(shards)-per-window path: shard
// next-times live in a 4-ary min-heap (shardHeap), so termination and
// window selection are O(active·log n); the barrier drain merges
// per-outbox sorted runs through a k-way heap instead of re-sorting a
// global batch; and multi-group execution reuses persistent workers
// through a sense-reversing barrier (runner.BarrierPool) instead of
// paying a pool handoff per window.
//
// Determinism does not depend on how shards are grouped onto executors:
// each shard's intra-window execution is single-threaded on its own
// queue, window bounds are computed by the coordinator as a pure function
// of the global event population, and the barrier drain orders messages
// by (arrival time, source shard, target shard, emission counter) before
// assigning fresh seqs in the target queue. Runs with 1, 2, 4, or 8
// executor groups are therefore bit-identical — the golden the sharded
// cluster tests pin.

// Shard is one logical process of a sharded simulation: its own Simulator
// (clock, queue, RNG, handlers) plus an outbox of cross-shard messages
// awaiting the next barrier.
type Shard struct {
	id  int
	set *ShardSet
	sim *Simulator

	outbox []remoteMsg
	// outboxSorted means the outbox is in msgLess order; executors sort
	// their shards' outboxes in parallel at the end of each window so the
	// coordinator's drain only merges.
	outboxSorted bool
	// edgeSeq[to] counts messages emitted on the (this shard → to) edge —
	// a per-edge lamport-style counter that makes the barrier drain order
	// (and hence the fresh seqs assigned in the target queue) independent
	// of executor grouping.
	edgeSeq []uint64
}

// remoteMsg is one buffered cross-shard message.
type remoteMsg struct {
	at   simtime.Time
	from int32
	to   int32
	n    uint64 // per-(from,to)-edge emission counter
	p    Payload
}

// msgLess is the global delivery order: the key is unique per message and
// depends only on simulation state, never on executor grouping.
func msgLess(a, b *remoteMsg) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.from != b.from {
		return a.from < b.from
	}
	if a.to != b.to {
		return a.to < b.to
	}
	return a.n < b.n
}

// edgeRef is one term of a shard's window-bound min in the sealed
// reachability lists: a source shard and the min-plus walk distance from
// it (for the diagonal term, the shortest cycle back to the shard).
type edgeRef struct {
	src int32
	l   simtime.Duration
}

// satAddDur adds two walk distances, saturating at Infinite.
func satAddDur(a, b simtime.Duration) simtime.Duration {
	if a == simtime.Infinite || b == simtime.Infinite {
		return simtime.Infinite
	}
	if s := a + b; s >= a {
		return s
	}
	return simtime.Infinite
}

// ShardSet owns the shards of one sharded simulation and coordinates
// their windowed execution.
type ShardSet struct {
	lookahead simtime.Duration
	shards    []*Shard

	// explicit flips the set from the default complete-graph/uniform-
	// lookahead topology to declared edges only.
	explicit bool
	// edges maps edgeKey(from, to) to that edge's lookahead.
	edges map[uint64]simtime.Duration

	windows uint64
	inRun   bool

	// Per-run coordinator state, rebuilt by RunUntil and reused across
	// windows. All of it is written by the coordinator between barriers;
	// executors only read active/bounds/curEnd/curGroups during a round.
	heap      shardHeap
	keys      []simtime.Time // heap key storage, indexed by shard ID
	bounds    []simtime.Time // per-shard window bound, indexed by shard ID
	inbound   [][]edgeRef    // sealed adjacency (explicit mode)
	outbound  [][]int32
	allIDs    []int32
	active    []int32 // this round's active shards, ID order
	actPrev   []int32 // previous round's active shards
	cand      []int32 // candidate scratch (explicit mode)
	candEpoch []uint64
	epoch     uint64
	mailed    []int32 // shards that received mail in the last drain
	mailEpoch []uint64
	mailRound uint64
	runs      []int32 // drain scratch: shards with pending outboxes
	runPos    []int32 // drain scratch: per-run read cursor
	mergeIdx  []int32 // drain scratch: k-way merge heap of run slots
	curEnd    simtime.Time
	curGroups int
}

// edgeKey packs a directed shard pair into the edges map key.
func edgeKey(from, to int) uint64 {
	return uint64(uint32(from))<<32 | uint64(uint32(to))
}

// NewShardSet creates an empty shard set with the given global lookahead
// — the default lookahead of every edge until SetEdgeLookahead declares
// an explicit topology. It must be positive (a zero lookahead admits no
// concurrency: every window would be empty).
func NewShardSet(lookahead simtime.Duration) *ShardSet {
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: shard set needs a positive lookahead, got %v", lookahead))
	}
	return &ShardSet{lookahead: lookahead}
}

// Lookahead reports the global (default-edge) lookahead.
func (ss *ShardSet) Lookahead() simtime.Duration { return ss.lookahead }

// UseDeclaredTopology switches the set to explicit topology without
// declaring an edge yet: from then on only edges declared through
// SetEdgeLookahead exist — PostRemote on any other pair panics, and
// undeclared pairs impose no window constraint on each other.
func (ss *ShardSet) UseDeclaredTopology() {
	if ss.inRun {
		panic("sim: UseDeclaredTopology during RunUntil")
	}
	ss.explicit = true
}

// SetEdgeLookahead declares the directed edge from→to with lookahead d:
// every PostRemote on that edge must arrive at least d after the sender's
// clock. The first declaration switches the set to explicit topology (see
// UseDeclaredTopology). Redeclaring an edge overwrites its lookahead.
func (ss *ShardSet) SetEdgeLookahead(from, to int, d simtime.Duration) {
	if ss.inRun {
		panic("sim: SetEdgeLookahead during RunUntil")
	}
	if d <= 0 {
		panic(fmt.Sprintf("sim: edge lookahead must be positive, got %v for edge %d->%d", d, from, to))
	}
	if from < 0 || from >= len(ss.shards) {
		panic(fmt.Sprintf("sim: SetEdgeLookahead from unknown shard %d (have %d shards)", from, len(ss.shards)))
	}
	if to < 0 || to >= len(ss.shards) {
		panic(fmt.Sprintf("sim: SetEdgeLookahead to unknown shard %d (have %d shards)", to, len(ss.shards)))
	}
	if from == to {
		panic(fmt.Sprintf("sim: SetEdgeLookahead self-edge %d->%d (local work uses PostAt and needs no lookahead)", from, to))
	}
	ss.explicit = true
	if ss.edges == nil {
		ss.edges = make(map[uint64]simtime.Duration)
	}
	ss.edges[edgeKey(from, to)] = d
}

// EdgeLookahead reports the lookahead PostRemote enforces on from→to: the
// declared value in explicit topology (0 if the edge does not exist), the
// global lookahead otherwise.
func (ss *ShardSet) EdgeLookahead(from, to int) simtime.Duration {
	if ss.explicit {
		return ss.edges[edgeKey(from, to)]
	}
	return ss.lookahead
}

// NewShard adds a shard running on a fresh Simulator seeded with seed
// (backend: DefaultBackend). Shards must all be added before the first
// Run; their creation order defines their IDs.
func (ss *ShardSet) NewShard(seed uint64) *Shard {
	return ss.NewShardWithBackend(seed, DefaultBackend)
}

// NewShardWithBackend is NewShard with an explicitly pinned event-queue
// backend.
func (ss *ShardSet) NewShardWithBackend(seed uint64, b eventq.Backend) *Shard {
	if ss.inRun {
		panic("sim: NewShard during RunUntil")
	}
	sh := &Shard{id: len(ss.shards), set: ss, sim: NewWithBackend(seed, b)}
	ss.shards = append(ss.shards, sh)
	for _, s := range ss.shards {
		for len(s.edgeSeq) < len(ss.shards) {
			s.edgeSeq = append(s.edgeSeq, 0)
		}
	}
	return sh
}

// Shards returns the shards in ID order.
func (ss *ShardSet) Shards() []*Shard { return ss.shards }

// Windows reports how many conservative windows have executed.
func (ss *ShardSet) Windows() uint64 { return ss.windows }

// EventsFired sums the event counters across shards.
func (ss *ShardSet) EventsFired() uint64 {
	var n uint64
	for _, sh := range ss.shards {
		n += sh.sim.EventsFired()
	}
	return n
}

// Now reports the earliest shard clock — the global simulation time.
func (ss *ShardSet) Now() simtime.Time {
	if len(ss.shards) == 0 {
		return 0
	}
	min := ss.shards[0].sim.Now()
	for _, sh := range ss.shards[1:] {
		if t := sh.sim.Now(); t < min {
			min = t
		}
	}
	return min
}

// ID reports the shard's position in its set.
func (sh *Shard) ID() int { return sh.id }

// Sim exposes the shard's simulator. Handlers running on it may touch
// only state owned by this shard; anything cross-shard goes through
// PostRemote.
func (sh *Shard) Sim() *Simulator { return sh.sim }

// PostRemote buffers a typed event for delivery into another shard's
// queue at the absolute instant at. The arrival must respect the edge's
// lookahead (at ≥ now + L(this→to)): that bound is exactly what lets the
// target shard run its window without waiting for this one. In explicit
// topology the edge must have been declared — undeclared pairs are
// non-edges the window bounds ignore, so a message on one could rewind
// the target. Messages are held in the sender's outbox and merged into
// the target queue at the next barrier, in an order independent of
// executor grouping. Posting to the shard itself panics — local work uses
// PostAt and needs no lookahead.
func (sh *Shard) PostRemote(to *Shard, at simtime.Time, p Payload) {
	if to == nil || to.set != sh.set {
		panic("sim: PostRemote to a shard of a different set")
	}
	if to == sh {
		panic("sim: PostRemote to own shard (use PostAt)")
	}
	l := sh.set.lookahead
	if sh.set.explicit {
		var ok bool
		l, ok = sh.set.edges[edgeKey(sh.id, to.id)]
		if !ok {
			panic(fmt.Sprintf("sim: PostRemote on undeclared edge %d->%d (declare its lookahead with SetEdgeLookahead)",
				sh.id, to.id))
		}
	}
	if min := sh.sim.Now().Add(l); at < min {
		panic(fmt.Sprintf("sim: PostRemote at %v violates lookahead %v on edge %d->%d (now %v, earliest legal %v)",
			at, l, sh.id, to.id, sh.sim.Now(), min))
	}
	sh.edgeSeq[to.id]++
	sh.outbox = append(sh.outbox, remoteMsg{
		at:   at,
		from: int32(sh.id),
		to:   int32(to.id),
		n:    sh.edgeSeq[to.id],
		p:    p,
	})
	sh.outboxSorted = false
}

// sortOutbox puts the outbox in msgLess order. Within one outbox the key
// reduces to (at, to, n), still unique, so the result is deterministic.
// Idempotent: executors call it at the end of their window share, the
// drain calls it again only if the outbox was filled outside a window.
func (sh *Shard) sortOutbox() {
	if sh.outboxSorted {
		return
	}
	sh.outboxSorted = true
	if len(sh.outbox) > 1 {
		sort.Slice(sh.outbox, func(i, j int) bool { return msgLess(&sh.outbox[i], &sh.outbox[j]) })
	}
}

// clearOutbox empties the outbox after delivery. The entries are zeroed
// first so delivered payloads don't linger reachable in the backing array
// between windows of a long run.
func (sh *Shard) clearOutbox() {
	clear(sh.outbox)
	sh.outbox = sh.outbox[:0]
	sh.outboxSorted = true
}

// deliver posts one drained message into its target queue and records the
// target as mailed (its next-time may have moved up).
func (ss *ShardSet) deliver(m *remoteMsg) {
	to := m.to
	ss.shards[to].sim.PostAt(m.at, m.p)
	if ss.mailEpoch[to] != ss.mailRound {
		ss.mailEpoch[to] = ss.mailRound
		ss.mailed = append(ss.mailed, to)
	}
}

// drainFrom merges the pending outboxes of the given shards into the
// target queues, in global msgLess order: each outbox is already a sorted
// run, so a k-way merge over run heads replaces the old whole-batch sort.
// The delivery order — and with it the fresh seqs SchedulePayload assigns
// in each target queue — is a pure function of the messages themselves,
// identical however the previous window's shards were grouped.
func (ss *ShardSet) drainFrom(senders []int32) {
	ss.mailed = ss.mailed[:0]
	ss.mailRound++
	runs := ss.runs[:0]
	for _, id := range senders {
		sh := ss.shards[id]
		if len(sh.outbox) == 0 {
			continue
		}
		sh.sortOutbox()
		runs = append(runs, id)
	}
	ss.runs = runs
	switch len(runs) {
	case 0:
		return
	case 1:
		sh := ss.shards[runs[0]]
		for i := range sh.outbox {
			ss.deliver(&sh.outbox[i])
		}
		sh.clearOutbox()
		return
	}

	// K-way merge: a small binary heap of run slots ordered by each run's
	// head message. Keys are globally unique, so the pop order is total.
	if cap(ss.runPos) < len(runs) {
		ss.runPos = make([]int32, len(runs))
		ss.mergeIdx = make([]int32, 0, len(runs))
	}
	pos := ss.runPos[:len(runs)]
	for i := range pos {
		pos[i] = 0
	}
	head := func(slot int32) *remoteMsg {
		return &ss.shards[runs[slot]].outbox[pos[slot]]
	}
	h := ss.mergeIdx[:0]
	less := func(a, b int32) bool { return msgLess(head(a), head(b)) }
	siftDown := func(i int) {
		for {
			best := i
			if c := 2*i + 1; c < len(h) && less(h[c], h[best]) {
				best = c
			}
			if c := 2*i + 2; c < len(h) && less(h[c], h[best]) {
				best = c
			}
			if best == i {
				return
			}
			h[i], h[best] = h[best], h[i]
			i = best
		}
	}
	for slot := range runs {
		h = append(h, int32(slot))
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	for len(h) > 0 {
		slot := h[0]
		ss.deliver(head(slot))
		pos[slot]++
		if int(pos[slot]) == len(ss.shards[runs[slot]].outbox) {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		siftDown(0)
	}
	ss.mergeIdx = h[:0]
	for _, id := range runs {
		ss.shards[id].clearOutbox()
	}
}

// runWindow fires the simulator's events with time < w (and ≤ end),
// without advancing the clock past the last fired event.
func (s *Simulator) runWindow(w, end simtime.Time) {
	for {
		next := s.q.PeekTime()
		if next >= w || next > end {
			// simtime.Never compares greater than any real instant, so an
			// empty queue lands here too.
			break
		}
		s.fireAt(next)
	}
}

// execWindow runs executor group g's share of the current window: every
// curGroups-th shard of the active list, each up to its own bound, then
// sorts its outbox so the coordinator's drain only merges. Active shards
// are disjoint across groups, so the only shared state is read-only.
func (ss *ShardSet) execWindow(g int) {
	for k := g; k < len(ss.active); k += ss.curGroups {
		id := ss.active[k]
		sh := ss.shards[id]
		sh.sim.runWindow(ss.bounds[id], ss.curEnd)
		sh.sortOutbox()
	}
}

// sealTopology turns the declared edges into the min-plus shortest-walk
// distance matrix (Floyd–Warshall; the diagonal starts at ∞, so D(i,i)
// converges to the shortest cycle through i, never zero) and flattens it
// into per-shard reachability lists: inbound[i] holds every (j, D(j,i))
// with a finite distance — the terms of i's window-bound min — and
// outbound[j] every i reachable from j — the shards whose bounds can grow
// when j fires. Built in index order, so deterministic. O(n³) once per
// run; at the simulator's host counts (tens to hundreds of shards) this
// is noise next to a single window.
func (ss *ShardSet) sealTopology() {
	n := len(ss.shards)
	d := make([]simtime.Duration, n*n)
	for i := range d {
		d[i] = simtime.Infinite
	}
	for k, l := range ss.edges {
		from, to := int(k>>32), int(uint32(k))
		if l < d[from*n+to] {
			d[from*n+to] = l
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := d[i*n+k]
			if dik == simtime.Infinite {
				continue
			}
			for j := 0; j < n; j++ {
				if via := satAddDur(dik, d[k*n+j]); via < d[i*n+j] {
					d[i*n+j] = via
				}
			}
		}
	}
	ss.inbound = make([][]edgeRef, n)
	ss.outbound = make([][]int32, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if dist := d[j*n+i]; dist != simtime.Infinite {
				ss.inbound[i] = append(ss.inbound[i], edgeRef{src: int32(j), l: dist})
				ss.outbound[j] = append(ss.outbound[j], int32(i))
			}
		}
	}
}

// selectUniform picks the active shards and bounds for one window under
// the default complete-graph topology, where D(j,i) = L off-diagonal and
// D(i,i) = 2L (out and back). With T the global minimum and second the
// minimum over the other shards, every shard's bound min is T + L —
// except the earliest shard itself, which runs to min(second + L, T + 2L):
// its nearest other upstream is at second, but its own output can
// boomerang back by T + 2L, so the frontier runs up to a full window
// ahead without waiting on idle peers.
func (ss *ShardSet) selectUniform(end simtime.Time) {
	rootID, minT := ss.heap.min()
	w := minT.Add(ss.lookahead)
	ss.active = ss.heap.collectBelow(w, end, ss.active[:0])
	slices.Sort(ss.active)
	for _, id := range ss.active {
		ss.bounds[id] = w
	}
	rb := minT.Add(ss.lookahead).Add(ss.lookahead)
	if s := ss.heap.secondKey().Add(ss.lookahead); s < rb {
		rb = s
	}
	ss.bounds[rootID] = rb
}

// selectExplicit picks the active shards and bounds for one window under
// declared topology. Only candidate shards are examined: the previous
// round's actives (their next-times advanced), shards that just received
// mail (their next-times may have moved up), and shards reachable from
// the actives (a bound term t_j + D(j,i) can only grow when j fires).
// Any other shard kept both its next-time and its bound, so if it was
// inactive it still is — after the first round the coordinator rescans
// the full set only when the topology's reachability forces it.
func (ss *ShardSet) selectExplicit(first bool, end simtime.Time) {
	ss.epoch++
	cand := ss.cand[:0]
	add := func(id int32) {
		if ss.candEpoch[id] != ss.epoch {
			ss.candEpoch[id] = ss.epoch
			cand = append(cand, id)
		}
	}
	if first {
		for _, id := range ss.allIDs {
			add(id)
		}
	} else {
		for _, id := range ss.actPrev {
			add(id)
			for _, nb := range ss.outbound[id] {
				add(nb)
			}
		}
		for _, id := range ss.mailed {
			add(id)
		}
	}
	ss.cand = cand
	slices.Sort(cand)

	ss.active = ss.active[:0]
	for _, id := range cand {
		t := ss.heap.keyOf(id)
		if t > end {
			continue
		}
		b := simtime.Never
		for _, e := range ss.inbound[id] {
			if x := ss.heap.keyOf(e.src).Add(e.l); x < b {
				b = x
			}
		}
		if t >= b {
			continue
		}
		ss.bounds[id] = b
		ss.active = append(ss.active, id)
	}
}

// RunUntil advances every shard to end under conservative windowed
// synchronization, using up to groups concurrent executors (1 = fully
// sequential, same results). Shards are assigned to executors round-robin
// over the active list; the assignment is pure bookkeeping — outputs are
// bit-identical for every group count.
func (ss *ShardSet) RunUntil(end simtime.Time, groups int) {
	if len(ss.shards) == 0 {
		return
	}
	if ss.inRun {
		panic("sim: ShardSet.RunUntil re-entered")
	}
	ss.inRun = true
	defer func() { ss.inRun = false }()

	if groups < 1 {
		groups = 1
	}
	if groups > len(ss.shards) {
		groups = len(ss.shards)
	}
	n := len(ss.shards)
	ss.curEnd = end
	ss.curGroups = groups
	if cap(ss.keys) < n {
		ss.keys = make([]simtime.Time, n)
		ss.bounds = make([]simtime.Time, n)
		ss.allIDs = make([]int32, n)
		ss.candEpoch = make([]uint64, n)
		ss.mailEpoch = make([]uint64, n)
	}
	ss.keys = ss.keys[:n]
	ss.bounds = ss.bounds[:n]
	ss.allIDs = ss.allIDs[:n]
	ss.candEpoch = ss.candEpoch[:n]
	ss.mailEpoch = ss.mailEpoch[:n]
	for i := range ss.allIDs {
		ss.allIDs[i] = int32(i)
	}
	if ss.explicit {
		ss.sealTopology()
	}

	var bp *runner.BarrierPool
	if groups > 1 {
		bp = runner.NewBarrierPool(groups-1, func(w int) { ss.execWindow(w + 1) })
		defer bp.Close()
	}

	// Deliver anything buffered before the run, then index the next-times.
	ss.drainFrom(ss.allIDs)
	for i, sh := range ss.shards {
		ss.keys[i] = sh.sim.q.PeekTime()
	}
	ss.heap.init(ss.keys)

	first := true
	for {
		if _, minT := ss.heap.min(); minT > end {
			break
		}
		if ss.explicit {
			ss.selectExplicit(first, end)
		} else {
			ss.selectUniform(end)
		}
		first = false
		if len(ss.active) == 0 {
			// Unreachable if the candidate bookkeeping is right: the
			// globally-earliest shard always sits below its bound.
			panic("sim: shard window stalled with pending events")
		}
		ss.windows++

		switch {
		case len(ss.active) == 1:
			id := ss.active[0]
			ss.shards[id].sim.runWindow(ss.bounds[id], end)
		case groups == 1:
			ss.execWindow(0)
		default:
			bp.Round(func() { ss.execWindow(0) })
		}

		for _, id := range ss.active {
			ss.heap.update(id, ss.shards[id].sim.q.PeekTime())
		}
		// This round's actives are the only shards with pending outboxes
		// (and next round's actPrev).
		ss.active, ss.actPrev = ss.actPrev, ss.active
		ss.drainFrom(ss.actPrev)
		for _, id := range ss.mailed {
			ss.heap.update(id, ss.shards[id].sim.q.PeekTime())
		}
	}

	// All queues are past end (or empty): settle every clock at end, like
	// Simulator.RunUntil does.
	for _, sh := range ss.shards {
		sh.sim.RunUntil(end)
	}
}

// RunFor advances the set by d from its current global time.
func (ss *ShardSet) RunFor(d simtime.Duration, groups int) {
	ss.RunUntil(ss.Now().Add(d), groups)
}

// Fork deep-copies the whole shard set — every shard's simulator, the
// in-flight mailbox messages, and the declared edge-lookahead matrix —
// through one shared clone context, so cross-shard references held by
// handlers (e.g. a cluster agent holding peers' shard pointers) land on
// the forked twins. Shard clones are memoized before any simulator forks,
// mirroring the Put-before-fill rule. Coordinator scratch (heap, bounds,
// candidate sets) is per-run state and is rebuilt by the next RunUntil.
func (ss *ShardSet) Fork(ctx *clone.Ctx) (*ShardSet, error) {
	if ss.inRun {
		panic("sim: Fork during RunUntil")
	}
	nss := &ShardSet{
		lookahead: ss.lookahead,
		explicit:  ss.explicit,
		edges:     maps.Clone(ss.edges),
		windows:   ss.windows,
	}
	ctx.Put(ss, nss)
	nss.shards = make([]*Shard, len(ss.shards))
	for i, sh := range ss.shards {
		nsh := &Shard{
			id:           sh.id,
			set:          nss,
			outboxSorted: sh.outboxSorted,
			edgeSeq:      append([]uint64(nil), sh.edgeSeq...),
		}
		if len(sh.outbox) > 0 {
			nsh.outbox = append([]remoteMsg(nil), sh.outbox...)
		}
		ctx.Put(sh, nsh)
		nss.shards[i] = nsh
	}
	for i, sh := range ss.shards {
		nsim, err := sh.sim.Fork(ctx)
		if err != nil {
			return nil, fmt.Errorf("sim: forking shard %d: %w", i, err)
		}
		nss.shards[i].sim = nsim
	}
	return nss, nil
}

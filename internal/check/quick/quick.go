// Package quick is the randomized property harness over the invariant
// oracles: it draws seeded random scenarios (Generate), runs each one
// under all four scheduler stacks with the full check.Suite armed plus a
// mid-run fork bit-identity probe, and shrinks any violating world to a
// minimal reproducer (Shrink) that rtvirt-sim can replay directly.
//
// Three front ends drive it: bounded deterministic property tests in this
// package (go test), native fuzz targets over the scenario codec, and
// `rtvirt-bench -experiment quickcheck -n N -seed S` for nightly soaks.
package quick

import (
	"fmt"
	"math/rand"
	"os"

	"rtvirt/internal/check"
	"rtvirt/internal/core"
	"rtvirt/internal/eventq"
	"rtvirt/internal/experiments"
	"rtvirt/internal/scenario"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
)

// Config tunes a quickcheck run. The zero value of every optional field
// selects the default; only Seed and N are usually set.
type Config struct {
	// Seed fixes the whole run: case k draws its scenario and its
	// simulation streams from splitmix64(Seed, k).
	Seed uint64
	// N is the number of generated scenarios (default 25). Each runs once
	// per stack.
	N int
	// Seconds is the simulated length per run (default 2).
	Seconds int64
	// Stacks overrides the stacks exercised (default: all four).
	Stacks []core.Stack
	// Backends overrides the event-queue backends each scenario runs
	// under (default: both the 4-ary heap and the timing wheel, so every
	// generated world doubles as a queue-equivalence probe — unless the
	// RTVIRT_EVENTQ environment variable pins one backend globally).
	Backends []eventq.Backend
	// SkipFork disables the mid-run fork bit-identity probe.
	SkipFork bool
	// Shards is the executor-group axis of the sharded-PDES identity
	// oracle: each scenario is replicated onto a small sharded cluster and
	// run once per group count, and every digest must match the first
	// entry's (default DefaultShards = 1, 2, 4). A single entry disables
	// the comparison; so does SkipPDES.
	Shards   []int
	SkipPDES bool
	// MaxShrinkRuns caps the simulations the shrinker may spend per
	// failure (default 200).
	MaxShrinkRuns int
}

// Failure is one violating run, shrunk to a minimal reproducer. Scenario
// is complete (stack and seed included), so marshaling it yields a JSON
// file rtvirt-sim runs as-is.
type Failure struct {
	Case       int               `json:"case"`
	Stack      string            `json:"stack"`
	Backend    string            `json:"backend,omitempty"`
	Seed       uint64            `json:"seed"`
	Violations []check.Violation `json:"violations"`
	Scenario   scenario.Scenario `json:"scenario"`
	// ShrinkSteps counts accepted reductions; ShrinkRuns the simulations
	// the shrinker spent.
	ShrinkSteps int `json:"shrink_steps"`
	ShrinkRuns  int `json:"shrink_runs"`
	// ForkBisect pins the first divergent dispatch when the violation is
	// a fork-identity breach (experiments.Bisect verdict).
	ForkBisect string `json:"fork_bisect,omitempty"`
}

// Report summarizes a quickcheck run.
type Report struct {
	Seed     uint64
	Cases    int
	Runs     int
	Backends int // event-queue backends each (case, stack) pair ran under
	PDES     int // executor group counts the sharded identity oracle compared (0 = off)
	Skipped  int // builds rejected by admission control
	Failures []Failure
}

// AllStacks is the default stack set.
var AllStacks = []core.Stack{core.RTVirt, core.RTXen, core.TwoLevelEDF, core.Credit}

// AllBackends is the default event-queue backend set.
var AllBackends = []eventq.Backend{eventq.BackendHeap, eventq.BackendWheel}

// splitmix64 derives case k's seed from the run seed — well-mixed so
// neighboring cases share no stream structure, and never zero (zero means
// "default" to the scenario loader).
func splitmix64(seed, k uint64) uint64 {
	z := seed + (k+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// Run executes the quickcheck harness and returns its report. Failures
// come back shrunk; the run itself never returns an error for a violating
// or unbuildable scenario (those are Failures and Skipped respectively).
func Run(cfg Config) *Report {
	if cfg.N <= 0 {
		cfg.N = 25
	}
	if cfg.Seconds <= 0 {
		cfg.Seconds = 2
	}
	if len(cfg.Stacks) == 0 {
		cfg.Stacks = AllStacks
	}
	if cfg.MaxShrinkRuns <= 0 {
		cfg.MaxShrinkRuns = 200
	}
	if len(cfg.Shards) == 0 {
		cfg.Shards = DefaultShards
	}
	if len(cfg.Backends) == 0 {
		if os.Getenv("RTVIRT_EVENTQ") != "" {
			// A globally pinned backend wins: CI's wheel pass sets the env
			// var and runs every scenario once, under that backend only.
			cfg.Backends = []eventq.Backend{sim.DefaultBackend}
		} else {
			cfg.Backends = AllBackends
		}
	}
	rep := &Report{Seed: cfg.Seed, Cases: cfg.N, Backends: len(cfg.Backends)}
	if !cfg.SkipPDES && len(cfg.Shards) >= 2 {
		rep.PDES = len(cfg.Shards)
	}
	for i := 0; i < cfg.N; i++ {
		caseSeed := splitmix64(cfg.Seed, uint64(i))
		sc := Generate(rand.New(rand.NewSource(int64(caseSeed))))
		sc.Seconds = cfg.Seconds
		sc.Seed = caseSeed
		for _, stack := range cfg.Stacks {
			for _, bk := range cfg.Backends {
				rep.Runs++
				restore := pinBackend(bk)
				vs, err := runOne(sc, stack, !cfg.SkipFork)
				if err != nil {
					restore()
					rep.Skipped++
					continue
				}
				if len(vs) == 0 {
					restore()
					continue
				}
				// Shrink (and any bisect) replays under the violating
				// backend so the minimized repro still reproduces.
				min, minVs, steps, runs := Shrink(sc, stack, !cfg.SkipFork, cfg.MaxShrinkRuns)
				f := Failure{
					Case:        i,
					Stack:       stack.String(),
					Backend:     bk.String(),
					Seed:        caseSeed,
					Violations:  minVs,
					Scenario:    min,
					ShrinkSteps: steps,
					ShrinkRuns:  runs,
				}
				if hasForkViolation(minVs) {
					f.ForkBisect = pinForkDivergence(min, stack)
				}
				restore()
				rep.Failures = append(rep.Failures, f)
			}
		}
		if cfg.SkipPDES || len(cfg.Shards) < 2 {
			continue
		}
		// The sharded-PDES identity oracle, once per backend. It is
		// stack-independent (the replica runs under the sharded default
		// stack), so it sits outside the stacks loop.
		for _, bk := range cfg.Backends {
			rep.Runs++
			restore := pinBackend(bk)
			v, err := pdesIdentity(sc, caseSeed, cfg.Shards)
			restore()
			if err != nil {
				rep.Skipped++
				continue
			}
			if v != nil {
				rep.Failures = append(rep.Failures, Failure{
					Case:       i,
					Stack:      "pdes",
					Backend:    bk.String(),
					Seed:       caseSeed,
					Violations: []check.Violation{*v},
					Scenario:   sc,
				})
			}
		}
	}
	return rep
}

// pinBackend points sim.New at one event-queue backend and returns the
// undo. Scenario builds reach the simulator through core.NewSystem, which
// has no backend parameter — the package default is the seam.
func pinBackend(bk eventq.Backend) func() {
	prev := sim.DefaultBackend
	sim.DefaultBackend = bk
	return func() { sim.DefaultBackend = prev }
}

// runOne builds sc under stack with the oracle suite armed, runs it (with
// a half-time fork identity probe unless disabled), and returns the
// violations. A build error means admission control rejected the world.
func runOne(sc scenario.Scenario, stack core.Stack, forkCheck bool) ([]check.Violation, error) {
	sc.Stack = stack.String()
	opts := check.Opts{}
	if stack == core.RTVirt {
		opts.NeverMiss = NeverMiss(sc)
	}
	var suite *check.Suite
	w, err := scenario.Build(sc, scenario.Options{
		OnSystem: func(sys *core.System) { suite = check.Attach(sys, opts) },
	})
	if err != nil {
		return nil, err
	}
	w.Start()
	total := simtime.Duration(w.Seconds) * simtime.Second
	var forkV *check.Violation
	if forkCheck {
		half := total / 2
		w.Sys.Run(half)
		v, ferr := check.ForkIdentity(w.Sys, total-half)
		if ferr != nil {
			// Unforkable world (a pending closure event): fall back to a
			// plain run; every other oracle still applies.
			w.Sys.Run(total - half)
		} else {
			forkV = v
		}
	} else {
		w.Sys.Run(total)
	}
	w.Finish()
	vs := suite.Finish()
	if forkV != nil {
		vs = append(vs, *forkV)
	}
	return vs, nil
}

func hasForkViolation(vs []check.Violation) bool {
	for _, v := range vs {
		if v.Oracle == "fork-identity" {
			return true
		}
	}
	return false
}

// pinForkDivergence reuses the frontier-fork bisector to name the first
// dispatch where a fork parts ways with its original: both builders
// replay the world to half-time; one hands over the original, the other
// its fork.
func pinForkDivergence(sc scenario.Scenario, stack core.Stack) string {
	sc.Stack = stack.String()
	build := func(takeFork bool) func() *core.System {
		return func() *core.System {
			w, err := scenario.Build(sc, scenario.Options{})
			if err != nil {
				panic(fmt.Sprintf("quick: bisect rebuild failed: %v", err))
			}
			w.Start()
			half := simtime.Duration(w.Seconds) * simtime.Second / 2
			w.Sys.Run(half)
			if !takeFork {
				return w.Sys
			}
			f, _, err := w.Sys.Fork()
			if err != nil {
				panic(fmt.Sprintf("quick: bisect fork failed: %v", err))
			}
			return f
		}
	}
	total := simtime.Duration(sc.Seconds) * simtime.Second
	res, err := experiments.Bisect(build(false), build(true), total-total/2, simtime.Millisecond)
	if err != nil {
		return fmt.Sprintf("bisect failed: %v", err)
	}
	return res.Render()
}

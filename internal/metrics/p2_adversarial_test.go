package metrics

import (
	"math"
	"testing"

	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
)

// TestP2AdversarialDistributions pins the P² estimator's worst-case
// relative error against exact quantiles on the distributions that break
// streaming estimators: point masses (piecewise-constant CDFs), bimodal
// mixtures whose target quantile sits inside a mode gap, heavy tails, and
// adversarially ordered (monotone) streams. The bounds are empirical
// ceilings for these seeds — regressions in the marker update (e.g. a
// broken parabolic fallback) blow far past them, while refactors that
// keep the algorithm intact stay well inside.
func TestP2AdversarialDistributions(t *testing.T) {
	const samples = 60000
	cases := []struct {
		name string
		gen  func(i int, rng *sim.RNG) simtime.Duration
		// quantile → max |est-exact|/exact allowed
		bounds map[float64]float64
	}{
		{
			// Degenerate distribution: every marker collapses onto the
			// single support point, so the estimate must be exact.
			name: "constant",
			gen: func(int, *sim.RNG) simtime.Duration {
				return simtime.Millisecond
			},
			bounds: map[float64]float64{0.5: 0, 0.9: 0, 0.999: 0},
		},
		{
			// 90% fast mode at ~1ms, 10% slow mode at ~100ms, nothing in
			// between. Quantiles inside a mode are easy; the CDF jump at
			// q=0.9 means a tiny rank error translates into a two-decade
			// value error, which is exactly what P²'s parabolic
			// interpolation smooths across — so no bound is pinned at the
			// jump itself, and the in-mode bounds stay meaningful.
			name: "bimodal",
			gen: func(_ int, rng *sim.RNG) simtime.Duration {
				base := simtime.Millisecond
				if rng.Float64() < 0.1 {
					base = 100 * simtime.Millisecond
				}
				jitter := simtime.Duration(rng.Int63n(int64(base) / 10))
				return base + jitter
			},
			bounds: map[float64]float64{0.5: 0.02, 0.99: 0.05},
		},
		{
			// Pareto(α=1.5): infinite variance, the tail quantile rides
			// on a handful of enormous samples.
			name: "heavy-tail",
			gen: func(_ int, rng *sim.RNG) simtime.Duration {
				u := rng.Float64()
				for u == 0 {
					u = rng.Float64()
				}
				x := 1e5 / math.Pow(u, 1/1.5)
				if x > 1e12 {
					x = 1e12
				}
				return simtime.Duration(x)
			},
			bounds: map[float64]float64{0.5: 0.05, 0.9: 0.05, 0.99: 0.25},
		},
		{
			// Monotone ascending stream: every sample lands in the top
			// cell, the classic P² stressor (markers must keep chasing
			// the moving maximum).
			name: "ascending-ramp",
			gen: func(i int, _ *sim.RNG) simtime.Duration {
				return simtime.Duration(1000 + i)
			},
			bounds: map[float64]float64{0.5: 0.05, 0.9: 0.05, 0.999: 0.05},
		},
		{
			// Monotone descending: the mirror image, stressing the low
			// markers.
			name: "descending-ramp",
			gen: func(i int, _ *sim.RNG) simtime.Duration {
				return simtime.Duration(1000 + samples - i)
			},
			bounds: map[float64]float64{0.5: 0.05, 0.9: 0.05, 0.999: 0.05},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for q, maxRel := range tc.bounds {
				rng := sim.NewRNG(17)
				est := NewP2Quantile(q)
				var exact LatencyRecorder
				for i := 0; i < samples; i++ {
					v := tc.gen(i, rng)
					est.Add(v)
					exact.Add(v)
				}
				want := float64(exact.Percentile(q * 100))
				got := float64(est.Value())
				rel := math.Abs(got-want) / want
				if rel > maxRel {
					t.Errorf("q=%g: P² %v vs exact %v (rel %.4f > %.4f)",
						q, simtime.Duration(got), simtime.Duration(want), rel, maxRel)
				}
			}
		})
	}
}

package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"rtvirt/internal/simtime"
)

func TestFireOrder(t *testing.T) {
	var q Queue
	var got []int
	q.Schedule(30, func(simtime.Time) { got = append(got, 3) })
	q.Schedule(10, func(simtime.Time) { got = append(got, 1) })
	q.Schedule(20, func(simtime.Time) { got = append(got, 2) })
	for q.Fire() {
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order = %v, want %v", got, want)
		}
	}
}

func TestFIFOAtSameInstant(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		q.Schedule(42, func(simtime.Time) { got = append(got, i) })
	}
	for q.Fire() {
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events out of insertion order at %d: got %d", i, v)
		}
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	fired := false
	e := q.Schedule(5, func(simtime.Time) { fired = true })
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
	q.Cancel(e)
	if q.Len() != 0 {
		t.Fatalf("Len after cancel = %d, want 0", q.Len())
	}
	if !e.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	q.Cancel(e) // idempotent
	q.Cancel(nil)
	for q.Fire() {
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelMiddle(t *testing.T) {
	var q Queue
	var got []int
	var es []*Event
	for i := 0; i < 10; i++ {
		i := i
		es = append(es, q.Schedule(simtime.Time(i), func(simtime.Time) { got = append(got, i) }))
	}
	q.Cancel(es[3])
	q.Cancel(es[7])
	for q.Fire() {
	}
	if len(got) != 8 {
		t.Fatalf("fired %d events, want 8", len(got))
	}
	for _, v := range got {
		if v == 3 || v == 7 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
}

func TestPeekTime(t *testing.T) {
	var q Queue
	if q.PeekTime() != simtime.Never {
		t.Fatal("empty queue PeekTime should be Never")
	}
	q.Schedule(99, func(simtime.Time) {})
	q.Schedule(7, func(simtime.Time) {})
	if q.PeekTime() != 7 {
		t.Fatalf("PeekTime = %v, want 7", q.PeekTime())
	}
}

func TestEventAt(t *testing.T) {
	var q Queue
	e := q.Schedule(1234, func(simtime.Time) {})
	if e.At() != 1234 {
		t.Fatalf("At = %v, want 1234", e.At())
	}
}

func TestFireReceivesScheduledTime(t *testing.T) {
	var q Queue
	var at simtime.Time
	q.Schedule(777, func(now simtime.Time) { at = now })
	q.Fire()
	if at != 777 {
		t.Fatalf("callback now = %v, want 777", at)
	}
}

// Property: firing a randomly scheduled set of events yields them in sorted
// time order, and every live event fires exactly once.
func TestQuickSortedOrder(t *testing.T) {
	f := func(times []int16) bool {
		var q Queue
		var fired []simtime.Time
		for _, v := range times {
			at := simtime.Time(int64(v) + 1<<15)
			q.Schedule(at, func(now simtime.Time) { fired = append(fired, now) })
		}
		for q.Fire() {
		}
		if len(fired) != len(times) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: random interleavings of schedule/cancel keep Len consistent and
// fire exactly the non-cancelled events.
func TestQuickCancelConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var q Queue
		var live, cancelled int
		var es []*Event
		for i := 0; i < 300; i++ {
			if rng.Intn(3) > 0 || len(es) == 0 {
				e := q.Schedule(simtime.Time(rng.Int63n(1000)), func(simtime.Time) { live++ })
				es = append(es, e)
			} else {
				e := es[rng.Intn(len(es))]
				if !e.Cancelled() {
					cancelled++
				}
				q.Cancel(e)
			}
		}
		want := q.Len()
		fired := 0
		for q.Fire() {
			fired++
		}
		return fired == want && live == fired
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleFire(b *testing.B) {
	var q Queue
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Schedule(simtime.Time(rng.Int63n(1<<30)), func(simtime.Time) {})
		if q.Len() > 1024 {
			q.Fire()
		}
	}
	for q.Fire() {
	}
}

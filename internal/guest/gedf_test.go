package guest

import (
	"testing"

	"rtvirt/internal/hv"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

// gedfSetup builds a host with the cross-layer test scheduler and a gEDF
// guest with the given VCPU count.
func gedfSetup(t *testing.T, pcpus, vcpus int) (*sim.Simulator, *hv.Host, *OS) {
	t.Helper()
	s := sim.New(11)
	h := hv.NewHost(s, pcpus, &clSched{}, hv.CostModel{})
	cfg := DefaultConfig()
	cfg.GEDF = true
	g, err := NewOS(h, "vm0", cfg, vcpus)
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	return s, h, g
}

func TestGEDFJobMigratesAcrossVCPUs(t *testing.T) {
	s, _, g := gedfSetup(t, 2, 2)
	// Two tasks nominally pinned to vcpu0, but under gEDF either VCPU may
	// execute either job — so both can run in parallel.
	a := task.New(0, "a", task.Periodic, pp(4, 10))
	b := task.New(1, "b", task.Periodic, pp(4, 10))
	if err := g.Register(a); err != nil {
		t.Fatal(err)
	}
	if err := g.Register(b); err != nil {
		t.Fatal(err)
	}
	var aJob, bJob *task.Job
	s.After(0, func(now simtime.Time) {
		aJob = g.ReleaseJob(a, 0)
		bJob = g.ReleaseJob(b, 0)
	})
	s.RunFor(simtime.Millis(6))
	if !aJob.Done || !bJob.Done {
		t.Fatalf("jobs not done: a=%v b=%v", aJob.Done, bJob.Done)
	}
	// Sequential execution would finish the second at 8ms; parallel gEDF
	// finishes both by 4ms.
	if aJob.Finish > simtime.Time(ppms(5)) || bJob.Finish > simtime.Time(ppms(5)) {
		t.Fatalf("gEDF did not parallelise: a=%v b=%v", aJob.Finish, bJob.Finish)
	}
}

func ppms(n int64) simtime.Duration { return simtime.Millis(n) }

func TestGEDFNeverRunsOneJobTwice(t *testing.T) {
	s, _, g := gedfSetup(t, 2, 2)
	a := task.New(0, "a", task.Periodic, pp(6, 10))
	if err := g.Register(a); err != nil {
		t.Fatal(err)
	}
	s.After(0, func(now simtime.Time) { g.ReleaseJob(a, 0) })
	s.RunFor(simtime.Millis(20))
	st := a.Stats()
	// A single 6ms job must take exactly 6ms of work — double execution
	// would trip the kernel's double-dispatch panic or inflate TotalWork.
	if st.TotalWork != ppms(6) {
		t.Fatalf("TotalWork = %v, want 6ms", st.TotalWork)
	}
}

func TestGEDFIdleVCPUPicksUpUrgentJob(t *testing.T) {
	// The long job occupies vcpu0; the short job's release must wake the
	// idle vcpu1, which picks it up under the global queue.
	s, _, g := gedfSetup(t, 2, 2)
	long := task.New(0, "long", task.Periodic, pp(8, 100))
	short := task.New(1, "short", task.Periodic, pp(1, 10))
	if err := g.Register(long); err != nil {
		t.Fatal(err)
	}
	if err := g.Register(short); err != nil {
		t.Fatal(err)
	}
	var shortJob *task.Job
	s.After(0, func(now simtime.Time) { g.ReleaseJob(long, 0) })
	s.After(simtime.Millis(2), func(now simtime.Time) { shortJob = g.ReleaseJob(short, 0) })
	s.RunFor(simtime.Millis(20))
	if !shortJob.Done || shortJob.Finish > simtime.Time(ppms(4)) {
		t.Fatalf("short job not served promptly under gEDF: %+v", shortJob)
	}
	if shortJob.Missed(s.Now()) {
		t.Fatal("short job missed under gEDF preemption")
	}
}

func TestGEDFCompletedJobRemovedFromAnyQueue(t *testing.T) {
	s, _, g := gedfSetup(t, 2, 2)
	a := task.New(0, "a", task.Periodic, pp(2, 10))
	if err := g.Register(a); err != nil {
		t.Fatal(err)
	}
	g.StartPeriodic(a, 0)
	s.RunFor(simtime.Seconds(1))
	if st := a.Stats(); st.Completed < 99 || st.Missed != 0 {
		t.Fatalf("gEDF periodic stats: %+v", st)
	}
}

package scenario_test

import (
	"testing"

	"rtvirt/internal/check"
	"rtvirt/internal/core"
	"rtvirt/internal/eventq"
	"rtvirt/internal/scenario"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
)

// trafficScenario exercises all three open-loop traffic models at once on
// a contended RTVirt host, so the dispatch stream depends on every
// arrival process.
func trafficScenario() scenario.Scenario {
	return scenario.Scenario{
		Stack:   "rtvirt",
		PCPUs:   2,
		Seconds: 2,
		Seed:    21,
		VMs: []scenario.VM{
			{
				Name: "front",
				Tasks: []scenario.TaskSpec{
					{Name: "web", Kind: "sporadic", SliceUS: 300, PeriodUS: 4000,
						Arrivals: &scenario.ArrivalSpec{Diurnal: &scenario.DiurnalSpec{
							BaseHz: 40, PeakHz: 300, DayMS: 500}}},
					{Name: "api", Kind: "sporadic", SliceUS: 200, PeriodUS: 3000,
						Arrivals: &scenario.ArrivalSpec{MMPP: &scenario.MMPPSpec{
							RatesHz: []float64{50, 250}, SojournMS: []int64{80, 40}}}},
				},
			},
			{
				Name: "back",
				Tasks: []scenario.TaskSpec{
					{Name: "burst", Kind: "sporadic", SliceUS: 250, PeriodUS: 5000,
						Arrivals: &scenario.ArrivalSpec{Flash: &scenario.FlashCrowdSpec{
							BaseHz: 30, Surges: []scenario.SurgeSpec{
								{AtMS: 500, PeakHz: 500, RampMS: 100, DecayMS: 400}}}}},
					{Name: "rt", SliceUS: 800, PeriodUS: 10000},
				},
			},
		},
	}
}

// TestTrafficBackendDeterminism runs the same seeded traffic scenario
// under both event-queue backends and requires an identical dispatch
// digest: open-loop arrival streams are a pure function of the seed, not
// of the queue's internal ordering.
func TestTrafficBackendDeterminism(t *testing.T) {
	run := func(b eventq.Backend) (uint64, int) {
		t.Helper()
		old := sim.DefaultBackend
		sim.DefaultBackend = b
		defer func() { sim.DefaultBackend = old }()

		dig := check.NewDispatchDigest()
		w, err := scenario.Build(trafficScenario(), scenario.Options{
			OnSystem: func(sys *core.System) { sys.Host.TraceTo(dig) },
		})
		if err != nil {
			t.Fatalf("scenario.Build: %v", err)
		}
		w.Start()
		w.Sys.Run(simtime.Seconds(2))
		w.Sys.Host.Sync()
		return dig.Sum(), dig.Events()
	}

	heapSum, heapN := run(eventq.BackendHeap)
	wheelSum, wheelN := run(eventq.BackendWheel)
	if heapN < 1000 {
		t.Fatalf("only %d dispatch events; traffic scenario is degenerate", heapN)
	}
	if heapSum != wheelSum || heapN != wheelN {
		t.Errorf("backends diverge: heap digest %x (%d events), wheel %x (%d events)",
			heapSum, heapN, wheelSum, wheelN)
	}
}

// Package sim provides the discrete-event simulation kernel: a clock, a
// pending-event queue, and a deterministic random number source.
//
// All of the virtualized-host machinery (internal/hv, internal/guest, the
// schedulers, the workloads) runs on top of a single Simulator. The kernel
// is strictly single-threaded: callbacks run one at a time in global time
// order, so no package above this one needs locks.
package sim

import (
	"fmt"
	"os"

	"rtvirt/internal/eventq"
	"rtvirt/internal/simtime"
)

// Simulator is a discrete-event simulation engine. Create one with New.
type Simulator struct {
	now      simtime.Time
	q        eventq.Queue
	rng      *RNG
	seed     uint64
	fired    uint64
	inStep   bool
	handlers []Handler
}

// DefaultBackend is the event-queue backend New uses. It initializes from
// the RTVIRT_EVENTQ environment variable ("heap" or "wheel", default heap)
// so a whole test run can be pointed at either backend without touching
// call sites; harnesses that sweep both backends (internal/check/quick,
// the golden tests) set it — or call NewWithBackend — per run.
var DefaultBackend = EnvBackend()

// EnvBackend re-reads RTVIRT_EVENTQ and resolves it through
// eventq.ParseBackend. An unknown name panics loudly — a typo must never
// silently run the whole suite on the heap default.
func EnvBackend() eventq.Backend {
	b, err := eventq.ParseBackend(os.Getenv("RTVIRT_EVENTQ"))
	if err != nil {
		panic(fmt.Sprintf("sim: RTVIRT_EVENTQ: %v", err))
	}
	return b
}

// New returns a Simulator whose clock starts at 0 and whose random source
// is seeded with seed (same seed ⇒ identical run). The event queue uses
// DefaultBackend; runs are bit-identical across backends either way.
func New(seed uint64) *Simulator {
	return NewWithBackend(seed, DefaultBackend)
}

// NewWithBackend returns a Simulator with an explicitly pinned event-queue
// backend, for harnesses that must cover both.
func NewWithBackend(seed uint64, b eventq.Backend) *Simulator {
	s := &Simulator{rng: NewRNG(seed), seed: seed}
	s.q.SetBackend(b)
	s.q.Dispatch = s.dispatch
	return s
}

// Backend reports which event-queue backend this simulator runs on.
func (s *Simulator) Backend() eventq.Backend { return s.q.Backend() }

// Now reports the current simulated time.
func (s *Simulator) Now() simtime.Time { return s.now }

// RNG returns the simulator's deterministic random source.
func (s *Simulator) RNG() *RNG { return s.rng }

// Seed reports the seed this simulator was created with. Forks inherit it.
func (s *Simulator) Seed() uint64 { return s.seed }

// DerivedRNG returns a fresh generator whose stream is a pure function of
// (seed, tag) — it never consumes a draw from the main stream, so adding a
// derived stream cannot perturb existing event sequences. Layers that need
// their own substream (e.g. the hypervisor's platform-cost sampler) derive
// one from a stable tag such as their handler ID; two layers with distinct
// tags get decorrelated streams.
func (s *Simulator) DerivedRNG(tag uint64) *RNG {
	z := s.seed + (tag+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return NewRNG(z ^ (z >> 31))
}

// EventsFired reports how many events have executed so far.
func (s *Simulator) EventsFired() uint64 { return s.fired }

// Pending reports the number of events waiting to run.
func (s *Simulator) Pending() int { return s.q.Len() }

// At schedules fn to run at the absolute instant at. Scheduling in the past
// panics: that is always a logic error in a discrete-event model.
func (s *Simulator) At(at simtime.Time, fn func(now simtime.Time)) eventq.Handle {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	return s.q.Schedule(at, fn)
}

// After schedules fn to run d from now.
func (s *Simulator) After(d simtime.Duration, fn func(now simtime.Time)) eventq.Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: scheduling event %v in the past", d))
	}
	return s.At(s.now.Add(d), fn)
}

// PostAt schedules a typed event at the absolute instant at, delivered to
// the registered handler named by p.Handler. Typed events order exactly
// like At calls made at the same point (shared seq counter), and — unlike
// closures — survive Fork. Scheduling in the past panics.
func (s *Simulator) PostAt(at simtime.Time, p Payload) eventq.Handle {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	if p.Handler < 0 || int(p.Handler) >= len(s.handlers) {
		panic(fmt.Sprintf("sim: PostAt with unregistered handler %d", p.Handler))
	}
	return s.q.SchedulePayload(at, p)
}

// PostAfter schedules a typed event d from now.
func (s *Simulator) PostAfter(d simtime.Duration, p Payload) eventq.Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: scheduling event %v in the past", d))
	}
	return s.PostAt(s.now.Add(d), p)
}

// Cancel removes a pending event. Inert on zero and already-fired handles.
func (s *Simulator) Cancel(h eventq.Handle) { s.q.Cancel(h) }

// Reschedule moves a still-pending event to the absolute instant at,
// keeping its callback, and returns the replacement handle (the one passed
// in goes inert). It is the in-place equivalent of Cancel followed by At
// with the same callback — including FIFO ordering among same-instant
// events — but leaves no tombstone in the queue and performs a single heap
// sift. Rescheduling into the past or an inactive handle panics; callers
// that may hold a fired handle check Active first.
func (s *Simulator) Reschedule(h eventq.Handle, at simtime.Time) eventq.Handle {
	if at < s.now {
		panic(fmt.Sprintf("sim: rescheduling event at %v before now %v", at, s.now))
	}
	return s.q.Reschedule(h, at)
}

// Step fires the single earliest pending event, advancing the clock to its
// scheduled time. It reports false when no events remain.
func (s *Simulator) Step() bool {
	next := s.q.PeekTime()
	if next == simtime.Never {
		return false
	}
	s.fireAt(next)
	return true
}

// fireAt fires the earliest pending event, already known to sit at next,
// advancing the clock. Splitting this from Step lets RunUntil pay exactly
// one PeekTime per event instead of peeking once for the bound check and
// again inside Step.
func (s *Simulator) fireAt(next simtime.Time) {
	if next < s.now {
		panic("sim: event queue went backwards")
	}
	s.now = next
	s.inStep = true
	s.q.Fire()
	s.inStep = false
	s.fired++
}

// RunUntil fires events in order until the clock would pass end, leaving
// the clock at exactly end. Events scheduled at exactly end do run. Each
// event costs a single queue peek.
func (s *Simulator) RunUntil(end simtime.Time) {
	for {
		next := s.q.PeekTime()
		if next == simtime.Never || next > end {
			break
		}
		s.fireAt(next)
	}
	if end > s.now && end != simtime.Never {
		s.now = end
	}
}

// RunFor advances the simulation by d.
func (s *Simulator) RunFor(d simtime.Duration) { s.RunUntil(s.now.Add(d)) }

// Drain fires every remaining event. maxEvents bounds runaway simulations;
// it panics if exceeded.
func (s *Simulator) Drain(maxEvents uint64) {
	start := s.fired
	for s.Step() {
		if s.fired-start > maxEvents {
			panic("sim: Drain exceeded event budget (runaway simulation?)")
		}
	}
}

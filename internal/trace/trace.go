// Package trace records scheduling events — dispatches, preemptions, job
// completions — so a run can be inspected offline or rendered as a
// Gantt-style timeline (the raw material of the paper's Figure 1).
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"rtvirt/internal/simtime"
)

// Kind classifies a trace record.
type Kind string

// Record kinds.
const (
	// Dispatch: a VCPU started running on a PCPU (VCPU empty = idle).
	Dispatch Kind = "dispatch"
	// JobDone: a job finished on a VCPU.
	JobDone Kind = "job-done"
	// JobMiss: a job finished after its deadline.
	JobMiss Kind = "job-miss"
)

// Record is one scheduling event.
type Record struct {
	At   simtime.Time `json:"at_ns"`
	Kind Kind         `json:"kind"`
	PCPU int          `json:"pcpu"`
	VM   string       `json:"vm,omitempty"`
	VCPU int          `json:"vcpu,omitempty"`
	Task string       `json:"task,omitempty"`
	// Late is the lateness of a missed job.
	Late simtime.Duration `json:"late_ns,omitempty"`
}

// Recorder accumulates records up to a configurable cap. The zero value is
// ready to use with an unbounded buffer.
type Recorder struct {
	// Max bounds the number of retained records (0 = unbounded). When
	// full, further records are counted but dropped.
	Max int

	records []Record
	dropped int
}

// Add appends a record, honouring the cap.
func (r *Recorder) Add(rec Record) {
	if r.Max > 0 && len(r.records) >= r.Max {
		r.dropped++
		return
	}
	r.records = append(r.records, rec)
}

// Records returns the retained records in order.
func (r *Recorder) Records() []Record { return r.records }

// Dropped reports how many records the cap discarded.
func (r *Recorder) Dropped() int { return r.dropped }

// Len reports the number of retained records.
func (r *Recorder) Len() int { return len(r.records) }

// WriteCSV emits the trace as CSV with a header row.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"at_us", "kind", "pcpu", "vm", "vcpu", "task", "late_us"}); err != nil {
		return err
	}
	for _, rec := range r.records {
		row := []string{
			strconv.FormatFloat(rec.At.Micros(), 'f', 3, 64),
			string(rec.Kind),
			strconv.Itoa(rec.PCPU),
			rec.VM,
			strconv.Itoa(rec.VCPU),
			rec.Task,
			strconv.FormatFloat(rec.Late.Micros(), 'f', 3, 64),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits the trace as a JSON array.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(r.records)
}

// Timeline renders a coarse textual Gantt chart of PCPU occupancy between
// from and to, with one row per bucket — handy for eyeballing schedules in
// tests and examples.
func (r *Recorder) Timeline(pcpus int, from, to simtime.Time, buckets int) string {
	if buckets <= 0 || to <= from {
		return ""
	}
	// occupant[pcpu][bucket] = VM name observed last in the bucket.
	occ := make([][]string, pcpus)
	for i := range occ {
		occ[i] = make([]string, buckets)
	}
	span := to.Sub(from)
	cur := make([]string, pcpus)
	idx := 0
	for b := 0; b < buckets; b++ {
		bucketEnd := from.Add(simtime.ScaleDuration(span, int64(b+1), int64(buckets)))
		for idx < len(r.records) && r.records[idx].At < bucketEnd {
			rec := r.records[idx]
			if rec.Kind == Dispatch && rec.PCPU >= 0 && rec.PCPU < pcpus {
				cur[rec.PCPU] = rec.VM
			}
			idx++
		}
		for p := 0; p < pcpus; p++ {
			occ[p][b] = cur[p]
		}
	}
	out := ""
	for p := 0; p < pcpus; p++ {
		out += fmt.Sprintf("pcpu%-2d |", p)
		for b := 0; b < buckets; b++ {
			name := occ[p][b]
			switch {
			case name == "":
				out += "."
			default:
				out += string(name[len(name)-1])
			}
		}
		out += "|\n"
	}
	return out
}

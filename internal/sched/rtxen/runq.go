package rtxen

import "rtvirt/internal/hv"

// runq is the global runqueue as an indexed 4-ary min-heap keyed by
// (deadline, VCPU ID): every admitted RT VCPU with budget appears here
// whether runnable or not, and each serverState carries its own heap
// index, so a replenishment moves its server with one O(log n) sift
// instead of the seed's O(n) remove + O(n) sorted re-insert.
//
// RT-Xen as published keeps this queue as a sorted list and pays a linear
// scan per decision — that cost is what Table 6's schedule-time column
// measures. The model must keep charging it even though the heap no longer
// performs it, so the pick (pickEDF) and the rank query (rankOf) are
// pruned heap traversals that visit only the members an in-order scan
// would have examined: Decision.Work stays the 1-based rank of the chosen
// server in (deadline, ID) order, bit-identical to the seed's scan count.
type runq struct {
	v []*hv.VCPU
	// stack is the reusable traversal worklist for pickEDF/rankOf.
	stack []int32
}

const rqArity = 4

// rqLess orders servers by (deadline, ID); IDs are unique, so the order is
// total.
func rqLess(a, b *hv.VCPU) bool {
	da, db := state(a).deadline, state(b).deadline
	if da != db {
		return da < db
	}
	return a.ID < b.ID
}

// Len reports the number of queued servers.
func (r *runq) Len() int { return len(r.v) }

// Push inserts v.
func (r *runq) Push(v *hv.VCPU) {
	r.v = append(r.v, v)
	state(v).heapIdx = int32(len(r.v) - 1)
	r.siftUp(len(r.v) - 1)
}

// Remove deletes v, which must be queued.
func (r *runq) Remove(v *hv.VCPU) {
	i := int(state(v).heapIdx)
	n := len(r.v) - 1
	last := r.v[n]
	r.v[n] = nil
	r.v = r.v[:n]
	state(v).heapIdx = -1
	if i == n {
		return
	}
	r.v[i] = last
	state(last).heapIdx = int32(i)
	r.siftUp(i)
	if int(state(last).heapIdx) == i {
		r.siftDown(i)
	}
}

// Fix restores heap order after v's deadline changed.
func (r *runq) Fix(v *hv.VCPU) {
	i := int(state(v).heapIdx)
	r.siftUp(i)
	if int(state(v).heapIdx) == i {
		r.siftDown(i)
	}
}

func (r *runq) siftUp(i int) {
	e := r.v[i]
	for i > 0 {
		p := (i - 1) / rqArity
		pe := r.v[p]
		if !rqLess(e, pe) {
			break
		}
		r.v[i] = pe
		state(pe).heapIdx = int32(i)
		i = p
	}
	r.v[i] = e
	state(e).heapIdx = int32(i)
}

func (r *runq) siftDown(i int) {
	e := r.v[i]
	n := len(r.v)
	for {
		c := rqArity*i + 1
		if c >= n {
			break
		}
		end := c + rqArity
		if end > n {
			end = n
		}
		m := c
		mc := r.v[c]
		for j := c + 1; j < end; j++ {
			if rqLess(r.v[j], mc) {
				m, mc = j, r.v[j]
			}
		}
		if !rqLess(mc, e) {
			break
		}
		r.v[i] = mc
		state(mc).heapIdx = int32(i)
		i = m
	}
	r.v[i] = e
	state(e).heapIdx = int32(i)
}

// pickEDF returns the earliest-deadline server that is runnable, has
// budget, and is not dispatched on another PCPU — the server the published
// scheduler's in-order scan would pick. The traversal descends only into
// subtrees that can still beat the best candidate found so far (heap order
// guarantees every descendant ranks after its parent), so its cost is
// O(rank) like the modeled scan, not O(n log n).
func (r *runq) pickEDF(p *hv.PCPU) *hv.VCPU {
	if len(r.v) == 0 {
		return nil
	}
	var best *hv.VCPU
	r.stack = append(r.stack[:0], 0)
	for len(r.stack) > 0 {
		i := r.stack[len(r.stack)-1]
		r.stack = r.stack[:len(r.stack)-1]
		v := r.v[i]
		if best != nil && !rqLess(v, best) {
			continue // whole subtree ranks at or after best
		}
		st := state(v)
		if st.budget > 0 && v.Runnable() && (v.OnPCPU() == nil || v.OnPCPU() == p) {
			// Eligible: children all rank after v, so none can improve.
			best = v
			continue
		}
		for c := rqArity*int(i) + 1; c <= rqArity*int(i)+rqArity && c < len(r.v); c++ {
			r.stack = append(r.stack, int32(c))
		}
	}
	return best
}

// rankOf reports v's 1-based position in (deadline, ID) order: the number
// of queue members the sorted-list scan examines up to and including v.
// This is the honest entity count for the overhead model — the published
// algorithm touches exactly these members per decision, whatever data
// structure the simulator uses underneath.
func (r *runq) rankOf(v *hv.VCPU) int {
	rank := 1
	r.stack = append(r.stack[:0], 0)
	for len(r.stack) > 0 {
		i := r.stack[len(r.stack)-1]
		r.stack = r.stack[:len(r.stack)-1]
		if !rqLess(r.v[i], v) {
			continue
		}
		rank++
		for c := rqArity*int(i) + 1; c <= rqArity*int(i)+rqArity && c < len(r.v); c++ {
			r.stack = append(r.stack, int32(c))
		}
	}
	return rank
}

package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"

	"rtvirt"
)

// runFidelity runs the constant-vs-calibrated cost-model ablation and
// records it as a benchmark artifact (BENCH_8.json by default): the same
// Figure-3 and Table-6 scheduler comparisons under the paper's flat §4
// constants and under the distribution-valued calibrated model, with a
// per-row verdict on whether the winner survives the cost noise.
func runFidelity(seed uint64, secs int64, parallel int, outPath string) {
	cfg := rtvirt.DefaultFidelityConfig()
	cfg.Seed = seed
	cfg.Duration = secondsOr(secs, cfg.Duration)
	cfg.Parallel = parallel
	res := rtvirt.FidelityAblation(cfg)
	fmt.Println(rtvirt.RenderFidelity(res))

	buf, err := json.MarshalIndent(&res, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", outPath)
}

package guest

import (
	"rtvirt/internal/clone"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
)

// clSched is never forked and never schedules typed events; these stubs
// satisfy the widened HostScheduler interface.

func (s *clSched) HandleSimEvent(simtime.Time, sim.Payload) { panic("clSched: no typed events") }
func (s *clSched) ForkHandler(*clone.Ctx) sim.Handler       { panic("clSched: not forkable") }

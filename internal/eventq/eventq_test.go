package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"rtvirt/internal/simtime"
)

func TestFireOrder(t *testing.T) {
	var q Queue
	var got []int
	q.Schedule(30, func(simtime.Time) { got = append(got, 3) })
	q.Schedule(10, func(simtime.Time) { got = append(got, 1) })
	q.Schedule(20, func(simtime.Time) { got = append(got, 2) })
	for q.Fire() {
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order = %v, want %v", got, want)
		}
	}
}

func TestFIFOAtSameInstant(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		q.Schedule(42, func(simtime.Time) { got = append(got, i) })
	}
	for q.Fire() {
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events out of insertion order at %d: got %d", i, v)
		}
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	fired := false
	h := q.Schedule(5, func(simtime.Time) { fired = true })
	if !h.Active() {
		t.Fatal("freshly scheduled handle not active")
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
	q.Cancel(h)
	if q.Len() != 0 {
		t.Fatalf("Len after cancel = %d, want 0", q.Len())
	}
	if h.Active() {
		t.Fatal("cancelled handle still active")
	}
	q.Cancel(h)        // idempotent
	q.Cancel(Handle{}) // zero handle is inert
	for q.Fire() {
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

// Regression: cancelling a handle whose event already fired must be a
// no-op. The pre-Handle implementation decremented q.len in this case,
// driving Len negative and desynchronizing it from the heap.
func TestCancelAfterFireDoesNotCorruptLen(t *testing.T) {
	var q Queue
	h := q.Schedule(1, func(simtime.Time) {})
	q.Schedule(2, func(simtime.Time) {})
	if !q.Fire() { // fires h's event
		t.Fatal("Fire returned false")
	}
	if h.Active() {
		t.Fatal("fired handle still active")
	}
	q.Cancel(h)
	if q.Len() != 1 {
		t.Fatalf("Len after cancel-after-fire = %d, want 1", q.Len())
	}
	if !q.Fire() {
		t.Fatal("remaining event did not fire")
	}
	if q.Len() != 0 {
		t.Fatalf("Len drained = %d, want 0", q.Len())
	}
}

// Regression: a stale handle must not cancel an unrelated event that
// recycled the same record.
func TestStaleHandleCannotCancelRecycledEvent(t *testing.T) {
	var q Queue
	h1 := q.Schedule(1, func(simtime.Time) {})
	q.Fire() // record goes to the free list
	fired := false
	h2 := q.Schedule(2, func(simtime.Time) { fired = true }) // reuses the record
	q.Cancel(h1)                                             // stale — must not touch h2's event
	if !h2.Active() {
		t.Fatal("recycled event killed by stale handle")
	}
	for q.Fire() {
	}
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}

func TestCancelMiddle(t *testing.T) {
	var q Queue
	var got []int
	var hs []Handle
	for i := 0; i < 10; i++ {
		i := i
		hs = append(hs, q.Schedule(simtime.Time(i), func(simtime.Time) { got = append(got, i) }))
	}
	q.Cancel(hs[3])
	q.Cancel(hs[7])
	for q.Fire() {
	}
	if len(got) != 8 {
		t.Fatalf("fired %d events, want 8", len(got))
	}
	for _, v := range got {
		if v == 3 || v == 7 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
}

func TestPeekTime(t *testing.T) {
	var q Queue
	if q.PeekTime() != simtime.Never {
		t.Fatal("empty queue PeekTime should be Never")
	}
	q.Schedule(99, func(simtime.Time) {})
	h := q.Schedule(7, func(simtime.Time) {})
	if q.PeekTime() != 7 {
		t.Fatalf("PeekTime = %v, want 7", q.PeekTime())
	}
	// Lazy cancellation: PeekTime must skip the tombstone at the top.
	q.Cancel(h)
	if q.PeekTime() != 99 {
		t.Fatalf("PeekTime after cancelling head = %v, want 99", q.PeekTime())
	}
}

func TestHandleAt(t *testing.T) {
	var q Queue
	h := q.Schedule(1234, func(simtime.Time) {})
	if h.At() != 1234 {
		t.Fatalf("At = %v, want 1234", h.At())
	}
	q.Cancel(h)
	if h.At() != simtime.Never {
		t.Fatalf("At on inert handle = %v, want Never", h.At())
	}
}

func TestFireReceivesScheduledTime(t *testing.T) {
	var q Queue
	var at simtime.Time
	q.Schedule(777, func(now simtime.Time) { at = now })
	q.Fire()
	if at != 777 {
		t.Fatalf("callback now = %v, want 777", at)
	}
}

// Pooling must not allocate on the steady-state schedule→fire cycle, and a
// callback that reschedules immediately must be able to reuse the record
// it is firing from.
func TestRescheduleFromCallbackReusesRecord(t *testing.T) {
	var q Queue
	count := 0
	var tick func(now simtime.Time)
	tick = func(now simtime.Time) {
		count++
		if count < 100 {
			q.Schedule(now+1, tick)
		}
	}
	q.Schedule(0, tick)
	for q.Fire() {
	}
	if count != 100 {
		t.Fatalf("ticked %d times, want 100", count)
	}
	if n := len(q.free); n != 1 {
		t.Fatalf("free list holds %d records after self-rescheduling loop, want 1", n)
	}
}

func TestCompactionBoundsTombstones(t *testing.T) {
	var q Queue
	// Repeatedly cancel-and-reschedule a far-future event, the hv.setEvent
	// pattern. Without compaction the heap grows without bound because the
	// clock never reaches the tombstones.
	h := q.Schedule(1_000_000, func(simtime.Time) {})
	for i := 0; i < 10_000; i++ {
		q.Cancel(h)
		h = q.Schedule(simtime.Time(1_000_000+i), func(simtime.Time) {})
	}
	if len(q.h) > 256 {
		t.Fatalf("heap holds %d entries for 1 live event; compaction failed", len(q.h))
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
}

// Property: firing a randomly scheduled set of events yields them in sorted
// time order, and every live event fires exactly once.
func TestQuickSortedOrder(t *testing.T) {
	f := func(times []int16) bool {
		var q Queue
		var fired []simtime.Time
		for _, v := range times {
			at := simtime.Time(int64(v) + 1<<15)
			q.Schedule(at, func(now simtime.Time) { fired = append(fired, now) })
		}
		for q.Fire() {
		}
		if len(fired) != len(times) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: same-instant events fire in insertion order even when records
// are recycled between batches (stability must come from seq, not from
// record identity).
func TestQuickStableOrderWithRecycling(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var q Queue
		var got []int
		next := 0
		for batch := 0; batch < 5; batch++ {
			at := simtime.Time(batch * 100)
			for i := 0; i < 1+rng.Intn(20); i++ {
				id := next
				next++
				q.Schedule(at, func(simtime.Time) { got = append(got, id) })
			}
			for q.Fire() {
			}
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return len(got) == next
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: random interleavings of Schedule/Cancel/Fire keep Len equal to
// scheduled − cancelled − fired, and fire exactly the non-cancelled events
// in time order.
func TestQuickCancelConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var q Queue
		var fired []simtime.Time
		var hs []Handle
		scheduled, cancelled, firedCount := 0, 0, 0
		for i := 0; i < 500; i++ {
			switch r := rng.Intn(6); {
			case r <= 2 || len(hs) == 0:
				h := q.Schedule(simtime.Time(rng.Int63n(1000)), func(now simtime.Time) { fired = append(fired, now) })
				hs = append(hs, h)
				scheduled++
			case r <= 4:
				h := hs[rng.Intn(len(hs))]
				if h.Active() {
					cancelled++
				}
				q.Cancel(h)
			default:
				if q.Fire() {
					firedCount++
				}
			}
			if q.Len() != scheduled-cancelled-firedCount {
				return false
			}
		}
		want := q.Len()
		drained := 0
		for q.Fire() {
			drained++
		}
		if drained != want || q.Len() != 0 {
			return false
		}
		return len(fired) == scheduled-cancelled
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleFire(b *testing.B) {
	var q Queue
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Schedule(simtime.Time(rng.Int63n(1<<30)), func(simtime.Time) {})
		if q.Len() > 1024 {
			q.Fire()
		}
	}
	for q.Fire() {
	}
}

// BenchmarkCancelReschedule measures the hv.setEvent hot pattern: cancel a
// pending wakeup and schedule a new one. The seed implementation paid a
// heap.Remove plus a fresh allocation per iteration.
func BenchmarkCancelReschedule(b *testing.B) {
	var q Queue
	for i := 0; i < 512; i++ {
		q.Schedule(simtime.Time(1<<40+i), func(simtime.Time) {})
	}
	h := q.Schedule(1<<20, func(simtime.Time) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Cancel(h)
		h = q.Schedule(simtime.Time(1<<20+i%1024), func(simtime.Time) {})
	}
}

package quick

import (
	"fmt"
	"strings"

	"rtvirt/internal/check"
	"rtvirt/internal/cluster"
	"rtvirt/internal/dist"
	"rtvirt/internal/scenario"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

// The PDES identity oracle: every generated scenario is replicated onto a
// small sharded cluster and advanced under each executor group count in
// Config.Shards; all runs must produce byte-identical cluster digests.
// This turns the quickcheck corpus into a randomized probe of the
// conservative-window machinery — mailbox ordering, barrier placement,
// migration handoff — on worlds nobody hand-crafted.

// DefaultShards is the executor-group axis the PDES oracle compares. The
// first entry is the baseline.
var DefaultShards = []int{1, 2, 4}

// pdesHosts is the sharded cluster's size: three hosts keeps one full
// scenario replica per host affordable while still exercising forwarding
// chains that span more than one edge.
const pdesHosts = 3

// buildPDES replicates sc's VMs onto each host of a fresh sharded
// cluster (names suffixed with the host), drives every sporadic task
// from a remote client on the next host, and plans one live migration at
// half time. Periodic and background tasks run under the cluster's own
// release machinery. Server-style reservations have no sharded
// counterpart, so those VMs deploy as plain vcpus-style guests.
// pdesClientDelay derives a deterministic pseudo-random network delay for
// the client driving task ti of VM vi's host-h replica: 1–4× the global
// lookahead (splitmix64 finalizer over the case seed and coordinates).
// Each client edge therefore declares its own lookahead, so the oracle
// also probes the per-edge window bounds on random heterogeneous
// topologies.
func pdesClientDelay(lookahead simtime.Duration, seed uint64, h, vi, ti int) simtime.Duration {
	z := seed + uint64(h+1)*0x9E3779B97F4A7C15 +
		uint64(vi+1)*0xBF58476D1CE4E5B9 + uint64(ti+1)*0x94D049BB133111EB
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return lookahead * simtime.Duration(1+z%4)
}

func buildPDES(sc scenario.Scenario, seed uint64) (*cluster.Sharded, error) {
	cfg := cluster.DefaultShardedConfig()
	cfg.Hosts = pdesHosts
	cfg.PCPUs = sc.PCPUs
	if cfg.PCPUs <= 0 {
		cfg.PCPUs = 1
	}
	cfg.Seed = seed
	cfg.MigrationDowntime = simtime.Millis(5)
	cfg.MigrationPerBW = simtime.Millis(2)
	if sc.Costs != nil {
		// Thread generated cost overrides (including distribution-valued
		// terms) into every shard; per-shard cost streams derive from the
		// shard seed, so group-count invariance still holds.
		cfg.System.Costs = sc.Costs.CostModel()
	}
	c := cluster.NewSharded(cfg)
	total := simtime.Duration(sc.Seconds) * simtime.Second
	for h := 0; h < cfg.Hosts; h++ {
		for vi, vm := range sc.VMs {
			vcpus := vm.VCPUs
			if vcpus <= 0 {
				vcpus = 1
			}
			spec := cluster.VMSpec{Name: fmt.Sprintf("%s-h%d", vm.Name, h), VCPUs: vcpus}
			for _, ts := range vm.Tasks {
				ct := cluster.TaskSpec{
					Name: ts.Name,
					Params: task.Params{
						Slice:  simtime.Micros(ts.SliceUS),
						Period: simtime.Micros(ts.PeriodUS),
					},
					Phase: simtime.Millis(ts.PhaseMS),
				}
				switch ts.Kind {
				case "", "periodic":
					ct.Kind = task.Periodic
				case "sporadic":
					ct.Kind = task.Sporadic
				case "background", "evader":
					// Evaders replicate as plain background load: their
					// probe/burst driver is single-host machinery, but the
					// task shape still exercises the sharded release path.
					ct.Kind = task.Background
					ct.Params = task.Params{}
				default:
					return nil, fmt.Errorf("quick: pdes: unknown task kind %q", ts.Kind)
				}
				if ts.Adaptive != nil {
					cfg := ts.Adaptive.Config()
					ct.Adaptive = &cfg
				}
				spec.Tasks = append(spec.Tasks, ct)
			}
			d, err := c.Deploy(h, spec)
			if err != nil {
				// Host admission rejected the replica — identically on
				// every host, so skipping keeps the replicas symmetric.
				continue
			}
			for i, ts := range vm.Tasks {
				if ts.Kind != "sporadic" {
					continue
				}
				rate := ts.RateHz
				if rate <= 0 {
					rate = 10
				}
				mean := simtime.Duration(1e9 / rate) // ns between requests
				cl, err := c.AddRemoteClient((h+1)%cfg.Hosts, d, i,
					pdesClientDelay(cfg.Lookahead, seed, h, vi, i),
					dist.Uniform{Lo: mean / 2, Hi: mean + mean/2}, nil, 0)
				if err != nil {
					return nil, fmt.Errorf("quick: pdes client: %w", err)
				}
				if ts.Arrivals != nil {
					// Open-loop production traffic drives the remote
					// stream too — each client clones its own process.
					cl.Proc = ts.Arrivals.Process()
				}
			}
		}
	}
	deps := c.Deployments()
	if len(deps) == 0 {
		return nil, fmt.Errorf("quick: pdes: no VM admitted")
	}
	// One planned migration at half time exercises the cross-host
	// handoff; its admission may legitimately fail on a full target,
	// which is itself deterministic state the digest covers.
	if err := c.PlanMigration(simtime.Time(0).Add(total/2), deps[0],
		(deps[0].HostIndex()+1)%cfg.Hosts); err != nil {
		return nil, fmt.Errorf("quick: pdes migration: %w", err)
	}
	return c, nil
}

// pdesIdentity runs sc's sharded replica under every group count in
// shards and reports a violation if any digest differs from the first.
// The caller pins the event-queue backend.
func pdesIdentity(sc scenario.Scenario, seed uint64, shards []int) (*check.Violation, error) {
	total := simtime.Duration(sc.Seconds) * simtime.Second
	run := func(groups int) (string, error) {
		c, err := buildPDES(sc, seed)
		if err != nil {
			return "", err
		}
		c.Start()
		c.Run(total, groups)
		c.Finish()
		return c.DigestString(), nil
	}
	base, err := run(shards[0])
	if err != nil {
		return nil, err
	}
	for _, g := range shards[1:] {
		got, err := run(g)
		if err != nil {
			return nil, err
		}
		if got != base {
			return &check.Violation{
				At:     simtime.Time(0).Add(total),
				Oracle: "pdes-identity",
				Detail: fmt.Sprintf("executor groups=%d digest differs from groups=%d: %s",
					g, shards[0], firstDiffLine(base, got)),
			}, nil
		}
	}
	return nil, nil
}

// firstDiffLine names the first line where two digests part ways.
func firstDiffLine(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return fmt.Sprintf("line %d: %q vs %q", i+1, la[i], lb[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(la), len(lb))
}

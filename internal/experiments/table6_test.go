package experiments

import (
	"strings"
	"testing"

	"rtvirt/internal/simtime"
)

func t6cfg() Table6Config {
	return Table6Config{Seed: 1, Duration: 10 * simtime.Second, PCPUs: 15}
}

func TestTable6MultiRTA(t *testing.T) {
	if testing.Short() {
		t.Skip("long scalability run")
	}
	rows := Table6(MultiRTAVMs, t6cfg())
	byFw := map[string]Table6Row{}
	for _, r := range rows {
		byFw[r.Framework] = r
	}
	rtv, rtx := byFw["RTVirt"], byFw["RT-Xen"]
	// §4.5: RTVirt admits all 100 RTAs; RT-Xen's analysis cannot (80 in
	// the paper's run).
	if rtv.RTAsAdmitted != 100 {
		t.Fatalf("RTVirt admitted %d/100 RTAs", rtv.RTAsAdmitted)
	}
	if rtx.RTAsAdmitted >= 100 {
		t.Fatalf("RT-Xen admitted all %d RTAs; CSA pessimism should reject some", rtx.RTAsAdmitted)
	}
	// Timeliness: the paper's overall claim is deadline misses under 1%
	// (§7); this scenario reported none, ours shows a small residue from
	// near-100%-utilization split-VCPU blocking.
	if rtv.Misses.Ratio() > 0.005 {
		t.Fatalf("RTVirt miss ratio %.4f", rtv.Misses.Ratio())
	}
	// Overhead: under 1% for RTVirt and below RT-Xen's.
	if rtv.OverheadPct > 1.0 {
		t.Fatalf("RTVirt overhead %.3f%%, paper reports 0.10%%", rtv.OverheadPct)
	}
	if rtv.ScheduleTime >= rtx.ScheduleTime {
		t.Fatalf("RTVirt schedule time %v not below RT-Xen %v", rtv.ScheduleTime, rtx.ScheduleTime)
	}
	if rtv.OverheadPct >= rtx.OverheadPct {
		t.Fatalf("RTVirt overhead %.3f%% not below RT-Xen %.3f%%", rtv.OverheadPct, rtx.OverheadPct)
	}
	t.Log(RenderTable6(rows))
}

func TestTable6SingleRTA(t *testing.T) {
	if testing.Short() {
		t.Skip("long scalability run")
	}
	rows := Table6(SingleRTAVMs, t6cfg())
	byFw := map[string]Table6Row{}
	for _, r := range rows {
		byFw[r.Framework] = r
	}
	rtv, rtx := byFw["RTVirt"], byFw["RT-Xen"]
	if rtv.RTAsAdmitted != 100 || rtv.VMs != 100 {
		t.Fatalf("RTVirt admitted %d RTAs on %d VMs, want 100/100", rtv.RTAsAdmitted, rtv.VMs)
	}
	if rtx.RTAsAdmitted >= 100 {
		t.Fatalf("RT-Xen admitted all %d RTAs; the paper could only fit 93", rtx.RTAsAdmitted)
	}
	// Paper: 0.007% misses for RTVirt here, 0.93% overhead.
	if rtv.Misses.Ratio() > 0.001 {
		t.Fatalf("RTVirt miss ratio %.5f", rtv.Misses.Ratio())
	}
	if rtv.OverheadPct > 1.5 {
		t.Fatalf("RTVirt overhead %.3f%%, paper reports 0.93%%", rtv.OverheadPct)
	}
	if !strings.Contains(RenderTable6(rows), "RT-Xen") {
		t.Fatal("render broken")
	}
	t.Log(RenderTable6(rows))
}

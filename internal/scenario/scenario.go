// Package scenario loads and executes user-described simulation scenarios
// from JSON — the engine behind cmd/rtvirt-sim.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"rtvirt/internal/core"
	"rtvirt/internal/dist"
	"rtvirt/internal/guest"
	"rtvirt/internal/hv"
	"rtvirt/internal/metrics"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
	"rtvirt/internal/trace"
	"rtvirt/internal/workload"
)

// Scenario is the JSON schema rtvirt-sim executes.
type Scenario struct {
	// Stack: rtvirt | rt-xen | two-level-edf | credit (default rtvirt).
	Stack string `json:"stack"`
	// PCPUs is the host size (default 1).
	PCPUs int `json:"pcpus"`
	// Seconds is the simulated run length (default 10).
	Seconds int64 `json:"seconds"`
	// Seed fixes the random streams (default 1).
	Seed uint64 `json:"seed"`
	// Costs overrides pieces of the platform cost model; omitted fields
	// keep the §4 defaults (hv.DefaultCosts).
	Costs *CostsSpec `json:"costs"`
	VMs   []VM       `json:"vms"`
}

// CostsSpec overrides the platform cost model, in microseconds. Only the
// fields present in the JSON are applied; absent fields keep the defaults
// (10µs hypercall, 2µs context switch, 3µs migration — §4.5).
type CostsSpec struct {
	ContextSwitchUS *float64 `json:"context_switch_us"`
	MigrationUS     *float64 `json:"migration_us"`
	HypercallUS     *float64 `json:"hypercall_us"`
	// NetworkDelayUS overrides the client→server network delay applied to
	// sporadic request streams (default 19µs, the paper's measured p99.9).
	// Unlike the other costs it must be strictly positive: it doubles as
	// the conservative-PDES lookahead bound in sharded cluster runs, and a
	// zero lookahead admits no parallel window at all.
	NetworkDelayUS *float64 `json:"network_delay_us"`
}

// apply folds the overrides into a cost model.
func (c *CostsSpec) apply(m *hv.CostModel) {
	if c.ContextSwitchUS != nil {
		m.ContextSwitch = usToDur(*c.ContextSwitchUS)
	}
	if c.MigrationUS != nil {
		m.Migration = usToDur(*c.MigrationUS)
	}
	if c.HypercallUS != nil {
		m.Hypercall = usToDur(*c.HypercallUS)
	}
}

func usToDur(us float64) simtime.Duration {
	return simtime.Duration(us * float64(simtime.Microsecond))
}

// VM describes one guest.
type VM struct {
	Name string `json:"name"`
	// VCPUs is the virtual CPU count (default 1) when Servers is empty.
	VCPUs int `json:"vcpus"`
	// Servers gives explicit per-VCPU (budget, period) reservations — the
	// RT-Xen/two-level configuration style; under Credit they become caps.
	Servers []ServerSpec `json:"servers"`
	// Weight is the Credit share weight (default 256).
	Weight int        `json:"weight"`
	Tasks  []TaskSpec `json:"tasks"`
	// MaxVCPUs allows CPU hotplug up to this bound (0 = fixed VCPUs).
	// Ignored when Servers is given or under the Credit stack.
	MaxVCPUs int `json:"max_vcpus"`
	// SlackUS overrides the per-VCPU budget slack in µs (nil = the
	// stack default, 500µs under RTVirt). Explicit 0 disables slack.
	SlackUS *int64 `json:"slack_us"`
	// GuestSched selects the guest process scheduler: "pedf" (default)
	// or "gedf" (§6's global-EDF alternative).
	GuestSched string `json:"guest_sched"`
	// PrioritySlack scales each VCPU's slack by (1 + highest task
	// priority) — §6's priority-proportional provisioning.
	PrioritySlack bool `json:"priority_slack"`
}

// ServerSpec is an explicit (budget, period) VCPU reservation.
type ServerSpec struct {
	BudgetUS int64 `json:"budget_us"`
	PeriodUS int64 `json:"period_us"`
}

// TaskSpec describes one application.
type TaskSpec struct {
	Name string `json:"name"`
	// Kind: periodic (default) | sporadic | background.
	Kind     string `json:"kind"`
	SliceUS  int64  `json:"slice_us"`
	PeriodUS int64  `json:"period_us"`
	// PhaseMS delays the first periodic release.
	PhaseMS int64 `json:"phase_ms"`
	// RateHz drives sporadic arrivals (default 10).
	RateHz float64 `json:"rate_hz"`
	// Priority expresses relative importance (0 = normal); with the VM's
	// priority_slack it buys proportionally more budget headroom.
	Priority int `json:"priority"`
}

// TaskResult is one task's outcome.
type TaskResult struct {
	VM        string
	Name      string
	Kind      string
	Stats     task.Stats
	MissRatio float64
	// Latency holds response times for sporadic tasks.
	Latency *metrics.LatencyRecorder
}

// Result is a completed scenario run.
type Result struct {
	Stack       core.Stack
	PCPUs       int
	Seconds     int64
	AllocatedBW float64
	Tasks       []TaskResult
	Overhead    core.OverheadReport
	// Trace holds the schedule trace when requested.
	Trace *trace.Recorder
	// Events tallies every telemetry event by kind when any tracing was
	// on (Options.Trace, Counts, or Sinks). Per-run Counts merge
	// deterministically across the parallel runner.
	Events trace.Counts
}

// Parse decodes a scenario from JSON.
func Parse(r io.Reader) (Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return Scenario{}, fmt.Errorf("scenario: %w", err)
	}
	return sc, nil
}

// StackFor resolves a stack name.
func StackFor(name string) (core.Stack, error) {
	switch name {
	case "", "rtvirt":
		return core.RTVirt, nil
	case "rt-xen", "rtxen":
		return core.RTXen, nil
	case "two-level-edf", "edf":
		return core.TwoLevelEDF, nil
	case "credit":
		return core.Credit, nil
	default:
		return 0, fmt.Errorf("scenario: unknown stack %q", name)
	}
}

// Validate performs structural checks beyond JSON decoding.
func (sc Scenario) Validate() error {
	if _, err := StackFor(sc.Stack); err != nil {
		return err
	}
	if len(sc.VMs) == 0 {
		return fmt.Errorf("scenario: no VMs")
	}
	if sc.Costs != nil {
		for _, f := range []struct {
			name  string
			value *float64
		}{
			{"context_switch_us", sc.Costs.ContextSwitchUS},
			{"migration_us", sc.Costs.MigrationUS},
			{"hypercall_us", sc.Costs.HypercallUS},
		} {
			if f.value == nil {
				continue
			}
			if *f.value < 0 || math.IsNaN(*f.value) || math.IsInf(*f.value, 0) {
				return fmt.Errorf("scenario: costs.%s invalid (%v)", f.name, *f.value)
			}
		}
		if d := sc.Costs.NetworkDelayUS; d != nil {
			if *d <= 0 || math.IsNaN(*d) || math.IsInf(*d, 0) {
				return fmt.Errorf("scenario: costs.network_delay_us must be positive (it is the PDES lookahead bound), got %v", *d)
			}
		}
	}
	for _, vm := range sc.VMs {
		if vm.Name == "" {
			return fmt.Errorf("scenario: VM without a name")
		}
		switch vm.GuestSched {
		case "", "pedf", "gedf":
		default:
			return fmt.Errorf("scenario: VM %q has unknown guest_sched %q", vm.Name, vm.GuestSched)
		}
		if vm.SlackUS != nil && *vm.SlackUS < 0 {
			return fmt.Errorf("scenario: VM %q has negative slack_us", vm.Name)
		}
		if vm.MaxVCPUs != 0 && vm.MaxVCPUs < vm.VCPUs {
			return fmt.Errorf("scenario: VM %q max_vcpus %d below vcpus %d",
				vm.Name, vm.MaxVCPUs, vm.VCPUs)
		}
		for _, ts := range vm.Tasks {
			if ts.Priority < 0 {
				return fmt.Errorf("scenario: task %q has negative priority", ts.Name)
			}
			switch ts.Kind {
			case "", "periodic", "sporadic":
				if ts.SliceUS <= 0 || ts.PeriodUS <= 0 || ts.SliceUS > ts.PeriodUS {
					return fmt.Errorf("scenario: task %q has invalid (slice=%dµs, period=%dµs)",
						ts.Name, ts.SliceUS, ts.PeriodUS)
				}
			case "background":
			default:
				return fmt.Errorf("scenario: task %q has unknown kind %q", ts.Name, ts.Kind)
			}
		}
	}
	return nil
}

// Options tunes Run.
type Options struct {
	// Trace records the schedule (capped at TraceMax records).
	Trace    bool
	TraceMax int
	// Counts attaches a per-kind event counter without retaining events;
	// implied by Trace or a non-empty Sinks.
	Counts bool
	// Sinks are additional telemetry consumers (e.g. a trace.JSONL
	// exporter) attached for the whole run.
	Sinks []trace.Sink
	// OnSystem, when set, runs right after the system is built and the
	// sinks are attached, before any guest exists. Invariant oracles that
	// need the live host or scheduler (internal/check) hook in here.
	OnSystem func(*core.System)
}

// bound ties a task spec to its built task, guest, and latency recorder.
type bound struct {
	spec  TaskSpec
	vm    string
	task  *task.Task
	guest *guest.OS
	lat   *metrics.LatencyRecorder
}

// World is a built-but-not-started scenario: the system is constructed,
// telemetry sinks are attached, and every guest and task is registered,
// but the host has not started and no workload has been released. Callers
// that need to drive the simulation themselves (forking mid-run, pausing
// at checkpoints) use Build/Start/Finish; Run wraps the whole lifecycle.
type World struct {
	Sys     *core.System
	Stack   core.Stack
	Seconds int64

	all      []bound
	rec      *trace.Recorder
	counts   *trace.Counts
	netDelay simtime.Duration
}

// NetworkDelay reports the client→server delay sporadic streams run with
// (the costs.network_delay_us override, or the workload default). Sharded
// runs built from the same scenario use it as their lookahead bound.
func (w *World) NetworkDelay() simtime.Duration { return w.netDelay }

// Run executes the scenario and returns its results.
func Run(sc Scenario, opts Options) (*Result, error) {
	w, err := Build(sc, opts)
	if err != nil {
		return nil, err
	}
	w.Start()
	w.Sys.Run(simtime.Duration(w.Seconds) * simtime.Second)
	return w.Finish(), nil
}

// Build validates the scenario and constructs its world without starting
// the host or releasing any workload.
func Build(sc Scenario, opts Options) (*World, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	stack, _ := StackFor(sc.Stack)
	cfg := core.DefaultConfig(stack)
	if sc.PCPUs > 0 {
		cfg.PCPUs = sc.PCPUs
	} else {
		cfg.PCPUs = 1
	}
	if sc.Seed != 0 {
		cfg.Seed = sc.Seed
	}
	if sc.Costs != nil {
		sc.Costs.apply(&cfg.Costs)
	}
	sys := core.NewSystem(cfg)

	// Attach sinks before building the guests so admission events from
	// VCPU creation are observed too.
	var rec *trace.Recorder
	if opts.Trace {
		max := opts.TraceMax
		if max == 0 {
			max = 1 << 20
		}
		rec = &trace.Recorder{Max: max}
		sys.Host.TraceTo(rec)
	}
	sys.Host.TraceTo(opts.Sinks...)
	var counts *trace.Counts
	if opts.Trace || opts.Counts || len(opts.Sinks) > 0 {
		counts = &trace.Counts{}
		sys.Host.TraceTo(counts)
	}
	if opts.OnSystem != nil {
		opts.OnSystem(sys)
	}

	var all []bound
	id := 0
	for _, vmSpec := range sc.VMs {
		g, err := makeGuest(sys, stack, vmSpec)
		if err != nil {
			return nil, fmt.Errorf("scenario: vm %q: %w", vmSpec.Name, err)
		}
		for _, ts := range vmSpec.Tasks {
			tk, err := makeTask(g, id, ts)
			if err != nil {
				return nil, fmt.Errorf("scenario: vm %q task %q: %w", vmSpec.Name, ts.Name, err)
			}
			id++
			all = append(all, bound{spec: ts, vm: vmSpec.Name, task: tk, guest: g})
		}
	}

	seconds := sc.Seconds
	if seconds <= 0 {
		seconds = 10
	}
	netDelay := workload.DefaultNetworkDelay()
	if sc.Costs != nil && sc.Costs.NetworkDelayUS != nil {
		netDelay = usToDur(*sc.Costs.NetworkDelayUS)
	}
	return &World{Sys: sys, Stack: stack, Seconds: seconds, all: all,
		rec: rec, counts: counts, netDelay: netDelay}, nil
}

// Start starts the host and releases the scenario's workload. The caller
// then drives the simulation (w.Sys.Run or finer-grained stepping) and
// collects the outcome with Finish.
func (w *World) Start() {
	w.Sys.Start()
	for i := range w.all {
		b := &w.all[i]
		switch b.spec.Kind {
		case "periodic", "":
			b.guest.StartPeriodic(b.task,
				simtime.Time(simtime.Millis(b.spec.PhaseMS)))
		case "sporadic":
			rate := b.spec.RateHz
			if rate <= 0 {
				rate = 10
			}
			mean := simtime.Duration(float64(simtime.Second) / rate)
			client := workload.NewSporadicClientFor(b.guest, b.task,
				dist.Normal{MeanD: mean, Stddev: mean / 4, Min: simtime.Micros(100)},
				int(w.Seconds)*int(rate)+16)
			client.NetworkDelay = w.netDelay
			b.lat = &client.Latency
			client.Start(0)
		case "background":
			g, tk := b.guest, b.task
			w.Sys.Sim.At(0, func(now simtime.Time) {
				g.ReleaseJob(tk, simtime.Duration(1<<60))
			})
		}
	}
}

// Finish settles host accounting and assembles the run's results.
func (w *World) Finish() *Result {
	w.Sys.Host.Sync()
	res := &Result{
		Stack:       w.Stack,
		PCPUs:       w.Sys.Cfg.PCPUs,
		Seconds:     w.Seconds,
		AllocatedBW: w.Sys.AllocatedBandwidth(),
		Overhead:    w.Sys.Overhead(),
		Trace:       w.rec,
	}
	if w.counts != nil {
		res.Events = *w.counts
	}
	for _, b := range w.all {
		kind := b.spec.Kind
		if kind == "" {
			kind = "periodic"
		}
		st := b.task.Stats()
		res.Tasks = append(res.Tasks, TaskResult{
			VM:        b.vm,
			Name:      b.task.Name,
			Kind:      kind,
			Stats:     st,
			MissRatio: st.MissRatio(),
			Latency:   b.lat,
		})
	}
	return res
}

func makeGuest(sys *core.System, stack core.Stack, vm VM) (*guest.OS, error) {
	if len(vm.Servers) > 0 {
		var rsv []hv.Reservation
		for _, s := range vm.Servers {
			rsv = append(rsv, hv.Reservation{
				Budget: simtime.Micros(s.BudgetUS),
				Period: simtime.Micros(s.PeriodUS),
			})
		}
		w := vm.Weight
		if w == 0 {
			w = 256
		}
		return sys.NewServerGuest(vm.Name, rsv, w)
	}
	vcpus := vm.VCPUs
	if vcpus == 0 {
		vcpus = 1
	}
	if stack == core.Credit {
		w := vm.Weight
		if w == 0 {
			w = 256
		}
		return sys.NewWeightedGuest(vm.Name, vcpus, w)
	}
	opts := core.GuestOpts{
		VCPUs:         vcpus,
		MaxVCPUs:      vm.MaxVCPUs,
		GEDF:          vm.GuestSched == "gedf",
		PrioritySlack: vm.PrioritySlack,
	}
	if vm.SlackUS != nil {
		s := simtime.Micros(*vm.SlackUS)
		opts.Slack = &s
	}
	return sys.NewGuestOpts(vm.Name, opts)
}

func makeTask(g *guest.OS, id int, ts TaskSpec) (*task.Task, error) {
	switch ts.Kind {
	case "background":
		t := task.NewBackground(id, ts.Name)
		return t, g.Register(t)
	case "sporadic":
		t := task.New(id, ts.Name, task.Sporadic, task.Params{
			Slice:  simtime.Micros(ts.SliceUS),
			Period: simtime.Micros(ts.PeriodUS),
		})
		t.Priority = ts.Priority
		return t, g.Register(t)
	default:
		t := task.New(id, ts.Name, task.Periodic, task.Params{
			Slice:  simtime.Micros(ts.SliceUS),
			Period: simtime.Micros(ts.PeriodUS),
		})
		t.Priority = ts.Priority
		return t, g.Register(t)
	}
}

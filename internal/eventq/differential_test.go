package eventq

import (
	"math/rand"
	"testing"

	"rtvirt/internal/simtime"
)

// refEvent is one pending event in the naive reference model.
type refEvent struct {
	at  simtime.Time
	seq uint64
	id  int
}

// refModel is a sorted-slice reference implementation of the queue's
// semantics: fire in (time, insertion-sequence) order, cancellation by id,
// reschedule = cancel + fresh insert with the same id.
type refModel struct {
	pending []refEvent
	seq     uint64
}

func (m *refModel) schedule(at simtime.Time, id int) {
	m.pending = append(m.pending, refEvent{at: at, seq: m.seq, id: id})
	m.seq++
}

func (m *refModel) find(id int) int {
	for i, e := range m.pending {
		if e.id == id {
			return i
		}
	}
	return -1
}

func (m *refModel) cancel(id int) {
	if i := m.find(id); i >= 0 {
		m.pending = append(m.pending[:i], m.pending[i+1:]...)
	}
}

func (m *refModel) reschedule(id int, at simtime.Time) {
	m.cancel(id)
	m.schedule(at, id)
}

func (m *refModel) peek() simtime.Time {
	if len(m.pending) == 0 {
		return simtime.Never
	}
	min := 0
	for i := 1; i < len(m.pending); i++ {
		e, b := m.pending[i], m.pending[min]
		if e.at < b.at || (e.at == b.at && e.seq < b.seq) {
			min = i
		}
	}
	return m.pending[min].at
}

func (m *refModel) fire() (int, bool) {
	if len(m.pending) == 0 {
		return 0, false
	}
	min := 0
	for i := 1; i < len(m.pending); i++ {
		e, b := m.pending[i], m.pending[min]
		if e.at < b.at || (e.at == b.at && e.seq < b.seq) {
			min = i
		}
	}
	id := m.pending[min].id
	m.pending = append(m.pending[:min], m.pending[min+1:]...)
	return id, true
}

// TestDifferentialAgainstReferenceModel drives ~1e5 random
// schedule/cancel/reschedule/fire operations through the intrusive heap
// and the sorted-slice reference model in lockstep, checking Len,
// PeekTime, and every fired event id against the model. Seeds are logged
// so a failure reproduces with a one-line change.
func TestDifferentialAgainstReferenceModel(t *testing.T) {
	seeds := []int64{1, 7, 42, 20260806}
	for _, seed := range seeds {
		t.Logf("differential seed %d", seed)
		rng := rand.New(rand.NewSource(seed))
		var q Queue
		var m refModel

		type liveEvent struct {
			h  Handle
			id int
		}
		var live []liveEvent
		nextID := 0
		firedID := -1
		const ops = 100_000
		randTime := func() simtime.Time { return simtime.Time(rng.Int63n(1 << 20)) }

		for op := 0; op < ops; op++ {
			switch r := rng.Intn(10); {
			case r < 4 || len(live) == 0: // schedule
				id := nextID
				nextID++
				at := randTime()
				h := q.Schedule(at, func(simtime.Time) { firedID = id })
				m.schedule(at, id)
				live = append(live, liveEvent{h: h, id: id})
			case r < 6: // cancel
				i := rng.Intn(len(live))
				q.Cancel(live[i].h)
				m.cancel(live[i].id)
				live = append(live[:i], live[i+1:]...)
			case r < 8: // reschedule an active handle in place
				i := rng.Intn(len(live))
				at := randTime()
				live[i].h = q.Reschedule(live[i].h, at)
				m.reschedule(live[i].id, at)
			default: // fire
				firedID = -1
				got := q.Fire()
				want, ok := m.fire()
				if got != ok {
					t.Fatalf("seed %d op %d: Fire = %v, model %v", seed, op, got, ok)
				}
				if ok {
					if firedID != want {
						t.Fatalf("seed %d op %d: fired id %d, model %d", seed, op, firedID, want)
					}
					for i := range live {
						if live[i].id == want {
							live = append(live[:i], live[i+1:]...)
							break
						}
					}
				}
			}
			if q.Len() != len(m.pending) {
				t.Fatalf("seed %d op %d: Len = %d, model %d", seed, op, q.Len(), len(m.pending))
			}
			if q.PeekTime() != m.peek() {
				t.Fatalf("seed %d op %d: PeekTime = %v, model %v", seed, op, q.PeekTime(), m.peek())
			}
		}
		// Drain and compare the tail ordering.
		for {
			firedID = -1
			got := q.Fire()
			want, ok := m.fire()
			if got != ok {
				t.Fatalf("seed %d drain: Fire = %v, model %v", seed, got, ok)
			}
			if !ok {
				break
			}
			if firedID != want {
				t.Fatalf("seed %d drain: fired id %d, model %d", seed, firedID, want)
			}
		}
		if q.Len() != 0 {
			t.Fatalf("seed %d: Len after drain = %d", seed, q.Len())
		}
	}
}

// TestSteadyStateZeroAlloc locks the zero-allocation property of the
// steady-state kernel path: a standing event being rescheduled plus a
// schedule→fire stream must not allocate once the pools are warm.
func TestSteadyStateZeroAlloc(t *testing.T) {
	var q Queue
	nop := func(simtime.Time) {}
	standing := make([]Handle, 64)
	for i := range standing {
		standing[i] = q.Schedule(simtime.Time(1_000_000+i), nop)
	}
	// Warm the free list and the heap's backing array.
	for i := 0; i < 1024; i++ {
		q.Schedule(simtime.Time(i), nop)
	}
	for q.Len() > len(standing) {
		q.Fire()
	}
	now := simtime.Time(0)
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		k := i % len(standing)
		standing[k] = q.Reschedule(standing[k], now+1_000_000)
		q.Schedule(now+1, nop)
		q.Fire()
		now++
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule→fire→reschedule allocates %.1f/op, want 0", allocs)
	}
}

package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// BarrierPool is a set of persistent worker goroutines that repeatedly
// execute the same round function, released and re-joined by a
// sense-reversing barrier. It is the executor under the sharded (PDES)
// simulation's conservative window loop, which issues hundreds of
// thousands of very small rounds: unlike Pool.Do there is no per-round
// channel send, no per-round closure, and no sync.WaitGroup churn — one
// atomic sense flip releases every worker, one atomic counter joins them.
//
// The coordinator publishes the round's inputs in plain memory before
// calling Round and reads the results after it returns; the barrier's
// atomics order those accesses (release: plain writes happen-before the
// sense flip each worker observes; join: each worker's plain writes
// happen-before its arrival decrement the coordinator observes).
type BarrierPool struct {
	n  int
	fn func(worker int)

	// sense is the generalized sense flag: it increments once per round,
	// and a worker knows it has been released when the value differs from
	// the one it last observed. A counter instead of a boolean keeps the
	// comparison trivially correct even if a worker ever slept through a
	// round boundary.
	sense atomic.Uint32
	// pending counts workers that have not yet finished the current round.
	pending atomic.Int32
	closed  atomic.Bool

	// relMu/relCond park workers that outspun the release fast path;
	// joinMu/joinCond park the coordinator waiting for the last arrival.
	relMu    sync.Mutex
	relCond  *sync.Cond
	joinMu   sync.Mutex
	joinCond *sync.Cond

	mu     sync.Mutex
	panics []poolPanic

	wg sync.WaitGroup
}

// barrierSpin bounds the busy-wait at each barrier edge before a
// participant parks on its condition variable. Rounds in the window loop
// are typically a few microseconds, so an active peer almost always
// arrives within the spin; the park path exists for idle stretches and
// oversubscribed machines.
const barrierSpin = 256

// NewBarrierPool starts n parked workers that each run fn(worker) once
// per Round. Close releases them.
func NewBarrierPool(n int, fn func(worker int)) *BarrierPool {
	if n < 1 {
		n = 1
	}
	bp := &BarrierPool{n: n, fn: fn}
	bp.relCond = sync.NewCond(&bp.relMu)
	bp.joinCond = sync.NewCond(&bp.joinMu)
	bp.wg.Add(n)
	for w := 0; w < n; w++ {
		go bp.worker(w)
	}
	return bp
}

// Size reports the number of workers.
func (bp *BarrierPool) Size() int { return bp.n }

// Round releases every worker for one execution of fn, runs local (the
// coordinator's own share of the round; nil to contribute nothing) on the
// calling goroutine, and blocks until all workers have finished. A panic
// inside any worker is re-raised here after the round has fully drained,
// lowest worker first, so the coordinator fails deterministically instead
// of deadlocking; a panic in local propagates only after the workers have
// been joined, for the same reason.
func (bp *BarrierPool) Round(local func()) {
	bp.pending.Store(int32(bp.n))
	bp.release()
	if local != nil {
		func() {
			defer bp.join()
			local()
		}()
	} else {
		bp.join()
	}
	bp.rethrow()
}

// release flips the sense, waking every worker into the next round.
func (bp *BarrierPool) release() {
	bp.relMu.Lock()
	bp.sense.Add(1)
	bp.relCond.Broadcast()
	bp.relMu.Unlock()
}

// join blocks until every worker has arrived at the end of the round.
func (bp *BarrierPool) join() {
	for i := 0; i < barrierSpin; i++ {
		if bp.pending.Load() == 0 {
			return
		}
		if i%16 == 15 {
			runtime.Gosched()
		}
	}
	bp.joinMu.Lock()
	for bp.pending.Load() != 0 {
		bp.joinCond.Wait()
	}
	bp.joinMu.Unlock()
}

// rethrow re-raises the round's first recorded worker panic.
func (bp *BarrierPool) rethrow() {
	bp.mu.Lock()
	panics := bp.panics
	bp.panics = nil
	bp.mu.Unlock()
	if len(panics) == 0 {
		return
	}
	first := panics[0]
	for _, pp := range panics[1:] {
		if pp.worker < first.worker {
			first = pp
		}
	}
	panic(fmt.Sprintf("runner: barrier worker %d panicked: %v", first.worker, first.value))
}

func (bp *BarrierPool) worker(w int) {
	defer bp.wg.Done()
	seen := uint32(0)
	for {
		seen = bp.awaitSense(seen)
		if bp.closed.Load() {
			return
		}
		bp.runRound(w)
		if bp.pending.Add(-1) == 0 {
			bp.joinMu.Lock()
			bp.joinCond.Broadcast()
			bp.joinMu.Unlock()
		}
	}
}

// runRound executes one round's share, converting a panic into a recorded
// entry so the worker still arrives at the barrier and Round can re-raise.
func (bp *BarrierPool) runRound(w int) {
	defer func() {
		if r := recover(); r != nil {
			bp.mu.Lock()
			bp.panics = append(bp.panics, poolPanic{worker: w, value: r})
			bp.mu.Unlock()
		}
	}()
	bp.fn(w)
}

// awaitSense waits for the sense flag to move past the last value this
// worker observed: a bounded spin, then a park on the release cond.
func (bp *BarrierPool) awaitSense(seen uint32) uint32 {
	for i := 0; i < barrierSpin; i++ {
		if s := bp.sense.Load(); s != seen {
			return s
		}
		if i%16 == 15 {
			runtime.Gosched()
		}
	}
	bp.relMu.Lock()
	for bp.sense.Load() == seen {
		bp.relCond.Wait()
	}
	s := bp.sense.Load()
	bp.relMu.Unlock()
	return s
}

// Close releases the workers for good. The pool must be idle (no Round in
// flight); Close blocks until every worker goroutine has exited.
func (bp *BarrierPool) Close() {
	bp.closed.Store(true)
	bp.release()
	bp.wg.Wait()
}

package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"reflect"
	"runtime"
	"time"

	"rtvirt"
)

// forkSide is one leg of the warm-start comparison: the same Figure-5 load
// sweep, either forking every arm off one warmed world or rebuilding and
// replaying the warmup prefix per arm.
type forkSide struct {
	WallSeconds float64 `json:"wall_seconds"`
	Rows        int     `json:"rows"`
	Requests    int     `json:"requests"`
	Details     string  `json:"details"`
}

type forkReport struct {
	Bench       string   `json:"bench"`
	GoVersion   string   `json:"go_version"`
	WarmupSecs  int64    `json:"warmup_simulated_seconds"`
	TotalSecs   int64    `json:"total_simulated_seconds"`
	Steps       []int    `json:"hog_steps"`
	Identical   bool     `json:"rows_bit_identical"`
	Cold        forkSide `json:"cold"`
	Forked      forkSide `json:"forked"`
	Improvement struct {
		WallPct float64 `json:"wall_pct"`
	} `json:"improvement"`
	Sweep []rtvirt.LoadStepRow `json:"sweep"`
}

// runForkWarmup times the Figure-5 load sweep with warm-start forking
// against the cold control that replays the shared prefix per arm, checks
// the two sweeps are bit-identical, and writes the comparison to outPath
// (BENCH_4.json). Runs are sequential so the wall-clock delta measures the
// fork, not worker-pool scheduling; best of three per side, interleaved.
func runForkWarmup(outPath string) {
	fmt.Println("Fork warm-start benchmark — Figure 5 load sweep, forked vs cold")

	cfg := rtvirt.DefaultLoadStepConfig()
	best := func(cold bool) (time.Duration, []rtvirt.LoadStepRow) {
		c := cfg
		c.Cold = cold
		wall := time.Duration(1<<62 - 1)
		var rows []rtvirt.LoadStepRow
		for i := 0; i < 3; i++ {
			start := time.Now()
			rows = rtvirt.Figure5LoadSteps(c)
			if d := time.Since(start); d < wall {
				wall = d
			}
		}
		return wall, rows
	}

	coldWall, coldRows := best(true)
	forkWall, forkRows := best(false)

	requests := func(rows []rtvirt.LoadStepRow) int {
		var n int
		for _, r := range rows {
			n += r.Requests
		}
		return n
	}

	var r forkReport
	r.Bench = "fig5 load sweep: warm once + fork per arm vs rebuild + replay per arm"
	r.GoVersion = runtime.Version()
	r.WarmupSecs = int64(cfg.Warmup / rtvirt.Second)
	r.TotalSecs = int64(cfg.Duration / rtvirt.Second)
	r.Steps = cfg.Steps
	r.Identical = reflect.DeepEqual(coldRows, forkRows)
	r.Cold = forkSide{
		WallSeconds: coldWall.Seconds(),
		Rows:        len(coldRows),
		Requests:    requests(coldRows),
		Details:     "every arm rebuilds the system and re-simulates the warmup prefix",
	}
	r.Forked = forkSide{
		WallSeconds: forkWall.Seconds(),
		Rows:        len(forkRows),
		Requests:    requests(forkRows),
		Details:     "one warmup per scheduler arm, System.Fork per load step",
	}
	r.Improvement.WallPct = 100 * (1 - forkWall.Seconds()/coldWall.Seconds())
	r.Sweep = forkRows

	fmt.Printf("  cold:   %7.3f s wall (%d rows, %d requests)\n",
		r.Cold.WallSeconds, r.Cold.Rows, r.Cold.Requests)
	fmt.Printf("  forked: %7.3f s wall (%d rows, %d requests)  %+.1f%%\n",
		r.Forked.WallSeconds, r.Forked.Rows, r.Forked.Requests, r.Improvement.WallPct)
	if r.Identical {
		fmt.Println("  sweeps bit-identical: yes")
	} else {
		fmt.Println("  sweeps bit-identical: NO — fork determinism violated")
	}
	fmt.Println()
	fmt.Println(rtvirt.RenderLoadSteps(forkRows, rtvirt.DefaultFigure5Config().SLO))

	buf, err := json.MarshalIndent(&r, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", outPath)
	if !r.Identical {
		os.Exit(1)
	}
}

package check

import (
	"rtvirt/internal/core"
	"rtvirt/internal/guest"
	"rtvirt/internal/simtime"
	"rtvirt/internal/trace"
)

// hostAdmitter is the read-only admission view exported by the budgeted
// host schedulers (dpwrap, rtxen). Credit admits everything, so it has no
// capacity to audit.
type hostAdmitter interface {
	AdmittedBandwidth() float64
	Capacity() float64
}

// admitSlop absorbs float summation-order differences between the
// oracle's re-summation and the scheduler's own admission test.
const admitSlop = 1e-6

// AdmissionOracle asserts the §3.2 utilization rule at both layers. At
// the host, the admitted real-time bandwidth must never exceed the
// scheduler's capacity — audited after every admission verdict, every
// replenish (the first event to follow a hypercall-driven reservation
// change), and at the end of the run. At the guest, every Admit verdict
// carrying a task name triggers a re-audit of that guest's per-VCPU task
// bandwidth against its VCPU capacity.
type AdmissionOracle struct {
	recorder
	sys    *core.System
	host   hostAdmitter // nil under Credit
	guests map[string]*guest.OS
}

// NewAdmissionOracle creates the admission-soundness oracle.
func NewAdmissionOracle(sys *core.System) *AdmissionOracle {
	o := &AdmissionOracle{
		recorder: recorder{name: "admission"},
		sys:      sys,
		guests:   map[string]*guest.OS{},
	}
	if ha, ok := sys.Host.Scheduler().(hostAdmitter); ok {
		o.host = ha
	}
	return o
}

// Consume implements trace.Sink.
func (o *AdmissionOracle) Consume(ev trace.Event) {
	switch ev.Kind {
	case trace.Admit:
		if ev.Task != "" {
			o.checkGuest(ev)
		}
		o.checkHost(ev.At)
	case trace.Reject, trace.Replenish,
		trace.HypercallIncBW, trace.HypercallDecBW, trace.HypercallIncDecBW:
		o.checkHost(ev.At)
	}
}

// checkHost audits the host-level utilization rule.
func (o *AdmissionOracle) checkHost(at simtime.Time) {
	if o.host == nil {
		return
	}
	if bw, cap := o.host.AdmittedBandwidth(), o.host.Capacity(); bw > cap+admitSlop {
		o.flag(at, "host admitted %.6f CPUs of bandwidth over capacity %.6f", bw, cap)
	}
}

// checkGuest audits one guest's per-VCPU task bandwidth after a
// task-level Admit verdict.
func (o *AdmissionOracle) checkGuest(ev trace.Event) {
	g := o.guestFor(ev.VM)
	if g == nil {
		return // VM not built through core.System guest registry
	}
	cap := g.Config().VCPUCapacity
	for i := 0; i < g.NumVCPUs(); i++ {
		if bw := g.VCPUBandwidth(i); bw > cap+admitSlop {
			o.flag(ev.At, "guest %s vcpu%d carries %.6f of task bandwidth over capacity %.6f (admitting %q)",
				ev.VM, i, bw, cap, ev.Task)
		}
	}
}

// guestFor resolves a VM name, refreshing the cache on miss (guests are
// created after the oracle attaches).
func (o *AdmissionOracle) guestFor(vm string) *guest.OS {
	if g, ok := o.guests[vm]; ok {
		return g
	}
	for _, g := range o.sys.Guests() {
		o.guests[g.VM().Name] = g
	}
	return o.guests[vm]
}

// Finish implements Oracle.
func (o *AdmissionOracle) Finish(now simtime.Time) { o.checkHost(now) }

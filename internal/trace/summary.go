package trace

import (
	"fmt"
	"io"
	"sort"

	"rtvirt/internal/simtime"
)

// VCPUSummary aggregates one virtual CPU's schedule from a trace.
type VCPUSummary struct {
	// VM and VCPU identify the virtual CPU.
	VM   string
	VCPU int
	// Run is the total time dispatched on any PCPU.
	Run simtime.Duration
	// Dispatches counts how often the VCPU was put on a PCPU.
	Dispatches int
	// Migrations counts dispatches onto a different PCPU than the
	// previous one.
	Migrations int
	// Completions and Misses count the jobs that finished on the VCPU.
	Completions int
	Misses      int
}

// PCPUSummary aggregates one physical CPU's schedule from a trace.
type PCPUSummary struct {
	PCPU int
	// Busy is the time the PCPU ran any VCPU.
	Busy simtime.Duration
	// Dispatches counts non-idle dispatch records on the PCPU.
	Dispatches int
}

// Summary is the structural digest of a schedule trace: who ran where,
// for how long, and how often work moved between physical CPUs. It is
// computed purely from Dispatch/JobDone/JobMiss records, so it can
// cross-check the kernel's own accounting meters.
type Summary struct {
	// From and To bound the analyzed window (first and last record, with
	// open intervals closed at To).
	From, To simtime.Time
	// VCPUs is keyed by "vm/vcpu" display order; see Keys.
	VCPUs map[string]*VCPUSummary
	// PCPUs is indexed by physical CPU id.
	PCPUs []PCPUSummary
	// Migrations is the host-wide migration total, derived from the
	// dispatch sequence (so it also works on dispatch-only traces).
	Migrations int
	// Events tallies every retained event by kind.
	Events Counts
	// Dropped is the number of events the recorder's cap discarded; the
	// digest above covers only the retained prefix when it is non-zero.
	Dropped int
}

// Summarize digests the recorder's records. Open run intervals (a VCPU
// still dispatched at the last record) are closed at the trace's final
// timestamp, so totals never exceed the observed window.
func Summarize(r *Recorder) Summary {
	recs := r.Records()
	s := Summary{VCPUs: map[string]*VCPUSummary{}, Dropped: r.Dropped()}
	if len(recs) == 0 {
		return s
	}
	s.Events = r.Counts()
	s.From = recs[0].At
	s.To = recs[len(recs)-1].At

	maxPCPU := 0
	for _, rec := range recs {
		if rec.PCPU > maxPCPU {
			maxPCPU = rec.PCPU
		}
	}
	s.PCPUs = make([]PCPUSummary, maxPCPU+1)
	for i := range s.PCPUs {
		s.PCPUs[i].PCPU = i
	}

	type running struct {
		key   string
		since simtime.Time
	}
	cur := make([]*running, maxPCPU+1) // per-PCPU current occupant
	lastPCPU := map[string]int{}       // key -> last PCPU it ran on

	vc := func(rec Record) *VCPUSummary {
		key := fmt.Sprintf("%s/%d", rec.VM, rec.VCPU)
		v := s.VCPUs[key]
		if v == nil {
			v = &VCPUSummary{VM: rec.VM, VCPU: rec.VCPU}
			s.VCPUs[key] = v
		}
		return v
	}
	closeRun := func(p int, until simtime.Time) {
		if run := cur[p]; run != nil {
			d := until.Sub(run.since)
			s.VCPUs[run.key].Run += d
			s.PCPUs[p].Busy += d
			cur[p] = nil
		}
	}

	for _, rec := range recs {
		switch rec.Kind {
		case Dispatch:
			closeRun(rec.PCPU, rec.At)
			if rec.VM == "" { // idle
				continue
			}
			v := vc(rec)
			key := fmt.Sprintf("%s/%d", rec.VM, rec.VCPU)
			v.Dispatches++
			s.PCPUs[rec.PCPU].Dispatches++
			if prev, ok := lastPCPU[key]; ok && prev != rec.PCPU {
				v.Migrations++
				s.Migrations++
			}
			lastPCPU[key] = rec.PCPU
			cur[rec.PCPU] = &running{key: key, since: rec.At}
		case JobDone:
			vc(rec).Completions++
		case JobMiss:
			v := vc(rec)
			v.Completions++
			v.Misses++
		}
	}
	for p := range cur {
		closeRun(p, s.To)
	}
	return s
}

// Keys returns the VCPU summary keys in (VM, VCPU) order.
func (s Summary) Keys() []string {
	keys := make([]string, 0, len(s.VCPUs))
	for k := range s.VCPUs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := s.VCPUs[keys[i]], s.VCPUs[keys[j]]
		if a.VM != b.VM {
			return a.VM < b.VM
		}
		return a.VCPU < b.VCPU
	})
	return keys
}

// Window is the trace's observed duration.
func (s Summary) Window() simtime.Duration { return s.To.Sub(s.From) }

// Write renders the summary as a fixed-width report.
func (s Summary) Write(w io.Writer) error {
	win := s.Window()
	if _, err := fmt.Fprintf(w, "schedule summary over %v\n", win); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-20s %12s %6s %10s %10s %6s %6s\n",
		"vcpu", "run", "cpu%", "dispatches", "migrations", "done", "miss")
	for _, k := range s.Keys() {
		v := s.VCPUs[k]
		pct := 0.0
		if win > 0 {
			pct = 100 * float64(v.Run) / float64(win)
		}
		fmt.Fprintf(w, "%-20s %12v %5.1f%% %10d %10d %6d %6d\n",
			k, v.Run, pct, v.Dispatches, v.Migrations, v.Completions, v.Misses)
	}
	fmt.Fprintf(w, "%-20s %12s %6s %10s\n", "pcpu", "busy", "util%", "dispatches")
	for _, p := range s.PCPUs {
		pct := 0.0
		if win > 0 {
			pct = 100 * float64(p.Busy) / float64(win)
		}
		fmt.Fprintf(w, "pcpu%-16d %12v %5.1f%% %10d\n", p.PCPU, p.Busy, pct, p.Dispatches)
	}
	fmt.Fprintf(w, "host migrations: %d\n", s.Migrations)
	fmt.Fprintf(w, "events: %s\n", s.Events)
	var err error
	if s.Dropped > 0 {
		_, err = fmt.Fprintf(w, "dropped: %d events past the recorder cap (digest covers the retained prefix only)\n", s.Dropped)
	}
	return err
}

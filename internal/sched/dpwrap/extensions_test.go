package dpwrap

import (
	"fmt"
	"testing"

	"rtvirt/internal/guest"
	"rtvirt/internal/hv"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

// TestIdleTaxSqueezesIdleClaim exercises the §6 extension: a VM that
// reserves far more than it uses is taxed toward its observed usage,
// making room for a new admission that the nominal reservations would
// reject.
func TestIdleTaxSqueezesIdleClaim(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IdleTax = true
	cfg.TaxWindow = simtime.Millis(50)
	s := sim.New(3)
	sched := New(cfg)
	h := hv.NewHost(s, 1, sched, hv.CostModel{})

	// The over-claimer: reserves 70% but its task only ever uses ~5%.
	gcfg := guest.DefaultConfig()
	gcfg.Slack = 0
	gIdle, err := guest.NewOS(h, "overclaimer", gcfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	idler := task.New(0, "idler", task.Periodic, task.Params{Slice: simtime.Millis(7), Period: simtime.Millis(10)})
	if err := gIdle.Register(idler); err != nil {
		t.Fatal(err)
	}
	// It never starts periodic releases beyond a trickle.
	trickle := task.New(1, "trickle", task.Sporadic, task.Params{Slice: simtime.Micros(500), Period: simtime.Millis(10)})
	_ = trickle
	h.Start()
	v := gIdle.VM().VCPUs[0]
	if f := sched.TaxFactor(v); f != 1.0 {
		t.Fatalf("initial tax factor %v, want 1", f)
	}
	// Release one tiny job per 100ms: usage ≈ 0.5%.
	var drip func(now simtime.Time)
	drip = func(now simtime.Time) {
		gIdle.ReleaseJob(idler, simtime.Micros(500))
		s.After(simtime.Millis(100), drip)
	}
	s.After(0, drip)
	s.RunFor(simtime.Seconds(2))
	f := sched.TaxFactor(v)
	if f > 0.5 {
		t.Fatalf("tax factor %v after 2s of idling; should approach the floor", f)
	}
	if f < cfg.TaxFloor-1e-9 {
		t.Fatalf("tax factor %v below the floor %v", f, cfg.TaxFloor)
	}

	// A second VM needing 60% must now be admissible (0.7×factor + 0.6 ≤ 1).
	g2, err := guest.NewOS(h, "newcomer", gcfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	busy := task.New(2, "busy", task.Periodic, task.Params{Slice: simtime.Millis(6), Period: simtime.Millis(10)})
	if err := g2.Register(busy); err != nil {
		t.Fatalf("taxed admission rejected the newcomer: %v", err)
	}
	g2.StartPeriodic(busy, s.Now())
	s.RunFor(simtime.Seconds(2))
	if st := busy.Stats(); st.MissRatio() > 0.02 {
		t.Fatalf("newcomer missed %.2f%% next to a taxed idler", 100*st.MissRatio())
	}
}

// TestIdleTaxRecovers: when the taxed VM becomes busy again its factor
// climbs back toward 1.
func TestIdleTaxRecovers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IdleTax = true
	cfg.TaxWindow = simtime.Millis(50)
	s := sim.New(3)
	sched := New(cfg)
	h := hv.NewHost(s, 1, sched, hv.CostModel{})
	gcfg := guest.DefaultConfig()
	gcfg.Slack = 0
	g, err := guest.NewOS(h, "vm", gcfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	tk := task.New(0, "t", task.Periodic, task.Params{Slice: simtime.Millis(5), Period: simtime.Millis(10)})
	if err := g.Register(tk); err != nil {
		t.Fatal(err)
	}
	h.Start()
	v := g.VM().VCPUs[0]
	// Idle for a second: factor drops.
	s.RunFor(simtime.Seconds(1))
	low := sched.TaxFactor(v)
	if low > 0.5 {
		t.Fatalf("factor %v did not drop while idle", low)
	}
	// Run at full reservation: factor recovers.
	g.StartPeriodic(tk, s.Now())
	s.RunFor(simtime.Seconds(2))
	if got := sched.TaxFactor(v); got < 0.9 {
		t.Fatalf("factor %v did not recover under load (was %v)", got, low)
	}
	// And deadlines hold through the recovery (allocation scales with the
	// factor, which always covers the observed usage).
	if st := tk.Stats(); st.MissRatio() > 0.10 {
		t.Fatalf("missed %.1f%% during tax recovery", 100*st.MissRatio())
	}
}

// TestNoMigratePinsVCPU exercises the §6 affinity extension: a pinned VCPU
// never changes PCPU while unpinned neighbours may.
func TestNoMigratePinsVCPU(t *testing.T) {
	s := sim.New(3)
	sched := New(DefaultConfig())
	h := hv.NewHost(s, 2, sched, hv.CostModel{})
	gcfg := guest.DefaultConfig()
	gcfg.Slack = 0

	var tasks []*task.Task
	var guests []*guest.OS
	// 1.8 CPUs of load across 3 VMs; the middle one is pinned.
	for i, bw := range []int64{7, 6, 5} {
		g, err := guest.NewOS(h, fmt.Sprintf("vm%d", i), gcfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		tk := task.New(i, fmt.Sprintf("t%d", i), task.Periodic,
			task.Params{Slice: simtime.Millis(bw), Period: simtime.Millis(10)})
		if err := g.Register(tk); err != nil {
			t.Fatal(err)
		}
		tasks = append(tasks, tk)
		guests = append(guests, g)
	}
	pinned := guests[1].VM().VCPUs[0]
	pinned.NoMigrate = true

	// Track the pinned VCPU's PCPU over time.
	migrations := 0
	lastPCPU := -1
	var watch func(now simtime.Time)
	watch = func(now simtime.Time) {
		if p := pinned.OnPCPU(); p != nil {
			if lastPCPU >= 0 && p.ID != lastPCPU {
				migrations++
			}
			lastPCPU = p.ID
		}
		s.After(simtime.Micros(100), watch)
	}
	h.Start()
	for i, tk := range tasks {
		guests[i].StartPeriodic(tk, 0)
	}
	s.After(0, watch)
	s.RunFor(simtime.Seconds(3))
	if migrations != 0 {
		t.Fatalf("pinned VCPU migrated %d times", migrations)
	}
	for _, tk := range tasks {
		if st := tk.Stats(); st.MissRatio() > 0.01 {
			t.Errorf("%s missed %.2f%% with a pinned neighbour", tk.Name, 100*st.MissRatio())
		}
	}
}

// TestRTCapacityReservesBackgroundShare: with RTCapacity < 1, admission
// leaves headroom that background VMs always receive (§3.4's starvation
// avoidance).
func TestRTCapacityReservesBackgroundShare(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RTCapacity = 0.8
	s := sim.New(3)
	sched := New(cfg)
	h := hv.NewHost(s, 1, sched, hv.CostModel{})
	gcfg := guest.DefaultConfig()
	gcfg.Slack = 0
	g, err := guest.NewOS(h, "rt", gcfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 0.9 must be rejected under the 0.8 cap...
	big := task.New(0, "big", task.Periodic, task.Params{Slice: simtime.Millis(9), Period: simtime.Millis(10)})
	if err := g.Register(big); err == nil {
		t.Fatal("0.9 admitted past RTCapacity 0.8")
	}
	// ...0.8 fits exactly.
	fit := task.New(1, "fit", task.Periodic, task.Params{Slice: simtime.Millis(8), Period: simtime.Millis(10)})
	if err := g.Register(fit); err != nil {
		t.Fatal(err)
	}
	gbg, err := guest.NewOS(h, "bg", gcfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	hog := task.NewBackground(2, "hog")
	if err := gbg.Register(hog); err != nil {
		t.Fatal(err)
	}
	h.Start()
	g.StartPeriodic(fit, 0)
	s.After(0, func(now simtime.Time) { gbg.ReleaseJob(hog, simtime.Seconds(100)) })
	s.RunFor(simtime.Seconds(5))
	h.Sync()
	// The hog gets the reserved 20%.
	bgRun := gbg.VM().TotalRun()
	if bgRun < simtime.Millis(900) {
		t.Fatalf("background received only %v of 5s; the 20%% reserve is starved", bgRun)
	}
	if st := fit.Stats(); st.Missed != 0 {
		t.Fatalf("RT task missed %d with capacity reserve", st.Missed)
	}
}

// TestNoMigrateOverflowSplits drives the pin fallback: when several pinned
// VCPUs cannot all fit whole on a PCPU within a slice, the overflow VCPU
// is split rather than dropped — the pin is best-effort, the reservation
// is not. All reservations must still be honoured.
func TestNoMigrateOverflowSplits(t *testing.T) {
	s := sim.New(5)
	sched := New(DefaultConfig())
	h := hv.NewHost(s, 2, sched, hv.CostModel{})
	gcfg := guest.DefaultConfig()
	gcfg.Slack = 0

	// Three pinned VMs at 0.7+0.7+0.4 = 1.8 CPUs: the third fits whole on
	// neither PCPU (0.3 free on each), so it must be split.
	var tasks []*task.Task
	var guests []*guest.OS
	for i, bw := range []int64{7, 7, 4} {
		g, err := guest.NewOS(h, fmt.Sprintf("vm%d", i), gcfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		tk := task.New(i, fmt.Sprintf("t%d", i), task.Periodic,
			task.Params{Slice: simtime.Millis(bw), Period: simtime.Millis(10)})
		if err := g.Register(tk); err != nil {
			t.Fatal(err)
		}
		g.VM().VCPUs[0].NoMigrate = true
		tasks = append(tasks, tk)
		guests = append(guests, g)
	}
	h.Start()
	for i, tk := range tasks {
		guests[i].StartPeriodic(tk, 0)
	}
	s.RunFor(simtime.Seconds(3))
	for _, tk := range tasks {
		if st := tk.Stats(); st.MissRatio() > 0.01 {
			t.Errorf("%s missed %.2f%% (%d/%d) with overflowing pins",
				tk.Name, 100*st.MissRatio(), st.Missed, st.Released)
		}
	}
	// The split plan still delivers the overflow VM its full demand
	// (0.4 CPUs over 3s). Work-conserving execution may satisfy the split
	// quota without a physical migration — that is fine; the reservation
	// is what matters.
	h.Sync()
	if run := guests[2].VM().TotalRun(); run < simtime.Duration(float64(3*simtime.Second)*0.39) {
		t.Errorf("overflow VM ran %v of the 1.2s it reserved", run)
	}
}

package check

import (
	"rtvirt/internal/simtime"
	"rtvirt/internal/trace"
)

// MissOracle flags missed deadlines in a CONFIRMED-admitted task set: the
// paper's central guarantee (§3.2) is that a task the cross-layer stack
// admits meets its deadlines. The caller names the tasks the guarantee
// covers ("vm/task" keys — periodic tasks under the RTVirt stack; the
// generator in check/quick excludes sporadic tasks, whose Normal arrival
// model can legally burst past the declared rate). A watched task is
// armed by the guest's Admit verdict carrying its name and disarmed by a
// later Reject (e.g. a rejected attribute change that leaves it demoted),
// so only misses with the admission actually CONFIRMED are violations.
type MissOracle struct {
	recorder
	watch    map[string]bool
	admitted map[string]bool
}

// NewMissOracle creates the deadline oracle over "vm/task" keys.
func NewMissOracle(neverMiss []string) *MissOracle {
	o := &MissOracle{
		recorder: recorder{name: "deadline"},
		watch:    map[string]bool{},
		admitted: map[string]bool{},
	}
	for _, k := range neverMiss {
		o.watch[k] = true
	}
	return o
}

// Consume implements trace.Sink.
func (o *MissOracle) Consume(ev trace.Event) {
	if ev.Task == "" {
		return
	}
	key := ev.VM + "/" + ev.Task
	switch ev.Kind {
	case trace.Admit:
		if o.watch[key] {
			o.admitted[key] = true
		}
	case trace.Reject:
		delete(o.admitted, key)
	case trace.JobMiss:
		if o.admitted[key] {
			o.flag(ev.At, "%s missed its deadline by %v despite confirmed admission",
				key, simtime.Duration(ev.Arg))
		}
	}
}

// Finish implements Oracle.
func (o *MissOracle) Finish(simtime.Time) {}

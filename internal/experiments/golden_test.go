package experiments

import (
	"testing"

	"rtvirt/internal/simtime"
)

// TestGoldenNumbers locks the exact deterministic outputs of the key
// experiments at seed 1. The simulation is bit-for-bit reproducible, so
// any change here is a behavioural change that must be reviewed against
// EXPERIMENTS.md (and, if intended, re-recorded).
func TestGoldenNumbers(t *testing.T) {
	if testing.Short() {
		t.Skip("several experiment runs")
	}
	// Table 2: the NH-Dec configuration is fully determined by analysis.
	row := Table2(Figure3Config{Seed: 1, Duration: 5 * simtime.Second, PCPUs: 15, Requests: 10})
	if got := row.RTXenAllocated; !close3(got, 2.3278) {
		t.Errorf("Table2 RT-Xen allocated = %.4f, golden 2.3278", got)
	}
	if got := row.RTVirtAllocated; !close3(got, 2.1133) {
		t.Errorf("Table2 RTVirt allocated = %.4f, golden 2.1133", got)
	}
	if row.RTXenClaimed != 3 {
		t.Errorf("Table2 claimed = %.0f, golden 3", row.RTXenClaimed)
	}

	// Figure 5a headline at seed 1, 60s.
	cfg := DefaultFigure5Config()
	cfg.Duration = 60 * simtime.Second
	rows := Figure5a(cfg)
	byArm := map[Arm]Figure5Row{}
	for _, r := range rows {
		byArm[r.Arm] = r
	}
	if got := byArm[ArmRTVirt].P999; got != 57946 {
		t.Errorf("Fig5a RTVirt p99.9 = %dns, golden 57946ns", int64(got))
	}
	if got := byArm[ArmCredit].P999; got < simtime.Micros(500) {
		t.Errorf("Fig5a Credit p99.9 = %v, golden >500µs", got)
	}

	// Figure 1 baseline at seed 1.
	f1 := Figure1(1, 30*simtime.Second)
	if got := f1.Baseline["RTA2"]; !close3(got, 0.9995) {
		t.Errorf("Fig1 baseline RTA2 miss = %.4f, golden 0.9995", got)
	}
	if f1.RTVirt["RTA2"] != 0 {
		t.Errorf("Fig1 RTVirt RTA2 miss = %v, golden 0", f1.RTVirt["RTA2"])
	}
}

func close3(got, want float64) bool {
	d := got - want
	return d < 0.001 && d > -0.001
}

// Package runner executes independent simulation runs on a pool of OS
// threads and collects their results in deterministic input order.
//
// One simulation run (a scenario × scheduler stack × seed) is a
// self-contained unit: it builds its own sim.Simulator, its own event
// queue and its own RNG, and touches no package-level mutable state (the
// run-isolation contract, DESIGN.md §4). That makes the experiment sweeps
// embarrassingly parallel — Figure 3's 6 groups × 2 stacks, the ablation
// points, Robustness' seeds, Table 6's scenarios — and this package is the
// single fan-out primitive they all share.
//
// Results are always delivered in the order the specs were submitted, so
// the output of a parallel sweep is bit-for-bit identical to the
// sequential one; only the wall clock differs.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultParallel is the process-wide worker count used when a caller
// passes parallel <= 0. Zero means "use GOMAXPROCS". The CLIs set it from
// their -parallel flag; it is the only knob in the package and it is
// orchestration state, not simulation state, so it does not violate the
// run-isolation contract.
var defaultParallel atomic.Int64

// SetDefault fixes the worker count used when callers pass parallel <= 0.
// n <= 0 restores the GOMAXPROCS default.
func SetDefault(n int) {
	if n < 0 {
		n = 0
	}
	defaultParallel.Store(int64(n))
}

// Default reports the worker count used when callers pass parallel <= 0.
func Default() int {
	if n := defaultParallel.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Spec is one self-contained run: a label for diagnostics plus the
// closure that executes it.
type Spec struct {
	// Key identifies the run (e.g. "fig3/NH-Dec/seed1").
	Key string
	// Run executes one full simulation and returns its result. It must not
	// share mutable state with any other spec.
	Run func() any
}

// Result pairs a spec's key with its outcome. Results come back in the
// order the specs went in, regardless of completion order.
type Result struct {
	Key   string
	Value any
}

// Run executes the specs on parallel workers (parallel <= 0 means
// Default()) and returns their results in input order. A panic in any
// spec is captured and re-raised in the caller after all workers have
// drained, annotated with the spec's key.
func Run(specs []Spec, parallel int) []Result {
	out := make([]Result, len(specs))
	forEach(len(specs), parallel, func(i int) {
		out[i] = Result{Key: specs[i].Key, Value: specs[i].Run()}
	})
	return out
}

// Map applies fn to every item on parallel workers (parallel <= 0 means
// Default()) and returns the results in input order — the generic form of
// Run for typed sweeps.
func Map[T, R any](parallel int, items []T, fn func(T) R) []R {
	out := make([]R, len(items))
	forEach(len(items), parallel, func(i int) { out[i] = fn(items[i]) })
	return out
}

// MapIdx is Map for functions that also want the item's index (e.g. to
// derive a per-run seed).
func MapIdx[T, R any](parallel int, items []T, fn func(int, T) R) []R {
	out := make([]R, len(items))
	forEach(len(items), parallel, func(i int) { out[i] = fn(i, items[i]) })
	return out
}

// MapForked runs a warm-start sweep: every arm starts from the same
// warmed-up base world instead of replaying the shared prefix from scratch.
// fork(i, arm) derives arm i's private world from the base — typically
// core.System.Fork or cluster.Cluster.Fork — and run(i, arm, world)
// executes the arm's divergent tail. Forks happen sequentially on the
// calling goroutine, because deep-forking reads the shared base and
// concurrent forks of the same world would race; the runs then fan out
// like MapIdx. Results come back in arm order.
func MapForked[A, F, R any](parallel int, arms []A, fork func(int, A) F, run func(int, A, F) R) []R {
	forks := make([]F, len(arms))
	for i, a := range arms {
		forks[i] = fork(i, a)
	}
	return MapIdx(parallel, arms, func(i int, a A) R {
		return run(i, a, forks[i])
	})
}

// capturedPanic wraps a worker panic so the caller's re-panic keeps the
// original value visible.
type capturedPanic struct {
	index int
	value any
}

func (c capturedPanic) String() string {
	return fmt.Sprintf("runner: spec %d panicked: %v", c.index, c.value)
}

// forEach runs fn(0..n-1) on min(parallel, n) workers and blocks until
// all complete. parallel == 1 runs inline on the calling goroutine — the
// exact sequential code path, with no scheduling at all.
func forEach(n, parallel int, fn func(i int)) {
	if n == 0 {
		return
	}
	if parallel <= 0 {
		parallel = Default()
	}
	if parallel > n {
		parallel = n
	}
	if parallel == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		panicMu sync.Mutex
		panics  []capturedPanic
	)
	worker := func() {
		defer wg.Done()
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						panicMu.Lock()
						panics = append(panics, capturedPanic{index: i, value: r})
						panicMu.Unlock()
					}
				}()
				fn(i)
			}()
		}
	}
	wg.Add(parallel)
	for w := 0; w < parallel; w++ {
		go worker()
	}
	wg.Wait()
	if len(panics) > 0 {
		// Re-raise the lowest-index panic so the failure is deterministic.
		first := panics[0]
		for _, p := range panics[1:] {
			if p.index < first.index {
				first = p
			}
		}
		panic(first.String())
	}
}

package experiments

import (
	"strings"
	"testing"

	"rtvirt/internal/simtime"
)

func TestRobustnessAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	results := Robustness(4, 30*simtime.Second)
	if len(results) != 5 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Runs != 4 {
			t.Fatalf("%s: runs = %d", r.Claim, r.Runs)
		}
		if r.Held != r.Runs {
			t.Errorf("%s: held only %d/%d (median %s = %.2f)",
				r.Claim, r.Held, r.Runs, r.Unit, r.Median())
		}
		if r.Min() > r.Median() || r.Median() > r.Max() {
			t.Errorf("%s: spread not ordered", r.Claim)
		}
	}
	if !strings.Contains(RenderRobustness(results), "held") {
		t.Fatal("render broken")
	}
}

// Package clone provides the pointer-remapping context used to deep-copy a
// running simulation (sim.Simulator.Fork, core.System.Fork).
//
// A fork walks an object graph full of cycles: VCPUs point at their VM, the
// VM points back at its VCPUs, scheduler runqueues point at VCPUs, pending
// events point at handler state. Ctx memoizes every old→new pointer pair so
// each object is cloned exactly once and every reference in the copy lands
// on the copied object, never on the original.
//
// The cycle-safe cloning pattern every layer follows:
//
//	func cloneThing(ctx *clone.Ctx, t *Thing) *Thing {
//		if n, ok := ctx.Lookup(t); ok {
//			return n.(*Thing)
//		}
//		nt := &Thing{}      // allocate first,
//		ctx.Put(t, nt)      // memoize before filling fields,
//		nt.other = cloneOther(ctx, t.other) // then recurse freely.
//		return nt
//	}
package clone

import "fmt"

// Ctx is one fork's old→new pointer memo. It is not safe for concurrent
// use; each Fork call owns its own Ctx.
type Ctx struct {
	memo map[any]any
}

// New returns an empty cloning context.
func New() *Ctx { return &Ctx{memo: make(map[any]any)} }

// Lookup returns the clone previously registered for old, if any. Lookup of
// nil returns (nil, false).
func (c *Ctx) Lookup(old any) (any, bool) {
	if old == nil {
		return nil, false
	}
	n, ok := c.memo[old]
	return n, ok
}

// Put registers new as the clone of old. Registering the same old twice
// panics: it means two call sites each built their own copy, which would
// split one object into two diverging ones.
func (c *Ctx) Put(old, new any) {
	if old == nil {
		panic("clone: Put with nil original")
	}
	if _, dup := c.memo[old]; dup {
		panic("clone: object cloned twice")
	}
	c.memo[old] = new
}

// Len reports the number of memoized objects (diagnostics).
func (c *Ctx) Len() int { return len(c.memo) }

// Get returns the memoized clone of old with its concrete type. The zero
// value (typically a nil pointer) maps to itself. A lookup miss panics:
// forks walk owners before referrers, so a missing entry is a cloning-order
// bug, and silently aliasing the original would corrupt both worlds.
func Get[T comparable](c *Ctx, old T) T {
	var zero T
	if old == zero {
		return zero
	}
	n, ok := c.memo[old]
	if !ok {
		panic(fmt.Sprintf("clone: no clone registered for %T", old))
	}
	return n.(T)
}

// Command rtvirt-analyze performs offline admission analysis on a
// scenario file — the role CARTS plays in the paper's workflow. It reads
// the same JSON that cmd/rtvirt-sim runs and reports, without simulating:
//
//   - the minimal static RT-Xen interface (Θ, Π) for each VCPU, with
//     tasks packed first-fit-decreasing onto as few VCPUs as feasible;
//   - the reservation RTVirt's guest would size for the same VCPUs
//     (budget = ⌈ΣBW·minP⌉ + slack, §3.3);
//   - host-level admission: allocated bandwidth, claimed CPUs under both
//     the partitioned and gEDF analyses, and the bandwidth RTVirt saves.
//
// With -replay the arguments are instead JSONL telemetry streams written
// by `rtvirt-sim -trace`: each is re-ingested through the same sinks the
// simulator uses online (per-kind counters, P² quantiles, schedule
// digest) for offline inspection.
//
// The exit status gates CI: 0 when every scenario's own stack admits its
// workload, 1 when any does not.
//
// Usage:
//
//	rtvirt-analyze scenario.json
//	rtvirt-analyze -quantum-us 100 -json scenario.json
//	rtvirt-analyze -period-us 5000 scenario.json     # fixed server period
//	rtvirt-analyze -o report.txt a.json b.json       # several scenarios, one report
//	rtvirt-analyze -replay events.jsonl              # ingest a rtvirt-sim -trace stream
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"rtvirt/internal/analyze"
	"rtvirt/internal/scenario"
	"rtvirt/internal/simtime"
	"rtvirt/internal/trace"
)

func main() {
	var (
		quantumUS = flag.Int64("quantum-us", 1000, "server budget quantum in µs (CARTS uses 1000)")
		periodUS  = flag.Int64("period-us", 0, "fix every server period to this many µs (0 = sweep)")
		slackUS   = flag.Int64("slack-us", 500, "RTVirt per-VCPU budget slack in µs")
		pcpus     = flag.Int("pcpus", 0, "override the scenario's physical CPU count")
		jsonOut   = flag.Bool("json", false, "emit the full analysis as JSON")
		outPath   = flag.String("o", "", "write the report to this file instead of stdout")
		replay    = flag.Bool("replay", false, "treat arguments as JSONL telemetry streams from rtvirt-sim -trace")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: rtvirt-analyze [flags] <scenario.json> [more scenarios...]")
		fmt.Fprintln(os.Stderr, "       rtvirt-analyze -replay <events.jsonl> [more traces...]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = f
	}

	if *replay {
		for i, path := range flag.Args() {
			if flag.NArg() > 1 || i > 0 {
				fmt.Fprintf(out, "==== %s ====\n", path)
			}
			if err := replayTrace(out, path); err != nil {
				log.Fatal(err)
			}
			if i < flag.NArg()-1 {
				fmt.Fprintln(out)
			}
		}
		return
	}

	status := 0
	for i, path := range flag.Args() {
		if flag.NArg() > 1 {
			fmt.Fprintf(out, "==== %s ====\n", path)
		}
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		sc, err := scenario.Parse(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		if *pcpus > 0 {
			sc.PCPUs = *pcpus
		}

		h, err := analyze.Analyze(sc, analyze.Options{
			Quantum: simtime.Micros(*quantumUS),
			Period:  simtime.Micros(*periodUS),
			Slack:   simtime.Micros(*slackUS),
		})
		if err != nil {
			log.Fatal(err)
		}

		if *jsonOut {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(h); err != nil {
				log.Fatal(err)
			}
		} else {
			print(out, h)
		}
		if c := exitCode(sc, h); c > status {
			status = c
		}
		if i < flag.NArg()-1 {
			fmt.Fprintln(out)
		}
	}
	os.Exit(status)
}

// replayTrace re-ingests one JSONL telemetry stream through the standard
// sinks and writes counts, Arg quantiles and the schedule digest.
func replayTrace(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rec := &trace.Recorder{}
	stats := trace.NewStatsSink(0.99)
	n, err := trace.ReadJSONL(f, rec, stats)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "replayed %d events\n", n)
	fmt.Fprintf(w, "events: %s\n\n", stats.Counts())
	if err := stats.Report(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return trace.Summarize(rec).Write(w)
}

// exitCode gates CI on the admission verdict of the scenario's own stack:
// 0 when that stack admits the workload, 1 when it does not.
func exitCode(sc scenario.Scenario, h analyze.HostAnalysis) int {
	switch sc.Stack {
	case "rt-xen", "rtxen", "two-level-edf", "edf":
		if !h.RTXenAdmitted {
			return 1
		}
	default: // rtvirt (and credit, which shares the fluid accounting)
		if !h.RTVirtAdmitted {
			return 1
		}
	}
	return 0
}

func print(w io.Writer, h analyze.HostAnalysis) {
	for _, vm := range h.VMs {
		fmt.Fprintf(w, "VM %-14s tasks=%.3f CPUs", vm.Name, vm.TaskBW)
		if vm.Background > 0 {
			fmt.Fprintf(w, " (+%d background)", vm.Background)
		}
		fmt.Fprintln(w)
		if len(vm.RTXen) > vm.DeclaredVCPUs {
			fmt.Fprintf(w, "  note: needs %d VCPUs, scenario declares %d\n",
				len(vm.RTXen), vm.DeclaredVCPUs)
		}
		for i := range vm.RTXen {
			x, r := vm.RTXen[i], vm.RTVirt[i]
			fmt.Fprintf(w, "  vcpu%d  tasks %v\n", i, x.Tasks)
			fmt.Fprintf(w, "         rt-xen interface %v = %.3f CPUs\n", x.Interface, x.Bandwidth())
			fmt.Fprintf(w, "         rtvirt reserve   %v = %.3f CPUs\n", r.Interface, r.Bandwidth())
		}
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "host: %d physical CPUs, %.3f CPUs of real-time demand\n", h.PCPUs, h.TaskBW)
	fmt.Fprintf(w, "  rt-xen  allocated %.3f CPUs, claimed %d (partitioned)",
		h.RTXenAllocated, h.RTXenClaimedFFD)
	if h.RTXenClaimedGEDF > 0 {
		fmt.Fprintf(w, " / %d (gEDF)", h.RTXenClaimedGEDF)
	}
	fmt.Fprintf(w, " — %s\n", verdict(h.RTXenAdmitted))
	fmt.Fprintf(w, "  rtvirt  allocated %.3f CPUs — %s\n", h.RTVirtAllocated, verdict(h.RTVirtAdmitted))
	fmt.Fprintf(w, "  rtvirt bandwidth saving vs static interfaces: %.1f%%\n", h.SavingPct)
}

func verdict(ok bool) string {
	if ok {
		return "ADMITTED"
	}
	return "REJECTED"
}

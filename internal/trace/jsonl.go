package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// JSONL is a streaming sink that writes one JSON object per line — the
// interchange format for `rtvirt-sim -trace out.jsonl`, re-ingested by
// `rtvirt-analyze` via ReadJSONL for offline replay. Unlike a Recorder it
// never drops events: memory use is O(1) regardless of run length.
type JSONL struct {
	enc *json.Encoder
	buf *bufio.Writer
	err error
}

// NewJSONL wraps w in a buffered JSONL sink. Call Flush when done.
func NewJSONL(w io.Writer) *JSONL {
	buf := bufio.NewWriter(w)
	return &JSONL{enc: json.NewEncoder(buf), buf: buf}
}

// Consume implements Sink. The first write error sticks and suppresses
// further output; check it with Flush.
func (j *JSONL) Consume(ev Event) {
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(ev)
}

// Flush drains the buffer and reports the first error encountered.
func (j *JSONL) Flush() error {
	if j.err != nil {
		return j.err
	}
	return j.buf.Flush()
}

// ReadJSONL parses a stream written by the JSONL sink, delivering each
// event to every sink in order — the offline equivalent of re-running the
// simulation with those sinks attached. It returns the number of events
// replayed.
func ReadJSONL(r io.Reader, sinks ...Sink) (int, error) {
	dec := json.NewDecoder(r)
	n := 0
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				return n, nil
			}
			return n, fmt.Errorf("trace: event %d: %w", n+1, err)
		}
		for _, s := range sinks {
			s.Consume(ev)
		}
		n++
	}
}

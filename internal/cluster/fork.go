package cluster

import (
	"rtvirt/internal/clone"
	"rtvirt/internal/guest"
	"rtvirt/internal/sim"
	"rtvirt/internal/task"
)

// Fork deep-copies the cluster — every host system on the shared clock, all
// deployments (including pending and mid-migration ones), and the pending
// migration/recovery timers — into an independent replica. See
// core.System.Fork for the contract.
func (c *Cluster) Fork() (*Cluster, *clone.Ctx, error) {
	ctx := clone.New()
	if _, err := c.Sim.Fork(ctx); err != nil {
		return nil, nil, err
	}
	return clone.Get(ctx, c), ctx, nil
}

// ForkHandler implements sim.Handler. The cluster registers itself before
// its hosts, so this runs first in a fork and drives the cloning of every
// host system; the host and guest handlers that follow memo-hit.
func (c *Cluster) ForkHandler(ctx *clone.Ctx) sim.Handler {
	if n, ok := ctx.Lookup(c); ok {
		return n.(*Cluster)
	}
	nc := &Cluster{
		Cfg:         c.Cfg,
		Sim:         clone.Get(ctx, c.Sim),
		handlerID:   c.handlerID,
		nextDepID:   c.nextDepID,
		nextTaskID:  c.nextTaskID,
		started:     c.started,
		deployments: make(map[string]*Deployment, len(c.deployments)),
		byID:        make(map[int32]*Deployment, len(c.byID)),
		inbound:     make(map[*Host]float64, len(c.inbound)),
	}
	ctx.Put(c, nc)
	nc.Hosts = make([]*Host, len(c.Hosts))
	for i, h := range c.Hosts {
		nh := &Host{Name: h.Name, cluster: nc, failed: h.failed}
		ctx.Put(h, nh)
		nh.Sys = h.Sys.ForkWith(ctx)
		nc.Hosts[i] = nh
	}
	for name, d := range c.deployments {
		nd := cloneDeployment(ctx, d)
		nc.deployments[name] = nd
		nc.byID[nd.id] = nd
	}
	for h, bw := range c.inbound {
		nc.inbound[clone.Get(ctx, h)] = bw
	}
	return nc
}

func cloneDeployment(ctx *clone.Ctx, d *Deployment) *Deployment {
	if n, ok := ctx.Lookup(d); ok {
		return n.(*Deployment)
	}
	nd := &Deployment{
		Spec:          d.Spec,
		Host:          clone.Get(ctx, d.Host),
		id:            d.id,
		Migrations:    d.Migrations,
		Failovers:     d.Failovers,
		BlackoutTotal: d.BlackoutTotal,
		migrating:     d.migrating,
		pending:       d.pending,
	}
	ctx.Put(d, nd)
	if d.guest != nil {
		// Memo-aware: a live guest was cloned with its host; a guest torn
		// down by Shutdown (mid-migration, failed host) is cloned here so
		// its task statistics survive into the fork.
		nd.guest = d.guest.ForkDriver(ctx).(*guest.OS)
	}
	nd.tasks = make([]*task.Task, len(d.tasks))
	for i, t := range d.tasks {
		nd.tasks[i] = task.Clone(ctx, t)
	}
	return nd
}

// guestOS asserts the interface identity used above at compile time.
var _ sim.Handler = (*guest.OS)(nil)

package experiments

import (
	"reflect"
	"testing"

	"rtvirt/internal/simtime"
)

// shortAttackConfig keeps the suite affordable in tier-1: 3 simulated
// seconds is ~300 tick periods, plenty for stable bandwidth figures.
func shortAttackConfig() AttackConfig {
	return AttackConfig{Seed: 1, Duration: simtime.Seconds(3)}
}

func findRow(t *testing.T, res AttackResult, sched, acct string, capped, learned bool) AttackRow {
	t.Helper()
	for _, r := range res.Rows {
		if r.Scheduler == sched && r.Accounting == acct && (r.CapBW > 0) == capped && r.Learned == learned {
			return r
		}
	}
	t.Fatalf("no row %s/%s capped=%v learned=%v in %+v", sched, acct, capped, learned, res.Rows)
	return AttackRow{}
}

// TestAttackStolenBandwidth pins the experiment's headline semantics:
// exact accounting (Credit settle-on-switch, RT-Xen, DP-WRAP) never lets
// the tick evader steal, while the deliberately-naive tick-sampled
// double leaks most of a CPU — the negative test the StolenBWMeter
// exists to flag — and defeats an explicit cap.
func TestAttackStolenBandwidth(t *testing.T) {
	res := Attacks(shortAttackConfig())
	t.Log("\n" + RenderAttacks(res))

	// Exact accounting: charged ≈ obtained everywhere, nothing stolen.
	for _, r := range res.Rows {
		if r.Accounting != "exact" {
			continue
		}
		if r.StolenBW > 0.01 || r.StolenBW < -0.01 {
			t.Errorf("%s/exact: stolen bandwidth %.3f, want ~0", r.Scheduler, r.StolenBW)
		}
	}

	// Sampled accounting: the attacker obtains a large share and is
	// charged almost nothing for it.
	samp := findRow(t, res, "credit", "sampled", false, false)
	if samp.StolenBW < 0.2 {
		t.Errorf("credit/sampled: stolen bandwidth %.3f, want > 0.2 (obtained %.3f charged %.3f)",
			samp.StolenBW, samp.ObtainedBW, samp.ChargedBW)
	}
	if samp.Bursts < 100 {
		t.Errorf("credit/sampled: only %d bursts (resyncs %d), attack never settled", samp.Bursts, samp.Resyncs)
	}

	// The cap holds under exact accounting and is defeated under sampled:
	// credits only drain when the scheduler observes the burn.
	exCap := findRow(t, res, "credit", "exact", true, false)
	if exCap.ObtainedBW > attackerCap.Bandwidth()+0.1 {
		t.Errorf("credit/exact capped: obtained %.3f, want ≤ cap %.2f (+slack)",
			exCap.ObtainedBW, attackerCap.Bandwidth())
	}
	sampCap := findRow(t, res, "credit", "sampled", true, false)
	if sampCap.ObtainedBW < attackerCap.Bandwidth()+0.2 {
		t.Errorf("credit/sampled capped: obtained %.3f, want ≫ cap %.2f",
			sampCap.ObtainedBW, attackerCap.Bandwidth())
	}

	// The learning row must recover the real 10ms tick period from
	// latency spikes alone.
	learn := findRow(t, res, "credit", "sampled", false, true)
	if learn.LearnedPeriodUS < 9000 || learn.LearnedPeriodUS > 11000 {
		t.Errorf("learned tick period %dµs, want ~10000µs (probes %d)",
			learn.LearnedPeriodUS, learn.Probes)
	}
}

// TestAttackConvergence pins the adaptive controller halves of the
// suite: the under-provisioned slice grows until the reservation covers
// its 800µs demand (plus the backlog accrued while converging), then
// holds; and a full host triggers backoff instead of a rejection storm.
func TestAttackConvergence(t *testing.T) {
	res := Attacks(shortAttackConfig())

	// The slice must end up covering the demand net of the 500µs VCPU
	// slack, and must not run away to the period ceiling.
	if res.ConvergedSliceUS < 300 || res.ConvergedSliceUS > 3000 {
		t.Errorf("converged slice %dµs, want within [300,3000] (incs %d)",
			res.ConvergedSliceUS, res.ConvIncs)
	}
	if res.ConvIncs < 5 {
		t.Errorf("convergence took %d increases, want ≥ 5 (100µs×1.25ⁿ)", res.ConvIncs)
	}
	if n := len(res.Convergence); n < 10 {
		t.Fatalf("only %d convergence points recorded", n)
	}
	// LowFraction is below the steady-state response, so the trace must
	// be monotone non-decreasing: grow, then hold — no oscillation.
	for i := 1; i < len(res.Convergence); i++ {
		if res.Convergence[i].SliceUS < res.Convergence[i-1].SliceUS {
			t.Errorf("slice shrank mid-convergence: %dµs → %dµs at t=%dms",
				res.Convergence[i-1].SliceUS, res.Convergence[i].SliceUS, res.Convergence[i].TimeMS)
		}
	}
	last := res.Convergence[len(res.Convergence)-1]
	if last.WindowMaxUS > 6000 {
		t.Errorf("final window max %dµs still above the 6000µs target", last.WindowMaxUS)
	}

	if res.BackoffRejects < 2 {
		t.Errorf("backoff world saw %d rejects, want ≥ 2", res.BackoffRejects)
	}
	if res.BackoffSkipped < res.BackoffRejects {
		t.Errorf("backoff skipped %d windows for %d rejects — backoff not engaging",
			res.BackoffSkipped, res.BackoffRejects)
	}
}

// TestAttackDeterminism: the whole suite is a pure function of its
// config.
func TestAttackDeterminism(t *testing.T) {
	cfg := AttackConfig{Seed: 7, Duration: simtime.Seconds(1)}
	a, b := Attacks(cfg), Attacks(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config, different results:\n%+v\n%+v", a, b)
	}
}

package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rtvirt/internal/experiments"
	"rtvirt/internal/metrics"
	"rtvirt/internal/simtime"
)

func TestWriteCDF(t *testing.T) {
	var buf bytes.Buffer
	pts := []metrics.CDFPoint{
		{Latency: simtime.Micros(50), Fraction: 0.5},
		{Latency: simtime.Micros(100), Fraction: 1.0},
	}
	if err := WriteCDF(&buf, pts); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[1][0] != "50.000" || rows[2][1] != "1.000000" {
		t.Fatalf("cdf rows: %v", rows)
	}
}

func TestDirArtifacts(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDir(filepath.Join(dir, "out"))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.JSON("x.json", map[string]int{"a": 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.CSV("y.csv", []string{"h"}, [][]string{{"1"}, {"2"}}); err != nil {
		t.Fatal(err)
	}
	if len(d.Written) != 2 {
		t.Fatalf("written: %v", d.Written)
	}
	raw, err := os.ReadFile(filepath.Join(d.Path(), "x.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]int
	if err := json.Unmarshal(raw, &m); err != nil || m["a"] != 1 {
		t.Fatalf("json round-trip: %v %v", m, err)
	}
}

func TestFigureWriters(t *testing.T) {
	d, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f3 := []experiments.Figure3Row{{Group: "H-Equiv", RTAReq: 2.07, RTXenClaimed: 3, RTXenAllocated: 2.28, RTVirtAllocated: 2.12}}
	if err := d.Figure3(f3); err != nil {
		t.Fatal(err)
	}
	f4 := experiments.Figure4Result{
		PerVM: map[string][]experiments.AllocationSample{
			"vm1": {{At: 0, CPUPercent: 100}},
		},
		RTAsRun: 3, AvgAllocated: 2, PeakAllocated: 3,
	}
	if err := d.Figure4(f4); err != nil {
		t.Fatal(err)
	}
	f5 := []experiments.Figure5Row{{
		Arm:  experiments.ArmRTVirt,
		P999: simtime.Micros(60),
		CDF:  []metrics.CDFPoint{{Latency: simtime.Micros(60), Fraction: 1}},
	}}
	if err := d.Figure5("fig5a", f5); err != nil {
		t.Fatal(err)
	}
	t4 := []experiments.Table4Row{{Scheduler: "RTVirt", P90: simtime.Micros(52), P999: simtime.Micros(58)}}
	if err := d.Table4(t4); err != nil {
		t.Fatal(err)
	}
	t6 := []experiments.Table6Row{{Framework: "RTVirt", RTAsAdmitted: 100, VMs: 10, VCPUs: 20}}
	if err := d.Table6("table6-multi.csv", t6); err != nil {
		t.Fatal(err)
	}
	want := []string{"fig3.csv", "fig3.json", "fig4.csv", "fig4.json",
		"fig5a-RTVirt.csv", "fig5a.json", "table4.csv", "table6-multi.csv"}
	for _, w := range want {
		found := false
		for _, got := range d.Written {
			if got == w {
				found = true
			}
		}
		if !found {
			t.Errorf("artifact %s not written (have %v)", w, d.Written)
		}
	}
}

func TestMoreWriters(t *testing.T) {
	d, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Ablations("abl.csv", []experiments.AblationRow{{Label: "x", MissPct: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Robustness([]experiments.RobustnessResult{{Claim: "c", Held: 1, Runs: 1, Values: []float64{2}}}); err != nil {
		t.Fatal(err)
	}
	if err := d.IO([]experiments.IORow{{Requests: 5}}); err != nil {
		t.Fatal(err)
	}
	if len(d.Written) != 3 {
		t.Fatalf("written: %v", d.Written)
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("RT-Xen A"); got != "RT_Xen_A" {
		t.Fatalf("sanitize = %q", got)
	}
	if !strings.HasPrefix(sanitize("abc123"), "abc123") {
		t.Fatal("alnum mangled")
	}
}

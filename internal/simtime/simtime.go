// Package simtime defines the time base used throughout the simulator.
//
// Simulated time is an integer count of nanoseconds since the start of the
// simulation. Integer time keeps every run exactly reproducible: there is
// no floating-point drift, and two events scheduled for the same instant
// compare equal on every platform.
package simtime

import (
	"fmt"
	"math"
)

// Time is an absolute instant in simulated time, in nanoseconds since the
// simulation epoch (t = 0).
type Time int64

// Duration is a span of simulated time in nanoseconds. It mirrors
// time.Duration but is a distinct type so host-clock values cannot be mixed
// into the simulation by accident.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// Never is a sentinel Time later than any reachable instant. It is used as
// "no deadline" / "no event scheduled".
const Never Time = math.MaxInt64

// Infinite is a sentinel Duration longer than any reachable span.
const Infinite Duration = math.MaxInt64

// Micros returns a Duration of n microseconds.
func Micros(n int64) Duration { return Duration(n) * Microsecond }

// Millis returns a Duration of n milliseconds.
func Millis(n int64) Duration { return Duration(n) * Millisecond }

// Seconds returns a Duration of n seconds.
func Seconds(n int64) Duration { return Duration(n) * Second }

// Add returns t shifted by d, saturating at Never instead of overflowing.
func (t Time) Add(d Duration) Time {
	if t == Never || d == Infinite {
		return Never
	}
	s := int64(t) + int64(d)
	if d > 0 && s < int64(t) { // overflow
		return Never
	}
	return Time(s)
}

// Sub returns the duration from u to t (t - u).
func (t Time) Sub(u Time) Duration { return Duration(int64(t) - int64(u)) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Micros reports t as a (possibly fractional) number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis reports t as a (possibly fractional) number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Seconds reports t as a (possibly fractional) number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports d as a (possibly fractional) number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Millis reports d as a (possibly fractional) number of milliseconds.
func (d Duration) Millis() float64 { return float64(d) / float64(Millisecond) }

// Seconds reports d as a (possibly fractional) number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// String formats the instant using the most natural unit.
func (t Time) String() string {
	if t == Never {
		return "never"
	}
	return Duration(t).String()
}

// String formats the duration using the most natural unit.
func (d Duration) String() string {
	if d == Infinite {
		return "inf"
	}
	neg := ""
	if d < 0 {
		neg, d = "-", -d
	}
	switch {
	case d == 0:
		return "0s"
	case d < Microsecond:
		return fmt.Sprintf("%s%dns", neg, int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%s%.3gµs", neg, d.Micros())
	case d < Second:
		return fmt.Sprintf("%s%.4gms", neg, d.Millis())
	default:
		return fmt.Sprintf("%s%.4gs", neg, d.Seconds())
	}
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// MinDur returns the shorter of a and b.
func MinDur(a, b Duration) Duration {
	if a < b {
		return a
	}
	return b
}

// MaxDur returns the longer of a and b.
func MaxDur(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}

// Clamp limits d to the inclusive range [lo, hi].
func Clamp(d, lo, hi Duration) Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}

// ScaleDuration returns d scaled by num/den using integer arithmetic that
// rounds down. den must be > 0.
func ScaleDuration(d Duration, num, den int64) Duration {
	if den <= 0 {
		panic("simtime: ScaleDuration with non-positive denominator")
	}
	// Split into quotient and remainder to avoid overflow for the
	// magnitudes used in the simulator (durations well under 2^40 ns and
	// bandwidth numerators under 2^20).
	q, r := int64(d)/den, int64(d)%den
	return Duration(q*num + r*num/den)
}

// ScaleDurationCeil is ScaleDuration rounding up. Reservations and
// allocations round up so integer truncation can never starve a task of
// the last nanoseconds it needs at exact utilization.
func ScaleDurationCeil(d Duration, num, den int64) Duration {
	if den <= 0 {
		panic("simtime: ScaleDurationCeil with non-positive denominator")
	}
	q, r := int64(d)/den, int64(d)%den
	rest := r * num
	up := rest / den
	if rest%den != 0 {
		up++
	}
	return Duration(q*num + up)
}

// Package rtvirt is a library-scale reproduction of "RTVirt: Enabling
// Time-sensitive Computing on Virtualized Systems through Cross-layer CPU
// Scheduling" (Zhao & Cabrera, EuroSys 2018).
//
// RTVirt lets the two levels of schedulers on a virtualized host — the
// hypervisor's VM scheduler and each guest OS's process scheduler —
// exchange scheduling information through a paravirtual channel (a
// hypercall plus shared memory), so that an optimal multiprocessor
// scheduler (DP-WRAP) at the host can meet the deadlines of the real-time
// applications running inside the VMs while using practically all of the
// host's CPU bandwidth.
//
// Because a hypervisor cannot live inside a garbage-collected runtime,
// this package ships the complete system on a deterministic discrete-event
// simulation of a multiprocessor VM host: the VMM kernel, cross-layer
// guests with pEDF process scheduling, the DP-WRAP host scheduler, and the
// baselines the paper evaluates against (RT-Xen's gEDF + deferrable
// servers with CARTS/DMPR-style offline analysis, plain two-level EDF, and
// Xen's Credit scheduler). Every table and figure of the paper's
// evaluation has a driver in the Experiments section of this API.
//
// # Quick start
//
//	sys := rtvirt.NewSystem(rtvirt.DefaultConfig(rtvirt.StackRTVirt))
//	vm, _ := sys.NewGuest("vm0", 1)
//	app, _ := rtvirt.NewRTApp(vm, 0, "sensor",
//		rtvirt.Params{Slice: 2 * rtvirt.Millisecond, Period: 10 * rtvirt.Millisecond})
//	sys.Start()
//	app.Start(0)
//	sys.Run(10 * rtvirt.Second)
//	fmt.Println(app.Task.Stats())
//
// See examples/ for runnable scenarios and EXPERIMENTS.md for the
// paper-versus-measured record.
package rtvirt

import (
	"io"

	"rtvirt/internal/analyze"
	"rtvirt/internal/clone"
	"rtvirt/internal/cluster"
	"rtvirt/internal/core"
	"rtvirt/internal/csa"
	"rtvirt/internal/dist"
	"rtvirt/internal/experiments"
	"rtvirt/internal/guest"
	"rtvirt/internal/hv"
	"rtvirt/internal/metrics"
	"rtvirt/internal/scenario"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
	"rtvirt/internal/trace"
	"rtvirt/internal/workload"
)

// Time and duration primitives of the simulation (integer nanoseconds).
type (
	// Time is an absolute simulated instant.
	Time = simtime.Time
	// Duration is a span of simulated time.
	Duration = simtime.Duration
)

// Common durations.
const (
	Nanosecond  = simtime.Nanosecond
	Microsecond = simtime.Microsecond
	Millisecond = simtime.Millisecond
	Second      = simtime.Second
	Minute      = simtime.Minute
)

// Task model.
type (
	// Task is a real-time or background application thread inside a VM.
	Task = task.Task
	// Params is a timeliness requirement: Slice of CPU every Period.
	Params = task.Params
	// Job is one activation of a task.
	Job = task.Job
	// TaskStats accumulates a task's deadline outcomes.
	TaskStats = task.Stats
)

// Task kinds.
const (
	Periodic   = task.Periodic
	Sporadic   = task.Sporadic
	Background = task.Background
)

// NewTask creates a task with the given timeliness requirement.
func NewTask(id int, name string, kind task.Kind, p Params) *Task {
	return task.New(id, name, kind, p)
}

// System assembly.
type (
	// System is a complete simulated virtualization host.
	System = core.System
	// SystemConfig selects the stack, platform size and cost model.
	SystemConfig = core.Config
	// Stack selects the scheduling architecture.
	Stack = core.Stack
	// Guest is a guest operating system inside one VM.
	Guest = guest.OS
	// GuestOpts tunes guest creation.
	GuestOpts = core.GuestOpts
	// Reservation is a host-level CPU reservation (budget, period).
	Reservation = hv.Reservation
	// CostModel holds the platform costs charged by the simulation.
	CostModel = hv.CostModel
	// Cost is one distribution-valued cost term of the model.
	Cost = hv.Cost
)

// ConstCost is a fixed cost term; constant terms never draw from the
// per-host cost RNG stream.
func ConstCost(d Duration) Cost { return hv.ConstCost(d) }

// DistCost is a cost term sampled from a duration distribution on the
// dedicated per-host cost stream.
func DistCost(d DurationDist) Cost { return hv.DistCost(d) }

// CalibratedCosts returns the distribution-valued, per-cause cost model
// (heavy-tailed migrations and cold switches, lognormal hypercalls).
func CalibratedCosts() CostModel { return hv.CalibratedCosts() }

// Stacks.
const (
	// StackRTVirt is the paper's system: cross-layer pEDF guests over the
	// DP-WRAP host scheduler.
	StackRTVirt = core.RTVirt
	// StackRTXen is the primary baseline: gEDF + deferrable servers.
	StackRTXen = core.RTXen
	// StackTwoLevelEDF is the uncoordinated baseline of Figure 1.
	StackTwoLevelEDF = core.TwoLevelEDF
	// StackCredit is Xen's default proportional-share scheduler.
	StackCredit = core.Credit
)

// NewSystem builds a simulated host with the configured stack.
func NewSystem(cfg SystemConfig) *System { return core.NewSystem(cfg) }

// DefaultConfig mirrors the paper's evaluation platform (15 PCPUs, 500µs
// budget slack, the §4 cost constants).
func DefaultConfig(stack Stack) SystemConfig { return core.DefaultConfig(stack) }

// DefaultCosts returns the cost model used throughout the evaluation.
func DefaultCosts() CostModel { return hv.DefaultCosts() }

// CloneCtx is the memo of a deep fork: System.Fork and Cluster.Fork return
// one mapping every object of the original world to its replica.
type CloneCtx = clone.Ctx

// CloneGet remaps a reference the caller holds (a task, guest or workload
// driver) to its replica in a forked world. It panics if v was not part of
// the forked object graph.
func CloneGet[T comparable](ctx *CloneCtx, v T) T { return clone.Get(ctx, v) }

// Workloads.
type (
	// RTApp is the rt-app periodic load generator of §4.2.
	RTApp = workload.RTApp
	// SporadicClient triggers a sporadic RTA over the network (§4.2).
	SporadicClient = workload.SporadicClient
	// VideoStream is a VLC transcoding thread (§4.3, Table 3).
	VideoStream = workload.VideoStream
	// VideoProfile is one row of Table 3.
	VideoProfile = workload.VideoProfile
	// Memcached is a memcached VM under a Mutilate-style load (§4.4).
	Memcached = workload.Memcached
	// MemcachedConfig tunes the memcached workload.
	MemcachedConfig = workload.MemcachedConfig
	// CPUHog is a best-effort CPU-bound process.
	CPUHog = workload.CPUHog
	// IOApp is a request-driven app mixing CPU phases with I/O waits.
	IOApp = workload.IOApp
	// IOAppConfig tunes the I/O-bound workload.
	IOAppConfig = workload.IOAppConfig
	// DurationDist is a random duration source for workload generators.
	DurationDist = dist.Duration
)

// NewRTApp registers a periodic rt-app task on g.
func NewRTApp(g *Guest, id int, name string, p Params) (*RTApp, error) {
	return workload.NewRTApp(g, id, name, p)
}

// NewSporadicClient registers a sporadic task on g driven by a client with
// the given inter-arrival distribution.
func NewSporadicClient(g *Guest, id int, name string, p Params, inter DurationDist, requests int) (*SporadicClient, error) {
	return workload.NewSporadicClient(g, id, name, p, inter, requests)
}

// NewVideoStream registers a transcoding RTA for the given frame rate.
func NewVideoStream(g *Guest, id, fps int) (*VideoStream, error) {
	return workload.NewVideoStream(g, id, fps)
}

// NewMemcached registers a memcached RTA on g.
func NewMemcached(g *Guest, id int, cfg MemcachedConfig) (*Memcached, error) {
	return workload.NewMemcached(g, id, cfg)
}

// DefaultMemcachedConfig mirrors §4.4 (500µs SLO, 100 QPS, 58µs slice).
func DefaultMemcachedConfig() MemcachedConfig { return workload.DefaultMemcachedConfig() }

// NewIOApp registers an I/O-bound request application on g: RTVirt
// guarantees its CPU phases; the I/O waits are outside the contract (§1).
func NewIOApp(g *Guest, id int, cfg IOAppConfig) (*IOApp, error) {
	return workload.NewIOApp(g, id, cfg)
}

// DefaultIOAppConfig models a storage-backed RPC (30µs + 80µs CPU around a
// ~200µs device wait, 1ms SLO).
func DefaultIOAppConfig() IOAppConfig { return workload.DefaultIOAppConfig() }

// NewCPUHog registers a background CPU-bound task on g.
func NewCPUHog(g *Guest, id int, name string) (*CPUHog, error) {
	return workload.NewCPUHog(g, id, name)
}

// NewBackgroundTask creates a best-effort task with no deadline.
func NewBackgroundTask(id int, name string) *Task { return task.NewBackground(id, name) }

// AttachSporadicClient wires an arrival client onto an already-registered
// sporadic task.
func AttachSporadicClient(g *Guest, t *Task, inter DurationDist, requests int) *SporadicClient {
	return workload.NewSporadicClientFor(g, t, inter, requests)
}

// VideoProfiles reproduces Table 3 of the paper.
func VideoProfiles() []VideoProfile { return workload.VideoProfiles }

// UniformDist returns a uniform duration distribution on [lo, hi].
func UniformDist(lo, hi Duration) DurationDist { return dist.Uniform{Lo: lo, Hi: hi} }

// NormalDist returns a normal duration distribution clamped at min.
func NormalDist(mean, stddev, min Duration) DurationDist {
	return dist.Normal{MeanD: mean, Stddev: stddev, Min: min}
}

// Metrics.
type (
	// LatencyRecorder stores latency samples with exact percentiles.
	LatencyRecorder = metrics.LatencyRecorder
	// MissSummary aggregates deadline outcomes across tasks.
	MissSummary = metrics.MissSummary
	// CDFPoint is one point of an empirical latency CDF.
	CDFPoint = metrics.CDFPoint
	// P2Quantile tracks one quantile of an unbounded stream in O(1) memory.
	P2Quantile = metrics.P2Quantile
)

// NewP2Quantile creates a streaming estimator for quantile p in (0,1).
func NewP2Quantile(p float64) *P2Quantile { return metrics.NewP2Quantile(p) }

// SummarizeMisses aggregates deadline statistics over tasks.
func SummarizeMisses(tasks []*Task) MissSummary { return workload.MissSummary(tasks) }

// Offline analysis (the CARTS/DMPR stand-in used to configure RT-Xen).
type (
	// Interface is a periodic resource abstraction (Θ every Π).
	Interface = csa.Interface
)

// BestInterface searches candidate periods for the minimal-bandwidth CSA
// interface of an EDF task set, at the given budget resolution.
func BestInterface(tasks []Params, candidates []Duration, quantum Duration) (Interface, bool) {
	return csa.BestInterfaceQ(tasks, candidates, quantum)
}

// InterfaceCandidates returns the default period grid for BestInterface.
func InterfaceCandidates(tasks []Params) []Duration { return csa.DefaultCandidates(tasks) }

// Declarative scenarios (cmd/rtvirt-sim's engine).
type (
	// Scenario is a JSON-describable experiment: a stack, a host, VMs
	// and their tasks.
	Scenario = scenario.Scenario
	// ScenarioVM describes one VM of a scenario.
	ScenarioVM = scenario.VM
	// ScenarioTask describes one task of a scenario VM.
	ScenarioTask = scenario.TaskSpec
	// ScenarioServer is an explicit (budget, period) VCPU server.
	ScenarioServer = scenario.ServerSpec
	// ScenarioOptions tunes RunScenario (e.g. schedule tracing).
	ScenarioOptions = scenario.Options
	// ScenarioResult is the per-task and host-level outcome.
	ScenarioResult = scenario.Result
)

// ParseScenario decodes a scenario from JSON, rejecting unknown fields.
func ParseScenario(r io.Reader) (Scenario, error) { return scenario.Parse(r) }

// RunScenario simulates a scenario and reports per-task timeliness plus
// scheduler overhead.
func RunScenario(sc Scenario, opt ScenarioOptions) (*ScenarioResult, error) {
	return scenario.Run(sc, opt)
}

// Scenario admission analysis (cmd/rtvirt-analyze's engine).
type (
	// AnalyzeOptions tunes the offline admission analysis.
	AnalyzeOptions = analyze.Options
	// HostAnalysis is a whole-scenario admission plan.
	HostAnalysis = analyze.HostAnalysis
	// VMAnalysis is one VM's VCPU plans under both stacks.
	VMAnalysis = analyze.VMAnalysis
	// VCPUPlan is one VCPU's tasks plus its reserved interface.
	VCPUPlan = analyze.VCPUPlan
)

// AnalyzeScenario derives per-VCPU interfaces (static RT-Xen and RTVirt
// §3.3 sizing) and host-level admission for a scenario without simulating
// it. The same JSON drives RunScenario.
func AnalyzeScenario(sc Scenario, opt AnalyzeOptions) (HostAnalysis, error) {
	return analyze.Analyze(sc, opt)
}

// Schedule tracing.
type (
	// TraceRecorder accumulates scheduling events for offline inspection.
	TraceRecorder = trace.Recorder
	// TraceRecord is one scheduling event.
	TraceRecord = trace.Record
	// TraceEvent is the typed telemetry event every layer emits.
	TraceEvent = trace.Event
	// TraceKind classifies a telemetry event.
	TraceKind = trace.Kind
	// TraceSink consumes telemetry events from the host's bus.
	TraceSink = trace.Sink
	// TraceCounts is a per-kind event counter sink.
	TraceCounts = trace.Counts
	// TraceSummary is the structural digest of a trace: per-VCPU runtime,
	// dispatches and migrations, per-PCPU utilization.
	TraceSummary = trace.Summary
)

// SummarizeTrace digests a recorded schedule; it cross-checks the kernel's
// own accounting meters.
func SummarizeTrace(rec *TraceRecorder) TraceSummary { return trace.Summarize(rec) }

// AttachTracer records sys's scheduling events (dispatches, preemptions,
// completions, misses, hypercalls, migrations, budget transitions) into
// rec. Use rec.WriteCSV/WriteJSON or rec.Timeline afterwards. For custom
// consumers attach any TraceSink with sys.Host.TraceTo.
func AttachTracer(sys *System, rec *TraceRecorder) {
	sys.Host.TraceTo(rec)
}

// Multi-host extension (§6): placement and live migration.
type (
	// Cluster is a set of RTVirt hosts under one placement controller.
	Cluster = cluster.Cluster
	// ClusterConfig describes a cluster.
	ClusterConfig = cluster.Config
	// ClusterHost is one member host.
	ClusterHost = cluster.Host
	// Deployment is a placed VM.
	Deployment = cluster.Deployment
	// VMSpec describes a deployable VM.
	VMSpec = cluster.VMSpec
	// ClusterTaskSpec describes one application of a VM deployment.
	ClusterTaskSpec = cluster.TaskSpec
	// Policy selects the placement heuristic.
	Policy = cluster.Policy
)

// Placement policies.
const (
	FirstFit = cluster.FirstFit
	BestFit  = cluster.BestFit
	WorstFit = cluster.WorstFit
)

// NewCluster builds a multi-host cluster on one simulated clock.
func NewCluster(cfg ClusterConfig) *Cluster { return cluster.New(cfg) }

// ClusterDefaults returns a 2×4-CPU RTVirt cluster configuration.
func ClusterDefaults() ClusterConfig { return cluster.DefaultConfig() }

// Experiments: one driver per table and figure of the paper (§4). See
// cmd/rtvirt-bench for a CLI over these.
type (
	// Figure1Result contrasts the motivating example under both stacks.
	Figure1Result = experiments.Figure1Result
	// Figure3Row is one RTA group's bandwidth accounting.
	Figure3Row = experiments.Figure3Row
	// Figure3Config tunes the periodic/sporadic group experiments.
	Figure3Config = experiments.Figure3Config
	// Figure4Config tunes the dynamic video-streaming experiment.
	Figure4Config = experiments.Figure4Config
	// Figure4Result is the outcome of the dynamic experiment.
	Figure4Result = experiments.Figure4Result
	// Figure5Config tunes the memcached contention experiments.
	Figure5Config = experiments.Figure5Config
	// Figure5Row is one arm's outcome under contention.
	Figure5Row = experiments.Figure5Row
	// Table4Row is one scheduler's dedicated-CPU tail latencies.
	Table4Row = experiments.Table4Row
	// Table6Config tunes the scalability experiment.
	Table6Config = experiments.Table6Config
	// Table6Row is one framework's overhead measurement.
	Table6Row = experiments.Table6Row
	// Table6Scenario selects Multi-RTA or Single-RTA VMs.
	Table6Scenario = experiments.Table6Scenario
	// RTAGroup is a named set of RTAs (Tables 1 and 5).
	RTAGroup = experiments.RTAGroup
	// AblationRow is one configuration point of an ablation sweep.
	AblationRow = experiments.AblationRow
	// RobustnessResult summarises one headline claim across seeds.
	RobustnessResult = experiments.RobustnessResult
	// LoadStepConfig tunes the warm-start Figure-5 load sweep.
	LoadStepConfig = experiments.LoadStepConfig
	// LoadStepRow is one (arm, hog count) point of the load sweep.
	LoadStepRow = experiments.LoadStepRow
	// SurgeRow is one admission-surge point of the forked Figure-4 sweep.
	SurgeRow = experiments.SurgeRow
	// BisectResult reports where two systems' dispatch streams part ways.
	BisectResult = experiments.BisectResult
	// FidelityConfig tunes the constant-vs-calibrated cost ablation.
	FidelityConfig = experiments.FidelityConfig
	// FidelityResult is the full cost-fidelity ablation.
	FidelityResult = experiments.FidelityResult
	// FidelityRow is one scheduler comparison under both cost models.
	FidelityRow = experiments.FidelityRow
	// AttackConfig tunes the adversarial attack/controller suite.
	AttackConfig = experiments.AttackConfig
	// AttackResult is the full adversarial suite record (BENCH_9.json).
	AttackResult = experiments.AttackResult
	// AttackRow is one scheduler × accounting row under the tick evader.
	AttackRow = experiments.AttackRow
)

// Experiment scenarios re-exported from the drivers.
const (
	MultiRTAVMs  = experiments.MultiRTAVMs
	SingleRTAVMs = experiments.SingleRTAVMs
)

// Experiment drivers.
var (
	// Figure1 runs the motivating example (§2) under both stacks.
	Figure1 = experiments.Figure1
	// Figure3 runs every Table-1 group under RTVirt and RT-Xen.
	Figure3 = experiments.Figure3
	// Table2 reproduces the NH-Dec configuration table.
	Table2 = experiments.Table2
	// Figure4 runs the dynamic video-streaming experiment (§4.3).
	Figure4 = experiments.Figure4
	// Table4 measures memcached tail latency on a dedicated CPU.
	Table4 = experiments.Table4
	// Figure5a runs memcached against 19 CPU-bound VMs on two PCPUs.
	Figure5a = experiments.Figure5a
	// Figure5b runs five memcached VMs against ten video VMs.
	Figure5b = experiments.Figure5b
	// Table6 runs the scalability/overhead scenarios (§4.5).
	Table6 = experiments.Table6
	// Table1Groups returns the periodic RTA groups of Table 1.
	Table1Groups = experiments.Table1Groups
	// Table5Groups returns the scalability groups of Table 5.
	Table5Groups = experiments.Table5Groups

	// Ablations of the design choices DESIGN.md calls out.
	AblationMinSlice       = experiments.AblationMinSlice
	AblationSlack          = experiments.AblationSlack
	AblationServerFlavour  = experiments.AblationServerFlavour
	AblationWorkConserving = experiments.AblationWorkConserving
	AblationIdleTax        = experiments.AblationIdleTax
	AblationGuestScheduler = experiments.AblationGuestScheduler
	RenderAblation         = experiments.RenderAblation

	// Robustness re-runs the headline claims across seeds.
	Robustness       = experiments.Robustness
	RenderRobustness = experiments.RenderRobustness

	// Warm-start sweeps and the divergence bisector, built on System.Fork.
	Figure5LoadSteps       = experiments.Figure5LoadSteps
	DefaultLoadStepConfig  = experiments.DefaultLoadStepConfig
	RenderLoadSteps        = experiments.RenderLoadSteps
	Figure4Surge           = experiments.Figure4Surge
	RenderFigure4Surge     = experiments.RenderFigure4Surge
	AblationNewcomerForked = experiments.AblationNewcomerForked
	// Bisect binary-searches simulated time for the first dispatch where
	// two deterministic systems diverge, forking frontiers instead of
	// re-simulating prefixes.
	Bisect = experiments.Bisect

	// IOBound measures the §1 guarantee boundary with an I/O-phase RPC.
	IOBound  = experiments.IOBound
	RenderIO = experiments.RenderIO

	// FidelityAblation re-runs Figure 3 and Table 6 under the constant and
	// calibrated cost models and reports which comparisons are robust.
	FidelityAblation      = experiments.FidelityAblation
	DefaultFidelityConfig = experiments.DefaultFidelityConfig
	RenderFidelity        = experiments.RenderFidelity

	// Attacks runs the tick-evasion attacker against every scheduler
	// stack and the adaptive controller's convergence/backoff worlds.
	Attacks             = experiments.Attacks
	DefaultAttackConfig = experiments.DefaultAttackConfig
	RenderAttacks       = experiments.RenderAttacks

	// Defaults for the experiment configs.
	DefaultFigure3Config = experiments.DefaultFigure3Config
	DefaultFigure4Config = experiments.DefaultFigure4Config
	DefaultFigure5Config = experiments.DefaultFigure5Config
	DefaultTable6Config  = experiments.DefaultTable6Config

	// Renderers format results as fixed-width tables.
	RenderFigure3 = experiments.RenderFigure3
	RenderTable2  = experiments.RenderTable2
	RenderTable4  = experiments.RenderTable4
	RenderFigure5 = experiments.RenderFigure5
	RenderTable6  = experiments.RenderTable6
)

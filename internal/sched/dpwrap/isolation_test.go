package dpwrap

import (
	"fmt"
	"testing"
	"testing/quick"

	"rtvirt/internal/guest"
	"rtvirt/internal/hv"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

// Property: reservation isolation. N always-hungry VMs with random
// reservations filling the host each receive at least their reserved share
// of CPU time over a long window, regardless of how greedy the others are.
// This is the supply guarantee everything else in RTVirt rests on.
func TestQuickReservationIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("long property test")
	}
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		m := 1 + rng.Intn(3)
		s := sim.New(seed)
		sched := New(DefaultConfig())
		h := hv.NewHost(s, m, sched, hv.CostModel{})
		budget := 0.95 * float64(m)

		type vmInfo struct {
			g  *guest.OS
			tk *task.Task
			bw float64
		}
		var vms []vmInfo
		id := 0
		for budget > 0.1 && id < 9 {
			period := simtime.Millis(5 + rng.Int63n(45))
			maxBW := budget
			if maxBW > 0.85 {
				maxBW = 0.85
			}
			bw := 0.08 + rng.Float64()*(maxBW-0.08)
			slice := simtime.Duration(bw * float64(period))
			gc := guest.DefaultConfig()
			gc.Slack = 0
			g, err := guest.NewOS(h, fmt.Sprintf("vm%d", id), gc, 1)
			if err != nil {
				return false
			}
			// The task declares (slice, period) but its jobs are hungrier
			// than the reservation: each job demands twice its slice, so
			// the VM is perpetually backlogged and must be policed down to
			// exactly its reserved share.
			tk := task.New(id, fmt.Sprintf("t%d", id), task.Periodic,
				task.Params{Slice: slice, Period: period})
			if err := g.Register(tk); err != nil {
				break
			}
			g.SetDemandFn(tk, func() simtime.Duration { return 2 * slice })
			vms = append(vms, vmInfo{g: g, tk: tk, bw: tk.Params().Bandwidth()})
			budget -= bw
			id++
		}
		if len(vms) < 2 {
			return true
		}
		h.Start()
		for _, vm := range vms {
			vm.g.StartPeriodic(vm.tk, 0)
		}
		dur := simtime.Seconds(5)
		s.RunFor(dur)
		h.Sync()
		// Each VM must have received at least its reserved share minus a
		// small tolerance (startup + final partial slice), and the host
		// must be fully utilized (work conservation with backlog).
		var total simtime.Duration
		for _, vm := range vms {
			got := vm.g.VM().TotalRun()
			entitled := simtime.Duration(vm.bw * float64(dur))
			if got < entitled-simtime.Millis(100) {
				t.Logf("seed %d: %s got %v, entitled %v (bw %.3f)",
					seed, vm.g.VM().Name, got, entitled, vm.bw)
				return false
			}
			total += got
		}
		// Work conservation: a fully backlogged host leaves almost nothing
		// idle.
		if total < simtime.Duration(float64(m)*float64(dur))*95/100 {
			t.Logf("seed %d: host used only %v of %d CPUs × %v", seed, total, m, dur)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

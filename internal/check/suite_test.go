package check_test

import (
	"testing"

	"rtvirt/internal/check"
	"rtvirt/internal/core"
	"rtvirt/internal/scenario"
	"rtvirt/internal/simtime"
	"rtvirt/internal/trace"
)

// mixedScenario is a representative world: one server-configured VM with a
// periodic task and a background hog, one vcpus-style VM with a periodic
// and a sporadic task. It exercises every oracle's happy path on all four
// stacks.
func mixedScenario(stack string) scenario.Scenario {
	return scenario.Scenario{
		Stack:   stack,
		PCPUs:   2,
		Seconds: 2,
		Seed:    7,
		VMs: []scenario.VM{
			{
				Name: "srv",
				Servers: []scenario.ServerSpec{
					{BudgetUS: 4000, PeriodUS: 10000},
					{BudgetUS: 3000, PeriodUS: 15000},
				},
				Tasks: []scenario.TaskSpec{
					{Name: "p0", SliceUS: 1000, PeriodUS: 10000},
					{Name: "hog", Kind: "background"},
				},
			},
			{
				Name:  "apps",
				VCPUs: 2,
				Tasks: []scenario.TaskSpec{
					{Name: "p1", SliceUS: 2000, PeriodUS: 20000},
					{Name: "s0", Kind: "sporadic", SliceUS: 500, PeriodUS: 20000, RateHz: 20},
				},
			},
		},
	}
}

// runWithSuite executes sc with the oracle suite armed and returns the
// violations.
func runWithSuite(t *testing.T, sc scenario.Scenario, opts check.Opts) []check.Violation {
	t.Helper()
	var suite *check.Suite
	_, err := scenario.Run(sc, scenario.Options{
		OnSystem: func(sys *core.System) { suite = check.Attach(sys, opts) },
	})
	if err != nil {
		t.Fatalf("scenario.Run: %v", err)
	}
	return suite.Finish()
}

func TestSuiteCleanOnAllStacks(t *testing.T) {
	for _, stack := range []string{"rtvirt", "rt-xen", "two-level-edf", "credit"} {
		t.Run(stack, func(t *testing.T) {
			for _, v := range runWithSuite(t, mixedScenario(stack), check.Opts{}) {
				t.Errorf("violation: %v", v)
			}
		})
	}
}

// TestMissOracleArmedRunStaysClean runs the RTVirt stack with the deadline
// oracle watching the confirmed-admitted periodic tasks: §3.2's guarantee
// means an admitted task set must not miss.
func TestMissOracleArmedRunStaysClean(t *testing.T) {
	vs := runWithSuite(t, mixedScenario("rtvirt"),
		check.Opts{NeverMiss: []string{"srv/p0", "apps/p1"}})
	for _, v := range vs {
		t.Errorf("violation: %v", v)
	}
}

// TestSuiteDoesNotPerturb proves arming the oracles cannot change the
// schedule: the dispatch digests of a bare run and a suite-armed run of
// the same scenario must be identical.
func TestSuiteDoesNotPerturb(t *testing.T) {
	for _, stack := range []string{"rtvirt", "rt-xen"} {
		t.Run(stack, func(t *testing.T) {
			run := func(arm bool) *check.DispatchDigest {
				d := check.NewDispatchDigest()
				opts := scenario.Options{Sinks: []trace.Sink{d}}
				if arm {
					opts.OnSystem = func(sys *core.System) { check.Attach(sys, check.Opts{}) }
				}
				if _, err := scenario.Run(mixedScenario(stack), opts); err != nil {
					t.Fatalf("scenario.Run: %v", err)
				}
				return d
			}
			bare, armed := run(false), run(true)
			if !bare.Equal(armed) {
				t.Fatalf("oracles perturbed the schedule: bare %d dispatches (digest %016x), armed %d (digest %016x)",
					bare.Events(), bare.Sum(), armed.Events(), armed.Sum())
			}
			if bare.Events() == 0 {
				t.Fatal("digest saw no dispatches; perturbation check is vacuous")
			}
		})
	}
}

// TestForkIdentityClean forks a mid-flight scenario world and verifies the
// fork replays bit-identically alongside the armed suite.
func TestForkIdentityClean(t *testing.T) {
	var suite *check.Suite
	w, err := scenario.Build(mixedScenario("rtvirt"), scenario.Options{
		OnSystem: func(sys *core.System) { suite = check.Attach(sys, check.Opts{}) },
	})
	if err != nil {
		t.Fatalf("scenario.Build: %v", err)
	}
	w.Start()
	w.Sys.Run(simtime.Second)
	v, err := check.ForkIdentity(w.Sys, simtime.Second)
	if err != nil {
		t.Fatalf("ForkIdentity: %v", err)
	}
	if v != nil {
		t.Fatalf("fork diverged: %v", v)
	}
	w.Sys.Host.Sync()
	for _, v := range suite.Finish() {
		t.Errorf("violation: %v", v)
	}
}

// TestForkIdentityNoisyCosts re-runs the fork bit-identity oracle with
// every distribution form of the cost model armed (via the scenario costs
// block, so the codec path is under test too). The cost stream is cloned
// by Fork, so noisy costs must not break replay identity.
func TestForkIdentityNoisyCosts(t *testing.T) {
	fp := func(v float64) *float64 { return &v }
	sc := mixedScenario("rtvirt")
	sc.Costs = &scenario.CostsSpec{
		Hypercall:       &scenario.CostSpec{LogNormal: &scenario.LogNormalSpec{MeanUS: 10, Sigma: 0.45}},
		CtxSwitchWarm:   &scenario.CostSpec{Normal: &scenario.NormalSpec{MeanUS: 1, StddevUS: 0.2, MinUS: 0.2}},
		CtxSwitchCold:   &scenario.CostSpec{Pareto: &scenario.ParetoSpec{LoUS: 2, HiUS: 50, Alpha: 2.2}},
		Migration:       &scenario.CostSpec{Pareto: &scenario.ParetoSpec{LoUS: 3, HiUS: 80, Alpha: 1.8}},
		ScheduleBase:    &scenario.CostSpec{Uniform: &scenario.UniformSpec{LoUS: 0.5, HiUS: 1.5}},
		GuestSwitch:     &scenario.CostSpec{Normal: &scenario.NormalSpec{MeanUS: 1, StddevUS: 0.3, MinUS: 0.1}},
		MigrationPerMiB: &scenario.CostSpec{Const: fp(0.12)},
	}
	sc.VMs[1].WorkingSetMiB = 256
	var suite *check.Suite
	w, err := scenario.Build(sc, scenario.Options{
		OnSystem: func(sys *core.System) { suite = check.Attach(sys, check.Opts{}) },
	})
	if err != nil {
		t.Fatalf("scenario.Build: %v", err)
	}
	w.Start()
	w.Sys.Run(simtime.Second)
	v, err := check.ForkIdentity(w.Sys, simtime.Second)
	if err != nil {
		t.Fatalf("ForkIdentity: %v", err)
	}
	if v != nil {
		t.Fatalf("fork diverged under noisy costs: %v", v)
	}
	w.Sys.Host.Sync()
	for _, v := range suite.Finish() {
		t.Errorf("violation: %v", v)
	}
}

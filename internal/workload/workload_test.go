package workload

import (
	"math"
	"testing"

	"rtvirt/internal/dist"
	"rtvirt/internal/guest"
	"rtvirt/internal/hv"
	"rtvirt/internal/sched/dpwrap"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

func ms(n int64) simtime.Duration { return simtime.Millis(n) }

func rig(t *testing.T, pcpus int) (*sim.Simulator, *hv.Host, *guest.OS) {
	t.Helper()
	s := sim.New(21)
	h := hv.NewHost(s, pcpus, dpwrap.New(dpwrap.DefaultConfig()), hv.CostModel{})
	g, err := guest.NewOS(h, "vm0", guest.DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return s, h, g
}

func TestRTAppRunsPeriodically(t *testing.T) {
	s, h, g := rig(t, 1)
	app, err := NewRTApp(g, 0, "rta", task.Params{Slice: ms(2), Period: ms(10)})
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	app.Start(0)
	s.RunFor(simtime.Seconds(1))
	st := app.Task.Stats()
	if st.Released != 101 || st.Missed != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if err := app.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestSporadicClientDrivesRequests(t *testing.T) {
	s, h, g := rig(t, 1)
	c, err := NewSporadicClient(g, 0, "sp", task.Params{Slice: ms(2), Period: ms(20)},
		dist.Uniform{Lo: ms(100), Hi: simtime.Seconds(1)}, 100)
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	c.Start(0)
	s.RunFor(simtime.Seconds(120))
	if c.Sent() != 100 {
		t.Fatalf("sent %d requests, want 100", c.Sent())
	}
	if c.Latency.Count() != 100 {
		t.Fatalf("served %d requests, want 100", c.Latency.Count())
	}
	if c.Task.Stats().Missed != 0 {
		t.Fatalf("sporadic misses: %d", c.Task.Stats().Missed)
	}
	// Dedicated CPU: latency = service time (2ms) as there is no contention.
	if p := c.Latency.Percentile(99.9); p > ms(3) {
		t.Fatalf("p99.9 = %v, want ≈2ms on an idle host", p)
	}
}

func TestVideoProfilesMatchTable3(t *testing.T) {
	cases := map[int]struct {
		s, p int64
		bw   float64
	}{
		24: {19, 41, 0.445},
		30: {18, 33, 0.541},
		48: {17, 20, 0.845},
		60: {15, 16, 0.936},
	}
	for fps, want := range cases {
		prof, ok := ProfileFor(fps)
		if !ok {
			t.Fatalf("no profile for %d fps", fps)
		}
		if prof.Params.Slice != ms(want.s) || prof.Params.Period != ms(want.p) {
			t.Errorf("%d fps params = %v, want (s=%dms, p=%dms)", fps, prof.Params, want.s, want.p)
		}
		if math.Abs(prof.Bandwidth-want.bw) > 1e-9 {
			t.Errorf("%d fps bandwidth = %g, want %g", fps, prof.Bandwidth, want.bw)
		}
	}
	if _, ok := ProfileFor(25); ok {
		t.Fatal("unexpected profile for 25 fps")
	}
}

func TestVideoStreamMeetsRate(t *testing.T) {
	s, h, g := rig(t, 1)
	vs, err := NewVideoStream(g, 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	vs.App.Start(0)
	s.RunFor(simtime.Seconds(5))
	st := vs.App.Task.Stats()
	if st.Missed != 0 {
		t.Fatalf("30fps stream missed %d/%d frame deadlines", st.Missed, st.Released)
	}
	// 5s at one frame per 33ms ≈ 151 frames.
	if st.Completed < 145 {
		t.Fatalf("completed only %d frames", st.Completed)
	}
}

func TestMemcachedLatencyOnDedicatedCPU(t *testing.T) {
	s, h, g := rig(t, 1)
	mc, err := NewMemcached(g, 0, DefaultMemcachedConfig())
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	mc.Start(0)
	s.RunFor(simtime.Seconds(100)) // ≈10k requests at 100 QPS
	if mc.Latency.Count() < 9000 {
		t.Fatalf("served only %d requests", mc.Latency.Count())
	}
	p999 := mc.Latency.Percentile(99.9)
	// Dedicated CPU with zero platform costs: latency ≈ service demand.
	if p999 < simtime.Micros(45) || p999 > simtime.Micros(70) {
		t.Fatalf("p99.9 = %v, want ≈55µs (Table 4 ballpark)", p999)
	}
	if mc.Latency.Mean() > simtime.Micros(50) {
		t.Fatalf("mean = %v, want ≈45µs", mc.Latency.Mean())
	}
}

func TestMemcachedStop(t *testing.T) {
	s, h, g := rig(t, 1)
	mc, err := NewMemcached(g, 0, DefaultMemcachedConfig())
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	mc.Start(0)
	s.RunFor(simtime.Seconds(1))
	mc.Stop()
	sent := mc.Sent()
	s.RunFor(simtime.Seconds(1))
	if mc.Sent() != sent {
		t.Fatal("requests kept arriving after Stop")
	}
}

func TestMemcachedRequestCap(t *testing.T) {
	s, h, g := rig(t, 1)
	cfg := DefaultMemcachedConfig()
	cfg.Requests = 50
	mc, err := NewMemcached(g, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	mc.Start(0)
	s.RunFor(simtime.Seconds(10))
	if mc.Sent() != 50 {
		t.Fatalf("sent %d, want 50", mc.Sent())
	}
}

func TestMemcachedInvalidConfig(t *testing.T) {
	_, _, g := rig(t, 1)
	if _, err := NewMemcached(g, 0, MemcachedConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestCPUHogConsumesLeftover(t *testing.T) {
	s, h, g := rig(t, 1)
	hog, err := NewCPUHog(g, 0, "hog")
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	hog.Start(0)
	s.RunFor(simtime.Seconds(1))
	h.Sync()
	if run := g.VM().TotalRun(); run < simtime.Millis(990) {
		t.Fatalf("hog ran only %v of 1s on an idle host", run)
	}
}

func TestMissSummaryAggregation(t *testing.T) {
	a := task.New(0, "a", task.Periodic, task.Params{Slice: ms(1), Period: ms(10)})
	b := task.New(1, "b", task.Periodic, task.Params{Slice: ms(1), Period: ms(10)})
	j := a.Release(0, ms(1))
	j.Consume(ms(1))
	j.Complete(simtime.Time(ms(20))) // late
	j2 := b.Release(0, ms(1))
	j2.Consume(ms(1))
	j2.Complete(simtime.Time(ms(5))) // on time
	sum := MissSummary([]*task.Task{a, b})
	if sum.Tasks != 2 || sum.Missed != 1 || sum.Judged != 2 {
		t.Fatalf("summary: %+v", sum)
	}
	if sum.WorstTask != "a" || sum.WorstRatio != 1 {
		t.Fatalf("worst: %+v", sum)
	}
	if sum.TasksWithMisses != 1 {
		t.Fatalf("TasksWithMisses = %d", sum.TasksWithMisses)
	}
}

// Package dpwrap implements the RTVirt host-level VM scheduler: DP-WRAP
// with cross-layer deadline sharing (§3.3 of the paper).
//
// DP-WRAP schedules by deadline partitioning: time is cut into global
// slices at the union of all tasks' deadlines, and within each slice every
// VCPU receives a share proportional to its bandwidth, laid onto the PCPUs
// with McNaughton's wrap-around algorithm (at most m−1 VCPUs are split,
// bounding migrations per slice to m−1). DP-WRAP is optimal: any VCPU set
// whose total bandwidth does not exceed the number of PCPUs is schedulable.
//
// RTVirt's cross-layer twist is where the deadlines come from: each guest
// publishes, per VCPU, the next earliest deadline of its RTAs through
// shared memory, plus the worst-case activation period of its sporadic
// RTAs. The host takes the minimum across all VCPUs as the next global
// deadline, clamped below by the configured minimum global slice.
//
// Within a slice, execution is quota-based and work-conserving: each PCPU
// serves its wrap-layout entries greedily in layout order. When every VCPU
// is busy this reproduces the McNaughton schedule exactly — optimality and
// the migration bound hold — and when a VCPU idles (sporadic gaps, early
// completions, releases that a clamped slice has overrun), later entries
// and background VCPUs reclaim the time instead of stranding it.
package dpwrap

import (
	"fmt"
	"sort"

	"rtvirt/internal/eventq"
	"rtvirt/internal/hv"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/trace"
)

// Trace enables debug logging of slice layouts and decisions.
var Trace bool

// Config tunes the scheduler.
type Config struct {
	// MinSlice is the smallest allowed global slice, bounding scheduling
	// overhead (250µs in the paper's prototype).
	MinSlice simtime.Duration
	// MaxSlice caps a global slice when published deadlines are far away,
	// keeping background VMs responsive.
	MaxSlice simtime.Duration
	// RTCapacity is the fraction of total PCPU bandwidth admittable for
	// real-time reservations; the remainder is kept for background VMs
	// ("a certain amount of bandwidth can be reserved for such processes
	// to avoid starvation", §3.4). 1.0 admits everything.
	RTCapacity float64
	// IdleTax enables the §6 usage-taxing extension: VCPUs that
	// persistently leave their reservation idle have their slice
	// allocation scaled down toward their observed usage, and admission
	// counts them at the taxed bandwidth — reclaiming bandwidth from
	// over-claiming VMs.
	IdleTax bool
	// TaxWindow is the usage observation window (default 100ms).
	TaxWindow simtime.Duration
	// TaxFloor is the minimum fraction of its reservation a taxed VCPU
	// keeps (default 0.25), bounding how hard an idle claim is squeezed.
	TaxFloor float64
	// NonWorkConserving disables leftover sharing: RT VCPUs stop at their
	// slice quota and idle time stays idle (pure DP-WRAP, the ablation of
	// §3.4's proportional leftover distribution).
	NonWorkConserving bool
}

// DefaultConfig mirrors the prototype constants from §4.1.
func DefaultConfig() Config {
	return Config{
		MinSlice:   simtime.Micros(250),
		MaxSlice:   simtime.Millis(100),
		RTCapacity: 1.0,
	}
}

// entry is one VCPU's allocation quota on one PCPU within the current
// global slice, in McNaughton wrap order. Entries are plain values held in
// each pcpuState's flat slice — the per-decision scan walks one contiguous
// array, and a slice rebuild is a truncate-and-append with no per-entry
// allocation or pooling.
type entry struct {
	v         *hv.VCPU
	remaining simtime.Duration // quota not yet consumed
	pcpu      int
}

type pcpuState struct {
	entries []entry
	// idx maps a VCPU ID to its entry's position in entries for the
	// current slice, -1 otherwise (a VCPU holds at most one entry per
	// PCPU: wrap placement is contiguous, and wrapPlace visits each PCPU
	// once). Sized to the host's ID space and rebuilt per slice with the
	// storage reused, it turns the per-decision entry searches (wake
	// preemption, rescue scans, charge attribution) from linear sweeps
	// into O(1) flat-array lookups.
	idx []int32
	// firstLive is the index of the first entry with quota left. Entries
	// exhaust monotonically within a slice in wrap order, so Schedule can
	// skip the drained prefix wholesale — it still charges the modeled
	// scan cost for them, keeping Decision.Work identical to a full sweep.
	firstLive int
	// lastEntry/lastAt attribute elapsed run time to the entry (by index,
	// -1 = none) that was granted at the previous Schedule decision on
	// this PCPU. Entry positions only change inside rebuild, which settles
	// the charge first, so a held index never goes stale.
	lastEntry int
	lastAt    simtime.Time
	bgCursor  int
}

// Scheduler event kinds (all host-wide; Owner unused).
const (
	// evBoundary fires at the global slice end: replan and re-dispatch.
	evBoundary uint16 = iota
	// evTaxWindow fires every TaxWindow: settle idle-tax factors.
	evTaxWindow
	// evReplan is the same-instant deferred replan after a slot write.
	evReplan
	// evRescue is the same-instant deferred kick for stranded split quota.
	evRescue
)

// Scheduler is the DP-WRAP host scheduler.
type Scheduler struct {
	cfg Config
	h   *hv.Host
	id  int32 // typed-event handler ID

	vcpus []*hv.VCPU // all VCPUs in admission order
	pcpu  []*pcpuState

	sliceStart, sliceEnd simtime.Time
	boundaryEv           eventq.Handle
	started              bool
	replanPending        bool
	rescuePending        bool

	// carry holds each VCPU's fractional allocation remainder (in units
	// of 1/Period nanoseconds), indexed by dense VCPU ID. Floor division
	// with this carry delivers exactly Budget per Period across
	// boundary-aligned spans, with no cumulative drift and no
	// over-allocation within a slice.
	carry []int64

	// Idle-tax state (§6 extension), both indexed by VCPU ID: observed
	// usage in the current window and the smoothed per-VCPU tax factor in
	// (TaxFloor, 1]; factor 0 is the unset sentinel and reads as 1.
	taxFactor []float64
	windowUse []simtime.Duration
	taxEv     eventq.Handle

	// Boundaries counts global slices; SlicesTotal accumulates their
	// lengths (for diagnostics and tests).
	Boundaries  uint64
	SlicesTotal simtime.Duration
}

// slot grows an ID-indexed slice to cover id and returns the element.
func grow[T any](s *[]T, id int) *T {
	for len(*s) <= id {
		*s = append(*s, *new(T))
	}
	return &(*s)[id]
}

// New creates a DP-WRAP scheduler.
func New(cfg Config) *Scheduler {
	if cfg.MinSlice <= 0 {
		cfg.MinSlice = simtime.Micros(250)
	}
	if cfg.MaxSlice <= 0 {
		cfg.MaxSlice = simtime.Millis(100)
	}
	if cfg.RTCapacity <= 0 {
		cfg.RTCapacity = 1.0
	}
	if cfg.TaxWindow <= 0 {
		cfg.TaxWindow = simtime.Millis(100)
	}
	if cfg.TaxFloor <= 0 || cfg.TaxFloor > 1 {
		cfg.TaxFloor = 0.25
	}
	return &Scheduler{cfg: cfg}
}

// Name implements hv.HostScheduler.
func (s *Scheduler) Name() string { return "rtvirt-dpwrap" }

// Attach implements hv.HostScheduler.
func (s *Scheduler) Attach(h *hv.Host) {
	s.h = h
	s.id = h.Sim.RegisterHandler(s)
	for range h.PCPUs() {
		s.pcpu = append(s.pcpu, &pcpuState{lastEntry: -1})
	}
}

// HandleSimEvent implements sim.Handler.
func (s *Scheduler) HandleSimEvent(now simtime.Time, ev sim.Payload) {
	switch ev.Kind {
	case evBoundary:
		s.boundaryEv = eventq.Handle{}
		s.replanKick(now)
	case evTaxWindow:
		s.settleTax(now)
		s.armTaxWindow(now)
	case evReplan:
		s.replanPending = false
		s.replanKick(now)
	case evRescue:
		s.rescuePending = false
		s.rescueKick(now)
	default:
		panic(fmt.Sprintf("dpwrap: unknown event kind %d", ev.Kind))
	}
}

// Start implements hv.HostScheduler.
func (s *Scheduler) Start(now simtime.Time) {
	s.started = true
	if s.cfg.IdleTax {
		s.armTaxWindow(now)
	}
	s.rebuild(now)
}

// armTaxWindow schedules the next usage-accounting boundary.
func (s *Scheduler) armTaxWindow(now simtime.Time) {
	s.taxEv = s.h.Sim.PostAt(now.Add(s.cfg.TaxWindow), sim.Payload{Handler: s.id, Kind: evTaxWindow})
}

// settleTax recomputes every RT VCPU's tax factor from its observed usage
// over the window: factor = max(floor, usage/entitlement), smoothed 50/50
// with the previous factor so a briefly idle VM is not squeezed instantly.
func (s *Scheduler) settleTax(now simtime.Time) {
	for _, v := range s.vcpus {
		if !v.RT || v.Res.Budget <= 0 {
			continue
		}
		prev := *grow(&s.taxFactor, v.ID)
		if prev == 0 {
			prev = 1.0
		}
		// Usage is judged against the *taxed* entitlement: a VM that fully
		// consumes its (possibly squeezed) share reads as ratio 1 and its
		// factor climbs back — otherwise the tax would throttle the very
		// usage signal that could lift it.
		entitled := float64(s.cfg.TaxWindow) * v.Res.Bandwidth() * prev
		used := float64(*grow(&s.windowUse, v.ID))
		s.windowUse[v.ID] = 0
		ratio := 1.0
		if entitled > 0 {
			ratio = used / entitled
		}
		if ratio >= 0.9 {
			// Saturated: grow multiplicatively so recovery is fast.
			next := prev * 1.5
			if next > 1 {
				next = 1
			}
			s.taxFactor[v.ID] = next
			continue
		}
		f := ratio * prev
		if f < s.cfg.TaxFloor {
			f = s.cfg.TaxFloor
		}
		s.taxFactor[v.ID] = (prev + f) / 2
	}
}

// factorOf reports the VCPU's current tax factor (1 without IdleTax).
func (s *Scheduler) factorOf(v *hv.VCPU) float64 {
	if !s.cfg.IdleTax {
		return 1.0
	}
	if v.ID < len(s.taxFactor) && s.taxFactor[v.ID] != 0 {
		return s.taxFactor[v.ID]
	}
	return 1.0
}

// TaxFactor exposes the current factor for diagnostics and tests.
func (s *Scheduler) TaxFactor(v *hv.VCPU) float64 { return s.factorOf(v) }

// rtBandwidth sums admitted real-time bandwidth with subst substituted for
// VCPU except; if except is not yet admitted, subst is counted on top.
func (s *Scheduler) rtBandwidth(except *hv.VCPU, subst hv.Reservation) float64 {
	sum := subst.Bandwidth()
	for _, v := range s.vcpus {
		if v != except && v.RT {
			// With the idle tax, persistently idle reservations count at
			// their taxed bandwidth, making room for new admissions (§6).
			sum += v.Res.Bandwidth() * s.factorOf(v)
		}
	}
	return sum
}

// capacity is the admittable RT bandwidth in CPUs.
func (s *Scheduler) capacity() float64 {
	return s.cfg.RTCapacity * float64(s.h.NumPCPUs())
}

// AdmitVCPU implements hv.HostScheduler.
func (s *Scheduler) AdmitVCPU(v *hv.VCPU) error {
	if v.RT && !v.Res.Valid() {
		return fmt.Errorf("dpwrap: %w: invalid reservation %v", hv.ErrAdmission, v.Res)
	}
	if v.RT && s.rtBandwidth(v, v.Res) > s.capacity()+1e-9 {
		return fmt.Errorf("dpwrap: %w: bandwidth %0.3f exceeds capacity %0.3f",
			hv.ErrAdmission, s.rtBandwidth(v, v.Res), s.capacity())
	}
	s.vcpus = append(s.vcpus, v)
	*grow(&s.carry, v.ID) = 0
	return nil
}

// RemoveVCPU implements hv.HostScheduler.
func (s *Scheduler) RemoveVCPU(v *hv.VCPU, now simtime.Time) {
	for i, x := range s.vcpus {
		if x == v {
			s.vcpus = append(s.vcpus[:i], s.vcpus[i+1:]...)
			break
		}
	}
	if v.ID < len(s.carry) {
		s.carry[v.ID] = 0
	}
	if v.ID < len(s.taxFactor) {
		s.taxFactor[v.ID] = 0
	}
	if v.ID < len(s.windowUse) {
		s.windowUse[v.ID] = 0
	}
	if s.started {
		s.replanKick(now)
	}
}

// UpdateVCPU implements hv.HostScheduler.
func (s *Scheduler) UpdateVCPU(v *hv.VCPU, res hv.Reservation, now simtime.Time) error {
	if !res.Valid() {
		s.emitVerdict(v, res, now, false)
		return fmt.Errorf("dpwrap: %w: invalid reservation %v", hv.ErrAdmission, res)
	}
	if v.RT && res.Bandwidth() > v.Res.Bandwidth() &&
		s.rtBandwidth(v, res) > s.capacity()+1e-9 {
		s.emitVerdict(v, res, now, false)
		return fmt.Errorf("dpwrap: %w: bandwidth %0.3f exceeds capacity %0.3f",
			hv.ErrAdmission, s.rtBandwidth(v, res), s.capacity())
	}
	s.emitVerdict(v, res, now, true)
	v.Res = res
	if s.started {
		s.replanKick(now)
	}
	return nil
}

// emitVerdict reports the admission decision for a reservation change.
func (s *Scheduler) emitVerdict(v *hv.VCPU, res hv.Reservation, now simtime.Time, ok bool) {
	if !s.h.Tracing() {
		return
	}
	kind := trace.Reject
	if ok {
		kind = trace.Admit
	}
	s.h.Emit(trace.Event{At: now, Kind: kind, PCPU: -1,
		VM: v.VM.Name, VCPU: v.Index, Arg: int64(res.Budget)})
}

// HandleHypercall implements hv.CrossLayer: the sched_rtvirt() interface.
func (s *Scheduler) HandleHypercall(hc hv.Hypercall, now simtime.Time) error {
	switch hc.Flag {
	case hv.IncBW, hv.DecBW:
		return s.UpdateVCPU(hc.VCPU, hc.Res, now)
	case hv.IncDecBW:
		// Atomic: apply the decrease first so the increase is checked
		// against the post-decrease capacity; roll back if rejected.
		oldDec := hc.Dec.Res
		if err := s.UpdateVCPU(hc.Dec, hc.DecRes, now); err != nil {
			return err
		}
		if err := s.UpdateVCPU(hc.VCPU, hc.Res, now); err != nil {
			if rbErr := s.UpdateVCPU(hc.Dec, oldDec, now); rbErr != nil {
				panic("dpwrap: rollback of INC_DEC_BW failed")
			}
			return err
		}
		return nil
	default:
		return fmt.Errorf("dpwrap: unknown hypercall flag %v", hc.Flag)
	}
}

// nextGlobalDeadline computes the next global deadline after t0 from the
// shared-memory words of every VCPU (§3.3): published next deadlines plus
// the sporadic worst-case floors, clamped into [MinSlice, MaxSlice].
func (s *Scheduler) nextGlobalDeadline(t0 simtime.Time) simtime.Time {
	d := simtime.Never
	for _, v := range s.vcpus {
		if !v.RT || v.Res.Budget <= 0 {
			continue
		}
		if slot := v.DeadlineSlot; slot > t0 && slot < d {
			d = slot
		}
		if f := v.SporadicFloor; f > 0 {
			if wc := t0.Add(f); wc < d {
				d = wc
			}
		}
	}
	lo, hi := t0.Add(s.cfg.MinSlice), t0.Add(s.cfg.MaxSlice)
	if d < lo {
		d = lo
	}
	if d > hi {
		d = hi
	}
	return d
}

// replanKick rebuilds the plan and re-dispatches every PCPU. Never call it
// from inside Schedule (the kernel dispatch loop is not re-entrant).
func (s *Scheduler) replanKick(now simtime.Time) {
	s.rebuild(now)
	for _, p := range s.h.PCPUs() {
		s.h.Kick(p, now)
	}
}

// rebuild ends the current global slice and builds the next one: global
// deadline from the shared slots, proportional partitioning, wrap-around
// layout. It does not kick the PCPUs.
func (s *Scheduler) rebuild(now simtime.Time) {
	// Charge outstanding run time to the old entries before truncating;
	// the backing arrays are retained, so steady-state rebuilds allocate
	// nothing.
	for _, ps := range s.pcpu {
		s.chargeRun(ps, now)
		ps.entries = ps.entries[:0]
		ps.lastEntry = -1
	}
	s.h.Sim.Cancel(s.boundaryEv)
	s.boundaryEv = eventq.Handle{}

	deadline := s.nextGlobalDeadline(now)
	slice := deadline.Sub(now)
	s.sliceStart, s.sliceEnd = now, deadline
	s.Boundaries++
	s.SlicesTotal += slice

	// Sort RT VCPUs by effective next deadline (earliest first) so urgent
	// VCPUs sit early in the wrap layout; the sporadic worst-case floor
	// counts as a deadline just like in nextGlobalDeadline, so a
	// latency-sensitive sporadic VCPU (e.g. memcached) is served at the
	// front of each slice. Stable on ID for determinism.
	rt := make([]*hv.VCPU, 0, len(s.vcpus))
	for _, v := range s.vcpus {
		if v.RT && v.Res.Budget > 0 {
			rt = append(rt, v)
		}
	}
	key := func(v *hv.VCPU) simtime.Time {
		d := simtime.Never
		if slot := v.DeadlineSlot; slot > now {
			d = slot
		}
		if f := v.SporadicFloor; f > 0 {
			if wc := now.Add(f); wc < d {
				d = wc
			}
		}
		return d
	}
	sort.SliceStable(rt, func(i, j int) bool {
		ki, kj := key(rt[i]), key(rt[j])
		if ki != kj {
			return ki < kj
		}
		return rt[i].ID < rt[j].ID
	})

	// Model the O(log n) + O(n) boundary work (§4.5) on PCPU 0.
	n := len(rt)
	cost := s.h.ScheduleCost(n)
	s.h.Overhead.ScheduleCalls++
	s.h.ChargeScheduleWork(s.h.PCPUs()[0], cost)

	// McNaughton wrap: lay each VCPU's slice share onto PCPUs in sequence,
	// splitting at PCPU boundaries. A split VCPU's pieces can never run
	// concurrently: the kernel dispatches a VCPU on at most one PCPU and
	// Schedule skips entries whose owner is busy elsewhere.
	m := s.h.NumPCPUs()
	// Pinned (NoMigrate) VCPUs are placed first, each whole on one PCPU,
	// so they are excluded from the m−1 split candidates (§6).
	pinnedFill := make([]simtime.Duration, m)
	for _, v := range rt {
		if !v.NoMigrate {
			continue
		}
		alloc := s.allocFor(v, slice)
		if alloc <= 0 {
			continue
		}
		placed := false
		for pi := 0; pi < m; pi++ {
			if pinnedFill[pi]+alloc <= slice {
				ps := s.pcpu[pi]
				ps.entries = append(ps.entries, entry{v: v, remaining: alloc, pcpu: pi})
				pinnedFill[pi] += alloc
				placed = true
				break
			}
		}
		if !placed {
			// No whole-PCPU room this slice: fall back to a split so the
			// reservation is still honoured; the pin is best-effort.
			s.wrapPlace(v, alloc, slice, pinnedFill, &m)
		}
	}
	pcpuIdx, offset := 0, simtime.Duration(0)
	for pcpuIdx < m && pinnedFill[pcpuIdx] > 0 {
		// Resume wrapping after each PCPU's pinned prefix.
		offset = pinnedFill[pcpuIdx]
		if offset < slice {
			break
		}
		pcpuIdx++
		offset = 0
	}
	for _, v := range rt {
		if v.NoMigrate {
			continue
		}
		// Exact fluid share via floor division with a running remainder:
		// alloc = ⌊(slice×Budget + carry) / Period⌋. Total allocation can
		// never exceed the slice capacity, and over any boundary-aligned
		// span of one Period the VCPU receives exactly Budget.
		alloc := s.allocFor(v, slice)
		if alloc <= 0 {
			continue
		}
		for alloc > 0 && pcpuIdx < m {
			room := slice - offset
			take := simtime.MinDur(alloc, room)
			ps := s.pcpu[pcpuIdx]
			ps.entries = append(ps.entries, entry{v: v, remaining: take, pcpu: pcpuIdx})
			alloc -= take
			offset += take
			if offset >= slice {
				pcpuIdx++
				if pcpuIdx < m {
					offset = pinnedFill[pcpuIdx]
				} else {
					offset = 0
				}
			}
		}
		// Admission guarantees total ≤ m×slice up to integer rounding;
		// losing a rounding remainder is harmless.
		if alloc > simtime.Microsecond {
			panic(fmt.Sprintf("dpwrap: wrap overflow by %v (admission broken?)", alloc))
		}
	}

	// Reindex the new layout. Positions are final only here: wrapPlace may
	// have prepended continuation fragments. The ID-indexed slice is reused
	// and re-filled with -1, so steady-state rebuilds allocate nothing.
	ids := s.h.NumIDs()
	for _, ps := range s.pcpu {
		for len(ps.idx) < ids {
			ps.idx = append(ps.idx, -1)
		}
		for i := range ps.idx {
			ps.idx[i] = -1
		}
		for i := range ps.entries {
			ps.idx[ps.entries[i].v.ID] = int32(i)
		}
		ps.firstLive = 0
	}

	if Trace {
		fmt.Printf("[dpwrap] rebuild at %v: slice [%v,%v) len=%v\n",
			now, s.sliceStart, s.sliceEnd, slice)
		for pi, ps := range s.pcpu {
			for _, e := range ps.entries {
				fmt.Printf("  pcpu%d %v quota=%v\n", pi, e.v, e.remaining)
			}
		}
	}

	s.boundaryEv = s.h.Sim.PostAt(deadline, sim.Payload{Handler: s.id, Kind: evBoundary})
}

// allocFor computes v's exact fluid share of a slice (floor + carry),
// scaled by the idle-tax factor when enabled.
func (s *Scheduler) allocFor(v *hv.VCPU, slice simtime.Duration) simtime.Duration {
	budget := int64(v.Res.Budget)
	if f := s.factorOf(v); f < 1 {
		budget = int64(f * float64(budget))
	}
	num := int64(slice)*budget + *grow(&s.carry, v.ID)
	alloc := num / int64(v.Res.Period)
	s.carry[v.ID] = num % int64(v.Res.Period)
	// allocFor runs once per RT VCPU per rebuild, so this is the single
	// place every slice-quota grant passes through.
	if alloc > 0 && s.h.Tracing() {
		s.h.Emit(trace.Event{At: s.sliceStart, Kind: trace.Replenish, PCPU: -1,
			VM: v.VM.Name, VCPU: v.Index, Arg: alloc})
	}
	return simtime.Duration(alloc)
}

// wrapPlace lays alloc for a pinned VCPU that no longer fits whole,
// splitting across the least-filled PCPUs. Like McNaughton's wrap, the
// continuation fragments go to the FRONT of their PCPU's order: the first
// fragment runs at the end of its PCPU's timeline, the continuation at the
// start of the next one, so the two never want the VCPU at the same
// instant (a VCPU can only execute on one PCPU at a time).
func (s *Scheduler) wrapPlace(v *hv.VCPU, alloc, slice simtime.Duration, fill []simtime.Duration, m *int) {
	first := true
	for pi := 0; pi < *m && alloc > 0; pi++ {
		room := slice - fill[pi]
		if room <= 0 {
			continue
		}
		take := simtime.MinDur(alloc, room)
		ps := s.pcpu[pi]
		if first {
			ps.entries = append(ps.entries, entry{v: v, remaining: take, pcpu: pi})
			first = false
		} else {
			// Prepend by shifting in place so the backing array is reused.
			ps.entries = append(ps.entries, entry{})
			copy(ps.entries[1:], ps.entries)
			ps.entries[0] = entry{v: v, remaining: take, pcpu: pi}
		}
		fill[pi] += take
		alloc -= take
	}
}

// chargeRun attributes elapsed wall time on a PCPU to the entry that was
// running there.
func (s *Scheduler) chargeRun(ps *pcpuState, now simtime.Time) {
	if ps.lastEntry < 0 {
		return
	}
	e := &ps.entries[ps.lastEntry]
	elapsed := now.Sub(ps.lastAt)
	if elapsed < 0 {
		panic("dpwrap: time went backwards in chargeRun")
	}
	if elapsed >= e.remaining {
		if e.remaining > 0 && s.h.Tracing() {
			// Arg carries the overdraw: time charged beyond the entry's
			// quota. Schedule grants at most the remaining quota, so any
			// non-zero overdraw is an accounting bug (check.BudgetOracle).
			s.h.Emit(trace.Event{At: now, Kind: trace.Deplete, PCPU: e.pcpu,
				VM: e.v.VM.Name, VCPU: e.v.Index, Arg: int64(elapsed - e.remaining)})
		}
		e.remaining = 0
	} else {
		e.remaining -= elapsed
	}
	if s.cfg.IdleTax {
		*grow(&s.windowUse, e.v.ID) += elapsed
	}
	ps.lastEntry = -1
}

// SliceBounds reports the current global slice [start, end). Every quota
// Replenish event is emitted with At == start while these bounds are
// current, so the invariant oracles can bound each grant by
// bandwidth × (end − start). Read-only; used by internal/check.
func (s *Scheduler) SliceBounds() (start, end simtime.Time) { return s.sliceStart, s.sliceEnd }

// AdmittedBandwidth sums the admitted real-time bandwidth exactly as the
// admission test counts it (taxed when IdleTax is enabled).
func (s *Scheduler) AdmittedBandwidth() float64 { return s.rtBandwidth(nil, hv.Reservation{}) }

// Capacity returns the admittable RT bandwidth in CPUs.
func (s *Scheduler) Capacity() float64 { return s.capacity() }

// SlotUpdated implements hv.SlotWatcher: when a guest publishes a deadline
// earlier than the current global slice end (a freshly started periodic
// task, or a sporadic floor shrinking), the slice is cut short so the new
// deadline is honoured. Replanning is deferred to a same-instant event
// because slot writes can happen inside the kernel dispatch path.
func (s *Scheduler) SlotUpdated(v *hv.VCPU, now simtime.Time) {
	if !s.started || s.replanPending {
		return
	}
	if !v.RT || v.Res.Budget <= 0 {
		return
	}
	cand := simtime.Never
	if slot := v.DeadlineSlot; slot > now {
		cand = slot
	}
	if f := v.SporadicFloor; f > 0 {
		if wc := now.Add(f); wc < cand {
			cand = wc
		}
	}
	if cand == simtime.Never || cand >= s.sliceEnd {
		return
	}
	if now.Add(s.cfg.MinSlice) >= s.sliceEnd {
		return // cutting now cannot help
	}
	s.replanPending = true
	s.h.Sim.PostAt(now, sim.Payload{Handler: s.id, Kind: evReplan})
}

// VCPUWake implements hv.HostScheduler: a woken real-time VCPU preempts
// lower-priority work on a PCPU where it holds unused quota; a background
// VCPU grabs an idle PCPU.
func (s *Scheduler) VCPUWake(v *hv.VCPU, now simtime.Time) {
	if !s.started {
		return
	}
	if v.RT && v.Res.Budget > 0 {
		for pi, ps := range s.pcpu {
			idx := s.entryIndex(ps, v)
			if idx < 0 || ps.entries[idx].remaining <= 0 {
				continue
			}
			p := s.h.PCPUs()[pi]
			if s.shouldPreempt(ps, p, idx) {
				s.h.Kick(p, now)
				return
			}
		}
		return
	}
	// Background VCPU: take any idle PCPU.
	for _, p := range s.h.PCPUs() {
		if p.Current() == nil {
			s.h.Kick(p, now)
			return
		}
	}
}

// VCPUIdle implements hv.HostScheduler. Charging happens at the next
// Schedule call on the PCPU, which the kernel performs immediately.
func (s *Scheduler) VCPUIdle(v *hv.VCPU, now simtime.Time) {}

// entryIndex reports the position of v's entry on a PCPU, or -1.
func (s *Scheduler) entryIndex(ps *pcpuState, v *hv.VCPU) int {
	if v.ID < len(ps.idx) {
		return int(ps.idx[v.ID])
	}
	return -1
}

// shouldPreempt reports whether the entry at idx outranks what PCPU p is
// running now: an idle PCPU, a background VCPU, or a later entry yields.
func (s *Scheduler) shouldPreempt(ps *pcpuState, p *hv.PCPU, idx int) bool {
	cur := p.Current()
	if cur == nil {
		return true
	}
	curIdx := s.entryIndex(ps, cur)
	if curIdx < 0 {
		return true // background or foreign VCPU
	}
	return curIdx > idx
}

// available reports whether an entry's VCPU could run on p right now. It
// reads the host's hot array directly: the runnable flag and current-PCPU
// index sit in one contiguous record per VCPU, so the per-entry check in
// the Schedule scan touches no cold VCPU struct.
func (s *Scheduler) available(e *entry, p *hv.PCPU) bool {
	hs := &s.h.Hot()[e.v.ID]
	return hs.Runnable && e.remaining > 0 && (hs.PCPU < 0 || hs.PCPU == int32(p.ID))
}

// Schedule implements hv.HostScheduler: serve this PCPU's quota entries
// greedily in wrap order; fall back to background fill, then idle.
func (s *Scheduler) Schedule(p *hv.PCPU, now simtime.Time) hv.Decision {
	ps := s.pcpu[p.ID]
	s.chargeRun(ps, now)
	if now >= s.sliceEnd {
		// Unreachable in normal operation: the boundary event fires before
		// any kernel event armed later within the slice. Kept as a safety
		// net (rebuild only; kicking would re-enter the dispatcher).
		s.rebuild(now)
	}
	s.rescue(p, now)
	// Entries exhaust monotonically in wrap order within a slice; skip the
	// drained prefix but charge the modeled sweep for it, so Work is
	// exactly what a full scan reports.
	for ps.firstLive < len(ps.entries) && ps.entries[ps.firstLive].remaining <= 0 {
		ps.firstLive++
	}
	work := 1 + ps.firstLive
	horizon := s.sliceEnd.Sub(now)
	for i := ps.firstLive; i < len(ps.entries); i++ {
		e := &ps.entries[i]
		work++
		if !s.available(e, p) {
			continue
		}
		run := simtime.MinDur(e.remaining, horizon)
		if run <= 0 {
			continue
		}
		if Trace {
			fmt.Printf("[dpwrap] %v sched pcpu%d -> %v for %v (quota)\n", now, p.ID, e.v, run)
		}
		ps.lastEntry, ps.lastAt = i, now
		return hv.Decision{VCPU: e.v, RunFor: run, Work: work}
	}
	if bg := s.pickBackground(p, &work); bg != nil {
		ps.lastEntry = -1
		ps.lastAt = now
		return hv.Decision{VCPU: bg, RunFor: horizon, Work: work}
	}
	if Trace {
		fmt.Printf("[dpwrap] %v sched pcpu%d -> idle until %v\n", now, p.ID, s.sliceEnd)
	}
	ps.lastEntry = -1
	ps.lastAt = now
	return hv.Decision{VCPU: nil, RunFor: horizon, Work: work}
}

// rescue arranges a same-instant kick when another PCPU is idle (or on
// background work) while holding unused quota for the VCPU this PCPU is
// about to release. Without it a split VCPU finishing its quota here would
// leave its quota on the neighbour stranded: the neighbour scheduled while
// the owner was busy elsewhere, and no wake fires because the owner never
// blocked.
func (s *Scheduler) rescue(p *hv.PCPU, now simtime.Time) {
	if s.rescuePending {
		return
	}
	prev := p.Current()
	if prev == nil || !prev.RT || prev.Res.Budget <= 0 {
		return
	}
	for pi, ps := range s.pcpu {
		if pi == p.ID {
			continue
		}
		idx := s.entryIndex(ps, prev)
		if idx < 0 || ps.entries[idx].remaining <= 0 {
			continue
		}
		other := s.h.PCPUs()[pi]
		cur := other.Current()
		curIdx := -1
		if cur != nil {
			curIdx = s.entryIndex(ps, cur)
		}
		if cur == nil || curIdx < 0 || curIdx > idx {
			s.rescuePending = true
			s.h.Sim.PostAt(now, sim.Payload{Handler: s.id, Kind: evRescue})
			return
		}
	}
}

// rescueKick re-dispatches PCPUs where a claimable entry outranks what is
// running (idle, background work, or a later wrap-order entry).
func (s *Scheduler) rescueKick(now simtime.Time) {
	if now >= s.sliceEnd {
		return
	}
	for pi, ps := range s.pcpu {
		p := s.h.PCPUs()[pi]
		cur := p.Current()
		curIdx := -1
		if cur != nil {
			curIdx = s.entryIndex(ps, cur)
			if curIdx < 0 {
				curIdx = len(ps.entries) // background ranks below every entry
			}
		} else {
			curIdx = len(ps.entries)
		}
		for i := range ps.entries {
			if i >= curIdx {
				break
			}
			e := &ps.entries[i]
			if s.available(e, p) && e.v != cur {
				s.h.Kick(p, now)
				break
			}
		}
	}
}

// pickBackground selects the next runnable VCPU to soak leftover time,
// round-robin. Both non-RT VCPUs and RT VCPUs that have exhausted their
// slice quota are eligible: §3.4 — "the remaining bandwidth of the system
// is allocated among the VMs proportionally". Time granted here is not
// charged against any quota.
func (s *Scheduler) pickBackground(p *hv.PCPU, work *int) *hv.VCPU {
	n := len(s.vcpus)
	if n == 0 {
		return nil
	}
	ps := s.pcpu[p.ID]
	hot := s.h.Hot()
	pid := int32(p.ID)
	for i := 0; i < n; i++ {
		v := s.vcpus[(ps.bgCursor+i)%n]
		*work++
		if s.cfg.NonWorkConserving && v.RT && v.Res.Budget > 0 {
			continue // pure DP-WRAP: no leftover for reserved VCPUs
		}
		if hs := &hot[v.ID]; hs.Runnable && (hs.PCPU < 0 || hs.PCPU == pid) {
			ps.bgCursor = (ps.bgCursor + i + 1) % n
			return v
		}
	}
	return nil
}

package check

import (
	"rtvirt/internal/hv"
	"rtvirt/internal/simtime"
	"rtvirt/internal/trace"
)

// ServerStateReader is the read-only server accounting view the EDF
// oracle audits against; *rtxen.Scheduler implements it.
type ServerStateReader interface {
	ServerState(v *hv.VCPU, now simtime.Time) (budget simtime.Duration, deadline simtime.Time, ok bool)
}

// EDFOracle asserts global-EDF dispatch-order soundness for the RT-Xen
// server schedulers (deferrable and polling): once the scheduler settles,
// no eligible server — runnable, positive budget, not dispatched anywhere
// — waits while a PCPU runs a later-deadline server, background work, or
// nothing at all.
//
// "Settles" is the load-bearing word. Within a single simulated instant
// the bus observes mid-transition states: a Preempt is emitted while the
// outgoing VCPU is still dispatched, a wake's preemptCheck kicks its
// target only after the wake event's own processing, and same-instant
// event FIFO order means a replenished server can briefly coexist with a
// stale pick. The oracle therefore never judges an instant in isolation:
// it records a candidate inversion, and confirms it only when the next
// event arrives at a strictly later time with the exact same pair still
// inverted — the earlier-deadline server still waiting with the same
// deadline and budget left, the same occupant still holding the same
// PCPU. Between events no state changes, so a confirmed pair really did
// run the wrong server across a non-zero span of simulated time. The
// strict re-match can only under-report (a real inversion whose players
// change at the boundary is dropped), never false-positive.
type EDFOracle struct {
	recorder
	host  *hv.Host
	sched ServerStateReader

	pending bool
	cand    edfCandidate
}

// edfCandidate is a suspected inversion awaiting confirmation.
type edfCandidate struct {
	at        simtime.Time
	p         *hv.PCPU
	u         *hv.VCPU // the waiting earlier-deadline server
	w         *hv.VCPU // the occupant (nil = PCPU idle)
	uDeadline simtime.Time
	wDeadline simtime.Time // simtime.Never for idle/background occupants
	wIsServer bool
}

// NewEDFOracle creates the dispatch-order oracle for an RT-Xen scheduler.
func NewEDFOracle(h *hv.Host, s ServerStateReader) *EDFOracle {
	return &EDFOracle{recorder: recorder{name: "edf-order"}, host: h, sched: s}
}

// Consume implements trace.Sink: every event is an observation point. The
// event's content is irrelevant — what matters is that time may have
// advanced, which confirms or clears the pending candidate, and that the
// scheduler state may have changed, which can seed a new one.
func (o *EDFOracle) Consume(ev trace.Event) {
	now := ev.At
	if o.pending && now > o.cand.at {
		o.confirm(now)
	}
	// Re-scan on every event: within an instant, later observations
	// supersede earlier ones, so the pending candidate is always the
	// instant's last settled view rather than a mid-transition ghost.
	o.pending = false
	o.scan(now)
}

// scan looks for an inversion in the live settled state and records it as
// a candidate (confirmation waits for the next distinct timestamp).
func (o *EDFOracle) scan(now simtime.Time) {
	for _, p := range o.host.PCPUs() {
		cur := p.Current()
		curDl := simtime.Never // idle and background occupants rank last
		curIsServer := false
		if cur != nil {
			if _, dl, ok := o.sched.ServerState(cur, now); ok {
				curDl, curIsServer = dl, true
			}
		}
		for _, v := range o.host.VCPUs() {
			if v == cur || !v.Runnable() || v.OnPCPU() != nil {
				continue
			}
			b, dl, ok := o.sched.ServerState(v, now)
			if !ok || b <= 0 {
				continue
			}
			if dl < curDl {
				o.pending = true
				o.cand = edfCandidate{at: now, p: p, u: v, w: cur,
					uDeadline: dl, wDeadline: curDl, wIsServer: curIsServer}
				return
			}
		}
	}
}

// confirm re-checks the candidate against the state settled at the end of
// its instant; the inversion is real only if the identical pair held.
func (o *EDFOracle) confirm(now simtime.Time) {
	c := o.cand
	if c.p.Current() != c.w {
		return
	}
	if c.w != nil && c.wIsServer {
		_, dl, ok := o.sched.ServerState(c.w, now)
		if !ok || dl != c.wDeadline {
			return
		}
	}
	if !c.u.Runnable() || c.u.OnPCPU() != nil {
		return
	}
	b, dl, ok := o.sched.ServerState(c.u, now)
	if !ok || b <= 0 || dl != c.uDeadline {
		return
	}
	occupant := "idle"
	if c.w != nil {
		occupant = c.w.String()
		if c.wIsServer {
			occupant += " (deadline " + c.wDeadline.String() + ")"
		} else {
			occupant += " (background)"
		}
	}
	o.flag(c.at, "EDF inversion: eligible %v (deadline %v) waited while pcpu%d ran %s across [%v, %v]",
		c.u, c.uDeadline, c.p.ID, occupant, c.at, now)
}

// Finish implements Oracle. A candidate still pending at the end of the
// run persisted from its instant to the final time, so it is judged once
// more against the final state.
func (o *EDFOracle) Finish(now simtime.Time) {
	if o.pending && now > o.cand.at {
		o.confirm(now)
		o.pending = false
	}
}

package csa

import (
	"testing"
	"testing/quick"

	"rtvirt/internal/guest"
	"rtvirt/internal/hv"
	"rtvirt/internal/sched/rtxen"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

// Property: analysis vs. reality. If the periodic-resource analysis deems
// a random EDF task set schedulable on interface (Π, Θ), then simulating
// that task set inside a deferrable server (Θ, Π) on a dedicated CPU must
// meet every deadline. This cross-checks internal/csa against the live
// rtxen scheduler — the two were implemented independently from the
// literature.
func TestQuickAnalysisMatchesSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed property")
	}
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		// 1–3 tasks with ms-granular parameters, total utilization ≤ 0.8.
		var tasks []task.Params
		budget := 0.8
		n := 1 + rng.Intn(3)
		for i := 0; i < n && budget > 0.05; i++ {
			period := simtime.Millis(4 + rng.Int63n(28))
			maxBW := budget
			if maxBW > 0.5 {
				maxBW = 0.5
			}
			bw := 0.05 + rng.Float64()*(maxBW-0.05)
			slice := simtime.Duration(bw * float64(period))
			if slice < simtime.Micros(200) {
				slice = simtime.Micros(200)
			}
			tasks = append(tasks, task.Params{Slice: slice, Period: period})
			budget -= float64(slice) / float64(period)
		}
		// Random candidate period; skip draws the analysis rejects.
		period := simtime.Millis(1 + rng.Int63n(4))
		theta, ok := MinBudgetQ(tasks, period, simtime.Micros(100))
		if !ok {
			return true
		}
		iface := Interface{Period: period, Budget: theta}
		if !Schedulable(tasks, iface) {
			t.Logf("seed %d: MinBudget returned unschedulable %v", seed, iface)
			return false
		}

		// Simulate: one VM on a dedicated CPU behind the (Θ, Π) server.
		s := sim.New(seed)
		h := hv.NewHost(s, 1, rtxen.New(rtxen.DefaultConfig()), hv.CostModel{})
		gc := guest.Config{CrossLayer: false, VCPUCapacity: 1.0}
		g, err := guest.NewOS(h, "vm", gc, 0)
		if err != nil {
			return false
		}
		if _, err := g.AddVCPU(hv.Reservation{Budget: iface.Budget, Period: iface.Period}, 256); err != nil {
			return false
		}
		var live []*task.Task
		for i, p := range tasks {
			tk := task.New(i, "t", task.Periodic, p)
			if err := g.RegisterOn(tk, 0); err != nil {
				return false
			}
			live = append(live, tk)
		}
		h.Start()
		for _, tk := range live {
			g.StartPeriodic(tk, 0)
		}
		s.RunFor(simtime.Seconds(4))
		for _, tk := range live {
			if st := tk.Stats(); st.Missed != 0 {
				t.Logf("seed %d: analysis said %v fits %v but simulation missed %d/%d (task %v)",
					seed, tasks, iface, st.Missed, st.Released, tk.Params())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

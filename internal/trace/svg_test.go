package trace_test

import (
	"bytes"
	"strings"
	"testing"

	"rtvirt/internal/simtime"
	"rtvirt/internal/trace"
)

func TestWriteSVG(t *testing.T) {
	var r trace.Recorder
	r.Add(trace.Record{At: 0, Kind: trace.Dispatch, PCPU: 0, VM: "vmA"})
	r.Add(trace.Record{At: simtime.Time(ms(5)), Kind: trace.Dispatch, PCPU: 0, VM: "vmB"})
	r.Add(trace.Record{At: simtime.Time(ms(6)), Kind: trace.JobMiss, PCPU: 0, Task: "late", Arg: int64(simtime.Micros(50))})
	r.Add(trace.Record{At: simtime.Time(ms(8)), Kind: trace.Dispatch, PCPU: 1, VM: "vmA"})
	var buf bytes.Buffer
	if err := r.WriteSVG(&buf, 2, 0, simtime.Time(ms(10))); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	for _, want := range []string{"<svg", "pcpu0", "pcpu1", "vmA", "vmB", "miss: late", "</svg>"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("svg missing %q", want)
		}
	}
	// Invalid windows are rejected.
	if err := r.WriteSVG(&buf, 2, 10, 10); err == nil {
		t.Fatal("degenerate window accepted")
	}
	if err := r.WriteSVG(&buf, 0, 0, 10); err == nil {
		t.Fatal("zero pcpus accepted")
	}
}

// Golden test: a hand-built two-VM trace renders byte-identical SVG. This
// pins the renderer's output so refactors of the event pipeline cannot
// silently change the visualisation. Refresh with `go test -run
// TestWriteSVGGoldenTwoVM -update ./internal/trace/`.
func TestWriteSVGGoldenTwoVM(t *testing.T) {
	var r trace.Recorder
	r.Add(trace.Record{At: 0, Kind: trace.Dispatch, PCPU: 0, VM: "vmA", VCPU: 0})
	r.Add(trace.Record{At: 0, Kind: trace.Dispatch, PCPU: 1, VM: "vmB", VCPU: 0})
	r.Add(trace.Record{At: simtime.Time(ms(2)), Kind: trace.JobDone, PCPU: 0, VM: "vmA", VCPU: 0, Task: "a", Arg: int64(ms(2))})
	r.Add(trace.Record{At: simtime.Time(ms(2)), Kind: trace.Dispatch, PCPU: 0}) // idle
	r.Add(trace.Record{At: simtime.Time(ms(4)), Kind: trace.Dispatch, PCPU: 0, VM: "vmB", VCPU: 1})
	r.Add(trace.Record{At: simtime.Time(ms(6)), Kind: trace.JobMiss, PCPU: 1, VM: "vmB", VCPU: 0, Task: "b", Arg: int64(simtime.Micros(500))})
	r.Add(trace.Record{At: simtime.Time(ms(8)), Kind: trace.Dispatch, PCPU: 1, VM: "vmA", VCPU: 0})
	var buf bytes.Buffer
	if err := r.WriteSVG(&buf, 2, 0, simtime.Time(ms(10))); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "gantt_two_vm.svg", buf.Bytes())
}

// End-to-end: an actual run's trace renders valid SVG with boxes.
func TestWriteSVGEndToEnd(t *testing.T) {
	rec := runTracedScenario(t)
	var buf bytes.Buffer
	if err := rec.WriteSVG(&buf, 1, 0, simtime.Time(simtime.Millis(100))); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "<rect") < 10 {
		t.Fatalf("svg has too few boxes:\n%.300s", buf.String())
	}
}

package eventq

import (
	"math/rand"
	"testing"

	"rtvirt/internal/simtime"
)

// refEvent is one pending event in the naive reference model.
type refEvent struct {
	at  simtime.Time
	seq uint64
	id  int
}

// refModel is a sorted-slice reference implementation of the queue's
// semantics: fire in (time, insertion-sequence) order, cancellation by id,
// reschedule = cancel + fresh insert with the same id.
type refModel struct {
	pending []refEvent
	seq     uint64
}

func (m *refModel) schedule(at simtime.Time, id int) {
	m.pending = append(m.pending, refEvent{at: at, seq: m.seq, id: id})
	m.seq++
}

func (m *refModel) find(id int) int {
	for i, e := range m.pending {
		if e.id == id {
			return i
		}
	}
	return -1
}

func (m *refModel) cancel(id int) {
	if i := m.find(id); i >= 0 {
		m.pending = append(m.pending[:i], m.pending[i+1:]...)
	}
}

func (m *refModel) reschedule(id int, at simtime.Time) {
	m.cancel(id)
	m.schedule(at, id)
}

func (m *refModel) peek() simtime.Time {
	if len(m.pending) == 0 {
		return simtime.Never
	}
	min := 0
	for i := 1; i < len(m.pending); i++ {
		e, b := m.pending[i], m.pending[min]
		if e.at < b.at || (e.at == b.at && e.seq < b.seq) {
			min = i
		}
	}
	return m.pending[min].at
}

func (m *refModel) fire() (int, bool) {
	if len(m.pending) == 0 {
		return 0, false
	}
	min := 0
	for i := 1; i < len(m.pending); i++ {
		e, b := m.pending[i], m.pending[min]
		if e.at < b.at || (e.at == b.at && e.seq < b.seq) {
			min = i
		}
	}
	id := m.pending[min].id
	m.pending = append(m.pending[:min], m.pending[min+1:]...)
	return id, true
}

// backendsUnderTest enumerates both queue backends for parameterized tests.
var backendsUnderTest = []Backend{BackendHeap, BackendWheel}

// TestDifferentialAgainstReferenceModel drives ~1e5 random
// schedule/cancel/reschedule/fire operations through the intrusive 4-ary
// heap, the hierarchical timing wheel, and the sorted-slice reference model
// in lockstep — the same op stream hits all three — checking Len, PeekTime,
// and every fired event id after each operation. The cancel/reschedule mix
// exercises the heap's tombstone/compaction machinery and the wheel's eager
// removal from all three containers (run, slot chains, overflow heap).
// Seeds are logged so a failure reproduces with a one-line change.
func TestDifferentialAgainstReferenceModel(t *testing.T) {
	seeds := []int64{1, 7, 42, 20260806}
	for _, seed := range seeds {
		t.Logf("differential seed %d", seed)
		rng := rand.New(rand.NewSource(seed))
		var heap, wheel Queue
		wheel.SetBackend(BackendWheel)
		qs := []*Queue{&heap, &wheel}
		var m refModel

		type liveEvent struct {
			h  [2]Handle // one per queue, same order as qs
			id int
		}
		var live []liveEvent
		nextID := 0
		fired := [2]int{-1, -1}
		const ops = 100_000
		randTime := func() simtime.Time { return simtime.Time(rng.Int63n(1 << 20)) }

		for op := 0; op < ops; op++ {
			switch r := rng.Intn(10); {
			case r < 4 || len(live) == 0: // schedule
				id := nextID
				nextID++
				at := randTime()
				var le liveEvent
				le.id = id
				for qi, q := range qs {
					qi := qi
					le.h[qi] = q.Schedule(at, func(simtime.Time) { fired[qi] = id })
				}
				m.schedule(at, id)
				live = append(live, le)
			case r < 6: // cancel
				i := rng.Intn(len(live))
				for qi, q := range qs {
					q.Cancel(live[i].h[qi])
				}
				m.cancel(live[i].id)
				live = append(live[:i], live[i+1:]...)
			case r < 8: // reschedule an active handle in place
				i := rng.Intn(len(live))
				at := randTime()
				for qi, q := range qs {
					live[i].h[qi] = q.Reschedule(live[i].h[qi], at)
				}
				m.reschedule(live[i].id, at)
			default: // fire
				fired = [2]int{-1, -1}
				want, ok := m.fire()
				for qi, q := range qs {
					got := q.Fire()
					if got != ok {
						t.Fatalf("seed %d op %d [%v]: Fire = %v, model %v", seed, op, q.Backend(), got, ok)
					}
					if ok && fired[qi] != want {
						t.Fatalf("seed %d op %d [%v]: fired id %d, model %d", seed, op, q.Backend(), fired[qi], want)
					}
				}
				if ok {
					for i := range live {
						if live[i].id == want {
							live = append(live[:i], live[i+1:]...)
							break
						}
					}
				}
			}
			for _, q := range qs {
				if q.Len() != len(m.pending) {
					t.Fatalf("seed %d op %d [%v]: Len = %d, model %d", seed, op, q.Backend(), q.Len(), len(m.pending))
				}
				if q.PeekTime() != m.peek() {
					t.Fatalf("seed %d op %d [%v]: PeekTime = %v, model %v", seed, op, q.Backend(), q.PeekTime(), m.peek())
				}
			}
		}
		// Drain and compare the tail ordering.
		for {
			fired = [2]int{-1, -1}
			want, ok := m.fire()
			for qi, q := range qs {
				got := q.Fire()
				if got != ok {
					t.Fatalf("seed %d drain [%v]: Fire = %v, model %v", seed, q.Backend(), got, ok)
				}
				if ok && fired[qi] != want {
					t.Fatalf("seed %d drain [%v]: fired id %d, model %d", seed, q.Backend(), fired[qi], want)
				}
			}
			if !ok {
				break
			}
		}
		for _, q := range qs {
			if q.Len() != 0 {
				t.Fatalf("seed %d [%v]: Len after drain = %d", seed, q.Backend(), q.Len())
			}
		}
	}
}

// TestSteadyStateZeroAlloc locks the zero-allocation property of the
// steady-state kernel path on both backends: a standing event being
// rescheduled plus a schedule→fire stream must not allocate once the pools
// (and, for the wheel, the run/overflow backing arrays) are warm.
func TestSteadyStateZeroAlloc(t *testing.T) {
	for _, b := range backendsUnderTest {
		t.Run(b.String(), func(t *testing.T) {
			var q Queue
			q.SetBackend(b)
			nop := func(simtime.Time) {}
			standing := make([]Handle, 64)
			for i := range standing {
				standing[i] = q.Schedule(simtime.Time(1_000_000+i), nop)
			}
			// Warm the free list and the containers' backing arrays.
			for i := 0; i < 1024; i++ {
				q.Schedule(simtime.Time(i), nop)
			}
			for q.Len() > len(standing) {
				q.Fire()
			}
			now := simtime.Time(0)
			i := 0
			allocs := testing.AllocsPerRun(1000, func() {
				k := i % len(standing)
				standing[k] = q.Reschedule(standing[k], now+1_000_000)
				q.Schedule(now+1, nop)
				q.Fire()
				now++
				i++
			})
			if allocs != 0 {
				t.Fatalf("steady-state schedule→fire→reschedule allocates %.1f/op, want 0", allocs)
			}
		})
	}
}

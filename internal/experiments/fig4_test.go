package experiments

import (
	"strings"
	"testing"

	"rtvirt/internal/simtime"
)

func TestFigure4DynamicRTAs(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute simulation")
	}
	cfg := DefaultFigure4Config()
	cfg.Duration = 3 * simtime.Minute
	r := Figure4(cfg)
	if r.RTAsRun < 10 {
		t.Fatalf("only %d RTAs ran", r.RTAsRun)
	}
	// §4.3's claim: strong timeliness through dynamic arrivals — at least
	// 99% of all deadlines met, worst task within 1%.
	if ratio := r.Misses.Ratio(); ratio > 0.01 {
		t.Fatalf("overall miss ratio %.4f", ratio)
	}
	if r.WorstMissPct > 1.0 {
		t.Fatalf("worst per-task miss %.3f%%", r.WorstMissPct)
	}
	// Dynamic allocation must beat static peak provisioning.
	if r.AvgAllocated >= r.PeakAllocated {
		t.Fatalf("no saving: avg %.2f vs peak %.2f", r.AvgAllocated, r.PeakAllocated)
	}
	// The time series exists for all four VMs.
	for _, vm := range []string{"vm1", "vm2", "vm3", "vm4"} {
		if len(r.PerVM[vm]) < 10 {
			t.Fatalf("%s time series has %d samples", vm, len(r.PerVM[vm]))
		}
	}
	if !strings.Contains(r.Render(), "Figure 4") {
		t.Fatal("render broken")
	}
}

// Package eventq provides the cancellable pending-event queue that drives
// the discrete-event simulator.
//
// Events fire in non-decreasing time order; events scheduled for the same
// instant fire in FIFO order of insertion so that simulation runs are fully
// deterministic.
//
// Event records are pooled on a per-queue free list and reused across
// Schedule calls, so the steady-state hot path (schedule → fire →
// reschedule) allocates nothing. Cancellation is lazy: Cancel marks the
// event as a tombstone and leaves it in the heap; tombstones are discarded
// when they surface at the top (PeekTime/Fire) or when a compaction pass
// rebuilds the heap. Because records are recycled, callers hold a
// generation-checked Handle rather than a raw pointer — a Handle to an
// event that has fired, been cancelled, or been reused is simply inert.
package eventq

import (
	"container/heap"

	"rtvirt/internal/simtime"
)

const (
	statePending   byte = iota // queued, will fire
	stateTombstone             // cancelled, still occupying a heap slot
	stateFree                  // recycled onto the free list
)

// Event is the pooled internal record for one scheduled callback. Callers
// never hold an *Event directly; they hold a Handle.
type Event struct {
	at    simtime.Time
	seq   uint64 // insertion order tiebreak
	gen   uint64 // bumped on every recycle; validates Handles
	fn    func(now simtime.Time)
	state byte
}

// Handle identifies one scheduled event. The zero Handle is valid and
// inert: Active reports false and Cancel is a no-op. A Handle goes inert
// the moment its event fires or is cancelled — even if the underlying
// record is later reused for an unrelated event, the generation check
// keeps the old Handle from touching it.
type Handle struct {
	e   *Event
	gen uint64
}

// Active reports whether the event is still queued and will fire.
func (h Handle) Active() bool {
	return h.e != nil && h.e.gen == h.gen && h.e.state == statePending
}

// At reports the instant the event is scheduled for, or simtime.Never if
// the Handle is no longer active.
func (h Handle) At() simtime.Time {
	if !h.Active() {
		return simtime.Never
	}
	return h.e.at
}

// Queue is a time-ordered queue of events. The zero value is ready to use.
// A Queue (like the simulator it drives) is single-threaded; concurrent
// simulation runs each own their own Queue.
type Queue struct {
	h    eventHeap
	free []*Event // recycled records, bounded by peak live events
	seq  uint64
	live int // pending (non-tombstone) events
}

// Len reports the number of live events in the queue.
func (q *Queue) Len() int { return q.live }

// Schedule enqueues fn to run at instant at and returns a Handle that can
// be used to cancel it.
func (q *Queue) Schedule(at simtime.Time, fn func(now simtime.Time)) Handle {
	if fn == nil {
		panic("eventq: Schedule with nil callback")
	}
	var e *Event
	if n := len(q.free); n > 0 {
		e = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
	} else {
		e = &Event{}
	}
	e.at, e.fn, e.seq, e.state = at, fn, q.seq, statePending
	q.seq++
	heap.Push(&q.h, e)
	q.live++
	return Handle{e: e, gen: e.gen}
}

// Cancel removes the event from the queue if it has not fired yet. It is
// idempotent and inert on zero, fired, cancelled, and recycled Handles —
// in particular, cancelling after the event fired cannot corrupt Len.
func (q *Queue) Cancel(h Handle) {
	if !h.Active() {
		return
	}
	e := h.e
	e.state = stateTombstone
	e.fn = nil
	q.live--
	q.maybeCompact()
}

// PeekTime reports the firing time of the earliest live event, or
// simtime.Never when the queue is empty.
func (q *Queue) PeekTime() simtime.Time {
	q.drain()
	if len(q.h) == 0 {
		return simtime.Never
	}
	return q.h[0].at
}

// Fire pops the earliest live event and invokes its callback with now set
// to the event's scheduled time. It reports false when the queue is empty.
// The event record is recycled before the callback runs, so a callback
// that immediately reschedules reuses it without allocating.
func (q *Queue) Fire() bool {
	q.drain()
	if len(q.h) == 0 {
		return false
	}
	e := heap.Pop(&q.h).(*Event)
	q.live--
	at, fn := e.at, e.fn
	q.recycle(e)
	fn(at)
	return true
}

// drain discards tombstones sitting at the top of the heap.
func (q *Queue) drain() {
	for len(q.h) > 0 && q.h[0].state == stateTombstone {
		q.recycle(heap.Pop(&q.h).(*Event))
	}
}

// maybeCompact rebuilds the heap from live events when tombstones dominate
// it, bounding memory for workloads that cancel far-future events faster
// than the clock reaches them.
func (q *Queue) maybeCompact() {
	if len(q.h) < 64 || q.live*2 >= len(q.h) {
		return
	}
	kept := q.h[:0]
	for _, e := range q.h {
		if e.state == statePending {
			kept = append(kept, e)
		} else {
			q.recycle(e)
		}
	}
	for i := len(kept); i < len(q.h); i++ {
		q.h[i] = nil
	}
	q.h = kept
	heap.Init(&q.h)
}

// recycle returns a record to the free list, invalidating outstanding
// Handles to it.
func (q *Queue) recycle(e *Event) {
	e.gen++
	e.fn = nil
	e.state = stateFree
	q.free = append(q.free, e)
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*Event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

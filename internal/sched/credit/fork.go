package credit

import (
	"rtvirt/internal/clone"
	"rtvirt/internal/hv"
	"rtvirt/internal/sim"
)

// ForkHandler implements sim.Handler: deep-copy every VCPU's credit
// account (credits, boost, cap, charging PCPU) onto the cloned VCPUs and
// rebuild the round-robin order with remapped pointers. The cursor is
// carried verbatim so the fork picks up the rotation exactly where the
// source left it.
func (s *Scheduler) ForkHandler(ctx *clone.Ctx) sim.Handler {
	if n, ok := ctx.Lookup(s); ok {
		return n.(*Scheduler)
	}
	ns := &Scheduler{
		cfg:     s.cfg,
		h:       clone.Get(ctx, s.h),
		id:      s.id,
		cursor:  s.cursor,
		started: s.started,
		byID:    make(map[int32]*hv.VCPU, len(s.byID)),
	}
	ctx.Put(s, ns)
	ns.vcpus = make([]*hv.VCPU, len(s.vcpus))
	for i, v := range s.vcpus {
		nv := clone.Get(ctx, v)
		nst := &vcpuState{}
		*nst = *state(v)
		nv.SchedData = nst
		ns.vcpus[i] = nv
	}
	for id, v := range s.byID {
		ns.byID[id] = clone.Get(ctx, v)
	}
	return ns
}

// Package eventq provides the cancellable pending-event queue that drives
// the discrete-event simulator.
//
// Events fire in non-decreasing time order; events scheduled for the same
// instant fire in FIFO order of insertion so that simulation runs are fully
// deterministic.
package eventq

import (
	"container/heap"

	"rtvirt/internal/simtime"
)

// Event is a scheduled callback. A nil *Event is safe to Cancel.
type Event struct {
	at     simtime.Time
	seq    uint64 // insertion order tiebreak
	index  int    // heap index, -1 when not queued
	fn     func(now simtime.Time)
	cancel bool
}

// At reports the instant the event is scheduled for.
func (e *Event) At() simtime.Time { return e.at }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e == nil || e.cancel }

// Queue is a time-ordered queue of events. The zero value is ready to use.
type Queue struct {
	h   eventHeap
	seq uint64
	len int // live (non-cancelled) events
}

// Len reports the number of live events in the queue.
func (q *Queue) Len() int { return q.len }

// Schedule enqueues fn to run at instant at and returns a handle that can
// be used to cancel it.
func (q *Queue) Schedule(at simtime.Time, fn func(now simtime.Time)) *Event {
	if fn == nil {
		panic("eventq: Schedule with nil callback")
	}
	e := &Event{at: at, seq: q.seq, index: -1, fn: fn}
	q.seq++
	heap.Push(&q.h, e)
	q.len++
	return e
}

// Cancel removes the event from the queue if it has not fired yet. It is
// idempotent and safe to call on nil.
func (q *Queue) Cancel(e *Event) {
	if e == nil || e.cancel {
		return
	}
	e.cancel = true
	e.fn = nil
	if e.index >= 0 {
		heap.Remove(&q.h, e.index)
	}
	q.len--
}

// PeekTime reports the firing time of the earliest live event, or
// simtime.Never when the queue is empty.
func (q *Queue) PeekTime() simtime.Time {
	if len(q.h) == 0 {
		return simtime.Never
	}
	return q.h[0].at
}

// Pop removes and returns the earliest live event, or nil when empty.
func (q *Queue) Pop() *Event {
	if len(q.h) == 0 {
		return nil
	}
	e := heap.Pop(&q.h).(*Event)
	q.len--
	return e
}

// Fire pops the earliest event and invokes its callback with now set to the
// event's scheduled time. It reports false when the queue is empty.
func (q *Queue) Fire() bool {
	e := q.Pop()
	if e == nil {
		return false
	}
	fn := e.fn
	e.fn = nil
	fn(e.at)
	return true
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

package trace_test

import (
	"bytes"
	"strings"
	"testing"

	"rtvirt/internal/simtime"
	"rtvirt/internal/trace"
)

func TestKindStringRoundTrip(t *testing.T) {
	for i := 0; i < trace.NumKinds; i++ {
		k := trace.Kind(i)
		got, err := trace.KindFromString(k.String())
		if err != nil || got != k {
			t.Fatalf("kind %d round-trip: got %v, err %v", i, got, err)
		}
	}
	if _, err := trace.KindFromString("bogus"); err == nil {
		t.Fatal("unknown kind name accepted")
	}
}

func TestCountsMerge(t *testing.T) {
	var a, b trace.Counts
	a[trace.Dispatch] = 3
	a[trace.HypercallIncBW] = 1
	b[trace.Dispatch] = 2
	b[trace.HypercallDecBW] = 4
	a.Merge(b)
	if a[trace.Dispatch] != 5 || a.Hypercalls() != 5 || a.Total() != 10 {
		t.Fatalf("merge wrong: %v", a)
	}
	if s := a.String(); !strings.Contains(s, "dispatch=5") || !strings.Contains(s, "hc-dec-bw=4") {
		t.Fatalf("counts string wrong: %q", s)
	}
	var empty trace.Counts
	if empty.String() != "(no events)" {
		t.Fatalf("empty counts string: %q", empty.String())
	}
}

func TestStatsSink(t *testing.T) {
	s := trace.NewStatsSink(0.5)
	for i := int64(1); i <= 99; i++ {
		s.Consume(trace.Event{Kind: trace.JobDone, Arg: int64(simtime.Millis(i))})
	}
	s.Consume(trace.Event{Kind: trace.Migrate, PCPU: 1})
	c := s.Counts()
	if c[trace.JobDone] != 99 || c[trace.Migrate] != 1 {
		t.Fatalf("stats counts wrong: %v", c)
	}
	med, ok := s.ArgQuantile(trace.JobDone)
	if !ok {
		t.Fatal("no quantile for job-done")
	}
	// P² estimate of the median of 1..99ms should be near 50ms.
	if med < simtime.Millis(40) || med > simtime.Millis(60) {
		t.Fatalf("median estimate %v, want ≈50ms", med)
	}
	// Count-only kinds carry no distribution.
	if _, ok := s.ArgQuantile(trace.Migrate); ok {
		t.Fatal("quantile reported for a count-only kind")
	}
	var buf bytes.Buffer
	if err := s.Report(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"p50(arg)", "job-done", "99", "migrate"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

package hv

import (
	"testing"

	"rtvirt/internal/dist"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

// TestConstCostNeverDraws pins the property the golden tests ride on: a
// constant cost term returns its value without advancing the RNG, so the
// all-constant default model leaves the cost stream untouched.
func TestConstCostNeverDraws(t *testing.T) {
	r := sim.NewRNG(99)
	ref := sim.NewRNG(99)
	c := ConstCost(simtime.Micros(7))
	for i := 0; i < 5; i++ {
		if got := c.Sample(r); got != simtime.Micros(7) {
			t.Fatalf("sample %d = %v, want 7µs", i, got)
		}
	}
	var zero Cost
	if got := zero.Sample(r); got != 0 {
		t.Fatalf("zero Cost sampled %v, want exactly 0", got)
	}
	if r.Uint64() != ref.Uint64() {
		t.Fatal("constant samples advanced the RNG stream")
	}
	if !ConstCost(0).Constant() || !zero.Constant() {
		t.Fatal("constant terms must report Constant()")
	}
}

// TestDistCostDraws checks distribution terms do consume the stream and
// respect the distribution's support.
func TestDistCostDraws(t *testing.T) {
	r := sim.NewRNG(99)
	ref := sim.NewRNG(99)
	c := DistCost(dist.Uniform{Lo: simtime.Micros(2), Hi: simtime.Micros(4)})
	if c.Constant() {
		t.Fatal("distribution term reports Constant()")
	}
	for i := 0; i < 100; i++ {
		got := c.Sample(r)
		if got < simtime.Micros(2) || got > simtime.Micros(4) {
			t.Fatalf("sample %d = %v outside [2µs, 4µs]", i, got)
		}
	}
	if r.Uint64() == ref.Uint64() {
		t.Fatal("distribution samples did not advance the RNG stream")
	}
}

// TestHypercallCostPerFlag checks flag-specific selection and the
// SetHypercall broadcast.
func TestHypercallCostPerFlag(t *testing.T) {
	var m CostModel
	m.HypercallIncBW = ConstCost(simtime.Micros(1))
	m.HypercallDecBW = ConstCost(simtime.Micros(2))
	m.HypercallIncDecBW = ConstCost(simtime.Micros(3))
	for _, tc := range []struct {
		flag HypercallFlag
		want simtime.Duration
	}{
		{IncBW, simtime.Micros(1)},
		{DecBW, simtime.Micros(2)},
		{IncDecBW, simtime.Micros(3)},
	} {
		if got := m.HypercallCost(tc.flag).Mean(); got != tc.want {
			t.Errorf("HypercallCost(%v) = %v, want %v", tc.flag, got, tc.want)
		}
	}
	m.SetHypercall(ConstCost(simtime.Micros(9)))
	if m.HypercallIncBW.Mean() != simtime.Micros(9) ||
		m.HypercallDecBW.Mean() != simtime.Micros(9) ||
		m.HypercallIncDecBW.Mean() != simtime.Micros(9) {
		t.Error("SetHypercall did not broadcast to every flag")
	}
}

// TestModelConstant pins which stock models can touch the cost stream.
func TestModelConstant(t *testing.T) {
	def := DefaultCosts()
	if !def.Constant() {
		t.Error("DefaultCosts must be all-constant (golden bit-identity depends on it)")
	}
	cal := CalibratedCosts()
	if cal.Constant() {
		t.Error("CalibratedCosts should carry distribution terms")
	}
	var zero CostModel
	if !zero.Constant() {
		t.Error("zero model must be constant")
	}
}

// TestCtxSwitchWarmCold exercises the cache-state keying directly: a VCPU
// that never ran is cold everywhere, one that last ran on p is warm on p
// and cold elsewhere, and going idle (nil incoming VCPU) is warm.
func TestCtxSwitchWarmCold(t *testing.T) {
	var m CostModel
	m.CtxSwitchWarm = ConstCost(simtime.Micros(1))
	m.CtxSwitchCold = ConstCost(simtime.Micros(9))
	_, h := simAndHost(t, 2, m)
	g := newFifoGuest(h)
	vm := h.NewVM("vm0", g)
	v, err := vm.AddVCPU(true, Reservation{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	p0, p1 := h.PCPUs()[0], h.PCPUs()[1]
	if got := h.ctxSwitchCost(p0, v); got != simtime.Micros(9) {
		t.Errorf("first dispatch = %v, want cold 9µs", got)
	}
	h.hot[v.ID].LastPCPU = int32(p0.ID)
	if got := h.ctxSwitchCost(p0, v); got != simtime.Micros(1) {
		t.Errorf("same-PCPU resume = %v, want warm 1µs", got)
	}
	if got := h.ctxSwitchCost(p1, v); got != simtime.Micros(9) {
		t.Errorf("cross-PCPU resume = %v, want cold 9µs", got)
	}
	if got := h.ctxSwitchCost(p1, nil); got != simtime.Micros(1) {
		t.Errorf("going idle = %v, want warm 1µs", got)
	}
}

// TestMigrationCostScalesWithWorkingSet checks the per-MiB term rides on
// the VM's declared working set.
func TestMigrationCostScalesWithWorkingSet(t *testing.T) {
	var m CostModel
	m.Migration = ConstCost(simtime.Micros(3))
	m.MigrationPerMiB = ConstCost(10 * simtime.Nanosecond)
	_, h := simAndHost(t, 2, m)
	g := newFifoGuest(h)
	vm := h.NewVM("vm0", g)
	v, err := vm.AddVCPU(true, Reservation{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.migrationCost(v); got != simtime.Micros(3) {
		t.Errorf("zero working set: migration = %v, want the fixed 3µs", got)
	}
	vm.WorkingSetMiB = 100
	want := simtime.Micros(3) + 100*10*simtime.Nanosecond
	if got := h.migrationCost(v); got != want {
		t.Errorf("100MiB working set: migration = %v, want %v", got, want)
	}
}

// TestMigrationAccountingWithWorkingSet re-runs the migration-bounce world
// with a per-MiB term armed and checks the meter scales exactly.
func TestMigrationAccountingWithWorkingSet(t *testing.T) {
	var m CostModel
	m.Migration = ConstCost(simtime.Micros(5))
	m.MigrationPerMiB = ConstCost(20 * simtime.Nanosecond)
	s, h := simAndHost(t, 2, m)
	g := newFifoGuest(h)
	vm := h.NewVM("vm0", g)
	vm.WorkingSetMiB = 50
	v, err := vm.AddVCPU(true, Reservation{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	tk := task.NewBackground(0, "hog")
	s.After(0, func(now simtime.Time) {
		g.submit(v, tk.Release(now, simtime.Millis(50)), now)
	})
	s.RunFor(simtime.Millis(100))
	if h.Overhead.Migrations == 0 {
		t.Fatal("no migrations in the bounce world")
	}
	perMig := simtime.Micros(5) + 50*20*simtime.Nanosecond
	want := simtime.Duration(h.Overhead.Migrations) * perMig
	if h.Overhead.MigrationTime != want {
		t.Fatalf("MigrationTime = %v, want %v (%d × %v)",
			h.Overhead.MigrationTime, want, h.Overhead.Migrations, perMig)
	}
}

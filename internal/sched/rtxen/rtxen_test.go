package rtxen

import (
	"fmt"
	"testing"

	"rtvirt/internal/guest"
	"rtvirt/internal/hv"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

func ms(n int64) simtime.Duration { return simtime.Millis(n) }

func pp(s, p int64) task.Params {
	return task.Params{Slice: ms(s), Period: ms(p)}
}

func res(b, p int64) hv.Reservation {
	return hv.Reservation{Budget: ms(b), Period: ms(p)}
}

// newRig builds a host with the RT-Xen scheduler and zero platform costs.
func newRig(t *testing.T, pcpus int) (*sim.Simulator, *hv.Host) {
	t.Helper()
	s := sim.New(5)
	h := hv.NewHost(s, pcpus, New(DefaultConfig()), hv.CostModel{})
	return s, h
}

// newServerVM creates a VM with one VCPU configured as a (budget, period)
// deferrable server, with a static (non-cross-layer) guest.
func newServerVM(t *testing.T, h *hv.Host, name string, r hv.Reservation) *guest.OS {
	t.Helper()
	cfg := guest.Config{CrossLayer: false, VCPUCapacity: 1.0}
	g, err := guest.NewOS(h, name, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddVCPU(r, 256); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestServerMeetsDeadlinesWhenProvisioned(t *testing.T) {
	s, h := newRig(t, 1)
	g := newServerVM(t, h, "vm0", res(5, 10))
	tk := task.New(0, "rta", task.Periodic, pp(4, 10))
	if err := g.RegisterOn(tk, 0); err != nil {
		t.Fatal(err)
	}
	h.Start()
	g.StartPeriodic(tk, 0)
	s.RunFor(simtime.Seconds(5))
	if st := tk.Stats(); st.Missed != 0 {
		t.Fatalf("missed %d/%d with a sufficient server", st.Missed, st.Released)
	}
}

func TestServerBudgetEnforced(t *testing.T) {
	// Task needs 6ms/10ms but the server only provides 4ms/10ms: most
	// deadlines must be missed, and the task must not starve competitors.
	s, h := newRig(t, 1)
	g := newServerVM(t, h, "starved", res(4, 10))
	g2 := newServerVM(t, h, "other", res(5, 10))
	tk := task.New(0, "big", task.Periodic, pp(6, 10))
	// Bypass guest admission (task bw 0.6 > server 0.4 is exactly the
	// misconfiguration we want): register against a permissive capacity.
	cfg := g.Config()
	_ = cfg
	if err := g.RegisterOn(tk, 0); err != nil {
		t.Fatal(err)
	}
	other := task.New(1, "ok", task.Periodic, pp(4, 10))
	if err := g2.RegisterOn(other, 0); err != nil {
		t.Fatal(err)
	}
	h.Start()
	g.StartPeriodic(tk, 0)
	g2.StartPeriodic(other, 0)
	s.RunFor(simtime.Seconds(2))
	if st := tk.Stats(); st.MissRatio() < 0.5 {
		t.Fatalf("under-provisioned task missed only %.2f%%", 100*st.MissRatio())
	}
	if st := other.Stats(); st.Missed != 0 {
		t.Fatalf("well-provisioned neighbour missed %d deadlines", st.Missed)
	}
}

func TestDeferrableServerServesLateArrival(t *testing.T) {
	// The server idles early in its period; a job arriving mid-period is
	// served from the retained budget (deferrable property).
	s, h := newRig(t, 1)
	g := newServerVM(t, h, "vm0", res(5, 10))
	sp := task.New(0, "sp", task.Sporadic, pp(3, 10))
	if err := g.RegisterOn(sp, 0); err != nil {
		t.Fatal(err)
	}
	h.Start()
	// Arrive 4ms into the server period; budget must still be 5ms.
	s.At(simtime.Time(ms(14)), func(now simtime.Time) { g.ReleaseJob(sp, 0) })
	s.RunFor(simtime.Seconds(1))
	st := sp.Stats()
	if st.Completed != 1 || st.Missed != 0 {
		t.Fatalf("sporadic stats: %+v", st)
	}
}

func TestGlobalEDFUsesBothPCPUs(t *testing.T) {
	s, h := newRig(t, 2)
	var tasks []*task.Task
	var guests []*guest.OS
	for i := 0; i < 3; i++ {
		g := newServerVM(t, h, fmt.Sprintf("vm%d", i), res(6, 10))
		tk := task.New(i, fmt.Sprintf("t%d", i), task.Periodic, pp(5, 10))
		if err := g.RegisterOn(tk, 0); err != nil {
			t.Fatal(err)
		}
		tasks = append(tasks, tk)
		guests = append(guests, g)
	}
	h.Start()
	for i, tk := range tasks {
		guests[i].StartPeriodic(tk, 0)
	}
	s.RunFor(simtime.Seconds(2))
	// 3 × 0.5 task load on 2 PCPUs via 0.6 servers under gEDF: with these
	// harmonic parameters gEDF schedules the servers without misses.
	for _, tk := range tasks {
		if st := tk.Stats(); st.Missed != 0 {
			t.Errorf("%s missed %d/%d", tk.Name, st.Missed, st.Released)
		}
	}
}

func TestAdmissionRejectsOverUtilization(t *testing.T) {
	_, h := newRig(t, 1)
	newServerVM(t, h, "a", res(7, 10))
	cfg := guest.Config{CrossLayer: false, VCPUCapacity: 1.0}
	g, err := guest.NewOS(h, "b", cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddVCPU(res(6, 10), 256); err == nil {
		t.Fatal("1.3 CPUs of servers admitted on a 1-CPU host")
	}
}

func TestFigure1BaselineMissesWithoutCrossLayer(t *testing.T) {
	// The motivating example (§2, Figure 1): VM1 (server 5,15) hosting
	// RTA1 (1,15) and RTA2 (4,15, released out of phase), VM2 (5,10),
	// VM3 (5,30). Both levels use EDF but cannot coordinate: RTA2 misses
	// roughly every other deadline. The figure's VMM is a plain EDF
	// scheduler, i.e. polling servers. (Under RTVirt the same workload
	// meets every deadline — see the dpwrap package tests.)
	s := sim.New(5)
	h := hv.NewHost(s, 1, New(PollingConfig()), hv.CostModel{})
	g1 := newServerVM(t, h, "vm1", res(5, 15))
	g2 := newServerVM(t, h, "vm2", res(5, 10))
	g3 := newServerVM(t, h, "vm3", res(5, 30))
	rta1 := task.New(0, "rta1", task.Periodic, pp(1, 15))
	rta2 := task.New(1, "rta2", task.Periodic, pp(4, 15))
	rta3 := task.New(2, "vm2-rta", task.Periodic, pp(5, 10))
	rta4 := task.New(3, "vm3-rta", task.Periodic, pp(5, 30))
	for _, r := range []struct {
		g *guest.OS
		t *task.Task
	}{{g1, rta1}, {g1, rta2}, {g2, rta3}, {g3, rta4}} {
		if err := r.g.RegisterOn(r.t, 0); err != nil {
			t.Fatal(err)
		}
	}
	h.Start()
	g1.StartPeriodic(rta1, 0)
	g1.StartPeriodic(rta2, simtime.Time(ms(2)))
	g2.StartPeriodic(rta3, 0)
	g3.StartPeriodic(rta4, 0)
	s.RunFor(simtime.Seconds(30))
	if ratio := rta2.Stats().MissRatio(); ratio < 0.25 {
		t.Fatalf("RTA2 missed only %.1f%% under uncoordinated two-level EDF; the"+
			" motivating problem should be visible", 100*ratio)
	}
	if rta1.Stats().MissRatio() > 0.05 {
		t.Fatalf("RTA1 (aligned with its VM) missed %.1f%%", 100*rta1.Stats().MissRatio())
	}
}

func TestBackgroundVMRunsOnLeftover(t *testing.T) {
	s, h := newRig(t, 1)
	g := newServerVM(t, h, "rt", res(5, 10))
	tk := task.New(0, "rta", task.Periodic, pp(5, 10))
	if err := g.RegisterOn(tk, 0); err != nil {
		t.Fatal(err)
	}
	cfg := guest.Config{CrossLayer: false, VCPUCapacity: 1.0}
	gbg, err := guest.NewOS(h, "bg", cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	hog := task.NewBackground(1, "hog")
	if err := gbg.Register(hog); err != nil {
		t.Fatal(err)
	}
	h.Start()
	g.StartPeriodic(tk, 0)
	s.After(0, func(now simtime.Time) { gbg.ReleaseJob(hog, simtime.Seconds(100)) })
	s.RunFor(simtime.Seconds(4))
	h.Sync()
	if st := tk.Stats(); st.Missed != 0 {
		t.Fatalf("RT missed %d with background load", st.Missed)
	}
	bgRun := gbg.VM().TotalRun()
	if bgRun < simtime.Millis(1500) || bgRun > simtime.Millis(2500) {
		t.Fatalf("background got %v of 4s, want ≈2s", bgRun)
	}
}

func TestUpdateVCPUClampsBudget(t *testing.T) {
	s, h := newRig(t, 1)
	g := newServerVM(t, h, "vm", res(8, 10))
	h.Start()
	v := g.VM().VCPUs[0]
	if err := h.Scheduler().UpdateVCPU(v, res(2, 10), s.Now()); err != nil {
		t.Fatal(err)
	}
	if v.Res != res(2, 10) {
		t.Fatalf("reservation = %v", v.Res)
	}
	sched := h.Scheduler().(*Scheduler)
	if st := sched.state(v); st.budget > ms(2) {
		t.Fatalf("budget %v not clamped to new reservation", st.budget)
	}
}

func TestQuantumDrivenOverheadAccrues(t *testing.T) {
	s := sim.New(5)
	costs := hv.CostModel{ScheduleBase: hv.ConstCost(simtime.Microsecond)}
	h := hv.NewHost(s, 1, New(DefaultConfig()), costs)
	g := newServerVM(t, h, "vm", res(9, 10))
	tk := task.New(0, "busy", task.Periodic, pp(8, 10))
	if err := g.RegisterOn(tk, 0); err != nil {
		t.Fatal(err)
	}
	h.Start()
	g.StartPeriodic(tk, 0)
	s.RunFor(simtime.Seconds(1))
	// Quantum-driven: roughly one schedule call per 1ms quantum of busy
	// time (800ms busy → ≥ 700 calls even before wake/replenish extras).
	if h.Overhead.ScheduleCalls < 700 {
		t.Fatalf("only %d schedule calls; quantum-driven accounting missing", h.Overhead.ScheduleCalls)
	}
}

// TestEventDrivenReducesScheduleCalls verifies the §4.5 note: the
// experimental event-driven RT-Xen cuts schedule() invocations versus the
// quantum-driven version while preserving timeliness, but its per-call
// sorted-queue cost remains (so RTVirt still wins — see Table 6).
func TestEventDrivenReducesScheduleCalls(t *testing.T) {
	run := func(cfg Config) (uint64, int) {
		s := sim.New(5)
		h := hv.NewHost(s, 2, New(cfg), hv.CostModel{ScheduleBase: hv.ConstCost(simtime.Microsecond)})
		var missed int
		var tasks []*task.Task
		for i := 0; i < 4; i++ {
			gcfg := guest.Config{CrossLayer: false, VCPUCapacity: 1.0}
			g, err := guest.NewOS(h, fmt.Sprintf("vm%d", i), gcfg, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := g.AddVCPU(res(4, 10), 256); err != nil {
				t.Fatal(err)
			}
			tk := task.New(i, fmt.Sprintf("t%d", i), task.Periodic, pp(3, 10))
			if err := g.RegisterOn(tk, 0); err != nil {
				t.Fatal(err)
			}
			tasks = append(tasks, tk)
			defer func(g *guest.OS, tk *task.Task) {}(g, tk)
			s.After(0, func(now simtime.Time) { g.StartPeriodic(tk, now) })
		}
		h.Start()
		s.RunFor(simtime.Seconds(5))
		for _, tk := range tasks {
			missed += tk.Stats().Missed
		}
		return h.Overhead.ScheduleCalls, missed
	}
	quantumCalls, quantumMiss := run(DefaultConfig())
	eventCalls, eventMiss := run(EventDrivenConfig())
	if quantumMiss != 0 || eventMiss != 0 {
		t.Fatalf("misses: quantum %d, event %d", quantumMiss, eventMiss)
	}
	if eventCalls >= quantumCalls/2 {
		t.Fatalf("event-driven made %d schedule calls vs quantum %d; expected a large cut",
			eventCalls, quantumCalls)
	}
}

package task

import (
	"testing"
	"testing/quick"

	"rtvirt/internal/simtime"
)

func ms(n int64) simtime.Duration { return simtime.Millis(n) }

func TestParamsValidity(t *testing.T) {
	cases := []struct {
		p    Params
		want bool
	}{
		{Params{Slice: ms(5), Period: ms(10)}, true},
		{Params{Slice: ms(10), Period: ms(10)}, true},
		{Params{Slice: ms(11), Period: ms(10)}, false},
		{Params{Slice: 0, Period: ms(10)}, false},
		{Params{Slice: ms(5), Period: 0}, false},
		{Params{Slice: -1, Period: ms(10)}, false},
	}
	for _, c := range cases {
		if got := c.p.Valid(); got != c.want {
			t.Errorf("Valid(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestBandwidth(t *testing.T) {
	p := Params{Slice: ms(5), Period: ms(20)}
	if bw := p.Bandwidth(); bw != 0.25 {
		t.Fatalf("Bandwidth = %g, want 0.25", bw)
	}
	if (Params{}).Bandwidth() != 0 {
		t.Fatal("zero Params bandwidth should be 0")
	}
}

func TestInvalidParamsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid params did not panic")
		}
	}()
	New(1, "bad", Periodic, Params{Slice: ms(20), Period: ms(10)})
}

func TestPeriodicJobLifecycle(t *testing.T) {
	tk := New(1, "t1", Periodic, Params{Slice: ms(2), Period: ms(10)})
	j := tk.Release(simtime.Time(ms(100)), ms(2))
	if j.Deadline != simtime.Time(ms(110)) {
		t.Fatalf("deadline = %v, want 110ms", j.Deadline)
	}
	if j.Missed(simtime.Time(ms(105))) {
		t.Fatal("job not yet missed at 105ms")
	}
	if !j.Missed(simtime.Time(ms(111))) {
		t.Fatal("unfinished job past deadline must be missed")
	}
	if done := j.Consume(ms(1)); done {
		t.Fatal("half-consumed job reported done")
	}
	if done := j.Consume(ms(1)); !done {
		t.Fatal("fully-consumed job not reported done")
	}
	j.Complete(simtime.Time(ms(106)))
	st := tk.Stats()
	if st.Released != 1 || st.Completed != 1 || st.Missed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MeanResp() != ms(6) || st.MaxResp != ms(6) {
		t.Fatalf("response stats wrong: %+v", st)
	}
	if st.TotalWork != ms(2) {
		t.Fatalf("TotalWork = %v, want 2ms", st.TotalWork)
	}
}

func TestLateCompletionCountsMiss(t *testing.T) {
	tk := New(1, "t", Periodic, Params{Slice: ms(2), Period: ms(10)})
	j := tk.Release(0, ms(2))
	j.Consume(ms(2))
	j.Complete(simtime.Time(ms(15)))
	st := tk.Stats()
	if st.Missed != 1 || st.Completed != 1 {
		t.Fatalf("stats = %+v, want 1 miss + 1 completion", st)
	}
	if st.MaxLateness != ms(5) {
		t.Fatalf("MaxLateness = %v, want 5ms", st.MaxLateness)
	}
	if st.MissRatio() != 1 {
		t.Fatalf("MissRatio = %g, want 1", st.MissRatio())
	}
}

func TestAbandonCountsMiss(t *testing.T) {
	tk := New(1, "t", Periodic, Params{Slice: ms(2), Period: ms(10)})
	j := tk.Release(0, ms(2))
	j.Abandon(simtime.Time(ms(3)))
	st := tk.Stats()
	if st.Missed != 1 || st.Abandoned != 1 || st.Completed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Abandon is idempotent.
	j.Abandon(simtime.Time(ms(4)))
	if tk.Stats().Missed != 1 {
		t.Fatal("double Abandon double-counted")
	}
}

func TestBackgroundNeverMisses(t *testing.T) {
	tk := NewBackground(1, "bg")
	j := tk.Release(0, simtime.Seconds(100))
	if j.Deadline != simtime.Never {
		t.Fatal("background job must have no deadline")
	}
	if j.Missed(simtime.Time(simtime.Seconds(1000))) {
		t.Fatal("background job can never miss")
	}
	j.Abandon(simtime.Time(ms(1)))
	if tk.Stats().Missed != 0 {
		t.Fatal("abandoned background job counted as miss")
	}
}

func TestSporadicMinInterarrival(t *testing.T) {
	tk := New(1, "s", Sporadic, Params{Slice: ms(2), Period: ms(50)})
	tk.Release(simtime.Time(ms(10)), ms(2))
	if got := tk.EarliestNextRelease(); got != simtime.Time(ms(60)) {
		t.Fatalf("EarliestNextRelease = %v, want 60ms", got)
	}
}

func TestSetParamsAffectsFutureJobs(t *testing.T) {
	tk := New(1, "t", Periodic, Params{Slice: ms(2), Period: ms(10)})
	tk.SetParams(Params{Slice: ms(4), Period: ms(20)})
	j := tk.Release(0, ms(4))
	if j.Deadline != simtime.Time(ms(20)) {
		t.Fatalf("deadline = %v, want 20ms after SetParams", j.Deadline)
	}
}

func TestOnJobDoneHook(t *testing.T) {
	tk := New(1, "t", Periodic, Params{Slice: ms(1), Period: ms(10)})
	var calls int
	tk.OnJobDone = func(j *Job) { calls++ }
	j := tk.Release(0, ms(1))
	j.Consume(ms(1))
	j.Complete(simtime.Time(ms(1)))
	j2 := tk.Release(simtime.Time(ms(10)), ms(1))
	j2.Abandon(simtime.Time(ms(11)))
	if calls != 2 {
		t.Fatalf("OnJobDone called %d times, want 2", calls)
	}
}

func TestConsumeGuards(t *testing.T) {
	tk := New(1, "t", Periodic, Params{Slice: ms(2), Period: ms(10)})
	j := tk.Release(0, ms(2))
	for _, bad := range []simtime.Duration{-1, ms(3)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Consume(%v) did not panic", bad)
				}
			}()
			j.Consume(bad)
		}()
	}
}

func TestCompleteGuards(t *testing.T) {
	tk := New(1, "t", Periodic, Params{Slice: ms(2), Period: ms(10)})
	j := tk.Release(0, ms(2))
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Complete with remaining work did not panic")
			}
		}()
		j.Complete(simtime.Time(ms(1)))
	}()
	j.Consume(ms(2))
	j.Complete(simtime.Time(ms(2)))
	defer func() {
		if recover() == nil {
			t.Fatal("double Complete did not panic")
		}
	}()
	j.Complete(simtime.Time(ms(3)))
}

func TestKindString(t *testing.T) {
	if Periodic.String() != "periodic" || Sporadic.String() != "sporadic" ||
		Background.String() != "background" || Kind(99).String() == "" {
		t.Fatal("Kind.String wrong")
	}
}

// Property: for any valid params, bandwidth is in (0, 1] and the deadline
// of a released job is exactly release + period.
func TestQuickReleaseInvariants(t *testing.T) {
	f := func(sRaw, pRaw uint16, at uint32) bool {
		s := simtime.Duration(sRaw) + 1
		p := s + simtime.Duration(pRaw)
		tk := New(1, "q", Periodic, Params{Slice: s, Period: p})
		bw := tk.Params().Bandwidth()
		j := tk.Release(simtime.Time(at), s)
		return bw > 0 && bw <= 1 && j.Deadline == simtime.Time(at).Add(p) && j.Remaining == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Consume conserves work: total consumed over a job equals demand
// when the job completes.
func TestQuickConsumeConservation(t *testing.T) {
	f := func(chunksRaw []uint8) bool {
		var total simtime.Duration
		chunks := make([]simtime.Duration, 0, len(chunksRaw))
		for _, c := range chunksRaw {
			d := simtime.Duration(c) + 1
			chunks = append(chunks, d)
			total += d
		}
		if total == 0 {
			return true
		}
		tk := New(1, "q", Periodic, Params{Slice: total, Period: total * 2})
		j := tk.Release(0, total)
		var consumed simtime.Duration
		for _, c := range chunks {
			done := j.Consume(c)
			consumed += c
			if done != (consumed == total) {
				return false
			}
		}
		return j.Remaining == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

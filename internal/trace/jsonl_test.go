package trace_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"rtvirt/internal/scenario"
	"rtvirt/internal/simtime"
	"rtvirt/internal/trace"
)

func sampleEvents() []trace.Event {
	return []trace.Event{
		{At: 0, Kind: trace.Admit, PCPU: -1, VM: "vm0", VCPU: 0, Arg: int64(ms(4))},
		{At: simtime.Time(ms(1)), Kind: trace.Dispatch, PCPU: 0, VM: "vm0", VCPU: 0, Arg: int64(ms(4))},
		{At: simtime.Time(ms(2)), Kind: trace.HypercallIncBW, PCPU: 0, VM: "vm0", VCPU: 0, Arg: int64(ms(2))},
		{At: simtime.Time(ms(3)), Kind: trace.GuestSwitch, PCPU: 0, VM: "vm0", VCPU: 0, Task: "b"},
		{At: simtime.Time(ms(4)), Kind: trace.Preempt, PCPU: 0, VM: "vm0", VCPU: 0, Task: "b", Arg: int64(ms(1))},
		{At: simtime.Time(ms(5)), Kind: trace.Migrate, PCPU: 1, VM: "vm0", VCPU: 0, Arg: 0},
		{At: simtime.Time(ms(6)), Kind: trace.JobDone, PCPU: 1, VM: "vm0", VCPU: 0, Task: "b", Arg: int64(ms(6))},
		{At: simtime.Time(ms(7)), Kind: trace.JobMiss, PCPU: 1, VM: "vm0", VCPU: 0, Task: "b", Arg: int64(simtime.Micros(250))},
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := trace.NewJSONL(&buf)
	events := sampleEvents()
	for _, ev := range events {
		sink.Consume(ev)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	var rec trace.Recorder
	var counts trace.Counts
	n, err := trace.ReadJSONL(&buf, &rec, &counts)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(events) {
		t.Fatalf("replayed %d events, want %d", n, len(events))
	}
	if !reflect.DeepEqual(rec.Records(), events) {
		t.Fatalf("jsonl round-trip mismatch:\n got %+v\nwant %+v", rec.Records(), events)
	}
	if counts.Total() != uint64(len(events)) || counts.Hypercalls() != 1 {
		t.Fatalf("replayed counts wrong: %v", counts)
	}
}

func TestJSONLBadInput(t *testing.T) {
	n, err := trace.ReadJSONL(strings.NewReader("{\"kind\":\"dispatch\"}\nnot json\n"))
	if err == nil {
		t.Fatal("malformed stream accepted")
	}
	if n != 1 {
		t.Fatalf("events before error = %d, want 1", n)
	}
	if _, err := trace.ReadJSONL(strings.NewReader("{\"kind\":\"no-such-kind\"}\n")); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// Golden test: the JSONL wire format is an interchange format between
// rtvirt-sim and rtvirt-analyze, so its exact bytes are pinned. Refresh
// with `go test -run TestJSONLGolden -update ./internal/trace/`.
func TestJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	sink := trace.NewJSONL(&buf)
	for _, ev := range sampleEvents() {
		sink.Consume(ev)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "events.jsonl", buf.Bytes())
}

// Acceptance round-trip: a live scenario streamed through the JSONL sink
// re-ingests with event counts identical to the simulator's own counters,
// and the hypercall/migration kinds agree with the kernel's overhead
// meters (the counter-parity invariant behind Table 6's columns).
func TestJSONLScenarioRoundTrip(t *testing.T) {
	sc := scenario.Scenario{
		Stack:   "rtvirt",
		PCPUs:   2,
		Seconds: 2,
		VMs: []scenario.VM{
			{Name: "vmA", VCPUs: 2, Tasks: []scenario.TaskSpec{
				{Name: "p1", SliceUS: 2000, PeriodUS: 10000},
				{Name: "s1", Kind: "sporadic", SliceUS: 500, PeriodUS: 5000, RateHz: 50},
			}},
			{Name: "vmB", VCPUs: 1, Tasks: []scenario.TaskSpec{
				{Name: "p2", SliceUS: 4000, PeriodUS: 20000},
			}},
		},
	}
	var buf bytes.Buffer
	sink := trace.NewJSONL(&buf)
	res, err := scenario.Run(sc, scenario.Options{Sinks: []trace.Sink{sink}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if res.Events.Total() == 0 {
		t.Fatal("no events counted")
	}

	var replayed trace.Counts
	n, err := trace.ReadJSONL(&buf, &replayed)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(n) != res.Events.Total() {
		t.Fatalf("replayed %d events, simulator counted %d", n, res.Events.Total())
	}
	if replayed != res.Events {
		t.Fatalf("replayed counts != simulator counts:\n got %v\nwant %v", replayed, res.Events)
	}
	if replayed.Hypercalls() != res.Overhead.Hypercalls {
		t.Fatalf("trace hypercalls %d != kernel meter %d", replayed.Hypercalls(), res.Overhead.Hypercalls)
	}
	if replayed[trace.Migrate] != res.Overhead.Migrations {
		t.Fatalf("trace migrations %d != kernel meter %d", replayed[trace.Migrate], res.Overhead.Migrations)
	}
}

package workload

import (
	"testing"

	"rtvirt/internal/guest"
	"rtvirt/internal/hv"
	"rtvirt/internal/sched/dpwrap"
	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
)

func TestIOAppEndToEnd(t *testing.T) {
	s := sim.New(31)
	h := hv.NewHost(s, 1, dpwrap.New(dpwrap.DefaultConfig()), hv.CostModel{})
	gc := guest.DefaultConfig()
	gc.Slack = 0
	g, err := guest.NewOS(h, "vm", gc, 1)
	if err != nil {
		t.Fatal(err)
	}
	app, err := NewIOApp(g, 0, DefaultIOAppConfig())
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	app.Start(0)
	s.RunFor(30 * simtime.Second)
	if app.Latency.Count() < 5000 {
		t.Fatalf("completed %d requests", app.Latency.Count())
	}
	// On an idle host, end-to-end ≈ compute1 + IO wait + compute2 ≈ 310µs;
	// the SLO (1ms) holds easily.
	if app.SLOViolations != 0 {
		t.Fatalf("%d SLO violations on an idle host", app.SLOViolations)
	}
	mean := app.Latency.Mean()
	if mean < simtime.Micros(250) || mean > simtime.Micros(450) {
		t.Fatalf("mean end-to-end %v, want ≈310µs", mean)
	}
	// The CPU phases alone are far below the end-to-end time: the gap is
	// the I/O wait RTVirt explicitly does not guarantee.
	if cpuMean := app.CPULatency.Mean(); cpuMean > simtime.Micros(100) {
		t.Fatalf("mean CPU-phase latency %v, want ≪ end-to-end", cpuMean)
	}
}

func TestIOAppUnderContention(t *testing.T) {
	// With a CPU hog sharing the host, the CPU phases stay bounded by the
	// reservation while the I/O wait is untouched: end-to-end holds.
	s := sim.New(31)
	h := hv.NewHost(s, 1, dpwrap.New(dpwrap.DefaultConfig()), hv.CostModel{})
	gc := guest.DefaultConfig()
	gc.Slack = 0
	g, err := guest.NewOS(h, "vm", gc, 1)
	if err != nil {
		t.Fatal(err)
	}
	app, err := NewIOApp(g, 0, DefaultIOAppConfig())
	if err != nil {
		t.Fatal(err)
	}
	gb, err := guest.NewOS(h, "bg", guest.Config{CrossLayer: true, VCPUCapacity: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	hog, err := NewCPUHog(gb, 1, "hog")
	if err != nil {
		t.Fatal(err)
	}
	h.Start()
	app.Start(0)
	hog.Start(0)
	s.RunFor(30 * simtime.Second)
	if app.Latency.Count() < 5000 {
		t.Fatalf("completed %d requests", app.Latency.Count())
	}
	violations := float64(app.SLOViolations) / float64(app.Latency.Count())
	if violations > 0.001 {
		t.Fatalf("SLO violations %.4f under contention; the reservation should hold", violations)
	}
}

func TestIOAppInvalidConfig(t *testing.T) {
	s := sim.New(31)
	h := hv.NewHost(s, 1, dpwrap.New(dpwrap.DefaultConfig()), hv.CostModel{})
	g, err := guest.NewOS(h, "vm", guest.DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewIOApp(g, 0, IOAppConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

// TestShippedScenarioFiles parses, validates and briefly runs every JSON
// scenario shipped under examples/scenarios, so the samples in the README
// cannot rot.
func TestShippedScenarioFiles(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("scenarios directory: %v", err)
	}
	found := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".json" {
			continue
		}
		found++
		t.Run(e.Name(), func(t *testing.T) {
			f, err := os.Open(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			sc, err := Parse(f)
			if err != nil {
				t.Fatal(err)
			}
			sc.Seconds = 2 // shorten for the test
			res, err := Run(sc, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Tasks) == 0 {
				t.Fatal("scenario ran no tasks")
			}
			for _, tr := range res.Tasks {
				if tr.Kind != "background" && tr.Stats.Released == 0 {
					t.Errorf("task %s released nothing", tr.Name)
				}
			}
		})
	}
	if found < 2 {
		t.Fatalf("only %d shipped scenarios found", found)
	}
}

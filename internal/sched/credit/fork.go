package credit

import (
	"rtvirt/internal/clone"
	"rtvirt/internal/sim"
)

// ForkHandler implements sim.Handler. With the credit accounts in a flat
// value array and the round-robin ring holding IDs, the fork is two slice
// copies — no pointers to remap. The cursor is carried verbatim so the
// fork picks up the rotation exactly where the source left it.
func (s *Scheduler) ForkHandler(ctx *clone.Ctx) sim.Handler {
	if n, ok := ctx.Lookup(s); ok {
		return n.(*Scheduler)
	}
	ns := &Scheduler{
		cfg:     s.cfg,
		h:       clone.Get(ctx, s.h),
		id:      s.id,
		cursor:  s.cursor,
		started: s.started,
	}
	ctx.Put(s, ns)
	ns.vcpus = append([]int32(nil), s.vcpus...)
	ns.st = append([]vcpuState(nil), s.st...)
	return ns
}

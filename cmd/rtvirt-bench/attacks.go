package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"

	"rtvirt"
)

// runAttacks runs the adversarial suite and records it as a benchmark
// artifact (BENCH_9.json by default): the tick-evasion attacker's
// obtained/charged/stolen bandwidth under every scheduler stack — the
// exact-accounting schedulers against the deliberately-naive tick-sampled
// Credit double — plus the adaptive controller's convergence trace and
// rejection-backoff counters.
func runAttacks(seed uint64, secs int64, outPath string) {
	cfg := rtvirt.DefaultAttackConfig()
	cfg.Seed = seed
	cfg.Duration = secondsOr(secs, cfg.Duration)
	res := rtvirt.Attacks(cfg)
	fmt.Println(rtvirt.RenderAttacks(res))

	buf, err := json.MarshalIndent(&res, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", outPath)
}

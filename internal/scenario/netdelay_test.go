package scenario

import (
	"strings"
	"testing"

	"rtvirt/internal/simtime"
	"rtvirt/internal/workload"
)

func fp(v float64) *float64 { return &v }

func sporadicScenario(costs *CostsSpec) Scenario {
	return Scenario{
		Seconds: 1,
		Seed:    1,
		Costs:   costs,
		VMs: []VM{{
			Name: "vm0",
			Tasks: []TaskSpec{{
				Name: "spor", Kind: "sporadic",
				SliceUS: 100, PeriodUS: 10000, RateHz: 50,
			}},
		}},
	}
}

func TestNetworkDelayValidation(t *testing.T) {
	for _, bad := range []float64{0, -1, -0.001} {
		sc := sporadicScenario(&CostsSpec{NetworkDelayUS: fp(bad)})
		err := sc.Validate()
		if err == nil {
			t.Errorf("network_delay_us=%v accepted, want rejection", bad)
			continue
		}
		if !strings.Contains(err.Error(), "network_delay_us") || !strings.Contains(err.Error(), "lookahead") {
			t.Errorf("error should name the field and why it must be positive: %v", err)
		}
	}
	if err := sporadicScenario(&CostsSpec{NetworkDelayUS: fp(42)}).Validate(); err != nil {
		t.Fatalf("valid delay rejected: %v", err)
	}
}

func TestNetworkDelayPlumbing(t *testing.T) {
	// Default: the workload's 19µs.
	w, err := Build(sporadicScenario(nil), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.NetworkDelay(); got != workload.DefaultNetworkDelay() {
		t.Fatalf("default NetworkDelay = %v, want %v", got, workload.DefaultNetworkDelay())
	}

	// Override changes the release instants, so two otherwise-identical
	// runs must see different first-release times but the same request
	// count.
	run := func(us float64) *Result {
		res, err := Run(sporadicScenario(&CostsSpec{NetworkDelayUS: fp(us)}), Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	small, large := run(19), run(5000)
	if small.Tasks[0].Stats.Released == 0 {
		t.Fatal("sporadic stream released nothing")
	}
	if small.Tasks[0].Latency == nil || large.Tasks[0].Latency == nil {
		t.Fatal("missing latency recorders")
	}
	// A 5ms one-way delay cannot produce the identical completion stream
	// as 19µs: the overridden world must actually differ.
	if small.Tasks[0].Stats == large.Tasks[0].Stats &&
		small.Tasks[0].Latency.Mean() == large.Tasks[0].Latency.Mean() {
		t.Fatal("network_delay_us override had no observable effect")
	}

	wBig, err := Build(sporadicScenario(&CostsSpec{NetworkDelayUS: fp(5000)}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := wBig.NetworkDelay(); got != simtime.Millis(5) {
		t.Fatalf("override NetworkDelay = %v, want 5ms", got)
	}
}

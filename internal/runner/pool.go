package runner

import (
	"fmt"
	"sync"
)

// Pool is a fixed set of persistent workers for repeated barrier-
// synchronized fan-outs — the coordinator primitive under the sharded
// (PDES) simulation's conservative window loop. Unlike Run/Map, which
// spawn fresh goroutines per call, a Pool parks its workers between
// rounds, so a caller can issue hundreds of thousands of small rounds
// (one per lookahead window) without per-round spawn cost.
type Pool struct {
	work []chan func(int)
	wg   sync.WaitGroup

	mu     sync.Mutex
	panics []poolPanic
}

type poolPanic struct {
	worker int
	value  any
}

// NewPool starts n parked workers. Close releases them.
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{work: make([]chan func(int), n)}
	for w := range p.work {
		ch := make(chan func(int))
		p.work[w] = ch
		go p.worker(w, ch)
	}
	return p
}

func (p *Pool) worker(w int, ch chan func(int)) {
	for fn := range ch {
		p.runOne(w, fn)
	}
}

// runOne executes one round task, converting a panic into a recorded
// entry so the round still reaches its barrier and Do can re-raise.
func (p *Pool) runOne(w int, fn func(int)) {
	defer func() {
		if r := recover(); r != nil {
			p.mu.Lock()
			p.panics = append(p.panics, poolPanic{worker: w, value: r})
			p.mu.Unlock()
		}
		p.wg.Done()
	}()
	fn(w)
}

// Size reports the number of workers.
func (p *Pool) Size() int { return len(p.work) }

// Do runs fn(worker) on workers 0..k-1 and blocks until every call
// returns — a full barrier. k is clamped to the pool size. A panic inside
// any worker is re-raised here after the whole round has drained, lowest
// worker first, so the coordinator fails deterministically instead of
// deadlocking.
func (p *Pool) Do(k int, fn func(worker int)) {
	if k > len(p.work) {
		k = len(p.work)
	}
	if k < 1 {
		k = 1
	}
	p.wg.Add(k)
	for w := 0; w < k; w++ {
		p.work[w] <- fn
	}
	p.wg.Wait()
	p.mu.Lock()
	panics := p.panics
	p.panics = nil
	p.mu.Unlock()
	if len(panics) > 0 {
		first := panics[0]
		for _, pp := range panics[1:] {
			if pp.worker < first.worker {
				first = pp
			}
		}
		panic(fmt.Sprintf("runner: pool worker %d panicked: %v", first.worker, first.value))
	}
}

// Close releases the workers. The pool must be idle (no Do in flight).
func (p *Pool) Close() {
	for _, ch := range p.work {
		close(ch)
	}
}

package experiments

import (
	"strings"
	"testing"

	"rtvirt/internal/simtime"
)

func TestAblationMinSlice(t *testing.T) {
	rows := AblationMinSlice(1, 5*simtime.Second)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Overhead must grow as the minimum slice shrinks...
	if rows[0].OverheadPct <= rows[3].OverheadPct {
		t.Fatalf("overhead should fall with larger min slices: %.3f (50µs) vs %.3f (5ms)",
			rows[0].OverheadPct, rows[3].OverheadPct)
	}
	// ...precision falls with it: the 5ms clamp overruns the sub-ms
	// deadlines wholesale while 50µs tracks them.
	if rows[0].MissPct > 0.5 {
		t.Fatalf("50µs min slice missed %.3f%%", rows[0].MissPct)
	}
	if rows[3].MissPct < 5 {
		t.Fatalf("5ms min slice missed only %.3f%%; the clamp should overrun sub-ms deadlines", rows[3].MissPct)
	}
	if !strings.Contains(RenderAblation("t", "x", rows), "min-slice") {
		t.Fatal("render broken")
	}
}

func TestAblationSlack(t *testing.T) {
	rows := AblationSlack(1, 10*simtime.Second)
	// Allocated bandwidth grows monotonically with slack...
	for i := 1; i < len(rows); i++ {
		if rows[i].Extra <= rows[i-1].Extra {
			t.Fatalf("allocation not increasing with slack: %+v", rows)
		}
	}
	// ...and slack suppresses misses: the paper's 500µs point stays within
	// its ≥99%% guarantee and beats (or ties) the zero-slack point.
	if rows[2].MissPct > 0.1 {
		t.Fatalf("500µs slack missed %.4f%%", rows[2].MissPct)
	}
	if rows[3].MissPct > rows[0].MissPct {
		t.Fatalf("2ms slack (%.4f%%) should not miss more than zero slack (%.4f%%)",
			rows[3].MissPct, rows[0].MissPct)
	}
}

func TestAblationServerFlavour(t *testing.T) {
	rows := AblationServerFlavour(1, 30*simtime.Second)
	var def, pol AblationRow
	for _, r := range rows {
		if r.Label == "deferrable server" {
			def = r
		} else {
			pol = r
		}
	}
	// Budget retention is what absorbs work arriving after a brief idle:
	// the polling server misses RTA2's deadlines; the deferrable one does
	// not.
	if def.MissPct != 0 {
		t.Fatalf("deferrable server missed %.1f%%", def.MissPct)
	}
	if pol.MissPct < 25 {
		t.Fatalf("polling server missed only %.1f%%; retention ablation invisible", pol.MissPct)
	}
}

func TestAblationWorkConserving(t *testing.T) {
	rows := AblationWorkConserving(1, 30*simtime.Second)
	var wc, pure AblationRow
	for _, r := range rows {
		if r.Label == "work-conserving" {
			wc = r
		} else {
			pure = r
		}
	}
	// Leftover sharing slashes the tail: one slice instead of the fluid
	// pace across several.
	if wc.P999 >= pure.P999/2 {
		t.Fatalf("work-conserving p99.9 %v should be far below pure quotas %v", wc.P999, pure.P999)
	}
	if pure.P999 < simtime.Micros(500) {
		t.Fatalf("pure DP-WRAP p99.9 %v; the under-reserved VM should pace out over slices", pure.P999)
	}
}

func TestAblationIdleTax(t *testing.T) {
	rows := AblationIdleTax(1, 4*simtime.Second)
	var with, without AblationRow
	for _, r := range rows {
		if r.Label == "idle tax" {
			with = r
		} else {
			without = r
		}
	}
	if without.Extra != 0 {
		t.Fatalf("without the tax the newcomer should be rejected (0.7+0.6 > 1)")
	}
	if with.Extra != 1 {
		t.Fatal("with the tax the newcomer should be admitted")
	}
	if with.MissPct > 2 {
		t.Fatalf("admitted newcomer missed %.2f%%", with.MissPct)
	}
}

func TestAblationGuestScheduler(t *testing.T) {
	rows := AblationGuestScheduler(1, 10*simtime.Second)
	var pedf, gedf AblationRow
	for _, r := range rows {
		if r.Label == "pEDF guest" {
			pedf = r
		} else {
			gedf = r
		}
	}
	// Both schedule the task set (it fits comfortably)...
	if pedf.MissPct > 0.1 || gedf.MissPct > 0.1 {
		t.Fatalf("misses: pEDF %.3f%%, gEDF %.3f%%", pedf.MissPct, gedf.MissPct)
	}
	// ...pEDF pins tasks, so both run correctly; the rows exist mainly to
	// quantify the switch-rate difference in the rendered ablation.
	if pedf.Extra <= 0 || gedf.Extra <= 0 {
		t.Fatalf("guest switch rates missing: %+v %+v", pedf, gedf)
	}
}

package cluster

import "rtvirt/internal/runner"

// SweepSpec is one independent cluster experiment: a configuration plus a
// driver that builds out, exercises, and measures its own Cluster.
type SweepSpec struct {
	Name string
	Cfg  Config
	// Run receives a freshly constructed (not yet Started) cluster and
	// returns whatever the experiment measures.
	Run func(c *Cluster) any
}

// SweepResult pairs a spec's name with its driver's return value.
type SweepResult struct {
	Name  string
	Value any
}

// Sweep executes the specs on parallel workers (parallel <= 0 uses
// runner.Default()). Each spec gets its own Cluster via New(s.Cfg); every
// cluster owns its simulated clock and RNG, so specs share no mutable
// state and results are identical at any worker count. Results come back
// in spec order. Note the isolation boundary is the whole cluster: hosts
// within one cluster share a clock and must not be split across workers.
func Sweep(parallel int, specs []SweepSpec) []SweepResult {
	return runner.Map(parallel, specs, func(s SweepSpec) SweepResult {
		return SweepResult{Name: s.Name, Value: s.Run(New(s.Cfg))}
	})
}

// ComparePolicies runs the same scenario once per placement policy on
// parallel workers, returning results in FirstFit, BestFit, WorstFit
// order. cfg.Policy is overridden per spec.
func ComparePolicies(parallel int, cfg Config, run func(c *Cluster) any) []SweepResult {
	var specs []SweepSpec
	for _, p := range []Policy{FirstFit, BestFit, WorstFit} {
		c := cfg
		c.Policy = p
		specs = append(specs, SweepSpec{Name: p.String(), Cfg: c, Run: run})
	}
	return Sweep(parallel, specs)
}

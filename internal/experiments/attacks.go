package experiments

import (
	"fmt"
	"strings"

	"rtvirt/internal/core"
	"rtvirt/internal/guest"
	"rtvirt/internal/hv"
	"rtvirt/internal/metrics"
	"rtvirt/internal/sched/credit"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
	"rtvirt/internal/workload"
)

// The attacks experiment puts the same TickEvader (Zhou et al.'s
// cycle-stealing tenant) against every scheduler stack and measures, via
// workload.StolenBWMeter, how much CPU the attacker obtains versus what
// it is charged. Exact-accounting schedulers — Credit's settle-on-switch,
// RT-Xen, RTVirt's DP-WRAP — charge what they grant, so stolen bandwidth
// sits at ~0 no matter how well the attacker times its bursts. The
// deliberately-naive tick-sampled Credit double (credit.Config.
// SampledAccounting) is the pre-fix Xen behaviour the attack was built
// for: the attacker sleeps across every accounting tick and obtains most
// of a CPU for free, defeating even an explicit cap.
//
// The second half exercises the AdaptiveController: convergence of an
// under-provisioned reservation onto its real demand through INC_BW
// hypercalls, and exponential backoff against a host with no capacity
// left to grant.

// AttackConfig tunes the attack/controller experiment suite.
type AttackConfig struct {
	Seed uint64
	// Duration is the per-row run length (the attack needs a few hundred
	// tick periods for stable bandwidth figures).
	Duration simtime.Duration
}

// DefaultAttackConfig runs each row for 10 simulated seconds.
func DefaultAttackConfig() AttackConfig {
	return AttackConfig{Seed: 1, Duration: simtime.Seconds(10)}
}

// AttackRow is one scheduler × accounting × cap configuration under the
// tick evader. Bandwidths are CPU fractions of the whole run.
type AttackRow struct {
	// Scheduler names the host scheduler ("credit", "rt-xen", "rtvirt").
	Scheduler string `json:"scheduler"`
	// Accounting is "exact" or "sampled" (sampled exists only for credit).
	Accounting string `json:"accounting"`
	// CapBW is the attacker's declared bandwidth cap (0 = uncapped).
	CapBW float64 `json:"cap_bw,omitempty"`
	// Learned marks the row where the attacker infers the tick period from
	// latency spikes instead of reading it from the config.
	Learned bool `json:"learned,omitempty"`
	// LearnedPeriodUS is the attacker's tick-period estimate on the
	// learning row (0 = never learned).
	LearnedPeriodUS int64 `json:"learned_period_us,omitempty"`

	ObtainedBW float64 `json:"obtained_bw"`
	ChargedBW  float64 `json:"charged_bw"`
	StolenBW   float64 `json:"stolen_bw"`
	Probes     int     `json:"probes"`
	Bursts     int     `json:"bursts"`
	Resyncs    int     `json:"resyncs"`
}

// ConvergencePoint samples the adaptive controller's state at one window
// close: the task's current slice and the window's worst response time.
type ConvergencePoint struct {
	TimeMS      int64 `json:"time_ms"`
	SliceUS     int64 `json:"slice_us"`
	WindowMaxUS int64 `json:"window_max_us"`
	Samples     int   `json:"samples"`
}

// AttackResult is the full suite: the stolen-bandwidth table plus the
// controller convergence trace and backoff counters (BENCH_9.json).
type AttackResult struct {
	Seed    uint64      `json:"seed"`
	Seconds float64     `json:"seconds"`
	Rows    []AttackRow `json:"rows"`

	// Convergence traces an under-provisioned task being grown onto its
	// demand by the controller.
	Convergence      []ConvergencePoint `json:"convergence"`
	ConvDemandUS     int64              `json:"convergence_demand_us"`
	ConvergedSliceUS int64              `json:"converged_slice_us"`
	ConvIncs         int                `json:"convergence_incs"`
	ConvWindows      int                `json:"convergence_windows"`

	// Backoff counters from a host too full to grant further INC_BW.
	BackoffIncs    int `json:"backoff_incs"`
	BackoffRejects int `json:"backoff_rejects"`
	BackoffSkipped int `json:"backoff_skipped"`
}

// attackCase enumerates one row's configuration.
type attackCase struct {
	stack   core.Stack
	name    string
	sampled bool
	capped  bool
	learn   bool
}

// attackerCap is the capped rows' reservation: 4ms per 10ms = 0.4 CPU.
var attackerCap = hv.Reservation{Budget: simtime.Millis(4), Period: simtime.Millis(10)}

// runAttack builds a 1-PCPU host with a greedy victim and the evader and
// reports the attacker's obtained/charged/stolen bandwidth.
func runAttack(c attackCase, seed uint64, dur simtime.Duration) AttackRow {
	cfg := core.DefaultConfig(c.stack)
	cfg.PCPUs = 1
	cfg.Seed = seed
	if c.stack == core.Credit {
		// The paper's latency-sensitive Credit tuning: the 1ms default
		// ratelimit would delay the attacker's post-tick wakeup past its
		// guard margin and make the burst overlap the next tick.
		cfg.Credit.Ratelimit = simtime.Micros(500)
		cfg.Credit.SampledAccounting = c.sampled
	}
	sys := core.NewSystem(cfg)
	meter := workload.NewStolenBWMeter(cfg.PCPUs)
	sys.Host.TraceTo(meter)

	// The victim always wants the whole CPU, so every cycle the attacker
	// obtains is contended, not idle leftover.
	var victim, attacker *guest.OS
	switch {
	case c.stack == core.Credit && c.capped:
		victim = mustGuest(sys.NewWeightedGuest("victim", 1, 256))
		attacker = mustGuest(sys.NewServerGuest("attacker", []hv.Reservation{attackerCap}, 256))
	case c.stack == core.Credit:
		victim = mustGuest(sys.NewWeightedGuest("victim", 1, 256))
		attacker = mustGuest(sys.NewWeightedGuest("attacker", 1, 256))
	default:
		// RT stacks admit by reservation: victim 0.5, attacker 0.4.
		victim = mustGuest(sys.NewServerGuest("victim",
			[]hv.Reservation{{Budget: simtime.Millis(5), Period: simtime.Millis(10)}}, 256))
		attacker = mustGuest(sys.NewServerGuest("attacker", []hv.Reservation{attackerCap}, 256))
	}
	hog, err := workload.NewCPUHog(victim, 0, "hog")
	must(err)
	ecfg := workload.DefaultEvaderConfig()
	if !c.learn {
		ecfg.TickPeriod = cfg.Credit.TickEvery
	}
	ev, err := workload.NewTickEvader(attacker, 1, "evade", ecfg)
	must(err)

	sys.Start()
	hog.Start(0)
	ev.Start(0)
	sys.Run(dur)
	sys.Host.Sync() // settle open runs so exact charged covers the tail
	end := sys.Now()
	meter.Close(end)

	var charged simtime.Duration
	if cs, ok := sys.Host.Scheduler().(*credit.Scheduler); ok {
		for _, v := range attacker.VM().VCPUs {
			charged += cs.ChargedOf(v)
		}
	} else {
		// RT-Xen and DP-WRAP deplete server budget for every nanosecond
		// they grant (the BudgetOracle pins this), so charged = obtained
		// by construction and the attack cannot steal.
		charged = meter.Obtained(attacker.VM().Name)
	}
	row := AttackRow{
		Scheduler:  c.name,
		Accounting: "exact",
		Learned:    c.learn,
		ObtainedBW: meter.ObtainedBW(attacker.VM().Name),
		ChargedBW:  float64(charged) / float64(end),
		StolenBW:   meter.StolenBW(attacker.VM().Name, charged),
		Probes:     ev.Probes,
		Bursts:     ev.Bursts,
		Resyncs:    ev.Resyncs,
	}
	if c.sampled {
		row.Accounting = "sampled"
	}
	if c.capped {
		row.CapBW = attackerCap.Bandwidth()
	}
	if c.learn {
		row.LearnedPeriodUS = int64(ev.Period() / simtime.Microsecond)
	}
	return row
}

// convDemand is the convergence task's real per-job demand. The task is
// declared at 100µs/10ms, so with the default 500µs VCPU slack the
// effective budget starts at 600µs — genuinely under-provisioned.
const convDemand = simtime.Microsecond * 800

// runConvergence grows an under-provisioned reservation onto its demand:
// a periodic task declared at 100µs/10ms whose jobs really need 800µs.
// The host is work-conserving, so a greedy reserved filler keeps the CPU
// contended — the controlled task lives on roughly its own reservation
// and the under-provisioning is visible as latency. The controller
// issues INC_BW until the reservation covers the demand and the backlog
// accrued while converging drains; LowFraction is set low enough that
// the converged slice is then held, not oscillated.
func runConvergence(seed uint64, dur simtime.Duration) (points []ConvergencePoint, ctrl *guest.AdaptiveController, finalSlice simtime.Duration) {
	cfg := core.DefaultConfig(core.RTVirt)
	cfg.PCPUs = 1
	cfg.Seed = seed
	sys := core.NewSystem(cfg)

	filler := mustGuest(sys.NewServerGuest("bg",
		[]hv.Reservation{{Budget: simtime.Millis(8), Period: simtime.Millis(10)}}, 256))
	hog, err := workload.NewCPUHog(filler, 0, "hog")
	must(err)

	g := mustGuest(sys.NewGuest("svc", 1))
	tk := task.New(0, "app", task.Periodic,
		task.Params{Slice: simtime.Micros(100), Period: simtime.Millis(10)})
	must(g.Register(tk))
	g.SetDemandFn(tk, func() simtime.Duration { return convDemand })
	ctrl, err = guest.NewAdaptiveController(g, tk, guest.AdaptiveConfig{
		Target:      simtime.Millis(6),
		Window:      simtime.Millis(20),
		LowFraction: 0.05,
	})
	must(err)
	ctrl.OnWindow = func(now simtime.Time, winMax simtime.Duration, samples int, slice simtime.Duration) {
		points = append(points, ConvergencePoint{
			TimeMS:      int64(now.Sub(0) / simtime.Millisecond),
			SliceUS:     int64(slice / simtime.Microsecond),
			WindowMaxUS: int64(winMax / simtime.Microsecond),
			Samples:     samples,
		})
	}
	sys.Start()
	hog.Start(0)
	g.StartPeriodic(tk, 0)
	ctrl.Start(0)
	sys.Run(dur)
	return points, ctrl, tk.Params().Slice
}

// runBackoff drives the controller against a host with no headroom: the
// filler holds 0.65 CPU, the controlled task wants to grow past the
// remaining capacity, and every INC_BW beyond the first is rejected. The
// counters show the exponential backoff doing its job (few rejects, many
// skipped windows).
func runBackoff(seed uint64, dur simtime.Duration) *guest.AdaptiveController {
	cfg := core.DefaultConfig(core.RTVirt)
	cfg.PCPUs = 1
	cfg.Seed = seed
	sys := core.NewSystem(cfg)

	filler := mustGuest(sys.NewGuest("filler", 1))
	ft := task.New(0, "fill", task.Periodic,
		task.Params{Slice: simtime.Millis(6), Period: simtime.Millis(10)})
	must(filler.Register(ft))

	g := mustGuest(sys.NewGuest("svc", 1))
	tk := task.New(0, "app", task.Periodic,
		task.Params{Slice: simtime.Millis(2), Period: simtime.Millis(10)})
	must(g.Register(tk))
	g.SetDemandFn(tk, func() simtime.Duration { return simtime.Millis(5) })
	ctrl, err := guest.NewAdaptiveController(g, tk, guest.AdaptiveConfig{
		Target: simtime.Millis(3),
		Window: simtime.Millis(50),
	})
	must(err)

	sys.Start()
	filler.StartPeriodic(ft, 0)
	g.StartPeriodic(tk, 0)
	ctrl.Start(0)
	sys.Run(dur)
	return ctrl
}

// Attacks runs the full suite.
func Attacks(cfg AttackConfig) AttackResult {
	res := AttackResult{
		Seed:    cfg.Seed,
		Seconds: float64(cfg.Duration) / float64(simtime.Second),
	}
	cases := []attackCase{
		{core.Credit, "credit", false, false, false},
		{core.Credit, "credit", false, true, false},
		{core.Credit, "credit", true, false, false},
		{core.Credit, "credit", true, true, false},
		{core.Credit, "credit", true, false, true},
		{core.RTXen, "rt-xen", false, false, false},
		{core.RTVirt, "rtvirt", false, false, false},
	}
	for _, c := range cases {
		res.Rows = append(res.Rows, runAttack(c, cfg.Seed, cfg.Duration))
	}

	points, conv, finalSlice := runConvergence(cfg.Seed, cfg.Duration)
	res.Convergence = points
	res.ConvDemandUS = int64(convDemand / simtime.Microsecond)
	res.ConvergedSliceUS = int64(finalSlice / simtime.Microsecond)
	res.ConvIncs = conv.Incs
	res.ConvWindows = conv.Windows

	back := runBackoff(cfg.Seed, cfg.Duration)
	res.BackoffIncs = back.Incs
	res.BackoffRejects = back.Rejects
	res.BackoffSkipped = back.Skipped
	return res
}

// RenderAttacks formats the suite: the stolen-bandwidth table and the
// controller summaries.
func RenderAttacks(res AttackResult) string {
	t := metrics.NewTable("scheduler", "accounting", "cap", "obtained", "charged", "stolen", "bursts", "resyncs", "tick est")
	for _, r := range res.Rows {
		cap := "-"
		if r.CapBW > 0 {
			cap = fmt.Sprintf("%.2f", r.CapBW)
		}
		est := "declared"
		if r.Learned {
			est = fmt.Sprintf("%dµs", r.LearnedPeriodUS)
		}
		t.AddRow(r.Scheduler, r.Accounting, cap,
			fmt.Sprintf("%.3f", r.ObtainedBW),
			fmt.Sprintf("%.3f", r.ChargedBW),
			fmt.Sprintf("%.3f", r.StolenBW),
			r.Bursts, r.Resyncs, est)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Tick-evasion attack — stolen bandwidth per scheduler (seed %d, %gs)\n",
		res.Seed, res.Seconds)
	b.WriteString(t.String())
	fmt.Fprintf(&b, "Adaptive convergence: slice 100µs → %dµs (demand %dµs) in %d increases over %d windows\n",
		res.ConvergedSliceUS, res.ConvDemandUS, res.ConvIncs, res.ConvWindows)
	if len(res.Convergence) > 0 {
		n := len(res.Convergence)
		if n > 8 {
			n = 8
		}
		for _, p := range res.Convergence[:n] {
			fmt.Fprintf(&b, "  t=%4dms slice=%4dµs winmax=%6dµs samples=%d\n",
				p.TimeMS, p.SliceUS, p.WindowMaxUS, p.Samples)
		}
	}
	fmt.Fprintf(&b, "Rejection backoff on a full host: incs=%d rejects=%d skipped windows=%d\n",
		res.BackoffIncs, res.BackoffRejects, res.BackoffSkipped)
	return b.String()
}

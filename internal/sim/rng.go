package sim

import "math"

// RNG is a small, fast, deterministic random source (splitmix64 core).
// It is not cryptographically secure; it exists so simulation runs are
// reproducible across platforms and Go releases, which the stdlib global
// source does not guarantee.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Split returns a new independent generator derived from the current
// stream, for workloads that need their own stable substream.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64() ^ 0x9e3779b97f4a7c15) }

// Clone returns a generator that continues this stream from exactly the
// same point, for forked simulations.
func (r *RNG) Clone() *RNG { return &RNG{state: r.state} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63n returns a uniform value in [0, n). n must be > 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive bound")
	}
	// Rejection sampling to remove modulo bias.
	max := uint64(n)
	limit := (^uint64(0) / max) * max
	for {
		v := r.Uint64()
		if v < limit {
			return int64(v % max)
		}
	}
}

// Intn returns a uniform value in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int { return int(r.Int63n(int64(n))) }

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box–Muller; one value per
// call, the pair's second value is discarded for simplicity).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

package runner

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapOrderDeterministic(t *testing.T) {
	items := make([]int, 257)
	for i := range items {
		items[i] = i
	}
	for _, par := range []int{1, 2, 8, 64, 0} {
		got := Map(par, items, func(v int) int { return v * v })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("parallel=%d: out[%d] = %d, want %d", par, i, v, i*i)
			}
		}
	}
}

func TestMapIdx(t *testing.T) {
	items := []string{"a", "b", "c"}
	got := MapIdx(2, items, func(i int, s string) string { return fmt.Sprintf("%d%s", i, s) })
	want := []string{"0a", "1b", "2c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("out[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestRunKeysAndOrder(t *testing.T) {
	specs := make([]Spec, 10)
	for i := range specs {
		i := i
		specs[i] = Spec{Key: fmt.Sprintf("run%d", i), Run: func() any { return i * 10 }}
	}
	res := Run(specs, 4)
	for i, r := range res {
		if r.Key != fmt.Sprintf("run%d", i) || r.Value.(int) != i*10 {
			t.Fatalf("res[%d] = %+v", i, r)
		}
	}
}

func TestEmpty(t *testing.T) {
	if got := Map(4, nil, func(int) int { return 1 }); len(got) != 0 {
		t.Fatalf("want empty, got %v", got)
	}
	if got := Run(nil, 4); len(got) != 0 {
		t.Fatalf("want empty, got %v", got)
	}
}

func TestAllItemsRunOnce(t *testing.T) {
	const n = 1000
	var counts [n]atomic.Int64
	Map(8, make([]struct{}, n), func(struct{}) int { return 0 })
	MapIdx(8, make([]struct{}, n), func(i int, _ struct{}) int {
		counts[i].Add(1)
		return 0
	})
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("item %d ran %d times", i, c)
		}
	}
}

func TestPanicPropagates(t *testing.T) {
	for _, par := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("parallel=%d: panic did not propagate", par)
				}
				msg := fmt.Sprint(r)
				if !strings.Contains(msg, "boom") {
					t.Fatalf("parallel=%d: panic message %q missing cause", par, msg)
				}
			}()
			Map(par, []int{0, 1, 2, 3}, func(v int) int {
				if v == 2 {
					panic("boom")
				}
				return v
			})
		}()
	}
}

func TestPanicLowestIndexWins(t *testing.T) {
	defer func() {
		msg := fmt.Sprint(recover())
		if !strings.Contains(msg, "spec 1 ") {
			t.Fatalf("want lowest-index panic reported, got %q", msg)
		}
	}()
	Map(8, []int{0, 1, 2, 3, 4, 5, 6, 7}, func(v int) int {
		if v >= 1 {
			panic(fmt.Sprintf("boom%d", v))
		}
		return v
	})
}

func TestSetDefault(t *testing.T) {
	defer SetDefault(0)
	SetDefault(3)
	if Default() != 3 {
		t.Fatalf("Default() = %d after SetDefault(3)", Default())
	}
	SetDefault(0)
	if Default() < 1 {
		t.Fatalf("Default() = %d, want >= 1", Default())
	}
	SetDefault(-5)
	if Default() < 1 {
		t.Fatalf("Default() = %d after SetDefault(-5), want GOMAXPROCS", Default())
	}
}

package experiments

import (
	"strings"
	"testing"

	"rtvirt/internal/simtime"
)

func shortCfg() Figure3Config {
	return Figure3Config{Seed: 1, Duration: simtime.Seconds(10), PCPUs: 15, Requests: 20}
}

func TestFigure1Contrast(t *testing.T) {
	r := Figure1(1, simtime.Seconds(30))
	if r.Baseline["RTA2"] < 0.25 {
		t.Fatalf("baseline RTA2 miss ratio %.2f; should expose the motivation", r.Baseline["RTA2"])
	}
	for name, ratio := range r.RTVirt {
		if ratio != 0 {
			t.Errorf("RTVirt %s miss ratio %.4f, want 0", name, ratio)
		}
	}
	if !strings.Contains(r.Render(), "RTA2") {
		t.Fatal("render missing RTA2")
	}
}

func TestTable2Shape(t *testing.T) {
	row := Table2(shortCfg())
	// Paper Table 2: RTAs need 2.02 CPUs, RT-Xen allocates ≈2.33, RTVirt
	// ≈2.11 (with the 500µs slack).
	if row.RTAReq < 2.0 || row.RTAReq > 2.05 {
		t.Fatalf("RTA requirement = %.3f, want ≈2.02", row.RTAReq)
	}
	if row.RTXenAllocated <= row.RTAReq {
		t.Fatalf("RT-Xen allocated %.3f not above requirement %.3f (CSA pessimism missing)",
			row.RTXenAllocated, row.RTAReq)
	}
	if row.RTXenAllocated < 2.2 || row.RTXenAllocated > 2.45 {
		t.Fatalf("RT-Xen allocated = %.3f, paper reports 2.33", row.RTXenAllocated)
	}
	if row.RTVirtAllocated < row.RTAReq || row.RTVirtAllocated > 2.2 {
		t.Fatalf("RTVirt allocated = %.3f, paper reports 2.11", row.RTVirtAllocated)
	}
	if row.RTVirtAllocated >= row.RTXenAllocated {
		t.Fatalf("RTVirt %.3f should allocate less than RT-Xen %.3f",
			row.RTVirtAllocated, row.RTXenAllocated)
	}
	if !strings.Contains(RenderTable2(row), "Table 2") {
		t.Fatal("render broken")
	}
}

func TestFigure3AllGroups(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	rows := Figure3(shortCfg())
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	for _, r := range rows {
		// Both frameworks meet all periodic deadlines (§4.2).
		if r.RTVirtMisses.Missed != 0 {
			t.Errorf("%s: RTVirt missed %d deadlines", r.Group, r.RTVirtMisses.Missed)
		}
		if r.RTXenMisses.Missed != 0 {
			t.Errorf("%s: RT-Xen missed %d deadlines", r.Group, r.RTXenMisses.Missed)
		}
		// Bandwidth ordering: requirement ≤ RTVirt < RT-Xen allocated ≤ claimed.
		if r.RTVirtAllocated < r.RTAReq-1e-9 {
			t.Errorf("%s: RTVirt allocated %.3f below requirement %.3f", r.Group, r.RTVirtAllocated, r.RTAReq)
		}
		if r.RTVirtAllocated >= r.RTXenAllocated {
			t.Errorf("%s: RTVirt %.3f not below RT-Xen %.3f", r.Group, r.RTVirtAllocated, r.RTXenAllocated)
		}
		if r.RTXenClaimed < r.RTXenAllocated {
			t.Errorf("%s: claimed %.1f below allocated %.3f", r.Group, r.RTXenClaimed, r.RTXenAllocated)
		}
	}
	if !strings.Contains(RenderFigure3(rows), "H-Equiv") {
		t.Fatal("render broken")
	}
}

func TestSporadicGroups(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	cfg := shortCfg()
	cfg.Sporadic = true
	cfg.Duration = simtime.Seconds(15)
	rows := Figure3(cfg)
	for _, r := range rows {
		if r.RTVirtMisses.Missed != 0 {
			t.Errorf("%s sporadic: RTVirt missed %d", r.Group, r.RTVirtMisses.Missed)
		}
		if r.RTXenMisses.Missed != 0 {
			t.Errorf("%s sporadic: RT-Xen missed %d", r.Group, r.RTXenMisses.Missed)
		}
		if r.RTVirtMisses.Released == 0 || r.RTXenMisses.Released == 0 {
			t.Errorf("%s sporadic: no requests ran", r.Group)
		}
	}
}

func TestTable1AndTable5Data(t *testing.T) {
	groups := Table1Groups()
	if len(groups) != 6 {
		t.Fatalf("Table 1 has %d groups", len(groups))
	}
	// NH-Dec totals 2.02 CPUs (Table 2 caption).
	for _, g := range groups {
		if g.Name == "NH-Dec" {
			if bw := g.Bandwidth(); bw < 2.0 || bw > 2.05 {
				t.Fatalf("NH-Dec bandwidth %.3f, want 2.02", bw)
			}
		}
		if len(g.RTAs) != 4 {
			t.Fatalf("%s has %d RTAs, want 4", g.Name, len(g.RTAs))
		}
	}
	t5 := Table5Groups()
	if len(t5) != 10 {
		t.Fatalf("Table 5 has %d groups", len(t5))
	}
	if t5[2].RTAs[0] != pp(46, 188) {
		t.Fatalf("group 3 params wrong: %v", t5[2].RTAs[0])
	}
	if len(Table3Profiles()) != 4 {
		t.Fatal("Table 3 profiles wrong")
	}
}

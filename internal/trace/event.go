package trace

import (
	"encoding/json"
	"fmt"

	"rtvirt/internal/simtime"
)

// Kind classifies a telemetry event. The enum covers every scheduling
// decision the RTVirt paper reasons about: dispatches and preemptions,
// job completions and misses, the three sched_rtvirt() hypercall flavours
// (§3.2), VCPU migrations, server budget replenish/deplete transitions,
// guest-level context switches, and admission verdicts.
type Kind uint8

// Event kinds. The Arg field of an Event carries a kind-specific payload,
// noted per kind.
const (
	// Dispatch: a PCPU switched to a VCPU (VM empty = idle). Arg is the
	// granted run length in ns (0 when unknown, e.g. undispatch).
	Dispatch Kind = iota
	// Preempt: a VCPU was displaced mid-job by a scheduling decision.
	// Arg is the preempted job's remaining work in ns.
	Preempt
	// JobDone: a job completed by its deadline. Arg is the response time
	// in ns.
	JobDone
	// JobMiss: a job completed after its deadline. Arg is the lateness
	// in ns.
	JobMiss
	// HypercallIncBW..HypercallIncDecBW: one sched_rtvirt() invocation
	// per flag (§3.2). Arg is the requested budget in ns per period.
	HypercallIncBW
	HypercallDecBW
	HypercallIncDecBW
	// Migrate: a VCPU was dispatched on a different PCPU than its last
	// one. PCPU is the destination; Arg is the source PCPU id.
	Migrate
	// Replenish: a scheduler granted a VCPU fresh budget/quota/credits.
	// Arg is the granted amount in ns.
	Replenish
	// Deplete: a VCPU exhausted its budget/quota/credits.
	Deplete
	// GuestSwitch: the guest switched the process running on a VCPU.
	// Task names the incoming job's task.
	GuestSwitch
	// Admit / Reject: an admission-control verdict. Host-level events
	// carry the reservation budget in Arg; guest-level events name the
	// task and carry its slice in Arg.
	Admit
	Reject

	// NumKinds is the number of event kinds (for per-kind arrays).
	NumKinds = int(Reject) + 1
)

// kindNames are the wire names, stable across releases (JSON/CSV use them).
var kindNames = [NumKinds]string{
	"dispatch", "preempt", "job-done", "job-miss",
	"hc-inc-bw", "hc-dec-bw", "hc-inc-dec-bw",
	"migrate", "replenish", "deplete", "guest-switch",
	"admit", "reject",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < NumKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// KindFromString resolves a wire name back to its Kind.
func KindFromString(s string) (Kind, error) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown event kind %q", s)
}

// MarshalJSON encodes the kind as its wire name.
func (k Kind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON decodes a wire name.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	got, err := KindFromString(s)
	if err != nil {
		return err
	}
	*k = got
	return nil
}

// Event is one telemetry record: a fixed-size value type, cheap to copy
// and free of heap references beyond the identifying strings (which alias
// long-lived names, never per-event allocations).
type Event struct {
	At   simtime.Time `json:"at_ns"`
	Kind Kind         `json:"kind"`
	// PCPU is the physical CPU the event concerns (-1 = none).
	PCPU int `json:"pcpu"`
	// VM and VCPU identify the virtual CPU (VM empty = none/idle).
	VM   string `json:"vm,omitempty"`
	VCPU int    `json:"vcpu,omitempty"`
	// Task names the application, where one is involved.
	Task string `json:"task,omitempty"`
	// Arg is the kind-specific payload; see the Kind constants.
	Arg int64 `json:"arg,omitempty"`
}

// ArgDuration reads Arg as a duration, for the kinds that carry one.
func (e Event) ArgDuration() simtime.Duration { return simtime.Duration(e.Arg) }

// Record is the legacy name for Event, kept for the public facade.
type Record = Event

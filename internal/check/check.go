// Package check provides always-on invariant oracles for the simulation
// stack: trace.Bus sinks that watch the cross-layer telemetry stream and
// assert, online, the scheduling properties the paper's claims rest on —
// bandwidth conservation (no VCPU granted more than its reservation per
// slice/period), budget non-negativity (no server or quota overdrawn),
// EDF dispatch-order soundness, admission soundness (§3.2's utilization
// rule at both layers, and no missed deadline for a confirmed-admitted
// task set), hypercall/migration accounting parity, and fork bit-identity.
//
// Oracles are pure observers: they read live scheduler state through
// read-only accessors but never mutate it, so arming them cannot perturb
// a run — golden outputs stay bit-identical with the suite attached.
// internal/check/quick drives randomly generated scenarios through the
// suite under all four stacks and shrinks any violation to a minimal
// reproducer.
package check

import (
	"fmt"
	"sort"

	"rtvirt/internal/core"
	"rtvirt/internal/sched/rtxen"
	"rtvirt/internal/simtime"
	"rtvirt/internal/trace"
)

// Violation is one observed invariant breach.
type Violation struct {
	At     simtime.Time `json:"at"`
	Oracle string       `json:"oracle"`
	Detail string       `json:"detail"`
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("[%v] %s: %s", v.At, v.Oracle, v.Detail)
}

// Oracle is an invariant checker fed from the telemetry bus. Finish runs
// end-of-run checks (counter parity, final-state audits) after the
// simulation has stopped.
type Oracle interface {
	trace.Sink
	Name() string
	Finish(now simtime.Time)
	Violations() []Violation
}

// maxViolations caps the violations each oracle retains; a systematically
// broken scheduler would otherwise flood memory with millions of copies
// of the same breach.
const maxViolations = 64

// recorder is the violation buffer every oracle embeds.
type recorder struct {
	name    string
	vs      []Violation
	dropped int
}

func (r *recorder) flag(at simtime.Time, format string, args ...any) {
	if len(r.vs) >= maxViolations {
		r.dropped++
		return
	}
	r.vs = append(r.vs, Violation{At: at, Oracle: r.name, Detail: fmt.Sprintf(format, args...)})
}

// Name implements Oracle.
func (r *recorder) Name() string { return r.name }

// Violations implements Oracle.
func (r *recorder) Violations() []Violation { return r.vs }

// Dropped reports violations discarded beyond the retention cap.
func (r *recorder) Dropped() int { return r.dropped }

// Opts tunes which optional oracles a Suite arms.
type Opts struct {
	// NeverMiss lists "vm/task" keys of periodic tasks that must meet
	// every deadline once the guest has confirmed their admission
	// (trace.Admit with the task's name). Only armed under the RTVirt
	// stack: the baseline stacks give vcpus-style VMs no host
	// reservation, so their misses are expected, and sporadic arrivals
	// may legally burst past the declared rate.
	NeverMiss []string
}

// Suite is a set of oracles attached to one system's telemetry bus.
type Suite struct {
	sys     *core.System
	oracles []Oracle
}

// Attach builds the oracle suite applicable to sys's scheduler stack and
// attaches every oracle to the host bus. Call it after core.NewSystem and
// before guests are built, so admission-time events are observed too
// (scenario.Options.OnSystem hooks exactly there).
func Attach(sys *core.System, opts Opts) *Suite {
	oracles := []Oracle{
		NewBudgetOracle(),
		NewBandwidthOracle(sys.Host),
		NewAdmissionOracle(sys),
		NewParityOracle(sys.Host),
	}
	if rs, ok := sys.Host.Scheduler().(*rtxen.Scheduler); ok {
		oracles = append(oracles, NewEDFOracle(sys.Host, rs))
	}
	if len(opts.NeverMiss) > 0 && sys.Cfg.Stack == core.RTVirt {
		oracles = append(oracles, NewMissOracle(opts.NeverMiss))
	}
	for _, o := range oracles {
		sys.Host.TraceTo(o)
	}
	return &Suite{sys: sys, oracles: oracles}
}

// Oracles returns the armed oracles.
func (s *Suite) Oracles() []Oracle { return s.oracles }

// Finish runs every oracle's end-of-run checks and returns all violations
// ordered by time (stable on oracle order for ties).
func (s *Suite) Finish() []Violation {
	now := s.sys.Sim.Now()
	var all []Violation
	for _, o := range s.oracles {
		o.Finish(now)
		all = append(all, o.Violations()...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].At < all[j].At })
	return all
}

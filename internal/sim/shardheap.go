package sim

import "rtvirt/internal/simtime"

// shardHeap is a 4-ary min-heap over shard IDs keyed by each shard's
// earliest pending event time. It is the coordinator's index in the
// windowed run loop: the root answers "may the run terminate?" in O(1),
// updates after a window touch only the shards that actually fired or
// received mail (O(active·log n) instead of an O(n) rescan), and the
// heap-ordered array lets the uniform-lookahead path enumerate the
// shards below a cutoff by a pruned descent that visits only matching
// subtrees. Ties break toward the lower shard ID, so the root is a pure
// function of the key vector — independent of update history.
type shardHeap struct {
	key []simtime.Time // indexed by shard ID
	ids []int32        // heap-ordered shard IDs
	pos []int32        // shard ID -> index in ids
	// stack is the reusable pruned-descent scratch.
	stack []int32
}

// init (re)builds the heap over keys; the slice is retained and read
// (never written) by the heap, so callers update entries only through
// update.
func (h *shardHeap) init(keys []simtime.Time) {
	n := len(keys)
	h.key = keys
	if cap(h.ids) < n {
		h.ids = make([]int32, n)
		h.pos = make([]int32, n)
	}
	h.ids = h.ids[:n]
	h.pos = h.pos[:n]
	for i := range h.ids {
		h.ids[i] = int32(i)
		h.pos[i] = int32(i)
	}
	for i := (n - 2) / 4; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h *shardHeap) less(a, b int32) bool {
	ka, kb := h.key[a], h.key[b]
	if ka != kb {
		return ka < kb
	}
	return a < b
}

// update moves shard id to key t and restores heap order.
func (h *shardHeap) update(id int32, t simtime.Time) {
	old := h.key[id]
	if t == old {
		return
	}
	h.key[id] = t
	p := int(h.pos[id])
	if t < old {
		h.siftUp(p)
	} else {
		h.siftDown(p)
	}
}

func (h *shardHeap) swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.pos[h.ids[i]] = int32(i)
	h.pos[h.ids[j]] = int32(j)
}

func (h *shardHeap) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 4
		if !h.less(h.ids[i], h.ids[p]) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *shardHeap) siftDown(i int) {
	n := len(h.ids)
	for {
		best := i
		for c := 4*i + 1; c <= 4*i+4 && c < n; c++ {
			if h.less(h.ids[c], h.ids[best]) {
				best = c
			}
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

// min returns the shard with the earliest pending event and its time.
func (h *shardHeap) min() (int32, simtime.Time) {
	id := h.ids[0]
	return id, h.key[id]
}

// secondKey returns the earliest key excluding the root shard — by the
// heap property, the minimum over the root's up-to-four children.
func (h *shardHeap) secondKey() simtime.Time {
	second := simtime.Never
	for c := 1; c <= 4 && c < len(h.ids); c++ {
		if k := h.key[h.ids[c]]; k < second {
			second = k
		}
	}
	return second
}

// keyOf reports shard id's current key.
func (h *shardHeap) keyOf(id int32) simtime.Time { return h.key[id] }

// collectBelow appends to out every shard whose key is strictly below
// cutoff and at most end, by a heap-property-pruned descent: a subtree
// whose root fails the test cannot contain a match. Output order is heap
// order, not ID order — callers sort.
func (h *shardHeap) collectBelow(cutoff, end simtime.Time, out []int32) []int32 {
	if len(h.ids) == 0 {
		return out
	}
	h.stack = append(h.stack[:0], 0)
	for len(h.stack) > 0 {
		i := int(h.stack[len(h.stack)-1])
		h.stack = h.stack[:len(h.stack)-1]
		id := h.ids[i]
		if k := h.key[id]; k >= cutoff || k > end {
			continue
		}
		out = append(out, id)
		for c := 4*i + 1; c <= 4*i+4 && c < len(h.ids); c++ {
			h.stack = append(h.stack, int32(c))
		}
	}
	return out
}

package trace

import (
	"fmt"
	"io"

	"rtvirt/internal/metrics"
	"rtvirt/internal/simtime"
)

// statKinds are the kinds whose Arg is a duration worth summarising as a
// distribution (response times, lateness, grants, budgets). Count-only
// kinds (migrations, depletes, guest switches, admissions) are covered by
// the Counts half of the sink.
var statKinds = [NumKinds]bool{
	Dispatch:  true,
	Preempt:   true,
	JobDone:   true,
	JobMiss:   true,
	Replenish: true,
}

// StatsSink streams events into per-kind counters and P² quantile
// estimators over Arg. It holds O(kinds) memory regardless of run length,
// so it can stay attached for arbitrarily long simulations where a
// Recorder would hit its cap.
type StatsSink struct {
	// Quantile is the tracked quantile in (0,1); zero means 0.99.
	Quantile float64

	counts Counts
	q      [NumKinds]*metrics.P2Quantile
}

// NewStatsSink returns a sink tracking the given quantile (0 → 0.99).
func NewStatsSink(quantile float64) *StatsSink {
	return &StatsSink{Quantile: quantile}
}

// Consume implements Sink.
func (s *StatsSink) Consume(ev Event) {
	if int(ev.Kind) >= NumKinds {
		return
	}
	s.counts[ev.Kind]++
	if !statKinds[ev.Kind] {
		return
	}
	est := s.q[ev.Kind]
	if est == nil {
		q := s.Quantile
		if q <= 0 || q >= 1 {
			q = 0.99
		}
		est = metrics.NewP2Quantile(q)
		s.q[ev.Kind] = est
	}
	est.Add(simtime.Duration(ev.Arg))
}

// Counts returns the per-kind counters accumulated so far.
func (s *StatsSink) Counts() Counts { return s.counts }

// ArgQuantile returns the current quantile estimate of Arg for kind k and
// whether any samples were seen.
func (s *StatsSink) ArgQuantile(k Kind) (simtime.Duration, bool) {
	est := s.q[k]
	if est == nil || est.Count() == 0 {
		return 0, false
	}
	return est.Value(), true
}

// Report writes a per-kind table: count, and for duration-bearing kinds
// the tracked quantile of Arg.
func (s *StatsSink) Report(w io.Writer) error {
	q := s.Quantile
	if q <= 0 || q >= 1 {
		q = 0.99
	}
	if _, err := fmt.Fprintf(w, "%-14s %10s %14s\n", "kind", "count", fmt.Sprintf("p%g(arg)", 100*q)); err != nil {
		return err
	}
	for i := 0; i < NumKinds; i++ {
		if s.counts[i] == 0 {
			continue
		}
		line := fmt.Sprintf("%-14s %10d", Kind(i), s.counts[i])
		if v, ok := s.ArgQuantile(Kind(i)); ok {
			line += fmt.Sprintf(" %14v", v)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"rtvirt/internal/cluster"
	"rtvirt/internal/dist"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
)

// The -pdes benchmark: a memcached-style cluster — every host serves a
// cache VM whose sporadic task is driven by remote clients on two other
// hosts, next to a periodic RT task and a background hog — advanced
// under 1, 2, 4, and 8 executor groups. Every group count must produce a
// byte-identical cluster digest (the conservative-PDES determinism
// contract); the walls measure how much of the window width the executor
// pool turns into real parallelism on the machine at hand.

type pdesGroupRow struct {
	Groups       int     `json:"groups"`
	WallSeconds  float64 `json:"wall_seconds"`
	Speedup      float64 `json:"speedup_vs_groups1"`
	EventsPerSec float64 `json:"events_per_sec"`
}

type pdesReport struct {
	Bench            string         `json:"bench"`
	GoVersion        string         `json:"go_version"`
	Cores            int            `json:"cores"`
	Hosts            int            `json:"hosts"`
	VMs              int            `json:"vms"`
	Clients          int            `json:"clients"`
	SimulatedSeconds int64          `json:"simulated_seconds"`
	LookaheadUS      float64        `json:"lookahead_us"`
	Requests         uint64         `json:"requests"`
	Events           uint64         `json:"events"`
	Windows          uint64         `json:"windows"`
	Migrations       int            `json:"migrations"`
	Groups           []pdesGroupRow `json:"groups_sweep"`
	DigestIdentical  bool           `json:"digest_identical"`
	Note             string         `json:"note"`
}

// buildPDESBench assembles the hosts-sized cluster. Two cache VMs per
// host, each sporadic server fed by a client on the next host over;
// eight planned migrations ripple through the first hosts.
func buildPDESBench(hosts int) (*cluster.Sharded, []*cluster.RemoteClient) {
	cfg := cluster.DefaultShardedConfig()
	cfg.Hosts = hosts
	cfg.PCPUs = 4
	cfg.Seed = 1
	c := cluster.NewSharded(cfg)
	var clients []*cluster.RemoteClient
	for h := 0; h < hosts; h++ {
		for v := 0; v < 2; v++ {
			spec := cluster.VMSpec{
				Name:  fmt.Sprintf("cache%d-%d", h, v),
				VCPUs: 2,
				Tasks: []cluster.TaskSpec{
					{Name: "memc", Kind: task.Sporadic,
						Params: task.Params{Slice: simtime.Micros(60), Period: simtime.Micros(200)}},
					{Name: "rt", Kind: task.Periodic,
						Params: task.Params{Slice: simtime.Micros(300), Period: simtime.Millis(5)},
						Phase:  simtime.Micros(int64(37 * (h + v)))},
					{Name: "bg", Kind: task.Background},
				},
			}
			d, err := c.Deploy(h, spec)
			if err != nil {
				log.Fatalf("pdes bench deploy %s: %v", spec.Name, err)
			}
			for _, src := range []int{(h + 1) % hosts, (h + 2) % hosts} {
				if src == h {
					continue // degenerate only when hosts < 3
				}
				cl, err := c.AddRemoteClient(src, d, 0, cfg.Lookahead,
					dist.Uniform{Lo: simtime.Micros(150), Hi: simtime.Micros(500)},
					dist.Uniform{Lo: simtime.Micros(20), Hi: simtime.Micros(80)}, 0)
				if err != nil {
					log.Fatalf("pdes bench client for %s: %v", spec.Name, err)
				}
				clients = append(clients, cl)
			}
		}
	}
	nmig := 8
	if nmig > hosts-1 {
		nmig = hosts - 1
	}
	for k := 0; k < nmig; k++ {
		d, _ := c.Lookup(fmt.Sprintf("cache%d-0", k))
		at := simtime.Time(0).Add(simtime.Millis(int64(100 * (k + 1))))
		if err := c.PlanMigration(at, d, (k+1)%hosts); err != nil {
			log.Fatalf("pdes bench migration %d: %v", k, err)
		}
	}
	return c, clients
}

// runPDES sweeps executor group counts over the sharded cluster, checks
// digest identity, and writes the scaling report to outPath
// (BENCH_6.json by default).
func runPDES(outPath string, hosts int, seconds int64) {
	if hosts < 3 {
		log.Fatalf("pdes bench needs at least 3 hosts, got %d", hosts)
	}
	if seconds <= 0 {
		seconds = 2
	}
	total := simtime.Duration(seconds) * simtime.Second
	fmt.Printf("Sharded conservative-PDES sweep — %d hosts, %d simulated seconds, %d cores\n",
		hosts, seconds, runtime.NumCPU())

	r := pdesReport{
		Bench:            "sharded conservative-PDES cluster: executor-group scaling sweep",
		GoVersion:        runtime.Version(),
		Cores:            runtime.NumCPU(),
		Hosts:            hosts,
		SimulatedSeconds: seconds,
		DigestIdentical:  true,
		Note: "walls measured on this machine; speedup is bounded by physical cores " +
			"(a 1-core container shows ~1x at every group count by construction — " +
			"the digest-identity column is the determinism contract, the CI smoke " +
			"re-runs the sweep on multi-core runners)",
	}

	var baseDigest string
	var baseWall float64
	for _, groups := range []int{1, 2, 4, 8} {
		c, clients := buildPDESBench(hosts)
		if groups == 1 {
			r.VMs = len(c.Deployments())
			r.Clients = len(clients)
			r.LookaheadUS = float64(c.Cfg.Lookahead) / float64(simtime.Microsecond)
		}
		c.Start()
		start := time.Now()
		c.Run(total, groups)
		wall := time.Since(start).Seconds()
		c.Finish()

		digest := c.DigestString()
		if groups == 1 {
			baseDigest, baseWall = digest, wall
			r.Events = c.Set.EventsFired()
			r.Windows = c.Set.Windows()
			for _, cl := range clients {
				r.Requests += uint64(cl.Sent())
			}
			for _, d := range c.Deployments() {
				r.Migrations += d.Migrations
			}
		} else if digest != baseDigest {
			r.DigestIdentical = false
			fmt.Printf("  groups=%d DIGEST DIVERGED from groups=1\n", groups)
		}
		row := pdesGroupRow{
			Groups:       groups,
			WallSeconds:  wall,
			Speedup:      baseWall / wall,
			EventsPerSec: float64(r.Events) / wall,
		}
		r.Groups = append(r.Groups, row)
		fmt.Printf("  groups=%d  wall %7.3f s  speedup %4.2fx  %.2fM events/s\n",
			groups, row.WallSeconds, row.Speedup, row.EventsPerSec/1e6)
	}
	fmt.Printf("  %d VMs, %d clients, %d requests, %d events in %d windows, %d migrations; digests identical: %v\n",
		r.VMs, r.Clients, r.Requests, r.Events, r.Windows, r.Migrations, r.DigestIdentical)
	if !r.DigestIdentical {
		log.Fatal("pdes bench: executor group counts disagreed — determinism contract broken")
	}

	buf, err := json.MarshalIndent(&r, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", outPath)
}

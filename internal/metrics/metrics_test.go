package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"rtvirt/internal/sim"
	"rtvirt/internal/simtime"
)

func TestPercentileNearestRank(t *testing.T) {
	var l LatencyRecorder
	for i := 1; i <= 100; i++ {
		l.Add(simtime.Duration(i))
	}
	cases := map[float64]simtime.Duration{
		1: 1, 50: 50, 90: 90, 99: 99, 99.9: 100, 100: 100,
	}
	for p, want := range cases {
		if got := l.Percentile(p); got != want {
			t.Errorf("P%g = %v, want %v", p, got, want)
		}
	}
}

func TestPercentileSingleSample(t *testing.T) {
	var l LatencyRecorder
	l.Add(42)
	for _, p := range []float64{0.1, 50, 99.9, 100} {
		if l.Percentile(p) != 42 {
			t.Fatalf("P%g of single sample != sample", p)
		}
	}
}

func TestPercentileEmptyAndBounds(t *testing.T) {
	var l LatencyRecorder
	if l.Percentile(99) != 0 {
		t.Fatal("empty recorder percentile should be 0")
	}
	l.Add(1)
	for _, bad := range []float64{0, -5, 101} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Percentile(%g) did not panic", bad)
				}
			}()
			l.Percentile(bad)
		}()
	}
}

func TestMeanMaxCount(t *testing.T) {
	var l LatencyRecorder
	for _, v := range []simtime.Duration{10, 20, 30} {
		l.Add(v)
	}
	if l.Count() != 3 || l.Mean() != 20 || l.Max() != 30 {
		t.Fatalf("count/mean/max = %d/%v/%v", l.Count(), l.Mean(), l.Max())
	}
}

func TestMerge(t *testing.T) {
	var a, b LatencyRecorder
	a.Add(1)
	a.Add(3)
	b.Add(2)
	a.Merge(&b)
	if a.Count() != 3 || a.Mean() != 2 {
		t.Fatalf("merge wrong: count=%d mean=%v", a.Count(), a.Mean())
	}
}

func TestCDF(t *testing.T) {
	var l LatencyRecorder
	for _, v := range []simtime.Duration{10, 10, 20, 30} {
		l.Add(v)
	}
	pts := l.CDF()
	if len(pts) != 3 {
		t.Fatalf("CDF has %d points, want 3", len(pts))
	}
	if pts[0] != (CDFPoint{10, 0.5}) || pts[2] != (CDFPoint{30, 1.0}) {
		t.Fatalf("CDF wrong: %+v", pts)
	}
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].Latency < pts[j].Latency }) {
		t.Fatal("CDF not sorted")
	}
	var empty LatencyRecorder
	if empty.CDF() != nil {
		t.Fatal("empty CDF should be nil")
	}
}

func TestTailSummaryFormat(t *testing.T) {
	var l LatencyRecorder
	l.Add(simtime.Micros(100))
	s := l.TailSummary()
	for _, want := range []string{"p90=", "p99.9="} {
		if !strings.Contains(s, want) {
			t.Fatalf("TailSummary %q missing %q", s, want)
		}
	}
}

// Property: nearest-rank percentile always returns an observed sample, and
// is monotone in p.
func TestQuickPercentile(t *testing.T) {
	rng := sim.NewRNG(1)
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var l LatencyRecorder
		set := map[simtime.Duration]bool{}
		for _, v := range raw {
			d := simtime.Duration(v)
			l.Add(d)
			set[d] = true
		}
		prev := simtime.Duration(-1)
		for _, p := range []float64{0.001, 1, 25, 50, 75, 90, 99, 99.9, 100} {
			v := l.Percentile(p)
			if !set[v] || v < prev {
				return false
			}
			prev = v
		}
		_ = rng
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBandwidthMeter(t *testing.T) {
	var b BandwidthMeter
	b.Start(0)
	b.Observe(simtime.Time(simtime.Seconds(1)), 2.0) // 1s at 2 CPUs
	b.Observe(simtime.Time(simtime.Seconds(3)), 1.0) // 2s at 1 CPU
	b.Observe(simtime.Time(simtime.Seconds(4)), 0.0) // 1s at 0
	want := (2.0*1 + 1.0*2 + 0) / 4.0
	if got := b.Average(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Average = %g, want %g", got, want)
	}
	if b.Span() != simtime.Seconds(4) {
		t.Fatalf("Span = %v, want 4s", b.Span())
	}
}

func TestBandwidthMeterAutoStart(t *testing.T) {
	var b BandwidthMeter
	b.Observe(simtime.Time(simtime.Seconds(5)), 3.0) // acts as Start
	b.Observe(simtime.Time(simtime.Seconds(6)), 1.0)
	if got := b.Average(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("Average = %g, want 1.0", got)
	}
}

func TestBandwidthMeterBackwardsPanics(t *testing.T) {
	var b BandwidthMeter
	b.Start(simtime.Time(simtime.Seconds(2)))
	defer func() {
		if recover() == nil {
			t.Fatal("backwards Observe did not panic")
		}
	}()
	b.Observe(simtime.Time(simtime.Seconds(1)), 1)
}

func TestMissSummary(t *testing.T) {
	m := MissSummary{Tasks: 4, Released: 100, Judged: 90, Missed: 9, WorstTask: "t3", WorstRatio: 0.2}
	if m.Ratio() != 0.1 {
		t.Fatalf("Ratio = %g, want 0.1", m.Ratio())
	}
	if (MissSummary{}).Ratio() != 0 {
		t.Fatal("empty summary ratio should be 0")
	}
	if !strings.Contains(m.String(), "t3") {
		t.Fatal("String missing worst task")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Name", "CPUs")
	tb.AddRow("RTVirt", 2.11)
	tb.AddRow("RT-Xen", 2.33)
	s := tb.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), s)
	}
	if !strings.Contains(lines[0], "Name") || !strings.Contains(lines[2], "2.110") {
		t.Fatalf("table content wrong:\n%s", s)
	}
}

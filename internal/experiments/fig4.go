package experiments

import (
	"fmt"
	"strings"

	"rtvirt/internal/core"
	"rtvirt/internal/guest"
	"rtvirt/internal/metrics"
	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
	"rtvirt/internal/workload"
)

// Figure4Config tunes the dynamic video-streaming experiment (§4.3).
type Figure4Config struct {
	Seed     uint64
	Duration simtime.Duration // 10 minutes in the paper
	VMs      int              // 4
	VCPUs    int              // 4 per VM
	PCPUs    int              // 15
	// SampleEvery sets the allocation time-series resolution.
	SampleEvery simtime.Duration
}

// DefaultFigure4Config mirrors §4.3.
func DefaultFigure4Config() Figure4Config {
	return Figure4Config{
		Seed:        1,
		Duration:    10 * simtime.Minute,
		VMs:         4,
		VCPUs:       4,
		PCPUs:       15,
		SampleEvery: simtime.Seconds(10),
	}
}

// AllocationSample is one point of the Figure-4 time series.
type AllocationSample struct {
	At simtime.Time
	// CPUPercent is the VM's reserved bandwidth in percent of one CPU.
	CPUPercent float64
}

// Figure4Result is the outcome of the dynamic experiment.
type Figure4Result struct {
	// PerVM holds each VM's allocation time series (Figure 4a).
	PerVM map[string][]AllocationSample
	// RTAsRun counts the streaming RTAs that executed (54 in the paper's
	// run; RNG-dependent here).
	RTAsRun int
	// Rejected counts admission-control rejections.
	Rejected int
	// Misses summarises deadline outcomes across all RTAs.
	Misses metrics.MissSummary
	// TasksWithMisses / WorstMissPct reproduce the §4.3 claims ("out of
	// the 54 RTAs ... only five had deadline misses, worst 0.136%").
	TasksWithMisses int
	WorstMissPct    float64
	// AvgAllocated and PeakAllocated contrast the dynamic allocation with
	// a static peak-provisioned approach, in CPUs.
	AvgAllocated  float64
	PeakAllocated float64
}

// Figure4 runs the §4.3 experiment: VMs host video-streaming RTAs that
// arrive and leave dynamically; each RTA has random Table-3 parameters,
// random start and duration; idle gaps hold a 10% reservation. RTVirt's
// hypercall path re-negotiates VM bandwidth on every transition.
func Figure4(cfg Figure4Config) Figure4Result {
	sysCfg := core.DefaultConfig(core.RTVirt)
	sysCfg.PCPUs = cfg.PCPUs
	sysCfg.Seed = cfg.Seed
	sys := core.NewSystem(sysCfg)

	res := Figure4Result{PerVM: map[string][]AllocationSample{}}
	var guests []*guest.OS
	for i := 0; i < cfg.VMs; i++ {
		g := mustGuest(sys.NewGuest(fmt.Sprintf("vm%d", i+1), cfg.VCPUs))
		guests = append(guests, g)
	}
	sys.Start()

	rng := sys.Sim.RNG().Split()
	var all []*task.Task
	nextID := 0

	// Each VCPU runs a random sequence of segments: a streaming RTA with a
	// random Table-3 profile, or an idle interval holding a 10% reserve.
	// Durations are uniform in [10s, 6min]; the sequence covers the run.
	var schedule func(g *guest.OS, vcpu int, at simtime.Time)
	schedule = func(g *guest.OS, vcpu int, at simtime.Time) {
		if at >= simtime.Time(cfg.Duration) {
			return
		}
		segment := simtime.Duration(rng.Int63n(int64(6*simtime.Minute-simtime.Seconds(10)))) + simtime.Seconds(10)
		end := simtime.Min(at.Add(segment), simtime.Time(cfg.Duration))
		idle := rng.Intn(5) == 0 // a fifth of the segments are idle gaps
		var t *task.Task
		if idle {
			// Idle interval: the VCPU keeps a 10% reservation (§4.3).
			t = task.New(nextID, fmt.Sprintf("reserve-%d", nextID), task.Periodic, pp(1, 10))
		} else {
			prof := workload.VideoProfiles[rng.Intn(len(workload.VideoProfiles))]
			t = task.New(nextID, fmt.Sprintf("vlc%dfps-%d", prof.FPS, nextID), task.Periodic, prof.Params)
		}
		nextID++
		if err := g.RegisterOn(t, vcpu); err != nil {
			res.Rejected++
		} else {
			if !idle {
				res.RTAsRun++
				all = append(all, t)
				g.StartPeriodic(t, at)
			}
			sys.Sim.At(end, func(now simtime.Time) {
				must(g.Unregister(t))
			})
		}
		sys.Sim.At(end, func(now simtime.Time) { schedule(g, vcpu, now) })
	}
	for _, g := range guests {
		for v := 0; v < cfg.VCPUs; v++ {
			schedule(g, v, 0)
		}
	}

	// Allocation sampler.
	var sampler func(now simtime.Time)
	var allocSum float64
	var allocN int
	sampler = func(now simtime.Time) {
		var total float64
		for _, g := range guests {
			bw := g.AllocatedBandwidth()
			total += bw
			res.PerVM[g.VM().Name] = append(res.PerVM[g.VM().Name],
				AllocationSample{At: now, CPUPercent: 100 * bw})
		}
		allocSum += total
		allocN++
		if total > res.PeakAllocated {
			res.PeakAllocated = total
		}
		if now < simtime.Time(cfg.Duration) {
			sys.Sim.At(now.Add(cfg.SampleEvery), sampler)
		}
	}
	sys.Sim.At(0, sampler)

	sys.Run(cfg.Duration + simtime.Seconds(2))

	res.Misses = workload.MissSummary(all)
	res.TasksWithMisses = res.Misses.TasksWithMisses
	res.WorstMissPct = 100 * res.Misses.WorstRatio
	if allocN > 0 {
		res.AvgAllocated = allocSum / float64(allocN)
	}
	return res
}

// Render formats the Figure-4 summary.
func (r Figure4Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 4 — dynamic video-streaming RTAs under RTVirt\n")
	fmt.Fprintf(&b, "RTAs run: %d (rejected by admission: %d)\n", r.RTAsRun, r.Rejected)
	fmt.Fprintf(&b, "Deadlines: %s\n", r.Misses)
	fmt.Fprintf(&b, "Tasks with ≥1 miss: %d; worst per-task miss: %.3f%%\n",
		r.TasksWithMisses, r.WorstMissPct)
	fmt.Fprintf(&b, "Average allocation: %.2f CPUs (static peak provisioning: %.2f CPUs, saving %.1f%%)\n",
		r.AvgAllocated, r.PeakAllocated, 100*(1-r.AvgAllocated/r.PeakAllocated))
	t := metrics.NewTable("t (s)", "VM1 %", "VM2 %", "VM3 %", "VM4 %")
	n := len(r.PerVM["vm1"])
	for i := 0; i < n; i += 6 { // print every minute
		row := []any{fmt.Sprintf("%.0f", r.PerVM["vm1"][i].At.Seconds())}
		for v := 1; v <= 4; v++ {
			s := r.PerVM[fmt.Sprintf("vm%d", v)]
			if i < len(s) {
				row = append(row, fmt.Sprintf("%.0f", s[i].CPUPercent))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	b.WriteString(t.String())
	return b.String()
}

package core

import (
	"testing"

	"rtvirt/internal/simtime"
	"rtvirt/internal/task"
	"rtvirt/internal/workload"
)

// runFingerprint runs a mixed workload and returns a digest of every
// observable outcome.
func runFingerprint(seed uint64) []int64 {
	cfg := DefaultConfig(RTVirt)
	cfg.PCPUs = 3
	cfg.Seed = seed
	sys := NewSystem(cfg)
	g1, _ := sys.NewGuest("rt", 2)
	g2, _ := sys.NewWeightedGuest("bg", 1, 256)
	a, _ := workload.NewRTApp(g1, 0, "a", task.Params{Slice: ms(3), Period: ms(10)})
	b, _ := workload.NewRTApp(g1, 1, "b", task.Params{Slice: ms(7), Period: ms(20)})
	mcCfg := workload.DefaultMemcachedConfig()
	mc, _ := workload.NewMemcached(g1, 2, mcCfg)
	hog, _ := workload.NewCPUHog(g2, 3, "hog")
	sys.Start()
	a.Start(0)
	b.Start(simtime.Time(ms(3)))
	mc.Start(0)
	hog.Start(0)
	sys.Run(5 * simtime.Second)
	sys.Host.Sync()
	var fp []int64
	for _, tk := range []*task.Task{a.Task, b.Task, mc.Task} {
		st := tk.Stats()
		fp = append(fp, int64(st.Released), int64(st.Completed), int64(st.Missed),
			int64(st.TotalResp), int64(st.TotalWork))
	}
	fp = append(fp, int64(mc.Latency.Percentile(99.9)), int64(mc.Latency.Mean()))
	fp = append(fp, int64(sys.Host.Overhead.ScheduleCalls), int64(sys.Host.Overhead.ScheduleTime),
		int64(sys.Host.Overhead.CtxSwitches), int64(sys.Host.Overhead.Migrations),
		int64(sys.Host.Overhead.Hypercalls), int64(g2.VM().TotalRun()))
	return fp
}

// TestDeterminism: the same seed reproduces every counter bit-for-bit; a
// different seed does not.
func TestDeterminism(t *testing.T) {
	a, b := runFingerprint(42), runFingerprint(42)
	if len(a) != len(b) {
		t.Fatal("fingerprint lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed runs diverged at field %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := runFingerprint(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fingerprints (RNG unused?)")
	}
}
